(** Workload generators for the evaluation benchmarks (§6.1, §7.1).

    The paper pre-generates reservations, loads them into the service,
    and then triggers fresh requests; these builders reproduce that
    setup for each figure. *)

open Colibri_types
open Colibri_topology
open Colibri
module Backend = Backends.Backend_intf

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let asn n = Ids.asn ~isd:1 ~num:n
let key src id : Ids.res_key = { src_as = asn src; res_id = id }

(* ------------------------------------------------------------------ *)
(* Fig. 3: SegR admission at a transit AS.                             *)
(* ------------------------------------------------------------------ *)

(** A transit-AS CServ preloaded with [existing] SegRs crossing the
    same interface pair (1 → 2), of which a fraction [ratio] come from
    the same source AS as the probe requests. Returns the CServ of the
    transit AS plus a probe function issuing one full, authenticated
    SegReq forward-processing step (MAC verification + admission), the
    quantity §6.1 measures. *)
type fig3_rig = {
  transit : Cserv.t;
  probe : int -> unit; (* process the i-th fresh setup request *)
}

(** Build the Fig. 3 rig. The probe requests are issued by topology
    AS 1, so the same-source preload entries are keyed to AS 1. *)
let fig3 ~existing ~ratio =
  let topo = Topology_gen.linear ~n:3 ~capacity:(gbps 400_000.) in
  let d = Deployment.create topo in
  let transit = Deployment.cserv d (asn 2) in
  let adm = Cserv.backend transit in
  let same_src_count = int_of_float (Float.round (ratio *. float_of_int existing)) in
  for i = 1 to existing do
    let src = if i <= same_src_count then 1 (* the probe's source AS *) else 100 + i in
    (* ResIds from 1_000_000 up: disjoint from the probes' fresh ids. *)
    let req : Backend.seg_request =
      {
        key = key src (1_000_000 + i);
        version = 1;
        src = asn src;
        ingress = 1;
        egress = 2;
        demand = mbps 1.;
        min_bw = Bandwidth.of_kbps 1.;
        exp_time = 1e9;
      }
    in
    match Backend.admit_seg adm ~req ~now:0. with
    | Backend.Granted _ -> ()
    | Backend.Denied _ -> failwith "fig3 preload rejected"
  done;
  let path = Topology_gen.linear_path ~n:3 in
  (* Pre-build the probe requests: §6.1 measures "the time elapsed
     between the request arriving and the response leaving the
     service", not the initiator-side construction. *)
  let prebuilt =
    Array.init 256 (fun _ ->
        Result.get_ok
          (Cserv.make_seg_request (Deployment.cserv d (asn 1)) ~path
             ~kind:Reservation.Core ~max_bw:(mbps 1.) ~min_bw:(Bandwidth.of_kbps 1.)
             ~renew:None))
  in
  let probe i =
    let n = Array.length prebuilt in
    let req, auth = prebuilt.(i mod n) in
    (match Cserv.handle_seg_request_forward transit ~req ~auth with
    | `Continue _ -> ()
    | `Deny r -> Fmt.failwith "fig3 probe denied: %a" Protocol.pp_deny_reason r);
    (* Recycle the batch so long (Bechamel) runs can reuse the prebuilt
       requests: amortized over n probes, invisible to the statistics. *)
    if (i + 1) mod n = 0 then
      Array.iter
        (fun ((r : Protocol.seg_request), _) ->
          Backend.remove_seg adm
            ~key:{ src_as = r.res_info.src_as; res_id = r.res_info.res_id }
            ~version:r.res_info.version ~now:0.)
        prebuilt
  in
  { transit; probe }

(* ------------------------------------------------------------------ *)
(* Fig. 4: EER admission at a transit AS.                              *)
(* ------------------------------------------------------------------ *)

type fig4_rig = { probe : int -> unit }

(** A transit AS holding [segrs_same_source] SegRs of one source AS
    (the parameter [s] of Fig. 4) and [existing] EERs over the probe
    SegR. The probe issues a fresh authenticated EEReq. *)
let fig4 ~(existing : int) ~(segrs_same_source : int) : fig4_rig =
  let topo = Topology_gen.linear ~n:3 ~capacity:(gbps 400_000.) in
  let d = Deployment.create topo in
  let transit = Deployment.cserv d (asn 2) in
  let path = Topology_gen.linear_path ~n:3 in
  (* [s] SegRs from the same source AS through this transit AS; the
     first is the one the probe EERs ride on. *)
  let first_segr = ref None in
  for i = 1 to max 1 segrs_same_source do
    match
      Deployment.setup_segr d ~path ~kind:Reservation.Core ~max_bw:(gbps 10.)
        ~min_bw:(Bandwidth.of_kbps 1.)
    with
    | Ok segr -> if i = 1 then first_segr := Some segr
    | Error e -> failwith ("fig4 segr setup: " ^ e)
  done;
  let segr = Option.get !first_segr in
  (* Preload EERs over that SegR: direct admission entries. *)
  let eer_adm = Cserv.backend transit in
  for i = 1 to existing do
    let req : Backend.eer_request =
      {
        key = key 50_000 i;
        version = 1;
        segrs = [ (segr.key, gbps 10.) ];
        via_up = None;
        ingress = 1;
        egress = 2;
        demand = Bandwidth.of_bps 10.;
        renewal = false;
        exp_time = 1e9;
      }
    in
    match Backend.admit_eer eer_adm ~req ~now:0. with
    | Backend.Granted _ -> ()
    | Backend.Denied _ -> failwith "fig4 preload rejected"
  done;
  let src_cs = Deployment.cserv d (asn 1) in
  (* Pre-built probe requests, as in {!fig3}. *)
  let prebuilt =
    Array.init 256 (fun _ ->
        Result.get_ok
          (Cserv.make_eer_request src_cs ~path ~src_host:(Ids.host 1)
             ~dst_host:(Ids.host 2) ~bw:(Bandwidth.of_bps 10.)
             ~segr_keys:[ segr.key ] ~renew:None))
  in
  let probe i =
    let n = Array.length prebuilt in
    let req, auth = prebuilt.(i mod n) in
    (match Cserv.handle_eer_request_forward transit ~req ~auth with
    | `Continue _ -> ()
    | `Deny r -> Fmt.failwith "fig4 probe denied: %a" Protocol.pp_deny_reason r);
    if (i + 1) mod n = 0 then
      Array.iter
        (fun ((r : Protocol.eer_request), _) ->
          Backend.remove_eer eer_adm
            ~key:{ src_as = r.res_info.src_as; res_id = r.res_info.res_id }
            ~version:r.res_info.version ~now:0.)
        prebuilt
  in
  { probe }

(* ------------------------------------------------------------------ *)
(* Figs. 5/6 and App. E: data-plane rigs.                              *)
(* ------------------------------------------------------------------ *)

(** A gateway preloaded with [reservations] EERs over a path of
    [path_len] ASes. σ keys, paths, and ResInfo skeletons are shared
    across entries (the per-entry state the lookup exercises — hash
    entry, versions, token bucket — is still per-reservation), keeping
    the preload of 2^20 entries tractable. Timestamps/expiry are set
    far in the future so that a long measurement never hits expiry. *)
type gateway_rig = {
  gateway : Gateway.t;
  reservations : int;
  send : int -> unit; (* send one packet on a pseudo-random ResId *)
  wire_bytes : int;
}

let shared_path ~path_len : Path.t =
  List.init path_len (fun i ->
      Path.hop ~asn:(asn (i + 1))
        ~ingress:(if i = 0 then 0 else 1)
        ~egress:(if i = path_len - 1 then 0 else 2))

let gateway_rig ?(payload_len = 0) ~(path_len : int) ~(reservations : int) () :
    gateway_rig =
  let clock () = 0. in
  let gw = Gateway.create ~burst:1e12 ~clock (asn 1) in
  let path = shared_path ~path_len in
  let sigmas =
    Array.init path_len (fun i -> Hvf.sigma_of_bytes (Bytes.make 16 (Char.chr (65 + i))))
  in
  let version : Reservation.version =
    { version = 1; bw = gbps 100.; exp_time = 1e9 }
  in
  for res_id = 1 to reservations do
    let eer : Reservation.eer =
      {
        key = { src_as = asn 1; res_id };
        path;
        src_host = Ids.host 1;
        dst_host = Ids.host 2;
        segr_keys = [];
        versions = [ version ];
      }
    in
    match Gateway.register_prepared gw ~eer ~version ~sigmas with
    | Ok () -> ()
    | Error e -> failwith ("gateway_rig: " ^ e)
  done;
  (* Worst case per §7.1: "packets arrive with random reservation IDs
     (out of the set of valid ones)" — a multiplicative-hash sequence
     visits IDs pseudo-randomly. *)
  (* Measure the wire path the deployment runs: [send_bytes] encodes
     into the gateway's reusable buffer (DESIGN.md §8). *)
  let send i =
    let res_id = 1 + (i * 0x9e3779b1 land 0x3fffffff) mod reservations in
    match Gateway.send_bytes gw ~res_id ~payload_len with
    | Ok _ -> ()
    | Error e -> Fmt.failwith "gateway_rig send: %a" Gateway.pp_drop_reason e
  in
  {
    gateway = gw;
    reservations;
    send;
    wire_bytes = Packet.header_len ~hops:path_len + payload_len;
  }

(** A border router plus a batch of valid serialized packets of the
    given path length, cycled through by [process]. The duplicate
    filter and OFD are disabled, matching the paper's router benchmark
    scoping (§7.1); a second constructor enables them for the
    monitoring-cost ablation. *)
type router_rig = {
  router : Router.t;
  process : int -> unit;
  wire_bytes : int;
}

(* The router benchmarks share one secret and one transit position (AS
   2 on the path) so the pre-built packet batches verify on any router
   front end built from them. *)
let router_secret () = Hvf.as_secret_of_material (Bytes.make 16 'R')

(** The batch of valid serialized EER packets {!router_rig} cycles
    through, exposed separately so rigs with a different front end (the
    parallel router submits copies across domains) can reuse it. *)
let router_batch ?(payload_len = 0) ~(path_len : int) ~(distinct_packets : int)
    () : bytes array =
  let secret = router_secret () in
  let path = shared_path ~path_len in
  let res_info : Packet.res_info =
    { src_as = asn 1; res_id = 7; bw = gbps 100.; exp_time = 1e9; version = 1 }
  in
  let eer_info : Packet.eer_info = { src_host = Ids.host 1; dst_host = Ids.host 2 } in
  let hop = List.nth path 1 in
  let sigma = Hvf.sigma_of_bytes (Hvf.hop_auth secret ~res_info ~eer_info ~hop) in
  let wire_bytes = Packet.header_len ~hops:path_len + payload_len in
  Array.init distinct_packets (fun i ->
      let ts = Timebase.Ts.of_int (1_000_000_000 - i) in
      let hvfs =
        Array.init path_len (fun j ->
            if j = 1 then Hvf.eer_hvf sigma ~ts ~pkt_size:wire_bytes
            else Bytes.make Packet.hvf_len 'x')
      in
      Packet.to_bytes
        {
          Packet.kind = Packet.Eer;
          path;
          res_info;
          eer_info = Some eer_info;
          ts;
          hvfs;
          payload_len;
        })

let router_rig ?(payload_len = 0) ?(monitoring = false) ~(path_len : int)
    ~(distinct_packets : int) () : router_rig =
  let clock () = 0. in
  let secret = router_secret () in
  let self = asn 2 in
  let router =
    if monitoring then
      Router.create ~freshness_window:1e12 ~secret ~clock self
    else
      Router.create ~freshness_window:1e12 ~ofd:`None ~duplicates:`None ~secret
        ~clock self
  in
  let batch = router_batch ~payload_len ~path_len ~distinct_packets () in
  let wire_bytes = Packet.header_len ~hops:path_len + payload_len in
  let process i =
    let raw = batch.(i mod distinct_packets) in
    match Router.process_bytes router ~raw ~payload_len with
    | Ok _ -> ()
    | Error e -> Fmt.failwith "router_rig: %a" Router.pp_drop_reason e
  in
  { router; process; wire_bytes }

(** The multicore front end of the same workload: a
    {!Dataplane_shard.Parallel_router} over [workers] domains plus the
    valid-packet batch to submit. [check:false]: the dynamic ownership
    checker stays on in tests; benchmarks measure the unguarded rings
    (DESIGN.md §11). The router is wired to the monotonic clock so the
    per-worker busy time ({!Dataplane_shard.Parallel_router.worker_busy_ns})
    feeds the shared-nothing scaling model of DESIGN.md §3. *)
type par_router_rig = {
  par_router : Dataplane_shard.Parallel_router.t;
  batch : bytes array;
  plens : int array; (* payload_lens companion of [batch] for submit_batch *)
  payload_len : int;
}

let mono_ns () : int = Int64.to_int (Monotonic_clock.now ())

let par_router_rig ?(payload_len = 0) ?batch ?ring_capacity ~(workers : int)
    ~(path_len : int) ~(distinct_packets : int) () : par_router_rig =
  let par_router =
    Dataplane_shard.Parallel_router.create ~freshness_window:1e12 ?batch
      ?ring_capacity ~check:false ~mono:mono_ns
      ~secret:(router_secret ())
      ~clock:(fun () -> 0.)
      ~workers (asn 2)
  in
  {
    par_router;
    batch = router_batch ~payload_len ~path_len ~distinct_packets ();
    plens = Array.make distinct_packets payload_len;
    payload_len;
  }
