(** Timing helpers for the reproduction benchmarks.

    Latency figures (Figs. 3–4) replicate the paper's method: trigger
    single requests and report the mean and standard error of 100
    measurements. Throughput figures (Figs. 5–6, App. E) time a batch
    of operations with the monotonic clock and report operations per
    second. *)

let now_ns () = Monotonic_clock.now ()

type sample_stats = { mean_us : float; stderr_us : float; samples : int }

(** Run [f] [samples] times (after [warmup] unmeasured runs); each call
    is timed individually, as in §6.1. *)
let latency ?(warmup = 10) ?(samples = 100) (f : int -> unit) : sample_stats =
  for i = 0 to warmup - 1 do
    f i
  done;
  let xs =
    Array.init samples (fun i ->
        let t0 = now_ns () in
        f (warmup + i);
        Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e3)
  in
  let n = float_of_int samples in
  let mean = Array.fold_left ( +. ) 0. xs /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
  in
  { mean_us = mean; stderr_us = sqrt (var /. n); samples }

(** Time [n] iterations of [f] and return the rate in ops/second. *)
let throughput ?(warmup = 1000) ~(n : int) (f : int -> unit) : float =
  for i = 0 to warmup - 1 do
    f i
  done;
  let t0 = now_ns () in
  for i = 0 to n - 1 do
    f (warmup + i)
  done;
  let dt = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  float_of_int n /. dt

(** Minor-heap words allocated per run of [f], measured over [n]
    warmed-up runs. The wire-path refactor is judged by this number
    (DESIGN.md §8): the claim is not "fast" but "allocation-free after
    warm-up", which GC counters can assert exactly, unlike timing. *)
let minor_words_per_run ?(warmup = 1000) ~(n : int) (f : int -> unit) : float =
  for i = 0 to warmup - 1 do
    f i
  done;
  let before = Gc.minor_words () in
  for i = 0 to n - 1 do
    f (warmup + i)
  done;
  let after = Gc.minor_words () in
  (* [before]'s own float box is allocated after its counter read and
     so lands inside the measured window; subtract it. *)
  Float.max 0. (after -. before -. 2.) /. float_of_int n

(** Pretty throughput in Mpps and the Gbps equivalent for a payload. *)
let mpps rate = rate /. 1e6

let gbps_at rate ~wire_bytes = rate *. 8. *. float_of_int wire_bytes /. 1e9

let print_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let print_row fmt = Printf.printf fmt
