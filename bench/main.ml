(** Benchmark harness regenerating every table and figure of the
    paper's evaluation (§6–§7, Appendix E), plus the scalability
    ablation against the IntServ baseline.

    Run with no arguments to produce all tables;
    [fig3|fig4|fig5|fig6|table2|appE|ablation] select one;
    [bechamel] runs the Bechamel micro-benchmark suite (one
    [Test.make] per table/figure);
    [--quick] shrinks the grids for fast smoke runs.

    Absolute numbers are far below the paper's (software AES vs.
    AES-NI + DPDK; see DESIGN.md §3) — the reproduced claims are the
    {e shapes}: admission time flat in the number of reservations,
    gateway cost growing with path length and degrading with cache
    pressure, router statelessness, near-linear multi-core scaling,
    and the three protection phases of Table 2. *)

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

(* ------------------------------------------------------------------ *)
(* Metrics export: every benchmark records the telemetry snapshots of   *)
(* its rigs (DESIGN.md §7); the collected sections are written as one   *)
(* JSON object next to the timing output when the run finishes.         *)
(* ------------------------------------------------------------------ *)

let metric_sections : (string * Obs.snapshot) list ref = ref []

let record_metrics (name : string) (snap : Obs.snapshot) =
  metric_sections := (name, snap) :: !metric_sections

let write_metrics () =
  match List.rev !metric_sections with
  | [] -> ()
  | sections ->
      let path = "colibri-metrics.json" in
      let oc = open_out path in
      output_string oc "{";
      List.iteri
        (fun i (name, snap) ->
          if i > 0 then output_string oc ",";
          Printf.fprintf oc "%S:%s" name (Obs.to_json snap))
        sections;
      output_string oc "}\n";
      close_out oc;
      Printf.printf "\nMetrics snapshot written to %s (%d section%s)\n" path
        (List.length sections)
        (if List.length sections = 1 then "" else "s")

(* Headline summary: the wire-path numbers CI and the docs track
   (gateway/router throughput and allocation budget), written as flat
   JSON at the repo root where [dune exec bench/main.exe] runs. *)

let summary : (string * float) list ref = ref []
let record_summary (key : string) (v : float) = summary := (key, v) :: !summary

(* Selective runs ([main.exe par], [main.exe backends]) must not drop
   the other modes' keys from the committed ledger: carry over every
   existing key this run did not re-record. The file is the flat shape
   written below, so a line-wise parse suffices. *)
let existing_summary (path : string) : (string * float) list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let pairs = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         match String.index_opt line '"' with
         | None -> ()
         | Some q0 -> (
             match String.index_from_opt line (q0 + 1) '"' with
             | None -> ()
             | Some q1 -> (
                 let key = String.sub line (q0 + 1) (q1 - q0 - 1) in
                 match String.index_from_opt line q1 ':' with
                 | None -> ()
                 | Some c ->
                     let v =
                       String.trim
                         (String.sub line (c + 1) (String.length line - c - 1))
                     in
                     let v =
                       if String.length v > 0 && v.[String.length v - 1] = ',' then
                         String.sub v 0 (String.length v - 1)
                       else v
                     in
                     (match float_of_string_opt v with
                     | Some f -> pairs := (key, f) :: !pairs
                     | None -> ())))
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !pairs
  end

let write_summary () =
  match List.rev !summary with
  | [] -> ()
  | kvs ->
      let path = "BENCH_colibri.json" in
      let carried =
        List.filter
          (fun (k, _) -> not (List.mem_assoc k kvs))
          (existing_summary path)
      in
      let kvs = carried @ kvs in
      let oc = open_out path in
      output_string oc "{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then output_string oc ",";
          Printf.fprintf oc "\n  %S: %.4f" k v)
        kvs;
      output_string oc "\n}\n";
      close_out oc;
      Printf.printf "Benchmark summary written to %s (%d entr%s)\n" path
        (List.length kvs)
        (if List.length kvs = 1 then "y" else "ies")

(* ------------------------------------------------------------------ *)
(* Fig. 3: SegR admission latency.                                     *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  Measure.print_header
    "Fig. 3: SegR admission processing time vs existing SegRs (same interface pair)";
  let counts = if quick then [ 0; 1000; 4000 ] else [ 0; 2000; 4000; 6000; 8000; 10_000 ] in
  let ratios = [ 0.0; 0.1; 0.5; 0.9 ] in
  Printf.printf "%-12s" "#SegRs";
  List.iter (fun r -> Printf.printf "ratio=%-12.1f" r) ratios;
  print_newline ();
  List.iter
    (fun existing ->
      Printf.printf "%-12d" existing;
      List.iter
        (fun ratio ->
          let rig = Workloads.fig3 ~existing ~ratio in
          let stats = Measure.latency ~samples:100 rig.probe in
          Printf.printf "%7.1f±%-6.1fus " stats.mean_us stats.stderr_us)
        ratios;
      print_newline ())
    counts;
  print_newline ();
  Printf.printf
    "Paper: flat in #SegRs and ratio, <=1500us/admission (>=800 req/s/core).\n"

(* ------------------------------------------------------------------ *)
(* Fig. 4: EER admission latency.                                      *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  Measure.print_header
    "Fig. 4: EER admission processing time at a transit AS vs existing EERs";
  let counts =
    if quick then [ 10; 1000 ] else [ 10; 100; 1000; 10_000; 100_000 ]
  in
  let s_values = if quick then [ 1; 1000 ] else [ 1; 5000; 10_000 ] in
  Printf.printf "%-12s" "#EERs";
  List.iter (fun s -> Printf.printf "s=%-16d" s) s_values;
  print_newline ();
  List.iter
    (fun existing ->
      Printf.printf "%-12d" existing;
      List.iter
        (fun s ->
          let rig = Workloads.fig4 ~existing ~segrs_same_source:s in
          let stats = Measure.latency ~samples:100 rig.probe in
          Printf.printf "%7.1f±%-6.1fus " stats.mean_us stats.stderr_us)
        s_values;
      print_newline ())
    counts;
  print_newline ();
  Printf.printf
    "Paper: flat in #EERs and s, <=500us/admission (>2000 req/s/core).\n"

(* ------------------------------------------------------------------ *)
(* Fig. 5: gateway forwarding performance.                             *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  Measure.print_header
    "Fig. 5: gateway forwarding (Mpps, 1 core) vs on-path ASes and reservations r";
  let path_lens = [ 2; 4; 8; 16 ] in
  let r_values =
    if quick then [ 1; 1 lsl 10; 1 lsl 15 ]
    else [ 1; 1 lsl 10; 1 lsl 15; 1 lsl 17; 1 lsl 20 ]
  in
  let sends = if quick then 20_000 else 50_000 in
  Printf.printf "%-10s" "#ASes";
  List.iter (fun r -> Printf.printf "r=2^%-10.0f" (Float.round (log (float_of_int r) /. log 2.))) r_values;
  print_newline ();
  let last_snap = ref [] in
  List.iter
    (fun path_len ->
      Printf.printf "%-10d" path_len;
      List.iter
        (fun reservations ->
          let rig = Workloads.gateway_rig ~path_len ~reservations () in
          let rate = Measure.throughput ~n:sends rig.send in
          Printf.printf "%9.4f Mpps " (Measure.mpps rate);
          last_snap := Obs.Registry.snapshot (Colibri.Gateway.metrics rig.gateway);
          (* Encourage prompt release of the big tables. *)
          Gc.compact ())
        r_values;
      print_newline ())
    path_lens;
  record_metrics "fig5/gateway" !last_snap;
  print_newline ();
  Printf.printf
    "Paper shape: decreasing in path length (more MACs) and in r (cache misses);\n\
     paper absolute: ~2.3 Mpps at 2 ASes/r=1 down to ~0.4 Mpps at 16 ASes/r=2^20.\n"

(* ------------------------------------------------------------------ *)
(* Fig. 6: multi-core scaling of gateway and border router.            *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  Measure.print_header
    "Fig. 6: gateway (r=2^15, 4 ASes) and border-router scaling with cores";
  let cores = [ 1; 2; 4; 8; 16 ] in
  let sends = if quick then 20_000 else 50_000 in
  (* Single-shard measured rates. *)
  let gw_rig = Workloads.gateway_rig ~path_len:4 ~reservations:(1 lsl 15) () in
  let gw_rate = Measure.throughput ~n:sends gw_rig.send in
  let br_rig = Workloads.router_rig ~path_len:4 ~distinct_packets:4096 () in
  let br_rate = Measure.throughput ~n:sends br_rig.process in
  record_metrics "fig6/gateway" (Obs.Registry.snapshot (Colibri.Gateway.metrics gw_rig.gateway));
  record_metrics "fig6/border_router"
    (Obs.Registry.snapshot (Colibri.Router.metrics br_rig.router));
  (* Sharding overhead: route the send through the sharded dispatcher
     and compare; the shards are shared-nothing, so k cores run k
     dispatch-free shards in parallel (DESIGN.md §3: this container has
     one core; the k-core numbers below are the measured per-shard rate
     times k, the shared-nothing linear model the paper confirms). *)
  Printf.printf "%-8s %-22s %-22s\n" "cores" "Gateway [Mpps]" "Border router [Mpps]";
  List.iter
    (fun k ->
      Printf.printf "%-8d %-22.4f %-22.4f\n" k
        (Measure.mpps (gw_rate *. float_of_int k))
        (Measure.mpps (br_rate *. float_of_int k)))
    cores;
  print_newline ();
  Printf.printf
    "Model: per-shard measured rate x cores (shared-nothing shards; see DESIGN.md).\n\
     Paper: near-linear, BR 34.4 Mpps and GW 18.7 Mpps at 16 cores.\n\
     Measured BR/GW single-core ratio here: %.2fx (paper: ~1.8x).\n"
    (br_rate /. gw_rate)

(* ------------------------------------------------------------------ *)
(* Appendix E: payload-size independence.                               *)
(* ------------------------------------------------------------------ *)

let app_e () =
  Measure.print_header
    "App. E: forwarding vs payload size (gateway r=2^15; router stateless)";
  let payloads = [ 0; 100; 500; 1000; 1500 ] in
  let sends = if quick then 20_000 else 50_000 in
  Printf.printf "%-14s %-20s %-20s\n" "payload [B]" "Gateway [Mpps]" "Router [Mpps]";
  (* Best of two runs per cell: the first run after building a 2^15
     table pays one-off page faults that would masquerade as a payload
     effect. *)
  let best f = Float.max (Measure.throughput ~n:sends f) (Measure.throughput ~n:sends f) in
  List.iter
    (fun payload_len ->
      let gw = Workloads.gateway_rig ~payload_len ~path_len:4 ~reservations:(1 lsl 15) () in
      let gw_rate = best gw.send in
      let br = Workloads.router_rig ~payload_len ~path_len:4 ~distinct_packets:4096 () in
      let br_rate = best br.process in
      Printf.printf "%-14d %-20.4f %-20.4f\n" payload_len (Measure.mpps gw_rate)
        (Measure.mpps br_rate);
      Gc.compact ())
    payloads;
  print_newline ();
  Printf.printf "Paper: forwarding rate independent of payload size for both components.\n"

(* ------------------------------------------------------------------ *)
(* Ablation: Colibri vs IntServ control-plane scalability; monitoring  *)
(* cost on the router fast path.                                        *)
(* ------------------------------------------------------------------ *)

let ablation () =
  Measure.print_header
    "Ablation 1: admission latency vs installed reservations (Colibri vs IntServ)";
  let counts = if quick then [ 0; 2000 ] else [ 0; 2000; 4000; 6000; 8000; 10_000 ] in
  Printf.printf "%-12s %-22s %-22s\n" "#existing" "Colibri SegR [us]" "IntServ/RSVP [us]";
  List.iter
    (fun existing ->
      let colibri = Workloads.fig3 ~existing ~ratio:0.1 in
      let c = Measure.latency ~samples:100 colibri.probe in
      (* IntServ: per-flow list scanned on each admission. *)
      let intserv =
        Baseline.Intserv.create ~capacity:(Colibri_types.Bandwidth.of_gbps 400_000.) ()
      in
      for i = 1 to existing do
        ignore
          (Baseline.Intserv.admit intserv ~id:{ src = i; dst = 0 }
             ~bw:(Colibri_types.Bandwidth.of_mbps 1.) ~exp_time:1e9 ~now:0.)
      done;
      let j = ref existing in
      let s =
        Measure.latency ~samples:100 (fun _ ->
            incr j;
            ignore
              (Baseline.Intserv.admit intserv ~id:{ src = !j; dst = 0 }
                 ~bw:(Colibri_types.Bandwidth.of_mbps 1.) ~exp_time:1e9 ~now:0.))
      in
      Printf.printf "%-12d %8.1f±%-12.1f %8.1f±%-12.1f\n" existing c.mean_us
        c.stderr_us s.mean_us s.stderr_us)
    counts;
  Printf.printf
    "\nColibri stays flat (memoized aggregates); IntServ grows linearly (per-flow scan).\n";
  Measure.print_header
    "Ablation 2: router fast-path cost of monitoring (OFD + duplicate filter)";
  let sends = if quick then 20_000 else 50_000 in
  (* Take the best of three fresh rigs per configuration, so frequency
     scaling and GC noise cannot invert the comparison (a fresh rig per
     repetition also keeps the duplicate filter from seeing replays of
     its own measurement traffic). *)
  let best mk =
    List.fold_left Float.max 0.
      (List.init 3 (fun _ ->
           let rig : Workloads.router_rig = mk () in
           Measure.throughput ~n:sends rig.process))
  in
  let bare_rate = best (fun () -> Workloads.router_rig ~path_len:4 ~distinct_packets:65536 ()) in
  let mon_rate =
    best (fun () ->
        Workloads.router_rig ~monitoring:true ~path_len:4 ~distinct_packets:65536 ())
  in
  Printf.printf "%-28s %-14s\n" "router configuration" "Mpps";
  Printf.printf "%-28s %-14.4f\n" "bare fast path (paper's)" (Measure.mpps bare_rate);
  Printf.printf "%-28s %-14.4f\n" "with OFD + dup filter" (Measure.mpps mon_rate);
  Printf.printf "Monitoring overhead: %.1f%%\n"
    (100. *. (1. -. (mon_rate /. bare_rate)))

(* ------------------------------------------------------------------ *)
(* GC accounting: minor words allocated per packet on the wire path.   *)
(* ------------------------------------------------------------------ *)

let gc_mode () =
  Measure.print_header
    "GC: minor-heap words per packet on the data-plane wire path (after warm-up)";
  let sends = if quick then 10_000 else 50_000 in
  Printf.printf "%-34s %-18s %-14s\n" "component" "minor words/pkt" "Mpps";
  let row key name mk_run =
    (* Fresh rig per metric so the allocation count is not polluted by
       the other measurement's warm-up. *)
    let words = Measure.minor_words_per_run ~n:sends (mk_run ()) in
    let rate = Measure.throughput ~n:sends (mk_run ()) in
    record_summary (key ^ "_minor_words_per_pkt") words;
    record_summary (key ^ "_mpps") (Measure.mpps rate);
    Printf.printf "%-34s %-18.3f %-14.4f\n" name words (Measure.mpps rate)
  in
  row "router_bare" "router process_bytes (EER, bare)" (fun () ->
      (Workloads.router_rig ~path_len:4 ~distinct_packets:4096 ()).process);
  (* 2^16 distinct packets: the duplicate filter must never see a
     replay of the measurement traffic itself. *)
  row "router_monitored" "router process_bytes (EER, monitored)" (fun () ->
      (Workloads.router_rig ~monitoring:true ~path_len:4 ~distinct_packets:65536 ())
        .process);
  row "gateway" "gateway send (r=2^15)" (fun () ->
      (Workloads.gateway_rig ~path_len:4 ~reservations:(1 lsl 15) ()).send);
  row "gateway_1500b" "gateway send (r=2^15, 1500B)" (fun () ->
      (Workloads.gateway_rig ~payload_len:1500 ~path_len:4 ~reservations:(1 lsl 15) ())
        .send);
  print_newline ();
  Printf.printf
    "Target (DESIGN.md §8): 0 words/pkt for the bare router fast path; the\n\
     gateway wire path allocates only its result cell.\n"

(* ------------------------------------------------------------------ *)
(* Par: the multicore substrate — SPSC ring transfer and the parallel  *)
(* router at 1 vs 2 domains (ROADMAP multicore item; DESIGN.md §11).   *)
(* ------------------------------------------------------------------ *)

let par_mode () =
  Measure.print_header
    "Par: SPSC ring transfer and the parallel-router 1/2/4-worker scaling curve";
  let xfers = if quick then 200_000 else 1_000_000 in
  (* On a stalled ring (full for the producer, empty for the consumer)
     the bench loops yield the core with a short [Unix.sleepf] instead
     of burning the rest of the OS quantum in [cpu_relax]: on the
     single-core CI container the opposite side can only make progress
     once the scheduler runs it, and a stall means at least a
     ring-capacity-worth of work is waiting on the other side. The lib
     spin paths keep their pure [cpu_relax] (domaincheck d9 — no
     blocking calls in hot spawn closures); the backoff policy belongs
     to the driver. *)
  let stall_backoff () = Unix.sleepf 1e-6 in
  (* 1 domain: the same domain alternates push and pop — the cost of
     the ring machinery without inter-domain cache traffic. *)
  let ring_1d () =
    let r = Par.Spsc_ring.create ~check:false ~dummy:0 1024 in
    let t0 = Measure.now_ns () in
    for i = 0 to xfers - 1 do
      Par.Spsc_ring.push_spin r i;
      ignore (Par.Spsc_ring.pop_spin r)
    done;
    let dt = Int64.to_float (Int64.sub (Measure.now_ns ()) t0) /. 1e9 in
    float_of_int xfers /. dt
  in
  (* 2 domains, element-at-a-time: a spawned producer streams into the
     ring while the orchestrator pops; the measured window includes the
     spawn, which amortizes over the transfer count. *)
  let ring_2d () =
    let r = Par.Spsc_ring.create ~check:false ~dummy:0 1024 in
    let t0 = Measure.now_ns () in
    let producer =
      Domain.spawn (fun () ->
          for i = 0 to xfers - 1 do
            while not (Par.Spsc_ring.try_push r i) do
              stall_backoff ()
            done
          done)
    in
    for _ = 0 to xfers - 1 do
      while Par.Spsc_ring.try_pop r = None do
        stall_backoff ()
      done
    done;
    let dt = Int64.to_float (Int64.sub (Measure.now_ns ()) t0) /. 1e9 in
    Domain.join producer;
    float_of_int xfers /. dt
  in
  (* 2 domains, batched: [push_n]/[pop_into] move 256-element bursts,
     so one acquire/release pair and one cached-index refresh cover
     the burst. *)
  let ring_2d_batched () =
    let burst = 256 in
    let r = Par.Spsc_ring.create ~check:false ~dummy:0 1024 in
    let t0 = Measure.now_ns () in
    let producer =
      Domain.spawn (fun () ->
          let src = Array.init burst (fun i -> i) in
          let sent = ref 0 in
          while !sent < xfers do
            let want = min burst (xfers - !sent) in
            let n = Par.Spsc_ring.push_n r src ~pos:0 ~len:want in
            if n = 0 then stall_backoff () else sent := !sent + n
          done)
    in
    let dst = Array.make burst 0 in
    let got = ref 0 in
    while !got < xfers do
      let want = min burst (xfers - !got) in
      let n = Par.Spsc_ring.pop_into r dst ~pos:0 ~len:want in
      if n = 0 then stall_backoff () else got := !got + n
    done;
    let dt = Int64.to_float (Int64.sub (Measure.now_ns ()) t0) /. 1e9 in
    Domain.join producer;
    float_of_int xfers /. dt
  in
  let r1 = ring_1d () in
  let r2 = ring_2d () in
  let r2b = ring_2d_batched () in
  Printf.printf "%-38s %-14.2f\n" "ring transfer, 1 domain [Mxfer/s]" (r1 /. 1e6);
  Printf.printf "%-38s %-14.2f\n" "ring transfer, 2 domains [Mxfer/s]" (r2 /. 1e6);
  Printf.printf "%-38s %-14.2f\n" "ring transfer, 2 dom batched [Mxfer/s]"
    (r2b /. 1e6);
  Printf.printf "batched vs unbatched: %.2fx\n" (r2b /. r2);
  record_summary "par_ring_1d_mxfers" (r1 /. 1e6);
  record_summary "par_ring_2d_mxfers" (r2 /. 1e6);
  record_summary "par_ring_2d_batched_mxfers" (r2b /. 1e6);
  record_summary "par_ring_batch_x" (r2b /. r2);
  (* Parallel router scaling curve. Two families of keys:

     - [par_router_{k}w_wall_mpps]: wall-clock submit-to-drained rate.
       Faithful parallelism only when the host actually has k+1 cores;
       on the single-core CI container it measures interleaving.
     - [par_router_{k}w_mpps] (headline): on a multicore host, the
       wall-clock rate; on a single-core host, the shared-nothing
       projection of DESIGN.md §3 — the same substitution fig6 makes —
       computed from measured per-packet component costs:
       [min(1/submit_ns, k/busy_ns)] where [submit_ns] is the
       orchestrator's cost to dispatch+copy+hand over one packet
       (measured with no worker running) and [busy_ns] is the worker's
       per-packet processing time measured in the 1-worker run. The
       1-worker busy figure prices the projection for every k: worker
       state is disjoint by construction, and busy time measured while
       k competing domains time-share one core would double-count the
       preemption the projection exists to remove.

     [par_router_scaling_x] is headline_2w / headline_1w, so on real
     multicore it reverts to the honest wall-clock ratio. *)
  let sends = if quick then 20_000 else 50_000 in
  let module PR = Colibri.Dataplane_shard.Parallel_router in
  (* Orchestrator-only component: submit into a router whose worker
     pool has already been joined — packets queue in the rings, nobody
     pops, so the loop prices dispatch + blit + ring handover alone.
     Stops at ring capacity, well before backpressure could block. *)
  let submit_ns_per_pkt =
    let rig =
      Workloads.par_router_rig ~workers:1 ~ring_capacity:128
        ~path_len:4 ~distinct_packets:4096 ()
    in
    let pr = rig.Workloads.par_router in
    PR.shutdown pr;
    let n = 4096 in
    let t0 = Measure.now_ns () in
    let accepted =
      PR.submit_batch pr ~raws:rig.Workloads.batch
        ~payload_lens:rig.Workloads.plens ~pos:0 ~len:n
    in
    let dt = Int64.to_float (Int64.sub (Measure.now_ns ()) t0) in
    dt /. float_of_int (max 1 accepted)
  in
  let router_rate workers =
    let rig =
      Workloads.par_router_rig ~workers ~path_len:4 ~distinct_packets:4096 ()
    in
    let pr = rig.Workloads.par_router in
    let batch = rig.Workloads.batch in
    let t0 = Measure.now_ns () in
    for i = 0 to sends - 1 do
      let raw = batch.(i mod Array.length batch) in
      while not (PR.submit pr ~raw ~payload_len:rig.Workloads.payload_len) do
        stall_backoff ()
      done
    done;
    PR.drain pr;
    let dt = Int64.to_float (Int64.sub (Measure.now_ns ()) t0) /. 1e9 in
    PR.shutdown pr;
    record_metrics
      (Printf.sprintf "par/router_%dw" workers)
      (PR.metrics pr);
    let busy = ref 0 in
    for i = 0 to workers - 1 do
      busy := !busy + PR.worker_busy_ns pr i
    done;
    let busy_ns_per_pkt = float_of_int !busy /. float_of_int sends in
    let wall = float_of_int sends /. dt in
    (wall, busy_ns_per_pkt)
  in
  let multicore k = Domain.recommended_domain_count () > k in
  let curve = List.map (fun k -> (k, router_rate k)) [ 1; 2; 4 ] in
  let busy1 = snd (List.assoc 1 curve) in
  (* Shared-nothing projection (packets/s): the orchestrator feeds at
     1/submit_ns; k workers drain at k/busy1; the pipeline runs at the
     slower stage. *)
  let projected k =
    1e9 /. Float.max submit_ns_per_pkt (busy1 /. float_of_int k)
  in
  Printf.printf "%-10s %-16s %-16s %-16s %s\n" "workers" "wall [Mpps]"
    "projected [Mpps]" "busy [ns/pkt]" "headline";
  let headline =
    List.map
      (fun (k, (wall, busy)) ->
        let h = if multicore k then wall else projected k in
        Printf.printf "%-10d %-16.4f %-16.4f %-16.0f %.4f\n" k
          (Measure.mpps wall)
          (Measure.mpps (projected k))
          busy (Measure.mpps h);
        record_summary (Printf.sprintf "par_router_%dw_wall_mpps" k)
          (Measure.mpps wall);
        record_summary (Printf.sprintf "par_router_%dw_mpps" k)
          (Measure.mpps h);
        (k, h))
      curve
  in
  let h1 = List.assoc 1 headline and h2 = List.assoc 2 headline in
  Printf.printf
    "submit cost: %.0f ns/pkt; worker cost: %.0f ns/pkt; 2-worker scaling: %.2fx\n"
    submit_ns_per_pkt busy1 (h2 /. h1);
  record_summary "par_router_submit_ns" submit_ns_per_pkt;
  record_summary "par_router_busy_ns" busy1;
  record_summary "par_router_scaling_x" (h2 /. h1);
  if not (multicore 1) then
    Printf.printf
      "\nShape caveat (DESIGN.md §3): this host exposes %d core(s), so the\n\
       headline par_router_*_mpps keys are the shared-nothing projection from\n\
       measured per-stage costs (the substitution fig6 already makes); the\n\
       par_router_*w_wall_mpps keys record the honest single-core wall clock.\n\
       On a >=2-core host the headline keys switch to wall clock automatically.\n"
      (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* DoC protection (§5.3): control-message latency under link floods.   *)
(* ------------------------------------------------------------------ *)

let doc () =
  Measure.print_header
    "§5.3 DoC: control-message latency (ms) under best-effort link floods";
  let gbps = Colibri_types.Bandwidth.of_gbps in
  let flood_factors = [ 0.; 0.5; 1.; 2.; 4. ] in
  let cn_snaps = ref [] in
  Printf.printf "%-14s %-22s %-22s\n" "flood [x cap]" "prioritized control"
    "unprotected (BE)";
  List.iter
    (fun factor ->
      let run cls =
        let topo = Colibri_topology.Topology_gen.linear ~n:3 ~capacity:(gbps 1.) in
        let engine = Net.Engine.create () in
        let cn = Colibri.Control_net.create ~engine topo in
        let flood_src =
          if factor > 0. then
            Some
              (Colibri.Control_net.flood cn
                 ~src:(Colibri_types.Ids.asn ~isd:1 ~num:1)
                 ~dst:(Colibri_types.Ids.asn ~isd:1 ~num:2)
                 ~rate:(gbps factor) ())
          else None
        in
        Net.Engine.run engine ~until:0.2;
        let route =
          [
            Colibri_types.Ids.asn ~isd:1 ~num:1;
            Colibri_types.Ids.asn ~isd:1 ~num:2;
            Colibri_types.Ids.asn ~isd:1 ~num:3;
          ]
        in
        let r =
          Colibri.Control_net.measure_latency cn ~route ~cls ~bytes:500 ~timeout:2.0
        in
        Option.iter Net.Source.stop flood_src;
        cn_snaps := Obs.Registry.snapshot (Colibri.Control_net.metrics cn) :: !cn_snaps;
        r
      in
      let show = function
        | Some l -> Printf.sprintf "%.2f ms" (1000. *. l)
        | None -> "LOST"
      in
      Printf.printf "%-14.1f %-22s %-22s\n" factor
        (show (run Net.Traffic_class.Colibri_control))
        (show (run Net.Traffic_class.Best_effort)))
    flood_factors;
  Printf.printf
    "\nPrioritized control traffic (App. B) is flood-immune; naive best-effort\n\
     requests starve once the link saturates - the DoC attack of §5.3.\n";
  record_metrics "doc/control_net" (Obs.merge !cn_snaps)

(* ------------------------------------------------------------------ *)
(* Faults: retry overhead of the reliable control plane under loss.    *)
(* ------------------------------------------------------------------ *)

let faults_mode () =
  Measure.print_header
    "Faults: SegR setup cost under per-link loss (simulated time, retry layer)";
  let gbps = Colibri_types.Bandwidth.of_gbps in
  let mbps = Colibri_types.Bandwidth.of_mbps in
  let setups = if quick then 40 else 150 in
  let run ~loss =
    let topo = Colibri_topology.Topology_gen.linear ~n:5 ~capacity:(gbps 400.) in
    let d = Colibri.Deployment.create topo in
    let faults = Net.Fault.create ~seed:1 () in
    if loss > 0. then
      Net.Fault.set_default faults (Net.Fault.plan ~loss ~jitter:0.001 ());
    Colibri.Deployment.attach_network ~faults ~retry_seed:17 d;
    let path = Colibri_topology.Topology_gen.linear_path ~n:5 in
    let cn = Colibri.Deployment.control_net d in
    let lat_sum = ref 0. and ok = ref 0 in
    for _ = 1 to setups do
      let t0 = Colibri.Deployment.now d in
      (match
         Colibri.Deployment.setup_segr_sync d ~path ~kind:Colibri.Reservation.Core
           ~max_bw:(mbps 100.) ~min_bw:(mbps 1.)
       with
      | Ok _ -> incr ok
      | Error _ -> ());
      lat_sum := !lat_sum +. (Colibri.Deployment.now d -. t0)
    done;
    Colibri.Deployment.advance d 120.;
    record_metrics
      (Printf.sprintf "faults/loss%02.0f" (100. *. loss))
      (Obs.Registry.snapshot (Colibri.Deployment.network_metrics d));
    let sent = float_of_int (Colibri.Control_net.sent_count cn) in
    ( !lat_sum /. float_of_int setups,
      sent /. float_of_int setups,
      float_of_int !ok /. float_of_int setups )
  in
  Printf.printf "%-12s %-18s %-16s %-10s\n" "loss" "setup [sim ms]" "msgs/setup"
    "success";
  let clean_lat, clean_msgs, _ = run ~loss:0. in
  Printf.printf "%-12s %-18.2f %-16.1f %-10s\n" "0%" (1000. *. clean_lat)
    clean_msgs "1.00";
  let lossy_lat, lossy_msgs, lossy_ok = run ~loss:0.05 in
  Printf.printf "%-12s %-18.2f %-16.1f %-10.2f\n" "5%" (1000. *. lossy_lat)
    lossy_msgs lossy_ok;
  record_summary "faults_clean_setup_sim_ms" (1000. *. clean_lat);
  record_summary "faults_loss05_setup_sim_ms" (1000. *. lossy_lat);
  record_summary "faults_latency_overhead_x" (lossy_lat /. clean_lat);
  record_summary "faults_clean_msgs_per_setup" clean_msgs;
  record_summary "faults_loss05_msgs_per_setup" lossy_msgs;
  record_summary "faults_msg_overhead_x" (lossy_msgs /. clean_msgs);
  record_summary "faults_loss05_success_rate" lossy_ok;
  Printf.printf
    "\nRetries recover 5%%-loss setups at the cost of retransmissions and\n\
     backoff latency; the clean path pays no retry overhead (§3.3 cleanup\n\
     by timeout, engine-driven).\n"

(* ------------------------------------------------------------------ *)
(* Backend comparison: the same SegR/EER workload through every         *)
(* admission discipline of the registry (DESIGN.md §12).                *)
(* ------------------------------------------------------------------ *)

let backends_mode () =
  let open Colibri_types in
  let module Backend = Backends.Backend_intf in
  Measure.print_header
    "Backend comparison: identical SegR/EER workload per admission discipline";
  let gbps = Bandwidth.of_gbps and mbps = Bandwidth.of_mbps in
  let asn n = Ids.asn ~isd:1 ~num:n in
  let key src id : Ids.res_key = { src_as = asn src; res_id = id } in
  (* A 4-AS linear path; every hop admits on ingress 1 → egress 2 of
     its own instance, so chained disciplines pay 2 messages per hop
     per admission while flyovers purchase per (source, hop, slice). *)
  let hop_count = 4 in
  let link = gbps 40. in
  let share = 0.80 in
  let sources = 32 in
  let seg_setups = if quick then 64 else 256 in
  let eer_setups = if quick then 512 else 4096 in
  let rows = ref [] in
  List.iter
    (fun (f : Backend.factory) ->
      let insts =
        List.init hop_count (fun _ -> f.Backend.make ~capacity:(fun _ -> link) ())
      in
      let setups = ref 0 and admitted = ref 0 in
      (* Walk the path: forward admission at every hop; on a denial,
         release the partial prefix; chained disciplines then commit
         the path-wide minimum on the way back. *)
      let walk_seg ~key ~version ~src ~demand ~exp_time ~now =
        incr setups;
        let req : Backend.seg_request =
          { key; version; src; ingress = 1; egress = 2; demand;
            min_bw = Bandwidth.of_kbps 1.; exp_time }
        in
        let rec forward acc = function
          | [] -> Some (List.rev acc)
          | inst :: rest -> (
              match Backend.admit_seg inst ~req ~now with
              | Backend.Granted g -> forward ((inst, g) :: acc) rest
              | Backend.Denied _ ->
                  List.iter
                    (fun (i, _) -> Backend.remove_seg i ~key ~version ~now)
                    acc;
                  None)
        in
        match forward [] insts with
        | None -> ()
        | Some grants ->
            if Backend.commit_required (List.hd insts) then begin
              let gmin =
                List.fold_left (fun m (_, g) -> Bandwidth.min m g) demand grants
              in
              List.iter
                (fun (i, _) ->
                  match Backend.commit_seg i ~key ~version ~granted:gmin with
                  | Ok () -> ()
                  | Error e -> failwith e)
                grants
            end;
            incr admitted
      in
      let walk_eer ~key ~version ~segr ~demand ~exp_time ~now =
        incr setups;
        let req : Backend.eer_request =
          { key; version; segrs = [ (segr, mbps 400.) ]; via_up = None;
            ingress = 1; egress = 2; demand; renewal = false; exp_time }
        in
        let rec forward acc = function
          | [] -> incr admitted; true
          | inst :: rest -> (
              match Backend.admit_eer inst ~req ~now with
              | Backend.Granted _ -> forward (inst :: acc) rest
              | Backend.Denied _ ->
                  List.iter
                    (fun i -> Backend.remove_eer i ~key ~version ~now)
                    acc;
                  false)
        in
        forward [] insts
      in
      (* Stable population: one long-lived SegR per source, then a
         contention round that loads the link share to ~88% — enough
         room that the short-flow churn below is where the disciplines
         actually differ. *)
      for s = 1 to sources do
        walk_seg ~key:(key s 1) ~version:1 ~src:(asn s) ~demand:(mbps 400.)
          ~exp_time:240. ~now:0.
      done;
      for i = 1 to seg_setups do
        let src = 1 + (i mod sources) in
        walk_seg ~key:(key src (10_000 + i)) ~version:1 ~src:(asn src)
          ~demand:(mbps 60.) ~exp_time:240. ~now:0.
      done;
      (* EER churn: the high-volume phase the per-setup latency is
         measured on. Short-lived flows arrive every 10 simulated ms
         (steady state ≈ 1600 live flows, 8 Gbps — more than the
         remaining headroom, so hard-denial disciplines shed flows
         that proportional sharing and flyover re-booking carry); one
         in eight is torn down immediately (retry/failure paths). *)
      let t0 = Unix.gettimeofday () in
      for i = 1 to eer_setups do
        let src = 1 + (i mod sources) in
        let now = 0.01 *. float_of_int i in
        let k = key src (100_000 + i) in
        let ok =
          walk_eer ~key:k ~version:1 ~segr:(key src 1) ~demand:(mbps 5.)
            ~exp_time:(now +. 16.) ~now
        in
        if ok && i mod 8 = 0 then
          List.iter (fun inst -> Backend.remove_eer inst ~key:k ~version:1 ~now) insts
      done;
      let eer_wall = Unix.gettimeofday () -. t0 in
      let setup_latency_us = 1e6 *. eer_wall /. float_of_int eer_setups in
      (* End-of-run bandwidth promised on the first hop's link, over
         the Colibri share: per-hop disciplines count live EERs here
         (DiffServ's blind grants push it past 1.0), while the
         reference backend books EERs inside the SegR grants it
         already accounts. *)
      let utilization =
        Bandwidth.to_bps (Backend.seg_allocated_on (List.hd insts) ~egress:2)
        /. (share *. Bandwidth.to_bps link)
      in
      let msgs =
        List.fold_left (fun acc i -> acc + Backend.control_messages i) 0 insts
      in
      let msgs_per_setup = float_of_int msgs /. float_of_int !setups in
      let admit_rate = float_of_int !admitted /. float_of_int !setups in
      (match List.concat_map Backend.audit insts with
      | [] -> ()
      | errs -> failwith (String.concat "; " errs));
      record_metrics
        ("backends/" ^ f.Backend.label)
        (Obs.merge (List.map Backend.obs_snapshot insts));
      let p fmt = Printf.sprintf fmt in
      record_summary (p "backend_%s_setup_latency" f.Backend.label) setup_latency_us;
      record_summary (p "backend_%s_msgs_per_setup" f.Backend.label) msgs_per_setup;
      record_summary (p "backend_%s_utilization" f.Backend.label) utilization;
      record_summary (p "backend_%s_admit_rate" f.Backend.label) admit_rate;
      rows :=
        (f.Backend.label, admit_rate, msgs_per_setup, utilization, setup_latency_us)
        :: !rows)
    Backends.All.all;
  Printf.printf "%-10s %12s %12s %12s %14s\n" "backend" "admit_rate" "msgs/setup"
    "utilization" "us/eer-setup";
  List.iter
    (fun (label, ar, ms, ut, lat) ->
      Printf.printf "%-10s %12.3f %12.2f %12.3f %14.2f\n" label ar ms ut lat)
    (List.rev !rows);
  Printf.printf
    "\nChained disciplines (ntube, intserv) pay 2 control messages per hop\n\
     per admission; flyovers only purchase quanta ahead of time and book\n\
     inside their holdings for free; DiffServ signals nothing but\n\
     oversubscribes (utilization > 1 = promised bandwidth beyond the link\n\
     share — the failure admission control exists to prevent).\n"

(* ------------------------------------------------------------------ *)
(* Attack mode: the adversarial suite as a benchmark (§5.1).            *)
(* ------------------------------------------------------------------ *)

(** Runs the three @attack scenarios against every backend and distills
    them into the defense metrics the paper argues about: the honest
    share of a contested trunk under setup spam (N-Tube fairness), how
    fast the §4.8 chain flags a paid-R-sending-kR overuser, and how
    much a crash-synchronized renewal storm amplifies control traffic
    over a clean run. *)
let attack_mode () =
  Measure.print_header "Attack: reservation-layer DDoS defense metrics";
  let s = Attack.Scenario.run_suite ~seed:1 in
  Printf.printf "%-10s %14s %14s %16s %14s\n" "backend" "honest_share"
    "bots_admitted" "detect_windows" "amplification";
  let enforcing_share = ref infinity in
  let diffserv_share = ref 0. in
  List.iter
    (fun (r : Attack.Scenario.exhaustion_report) ->
      if r.xh_bound_enforced then
        enforcing_share := Float.min !enforcing_share r.xh_honest_share
      else diffserv_share := r.xh_honest_share)
    s.s_exhaustion;
  let detection = ref 0. and amplification = ref 0. in
  List.iter
    (fun (r : Attack.Scenario.overuse_report) ->
      detection := Float.max !detection r.ou_detection_windows)
    s.s_overuse;
  List.iter
    (fun (r : Attack.Scenario.storm_report) ->
      amplification := Float.max !amplification r.st_amplification)
    s.s_storm;
  List.iter2
    (fun (x : Attack.Scenario.exhaustion_report)
         ((o : Attack.Scenario.overuse_report),
          (t : Attack.Scenario.storm_report)) ->
      Printf.printf "%-10s %14.3f %11d/%d %16.2f %13.2fx\n" x.xh_backend
        x.xh_honest_share x.xh_bot_seg_granted x.xh_bot_seg_attempts
        o.ou_detection_windows t.st_amplification)
    s.s_exhaustion
    (List.combine s.s_overuse s.s_storm);
  record_summary "attack_honest_share_min" !enforcing_share;
  record_summary "attack_diffserv_honest_share" !diffserv_share;
  record_summary "attack_detection_latency_windows" !detection;
  record_summary "attack_amplification_x" !amplification;
  Printf.printf
    "\nEnforcing backends keep the honest share bounded below under spam\n\
     (DiffServ, with no admission, dilutes it to %.3f); overusers are\n\
     flagged within one OFD window; retry budgets hold renewal-storm\n\
     amplification to %.2fx over a clean run.\n"
    !diffserv_share !amplification

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure.           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let module M = Measure in
  let open Bechamel in
  let open Toolkit in
  let fig3_rig = Workloads.fig3 ~existing:(if quick then 1000 else 10_000) ~ratio:0.5 in
  let fig4_rig =
    Workloads.fig4
      ~existing:(if quick then 1000 else 10_000)
      ~segrs_same_source:(if quick then 100 else 5000)
  in
  let gw = Workloads.gateway_rig ~path_len:4 ~reservations:(1 lsl 15) () in
  let br = Workloads.router_rig ~path_len:4 ~distinct_packets:4096 () in
  let t2_phase = List.assoc "phase 1" Table2.phases in
  let counter = ref 0 in
  let tick f = fun () -> incr counter; f !counter in
  let tests =
    [
      Test.make ~name:"fig3/segr-admission" (Staged.stage (tick fig3_rig.probe));
      Test.make ~name:"fig4/eer-admission" (Staged.stage (tick fig4_rig.probe));
      Test.make ~name:"fig5/gateway-send" (Staged.stage (tick gw.send));
      Test.make ~name:"fig6/router-process" (Staged.stage (tick br.process));
      Test.make ~name:"table2/one-phase"
        (Staged.stage (fun () -> ignore (Table2.run_phase t2_phase)));
      Test.make ~name:"appE/gateway-send-1500B"
        (Staged.stage
           (tick (Workloads.gateway_rig ~payload_len:1500 ~path_len:4
                    ~reservations:(1 lsl 10) ())
                   .send));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  M.print_header "Bechamel micro-benchmarks (ns per run, OLS)";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let all () =
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ();
  Table2.run ();
  app_e ();
  ablation ();
  gc_mode ();
  par_mode ();
  doc ();
  faults_mode ();
  backends_mode ();
  attack_mode ()

let () =
  let cmds =
    [
      ("fig3", fig3);
      ("fig4", fig4);
      ("fig5", fig5);
      ("fig6", fig6);
      ("table2", Table2.run);
      ("appE", app_e);
      ("ablation", ablation);
      ("gc", gc_mode);
      ("par", par_mode);
      ("doc", doc);
      ("faults", faults_mode);
      ("backends", backends_mode);
      ("attack", attack_mode);
      ("bechamel", bechamel_suite);
      ("all", all);
    ]
  in
  let requested =
    Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--quick")
  in
  (match requested with
  | [] -> all ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name cmds with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown benchmark %S; available: %s\n" name
                (String.concat ", " (List.map fst cmds));
              exit 1)
        names);
  write_metrics ();
  write_summary ()
