let () = exit (Wiretaint.run_cli (List.tl (Array.to_list Sys.argv)))
