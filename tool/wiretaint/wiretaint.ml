(** [colibri-wiretaint]: attacker-controlled-input taint analysis for
    the wire path (DESIGN.md §13).

    Every byte the dataplane and admission plane consume arrives from
    an untrusted AS. This pass reads the [.cmt] typedtrees (same
    loading and name-canonicalization layer as [colibri-deepscan]) and
    tracks wire-derived values — the results of the {!Packet.View}
    accessors, [Packet.of_bytes] record fields, [Ids.asn_of_bytes],
    [Path.hop_of_bytes]/[of_bytes] and raw [Bytes.get_*] reads — to
    four sink families:

    - [w1] — byte/array/string indexing and blit offsets;
    - [w2] — allocation sizes ([Bytes.create], [Array.make], table
      capacities);
    - [w3] — loop bounds and [count:]/[off:]-style trip parameters;
    - [w4] — bandwidth-ledger arithmetic ([Acc.add] amounts in
      [Backends.Ntube]/[Flyover], [int_of_float] slice-index math)
      where an attacker-chosen magnitude can overflow, wrap, or poison
      a float accumulator with inf/NaN.

    Taint is {e interprocedural}: it flows through function arguments
    (positional and labeled), through record fields (a field assigned
    a tainted value anywhere marks that (type, label) pair globally),
    and through function results, to a fixpoint over all loaded
    modules — a getter in [lib/core/packet.ml] can taint a slice
    computation three calls away in [lib/backends/flyover.ml].

    {b Sanitizers} release taint: a comparison guard whose condition
    mentions the value (by ident or by access path such as
    [req.res_info.bw]) dominates both branches of its conditional —
    the d5 pragmatic reading; a use sequenced {e after} the
    conditional, or guarded only through an intermediate boolean, is
    still flagged. Bounding calls ([min], [Float.min], [land], [mod],
    [Char.code], [Bandwidth.clamp]/[saturating_add]/[checked_add], the
    flyover slice clamp) also sanitize. [Float.max]/[max] do {e not}:
    they bound only from below, which is the wrong side for an index
    or an allocation size.

    Suppression: [[@colibri.allow "w1"]] on the expression or
    [[@@colibri.allow]] on the binding — findings are carried and
    flagged like domaincheck, never dropped, so suppression reviews
    can audit what the escape hatch hides. *)

open Typedtree
module SS = Deepscan.SS
module Finding = Lint.Finding

let rule_names = [ "w1"; "w2"; "w3"; "w4" ]

(* --------------------------- rule tables --------------------------- *)

(* Sources: calls whose result is wire-derived. The [View] accessors
   whose value [parse] itself bounds against the frame ([kind],
   [hops], [payload_len]'s sign... no: payload_len magnitude is
   unchecked above zero and stays a source) are handled as follows:
   [kind] and [hops] are excluded (magic/kind/hop-count/length checks
   dominate them), everything whose magnitude the parser does not
   bound stays in. *)
let source_calls =
  SS.of_list
    [
      "Packet.of_bytes"; "Packet.res_info_of_bytes"; "Packet.eer_info_of_bytes";
      "Ids.asn_of_bytes"; "Path.hop_of_bytes"; "Path.of_bytes";
      "Wire.get16"; "Wire.get32"; "Wire.get64";
      "Bytes.get"; "Bytes.unsafe_get"; "Bytes.get_uint8"; "Bytes.get_int8";
      "Bytes.get_uint16_be"; "Bytes.get_uint16_le"; "Bytes.get_int16_be";
      "Bytes.get_int16_le"; "Bytes.get_int32_be"; "Bytes.get_int32_le";
      "Bytes.get_int64_be"; "Bytes.get_int64_le";
      "View.payload_len"; "View.ts"; "View.src_isd"; "View.src_num";
      "View.res_id"; "View.version"; "View.bw_bps_int"; "View.exp_time_us";
      "View.bw"; "View.exp_time"; "View.eer_src_addr"; "View.eer_dst_addr";
      "View.hop_isd"; "View.hop_num"; "View.hop_ingress"; "View.hop_egress";
      "View.hop"; "View.hvf"; "View.res_info"; "View.eer_info";
    ]

(* Sanitizers: calls whose result is bounded regardless of input.
   [Char.code] is byte-ranged; [land]/[mod] mask; [min]-family bounds
   from above. [max]/[Float.max] deliberately absent. *)
let sanitizer_calls =
  SS.of_list
    [
      "min"; "Int.min"; "Float.min"; "Bandwidth.min"; "land"; "mod";
      "Char.code"; "Bandwidth.clamp"; "Bandwidth.checked_add";
      "Bandwidth.saturating_add"; "Bandwidth.saturating_add_bps";
      "clamp_slice"; "Flyover.clamp_slice"; "B.clamp_slice"; "Hashtbl.hash";
      "Ts.us_of_time"; "us_of_time";
    ]

(* Propagators: taint passes from any argument to the result. *)
let propagate_calls =
  SS.of_list
    [
      "+"; "-"; "*"; "/"; "+."; "-."; "*."; "/."; "~-"; "~-."; "succ"; "pred";
      "lsl"; "lsr"; "asr"; "lor"; "lxor"; "lnot";
      "float_of_int"; "int_of_float"; "Float.of_int"; "Float.to_int";
      "Float.round"; "Float.ceil"; "Float.floor"; "Float.abs"; "abs"; "max";
      "Float.max"; "Bandwidth.max";
      "Int32.to_int"; "Int32.of_int"; "Int64.to_int"; "Int64.of_int";
      "Int32.to_float"; "Int64.to_float"; "Int32.of_float"; "Int64.of_float";
      "Char.chr"; "ref"; "!"; "Option.value"; "Option.get"; "Option.some";
      "Bandwidth.of_bps"; "Bandwidth.to_bps"; "Bandwidth.of_kbps";
      "Bandwidth.of_mbps"; "Bandwidth.of_gbps"; "Bandwidth.to_gbps";
      "Bandwidth.to_mbps"; "Bandwidth.add"; "Bandwidth.sub"; "Bandwidth.scale";
      "Bandwidth.div"; "Timebase.Ts.of_int"; "Timebase.Ts.to_int";
      "Ts.of_int"; "Ts.to_int"; "Ids.asn"; "Ids.host";
    ]

(* Sinks: rule, then the 0-based positions (among [Nolabel] arguments)
   that must not receive a tainted value. *)
let sink_entries : (string * (string * int list)) list =
  [
    (* w1: indices and blit/sub offsets. *)
    ("Bytes.get", ("w1", [ 1 ])); ("Bytes.set", ("w1", [ 1 ]));
    ("Bytes.unsafe_get", ("w1", [ 1 ])); ("Bytes.unsafe_set", ("w1", [ 1 ]));
    ("Bytes.get_uint8", ("w1", [ 1 ])); ("Bytes.get_int8", ("w1", [ 1 ]));
    ("Bytes.get_uint16_be", ("w1", [ 1 ])); ("Bytes.get_uint16_le", ("w1", [ 1 ]));
    ("Bytes.get_int16_be", ("w1", [ 1 ])); ("Bytes.get_int16_le", ("w1", [ 1 ]));
    ("Bytes.get_int32_be", ("w1", [ 1 ])); ("Bytes.get_int32_le", ("w1", [ 1 ]));
    ("Bytes.get_int64_be", ("w1", [ 1 ])); ("Bytes.get_int64_le", ("w1", [ 1 ]));
    ("Bytes.set_uint8", ("w1", [ 1 ])); ("Bytes.set_int8", ("w1", [ 1 ]));
    ("Bytes.set_uint16_be", ("w1", [ 1 ])); ("Bytes.set_int16_be", ("w1", [ 1 ]));
    ("Bytes.set_int32_be", ("w1", [ 1 ])); ("Bytes.set_int64_be", ("w1", [ 1 ]));
    ("Bytes.sub", ("w1", [ 1; 2 ])); ("Bytes.sub_string", ("w1", [ 1; 2 ]));
    ("Bytes.fill", ("w1", [ 1; 2 ])); ("Bytes.blit", ("w1", [ 1; 3; 4 ]));
    ("Bytes.blit_string", ("w1", [ 1; 3; 4 ]));
    ("String.get", ("w1", [ 1 ])); ("String.sub", ("w1", [ 1; 2 ]));
    ("Array.get", ("w1", [ 1 ])); ("Array.set", ("w1", [ 1 ]));
    ("Array.unsafe_get", ("w1", [ 1 ])); ("Array.unsafe_set", ("w1", [ 1 ]));
    ("Array.sub", ("w1", [ 1; 2 ])); ("Array.fill", ("w1", [ 1; 2 ]));
    ("Array.blit", ("w1", [ 1; 3; 4 ]));
    ("Wire.get16", ("w1", [ 1 ])); ("Wire.get32", ("w1", [ 1 ]));
    ("Wire.get64", ("w1", [ 1 ])); ("Wire.put16", ("w1", [ 1 ]));
    ("Wire.put32", ("w1", [ 1 ])); ("Wire.put64", ("w1", [ 1 ]));
    (* w2: allocation sizes and table capacities. *)
    ("Bytes.create", ("w2", [ 0 ])); ("Bytes.make", ("w2", [ 0 ]));
    ("Bytes.extend", ("w2", [ 1; 2 ]));
    ("Array.make", ("w2", [ 0 ])); ("Array.init", ("w2", [ 0 ]));
    ("String.make", ("w2", [ 0 ])); ("Buffer.create", ("w2", [ 0 ]));
    ("Hashtbl.create", ("w2", [ 0 ])); ("List.init", ("w2", [ 0 ]));
    (* w4: ledger accumulation amounts and float->int slice math. *)
    ("int_of_float", ("w4", [ 0 ])); ("Float.to_int", ("w4", [ 0 ]));
    ("Acc.add", ("w4", [ 2 ])); ("Iface_acc.add", ("w4", [ 2 ]));
    ("Tube_acc.add", ("w4", [ 2 ])); ("Src_acc.add", ("w4", [ 2 ]));
    ("Res_acc.add", ("w4", [ 2 ])); ("Pair_acc.add", ("w4", [ 2 ]));
    ("Cell_acc.add", ("w4", [ 2 ])); ("Hold_acc.add", ("w4", [ 2 ]));
  ]

(* Labeled arguments that are trip counts or byte offsets wherever
   they appear (the wire-path naming convention). *)
let labeled_sinks = [ ("count", "w3"); ("off", "w1"); ("pos", "w1"); ("len", "w1") ]

let sink_tbl : (string, string * int list) Hashtbl.t =
  let t = Hashtbl.create 97 in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) sink_entries;
  t

let find_sink (name : string) : (string * int list) option =
  match Hashtbl.find_opt sink_tbl name with
  | Some _ as s -> s
  | None -> (
      match List.rev (String.split_on_char '.' name) with
      | f :: m :: _ :: _ -> Hashtbl.find_opt sink_tbl (m ^ "." ^ f)
      | _ -> None)

let rule_word = function
  | "w1" -> "byte/array index or blit offset"
  | "w2" -> "allocation size"
  | "w3" -> "loop bound / trip count"
  | "w4" -> "bandwidth-ledger arithmetic"
  | _ -> "sink"

(* ------------------------------ facts ------------------------------ *)

(* Reasons are human-readable provenance chains; facts are first-wins
   (never updated), which both bounds chain growth and guarantees the
   fixpoint terminates: every table only grows. *)
type facts = {
  f_param : (string * string, string) Hashtbl.t; (* (node, param key) -> why *)
  f_field : (string, string) Hashtbl.t; (* "Head.type.label" -> why *)
  f_result : (string, string) Hashtbl.t; (* node -> why *)
  mutable f_grew : bool;
}

let fact_add (tbl : ('a, string) Hashtbl.t) (facts : facts) k why =
  if not (Hashtbl.mem tbl k) then begin
    Hashtbl.replace tbl k why;
    facts.f_grew <- true
  end

let cap_reason (r : string) : string =
  if String.length r > 140 then String.sub r 0 137 ^ "..." else r

(* ------------------------------ nodes ------------------------------ *)

type node = {
  n_name : string; (* canonical, e.g. "Flyover.B.slice_of" *)
  n_file : string;
  n_line : int;
  n_vb : value_binding;
  n_allowed : SS.t;
}

type modul = {
  m_name : string;
  m_nodes : node list;
  m_idents : (string, string) Hashtbl.t; (* Ident.unique_name -> node name *)
}

let collect_nodes ~(m_name : string) (str : structure) :
    node list * (string, string) Hashtbl.t =
  let idents = Hashtbl.create 32 in
  let nodes = ref [] in
  let rec items prefix (its : structure_item list) =
    List.iter
      (fun (it : structure_item) ->
        match it.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, name) | Tpat_alias (_, id, name) ->
                    let n_name = prefix ^ "." ^ name.txt in
                    let loc = vb.vb_loc.loc_start in
                    Hashtbl.replace idents (Ident.unique_name id) n_name;
                    nodes :=
                      {
                        n_name;
                        n_file = loc.pos_fname;
                        n_line = loc.pos_lnum;
                        n_vb = vb;
                        n_allowed = Deepscan.attrs_allowed vb.vb_attributes;
                      }
                      :: !nodes
                | _ -> ())
              vbs
        | Tstr_module mb -> module_binding prefix mb
        | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
        | _ -> ())
      its
  and module_binding prefix (mb : module_binding) =
    let sub = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
    let rec expr (me : module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> items (prefix ^ "." ^ sub) s.str_items
      | Tmod_constraint (me, _, _, _) -> expr me
      | Tmod_functor (_, me) -> expr me
      | _ -> ()
    in
    expr mb.mb_expr
  in
  items m_name str.str_items;
  (List.rev !nodes, idents)

(* Same suffix-indexed resolver as deepscan: full name plus dotted
   suffixes of length >= 2; ambiguous suffixes resolve to nothing. *)
let build_resolver (mods : modul list) : (string, node option) Hashtbl.t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun m ->
      List.iter
        (fun node ->
          let comps = String.split_on_char '.' node.n_name in
          let rec suffixes = function
            | [] | [ _ ] -> []
            | _ :: rest as l -> String.concat "." l :: suffixes rest
          in
          List.iter
            (fun key ->
              match Hashtbl.find_opt tbl key with
              | None -> Hashtbl.replace tbl key (Some node)
              | Some (Some other) when other != node -> Hashtbl.replace tbl key None
              | Some _ -> ())
            (suffixes comps))
        m.m_nodes)
    mods;
  tbl

(* --------------------------- tree helpers -------------------------- *)

let rec pat_idents : type k. k general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ Ident.unique_name id ]
  | Tpat_alias (p, id, _) -> Ident.unique_name id :: pat_idents p
  | Tpat_tuple ps -> List.concat_map pat_idents ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_idents ps
  | Tpat_variant (_, Some p, _) -> pat_idents p
  | Tpat_record (fields, _) -> List.concat_map (fun (_, _, p) -> pat_idents p) fields
  | Tpat_array ps -> List.concat_map pat_idents ps
  | Tpat_or (a, b, _) -> pat_idents a @ pat_idents b
  | Tpat_lazy p -> pat_idents p
  | Tpat_value v -> pat_idents (v :> value general_pattern)
  | _ -> []

(* The curried parameter spine of a binding: (label, pattern) per
   parameter, and the innermost body. *)
let rec spine_params (e : expression) :
    (Asttypes.arg_label * value general_pattern) list * expression =
  match e.exp_desc with
  | Texp_function { arg_label; cases = [ c ]; _ } ->
      let ps, body = spine_params c.c_rhs in
      ((arg_label, c.c_lhs) :: ps, body)
  | _ -> ([], e)

let param_key (label : Asttypes.arg_label) (nolabel_pos : int) : string =
  match label with
  | Asttypes.Nolabel -> string_of_int nolabel_pos
  | Asttypes.Labelled s | Asttypes.Optional s -> "~" ^ s

(* ---------------------------- analysis ----------------------------- *)

type ctx = {
  wrappers : SS.t;
  resolver : (string, node option) Hashtbl.t;
  facts : facts;
}

let canon (ctx : ctx) p = Deepscan.canon ~wrappers:ctx.wrappers p

(* A record field fact is keyed by [typename.label] using only the
   {e last} component of the record type's constructor — deliberately
   coarse. The same declaration is seen under different paths from
   different modules (cserv's [Backend.seg_request] vs ntube's
   [Backend_intf.seg_request] — a module alias; [Packet.res_info] via
   the .mli from outside vs the .ml inside), and taint must survive
   all of those views as well as the first-class-module backend
   dispatch, which no call-graph edge crosses. Distinct types sharing
   both a name and a label merge — over-tainting, the safe direction
   (DESIGN.md §13). The fully-qualified head as written at the use
   site is kept as the human-readable display name. *)
let field_key (ctx : ctx) ~(self_mod : string)
    (lbl : Types.label_description) : (string * string) option =
  match Types.get_desc lbl.Types.lbl_res with
  | Types.Tconstr (p, _, _) ->
      let comps =
        Deepscan.canon_components ~wrappers:ctx.wrappers
          (Deepscan.path_components p)
      in
      let head =
        match comps with
        | [ single ] -> self_mod ^ "." ^ single
        | l -> String.concat "." l
      in
      let last = match List.rev comps with c :: _ -> c | [] -> "?" in
      Some (last ^ "." ^ lbl.Types.lbl_name, head ^ "." ^ lbl.Types.lbl_name)
  | _ -> None

(* Analyze one node: propagate facts; when [emit] is given, also fire
   the sink rules. Returns nothing — facts accumulate in [ctx]. *)
let analyze (ctx : ctx) (m : modul) (node : node)
    ~(emit : (rule:string -> line:int -> msg:string -> allowed:SS.t -> unit) option)
    : unit =
  let self_mod = m.m_name in
  let env : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let sanitized : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let allowed = ref node.n_allowed in
  (* Resolve a value path: local idents map through the module table to
     their full node name; everything else keeps its canonical name. *)
  let resolved_name (p : Path.t) : string =
    let name = canon ctx p in
    match p with
    | Path.Pident id ->
        Option.value ~default:name
          (Hashtbl.find_opt m.m_idents (Ident.unique_name id))
    | _ -> name
  in
  let resolve_node (name : string) : node option =
    match Hashtbl.find_opt ctx.resolver name with
    | Some (Some n) -> Some n
    | _ -> None
  in
  let rec access_path (e : expression) : string option =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> Some (Ident.unique_name id)
    | Texp_field (b, _, lbl) ->
        Option.map (fun p -> p ^ "." ^ lbl.Types.lbl_name) (access_path b)
    | _ -> None
  in
  let sanitized_expr (e : expression) : bool =
    match access_path e with Some p -> Hashtbl.mem sanitized p | None -> false
  in
  (* Value taint of an expression, as a provenance string. Pure: env,
     sanitized and the fact tables are read, never written. *)
  let rec taint_of (e : expression) : string option =
    if sanitized_expr e then None
    else
      match e.exp_desc with
      | Texp_ident (Path.Pident id, _, _) -> (
          match Hashtbl.find_opt env (Ident.unique_name id) with
          | Some _ as r -> r
          | None -> result_taint (resolved_name (Path.Pident id)))
      | Texp_ident (p, _, _) -> result_taint (canon ctx p)
      | Texp_constant _ -> None
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
          apply_taint (resolved_name p) args
      | Texp_apply (f, args) -> (
          match taint_of f with
          | Some _ as r -> r
          | None -> first_arg_taint args)
      | Texp_field (base, _, lbl) -> (
          match field_taint lbl with Some _ as r -> r | None -> taint_of base)
      | Texp_let (_, _, body) -> taint_of body
      | Texp_sequence (_, b) -> taint_of b
      | Texp_open (_, b) -> taint_of b
      | Texp_try (b, _) -> taint_of b
      | Texp_ifthenelse (_, a, b) -> (
          match taint_of a with
          | Some _ as r -> r
          | None -> Option.bind b taint_of)
      | Texp_match (_, cases, _) ->
          List.fold_left
            (fun acc c -> match acc with Some _ -> acc | None -> taint_of c.c_rhs)
            None cases
      | Texp_construct (_, _, args) -> first_taint args
      | Texp_variant (_, Some a) -> taint_of a
      | Texp_tuple es -> first_taint es
      | Texp_array es -> first_taint es
      | Texp_record { extended_expression = Some b; _ } -> taint_of b
      | _ -> None
  and first_taint es =
    List.fold_left
      (fun acc e -> match acc with Some _ -> acc | None -> taint_of e)
      None es
  and first_arg_taint args =
    List.fold_left
      (fun acc (_, a) ->
        match (acc, a) with
        | (Some _ as r), _ -> r
        | None, Some e -> taint_of e
        | None, None -> None)
      None args
  and result_taint (name : string) : string option =
    match Hashtbl.find_opt ctx.facts.f_result name with
    | Some _ as r -> r
    | None -> (
        match resolve_node name with
        | Some n -> Hashtbl.find_opt ctx.facts.f_result n.n_name
        | None -> None)
  and field_taint (lbl : Types.label_description) : string option =
    match field_key ctx ~self_mod lbl with
    | Some (k, _) -> Hashtbl.find_opt ctx.facts.f_field k
    | None -> None
  and apply_taint (name : string) args : string option =
    if Deepscan.mem_qualified source_calls name then
      Some (Printf.sprintf "wire read [%s]" name)
    else if Deepscan.mem_qualified sanitizer_calls name then None
    else if Deepscan.mem_qualified propagate_calls name then first_arg_taint args
    else result_taint name
  in
  (* Bind a let/match pattern against the taint of its RHS; record
     patterns additionally consult the per-field facts, so
     [let { bw; _ } = p.res_info] taints [bw] even when the record
     value itself is clean. *)
  let fact_tainted_local why u =
    if not (Hashtbl.mem env u) then Hashtbl.replace env u (cap_reason why)
  in
  let bind_ident = fact_tainted_local in
  let rec bind_pattern : type k.
      k general_pattern -> ?rhs:expression -> string option -> unit =
   fun p ?rhs rhs_taint ->
    match (p.pat_desc, rhs) with
    (* Component-wise tuple destructuring: [match (a, b) with x, y ->]
       must not taint [y] just because [a] is tainted. *)
    | Tpat_tuple ps, Some { exp_desc = Texp_tuple es; _ }
      when List.length ps = List.length es ->
        List.iter2 (fun sp se -> bind_pattern sp ~rhs:se (taint_of se)) ps es
    | Tpat_value v, _ ->
        bind_pattern (v :> value general_pattern) ?rhs rhs_taint
    | _ -> bind_pattern_flat p rhs_taint
  and bind_pattern_flat : type k. k general_pattern -> string option -> unit =
   fun p rhs_taint ->
    match p.pat_desc with
    | Tpat_record (fields, _) ->
        List.iter
          (fun (_, lbl, sp) ->
            match
              ( field_key ctx ~self_mod lbl,
                rhs_taint )
            with
            | Some (k, _), _ when Hashtbl.mem ctx.facts.f_field k ->
                List.iter
                  (bind_ident (Hashtbl.find ctx.facts.f_field k))
                  (pat_idents sp)
            | _, Some why -> List.iter (bind_ident why) (pat_idents sp)
            | _, None -> ())
          fields
    | Tpat_alias (sp, id, _) ->
        (match rhs_taint with
        | Some why -> bind_ident why (Ident.unique_name id)
        | None -> ());
        bind_pattern sp rhs_taint
    | Tpat_value v -> bind_pattern (v :> value general_pattern) rhs_taint
    | Tpat_or (a, b, _) ->
        bind_pattern a rhs_taint;
        bind_pattern b rhs_taint
    | _ -> (
        match rhs_taint with
        | Some why -> List.iter (bind_ident why) (pat_idents p)
        | None -> ())
  in
  (* Access paths mentioned by a guard condition: idents plus
     ident.field... chains. Mentioning a path sanitizes it inside the
     conditional's branches. *)
  let collect_paths (e : expression) : string list =
    let acc = ref [] in
    let super = Tast_iterator.default_iterator in
    let expr sub (e : expression) =
      (match e.exp_desc with
      | Texp_ident (Path.Pident id, _, _) -> acc := Ident.unique_name id :: !acc
      | Texp_field _ -> (
          match access_path e with Some p -> acc := p :: !acc | None -> ())
      | _ -> ());
      super.expr sub e
    in
    let it = { super with expr } in
    it.expr it e;
    !acc
  in
  let with_sanitized (paths : string list) (k : unit -> unit) : unit =
    let added =
      List.filter
        (fun p ->
          if Hashtbl.mem sanitized p then false
          else begin
            Hashtbl.replace sanitized p ();
            true
          end)
        paths
    in
    k ();
    List.iter (Hashtbl.remove sanitized) added
  in
  let sink_check ~(line : int) ~(what : string) (rule : string)
      (arg : expression) : unit =
    match emit with
    | None -> ()
    | Some emit -> (
        match taint_of arg with
        | None -> ()
        | Some why ->
            emit ~rule ~line
              ~msg:
                (Printf.sprintf
                   "wire-tainted %s at [%s]: %s; add a dominating bounds \
                    check or clamp"
                   (rule_word rule) what (cap_reason why))
              ~allowed:!allowed)
  in
  (* The walker: one pass over the body, collecting facts and (when
     [emit] is set) firing the sink checks. *)
  let super = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    let saved_allowed = !allowed in
    allowed := SS.union saved_allowed (Deepscan.attrs_allowed e.exp_attributes);
    (match e.exp_desc with
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun (vb : value_binding) ->
            sub.Tast_iterator.expr sub vb.vb_expr;
            bind_pattern vb.vb_pat ~rhs:vb.vb_expr (taint_of vb.vb_expr))
          vbs;
        sub.Tast_iterator.expr sub body
    | Texp_ifthenelse (cond, a, b) ->
        sub.Tast_iterator.expr sub cond;
        with_sanitized (collect_paths cond) (fun () ->
            sub.Tast_iterator.expr sub a;
            Option.iter (sub.Tast_iterator.expr sub) b)
    | Texp_match (scrut, cases, _) ->
        sub.Tast_iterator.expr sub scrut;
        let st = taint_of scrut in
        with_sanitized (collect_paths scrut) (fun () ->
            List.iter
              (fun c ->
                bind_pattern c.c_lhs ~rhs:scrut st;
                Option.iter (sub.Tast_iterator.expr sub) c.c_guard;
                sub.Tast_iterator.expr sub c.c_rhs)
              cases)
    | Texp_while (cond, body) ->
        sub.Tast_iterator.expr sub cond;
        with_sanitized (collect_paths cond) (fun () ->
            sub.Tast_iterator.expr sub body)
    | Texp_for (_, _, lo, hi, _, body) ->
        let line = e.exp_loc.loc_start.pos_lnum in
        sink_check ~line ~what:"for-loop bound" "w3" lo;
        sink_check ~line ~what:"for-loop bound" "w3" hi;
        sub.Tast_iterator.expr sub lo;
        sub.Tast_iterator.expr sub hi;
        sub.Tast_iterator.expr sub body
    | Texp_setfield (base, _, lbl, rhs) ->
        sub.Tast_iterator.expr sub base;
        sub.Tast_iterator.expr sub rhs;
        (match (taint_of rhs, field_key ctx ~self_mod lbl) with
        | Some why, Some (k, display) ->
            fact_add ctx.facts.f_field ctx.facts k
              (cap_reason (why ^ " -> stored in " ^ display))
        | _ -> ())
    | Texp_record { fields; extended_expression; _ } ->
        Option.iter (sub.Tast_iterator.expr sub) extended_expression;
        Array.iter
          (fun (lbl, def) ->
            match def with
            | Overridden (_, fe) -> (
                sub.Tast_iterator.expr sub fe;
                match (taint_of fe, field_key ctx ~self_mod lbl) with
                | Some why, Some (k, display) ->
                    fact_add ctx.facts.f_field ctx.facts k
                      (cap_reason (why ^ " -> stored in " ^ display))
                | _ -> ())
            | Kept _ -> ())
          fields
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as f), args) ->
        let name = resolved_name p in
        let line = e.exp_loc.loc_start.pos_lnum in
        (* Sink checks: positional table entries and labeled args. *)
        (match find_sink name with
        | Some (rule, positions) ->
            let pos = ref 0 in
            List.iter
              (fun (label, a) ->
                match (label, a) with
                | Asttypes.Nolabel, Some arg ->
                    let here = !pos in
                    incr pos;
                    if List.mem here positions then
                      sink_check ~line ~what:name rule arg
                | _ -> ())
              args
        | None -> ());
        List.iter
          (fun (label, a) ->
            match (label, a) with
            | (Asttypes.Labelled l | Asttypes.Optional l), Some arg -> (
                match List.assoc_opt l labeled_sinks with
                | Some rule -> sink_check ~line ~what:(name ^ " ~" ^ l) rule arg
                | None -> ())
            | _ -> ())
          args;
        (* [r := tainted] taints the ref ident. *)
        (match (name, args) with
        | ( ":=",
            [ (_, Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ });
              (_, Some rhs);
            ] ) -> (
            match taint_of rhs with
            | Some why -> fact_tainted_local why (Ident.unique_name id)
            | None -> ())
        | _ -> ());
        (* Interprocedural: a tainted argument creates a parameter fact
           on the resolved callee. *)
        (match resolve_node name with
        | Some callee when callee.n_name <> node.n_name ->
            let pos = ref 0 in
            List.iter
              (fun (label, a) ->
                let key =
                  match label with
                  | Asttypes.Nolabel ->
                      let k = param_key label !pos in
                      incr pos;
                      k
                  | _ -> param_key label 0
                in
                match a with
                | Some arg -> (
                    match taint_of arg with
                    | Some why ->
                        fact_add ctx.facts.f_param ctx.facts
                          (callee.n_name, key)
                          (cap_reason
                             (Printf.sprintf "%s -> %s:%d -> %s arg %s" why
                                node.n_name line callee.n_name key))
                    | None -> ())
                | None -> ())
              args
        | _ -> ());
        sub.Tast_iterator.expr sub f;
        List.iter (fun (_, a) -> Option.iter (sub.Tast_iterator.expr sub) a) args
    | _ -> super.expr sub e);
    allowed := saved_allowed
  in
  let it = { super with expr } in
  (* Seed the node's parameters from the accumulated facts, then walk. *)
  let params, body = spine_params node.n_vb.vb_expr in
  let pos = ref 0 in
  List.iter
    (fun (label, pat) ->
      let key =
        match label with
        | Asttypes.Nolabel ->
            let k = param_key label !pos in
            incr pos;
            k
        | _ -> param_key label 0
      in
      match Hashtbl.find_opt ctx.facts.f_param (node.n_name, key) with
      | Some why -> List.iter (fact_tainted_local why) (pat_idents pat)
      | None -> ())
    params;
  it.expr it node.n_vb.vb_expr;
  (* Result taint: the innermost body's value. *)
  match taint_of body with
  | Some why ->
      fact_add ctx.facts.f_result ctx.facts node.n_name
        (cap_reason (why ^ " -> returned by " ^ node.n_name))
  | None -> ()

(* ------------------------------ driver ----------------------------- *)

let max_rounds = 24

let scan_ex (dirs : string list) : Finding.t list * int =
  let { Deepscan.ld_units; ld_wrappers; _ } = Deepscan.load dirs in
  let mods =
    List.map
      (fun (name, str) ->
        let m_name = Deepscan.after_dunder name in
        let m_nodes, m_idents = collect_nodes ~m_name str in
        { m_name; m_nodes; m_idents })
      ld_units
  in
  let ctx =
    {
      wrappers = ld_wrappers;
      resolver = build_resolver mods;
      facts =
        {
          f_param = Hashtbl.create 128;
          f_field = Hashtbl.create 64;
          f_result = Hashtbl.create 128;
          f_grew = false;
        };
    }
  in
  (* Fixpoint: re-walk every node until no fact table grows. *)
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    ctx.facts.f_grew <- false;
    List.iter
      (fun m -> List.iter (fun n -> analyze ctx m n ~emit:None) m.m_nodes)
      mods;
    continue_ := ctx.facts.f_grew
  done;
  if Sys.getenv_opt "WIRETAINT_DEBUG" <> None then begin
    Hashtbl.iter
      (fun k v -> Printf.eprintf "field %s: %s\n" k v)
      ctx.facts.f_field;
    Hashtbl.iter
      (fun (n, k) v -> Printf.eprintf "param %s %s: %s\n" n k v)
      ctx.facts.f_param;
    Hashtbl.iter
      (fun n v -> Printf.eprintf "result %s: %s\n" n v)
      ctx.facts.f_result
  end;
  (* Emission pass, with dedup. Crypto primitives index by byte-ranged
     values by construction; like deepscan's d5, crypto/ is exempt. *)
  let findings = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun m ->
      List.iter
        (fun node ->
          if not (Deepscan.contains_sub node.n_file "crypto/") then
            let emit ~rule ~line ~msg ~allowed =
              let f = Finding.v ~file:node.n_file ~line ~rule ~message:msg in
              let f = if SS.mem rule allowed then Finding.suppress f else f in
              let key =
                Printf.sprintf "%s|%s|%d|%s" f.Finding.rule f.Finding.file
                  f.Finding.line f.Finding.message
              in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                findings := f :: !findings
              end
            in
            analyze ctx m node ~emit:(Some emit))
        m.m_nodes)
    mods;
  (List.sort Finding.order !findings, List.length ld_units)

let scan (dirs : string list) : Finding.t list * int = scan_ex dirs

let run_cli (args : string list) : int =
  match Lint.Baseline.parse_args args with
  | Error msg ->
      prerr_endline ("colibri_wiretaint: " ^ msg);
      2
  | Ok (_, _, []) ->
      prerr_endline
        "usage: colibri_wiretaint [--json] [--baseline FILE] <dir> [<dir> ...]";
      2
  | Ok (json, baseline, dirs) ->
      let findings, scanned = scan dirs in
      Lint.Baseline.run_report ~tool:"colibri-wiretaint" ~scanned
        ~unit_name:"module" ~json ~baseline findings
