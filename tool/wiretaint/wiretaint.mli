(** [colibri-wiretaint]: interprocedural taint analysis tracking
    wire-derived (attacker-controlled) values to index/allocation/
    loop-bound/ledger-arithmetic sinks (DESIGN.md §13). *)

val rule_names : string list
(** The rule identifiers, ["w1"]..["w4"]. *)

val scan : string list -> Lint.Finding.t list * int
(** [scan dirs] loads every [.cmt] under [dirs] (via {!Deepscan.load}),
    runs the taint fixpoint, and returns the findings (sorted with
    {!Lint.Finding.order}) plus the number of modules scanned.
    Suppressed findings ([[@colibri.allow "w*"]]) are carried and
    flagged, not dropped. *)

val run_cli : string list -> int
(** CLI driver: [run_cli args] with
    [[--json] [--baseline FILE] <dir> ...]; exit status 0 = clean
    against the baseline, 1 = fresh or stale findings, 2 = usage. *)
