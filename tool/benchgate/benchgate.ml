(** [colibri-benchgate]: the performance ratchet for [@ci].

    PR 7 fixed the parallel router's negative scaling (0.59x with two
    workers before the de-false-sharing of the SPSC rings and the
    batched job transfer). This gate keeps it fixed: it reads the
    checked-in [BENCH_colibri.json] and fails the build if the headline
    scaling factor ever drops below break-even again, or if the
    1/2/4-worker curve stops being recorded. The numbers themselves are
    refreshed by running the bench ([dune exec bench/main.exe]); the
    gate only polices the ledger a PR ships.

    The summary file is a flat one-key-per-line JSON object written by
    [bench/main.ml:write_summary]; the hand-rolled reader below parses
    exactly that shape so the tool needs no JSON dependency. Exit code
    0 when the gate holds, 1 on a regression or missing key, 2 on
    usage errors — same contract as colibri-lint. *)

(* Every key the scaling story depends on. The wall-clock keys are
   honest same-core measurements; the headline keys substitute the
   shared-nothing projection when the host cannot truly run the
   workers in parallel (DESIGN.md S11). The gate requires both
   families so neither silently disappears from the ledger. *)
let curve_keys =
  [
    "par_router_1w_mpps";
    "par_router_2w_mpps";
    "par_router_4w_mpps";
    "par_router_1w_wall_mpps";
    "par_router_2w_wall_mpps";
    "par_router_4w_wall_mpps";
    "par_router_submit_ns";
    "par_router_busy_ns";
    "par_ring_2d_mxfers";
    "par_ring_2d_batched_mxfers";
  ]

(* The ratchet itself: 2-worker headline throughput over 1-worker.
   Below 1.0 means adding a worker makes the router slower — the exact
   bug this gate exists to keep dead. *)
let scaling_key = "par_router_scaling_x"
let scaling_floor = 1.0

(* PR 8: the backend-comparison curve ([bench/main.exe backends],
   DESIGN.md §12). Every discipline must keep reporting all four
   columns, the reference backend must keep admitting the whole
   comparison workload, and the flyover backend must stay cheaper in
   control messages than the chained reference — the head-to-head
   claim the comparison exists to make. *)
let backend_names = [ "ntube"; "intserv"; "diffserv"; "flyover" ]

let backend_columns =
  [ "setup_latency"; "msgs_per_setup"; "utilization"; "admit_rate" ]

let backend_keys =
  List.concat_map
    (fun b -> List.map (fun c -> Printf.sprintf "backend_%s_%s" b c) backend_columns)
    backend_names

let reference_admit_key = "backend_ntube_admit_rate"
let reference_admit_floor = 0.995

(* PR 10: the adversarial suite ([bench/main.exe attack], test/attack).
   Enforcing backends must keep honest ASes a bounded share of a
   trunk under setup spam while admissionless DiffServ visibly fails
   the same bound, overusers must be flagged within one OFD window,
   and crash-synchronized renewal storms must not amplify control
   traffic beyond 1.5x a clean run. *)
let attack_honest_key = "attack_honest_share_min"
let attack_honest_floor = 0.35
let attack_diffserv_key = "attack_diffserv_honest_share"
let attack_diffserv_ceiling = 0.35
let attack_detection_key = "attack_detection_latency_windows"
let attack_detection_ceiling = 1.0
let attack_amplification_key = "attack_amplification_x"
let attack_amplification_ceiling = 1.5

let read_file (path : string) : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse the flat [write_summary] shape: each line is at most one
   ["key": 1.2345] pair (trailing comma optional). Anything that does
   not look like that — nested objects, arrays — is not a summary this
   tool understands, and unknown lines are skipped rather than
   rejected so the bench can grow keys freely. *)
let parse_summary (src : string) : (string * float) list =
  let pairs = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iter
    (fun line ->
      let line = String.trim line in
      match String.index_opt line '"' with
      | None -> ()
      | Some q0 -> (
          match String.index_from_opt line (q0 + 1) '"' with
          | None -> ()
          | Some q1 -> (
              let key = String.sub line (q0 + 1) (q1 - q0 - 1) in
              match String.index_from_opt line q1 ':' with
              | None -> ()
              | Some c ->
                  let v = String.sub line (c + 1) (String.length line - c - 1) in
                  let v = String.trim v in
                  let v =
                    if String.length v > 0 && v.[String.length v - 1] = ',' then
                      String.sub v 0 (String.length v - 1)
                    else v
                  in
                  (match float_of_string_opt v with
                  | Some f -> pairs := (key, f) :: !pairs
                  | None -> ()))))
    lines;
  List.rev !pairs

(* The typedtree analyzers gated by tool/baseline.json. The per-tool
   ratchet (fresh findings fail, stale entries fail) lives in each
   analyzer's own @alias; this check closes the remaining hole — a
   tool's ledger key being dropped wholesale, which would make its
   gate vacuous without failing anything. *)
let analyzer_tools = [ "colibri-deepscan"; "colibri-domaincheck"; "colibri-wiretaint" ]

let check_analyzer_ledger (path : string) : string list =
  if not (Sys.file_exists path) then
    [ Printf.sprintf "analyzer ledger %s not found: the finding ratchet is gone" path ]
  else
    match Lint.Baseline.load path with
    | exception Lint.Baseline.Parse_error msg ->
        [ Printf.sprintf "analyzer ledger %s unreadable: %s" path msg ]
    | ledger ->
        List.filter_map
          (fun tool ->
            if List.mem_assoc tool ledger then None
            else
              Some
                (Printf.sprintf
                   "analyzer ledger %s has no [%s] key: the tool dropped out of the \
                    finding ratchet"
                   path tool))
          analyzer_tools

let () =
  let path, baseline =
    match Sys.argv with
    | [| _; p; b |] -> (p, Some b)
    | [| _; p |] -> (p, None)
    | [| _ |] -> ("BENCH_colibri.json", None)
    | _ ->
        prerr_endline "usage: colibri_benchgate [BENCH_colibri.json [baseline.json]]";
        exit 2
  in
  if not (Sys.file_exists path) then (
    Printf.eprintf "benchgate: %s not found\n" path;
    exit 2);
  let summary = parse_summary (read_file path) in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (match baseline with
  | Some b -> List.iter (fun m -> failures := m :: !failures) (check_analyzer_ledger b)
  | None -> ());
  List.iter
    (fun key ->
      if not (List.mem_assoc key summary) then
        fail "missing key [%s]: the 1/2/4-worker scaling curve must stay in the ledger" key)
    curve_keys;
  (match List.assoc_opt scaling_key summary with
  | None -> fail "missing key [%s]" scaling_key
  | Some x when x < scaling_floor ->
      fail "%s = %.4f < %.1f: adding a worker makes the router slower again" scaling_key x
        scaling_floor
  | Some x -> Printf.printf "benchgate: %s = %.4f (floor %.1f), curve complete\n" scaling_key x scaling_floor);
  List.iter
    (fun key ->
      if not (List.mem_assoc key summary) then
        fail "missing key [%s]: the backend comparison must stay in the ledger" key)
    backend_keys;
  (match List.assoc_opt reference_admit_key summary with
  | None -> fail "missing key [%s]" reference_admit_key
  | Some x when x < reference_admit_floor ->
      fail "%s = %.4f < %.3f: the reference backend denies workload it used to admit"
        reference_admit_key x reference_admit_floor
  | Some _ -> ());
  (match
     ( List.assoc_opt "backend_flyover_msgs_per_setup" summary,
       List.assoc_opt "backend_ntube_msgs_per_setup" summary )
   with
  | Some fly, Some ref_msgs when fly >= ref_msgs ->
      fail
        "backend_flyover_msgs_per_setup = %.2f >= %.2f (ntube): flyovers lost their \
         message advantage"
        fly ref_msgs
  | Some fly, Some ref_msgs ->
      Printf.printf
        "benchgate: flyover %.2f msgs/setup vs ntube %.2f (floor %s >= %.3f), backend \
         curve complete\n"
        fly ref_msgs reference_admit_key reference_admit_floor
  | _ -> () (* missing keys already reported above *));
  (match List.assoc_opt attack_honest_key summary with
  | None -> fail "missing key [%s]: the attack suite must stay in the ledger" attack_honest_key
  | Some x when x < attack_honest_floor ->
      fail "%s = %.4f < %.2f: honest ASes lost their bounded share under setup spam"
        attack_honest_key x attack_honest_floor
  | Some _ -> ());
  (match List.assoc_opt attack_diffserv_key summary with
  | None -> fail "missing key [%s]: the attack suite must stay in the ledger" attack_diffserv_key
  | Some x when x >= attack_diffserv_ceiling ->
      fail
        "%s = %.4f >= %.2f: the admissionless baseline no longer shows the failure \
         the comparison exists to show"
        attack_diffserv_key x attack_diffserv_ceiling
  | Some _ -> ());
  (match List.assoc_opt attack_detection_key summary with
  | None -> fail "missing key [%s]: the attack suite must stay in the ledger" attack_detection_key
  | Some x when x > attack_detection_ceiling ->
      fail "%s = %.4f > %.1f: overusers escape the OFD for more than one window"
        attack_detection_key x attack_detection_ceiling
  | Some _ -> ());
  (match List.assoc_opt attack_amplification_key summary with
  | None -> fail "missing key [%s]: the attack suite must stay in the ledger" attack_amplification_key
  | Some x when x > attack_amplification_ceiling ->
      fail "%s = %.4f > %.1f: renewal storms amplify control traffic beyond the retry budget"
        attack_amplification_key x attack_amplification_ceiling
  | Some x ->
      Printf.printf
        "benchgate: attack curve complete (honest share >= %.2f, detection %.2f \
         windows, amplification %.2fx)\n"
        attack_honest_floor
        (Option.value ~default:0. (List.assoc_opt attack_detection_key summary))
        x);
  match !failures with
  | [] -> ()
  | fs ->
      List.iter (fun m -> Printf.eprintf "benchgate: %s\n" m) (List.rev fs);
      exit 1
