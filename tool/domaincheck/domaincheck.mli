(** [colibri-domaincheck]: interprocedural domain-ownership and race
    analysis over the [.cmt] files dune produces (DESIGN.md §11).

    The analyzer reuses [colibri-deepscan]'s loading and
    name-canonicalization layer, builds its own call graph, resolves
    every [Domain.spawn]/[Domain_pool.spawn] site to a spawn-root
    closure (a named function or an inline closure, analyzed as its
    own node), and verifies four rules, each suppressible with
    [[@colibri.allow "<rule>"]] on the offending expression or
    [[@@colibri.allow "<rule>"]] on the binding (suppressed findings
    still appear in [--json] output, flagged, for suppression review):

    - [d6] — shared mutable state: module-level or closure-captured
      mutable state (a [ref], [array], [Hashtbl.t], [Buffer.t],
      mutable record, Obs counter/registry, ...) reachable from more
      than one domain — two spawn roots, a multi-domain pool closure,
      or one root plus the orchestrator — without an [Atomic.t] /
      [Mutex.t] / [Spsc_ring.t] wrapper.
    - [d7] — racy access: each non-atomic read/write site of a
      [d6]-proved-shared global.
    - [d8] — SPSC ownership transfer: a ring key (module-level ring,
      record field, or captured local) pushed from more than one
      domain, popped from more than one domain, or a pushed payload
      aliased by the producer after the push.
    - [d9] — blocking inside a hot domain: a [Mutex.lock],
      [Condition.wait], [Domain.join], ... reachable from a spawn
      closure marked [[@colibri.hot]] (hot domains spin, never park).

    D4/D6-D7 interplay: deepscan's [d4] already reports module-level
    mutable state touched by spawn closures; {!scan} obtains its
    [(file, line, var)] keys and drops matching [d6]/[d7] findings so
    the two analyzers never double-report one access. *)

val rule_names : string list
(** The four rule slugs, ["d6"] .. ["d9"]. *)

type scan_result = {
  sr_findings : Lint.Finding.t list;
  sr_scanned : int;  (** modules analyzed *)
}

val scan_ex :
  ?drop_d4:(string * int * string) list -> string list -> scan_result
(** [scan_ex ?drop_d4 dirs] analyzes every [.cmt] implementation under
    [dirs] and returns the sorted findings (suppressed ones included,
    flagged). D6/D7 findings whose [(file, line, var)] appears in
    [drop_d4] are dropped entirely. *)

val scan : string list -> Lint.Finding.t list * int
(** [scan dirs] = {!scan_ex} with [drop_d4] taken from
    [Deepscan.scan_ex dirs] over the same roots. *)

val run_cli : string list -> int
(** [run_cli args] parses [[--json] [--baseline FILE] <dir>...],
    scans, prints a report (text or JSON; gated against the baseline
    ledger when given), and returns the exit code: 0 when clean, 1 on
    findings, 2 on usage errors. *)
