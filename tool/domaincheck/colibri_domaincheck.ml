let () = exit (Domaincheck.run_cli (List.tl (Array.to_list Sys.argv)))
