(** [colibri-domaincheck]: interprocedural domain-ownership and race
    analysis (DESIGN.md §11).

    Runs over the same [.cmt] corpus as [colibri-deepscan], reusing
    its loading and name-canonicalization layer ({!Deepscan.load},
    {!Deepscan.canon}), and verifies the domain-ownership discipline
    of [lib/par]: rules D6..D9, documented in the interface. *)

open Typedtree
module D = Deepscan
module SS = D.SS
module Finding = Lint.Finding

let rule_names = [ "d6"; "d7"; "d8"; "d9" ]

(* --------------------------- rule tables --------------------------- *)

let spawn_calls = SS.of_list [ "Domain.spawn"; "Domain_pool.spawn" ]

(* A pool spawn runs its closure on [n] domains: one site already
   means multi-domain sharing of anything it captures. *)
let pool_spawn_calls = SS.of_list [ "Domain_pool.spawn" ]

let push_ops =
  SS.of_list [ "Spsc_ring.try_push"; "Spsc_ring.push_spin"; "Spsc_ring.push_n" ]

let pop_ops =
  SS.of_list [ "Spsc_ring.try_pop"; "Spsc_ring.pop_spin"; "Spsc_ring.pop_into" ]

(* D8 alias-after-push applies to the single-value pushes only: their
   payload argument changes owner with the call. [push_n]'s source
   array deliberately stays with the producer — the ring copies the
   {e elements} out — so tracking it would flag the standard
   refill-and-push_n-again loop as a violation. *)
let alias_push_ops = SS.of_list [ "Spsc_ring.try_push"; "Spsc_ring.push_spin" ]

(* D9: primitives that park the calling domain. Spin-wait helpers
   ([Spsc_ring.push_spin], [Domain.cpu_relax]) are deliberately
   absent: spinning is the sanctioned wait on the hot path. *)
let blocking_calls =
  SS.of_list
    [
      "Mutex.lock"; "Condition.wait"; "Domain.join"; "Domain_pool.join";
      "Thread.delay"; "Thread.join"; "Unix.sleep"; "Unix.sleepf"; "Unix.select";
      "Semaphore.Counting.acquire"; "Semaphore.Binary.acquire"; "Event.sync";
      "input_line"; "read_line";
    ]

(* Type heads sanctioned for cross-domain sharing: the sync
   primitives plus the [lib/par] transfer mechanisms themselves. *)
let sync_heads =
  SS.of_list
    [
      "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t";
      "Semaphore.Binary.t"; "Domain.t"; "Spsc_ring.t"; "Domain_pool.t";
      "Par_obs.t";
    ]

(* Type heads that ARE mutable state: refs, arrays, the mutable
   stdlib containers, and the Obs instruments (counters mutate on
   [incr]; a registry is a name table). Mutable records are detected
   structurally from their declaration. *)
let mutable_heads =
  SS.of_list
    [
      "ref"; "array"; "bytes"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t";
      "Counter.t"; "Gauge.t"; "Histogram.t"; "Registry.t";
    ]

let has_attr (name : string) (attrs : Parsetree.attributes) : bool =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

(* ------------------------ type classification ---------------------- *)

type mut_class = Sanctioned | Mut of string (* type head *) | Immut

type ctx = {
  c_wrappers : SS.t;
  c_decls : (string, Types.type_declaration) Hashtbl.t;
  c_globals : (string, global) Hashtbl.t; (* canonical global -> def *)
  mutable c_virtuals : dnode list; (* inline spawn-closure nodes *)
}

and global = {
  g_file : string;
  g_line : int;
  g_head : string;
  g_allowed : SS.t; (* from [@@colibri.allow] on the defining binding *)
}

and dnode = {
  dn_name : string;
  dn_file : string;
  dn_line : int;
  dn_allowed : SS.t;
  dn_is_fun : bool;
  dn_hot : bool; (* [@@colibri.hot] on the binding *)
  dn_virtual : bool;
  dn_uses : (string, (int * SS.t) list ref) Hashtbl.t;
      (* Ident.unique_name -> use sites in THIS node's own body
         (inline spawn closures are analyzed as separate nodes, so a
         parent's table never contains its closures' uses) *)
  mutable dn_calls : SS.t;
  mutable dn_mut_refs : (int * string * SS.t) list; (* line, global, allowed *)
  mutable dn_ring_ops : ring_op list;
  mutable dn_blocking : (int * string * SS.t) list; (* line, what, allowed *)
  mutable dn_spawns : spawn list;
  mutable dn_alias : (int * string * SS.t) list;
      (* use line, var, allowed: payload touched after its push *)
}

and ring_op = {
  ro_key : string; (* ring identity: global name, field key, or local *)
  ro_push : bool;
  ro_line : int;
  ro_allowed : SS.t;
}

and spawn = {
  sp_line : int;
  sp_mult : int; (* domains started: 2 for a pool spawn, else 1 *)
  sp_hot : bool;
  sp_target : [ `Named of string | `Inline of dnode ];
  sp_captured : (string * string * int * string * SS.t) list;
      (* unique, name, use line, type head — mutable captures only *)
}

let rec classify_ty (ctx : ctx) ~(self_mod : string) (depth : int)
    (ty : Types.type_expr) : mut_class =
  if depth > 6 then Immut
  else
    match Types.get_desc ty with
    | Tpoly (t, _) -> classify_ty ctx ~self_mod (depth + 1) t
    | Tconstr (p, _, _) -> (
        let name =
          String.concat "."
            (D.canon_components ~wrappers:ctx.c_wrappers (D.path_components p))
        in
        if D.mem_qualified sync_heads name then Sanctioned
        else if D.mem_qualified mutable_heads name then Mut name
        else
          let decl =
            match Hashtbl.find_opt ctx.c_decls name with
            | Some _ as d -> d
            | None -> Hashtbl.find_opt ctx.c_decls (self_mod ^ "." ^ name)
          in
          match decl with
          | None -> Immut
          | Some d -> (
              match d.Types.type_kind with
              | Type_record (lbls, _) ->
                  if
                    List.exists
                      (fun (l : Types.label_declaration) ->
                        l.ld_mutable = Asttypes.Mutable)
                      lbls
                  then Mut name
                  else Immut
              | Type_abstract -> (
                  match d.Types.type_manifest with
                  | Some m -> classify_ty ctx ~self_mod (depth + 1) m
                  | None -> Immut)
              | _ -> Immut))
    | _ -> Immut

(* ------------------------------ collect ---------------------------- *)

type dmodule = {
  dm_name : string;
  mutable dm_nodes : dnode list;
  dm_idents : (string, string) Hashtbl.t; (* unique_name -> node name *)
  dm_vbs : (string, value_binding) Hashtbl.t; (* node name -> binding *)
}

let mk_node ~name ~file ~line ~allowed ~is_fun ~hot ~virt : dnode =
  {
    dn_name = name;
    dn_file = file;
    dn_line = line;
    dn_allowed = allowed;
    dn_is_fun = is_fun;
    dn_hot = hot;
    dn_virtual = virt;
    dn_uses = Hashtbl.create 16;
    dn_calls = SS.empty;
    dn_mut_refs = [];
    dn_ring_ops = [];
    dn_blocking = [];
    dn_spawns = [];
    dn_alias = [];
  }

let collect (ctx : ctx) ~(dm_name : string) (str : structure) : dmodule =
  let m =
    { dm_name; dm_nodes = []; dm_idents = Hashtbl.create 32; dm_vbs = Hashtbl.create 32 }
  in
  let register_types prefix (tds : type_declaration list) =
    List.iter
      (fun (td : type_declaration) ->
        Hashtbl.replace ctx.c_decls (prefix ^ "." ^ td.typ_name.txt) td.typ_type)
      tds
  in
  let rec items prefix (its : structure_item list) =
    List.iter
      (fun (it : structure_item) ->
        match it.str_desc with
        | Tstr_type (_, tds) -> register_types prefix tds
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, name) | Tpat_alias (_, id, name) ->
                    let n_name = prefix ^ "." ^ name.txt in
                    let loc = vb.vb_loc.loc_start in
                    let allowed = D.attrs_allowed vb.vb_attributes in
                    Hashtbl.replace m.dm_idents (Ident.unique_name id) n_name;
                    Hashtbl.replace m.dm_vbs n_name vb;
                    (match classify_ty ctx ~self_mod:dm_name 0 vb.vb_expr.exp_type with
                    | Mut head ->
                        Hashtbl.replace ctx.c_globals n_name
                          {
                            g_file = loc.pos_fname;
                            g_line = loc.pos_lnum;
                            g_head = head;
                            g_allowed = allowed;
                          }
                    | Sanctioned | Immut -> ());
                    m.dm_nodes <-
                      mk_node ~name:n_name ~file:loc.pos_fname ~line:loc.pos_lnum
                        ~allowed ~is_fun:(D.spine_of vb.vb_expr <> [])
                        ~hot:(has_attr "colibri.hot" vb.vb_attributes)
                        ~virt:false
                      :: m.dm_nodes
                | _ -> ())
              vbs
        | Tstr_module mb -> module_binding prefix mb
        | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
        | _ -> ())
      its
  and module_binding prefix (mb : module_binding) =
    let sub = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
    let rec go (me : module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> items (prefix ^ "." ^ sub) s.str_items
      | Tmod_constraint (me, _, _, _) -> go me
      | _ -> ()
    in
    go mb.mb_expr
  in
  items dm_name str.str_items;
  m.dm_nodes <- List.rev m.dm_nodes;
  m

(* ------------------------------ analyze ---------------------------- *)

(* Ring identity: a module-level ring keys by its canonical global
   name; [st.submit] keys by the record type's head plus the field
   name (every worker's [submit] ring is one logical endpoint pair —
   the analysis is per-role, not per-instance); a binding-local ring
   keys by its unique ident, shared verbatim between the binding and
   any closure that captures it. *)
let ring_key (ctx : ctx) (m : dmodule) (e : expression) : string =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      let name = D.canon ~wrappers:ctx.c_wrappers p in
      match p with
      | Path.Pident id -> (
          let u = Ident.unique_name id in
          match Hashtbl.find_opt m.dm_idents u with
          | Some g -> g
          | None -> m.dm_name ^ "." ^ name ^ "/" ^ u)
      | _ -> name)
  | Texp_field (base, _, lbl) ->
      let head =
        match Types.get_desc base.exp_type with
        | Tconstr (p, _, _) ->
            String.concat "."
              (D.canon_components ~wrappers:ctx.c_wrappers (D.path_components p))
        | _ -> "?"
      in
      head ^ "." ^ lbl.Types.lbl_name
  | _ -> "<anonymous-ring>"

type locals = (string, Types.type_expr) Hashtbl.t

(* One traversal per node (top-level binding or inline spawn closure):
   call edges, mutable-global references, ring operations with their
   payload idents, blocking calls, spawn sites — and, when [outer]
   scopes exist, mutable captures reported through [capture_sink]. *)
let rec traverse (ctx : ctx) (m : dmodule) (node : dnode) ~(own : locals)
    ~(outer : locals list)
    ~(capture_sink : string -> string -> int -> string -> SS.t -> unit)
    (seed_allowed : SS.t) (target : [ `Vb of value_binding | `Expr of expression ])
    : unit =
  let allowed = ref seed_allowed in
  let pushes : (string * string * int) list ref = ref [] in
  let super = Tast_iterator.default_iterator in
  let record_local id (ty : Types.type_expr) = Hashtbl.replace own (Ident.unique_name id) ty in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> record_local id p.pat_type
    | Tpat_alias (_, id, _) -> record_local id p.pat_type
    | _ -> ());
    super.pat sub p
  in
  let value_binding sub (vb : value_binding) =
    let saved = !allowed in
    allowed := SS.union saved (D.attrs_allowed vb.vb_attributes);
    super.value_binding sub vb;
    allowed := saved
  in
  let expr sub (e : expression) =
    let saved = !allowed in
    allowed := SS.union saved (D.attrs_allowed e.exp_attributes);
    let line = e.exp_loc.loc_start.pos_lnum in
    let descend = ref true in
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        let name = D.canon ~wrappers:ctx.c_wrappers p in
        let resolved =
          match p with
          | Path.Pident id ->
              let u = Ident.unique_name id in
              (match Hashtbl.find_opt node.dn_uses u with
              | Some l -> l := (line, !allowed) :: !l
              | None -> Hashtbl.add node.dn_uses u (ref [ (line, !allowed) ]));
              if not (Hashtbl.mem own u) then
                (match List.find_map (fun t -> Hashtbl.find_opt t u) outer with
                | Some ty -> (
                    match classify_ty ctx ~self_mod:m.dm_name 0 ty with
                    | Mut head -> capture_sink u (Ident.name id) line head !allowed
                    | Sanctioned | Immut -> ())
                | None -> ());
              Option.value ~default:name (Hashtbl.find_opt m.dm_idents u)
          | _ -> name
        in
        node.dn_calls <- SS.add resolved node.dn_calls;
        if D.mem_qualified blocking_calls name then
          node.dn_blocking <- (line, name, !allowed) :: node.dn_blocking;
        match Hashtbl.find_opt ctx.c_globals resolved with
        | Some _ -> node.dn_mut_refs <- (line, resolved, !allowed) :: node.dn_mut_refs
        | None -> ())
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        let fname = D.canon ~wrappers:ctx.c_wrappers p in
        let is_push = D.mem_qualified push_ops fname in
        let is_pop = D.mem_qualified pop_ops fname in
        if is_push || is_pop then begin
          let positional =
            List.filter_map
              (fun ((l : Asttypes.arg_label), a) ->
                match (l, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
              args
          in
          match positional with
          | ring :: rest ->
              node.dn_ring_ops <-
                {
                  ro_key = ring_key ctx m ring;
                  ro_push = is_push;
                  ro_line = line;
                  ro_allowed = !allowed;
                }
                :: node.dn_ring_ops;
              if D.mem_qualified alias_push_ops fname then (
                match rest with
                | { exp_desc = Texp_ident (Path.Pident id, _, _); _ } :: _ ->
                    pushes := (Ident.unique_name id, Ident.name id, line) :: !pushes
                | _ -> ())
          | [] -> ()
        end
        else if D.mem_qualified spawn_calls fname then
          let mult = if D.mem_qualified pool_spawn_calls fname then 2 else 1 in
          match List.rev args with
          | (_, Some a) :: before -> (
              let hot = has_attr "colibri.hot" a.exp_attributes in
              let arg_allowed = SS.union !allowed (D.attrs_allowed a.exp_attributes) in
              match a.exp_desc with
              | Texp_ident (ap, _, _) ->
                  let aname = D.canon ~wrappers:ctx.c_wrappers ap in
                  let resolved =
                    match ap with
                    | Path.Pident id ->
                        Option.value ~default:aname
                          (Hashtbl.find_opt m.dm_idents (Ident.unique_name id))
                    | _ -> aname
                  in
                  node.dn_calls <- SS.add resolved node.dn_calls;
                  node.dn_spawns <-
                    {
                      sp_line = line;
                      sp_mult = mult;
                      sp_hot = hot;
                      sp_target = `Named resolved;
                      sp_captured = [];
                    }
                    :: node.dn_spawns
              | Texp_function _ ->
                  (* The closure becomes its own (virtual) node: its
                     facts must not be attributed to the spawning
                     side, so the parent does not descend into it. *)
                  let child =
                    mk_node
                      ~name:
                        (Printf.sprintf "%s.<spawn@%d>" node.dn_name line)
                      ~file:node.dn_file ~line ~allowed:arg_allowed
                      ~is_fun:true ~hot ~virt:true
                  in
                  ctx.c_virtuals <- child :: ctx.c_virtuals;
                  let captured = ref [] in
                  traverse ctx m child ~own:(Hashtbl.create 16)
                    ~outer:(own :: outer)
                    ~capture_sink:(fun u nm l head al ->
                      captured := (u, nm, l, head, al) :: !captured)
                    arg_allowed (`Expr a);
                  node.dn_spawns <-
                    {
                      sp_line = line;
                      sp_mult = mult;
                      sp_hot = hot;
                      sp_target = `Inline child;
                      sp_captured = List.rev !captured;
                    }
                    :: node.dn_spawns;
                  List.iter
                    (fun (_, ao) -> Option.iter (sub.Tast_iterator.expr sub) ao)
                    (List.rev before);
                  descend := false
              | _ -> ())
          | (_, None) :: _ | [] -> ())
    | _ -> ());
    if !descend then super.expr sub e;
    allowed := saved
  in
  let it = { super with expr; pat; value_binding } in
  (match target with
  | `Vb vb -> it.value_binding it vb
  | `Expr e -> it.expr it e);
  (* D8 alias-after-push: any use of a pushed payload ident on a later
     line means the sender touched a buffer it no longer owns. *)
  List.iter
    (fun (u, nm, pline) ->
      match Hashtbl.find_opt node.dn_uses u with
      | None -> ()
      | Some l ->
          List.iter
            (fun (uline, ual) ->
              if uline > pline then node.dn_alias <- (uline, nm, ual) :: node.dn_alias)
            !l)
    !pushes

(* ------------------------- closure machinery ----------------------- *)

let build_resolver (mods : dmodule list) : (string, dnode option) Hashtbl.t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun m ->
      List.iter
        (fun node ->
          let comps = String.split_on_char '.' node.dn_name in
          let rec suffixes = function
            | [] | [ _ ] -> []
            | _ :: rest as l -> String.concat "." l :: suffixes rest
          in
          List.iter
            (fun key ->
              match Hashtbl.find_opt tbl key with
              | None -> Hashtbl.replace tbl key (Some node)
              | Some (Some other) when other != node -> Hashtbl.replace tbl key None
              | Some _ -> ())
            (suffixes comps))
        m.dm_nodes)
    mods;
  tbl

let closure (resolver : (string, dnode option) Hashtbl.t) (root : dnode) :
    (dnode * string list) list =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let q = Queue.create () in
  Hashtbl.replace seen root.dn_name ();
  Queue.add (root, [ root.dn_name ]) q;
  while not (Queue.is_empty q) do
    let node, chain = Queue.pop q in
    out := (node, chain) :: !out;
    SS.iter
      (fun callee ->
        match Hashtbl.find_opt resolver callee with
        | Some (Some n) when n.dn_is_fun && not (Hashtbl.mem seen n.dn_name) ->
            Hashtbl.replace seen n.dn_name ();
            Queue.add (n, chain @ [ n.dn_name ]) q
        | _ -> ())
      node.dn_calls
  done;
  List.rev !out

(* ------------------------------ driver ----------------------------- *)

type root = {
  r_id : string; (* the root node's name *)
  r_node : dnode;
  mutable r_mult : int; (* total domains running this closure *)
  mutable r_hot : bool;
  mutable r_members : (dnode * string list) list;
}

type scan_result = { sr_findings : Finding.t list; sr_scanned : int }

let scan_ex ?(drop_d4 : (string * int * string) list = []) (dirs : string list) :
    scan_result =
  let { D.ld_units; ld_wrappers; _ } = D.load dirs in
  let ctx =
    {
      c_wrappers = ld_wrappers;
      c_decls = Hashtbl.create 128;
      c_globals = Hashtbl.create 32;
      c_virtuals = [];
    }
  in
  (* Pass 1: nodes, type declarations, mutable globals. *)
  let mods =
    List.map
      (fun (name, str) -> collect ctx ~dm_name:(D.after_dunder name) str)
      ld_units
  in
  (* Pass 2: per-node facts; inline closures spin off virtual nodes. *)
  List.iter
    (fun m ->
      List.iter
        (fun node ->
          match Hashtbl.find_opt m.dm_vbs node.dn_name with
          | Some vb ->
              traverse ctx m node ~own:(Hashtbl.create 16) ~outer:[]
                ~capture_sink:(fun _ _ _ _ _ -> ())
                node.dn_allowed (`Vb vb)
          | None -> ())
        m.dm_nodes)
    mods;
  (* Pass 3: spawn roots and their call closures. *)
  let resolver = build_resolver mods in
  let all_real = List.concat_map (fun m -> m.dm_nodes) mods in
  let roots : (string, root) Hashtbl.t = Hashtbl.create 16 in
  let add_root (n : dnode) (mult : int) (hot : bool) =
    match Hashtbl.find_opt roots n.dn_name with
    | Some r ->
        r.r_mult <- r.r_mult + mult;
        r.r_hot <- r.r_hot || hot
    | None ->
        Hashtbl.replace roots n.dn_name
          { r_id = n.dn_name; r_node = n; r_mult = mult; r_hot = hot; r_members = [] }
  in
  List.iter
    (fun n ->
      List.iter
        (fun sp ->
          match sp.sp_target with
          | `Inline child -> add_root child sp.sp_mult sp.sp_hot
          | `Named target -> (
              match Hashtbl.find_opt resolver target with
              | Some (Some t) -> add_root t sp.sp_mult (sp.sp_hot || t.dn_hot)
              | _ -> ()))
        n.dn_spawns)
    (all_real @ ctx.c_virtuals);
  let root_list =
    List.sort
      (fun a b -> String.compare a.r_id b.r_id)
      (Hashtbl.fold (fun _ r acc -> r :: acc) roots [])
  in
  List.iter (fun r -> r.r_members <- closure resolver r.r_node) root_list;
  (* Owner map: node name -> root ids whose closure contains it; a
     real node in no closure belongs to the orchestrating "<main>". *)
  let owners : (string, SS.t) Hashtbl.t = Hashtbl.create 128 in
  List.iter
    (fun r ->
      List.iter
        (fun (n, _) ->
          let prev = Option.value ~default:SS.empty (Hashtbl.find_opt owners n.dn_name) in
          Hashtbl.replace owners n.dn_name (SS.add r.r_id prev))
        r.r_members)
    root_list;
  let owners_of (n : dnode) : SS.t =
    match Hashtbl.find_opt owners n.dn_name with
    | Some s -> s
    | None -> SS.singleton "<main>"
  in
  (* ------------------------------ findings ------------------------- *)
  let findings = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let dropped : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (file, line, var) ->
      Hashtbl.replace dropped (Printf.sprintf "%s|%d|%s" file line var) ())
    drop_d4;
  let add ?(suppressed = false) ~file ~line ~rule ~message () =
    let key = Printf.sprintf "%s|%s|%d|%s" rule file line message in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      let f = Finding.v ~file ~line ~rule ~message in
      findings := (if suppressed then Finding.suppress f else f) :: !findings
    end
  in
  let d4_covers ~file ~line ~var =
    Hashtbl.mem dropped (Printf.sprintf "%s|%d|%s" file line var)
  in
  (* D6 (module-level) + D7: a global is shared when the spawn roots
     reaching it account for two domains, or when one root and the
     orchestrator both reach it. *)
  let shared_globals = ref [] in
  Hashtbl.iter
    (fun gname (g : global) ->
      let touching = Hashtbl.create 4 in
      let main_touches = ref false in
      List.iter
        (fun r ->
          if
            List.exists
              (fun (n, _) -> List.exists (fun (_, g', _) -> g' = gname) n.dn_mut_refs)
              r.r_members
          then Hashtbl.replace touching r.r_id r.r_mult)
        root_list;
      List.iter
        (fun n ->
          if
            SS.mem "<main>" (owners_of n)
            && List.exists (fun (_, g', _) -> g' = gname) n.dn_mut_refs
          then main_touches := true)
        all_real;
      let root_ids = List.sort String.compare (Hashtbl.fold (fun k _ a -> k :: a) touching []) in
      let mult = Hashtbl.fold (fun _ m a -> m + a) touching 0 in
      let shared = mult >= 2 || (root_ids <> [] && !main_touches) in
      if shared then begin
        shared_globals := gname :: !shared_globals;
        let sides =
          root_ids @ (if !main_touches then [ "<main>" ] else [])
        in
        if not (d4_covers ~file:g.g_file ~line:g.g_line ~var:gname) then
          add
            ~suppressed:(SS.mem "d6" g.g_allowed)
            ~file:g.g_file ~line:g.g_line ~rule:"d6"
            ~message:
              (Printf.sprintf
                 "module-level mutable state [%s] (%s) is reachable from more than one \
                  domain (%s) without an Atomic.t/Mutex.t wrapper"
                 gname g.g_head (String.concat ", " sides))
            ()
      end)
    ctx.c_globals;
  (* D7: every access site of a shared global is a data race. *)
  List.iter
    (fun n ->
      List.iter
        (fun (line, gname, al) ->
          if List.mem gname !shared_globals then
            if not (d4_covers ~file:n.dn_file ~line ~var:gname) then
              (* A def-site [@@colibri.allow "d7"] covers every access:
                 the owner reviewed the sharing once, at the value. *)
              let def_allowed =
                match Hashtbl.find_opt ctx.c_globals gname with
                | Some g -> g.g_allowed
                | None -> SS.empty
              in
              add
                ~suppressed:(SS.mem "d7" al || SS.mem "d7" def_allowed)
                ~file:n.dn_file ~line ~rule:"d7"
                ~message:
                  (Printf.sprintf
                     "non-atomic access to domain-shared mutable [%s]; wrap it in Atomic.t \
                      or hand it over through an Spsc_ring"
                     gname)
                ())
        n.dn_mut_refs)
    (all_real @ ctx.c_virtuals);
  (* D6 (captured): a mutable local captured by a multi-domain pool
     closure, by two spawn closures, or by a closure AND still used by
     the spawning side, is shared. *)
  List.iter
    (fun n ->
      (* total capture multiplicity per ident across this node's spawns *)
      let cap_mult : (string, int) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun sp ->
          List.sort_uniq compare (List.map (fun (u, _, _, _, _) -> u) sp.sp_captured)
          |> List.iter (fun u ->
                 let prev = Option.value ~default:0 (Hashtbl.find_opt cap_mult u) in
                 Hashtbl.replace cap_mult u (prev + sp.sp_mult)))
        n.dn_spawns;
      List.iter
        (fun sp ->
          List.iter
            (fun (u, nm, line, head, al) ->
              let total = Option.value ~default:0 (Hashtbl.find_opt cap_mult u) in
              let parent_uses =
                match Hashtbl.find_opt n.dn_uses u with
                | Some l -> List.exists (fun (ul, _) -> ul <> sp.sp_line) !l
                | None -> false
              in
              if total >= 2 || parent_uses then
                add
                  ~suppressed:(SS.mem "d6" al)
                  ~file:n.dn_file ~line ~rule:"d6"
                  ~message:
                    (Printf.sprintf
                       "spawn closure captures mutable [%s] (%s) also owned outside the \
                        closure; transfer it through an Spsc_ring or wrap it in Atomic.t"
                       nm head)
                  ())
            sp.sp_captured)
        n.dn_spawns)
    (all_real @ ctx.c_virtuals);
  (* D8: endpoint roles. Group every ring op by the owning side. *)
  let ring_ops : (string, (string * dnode * ring_op) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun n ->
      let os = owners_of n in
      List.iter
        (fun ro ->
          SS.iter
            (fun owner ->
              let cell =
                match Hashtbl.find_opt ring_ops ro.ro_key with
                | Some c -> c
                | None ->
                    let c = ref [] in
                    Hashtbl.add ring_ops ro.ro_key c;
                    c
              in
              cell := (owner, n, ro) :: !cell)
            os)
        n.dn_ring_ops)
    (all_real @ ctx.c_virtuals);
  Hashtbl.iter
    (fun key ops ->
      let role push =
        List.filter (fun (_, _, ro) -> ro.ro_push = push) !ops
      in
      let sides push =
        List.sort_uniq String.compare (List.map (fun (o, _, _) -> o) (role push))
      in
      let flag push what =
        let s = sides push in
        if List.length s >= 2 then
          List.iter
            (fun (_, n, ro) ->
              add
                ~suppressed:(SS.mem "d8" ro.ro_allowed)
                ~file:n.dn_file ~line:ro.ro_line ~rule:"d8"
                ~message:
                  (Printf.sprintf
                     "ring [%s] has %s on more than one domain (%s); an SPSC ring owns \
                      exactly one endpoint per side"
                     key what (String.concat ", " s))
                ())
            (role push)
      in
      flag true "producers";
      flag false "consumers")
    ring_ops;
  (* D8: alias after push. *)
  List.iter
    (fun n ->
      List.iter
        (fun (line, nm, al) ->
          add
            ~suppressed:(SS.mem "d8" al)
            ~file:n.dn_file ~line ~rule:"d8"
            ~message:
              (Printf.sprintf
                 "buffer [%s] is used after being pushed; ownership transferred with the \
                  push — the producer must not alias it"
                 nm)
            ())
        n.dn_alias)
    (all_real @ ctx.c_virtuals);
  (* D9: blocking primitives under a hot spawn root. *)
  List.iter
    (fun r ->
      if r.r_hot then
        List.iter
          (fun (n, chain) ->
            List.iter
              (fun (line, what, al) ->
                let via =
                  if List.length chain <= 1 then ""
                  else Printf.sprintf " (via %s)" (String.concat " -> " chain)
                in
                add
                  ~suppressed:(SS.mem "d9" al)
                  ~file:n.dn_file ~line ~rule:"d9"
                  ~message:
                    (Printf.sprintf
                       "blocking [%s] inside a [@colibri.hot] spawn closure%s; hot \
                        domains spin, never park"
                       what via)
                  ())
              n.dn_blocking)
          r.r_members)
    root_list;
  {
    sr_findings = List.sort Finding.order !findings;
    sr_scanned = List.length ld_units;
  }

(** [scan dirs] runs deepscan's D4 over the same roots first and drops
    D6/D7 findings it already reports, so one access never shows up
    under two analyzers. *)
let scan (dirs : string list) : Finding.t list * int =
  let d4 = (D.scan_ex dirs).D.sr_d4_keys in
  let r = scan_ex ~drop_d4:d4 dirs in
  (r.sr_findings, r.sr_scanned)

let run_cli (args : string list) : int =
  match Lint.Baseline.parse_args args with
  | Error msg ->
      prerr_endline ("colibri_domaincheck: " ^ msg);
      2
  | Ok (_, _, []) ->
      prerr_endline
        "usage: colibri_domaincheck [--json] [--baseline FILE] <dir> [<dir> ...]";
      2
  | Ok (json, baseline, dirs) ->
      let findings, scanned = scan dirs in
      Lint.Baseline.run_report ~tool:"colibri-domaincheck" ~scanned
        ~unit_name:"module" ~json ~baseline findings
