(** [colibri-deepscan]: typedtree-level interprocedural analysis.

    Where [colibri-lint] matches tokens line by line, this tool reads
    the [.cmt] files dune already produces, rebuilds a per-module call
    graph, computes the transitive closure of the [(* hot-path *)]
    roots, and runs five type-aware rules over it (D1..D5, see
    {!Deepscan} and DESIGN.md §6). No extra dependencies: only
    [compiler-libs.common], which ships with the compiler. *)

open Typedtree
module SS = Set.Make (String)
module Finding = Lint.Finding

let rule_names = [ "d1"; "d2"; "d3"; "d4"; "d5" ]

(* --------------------------- rule tables --------------------------- *)

(* D1: externals whose result is a freshly allocated block. Tuples,
   records and constructor applications are deliberately NOT listed:
   flagging every [Ok v] would bury the signal (variant results are
   the sanctioned error channel, DESIGN.md §2). *)
let alloc_calls =
  SS.of_list
    [
      "Bytes.create"; "Bytes.sub"; "Bytes.copy"; "Bytes.extend"; "Bytes.cat";
      "Bytes.of_string"; "Bytes.to_string"; "Bytes.make"; "Bytes.init";
      "String.concat"; "String.sub"; "String.make"; "String.init";
      "Buffer.create"; "Array.make"; "Array.init"; "Array.copy";
      "Array.append"; "Array.sub"; "Array.of_list"; "Array.to_list";
      "List.map"; "List.rev"; "List.append"; "List.concat"; "List.init";
      "List.filter"; "List.filter_map"; "List.sort"; "List.merge";
      "Hashtbl.create"; "Printf.sprintf"; "Format.asprintf"; "Fmt.str";
    ]

(* D2: exception constructors/raisers plus the partial stdlib
   functions that raise on the empty/missing case. *)
let raise_calls = SS.of_list [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

let partial_calls =
  SS.of_list
    [ "List.hd"; "List.tl"; "List.nth"; "List.find"; "List.assoc"; "Option.get"; "Hashtbl.find" ]

(* D3: [compare] is flagged at every type (use the keyed comparison —
   [Int.compare], [Ids.compare_asn], ...); the rest only when the
   subject type is non-immediate. *)
let compare_at_any_type = SS.of_list [ "compare" ]

let compare_at_composite =
  SS.of_list [ "="; "<>"; "min"; "max"; "List.mem"; "List.assoc"; "List.mem_assoc"; "Hashtbl.hash" ]

(* D4: constructors whose result is module-level mutable state when
   bound at the structure top level. *)
let mutable_ctors =
  SS.of_list
    [
      "ref"; "Hashtbl.create"; "Array.make"; "Array.init"; "Bytes.create";
      "Bytes.make"; "Buffer.create"; "Queue.create"; "Atomic.make";
    ]

(* D5: functions producing secret-derived digests, and the sanctioned
   constant-time sanitizers that may inspect them. *)
let taint_sources =
  SS.of_list
    [
      "Cmac.digest"; "Cmac.digest_trunc"; "Cmac.digest_into"; "Cmac.digest_trunc_into";
      "Hvf.seg_token"; "Hvf.eer_hvf"; "Hvf.hop_auth"; "Hvf.sigma_of_bytes";
    ]

let taint_sanitizers =
  SS.of_list
    [ "Cmac.verify"; "Cmac.verify_at"; "Hvf.equal_hvf"; "Hvf.equal_hvf_at"; "Hvf.seg_check"; "Hvf.eer_check" ]

(* Membership that tolerates a leading qualifier: a scan that never
   loaded the crypto cmts does not know [Crypto] is a wrapper alias, so
   [Crypto.Cmac.digest] must still match the source [Cmac.digest].
   Two-component table entries therefore also match on the last two
   path components. *)
let mem_qualified (set : SS.t) (name : string) : bool =
  SS.mem name set
  ||
  match List.rev (String.split_on_char '.' name) with
  | f :: m :: _ :: _ -> SS.mem (m ^ "." ^ f) set
  | _ -> false

(* Hot roots that carry no [(* hot-path *)] marker of their own but
   sit on the per-packet observe path (DESIGN.md §7). *)
let named_hot_roots =
  SS.of_list
    [
      "Router.process_bytes"; "Router.process_view"; "Gateway.send_bytes";
      "Sharded_gateway.send_bytes"; "Sharded_router.process_bytes";
      "Ofd.observe"; "Token_bucket.admit"; "Duplicate_filter.check_and_insert";
      "Blocklist.is_blocked";
    ]

(* D4 (spawn extension): calls whose final argument runs on another
   domain. A function handed to one of these is a shard root exactly
   like a [*shard*]-module worker: its call closure must not touch
   module-level mutable state. [Domain_pool.spawn] is listed because
   the pool forwards its argument to [Domain.spawn] through a closure
   the analysis cannot see through. *)
let spawn_calls = SS.of_list [ "Domain.spawn"; "Domain_pool.spawn" ]

(* ------------------------- canonical names ------------------------- *)

(* "Colibri__Router" -> "Router": module aliasing mangles wrapped
   library members; keep only the part after the last "__". *)
let after_dunder (s : string) : string =
  let n = String.length s in
  let rec go i best =
    if i + 1 >= n then best
    else if s.[i] = '_' && s.[i + 1] = '_' then go (i + 1) (i + 2)
    else go (i + 1) best
  in
  let cut = go 0 0 in
  if cut = 0 then s else String.sub s cut (n - cut)

let path_components (p : Path.t) : string list =
  let rec go acc = function
    | Path.Pident id -> Ident.name id :: acc
    | Path.Pdot (p, s) -> go (s :: acc) p
    | Path.Papply (p, _) -> go acc p
    | _ -> acc (* Pextra_ty: type-level decoration, no value component *)
  in
  go [] p

(* Canonical dotted name: mangled components demangled, the [Stdlib]
   prefix and wrapper-alias modules (e.g. [Colibri]) dropped, so the
   same function has the same name whether referenced from inside or
   outside its library. *)
let canon_components ~(wrappers : SS.t) (comps : string list) : string list =
  let comps = List.map after_dunder comps in
  let comps = match comps with "Stdlib" :: (_ :: _ as rest) -> rest | c -> c in
  match comps with w :: (_ :: _ as rest) when SS.mem w wrappers -> rest | c -> c

let canon ~wrappers (p : Path.t) : string =
  String.concat "." (canon_components ~wrappers (path_components p))

(* ------------------------- shape classifier ------------------------ *)

(* Immediacy of a type, for D3: is a polymorphic [=]/[hash] at this
   type a word comparison (fine) or a structural walk (flagged)? *)
type shape =
  | Immediate (* unboxed word: int, bool, constant-only variants *)
  | Scalar (* boxed but atomic: string, float, int64... *)
  | Composite (* structural: records, tuples, lists, parameterized *)

type ctx = {
  wrappers : SS.t;
  decls : (string, Types.type_declaration) Hashtbl.t; (* "Ids.asn" -> decl *)
  mutables : (string, string) Hashtbl.t; (* canonical global -> file:line *)
}

let rec classify (ctx : ctx) ~(self_mod : string) (depth : int) (ty : Types.type_expr) : shape =
  if depth > 8 then Composite
  else
    match Types.get_desc ty with
    | Tvar _ | Tunivar _ -> Composite
    | Tarrow _ | Ttuple _ -> Composite
    | Tpoly (t, _) -> classify ctx ~self_mod (depth + 1) t
    | Tconstr (p, _, _) -> (
        let name = String.concat "." (canon_components ~wrappers:ctx.wrappers (path_components p)) in
        match name with
        | "int" | "bool" | "char" | "unit" -> Immediate
        | "string" | "float" | "bytes" | "int32" | "int64" | "nativeint" -> Scalar
        | "list" | "array" | "option" | "result" | "ref" | "Hashtbl.t" -> Composite
        | _ -> (
            (* Paths inside the defining module lack its prefix
               ([asn] in ids.ml, [Epoch.t] in drkey.ml): retry the
               lookup qualified by the module under analysis. *)
            let decl =
              match Hashtbl.find_opt ctx.decls name with
              | Some _ as d -> d
              | None -> Hashtbl.find_opt ctx.decls (self_mod ^ "." ^ name)
            in
            match decl with
            | None -> Composite
            | Some d -> (
                match d.Types.type_kind with
                | Type_record _ | Type_open -> Composite
                | Type_variant (ctors, _) ->
                    if
                      List.for_all
                        (fun c ->
                          match c.Types.cd_args with Cstr_tuple [] -> true | _ -> false)
                        ctors
                    then Immediate
                    else Composite
                | Type_abstract -> (
                    match d.Types.type_manifest with
                    | Some m -> classify ctx ~self_mod (depth + 1) m
                    | None -> Composite))))
    | _ -> Composite

let shape_word = function
  | Immediate -> "word-sized"
  | Scalar -> "scalar"
  | Composite -> "structural"

(* The subject type of a comparison-family ident is the first
   parameter of its instantiated arrow type. *)
let first_param_type (ty : Types.type_expr) : Types.type_expr option =
  match Types.get_desc ty with Tarrow (_, a, _, _) -> Some a | _ -> None

(* --------------------------- suppression --------------------------- *)

(* [[@colibri.allow "d1 d3"]] on an expression or value binding
   suppresses the named rules in that subtree. *)
let attrs_allowed (attrs : Parsetree.attributes) : SS.t =
  List.fold_left
    (fun acc (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "colibri.allow" then acc
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
            String.split_on_char ' ' s
            |> List.concat_map (String.split_on_char ',')
            |> List.filter (fun r -> r <> "")
            |> List.fold_left (fun acc r -> SS.add r acc) acc
        | _ -> acc)
    SS.empty attrs

(* ------------------------------ graph ------------------------------ *)

type node = {
  n_name : string; (* canonical, e.g. "Dataplane_shard.Sharded_router.process_bytes" *)
  n_file : string; (* pos_fname as recorded by the compiler *)
  n_line : int;
  n_vb : value_binding;
  n_allowed : SS.t; (* from [@@colibri.allow] on the binding *)
  n_is_fun : bool; (* a non-function binding runs at module init, not
                      per call: the closure must treat it as a leaf
                      (preallocated buffers are the zero-copy idiom) *)
  mutable n_hot : bool;
  mutable n_calls : SS.t; (* canonical callee names *)
  mutable n_d1 : (int * string) list; (* line, what *)
  mutable n_d2 : (int * string) list;
  mutable n_mut_refs : (int * string) list; (* line, global name *)
  mutable n_spawn_targets : SS.t; (* named functions handed to Domain.spawn *)
  mutable n_spawn_inline : bool; (* binding spawns an inline closure *)
}

type modul = {
  m_name : string; (* canonical module name, e.g. "Router" *)
  m_nodes : node list;
  m_idents : (string, string) Hashtbl.t; (* Ident.unique_name -> node name *)
}

(* ----------------------- cmt / source discovery -------------------- *)

let rec walk_files (acc : string list) (dir : string) : string list =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.fold_left
        (fun acc e ->
          let p = Filename.concat dir e in
          if Sys.is_directory p then walk_files acc p else p :: acc)
        acc entries

let marker = "(* hot-path *)"

let contains_sub (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let read_lines (path : string) : string list =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
      let rec go acc = match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> close_in ic; List.rev acc
      in
      go []

(* basename -> lines (1-based) holding a hot-path marker, merged over
   every same-named source under the scanned roots. *)
let marker_index (sources : string list) : (string, int list) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun path ->
      let lines = read_lines path in
      let hits =
        List.fold_left
          (fun (i, acc) l -> (i + 1, if contains_sub l marker then i :: acc else acc))
          (1, []) lines
        |> snd |> List.rev
      in
      if hits <> [] then
        let base = Filename.basename path in
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl base) in
        Hashtbl.replace tbl base (prev @ hits))
    sources;
  tbl

(* --------------------------- module pass --------------------------- *)

(* Chase the curried-function spine of a binding RHS: those
   [Texp_function] nodes are the definition itself, not a closure
   allocated at run time (local tail-called functions are compiled
   without a closure by Simplif, and top-level ones are static). *)
let spine_of (e : expression) : expression list =
  let rec go acc (e : expression) =
    match e.exp_desc with
    | Texp_function { cases = [ c ]; _ } -> go (e :: acc) c.c_rhs
    | Texp_function _ -> e :: acc
    | _ -> acc
  in
  go [] e

(* Collect the top-level value bindings of a structure, descending
   into nested (and constrained) modules so shard workers like
   [Dataplane_shard.Sharded_router.process_bytes] become nodes. *)
let collect_nodes (ctx : ctx) ~(m_name : string) (str : structure) :
    node list * (string, string) Hashtbl.t =
  let idents = Hashtbl.create 32 in
  let nodes = ref [] in
  let register_types prefix (tds : type_declaration list) =
    List.iter
      (fun (td : type_declaration) ->
        Hashtbl.replace ctx.decls (prefix ^ "." ^ td.typ_name.txt) td.typ_type)
      tds
  in
  let is_mutable_rhs (e : expression) : bool =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
        SS.mem (canon ~wrappers:ctx.wrappers p) mutable_ctors
    | Texp_record { fields; _ } ->
        Array.exists (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable) fields
    | _ -> false
  in
  let rec items prefix (its : structure_item list) =
    List.iter
      (fun (it : structure_item) ->
        match it.str_desc with
        | Tstr_type (_, tds) -> register_types prefix tds
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                (* A constrained binding [let x : t = e] reaches the
                   typedtree as [Tpat_alias] over the constraint, not
                   [Tpat_var] — both bind exactly one name. *)
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, name) | Tpat_alias (_, id, name) ->
                    let n_name = prefix ^ "." ^ name.txt in
                    let loc = vb.vb_loc.loc_start in
                    let allowed = attrs_allowed vb.vb_attributes in
                    Hashtbl.replace idents (Ident.unique_name id) n_name;
                    if is_mutable_rhs vb.vb_expr && not (SS.mem "d4" allowed) then
                      Hashtbl.replace ctx.mutables n_name
                        (Printf.sprintf "%s:%d" loc.pos_fname loc.pos_lnum);
                    nodes :=
                      {
                        n_name;
                        n_file = loc.pos_fname;
                        n_line = loc.pos_lnum;
                        n_vb = vb;
                        n_allowed = allowed;
                        n_is_fun = spine_of vb.vb_expr <> [];
                        n_hot = false;
                        n_calls = SS.empty;
                        n_d1 = [];
                        n_d2 = [];
                        n_mut_refs = [];
                        n_spawn_targets = SS.empty;
                        n_spawn_inline = false;
                      }
                      :: !nodes
                | _ -> ())
              vbs
        | Tstr_module mb -> module_binding prefix mb
        | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
        | _ -> ())
      its
  and module_binding prefix (mb : module_binding) =
    let sub =
      match mb.mb_id with Some id -> Ident.name id | None -> "_"
    in
    let rec expr (me : module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> items (prefix ^ "." ^ sub) s.str_items
      | Tmod_constraint (me, _, _, _) -> expr me
      | _ -> ()
    in
    expr mb.mb_expr
  in
  items m_name str.str_items;
  (List.rev !nodes, idents)

(* ------------------------- per-node analysis ----------------------- *)

(* One traversal of a node's body collects everything the closure
   phase needs: call edges, D1/D2 facts, mutable-global references —
   and emits the D3 findings directly (D3 applies everywhere, not
   just under hot roots). *)
let analyze_node (ctx : ctx) (m : modul) (node : node) ~(emit : Finding.t -> unit) : unit =
  let self_mod = m.m_name in
  let spine = ref (spine_of node.n_vb.vb_expr) in
  let allowed = ref node.n_allowed in
  let ok rule = not (SS.mem rule !allowed) in
  let loc_line (e : expression) = e.exp_loc.loc_start.pos_lnum in
  let loc_file (e : expression) = e.exp_loc.loc_start.pos_fname in
  let d1 e what = if ok "d1" then node.n_d1 <- (loc_line e, what) :: node.n_d1 in
  let d2 e what = if ok "d2" then node.n_d2 <- (loc_line e, what) :: node.n_d2 in
  let d3 e name =
    if ok "d3" then
      match first_param_type e.exp_type with
      | None -> ()
      | Some subject ->
          let shape = classify ctx ~self_mod 0 subject in
          let flagged =
            SS.mem name compare_at_any_type
            || (SS.mem name compare_at_composite && shape = Composite)
          in
          if flagged then
            emit
              (Finding.v ~file:(loc_file e) ~line:(loc_line e) ~rule:"d3"
                 ~message:
                   (Printf.sprintf
                      "polymorphic [%s] at a %s type; use the keyed comparison (Int.compare, \
                       Ids.*, or a pattern match)"
                      name (shape_word shape)))
  in
  let super = Tast_iterator.default_iterator in
  let expr (sub : Tast_iterator.iterator) (e : expression) =
    let saved = !allowed in
    allowed := SS.union saved (attrs_allowed e.exp_attributes);
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        let name = canon ~wrappers:ctx.wrappers p in
        (* Call edge: local idents resolve through the module table to
           their full node name; everything else keeps its canonical
           dotted name for cross-module resolution. The resolved name
           is also what the mutable-global table is keyed by — a bare
           [hits] must find [Shard.hits]. *)
        let resolved =
          match p with
          | Path.Pident id ->
              Option.value ~default:name
                (Hashtbl.find_opt m.m_idents (Ident.unique_name id))
          | _ -> name
        in
        node.n_calls <- SS.add resolved node.n_calls;
        if SS.mem name alloc_calls then d1 e (Printf.sprintf "[%s] allocates" name);
        if SS.mem name raise_calls then d2 e (Printf.sprintf "[%s] raises" name);
        if SS.mem name partial_calls then
          d2 e (Printf.sprintf "partial [%s] raises on the missing case" name);
        if SS.mem name compare_at_any_type || SS.mem name compare_at_composite then d3 e name;
        match Hashtbl.find_opt ctx.mutables resolved with
        | Some _ when ok "d4" -> node.n_mut_refs <- (loc_line e, resolved) :: node.n_mut_refs
        | _ -> ())
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when mem_qualified spawn_calls (canon ~wrappers:ctx.wrappers p) -> (
        (* The spawned computation is the final argument; record named
           targets so they become shard roots, and mark the binding
           itself when the closure is inline (the closure's call edges
           land on this node anyway). *)
        match List.rev args with
        | (_, Some a) :: _ -> (
            match a.exp_desc with
            | Texp_ident (ap, _, _) ->
                let aname = canon ~wrappers:ctx.wrappers ap in
                let resolved =
                  match ap with
                  | Path.Pident id ->
                      Option.value ~default:aname
                        (Hashtbl.find_opt m.m_idents (Ident.unique_name id))
                  | _ -> aname
                in
                node.n_spawn_targets <- SS.add resolved node.n_spawn_targets
            | _ -> node.n_spawn_inline <- true)
        | _ -> ())
    | Texp_construct (_, cd, args) ->
        if cd.Types.cstr_name = "::" && args <> [] then d1 e "list cons allocates"
    | Texp_array _ -> d1 e "array literal allocates"
    | Texp_function _ ->
        if not (List.memq e !spine) then d1 e "anonymous closure allocates"
    | Texp_assert _ -> d2 e "[assert] raises"
    | _ -> ());
    super.expr sub e;
    allowed := saved
  in
  let value_binding (sub : Tast_iterator.iterator) (vb : value_binding) =
    let saved = !allowed in
    allowed := SS.union saved (attrs_allowed vb.vb_attributes);
    spine := spine_of vb.vb_expr @ !spine;
    super.value_binding sub vb;
    allowed := saved
  in
  let it = { super with expr; value_binding } in
  it.value_binding it node.n_vb

(* --------------------------- D5: taint ----------------------------- *)

(* Intra-function taint: a digest produced by a [taint_sources]
   function must not reach a branch condition except through a
   [taint_sanitizers] call. Files under crypto/ implement the
   primitives themselves and are exempt. *)
let d5_node (ctx : ctx) (node : node) ~(emit : Finding.t -> unit) : unit =
  if contains_sub node.n_file "crypto/" then ()
  else if SS.mem "d5" node.n_allowed then ()
  else begin
    let tainted : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    (* Does [e] contain a digest — a source application or a tainted
       ident — outside any sanitizer call? *)
    let contains_taint (e : expression) : bool =
      let found = ref false in
      let super = Tast_iterator.default_iterator in
      let rec it = { super with expr = (fun _ e -> walk e) }
      and walk (e : expression) =
        match e.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
            let name = canon ~wrappers:ctx.wrappers p in
            if mem_qualified taint_sanitizers name then () (* sanitized subtree *)
            else begin
              if mem_qualified taint_sources name then found := true;
              List.iter (fun (_, a) -> Option.iter walk a) args
            end
        | Texp_ident (Path.Pident id, _, _) ->
            if Hashtbl.mem tainted (Ident.unique_name id) then found := true
        | _ -> super.expr it e
      in
      walk e;
      !found
    in
    let rec pat_idents : type k. k general_pattern -> string list =
     fun p ->
      match p.pat_desc with
      | Tpat_var (id, _) -> [ Ident.unique_name id ]
      | Tpat_alias (p, id, _) -> Ident.unique_name id :: pat_idents p
      | Tpat_tuple ps -> List.concat_map pat_idents ps
      | _ -> []
    in
    (* A binding is tainted only when a digest is its VALUE — a source
       application (or tainted ident) in result position. Merely
       containing one is not enough: [let ok = Hvf.equal_hvf x (digest ...)]
       binds the comparison's boolean, not the digest. *)
    let rec result_taints (e : expression) : bool =
      match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
          mem_qualified taint_sources (canon ~wrappers:ctx.wrappers p)
      | Texp_ident (Path.Pident id, _, _) -> Hashtbl.mem tainted (Ident.unique_name id)
      | Texp_let (_, _, body) -> result_taints body
      | Texp_sequence (_, b) -> result_taints b
      | Texp_ifthenelse (_, a, b) ->
          result_taints a || (match b with Some b -> result_taints b | None -> false)
      | Texp_match (_, cases, _) -> List.exists (fun c -> result_taints c.c_rhs) cases
      | _ -> false
    in
    let super = Tast_iterator.default_iterator in
    let expr sub (e : expression) =
      (match e.exp_desc with
      | Texp_let (_, vbs, _) ->
          List.iter
            (fun (vb : value_binding) ->
              if result_taints vb.vb_expr then
                List.iter (fun u -> Hashtbl.replace tainted u ()) (pat_idents vb.vb_pat))
            vbs
      | Texp_ifthenelse (cond, _, _) ->
          if
            contains_taint cond
            && not (SS.mem "d5" (attrs_allowed e.exp_attributes))
          then
            emit
              (Finding.v ~file:cond.exp_loc.loc_start.pos_fname
                 ~line:cond.exp_loc.loc_start.pos_lnum ~rule:"d5"
                 ~message:
                   "secret-derived digest flows into a branch condition; compare through \
                    Cmac.verify / Hvf.equal_hvf (constant time)")
      | Texp_match (scrut, _, _) ->
          if
            contains_taint scrut
            && not (SS.mem "d5" (attrs_allowed e.exp_attributes))
          then
            emit
              (Finding.v ~file:scrut.exp_loc.loc_start.pos_fname
                 ~line:scrut.exp_loc.loc_start.pos_lnum ~rule:"d5"
                 ~message:
                   "secret-derived digest is matched on; compare through Cmac.verify / \
                    Hvf.equal_hvf (constant time)")
      | _ -> ());
      super.expr sub e
    in
    let it = { super with expr } in
    it.value_binding it node.n_vb
  end

(* ------------------------- closure + report ------------------------ *)

(* Name map: every node under its full name plus dotted suffixes of
   length >= 2, so [Sharded_router.process_bytes] resolves whether the
   caller sits inside or outside [Dataplane_shard]. Ambiguous
   suffixes resolve to no node at all. *)
let build_resolver (mods : modul list) : (string, node option) Hashtbl.t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun m ->
      List.iter
        (fun node ->
          let comps = String.split_on_char '.' node.n_name in
          let rec suffixes = function
            | [] | [ _ ] -> []
            | _ :: rest as l -> String.concat "." l :: suffixes rest
          in
          List.iter
            (fun key ->
              match Hashtbl.find_opt tbl key with
              | None -> Hashtbl.replace tbl key (Some node)
              | Some (Some other) when other != node -> Hashtbl.replace tbl key None
              | Some _ -> ())
            (suffixes comps))
        m.m_nodes)
    mods;
  tbl

(* BFS from [roots]; returns each reached node with the call chain
   that discovered it (root first). *)
let closure (resolver : (string, node option) Hashtbl.t) (roots : node list) :
    (node * string list) list =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if not (Hashtbl.mem seen r.n_name) then begin
        Hashtbl.replace seen r.n_name ();
        Queue.add (r, [ r.n_name ]) q
      end)
    roots;
  while not (Queue.is_empty q) do
    let node, chain = Queue.pop q in
    out := (node, chain) :: !out;
    SS.iter
      (fun callee ->
        match Hashtbl.find_opt resolver callee with
        | Some (Some n) when n.n_is_fun && not (Hashtbl.mem seen n.n_name) ->
            Hashtbl.replace seen n.n_name ();
            Queue.add (n, chain @ [ n.n_name ]) q
        | _ -> ())
      node.n_calls
  done;
  List.rev !out

let chain_str (chain : string list) : string = String.concat " -> " chain

(* ------------------------------ driver ----------------------------- *)

(* The load step is shared with [colibri-domaincheck], which runs its
   own rules over the same typedtrees with the same canonical names. *)
type loaded = {
  ld_units : (string * structure) list; (* raw cmt_modname, structure *)
  ld_sources : string list; (* .ml files under the scanned roots *)
  ld_wrappers : SS.t; (* wrapper-alias module names, e.g. "Colibri" *)
}

let load (dirs : string list) : loaded =
  let files = List.fold_left walk_files [] dirs in
  let cmts = List.filter (fun f -> Filename.check_suffix f ".cmt") files in
  let ld_sources = List.filter (fun f -> Filename.check_suffix f ".ml") files in
  let ld_units =
    List.filter_map
      (fun f ->
        match Cmt_format.read_cmt f with
        | exception _ -> None
        | cmt -> (
            match cmt.Cmt_format.cmt_annots with
            | Cmt_format.Implementation str -> Some (cmt.Cmt_format.cmt_modname, str)
            | _ -> None))
      cmts
  in
  (* Wrapper aliases: any prefix P observed as "P__M" is a library
     wrapper whose leading component should be dropped from paths. *)
  let ld_wrappers =
    List.fold_left
      (fun acc (name, _) ->
        let demangled = after_dunder name in
        if demangled = name then acc
        else SS.add (String.sub name 0 (String.length name - String.length demangled - 2)) acc)
      SS.empty ld_units
  in
  { ld_units; ld_sources; ld_wrappers }

type scan_result = {
  sr_findings : Finding.t list;
  sr_scanned : int; (* modules analyzed *)
  sr_d4_keys : (string * int * string) list;
      (* (file, line, global) of every D4 finding, suppressed or not —
         [colibri-domaincheck] drops its D6/D7 findings at these keys
         so the two analyzers never double-report one access. *)
}

let scan_ex (dirs : string list) : scan_result =
  let { ld_units = loaded; ld_sources = sources; ld_wrappers = wrappers } = load dirs in
  let markers = marker_index sources in
  let ctx = { wrappers; decls = Hashtbl.create 128; mutables = Hashtbl.create 16 } in
  (* Pass 1: nodes, type declarations, mutable globals. *)
  let mods =
    List.map
      (fun (name, str) ->
        let m_name = after_dunder name in
        let m_nodes, m_idents = collect_nodes ctx ~m_name str in
        { m_name; m_nodes; m_idents })
      loaded
  in
  (* Hot roots: marker-adjacent bindings plus the named observe path. *)
  List.iter
    (fun m ->
      List.iter
        (fun node ->
          let near_marker =
            match Hashtbl.find_opt markers (Filename.basename node.n_file) with
            | None -> false
            | Some lines -> List.exists (fun l -> node.n_line - l >= 1 && node.n_line - l <= 3) lines
          in
          let named =
            SS.mem node.n_name named_hot_roots
            ||
            match List.rev (String.split_on_char '.' node.n_name) with
            | f :: m :: _ -> SS.mem (m ^ "." ^ f) named_hot_roots
            | _ -> false
          in
          if near_marker || named then node.n_hot <- true)
        m.m_nodes)
    mods;
  (* Pass 2: per-node facts; D3/D5 emit directly. *)
  let direct = ref [] in
  let emit f = direct := f :: !direct in
  List.iter
    (fun m ->
      List.iter
        (fun node ->
          analyze_node ctx m node ~emit;
          d5_node ctx node ~emit)
        m.m_nodes)
    mods;
  (* Pass 3: hot closure (D1/D2) and shard closure (D4). *)
  if Sys.getenv_opt "COLIBRI_DEEPSCAN_DEBUG" <> None then begin
    Hashtbl.iter (fun k v -> Printf.eprintf "MUTABLE %s (%s)\n" k v) ctx.mutables;
    List.iter
      (fun m ->
        List.iter
          (fun n ->
            Printf.eprintf "NODE %s hot=%b fun=%b mut_refs=[%s] calls=[%s]\n" n.n_name n.n_hot
              n.n_is_fun
              (String.concat "," (List.map snd n.n_mut_refs))
              (String.concat "," (SS.elements n.n_calls)))
          m.m_nodes)
      mods
  end;
  let resolver = build_resolver mods in
  let all_nodes = List.concat_map (fun m -> m.m_nodes) mods in
  let hot_roots = List.filter (fun n -> n.n_hot) all_nodes in
  (* Shard roots: the original heuristic (a [*shard*] module path
     component) plus every function handed to [Domain.spawn] — found
     by name through the resolver — and every binding that spawns an
     inline closure. *)
  let spawn_targets =
    List.fold_left (fun acc n -> SS.union acc n.n_spawn_targets) SS.empty all_nodes
  in
  let spawned (n : node) : bool =
    SS.mem n.n_name spawn_targets
    || SS.exists
         (fun t ->
           match Hashtbl.find_opt resolver t with
           | Some (Some target) -> target == n
           | _ -> false)
         spawn_targets
  in
  let shard_roots =
    List.filter
      (fun n ->
        (match List.rev (String.split_on_char '.' n.n_name) with
        | _fn :: mods -> List.exists (fun m -> contains_sub (String.lowercase_ascii m) "shard") mods
        | [] -> false)
        || n.n_spawn_inline || spawned n)
      all_nodes
  in
  let findings = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let add (f : Finding.t) =
    let key = Printf.sprintf "%s|%s|%d|%s" f.rule f.file f.line f.message in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      findings := f :: !findings
    end
  in
  List.iter add (List.rev !direct);
  List.iter
    (fun (node, chain) ->
      let via =
        if List.length chain <= 1 then "" else Printf.sprintf " (via %s)" (chain_str chain)
      in
      List.iter
        (fun (line, what) ->
          add
            (Finding.v ~file:node.n_file ~line ~rule:"d1"
               ~message:(Printf.sprintf "allocation in hot closure: %s%s" what via)))
        node.n_d1;
      List.iter
        (fun (line, what) ->
          add
            (Finding.v ~file:node.n_file ~line ~rule:"d2"
               ~message:(Printf.sprintf "exception can escape the hot path: %s%s" what via)))
        node.n_d2)
    (closure resolver hot_roots);
  let d4_keys = ref [] in
  List.iter
    (fun (node, chain) ->
      List.iter
        (fun (line, global) ->
          d4_keys := (node.n_file, line, global) :: !d4_keys;
          add
            (Finding.v ~file:node.n_file ~line ~rule:"d4"
               ~message:
                 (Printf.sprintf
                    "shard worker touches module-level mutable state [%s]%s; route it through \
                     the per-shard state record"
                    global
                    (if List.length chain <= 1 then ""
                     else Printf.sprintf " (via %s)" (chain_str chain)))))
        node.n_mut_refs)
    (closure resolver shard_roots);
  {
    sr_findings = List.sort Finding.order !findings;
    sr_scanned = List.length loaded;
    sr_d4_keys = List.rev !d4_keys;
  }

let scan (dirs : string list) : Finding.t list * int =
  let r = scan_ex dirs in
  (r.sr_findings, r.sr_scanned)

let run_cli (args : string list) : int =
  match Lint.Baseline.parse_args args with
  | Error msg ->
      prerr_endline ("colibri_deepscan: " ^ msg);
      2
  | Ok (_, _, []) ->
      prerr_endline "usage: colibri_deepscan [--json] [--baseline FILE] <dir> [<dir> ...]";
      2
  | Ok (json, baseline, dirs) ->
      let findings, scanned = scan dirs in
      Lint.Baseline.run_report ~tool:"colibri-deepscan" ~scanned ~unit_name:"module" ~json
        ~baseline findings
