let () = exit (Deepscan.run_cli (List.tl (Array.to_list Sys.argv)))
