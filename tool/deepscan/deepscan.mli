(** [colibri-deepscan]: typedtree-level interprocedural analysis over
    the [.cmt] files dune produces (DESIGN.md §6).

    Five rules, each suppressible with a [[@colibri.allow "<rule>"]]
    attribute on the offending expression or a
    [[@@colibri.allow "<rule>"]] attribute on the enclosing binding
    (the payload may name several rules, space- or comma-separated):

    - [d1] — allocation in the hot closure: any function reachable
      from a [(* hot-path *)] root (transitively, across modules) that
      allocates: a denylisted stdlib call ([Bytes.create], [List.map],
      [Printf.sprintf], ...), a list cons, an array literal, or an
      anonymous closure. The interprocedural generalization of the
      token rule R7, which only sees the marked function itself.
    - [d2] — exception escape: a reachable [raise]/[failwith]/
      [invalid_arg]/[assert], or a partial stdlib call ([List.hd],
      [Option.get], [Hashtbl.find], ...), in the same hot closure.
    - [d3] — polymorphic comparison at the wrong type: [compare] at
      any type (use the keyed [Int.compare]/[Ids.compare_asn]/...);
      [=], [<>], [min], [max], [List.mem], [List.assoc],
      [List.mem_assoc] and [Hashtbl.hash] when the subject type is
      composite (record, tuple, list, non-constant variant, or
      abstract). Applies everywhere, not only under hot roots.
    - [d4] — shard race: a function in a [*shard*] module — or handed
      to [Domain.spawn]/[Domain_pool.spawn] (by name or as an inline
      closure) — whose call closure reaches module-level mutable state
      (a top-level [ref], [Hashtbl.create], mutable record, ...)
      instead of the per-shard state record.
    - [d5] — constant-time discipline: an intra-function taint pass;
      a digest produced by [Cmac.digest]/[Hvf.seg_token]/... must not
      reach an [if] condition or [match] scrutinee except through the
      constant-time sanitizers ([Cmac.verify], [Hvf.equal_hvf], ...).
      Files under [crypto/] implement the primitives and are exempt.

    Hot roots are bindings that begin within three lines of a
    [(* hot-path *)] marker, plus a named list covering the monitor
    observe path ([Ofd.observe], [Token_bucket.admit], ...). *)

val rule_names : string list
(** The five rule slugs, ["d1"] .. ["d5"]. *)

(** {1 Shared typedtree plumbing}

    [colibri-domaincheck] runs its own rules (D6..D9) over the same
    [.cmt] corpus; the loading and name-canonicalization layer lives
    here so both analyzers agree on what a function is called. *)

module SS : Set.S with type elt = string

val after_dunder : string -> string
(** ["Colibri__Router"] -> ["Router"]: strip the wrapped-library
    mangling, keeping only the part after the last ["__"]. *)

val path_components : Path.t -> string list

val canon_components : wrappers:SS.t -> string list -> string list

val canon : wrappers:SS.t -> Path.t -> string
(** Canonical dotted name of a path: components demangled, the
    [Stdlib] prefix and wrapper-alias modules dropped. *)

val mem_qualified : SS.t -> string -> bool
(** Set membership that also matches on the last two dotted
    components, so [Crypto.Cmac.digest] matches a [Cmac.digest]
    entry. *)

val attrs_allowed : Parsetree.attributes -> SS.t
(** Rule names listed by [[@colibri.allow "..."]] attributes
    (space- or comma-separated). *)

val spine_of : Typedtree.expression -> Typedtree.expression list
(** The curried [Texp_function] spine of a binding RHS — the
    definition itself, as opposed to a run-time closure. *)

val contains_sub : string -> string -> bool

type loaded = {
  ld_units : (string * Typedtree.structure) list;
      (** raw [cmt_modname] (still mangled) and implementation *)
  ld_sources : string list;  (** [.ml] files under the scanned roots *)
  ld_wrappers : SS.t;  (** wrapper-alias module names, e.g. ["Colibri"] *)
}

val load : string list -> loaded
(** Walk [dirs] recursively, read every [.cmt] implementation, and
    compute the wrapper-alias set from the mangled unit names. *)

(** {1 Scanning} *)

type scan_result = {
  sr_findings : Lint.Finding.t list;
  sr_scanned : int;
  sr_d4_keys : (string * int * string) list;
      (** [(file, line, global)] of every D4 finding; domaincheck
          drops its D6/D7 findings at these keys so one access is
          never reported by both analyzers. *)
}

val scan_ex : string list -> scan_result

val scan : string list -> Lint.Finding.t list * int
(** [scan dirs] walks [dirs] recursively for [.cmt] files (and [.ml]
    sources, for the hot-path markers), analyzes every implementation
    module found, and returns the sorted findings plus the number of
    modules scanned. *)

val run_cli : string list -> int
(** [run_cli args] parses [[--json] [--baseline FILE] <dir>...],
    scans, prints a report (text or JSON; gated against the baseline
    ledger when given), and returns the exit code: 0 when clean, 1 on
    findings, 2 on usage errors. *)
