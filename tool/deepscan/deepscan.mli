(** [colibri-deepscan]: typedtree-level interprocedural analysis over
    the [.cmt] files dune produces (DESIGN.md §6).

    Five rules, each suppressible with a [[@colibri.allow "<rule>"]]
    attribute on the offending expression or a
    [[@@colibri.allow "<rule>"]] attribute on the enclosing binding
    (the payload may name several rules, space- or comma-separated):

    - [d1] — allocation in the hot closure: any function reachable
      from a [(* hot-path *)] root (transitively, across modules) that
      allocates: a denylisted stdlib call ([Bytes.create], [List.map],
      [Printf.sprintf], ...), a list cons, an array literal, or an
      anonymous closure. The interprocedural generalization of the
      token rule R7, which only sees the marked function itself.
    - [d2] — exception escape: a reachable [raise]/[failwith]/
      [invalid_arg]/[assert], or a partial stdlib call ([List.hd],
      [Option.get], [Hashtbl.find], ...), in the same hot closure.
    - [d3] — polymorphic comparison at the wrong type: [compare] at
      any type (use the keyed [Int.compare]/[Ids.compare_asn]/...);
      [=], [<>], [min], [max], [List.mem], [List.assoc],
      [List.mem_assoc] and [Hashtbl.hash] when the subject type is
      composite (record, tuple, list, non-constant variant, or
      abstract). Applies everywhere, not only under hot roots.
    - [d4] — shard race: a function in a [*shard*] module whose call
      closure reaches module-level mutable state (a top-level [ref],
      [Hashtbl.create], mutable record, ...) instead of the per-shard
      state record.
    - [d5] — constant-time discipline: an intra-function taint pass;
      a digest produced by [Cmac.digest]/[Hvf.seg_token]/... must not
      reach an [if] condition or [match] scrutinee except through the
      constant-time sanitizers ([Cmac.verify], [Hvf.equal_hvf], ...).
      Files under [crypto/] implement the primitives and are exempt.

    Hot roots are bindings that begin within three lines of a
    [(* hot-path *)] marker, plus a named list covering the monitor
    observe path ([Ofd.observe], [Token_bucket.admit], ...). *)

val rule_names : string list
(** The five rule slugs, ["d1"] .. ["d5"]. *)

val scan : string list -> Lint.Finding.t list * int
(** [scan dirs] walks [dirs] recursively for [.cmt] files (and [.ml]
    sources, for the hot-path markers), analyzes every implementation
    module found, and returns the sorted findings plus the number of
    modules scanned. *)

val run_cli : string list -> int
(** [run_cli dirs] scans, prints a report, and returns the exit code:
    0 when clean, 1 on findings, 2 on usage errors. *)
