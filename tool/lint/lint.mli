(** [colibri-lint]: project-specific static analysis.

    Seven rules, each with a pragma name usable in a
    [(* lint: allow <rule> ... *)] escape hatch (which suppresses the
    named rules — or [all] — on its own line and on the line
    immediately following):

    - [poly-hash] (R1): no polymorphic [Hashtbl.hash], and no
      polymorphic [Hashtbl.t] keyed by identifier types, outside
      [lib/types/ids.ml].
    - [hot-path-exn] (R2): no [failwith]/[invalid_arg]/[assert] in
      data-plane hot-path modules ([packet], [router], [gateway],
      [dataplane_shard], [monitor/*]).
    - [mac-compare] (R3): no [Bytes.equal]/[Bytes.compare] outside
      [lib/crypto]; MAC checks go through the constant-time
      [Cmac.verify].
    - [missing-mli] (R4): every [lib/**/*.ml] has a matching [.mli].
    - [nondet] (R5): no [Random.self_init]/[Sys.time]/
      [Unix.gettimeofday]/[Unix.time] under [lib/].
    - [negative-modulo] (R6): no [abs … mod …] indexing anywhere —
      [abs min_int] stays negative, so the index goes out of bounds;
      use [land max_int] to clear the sign bit.
    - [hot-path-alloc] (R7): no [Bytes.create]/[Bytes.sub]/[Bytes.copy]/
      [Bytes.extend]/[Buffer.create] inside a definition marked
      [(* hot-path *)]; the per-packet wire path must stay
      allocation-free (DESIGN.md §8).

    Comment and string-literal contents are masked before token
    matching, so documentation never triggers findings. *)

type finding = Finding.t = {
  file : string;
  line : int;
  rule : string;
  message : string;
  suppressed : bool;
}
(** Shared with [colibri-deepscan]/[colibri-domaincheck]; see
    {!Finding}. [suppressed] marks pragma/attribute-silenced findings
    kept only for the [--json] export. *)

val pp_finding : Format.formatter -> finding -> unit

module Finding : module type of Finding
(** The shared finding/report module, re-exported for sibling tools. *)

module Baseline : module type of Baseline
(** The findings ratchet ([tool/baseline.json]) plus the shared
    analyzer CLI plumbing ([--json] / [--baseline]), re-exported for
    [colibri-deepscan] and [colibri-domaincheck]. *)

val rule_names : string list
(** The seven pragma names, in R1..R7 order. *)

val lint_source : path:string -> in_lib:bool -> string -> finding list
(** Lint one compilation unit given its content. [path] selects which
    rules apply; [in_lib] enables the lib-only determinism rule. *)

val lint_root : string -> finding list
(** Lint every [.ml]/[.mli] under a directory. A root whose basename
    is [lib] additionally gets the [missing-mli] and [nondet] rules. *)

val lint_roots : string list -> finding list

val run_cli : string list -> int
(** Lint each root, print findings, and return the exit code: 0 when
    clean, 1 on findings, 2 on usage errors. *)

val mask_comments_and_strings : string -> string
(** Exposed for the self-tests. *)
