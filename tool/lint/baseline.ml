(** The findings ratchet shared by [colibri-deepscan] and
    [colibri-domaincheck] (DESIGN.md §11).

    [tool/baseline.json] is the checked-in debt ledger: a JSON object
    mapping tool name to an array of finding objects in the stable
    [--json] schema (rule, file, line, message, suppressed). The CI
    aliases run each analyzer with [--baseline tool/baseline.json] and
    the gate fails in both directions:

    - a finding {e not} in the baseline is new debt — fix or suppress
      it with a reviewed [[@colibri.allow]];
    - a baseline entry that no longer fires is {e stale} — delete it,
      so the ledger only ever shrinks.

    The parser below is a minimal recursive-descent JSON reader (the
    container has no JSON library); it accepts exactly the subset the
    schema uses: objects, arrays, strings with escapes, integers and
    booleans. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

(* ------------------------------ parser ------------------------------ *)

type cursor = { src : string; mutable pos : int }

let error (c : cursor) (what : string) =
  raise (Parse_error (Printf.sprintf "baseline: %s at byte %d" what c.pos))

let peek (c : cursor) : char option =
  if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance (c : cursor) = c.pos <- c.pos + 1

let rec skip_ws (c : cursor) =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect (c : cursor) (ch : char) =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %c" ch)

let parse_string (c : cursor) : string =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' ->
            Buffer.add_char b '\n';
            advance c;
            go ()
        | Some 't' ->
            Buffer.add_char b '\t';
            advance c;
            go ()
        | Some 'u' ->
            (* \uXXXX: the schema only emits control characters this
               way; decode the low byte, good enough for a ledger. *)
            advance c;
            if c.pos + 4 > String.length c.src then error c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some n when n < 256 -> Buffer.add_char b (Char.chr n)
            | Some _ -> Buffer.add_char b '?'
            | None -> error c "bad \\u escape");
            go ()
        | Some ch ->
            Buffer.add_char b ch;
            advance c;
            go ()
        | None -> error c "unterminated escape")
    | Some ch ->
        Buffer.add_char b ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents b

let rec parse_value (c : cursor) : json =
  skip_ws c;
  match peek c with
  | Some '"' -> Str (parse_string c)
  | Some '{' -> parse_obj c
  | Some '[' -> parse_arr c
  | Some 't' ->
      if c.pos + 4 <= String.length c.src && String.sub c.src c.pos 4 = "true"
      then begin
        c.pos <- c.pos + 4;
        Bool true
      end
      else error c "bad literal"
  | Some 'f' ->
      if c.pos + 5 <= String.length c.src && String.sub c.src c.pos 5 = "false"
      then begin
        c.pos <- c.pos + 5;
        Bool false
      end
      else error c "bad literal"
  | Some 'n' ->
      if c.pos + 4 <= String.length c.src && String.sub c.src c.pos 4 = "null"
      then begin
        c.pos <- c.pos + 4;
        Null
      end
      else error c "bad literal"
  | Some ('-' | '0' .. '9') ->
      let start = c.pos in
      if peek c = Some '-' then advance c;
      let rec digits () =
        match peek c with
        | Some '0' .. '9' ->
            advance c;
            digits ()
        | _ -> ()
      in
      digits ();
      (match int_of_string_opt (String.sub c.src start (c.pos - start)) with
      | Some n -> Int n
      | None -> error c "bad number")
  | _ -> error c "unexpected character"

and parse_obj (c : cursor) : json =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws c;
      let key = parse_string c in
      expect c ':';
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          advance c;
          members ((key, v) :: acc)
      | Some '}' ->
          advance c;
          Obj (List.rev ((key, v) :: acc))
      | _ -> error c "expected , or }"
    in
    members []
  end

and parse_arr (c : cursor) : json =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    advance c;
    Arr []
  end
  else begin
    let rec elems acc =
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          advance c;
          elems (v :: acc)
      | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
      | _ -> error c "expected , or ]"
    in
    elems []
  end

let parse (src : string) : json =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then error c "trailing garbage";
  v

(* ------------------------------ ledger ------------------------------ *)

let finding_of_json (j : json) : Finding.t =
  match j with
  | Obj fields ->
      let str k =
        match List.assoc_opt k fields with
        | Some (Str s) -> s
        | _ -> raise (Parse_error ("baseline: entry missing string " ^ k))
      in
      let int k =
        match List.assoc_opt k fields with
        | Some (Int n) -> n
        | _ -> raise (Parse_error ("baseline: entry missing int " ^ k))
      in
      Finding.v ~file:(str "file") ~line:(int "line") ~rule:(str "rule")
        ~message:(str "message")
  | _ -> raise (Parse_error "baseline: entry is not an object")

(** Load the per-tool ledgers from [path]. A missing file is an empty
    ledger (the ratchet starts clean). *)
let load (path : string) : (string * Finding.t list) list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match parse src with
    | Obj tools ->
        List.map
          (fun (tool, v) ->
            match v with
            | Arr entries -> (tool, List.map finding_of_json entries)
            | _ -> raise (Parse_error ("baseline: " ^ tool ^ " is not an array")))
          tools
    | _ -> raise (Parse_error "baseline: top level is not an object")
  end

(* Entries match on the full identity (rule, file, line, message):
   exact by design — a drifted line means the ledger must be
   re-recorded, which the gate forces by reporting it stale. *)
let key (f : Finding.t) : string =
  Printf.sprintf "%s|%s|%d|%s" f.rule f.file f.line f.message

(** Gate [findings] (active only) against the [tool] ledger in [path]:
    returns [(fresh, stale)] — findings not covered by the ledger, and
    ledger entries that no longer fire (which must be deleted; the
    ratchet only shrinks). *)
let gate ~(tool : string) ~(path : string) (findings : Finding.t list) :
    Finding.t list * Finding.t list =
  let ledger =
    match List.assoc_opt tool (load path) with Some l -> l | None -> []
  in
  let active = Finding.active findings in
  let have = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace have (key f) ()) active;
  let known = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace known (key f) ()) ledger;
  let fresh = List.filter (fun f -> not (Hashtbl.mem known (key f))) active in
  let stale = List.filter (fun f -> not (Hashtbl.mem have (key f))) ledger in
  (fresh, stale)

(** Gate driver shared by the analyzers: prints fresh findings and
    stale entries on [ppf], returns the exit code. *)
let report_gate ?(ppf = Format.std_formatter) ~(tool : string)
    ~(path : string) (findings : Finding.t list) : int =
  let fresh, stale = gate ~tool ~path findings in
  List.iter
    (fun f -> Format.fprintf ppf "%a@." Finding.pp f)
    (List.sort Finding.order fresh);
  List.iter
    (fun (f : Finding.t) ->
      Format.fprintf ppf
        "%s:%d: [%s] stale baseline entry (no longer fires) — delete it from \
         %s; the ratchet only shrinks@."
        f.file f.line f.rule path)
    (List.sort Finding.order stale);
  Format.fprintf ppf
    "%s: %d new finding%s, %d stale baseline entr%s (ledger %s)@." tool
    (List.length fresh)
    (if List.length fresh = 1 then "" else "s")
    (List.length stale)
    (if List.length stale = 1 then "y" else "ies")
    path;
  if fresh = [] && stale = [] then 0 else 1

(* --------------------------- CLI plumbing --------------------------- *)

(** Parse the analyzer CLI surface shared by [colibri-deepscan] and
    [colibri-domaincheck]: [[--json] [--baseline FILE] <dir>...]. *)
let parse_args (args : string list) :
    (bool * string option * string list, string) result =
  let rec go json baseline dirs = function
    | [] -> Ok (json, baseline, List.rev dirs)
    | "--json" :: rest -> go true baseline dirs rest
    | "--baseline" :: path :: rest -> go json (Some path) dirs rest
    | [ "--baseline" ] -> Error "--baseline needs a file argument"
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        Error ("unknown flag " ^ arg)
    | dir :: rest -> go json baseline (dir :: dirs) rest
  in
  go false None [] args

(** Uniform report step: text or [--json] output, with the ratchet
    gate deciding the exit code whenever a ledger is given (its
    diagnostics move to stderr in JSON mode so stdout stays one JSON
    array). *)
let run_report ~(tool : string) ~(scanned : int) ~(unit_name : string)
    ~(json : bool) ~(baseline : string option) (findings : Finding.t list) :
    int =
  match (json, baseline) with
  | false, None -> Finding.report ~tool ~scanned ~unit_name findings
  | false, Some path -> report_gate ~tool ~path findings
  | true, None -> Finding.report_json findings
  | true, Some path ->
      ignore (Finding.report_json findings);
      report_gate ~ppf:Format.err_formatter ~tool ~path findings
