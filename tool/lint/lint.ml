(** [colibri-lint]: project-specific static analysis.

    A line/token-level analyzer enforcing the invariants the paper's
    claims rest on but the type checker cannot see:

    - {b poly-hash} (R1): no polymorphic [Hashtbl.hash], and no
      polymorphic [Hashtbl.t] keyed by identifier types ([Ids.asn],
      [Ids.res_key]), outside [lib/types/ids.ml]. Polymorphic hashing
      of nested records is both slower than the keyed functors in
      {!Ids} and non-portable across OCaml versions; the admission
      fast path (Fig. 3) must use [Hashtbl.Make] instances.
    - {b hot-path-exn} (R2): no [failwith]/[invalid_arg]/[assert] in
      data-plane hot-path modules ([packet], [router], [gateway],
      [dataplane_shard], [monitor/*]) — per-packet errors must be
      variants; an exception on the forwarding path is a
      denial-of-service primitive.
    - {b mac-compare} (R3): no [Bytes.equal]/[Bytes.compare] outside
      [lib/crypto] — MAC/tag comparison must go through the
      constant-time [Cmac.verify] (§4.5); early-exit comparison leaks
      tag prefixes through timing.
    - {b missing-mli} (R4): every [lib/**/*.ml] has a matching [.mli],
      so hot-path representations stay abstract.
    - {b nondet} (R5): no [Random.self_init]/[Sys.time]/
      [Unix.gettimeofday]/[Unix.time] in [lib/] — simulations must be
      deterministic; time comes from an injected {!Timebase.clock} and
      randomness from an explicit [Random.State.t].
    - {b negative-modulo} (R6): no [abs … mod …] indexing. [abs min_int]
      is [min_int] (two's complement has no positive counterpart), so
      the subsequent [mod] is negative and the index lands out of
      bounds. Clear the sign bit with [land max_int] instead.
    - {b hot-path-alloc} (R7): no [Bytes.create]/[Bytes.sub]/
      [Bytes.copy]/[Bytes.extend]/[Buffer.create] inside a definition
      marked [(* hot-path *)]. Those markers annotate the per-packet
      wire path, which DESIGN.md §8 requires to be allocation-free;
      fresh buffers there silently reintroduce GC pressure the gc
      bench would only catch later.

    Escape hatch: a comment [(* lint: allow <rule> ... *)] suppresses
    the named rules (or [all]) on its own line and on the line
    immediately following. Comment and string-literal contents are
    masked before token matching, so prose mentioning [Hashtbl.hash]
    is not flagged. *)

type finding = Finding.t = {
  file : string;
  line : int;
  rule : string;
  message : string;
  suppressed : bool;
}
(* Re-exported from {!Finding} (shared with colibri-deepscan) so that
   [f.Lint.rule] record access keeps working for existing callers. *)

let pp_finding = Finding.pp

(* Surface the shared modules to other tools (deepscan, domaincheck)
   that link against this library; [Finding]/[Baseline] alone would
   stay library-private. *)
module Finding = Finding
module Baseline = Baseline

(* ------------------------------ paths ------------------------------ *)

let contains (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let ends_with ~(suffix : string) (s : string) : bool =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

(* Normalized relative path with '/' separators. *)
let norm (path : string) : string =
  String.map (fun c -> if c = '\\' then '/' else c) path

let is_ids_module path =
  let p = norm path in
  ends_with ~suffix:"types/ids.ml" p || ends_with ~suffix:"types/ids.mli" p

let hot_path_basenames = [ "packet.ml"; "router.ml"; "gateway.ml"; "dataplane_shard.ml" ]

let is_hot_path path =
  List.mem (Filename.basename path) hot_path_basenames
  || contains (norm path) "monitor/"

let in_crypto path = contains (norm path) "crypto/"

(* ------------------------------ rules ------------------------------ *)

type pattern = {
  rule : string;  (** pragma name *)
  tokens : string list;  (** any occurrence on a line flags it *)
  co_words : string list;
      (** when non-empty, the line must also contain one of these words *)
  applies : path:string -> in_lib:bool -> bool;
  message : string;
}

let patterns : pattern list =
  [
    {
      rule = "poly-hash";
      tokens = [ "Hashtbl.hash" ];
      co_words = [];
      applies = (fun ~path ~in_lib:_ -> not (is_ids_module path));
      message =
        "polymorphic Hashtbl.hash on the fast path; use the keyed hashes of \
         Ids (lib/types/ids.ml)";
    };
    {
      rule = "poly-hash";
      tokens = [ "Hashtbl.t" ];
      co_words = [ "asn"; "res_key"; "Asn"; "Res_key" ];
      applies = (fun ~path ~in_lib:_ -> not (is_ids_module path));
      message =
        "polymorphic hash table keyed by identifier types; use the \
         Hashtbl.Make instances of Ids (lib/types/ids.ml)";
    };
    {
      rule = "hot-path-exn";
      tokens = [ "failwith"; "invalid_arg"; "assert" ];
      co_words = [];
      applies = (fun ~path ~in_lib:_ -> is_hot_path path);
      message =
        "exception in a data-plane hot-path module; per-packet errors must be \
         variants";
    };
    {
      rule = "mac-compare";
      tokens = [ "Bytes.equal"; "Bytes.compare" ];
      co_words = [];
      applies = (fun ~path ~in_lib:_ -> not (in_crypto path));
      message =
        "variable-time byte comparison; MAC/tag checks must use the \
         constant-time Cmac.verify (lib/crypto)";
    };
    {
      rule = "nondet";
      tokens = [ "Random.self_init"; "Sys.time"; "Unix.gettimeofday"; "Unix.time" ];
      co_words = [];
      applies = (fun ~path:_ ~in_lib -> in_lib);
      message =
        "ambient time/randomness breaks simulation determinism; inject a \
         Timebase.clock or Random.State.t";
    };
    {
      rule = "negative-modulo";
      tokens = [ "abs" ];
      co_words = [ "mod" ];
      applies = (fun ~path:_ ~in_lib:_ -> true);
      message =
        "abs before mod overflows on min_int (abs min_int = min_int), making \
         the index negative; clear the sign bit with land max_int instead";
    };
  ]

let rule_names =
  [ "poly-hash"; "hot-path-exn"; "mac-compare"; "missing-mli"; "nondet";
    "negative-modulo"; "hot-path-alloc" ]

let hot_alloc_tokens =
  [ "Bytes.create"; "Bytes.sub"; "Bytes.copy"; "Bytes.extend"; "Buffer.create" ]

let hot_alloc_message =
  "allocation inside a (* hot-path *) definition; the per-packet wire path \
   must reuse caller/scratch buffers (DESIGN.md §8)"

(* --------------------------- tokenization --------------------------- *)

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Does [tok] occur in [line] delimited by non-identifier characters?
   A leading '.' is a valid boundary so that [Stdlib.Hashtbl.hash] is
   still caught. *)
let token_occurs (line : string) (tok : string) : bool =
  let n = String.length line and m = String.length tok in
  let rec go i =
    if i + m > n then false
    else if
      String.sub line i m = tok
      && (i = 0 || not (is_ident_char line.[i - 1]))
      && (i + m = n || not (is_ident_char line.[i + m]))
    then true
    else go (i + 1)
  in
  m > 0 && go 0

(* Mask comment and string-literal contents with spaces (newlines kept)
   so that documentation never triggers token matches. Handles nested
   comments and skips character literals (including escapes) so that
   ['"'] does not open a phantom string. *)
let mask_comments_and_strings (src : string) : string =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let rec code i =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (i + 2) 1
    end
    else if src.[i] = '"' then begin
      blank i;
      string (i + 1)
    end
    else if
      (* char literal: '<c>' or '\<escape...>' — not a type variable *)
      src.[i] = '\''
      && ((i + 2 < n && src.[i + 2] = '\'' && src.[i + 1] <> '\\')
         || (i + 1 < n && src.[i + 1] = '\\'))
    then begin
      let j = ref (i + 1) in
      while !j < n && src.[!j] <> '\'' do incr j done;
      for k = i to min (n - 1) !j do blank k done;
      code (!j + 1)
    end
    else code (i + 1)
  and comment i depth =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (i + 2) (depth + 1)
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then code (i + 2) else comment (i + 2) (depth - 1)
    end
    else begin
      blank i;
      comment (i + 1) depth
    end
  and string i =
    if i >= n then ()
    else if src.[i] = '\\' && i + 1 < n then begin
      blank i;
      blank (i + 1);
      string (i + 2)
    end
    else if src.[i] = '"' then begin
      blank i;
      code (i + 1)
    end
    else begin
      blank i;
      string (i + 1)
    end
  in
  code 0;
  Bytes.to_string out

(* --------------------------- hot-path regions ----------------------- *)

let is_blank (s : string) : bool = String.trim s = ""

let indent_of (s : string) : int =
  let n = String.length s in
  let rec go i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then go (i + 1) else i in
  go 0

(** Lines covered by a [(* hot-path *)] marker (R7). The marker applies
    to the definition beginning on the marker line itself (when it
    carries code) or on the next non-blank line; the region then runs
    until the next non-blank line indented at or left of the marker —
    the following top-level item, or the enclosing [end]. Markers are
    read from the {e raw} lines because masking blanks comments. *)
let hot_path_regions (raw_lines : string array) (masked_lines : string array) :
    bool array =
  let n = Array.length raw_lines in
  let hot = Array.make n false in
  for i = 0 to n - 1 do
    if contains raw_lines.(i) "(* hot-path *)" then begin
      let mindent = indent_of raw_lines.(i) in
      let start =
        if not (is_blank masked_lines.(i)) then i
        else begin
          let j = ref (i + 1) in
          while !j < n && is_blank masked_lines.(!j) do incr j done;
          !j
        end
      in
      let j = ref start in
      let stop = ref (!j >= n) in
      while not !stop do
        hot.(!j) <- true;
        incr j;
        if
          !j >= n
          || ((not (is_blank raw_lines.(!j))) && indent_of raw_lines.(!j) <= mindent)
        then stop := true
      done
    end
  done;
  hot

(* ------------------------------ pragmas ------------------------------ *)

(* Rules allowed on [line] by a [(* lint: allow r1 r2 *)] pragma on the
   same line or the line immediately above. *)
let pragma_allows (raw_lines : string array) (line : int) (rule : string) : bool =
  let allows_on idx =
    if idx < 1 || idx > Array.length raw_lines then false
    else
      let l = raw_lines.(idx - 1) in
      match String.index_opt l 'l' with
      | None -> false
      | Some _ ->
          contains l "lint:"
          && contains l "allow"
          && (token_occurs l rule || token_occurs l "all")
  in
  allows_on line || allows_on (line - 1)

(* ----------------------------- scanning ----------------------------- *)

let split_lines (s : string) : string array =
  Array.of_list (String.split_on_char '\n' s)

(** Lint one compilation unit given its [content]; [path] determines
    which rules apply ([in_lib] marks files under a [lib] root, where
    the determinism rule holds). *)
let lint_source ~(path : string) ~(in_lib : bool) (content : string) : finding list =
  let raw_lines = split_lines content in
  let masked_lines = split_lines (mask_comments_and_strings content) in
  let hot = hot_path_regions raw_lines masked_lines in
  let findings = ref [] in
  Array.iteri
    (fun i masked ->
      let line = i + 1 in
      List.iter
        (fun (p : pattern) ->
          if
            p.applies ~path ~in_lib
            && List.exists (token_occurs masked) p.tokens
            && (p.co_words = [] || List.exists (token_occurs masked) p.co_words)
            && not (pragma_allows raw_lines line p.rule)
          then
            findings :=
              Finding.v ~file:path ~line ~rule:p.rule ~message:p.message
              :: !findings)
        patterns;
      if
        hot.(i)
        && List.exists (token_occurs masked) hot_alloc_tokens
        && not (pragma_allows raw_lines line "hot-path-alloc")
      then
        findings :=
          Finding.v ~file:path ~line ~rule:"hot-path-alloc"
            ~message:hot_alloc_message
          :: !findings)
    masked_lines;
  List.rev !findings

let read_file (path : string) : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Collect the [.ml]/[.mli] files under [dir], skipping hidden and
    build directories, in deterministic order. *)
let rec source_files (dir : string) : string list =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if entry = "" || entry.[0] = '.' || entry.[0] = '_' then []
         else if Sys.is_directory path then source_files path
         else if
           Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
         then [ path ]
         else [])

(** Lint everything under [root]. A root whose basename is [lib] gets
    the lib-only rules: [nondet] (R5) and [missing-mli] (R4). *)
let lint_root (root : string) : finding list =
  let in_lib = Filename.basename root = "lib" in
  source_files root
  |> List.concat_map (fun path ->
         let token_findings = lint_source ~path ~in_lib (read_file path) in
         let mli_findings =
           if
             in_lib
             && Filename.check_suffix path ".ml"
             && not (Sys.file_exists (path ^ "i"))
           then
             [
               Finding.v ~file:path ~line:1 ~rule:"missing-mli"
                 ~message:
                   "every module under lib/ needs an interface file so \
                    hot-path representations stay abstract";
             ]
           else []
         in
         mli_findings @ token_findings)

let lint_roots (roots : string list) : finding list = List.concat_map lint_root roots

(** CLI driver: lint each root, print findings, return the exit code
    (0 when clean, 1 on findings, 2 on usage errors). *)
let run_cli (roots : string list) : int =
  if roots = [] then begin
    prerr_endline "usage: colibri_lint <dir>...";
    2
  end
  else
    match List.filter (fun r -> not (Sys.file_exists r)) roots with
    | missing :: _ ->
        Printf.eprintf "colibri_lint: no such directory: %s\n" missing;
        2
    | [] ->
        let findings = lint_roots roots in
        let files = List.fold_left (fun acc r -> acc + List.length (source_files r)) 0 roots in
        Finding.report ~tool:"colibri-lint" ~scanned:files ~unit_name:"file" findings
