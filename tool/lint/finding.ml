(** The finding record shared by the project's static analyzers:
    [colibri-lint] (token level, {!Lint}) and [colibri-deepscan]
    (typedtree level, [tool/deepscan]). Both print the same
    [file:line: [rule] message] diagnostics and use the same exit-code
    convention, so CI output stays uniform regardless of which layer
    caught the problem. *)

type t = { file : string; line : int; rule : string; message : string }

let v ~file ~line ~rule ~message = { file; line; rule; message }

let pp ppf (f : t) =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.message

(* Stable report order: by file, then line, then rule — analyzers that
   collect findings out of traversal order still print deterministically. *)
let order (a : t) (b : t) =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with
           | 0 -> String.compare a.rule b.rule
           | c -> c)
  | c -> c

(** Print findings plus a one-line summary; the result is the process
    exit code (0 clean, 1 on findings) shared by both analyzers. *)
let report ~(tool : string) ~(scanned : int) ~(unit_name : string)
    (findings : t list) : int =
  List.iter (fun f -> Format.printf "%a@." pp f) findings;
  let n = List.length findings in
  Format.printf "%s: %d %s%s scanned, %d finding%s@." tool scanned unit_name
    (if scanned = 1 then "" else "s")
    n
    (if n = 1 then "" else "s");
  if n = 0 then 0 else 1
