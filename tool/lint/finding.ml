(** The finding record shared by the project's static analyzers:
    [colibri-lint] (token level, {!Lint}), [colibri-deepscan]
    (typedtree level, [tool/deepscan]) and [colibri-domaincheck]
    (domain-ownership level, [tool/domaincheck]). All print the same
    [file:line: [rule] message] diagnostics and use the same exit-code
    convention, so CI output stays uniform regardless of which layer
    caught the problem.

    [suppressed] marks a finding silenced by a [[@colibri.allow]]
    attribute (or lint pragma): it never affects the exit code or the
    text report, but the [--json] mode exports it so suppression
    reviews (DESIGN.md §11) can audit what the escape hatch hides. *)

type t = {
  file : string;
  line : int;
  rule : string;
  message : string;
  suppressed : bool;
}

let v ~file ~line ~rule ~message =
  { file; line; rule; message; suppressed = false }

let suppress (f : t) : t = { f with suppressed = true }

let pp ppf (f : t) =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.message

(* Stable report order: by file, then line, then rule — analyzers that
   collect findings out of traversal order still print deterministically. *)
let order (a : t) (b : t) =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let active (findings : t list) : t list =
  List.filter (fun f -> not f.suppressed) findings

(* ------------------------------ JSON ------------------------------ *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One finding as one JSON object — the stable schema of the [--json]
   CLI mode and of [tool/baseline.json]: rule, file, line, message,
   suppressed. *)
let to_json_object (f : t) : string =
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"message\":\"%s\",\"suppressed\":%b}"
    (json_escape f.rule) (json_escape f.file) f.line (json_escape f.message)
    f.suppressed

let to_json (findings : t list) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      Buffer.add_string b (to_json_object f))
    findings;
  Buffer.add_string b (if findings = [] then "]" else "\n]");
  Buffer.contents b

(** Print active findings plus a one-line summary; the result is the
    process exit code (0 clean, 1 on findings) shared by the
    analyzers. Suppressed findings are export-only. *)
let report ~(tool : string) ~(scanned : int) ~(unit_name : string)
    (findings : t list) : int =
  let act = active findings in
  List.iter (fun f -> Format.printf "%a@." pp f) act;
  let n = List.length act in
  Format.printf "%s: %d %s%s scanned, %d finding%s@." tool scanned unit_name
    (if scanned = 1 then "" else "s")
    n
    (if n = 1 then "" else "s");
  if n = 0 then 0 else 1

(** JSON report: the full finding list (suppressed included) as one
    array on stdout; exit code still counts only active findings. *)
let report_json (findings : t list) : int =
  print_string (to_json findings);
  print_newline ();
  if active findings = [] then 0 else 1
