(* colibri-lint entry point: [colibri_lint <dir>...] — typically
   [colibri_lint lib bin bench] from the repository root, as wired into
   [dune build @lint] and [dune runtest]. *)

let () = exit (Lint.run_cli (List.tl (Array.to_list Sys.argv)))
