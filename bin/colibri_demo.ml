(** [colibri-demo] — a cmdliner CLI driving a full simulated Colibri
    deployment, for exploring the system from a shell.

    {v
    colibri-demo topology [--isds N --cores N --leaves N --seed N]
    colibri-demo segments --src ISD-AS --dst ISD-AS
    colibri-demo reserve  --src ISD-AS --dst ISD-AS --bw MBPS [--packets N]
    colibri-demo attack   [--overuse-factor F]
    v} *)

open Colibri_types
open Colibri_topology
open Colibri

let mbps = Bandwidth.of_mbps
let gbps = Bandwidth.of_gbps

(* ---- shared argument parsing ---- *)

let asn_conv =
  let parse s =
    match String.split_on_char '-' s with
    | [ isd; num ] -> (
        match (int_of_string_opt isd, int_of_string_opt num) with
        | Some isd, Some num -> Ok (Ids.asn ~isd ~num)
        | _ -> Error (`Msg (Printf.sprintf "bad AS id %S (expected ISD-AS, e.g. 1-11)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad AS id %S (expected ISD-AS, e.g. 1-11)" s))
  in
  let print ppf a = Ids.pp_asn ppf a in
  Cmdliner.Arg.conv (parse, print)

open Cmdliner

let isds_arg =
  Arg.(value & opt int 2 & info [ "isds" ] ~docv:"N" ~doc:"Number of ISDs.")

let cores_arg =
  Arg.(value & opt int 2 & info [ "cores" ] ~docv:"N" ~doc:"Core ASes per ISD.")

let leaves_arg =
  Arg.(value & opt int 3 & info [ "leaves" ] ~docv:"N" ~doc:"Leaf ASes per ISD.")

let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")

let make_topo isds cores leaves seed =
  Topology_gen.random ~rng:(Random.State.make [| seed |]) ~isds ~cores ~leaves

(* ---- topology ---- *)

let topology_cmd =
  let run isds cores leaves seed =
    let topo = make_topo isds cores leaves seed in
    Fmt.pr "%a@." Topology.pp topo;
    let db = Segments.discover topo in
    Fmt.pr "@.%d path segments discovered by beaconing.@." (Segments.Db.size db)
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate and print a random two-tier topology.")
    Term.(const run $ isds_arg $ cores_arg $ leaves_arg $ seed_arg)

(* ---- segments ---- *)

let src_arg =
  Arg.(required & opt (some asn_conv) None & info [ "src" ] ~docv:"ISD-AS" ~doc:"Source AS.")

let dst_arg =
  Arg.(required & opt (some asn_conv) None & info [ "dst" ] ~docv:"ISD-AS" ~doc:"Destination AS.")

let segments_cmd =
  let run isds cores leaves seed src dst =
    let topo = make_topo isds cores leaves seed in
    if not (Topology.mem topo src && Topology.mem topo dst) then begin
      Fmt.epr "unknown AS (use `colibri-demo topology` to list them)@.";
      exit 1
    end;
    let db = Segments.discover topo in
    let combos = Segments.Db.combinations db ~src ~dst in
    Fmt.pr "%d segment combinations from %a to %a:@." (List.length combos)
      Ids.pp_asn src Ids.pp_asn dst;
    List.iteri
      (fun i combo ->
        Fmt.pr "%2d. %a@." (i + 1)
          Fmt.(list ~sep:(any " + ") Segments.pp)
          combo)
      combos
  in
  Cmd.v
    (Cmd.info "segments" ~doc:"Show path-segment combinations between two ASes.")
    Term.(const run $ isds_arg $ cores_arg $ leaves_arg $ seed_arg $ src_arg $ dst_arg)

(* ---- reserve: full control-plane + data-plane walk ---- *)

let bw_arg =
  Arg.(value & opt float 100. & info [ "bw" ] ~docv:"MBPS" ~doc:"EER bandwidth in Mbps.")

let packets_arg =
  Arg.(value & opt int 50 & info [ "packets" ] ~docv:"N" ~doc:"Data packets to send.")

(* Establish the SegRs needed for src→dst and return the deployment. *)
let provision deployment ~src ~dst =
  let db = Deployment.seg_db deployment in
  let topo = Deployment.topology deployment in
  let try_seg kind path =
    match
      Deployment.setup_segr deployment ~path ~kind ~max_bw:(gbps 2.) ~min_bw:(mbps 1.)
    with
    | Ok segr ->
        Fmt.pr "  SegR %a (%a) %a@." Ids.pp_res_key segr.key Reservation.pp_seg_kind
          kind Path.pp segr.path;
        true
    | Error e ->
        Fmt.pr "  SegR setup failed (%s)@." e;
        false
  in
  (* Ups from src. *)
  if not (Topology.is_core topo src) then
    Segments.Db.up_segments db ~src
    |> List.iteri (fun i (s : Segments.t) ->
           if i < 2 then ignore (try_seg Reservation.Up s.path));
  (* Downs to dst. *)
  if not (Topology.is_core topo dst) then
    Segments.Db.down_segments db ~dst
    |> List.iteri (fun i (s : Segments.t) ->
           if i < 2 then
             ignore
               (Deployment.request_down_segr deployment ~path:s.path
                  ~max_bw:(gbps 2.) ~min_bw:(mbps 1.)
                |> Result.map (fun (segr : Reservation.segr) ->
                       Fmt.pr "  SegR %a (down) %a@." Ids.pp_res_key segr.key Path.pp
                         segr.path)));
  (* Cores between every up-end and down-start (or the endpoints if
     they are core ASes themselves). *)
  let ups =
    if Topology.is_core topo src then [ src ]
    else
      Segments.Db.up_segments db ~src
      |> List.filteri (fun i _ -> i < 2)
      |> List.map Segments.destination
  in
  let downs =
    if Topology.is_core topo dst then [ dst ]
    else
      Segments.Db.down_segments db ~dst
      |> List.filteri (fun i _ -> i < 2)
      |> List.map Segments.source
  in
  List.iter
    (fun u ->
      List.iter
        (fun d ->
          if not (Ids.equal_asn u d) then
            Segments.Db.core_segments db ~src:u ~dst:d
            |> List.iteri (fun i (s : Segments.t) ->
                   if i < 1 then ignore (try_seg Reservation.Core s.path)))
        downs)
    ups

let reserve_cmd =
  let run isds cores leaves seed src dst bw packets =
    let topo = make_topo isds cores leaves seed in
    if not (Topology.mem topo src && Topology.mem topo dst) then begin
      Fmt.epr "unknown AS@.";
      exit 1
    end;
    let deployment = Deployment.create topo in
    Fmt.pr "Provisioning segment reservations:@.";
    provision deployment ~src ~dst;
    Fmt.pr "@.Requesting a %.0f Mbps EER %a(h1) → %a(h2)...@." bw Ids.pp_asn src
      Ids.pp_asn dst;
    match
      Deployment.setup_eer_auto deployment ~src ~src_host:(Ids.host 1) ~dst
        ~dst_host:(Ids.host 2) ~bw:(mbps bw)
    with
    | Error e ->
        Fmt.pr "EER setup failed: %s@." e;
        exit 1
    | Ok eer ->
        Fmt.pr "EER %a over %d SegR(s):@.  %a@.@." Ids.pp_res_key eer.key
          (List.length eer.segr_keys) Path.pp eer.path;
        let delivered = ref 0 in
        for _ = 1 to packets do
          Deployment.advance deployment 0.001;
          match
            Deployment.send_data deployment ~src ~res_id:eer.key.res_id
              ~payload_len:1000
          with
          | Ok { delivered = true; _ } -> incr delivered
          | Ok { dropped_at = Some (a, r); _ } ->
              Fmt.pr "  drop at %a: %a@." Ids.pp_asn a Router.pp_drop_reason r
          | Ok _ -> ()
          | Error e -> Fmt.pr "  gateway: %a@." Gateway.pp_drop_reason e
        done;
        Fmt.pr "%d/%d packets delivered across %d border routers each.@." !delivered
          packets (Path.length eer.path);
        (* Exit telemetry (DESIGN.md §7): the source gateway's and the
           first transit router's drop accounting for this run. *)
        Fmt.pr "@.Gateway metrics (%a):@.%a@." Ids.pp_asn src Obs.pp_text
          (Obs.Registry.snapshot (Gateway.metrics (Deployment.gateway deployment src)));
        (match eer.path with
        | _ :: (second : Path.hop) :: _ ->
            Fmt.pr "@.Router metrics (%a):@.%a@." Ids.pp_asn second.asn Obs.pp_text
              (Obs.Registry.snapshot
                 (Router.metrics (Deployment.router deployment second.asn)))
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "reserve"
       ~doc:"Set up SegRs and an EER between two ASes, then send data over it.")
    Term.(
      const run $ isds_arg $ cores_arg $ leaves_arg $ seed_arg $ src_arg $ dst_arg
      $ bw_arg $ packets_arg)

(* ---- attack: §5 scenarios in one shot ---- *)

let factor_arg =
  Arg.(
    value & opt float 20.
    & info [ "overuse-factor" ] ~docv:"F" ~doc:"Overuse multiple for the rogue AS.")

let attack_cmd =
  let run factor =
    let module G = Topology_gen.Two_isd in
    let deployment = Deployment.create (Topology_gen.two_isd ()) in
    let db = Deployment.seg_db deployment in
    let up = List.hd (Segments.Db.up_segments db ~src:G.t) in
    (match
       Deployment.setup_segr deployment ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.)
     with
    | Ok _ -> ()
    | Error e -> failwith e);
    let route = List.hd (Deployment.lookup_eer_routes deployment ~src:G.t ~dst:G.y2) in
    let eer, version, sigmas =
      match
        Deployment.setup_eer_full deployment ~route ~src_host:(Ids.host 66)
          ~dst_host:(Ids.host 2) ~bw:(mbps 1.)
      with
      | Ok v -> v
      | Error e -> failwith e
    in
    let rogue = Gateway.create ~burst:1e9 ~clock:(Deployment.clock deployment) G.t in
    (match Gateway.register rogue ~eer ~version ~sigmas with
    | Ok () -> ()
    | Error e -> failwith e);
    let transit = Deployment.router deployment (List.nth eer.path 1).Path.asn in
    Fmt.pr "Rogue AS %a overuses its 1 Mbps EER %.0f-fold...@." Ids.pp_asn G.t factor;
    let n = int_of_float (factor *. 200.) in
    let forwarded = ref 0 and policed = ref 0 in
    for _ = 1 to n do
      Deployment.advance deployment (1. /. factor /. 200.);
      match Gateway.send rogue ~res_id:eer.key.res_id ~payload_len:600 with
      | Ok (pkt, _) -> (
          match
            Router.process_bytes transit ~raw:(Packet.to_bytes pkt) ~payload_len:600
          with
          | Ok _ -> incr forwarded
          | Error Router.Policed -> incr policed
          | Error _ -> ())
      | Error _ -> ()
    done;
    let st = Router.stats transit in
    Fmt.pr "Transit router: %d forwarded, %d policed, %d suspect flag(s), %d confirmation(s).@."
      !forwarded !policed st.suspects_flagged st.confirmed_overuse;
    if st.confirmed_overuse > 0 then
      Fmt.pr "Future reservations from %a are now denied at the transit AS.@."
        Ids.pp_asn G.t;
    (* Exit telemetry (DESIGN.md §7): the rogue gateway never drops (its
       bucket is sabotaged); the transit router's counters carry the
       policing story told above. *)
    Fmt.pr "@.Rogue gateway metrics:@.%a@." Obs.pp_text
      (Obs.Registry.snapshot (Gateway.metrics rogue));
    Fmt.pr "@.Transit router metrics:@.%a@." Obs.pp_text
      (Obs.Registry.snapshot (Router.metrics transit))
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run the reservation-overuse attack and watch policing.")
    Term.(const run $ factor_arg)

let () =
  let doc = "Drive a simulated Colibri deployment from the command line." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "colibri-demo" ~doc)
          [ topology_cmd; segments_cmd; reserve_cmd; attack_cmd ]))
