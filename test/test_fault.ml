(** Deterministic chaos: the fault injector reproduces identical event
    traces from the same seed, link flaps and crash windows honor
    their schedules, and the control net's delivery accounting closes
    — sent = delivered + lost — under loss, broken routes, and full
    fault schedules replayed twice to byte-identical Obs snapshots. *)

open Colibri_types
open Colibri_topology
open Colibri

let gbps = Bandwidth.of_gbps
let a1 = Ids.asn ~isd:1 ~num:1
let a2 = Ids.asn ~isd:1 ~num:2
let a3 = Ids.asn ~isd:1 ~num:3

(* ---------------- Determinism ---------------- *)

let same_seed_same_trace () =
  let run () =
    let f = Net.Fault.create ~seed:77 ~record_trace:true () in
    Net.Fault.set_default f (Net.Fault.plan ~loss:0.3 ~jitter:0.01 ~reorder:0.2 ());
    let verdicts = ref [] in
    for i = 1 to 200 do
      let now = float_of_int i *. 0.1 in
      let v = Net.Fault.judge f ~src:a1 ~dst:a2 ~now in
      verdicts := v :: !verdicts
    done;
    (!verdicts, Net.Fault.trace f)
  in
  let v1, t1 = run () and v2, t2 = run () in
  Alcotest.(check bool) "same verdict stream" true (v1 = v2);
  Alcotest.(check bool) "same trace" true (t1 = t2);
  Alcotest.(check int) "trace covers every decision" 200 (List.length t1)

let different_seed_different_trace () =
  let run seed =
    let f = Net.Fault.create ~seed () in
    Net.Fault.set_default f (Net.Fault.plan ~loss:0.5 ());
    List.init 64 (fun i ->
        Net.Fault.judge f ~src:a1 ~dst:a2 ~now:(float_of_int i))
  in
  Alcotest.(check bool) "seeds disagree somewhere" false (run 1 = run 2)

(* ---------------- Plans ---------------- *)

let total_loss_drops_everything () =
  let f = Net.Fault.create () in
  Net.Fault.set_link f ~src:a1 ~dst:a2 (Net.Fault.plan ~loss:1.0 ());
  for i = 0 to 49 do
    match Net.Fault.judge f ~src:a1 ~dst:a2 ~now:(float_of_int i) with
    | Net.Fault.Drop Net.Fault.Loss -> ()
    | _ -> Alcotest.fail "loss=1 must drop"
  done;
  (* The override is per-directed-link: the reverse stays healthy. *)
  match Net.Fault.judge f ~src:a2 ~dst:a1 ~now:0. with
  | Net.Fault.Deliver { extra_delay } ->
      Alcotest.(check (float 1e-9)) "healthy reverse, no jitter" 0. extra_delay
  | Net.Fault.Drop _ -> Alcotest.fail "reverse direction must deliver"

let flap_window_honored () =
  let f = Net.Fault.create () in
  Net.Fault.flap_link f ~src:a1 ~dst:a2 ~down_at:10. ~up_at:20.;
  let judge now = Net.Fault.judge f ~src:a1 ~dst:a2 ~now in
  (match judge 9.99 with
  | Net.Fault.Deliver _ -> ()
  | Net.Fault.Drop _ -> Alcotest.fail "before flap: deliver");
  (match judge 10. with
  | Net.Fault.Drop Net.Fault.Link_down -> ()
  | _ -> Alcotest.fail "inside flap: link-down");
  (match judge 19.99 with
  | Net.Fault.Drop Net.Fault.Link_down -> ()
  | _ -> Alcotest.fail "end of flap: still down");
  match judge 20. with
  | Net.Fault.Deliver _ -> ()
  | Net.Fault.Drop _ -> Alcotest.fail "after flap: deliver"

let crash_window_honored () =
  let f = Net.Fault.create () in
  Net.Fault.crash_server f ~asn:a2 ~at:5. ~duration:3.;
  Net.Fault.crash_server f ~asn:a2 ~at:100. ~duration:1.;
  let up now = Net.Fault.server_up f ~asn:a2 ~now in
  Alcotest.(check bool) "before crash" true (up 4.9);
  Alcotest.(check bool) "during crash" false (up 5.);
  Alcotest.(check bool) "during crash (late)" false (up 7.9);
  Alcotest.(check bool) "after restart" true (up 8.);
  Alcotest.(check bool) "second window" false (up 100.5);
  Alcotest.(check bool) "other AS unaffected" true (Net.Fault.server_up f ~asn:a1 ~now:6.);
  Alcotest.(check int) "both windows recorded" 2
    (List.length (Net.Fault.server_downtimes f a2))

let plan_validation () =
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  raises "loss>1" (fun () -> Net.Fault.plan ~loss:1.5 ());
  raises "loss<0" (fun () -> Net.Fault.plan ~loss:(-0.1) ());
  raises "negative jitter" (fun () -> Net.Fault.plan ~jitter:(-1.) ());
  raises "reorder>1" (fun () -> Net.Fault.plan ~reorder:2. ());
  raises "flap inverted" (fun () ->
      let f = Net.Fault.create () in
      Net.Fault.flap_link f ~src:a1 ~dst:a2 ~down_at:5. ~up_at:5.);
  raises "crash duration" (fun () ->
      let f = Net.Fault.create () in
      Net.Fault.crash_server f ~asn:a1 ~at:0. ~duration:0.)

(* ---------------- Delivery accounting ---------------- *)

let rig ?faults () =
  let topo = Topology_gen.linear ~n:3 ~capacity:(gbps 1.) in
  let engine = Net.Engine.create () in
  let cn = Control_net.create ?faults ~engine topo in
  (engine, cn)

let counts_close cn =
  Alcotest.(check int)
    "sent = delivered + lost"
    (Control_net.sent_count cn)
    (Control_net.delivered_count cn + Control_net.lost_count cn)

let broken_route_counts_lost () =
  let engine, cn = rig () in
  let delivered = ref 0 in
  (* a1 → a3 is not a topology edge: the message dies on hop 1. *)
  Control_net.send_along cn ~route:[ a1; a3 ]
    ~cls:Net.Traffic_class.Colibri_control ~bytes:100
    ~deliver:(fun () -> incr delivered);
  Net.Engine.run engine ~until:1.;
  Alcotest.(check int) "not delivered" 0 !delivered;
  Alcotest.(check int) "one sent" 1 (Control_net.sent_count cn);
  Alcotest.(check int) "one lost" 1 (Control_net.lost_count cn);
  counts_close cn

let fault_drops_count_lost () =
  let faults = Net.Fault.create ~seed:3 () in
  Net.Fault.set_default faults (Net.Fault.plan ~loss:0.4 ());
  let engine, cn = rig ~faults () in
  let delivered = ref 0 in
  for _ = 1 to 200 do
    Control_net.send_along cn ~route:[ a1; a2; a3 ]
      ~cls:Net.Traffic_class.Colibri_control ~bytes:200
      ~deliver:(fun () -> incr delivered)
  done;
  Net.Engine.run engine ~until:30.;
  Alcotest.(check int) "deliver callback count matches metric" !delivered
    (Control_net.delivered_count cn);
  Alcotest.(check bool) "some losses at 40% per hop" true
    (Control_net.lost_count cn > 0);
  Alcotest.(check bool) "some deliveries" true (!delivered > 0);
  counts_close cn

let flapped_link_loses_all () =
  let faults = Net.Fault.create () in
  Net.Fault.flap_link faults ~src:a1 ~dst:a2 ~down_at:0. ~up_at:100.;
  let engine, cn = rig ~faults () in
  for _ = 1 to 10 do
    Control_net.send_along cn ~route:[ a1; a2 ]
      ~cls:Net.Traffic_class.Colibri_control ~bytes:100 ~deliver:ignore
  done;
  Net.Engine.run engine ~until:1.;
  Alcotest.(check int) "all lost to the flap" 10 (Control_net.lost_count cn);
  counts_close cn

let jitter_delays_delivery () =
  let faults = Net.Fault.create ~seed:11 () in
  Net.Fault.set_default faults (Net.Fault.plan ~jitter:0.2 ());
  let engine, cn = rig ~faults () in
  let at = ref nan in
  Control_net.send_along cn ~route:[ a1; a2 ]
    ~cls:Net.Traffic_class.Colibri_control ~bytes:100
    ~deliver:(fun () -> at := Net.Engine.now engine);
  Net.Engine.run engine ~until:2.;
  Alcotest.(check bool) "delivered" true (Float.is_finite !at);
  (* Base path latency is ~5 ms propagation + serialization; jitter can
     add up to 200 ms on top. Either way it must exceed the base. *)
  Alcotest.(check bool) "latency includes propagation" true (!at >= 0.005);
  counts_close cn

(* ---------------- Replay: byte-identical snapshots ---------------- *)

(* A full chaotic scenario — loss + flaps against retried setups —
   replayed from scratch with the same seeds must produce a
   byte-identical metrics snapshot: same losses, same retransmissions,
   same outcomes. *)
let chaos_replay_identical_snapshots () =
  let run () =
    let topo = Topology_gen.linear ~n:4 ~capacity:(gbps 10.) in
    let d = Deployment.create topo in
    let faults = Net.Fault.create ~seed:42 () in
    Net.Fault.set_default faults (Net.Fault.plan ~loss:0.15 ~jitter:0.002 ());
    Net.Fault.flap_link faults
      ~src:(Ids.asn ~isd:1 ~num:2)
      ~dst:(Ids.asn ~isd:1 ~num:3)
      ~down_at:0.3 ~up_at:0.6;
    Deployment.attach_network ~faults ~retry_seed:7 d;
    let path = Topology_gen.linear_path ~n:4 in
    let results = ref [] in
    for _ = 1 to 8 do
      match
        Deployment.setup_segr_sync d ~path ~kind:Reservation.Core
          ~max_bw:(gbps 0.1) ~min_bw:(Bandwidth.of_mbps 1.)
      with
      | Ok segr -> results := Fmt.str "ok:%d" segr.key.res_id :: !results
      | Error e -> results := ("err:" ^ e) :: !results
    done;
    (!results, Obs.to_json (Obs.Registry.snapshot (Deployment.network_metrics d)))
  in
  let r1, s1 = run () and r2, s2 = run () in
  Alcotest.(check (list string)) "same outcome sequence" r1 r2;
  Alcotest.(check string) "byte-identical Obs snapshot" s1 s2

let suite =
  [
    Alcotest.test_case "same seed, same trace" `Quick same_seed_same_trace;
    Alcotest.test_case "different seed, different trace" `Quick
      different_seed_different_trace;
    Alcotest.test_case "loss=1 drops everything (directed)" `Quick
      total_loss_drops_everything;
    Alcotest.test_case "flap window honored" `Quick flap_window_honored;
    Alcotest.test_case "crash window honored" `Quick crash_window_honored;
    Alcotest.test_case "plan validation" `Quick plan_validation;
    Alcotest.test_case "broken route counts as lost" `Quick broken_route_counts_lost;
    Alcotest.test_case "fault drops count as lost" `Quick fault_drops_count_lost;
    Alcotest.test_case "flapped link loses all" `Quick flapped_link_loses_all;
    Alcotest.test_case "jitter delays delivery" `Quick jitter_delays_delivery;
    Alcotest.test_case "chaos replay: byte-identical snapshots" `Quick
      chaos_replay_identical_snapshots;
  ]
