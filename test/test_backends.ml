(** Conformance suite for the pluggable admission backends
    (DESIGN.md §12): every factory in {!Backends.All.all} must satisfy
    the interface laws of {!Backends.Backend_intf} — grant agreement,
    idempotent re-admit, idempotent teardown, audit cleanliness after
    arbitrary op sequences, and corruption detection — plus
    flyover-specific slice economics and the backend-labeled Obs
    contract. *)

open Colibri_types
open Colibri
module Backend = Backends.Backend_intf

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let asn n = Ids.asn ~isd:1 ~num:n
let key src id : Ids.res_key = { src_as = asn src; res_id = id }
let capacity _ = gbps 10.
let instance (f : Backend.factory) = f.make ~capacity ()

let seg_req ?(version = 1) ?(ingress = 1) ?(egress = 2) ?(exp_time = 300.) ~src
    ~id ~demand () : Backend.seg_request =
  {
    key = key src id;
    version;
    src = asn src;
    ingress;
    egress;
    demand;
    min_bw = Bandwidth.of_kbps 1.;
    exp_time;
  }

let eer_req ?(version = 1) ?(ingress = 1) ?(egress = 2) ?(exp_time = 16.) ~src
    ~id ~demand () : Backend.eer_request =
  {
    key = key src id;
    version;
    segrs = [ (key (100 + ingress) 1, gbps 1.) ];
    via_up = None;
    ingress;
    egress;
    demand;
    renewal = false;
    exp_time;
  }

let bw = Alcotest.testable Bandwidth.pp Bandwidth.equal

let granted_exn what = function
  | Backend.Granted g -> g
  | Backend.Denied _ -> Alcotest.failf "%s: denied" what

(* Law 1: after Granted bw, granted_of returns Some bw until removal. *)
let grant_agreement (f : Backend.factory) () =
  let t = instance f in
  let g = granted_exn f.label (Backend.admit_seg t ~req:(seg_req ~src:1 ~id:1 ~demand:(mbps 200.) ()) ~now:0.) in
  Alcotest.(check (option bw)) "seg granted_of agrees" (Some g)
    (Backend.seg_granted_of t ~key:(key 1 1) ~version:1);
  let g' = granted_exn f.label (Backend.admit_eer t ~req:(eer_req ~src:2 ~id:2 ~demand:(mbps 5.) ()) ~now:0.) in
  Alcotest.(check (option bw)) "eer granted_of agrees" (Some g')
    (Backend.eer_granted_of t ~key:(key 2 2) ~version:1);
  Alcotest.(check (option bw)) "unknown version is None" None
    (Backend.seg_granted_of t ~key:(key 1 1) ~version:9)

(* Law 2: re-admitting a live (key, version) returns the recorded
   grant and changes no allocation — the retransmission shortcut. *)
let idempotent_readmit (f : Backend.factory) () =
  let t = instance f in
  let req = seg_req ~src:1 ~id:1 ~demand:(mbps 200.) () in
  let g1 = granted_exn f.label (Backend.admit_seg t ~req ~now:0.) in
  let alloc1 = Backend.seg_allocated_on t ~egress:2 in
  let g2 = granted_exn f.label (Backend.admit_seg t ~req ~now:0.) in
  Alcotest.(check bw) "retransmit returns the recorded grant" g1 g2;
  Alcotest.(check bw) "retransmit books nothing" alloc1
    (Backend.seg_allocated_on t ~egress:2);
  Alcotest.(check int) "both calls counted" 2 (Backend.admissions t);
  Alcotest.(check int) "one reservation" 1 (Backend.seg_count t)

(* Law 3: removal is idempotent, never raises on unknown keys, and
   returns the state so the same demand admits identically again. *)
let idempotent_teardown (f : Backend.factory) () =
  let t = instance f in
  Backend.remove_seg t ~key:(key 9 9) ~version:1 ~now:0.;
  Backend.remove_eer t ~key:(key 9 9) ~version:1 ~now:0.;
  let req = seg_req ~src:1 ~id:1 ~demand:(mbps 200.) () in
  let g1 = granted_exn f.label (Backend.admit_seg t ~req ~now:0.) in
  let base = Backend.seg_allocated_on t ~egress:2 in
  Backend.remove_seg t ~key:(key 1 1) ~version:1 ~now:0.;
  Backend.remove_seg t ~key:(key 1 1) ~version:1 ~now:0.;
  Alcotest.(check (option bw)) "removed" None
    (Backend.seg_granted_of t ~key:(key 1 1) ~version:1);
  Alcotest.(check bw) "capacity released" Bandwidth.zero
    Bandwidth.(min base (Backend.seg_allocated_on t ~egress:2));
  let g2 = granted_exn f.label (Backend.admit_seg t ~req ~now:0.) in
  Alcotest.(check bw) "same demand admits identically after removal" g1 g2;
  Alcotest.(check string) "audit clean" "" (String.concat "; " (Backend.audit t))

(* Backward-pass commit (chained disciplines only): shrink sticks,
   raising is refused. *)
let commit_shrinks (f : Backend.factory) () =
  let t = instance f in
  if Backend.commit_required t then begin
    let g = granted_exn f.label (Backend.admit_seg t ~req:(seg_req ~src:1 ~id:1 ~demand:(mbps 200.) ()) ~now:0.) in
    let half = Bandwidth.scale g 0.5 in
    (match Backend.commit_seg t ~key:(key 1 1) ~version:1 ~granted:half with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: shrink refused: %s" f.label e);
    Alcotest.(check (option bw)) "commit shrinks the grant" (Some half)
      (Backend.seg_granted_of t ~key:(key 1 1) ~version:1);
    (match Backend.commit_seg t ~key:(key 1 1) ~version:1 ~granted:(Bandwidth.scale g 2.) with
    | Ok () -> Alcotest.failf "%s: raising a grant must be refused" f.label
    | Error _ -> ());
    Alcotest.(check string) "audit clean" "" (String.concat "; " (Backend.audit t))
  end

let corrupt_detected (f : Backend.factory) () =
  let t = instance f in
  ignore (Backend.admit_seg t ~req:(seg_req ~src:1 ~id:1 ~demand:(mbps 100.) ()) ~now:0.);
  Alcotest.(check string) "clean before" "" (String.concat "; " (Backend.audit t));
  Backend.corrupt_for_test t;
  Alcotest.(check bool) "audit detects corruption" false (Backend.audit t = [])

(* Law 4, property-checked: after ANY random op sequence the audit is
   clean and granted_of agrees with the last decision per key. *)
type op =
  | Admit_seg of int * int * int (* src, id, demand Mbps *)
  | Remove_seg of int * int
  | Admit_eer of int * int * int
  | Remove_eer of int * int
  | Advance

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map3 (fun s i d -> Admit_seg (s, i, d)) (1 -- 5) (1 -- 8) (1 -- 400);
        map2 (fun s i -> Remove_seg (s, i)) (1 -- 5) (1 -- 8);
        map3 (fun s i d -> Admit_eer (s, i, d)) (6 -- 9) (1 -- 8) (1 -- 50);
        map2 (fun s i -> Remove_eer (s, i)) (6 -- 9) (1 -- 8);
        return Advance;
      ])

let prop_audit_clean (f : Backend.factory) =
  QCheck2.Test.make
    ~name:(Printf.sprintf "%s: audit clean after random op sequences" f.label)
    ~count:60
    QCheck2.Gen.(list_size (1 -- 60) op_gen)
    (fun ops ->
      let t = instance f in
      let now = ref 0. in
      List.iter
        (fun op ->
          match op with
          | Admit_seg (s, i, d) ->
              ignore
                (Backend.admit_seg t
                   ~req:(seg_req ~src:s ~id:i ~demand:(mbps (float_of_int d))
                           ~exp_time:(!now +. 40.) ())
                   ~now:!now)
          | Remove_seg (s, i) -> Backend.remove_seg t ~key:(key s i) ~version:1 ~now:!now
          | Admit_eer (s, i, d) ->
              ignore
                (Backend.admit_eer t
                   ~req:(eer_req ~src:s ~id:i ~demand:(mbps (float_of_int d))
                           ~exp_time:(!now +. 16.) ())
                   ~now:!now)
          | Remove_eer (s, i) -> Backend.remove_eer t ~key:(key s i) ~version:1 ~now:!now
          | Advance -> now := !now +. 3.)
        ops;
      match Backend.audit t with
      | [] -> true
      | errs -> QCheck2.Test.fail_reportf "audit: %s" (String.concat "; " errs))

(* ---------- Flyover slice economics ---------- *)

let flyover () = instance Backends.All.flyover

(* Slice-index clamp (DESIGN.md §13): a wire-supplied expiry must not
   turn into an unbounded [int_of_float] — NaN would be 0 but a huge
   float is undefined behavior territory for array-sized indices. *)
let flyover_clamp_slice () =
  let m = Backends.Flyover.max_slice in
  Alcotest.(check int) "identity in band" 42 (Backends.Flyover.clamp_slice 42.3);
  Alcotest.(check int) "zero" 0 (Backends.Flyover.clamp_slice 0.);
  Alcotest.(check int) "negative floors" 0 (Backends.Flyover.clamp_slice (-7.));
  Alcotest.(check int) "nan is zero" 0 (Backends.Flyover.clamp_slice Float.nan);
  Alcotest.(check int) "inf caps" m (Backends.Flyover.clamp_slice Float.infinity);
  Alcotest.(check int) "max_int-adjacent caps" m
    (Backends.Flyover.clamp_slice (float_of_int max_int));
  Alcotest.(check int) "just past the cap" m
    (Backends.Flyover.clamp_slice (float_of_int m +. 2.))

let flyover_purchase_amortizes () =
  let t = flyover () in
  Alcotest.(check int) "no traffic yet" 0 (Backend.control_messages t);
  ignore (Backend.admit_seg t ~req:(seg_req ~src:1 ~id:1 ~demand:(mbps 150.) ~exp_time:40. ()) ~now:0.);
  Alcotest.(check int) "first admission purchases (2 msgs)" 2 (Backend.control_messages t);
  Backend.remove_seg t ~key:(key 1 1) ~version:1 ~now:0.;
  (* The purchase (ceil(150/100) = 200 Mbps of quanta) outlives the
     reservation: the same source re-books inside its holdings for
     free. *)
  ignore (Backend.admit_seg t ~req:(seg_req ~src:1 ~id:2 ~demand:(mbps 100.) ~exp_time:40. ()) ~now:0.);
  Alcotest.(check int) "re-booking held quanta is free" 2 (Backend.control_messages t);
  (* A different source holds nothing and must purchase. *)
  ignore (Backend.admit_seg t ~req:(seg_req ~src:2 ~id:3 ~demand:(mbps 100.) ~exp_time:40. ()) ~now:0.);
  Alcotest.(check int) "a new source purchases" 4 (Backend.control_messages t);
  Alcotest.(check string) "audit clean" "" (String.concat "; " (Backend.audit t))

let flyover_slices_retire () =
  let t = flyover () in
  ignore (Backend.admit_seg t ~req:(seg_req ~src:1 ~id:1 ~demand:(mbps 100.) ~exp_time:4. ()) ~now:0.);
  (* Jump past both the reservation expiry and its slices' end. *)
  ignore (Backend.admit_seg t ~req:(seg_req ~src:2 ~id:2 ~demand:(mbps 100.) ~exp_time:40. ()) ~now:20.);
  Alcotest.(check (option bw)) "expired reservation gone" None
    (Backend.seg_granted_of t ~key:(key 1 1) ~version:1);
  Alcotest.(check int) "only the live reservation remains" 1 (Backend.seg_count t);
  Alcotest.(check string) "audit clean after retirement" ""
    (String.concat "; " (Backend.audit t))

let flyover_horizon_clamps () =
  let t = flyover () in
  (* An effectively-infinite expiry must not materialize unbounded
     slice state: the span is clamped to the purchase horizon. *)
  ignore (Backend.admit_seg t ~req:(seg_req ~src:1 ~id:1 ~demand:(mbps 100.) ~exp_time:1e9 ()) ~now:0.);
  Alcotest.(check string) "audit clean under horizon clamp" ""
    (String.concat "; " (Backend.audit t))

let flyover_denies_oversale () =
  let t = flyover () in
  (* 10 Gbps × 0.80 share = 8 Gbps sellable per (egress, slice). *)
  ignore (Backend.admit_seg t ~req:(seg_req ~src:1 ~id:1 ~demand:(gbps 8.) ~exp_time:40. ()) ~now:0.);
  (match Backend.admit_seg t ~req:(seg_req ~src:2 ~id:2 ~demand:(gbps 1.) ~exp_time:40. ()) ~now:0. with
  | Backend.Denied _ -> ()
  | Backend.Granted g ->
      Alcotest.failf "sold %a beyond the ledger bound" Bandwidth.pp g);
  Alcotest.(check string) "audit clean" "" (String.concat "; " (Backend.audit t))

(* ---------- Reference-backend removal asymmetry regression ----------
   Seg.remove and Eer.remove_version must both be total no-ops on
   unknown keys AND unknown versions of known keys. *)

let reference_remove_is_total () =
  let seg = Admission.Seg.create ~capacity () in
  Admission.Seg.remove seg ~key:(key 7 7) ~version:1;
  (match
     Admission.Seg.admit seg ~key:(key 1 1) ~version:1 ~src:(asn 1) ~ingress:1
       ~egress:2 ~demand:(mbps 100.) ~min_bw:(Bandwidth.of_kbps 1.)
       ~exp_time:300. ~now:0.
   with
  | Admission.Granted _ -> ()
  | Admission.Denied _ -> Alcotest.fail "trivial SegR denied");
  Admission.Seg.remove seg ~key:(key 1 1) ~version:2 (* unknown version *);
  Alcotest.(check bool) "known version survives a bogus-version remove" true
    (Admission.Seg.granted_of seg ~key:(key 1 1) ~version:1 <> None);
  let eer = Admission.Eer.create () in
  Admission.Eer.remove_version eer ~key:(key 7 7) ~version:1 ~now:0.;
  (match
     Admission.Eer.admit eer ~key:(key 1 1) ~version:1
       ~segrs:[ (key 101 1, gbps 1.) ] ~via_up:None ~demand:(mbps 5.)
       ~exp_time:16. ~now:0.
   with
  | Admission.Granted _ -> ()
  | Admission.Denied _ -> Alcotest.fail "trivial EER denied");
  Admission.Eer.remove_version eer ~key:(key 1 1) ~version:2 ~now:0.;
  Alcotest.(check bool) "known version survives a bogus-version remove" true
    (Admission.Eer.granted_of eer ~key:(key 1 1) ~version:1 <> None);
  Alcotest.(check string) "both audits clean" ""
    (String.concat "; " (Admission.Seg.audit seg @ Admission.Eer.audit eer))

(* ---------- Backend-labeled Obs families stay allocation-free ------ *)

let labeled_counter_zero_alloc () =
  let reg = Obs.Registry.create () in
  let fam =
    Obs.Asn_counters.create ~extra:[ ("backend", "ntube") ] reg
      ~name:"cserv_denied_total" ~label:"src_as"
  in
  let c = Obs.Asn_counters.get fam (asn 1) in
  Obs.Counter.incr c;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.Counter.incr c
  done;
  let after = Gc.minor_words () in
  Alcotest.(check (float 0.))
    "10k incrs of a backend-labeled member allocate 0 minor words" 0.
    (Float.max 0. (after -. before -. 2.))

let backend_label_in_snapshot () =
  let t = instance Backends.All.ntube in
  ignore (Backend.admit_seg t ~req:(seg_req ~src:1 ~id:1 ~demand:(mbps 100.) ()) ~now:0.);
  let snap = Backend.obs_snapshot t in
  Alcotest.(check bool) "snapshot carries the backend label" true
    (List.exists
       (fun (name, _) ->
         name = Obs.labeled "backend_seg_reservations" [ ("backend", "ntube") ])
       snap)

let per_factory name f = Alcotest.test_case (Printf.sprintf "%s: %s" f.Backend.label name) `Quick

let suite =
  List.concat_map
    (fun (f : Backend.factory) ->
      [
        per_factory "grant agreement" f (grant_agreement f);
        per_factory "idempotent re-admit" f (idempotent_readmit f);
        per_factory "idempotent teardown" f (idempotent_teardown f);
        per_factory "commit shrinks, never raises" f (commit_shrinks f);
        per_factory "corrupt_for_test is detected" f (corrupt_detected f);
        QCheck_alcotest.to_alcotest (prop_audit_clean f);
      ])
    Backends.All.all
  @ [
      Alcotest.test_case "flyover: purchases amortize over bookings" `Quick
        flyover_purchase_amortizes;
      Alcotest.test_case "flyover: slices retire cleanly" `Quick flyover_slices_retire;
      Alcotest.test_case "flyover: horizon clamps unbounded expiry" `Quick
        flyover_horizon_clamps;
      Alcotest.test_case "flyover: slice-index clamp saturates" `Quick
        flyover_clamp_slice;
      Alcotest.test_case "flyover: ledger bound denies oversale" `Quick
        flyover_denies_oversale;
      Alcotest.test_case "reference: remove is total on both classes" `Quick
        reference_remove_is_total;
      Alcotest.test_case "obs: backend-labeled counter incr is 0-alloc" `Quick
        labeled_counter_zero_alloc;
      Alcotest.test_case "obs: snapshot carries the backend label" `Quick
        backend_label_in_snapshot;
    ]
