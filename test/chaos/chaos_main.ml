(** Chaos acceptance scenarios, run under @chaos with fixed seeds.

    Three deterministic scenarios per seed, each asserting the
    acceptance criteria of the chaos-tested control plane:

    - {b loss}: with 5% per-link loss on the setup path, ≥ 99% of SegR
      setups eventually succeed through retries;
    - {b crash}: a CServ crash/restart in the middle of renewal churn
      leaves zero leaked admission state (every AS audits clean, no
      in-flight requests, message accounting closes);
    - {b replay}: the same seed replayed from scratch produces a
      byte-identical metrics snapshot.

    Usage: [chaos_main SEED]. Exits non-zero on the first violated
    invariant. *)

open Colibri_types
open Colibri_topology
open Colibri

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

let fail fmt = Fmt.kstr (fun s -> prerr_endline ("CHAOS FAIL: " ^ s); exit 1) fmt

let check_accounting what d =
  let cn = Deployment.control_net d in
  let sent = Control_net.sent_count cn
  and delivered = Control_net.delivered_count cn
  and lost = Control_net.lost_count cn in
  if sent <> delivered + lost then
    fail "%s: %d sent <> %d delivered + %d lost" what sent delivered lost

let check_audits what d =
  match Deployment.audit_all d with
  | [] -> ()
  | errs ->
      List.iter (fun e -> Printf.eprintf "  audit: %s\n%!" e) errs;
      fail "%s: %d admission audit errors (leaked state)" what (List.length errs)

let check_drained what d =
  let p = Retry.pending (Deployment.retrier d) in
  if p <> 0 then fail "%s: %d requests still pending after drain" what p

(* ---------------- Scenario 1: 5% loss, ≥99% success --------------- *)

let scenario_loss seed =
  let topo = Topology_gen.linear ~n:5 ~capacity:(gbps 100.) in
  let d = Deployment.create topo in
  let faults = Net.Fault.create ~seed () in
  Net.Fault.set_default faults (Net.Fault.plan ~loss:0.05 ~jitter:0.001 ());
  Deployment.attach_network ~faults ~retry_seed:(seed * 7) d;
  let path = Topology_gen.linear_path ~n:5 in
  let total = 100 in
  let ok = ref 0 in
  for _ = 1 to total do
    match
      Deployment.setup_segr_sync d ~path ~kind:Reservation.Core
        ~max_bw:(mbps 100.) ~min_bw:(mbps 1.)
    with
    | Ok _ -> incr ok
    | Error _ -> ()
  done;
  Deployment.advance d 300.;
  if !ok * 100 < 99 * total then
    fail "loss: only %d/%d setups succeeded under 5%% loss" !ok total;
  check_accounting "loss" d;
  check_audits "loss" d;
  check_drained "loss" d;
  Printf.printf "  loss: %d/%d setups succeeded under 5%% per-link loss\n%!" !ok
    total

(* ---------------- Scenario 2: crash mid-renewal, zero leaks ------- *)

let scenario_crash seed =
  let topo = Topology_gen.linear ~n:4 ~capacity:(gbps 100.) in
  let d = Deployment.create topo in
  let faults = Net.Fault.create ~seed () in
  Net.Fault.set_default faults (Net.Fault.plan ~loss:0.02 ~jitter:0.001 ());
  (* The second AS's CServ crashes right as the renewal cycle fires
     (SegR renews at 70% of its 300 s lifetime, i.e. t ≈ 210 s), and
     again around the next cycle. *)
  let mid = Ids.asn ~isd:1 ~num:2 in
  Net.Fault.crash_server faults ~asn:mid ~at:205. ~duration:30.;
  Net.Fault.crash_server faults ~asn:mid ~at:500. ~duration:30.;
  Deployment.attach_network ~faults ~retry_seed:(seed * 11) d;
  let path = Topology_gen.linear_path ~n:4 in
  let segr =
    match
      Deployment.setup_segr_sync d ~path ~kind:Reservation.Core ~max_bw:(gbps 1.)
        ~min_bw:(mbps 1.)
    with
    | Ok s -> s
    | Error e -> fail "crash: initial setup failed: %s" e
  in
  let m =
    match
      Deployment.auto_renew_segr d ~key:segr.key ~max_bw:(gbps 1.) ~min_bw:(mbps 1.)
    with
    | Ok m -> m
    | Error e -> fail "crash: auto_renew_segr: %s" e
  in
  (* Also churn EERs over the SegR throughout. *)
  let route : Deployment.eer_route = { path; segr_keys = [ segr.key ] } in
  let eer =
    match
      Deployment.setup_eer_sync d ~route ~src_host:(Ids.host 1)
        ~dst_host:(Ids.host 2) ~bw:(mbps 50.)
    with
    | Ok e -> e
    | Error e -> fail "crash: initial EER failed: %s" e
  in
  let me =
    match
      Deployment.auto_renew_eer d ~key:eer.key ~route ~src_host:(Ids.host 1)
        ~dst_host:(Ids.host 2) ~bw:(mbps 50.)
    with
    | Ok m -> m
    | Error e -> fail "crash: auto_renew_eer: %s" e
  in
  Deployment.advance d 1_000.;
  (* While renewal is still running the managed SegR must be alive:
     either renewed in place or recovered under a fresh key after a
     lapse. (After stop_renewal it expires by design.) *)
  let key = Deployment.managed_key m in
  (match Cserv.own_segr (Deployment.cserv d key.src_as) key with
  | Some s ->
      let bw = Reservation.segr_bw s ~now:(Deployment.now d) in
      if not (Bandwidth.is_positive bw) then
        fail "crash: managed SegR present but expired"
  | None -> fail "crash: managed SegR vanished");
  Deployment.stop_renewal m;
  Deployment.stop_renewal me;
  Deployment.advance d 300.;
  check_accounting "crash" d;
  check_audits "crash" d;
  check_drained "crash" d;
  Printf.printf "  crash: renewal survived two mid-renewal CServ outages, 0 leaks\n%!"

(* ---------------- Scenario 3: replay determinism ------------------ *)

let chaos_run seed =
  let topo = Topology_gen.linear ~n:4 ~capacity:(gbps 10.) in
  let d = Deployment.create topo in
  let faults = Net.Fault.create ~seed () in
  Net.Fault.set_default faults (Net.Fault.plan ~loss:0.15 ~jitter:0.003 ~reorder:0.1 ());
  Net.Fault.flap_link faults
    ~src:(Ids.asn ~isd:1 ~num:2)
    ~dst:(Ids.asn ~isd:1 ~num:3)
    ~down_at:1. ~up_at:3.;
  Net.Fault.crash_server faults ~asn:(Ids.asn ~isd:1 ~num:3) ~at:6. ~duration:2.;
  Deployment.attach_network ~faults ~retry_seed:(seed + 3) d;
  let path = Topology_gen.linear_path ~n:4 in
  let outcomes = ref [] in
  for i = 1 to 20 do
    (match
       Deployment.setup_segr_sync d ~path ~kind:Reservation.Core ~max_bw:(mbps 50.)
         ~min_bw:(mbps 1.)
     with
    | Ok s -> outcomes := Fmt.str "%d:ok:%d" i s.key.res_id :: !outcomes
    | Error e -> outcomes := Fmt.str "%d:err:%s" i e :: !outcomes);
    Deployment.advance d 0.5
  done;
  Deployment.advance d 120.;
  ( String.concat "|" (List.rev !outcomes),
    Obs.to_json (Obs.Registry.snapshot (Deployment.network_metrics d)) )

let scenario_replay seed =
  let o1, s1 = chaos_run seed in
  let o2, s2 = chaos_run seed in
  if o1 <> o2 then fail "replay: outcome sequences diverged";
  if s1 <> s2 then fail "replay: metrics snapshots not byte-identical";
  Printf.printf "  replay: byte-identical outcome trace and Obs snapshot\n%!"

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1
  in
  Printf.printf "chaos seed %d\n%!" seed;
  scenario_loss seed;
  scenario_crash seed;
  scenario_replay seed;
  Printf.printf "chaos seed %d: all scenarios passed\n%!" seed
