(* Deepscan fixture: module-level mutable state touched by workers in
   a [*shard*] module (d4).  [quiet_hits] opts out on its binding. *)

let hits : (int, int) Hashtbl.t = Hashtbl.create 16

let quiet_hits : (int, int) Hashtbl.t = Hashtbl.create 16 [@@colibri.allow "d4"]

let worker (k : int) : int =
  match Hashtbl.find_opt hits k with Some v -> v | None -> 0

let worker_quiet (k : int) : int =
  match Hashtbl.find_opt quiet_hits k with Some v -> v | None -> 0
