(* Deepscan fixture: hot roots whose only allocations happen inside a
   helper in another module (D1_alloc_helper). *)

(* hot-path *)
let forward (n : int) : bytes = D1_alloc_helper.alloc_payload n

(* hot-path *)
let forward_quiet (n : int) : bytes = D1_alloc_helper.alloc_quiet n
