(* Deepscan fixture: allocating helpers that carry no hot-path marker
   of their own.  The token rule R7 only sees allocation tokens near a
   marker in the same file, so the hot call from D1_router is invisible
   to it — only the interprocedural closure (d1) reaches this far. *)

let alloc_payload (n : int) : bytes = Bytes.create n

let alloc_quiet (n : int) : bytes = (Bytes.create n [@colibri.allow "d1"])
