(* Deepscan fixture: exceptions escaping the hot path (d2), both
   directly and through a local helper. *)

(* hot-path *)
let first (l : int list) : int = List.hd l

(* The helper sits deliberately far from any marker: only the closure
   from [via_helper] reaches it. *)
let pick (o : int option) : int = Option.get o

(* hot-path *)
let via_helper (o : int option) : int = pick o

(* hot-path *)
let first_quiet (l : int list) : int = (List.hd l [@colibri.allow "d2"])
