(* Deepscan fixture: secret-derived digests reaching a branch (d5).
   [safe] goes through the constant-time comparator and stays clean. *)

let leaky (k : Crypto.Cmac.key) (msg : bytes) (stored : bytes) : bool =
  let tag = Crypto.Cmac.digest k msg in
  if Bytes.equal tag stored then true else false

let safe (k : Crypto.Cmac.key) (msg : bytes) (stored : bytes) : bool =
  Crypto.Cmac.verify k msg ~tag:stored

let leaky_quiet (k : Crypto.Cmac.key) (msg : bytes) (stored : bytes) : bool =
  let tag = Crypto.Cmac.digest k msg in
  ((if Bytes.equal tag stored then true else false) [@colibri.allow "d5"])
