(* Deepscan fixture: polymorphic comparison at structural types (d3).
   [same_int] compares immediates and must stay clean. *)

type pair = { left : int; right : int }

let same (x : pair) (y : pair) : bool = x = y

let order (x : pair) (y : pair) : int = compare x y

let same_int (x : int) (y : int) : bool = x = y

let same_quiet (x : pair) (y : pair) : bool = ((x = y) [@colibri.allow "d3"])

(* The dispatch hash the router used to compute per packet:
   [Hashtbl.hash] over a freshly-built tuple — polymorphic hashing at a
   composite type, plus a tuple allocation on every call. The router
   now uses the keyed integer mix ([Dataplane_shard.dispatch_mix]). *)
let dispatch_old (raw : bytes) (b : int) : int =
  Hashtbl.hash (Bytes.length raw, b)
