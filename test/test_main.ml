let () =
  Alcotest.run "colibri"
    [
      ("crypto", Test_crypto.suite);
      ("types", Test_types.suite);
      ("drkey", Test_drkey.suite);
      ("topology", Test_topology.suite);
      ("segments", Test_segments.suite);
      ("monitor", Test_monitor.suite);
      ("net", Test_net.suite);
      ("packet", Test_packet.suite);
      ("view", Test_view.suite);
      ("admission", Test_admission.suite);
      ("backends", Test_backends.suite);
      ("cserv", Test_cserv.suite);
      ("dataplane", Test_dataplane.suite);
      ("deployment", Test_deployment.suite);
      ("distributed", Test_distributed.suite);
      ("baseline", Test_baseline.suite);
      ("host_stack", Test_host_stack.suite);
      ("settlement", Test_settlement.suite);
      ("protocol", Test_protocol.suite);
      ("reservation", Test_reservation.suite);
      ("dataplane_unit", Test_dataplane_unit.suite);
      ("e2e_random", Test_e2e_random.suite);
      ("control_net", Test_control_net.suite);
      ("fault", Test_fault.suite);
      ("retry", Test_retry.suite);
      ("obs", Test_obs.suite);
      ("lint", Test_lint.suite);
      ("deepscan", Test_deepscan.suite);
      ("domaincheck", Test_domaincheck.suite);
      ("wiretaint", Test_wiretaint.suite);
      ("wire_fuzz", Test_wire_fuzz.suite);
      ("par", Test_par.suite);
      ("audit", Test_audit.suite);
    ]
