(** Byte-mutation fuzzer for the wire path (DESIGN.md §13).

    The wiretaint analyzer proves no wire-derived value reaches an
    index/allocation/ledger sink unguarded; this suite attacks the
    same surface dynamically. Each property starts from a valid
    serialized packet (or raw garbage), corrupts it — multi-byte
    overwrites, structure splices, truncation/extension — and asserts
    the two independent decoders, the record parser [Packet.of_bytes]
    and the zero-copy cursor [Packet.View.parse], return identical
    typed verdicts and never raise. [test_view.ml] pins single
    bit-flips; the generators here make coarser, structure-crossing
    edits (hop counts vs. actual length, payload_len vs. buffer size,
    blocks copied over each other). *)

open Colibri

(* Shared cursor, re-pointed by every [parse] — exactly how a router
   reuses one view across packets. *)
let view = Packet.View.create ()

(* The property: both decoders terminate without raising and agree on
   the typed verdict. On double-accept the record decode must also
   round-trip through the view's geometry (cheap sanity, not the full
   field-equality of test_view). *)
let verdicts_agree (raw : bytes) : bool =
  match (Packet.of_bytes raw, Packet.View.parse view raw) with
  | Ok q, Ok () ->
      Packet.View.wire_size view = Packet.wire_size q
      && Packet.View.hops view = List.length q.path
  | Error e1, Error e2 -> e1 = e2
  | Ok _, Error _ | Error _, Ok () -> false
  | exception _ -> false

let valid_frame_gen =
  QCheck2.Gen.map Packet.to_bytes Test_packet.packet_gen

(* 1-8 byte overwrites at arbitrary offsets. *)
let overwrite_gen =
  QCheck2.Gen.(
    let* raw = valid_frame_gen in
    let n = Bytes.length raw in
    let* writes = list_size (1 -- 8) (pair (0 -- (n - 1)) (0 -- 255)) in
    let b = Bytes.copy raw in
    List.iter (fun (off, v) -> Bytes.set_uint8 b off v) writes;
    return b)

(* Copy one random span of the frame over another: moves whole header
   blocks (hops over ResInfo, ResInfo over HVFs, ...) while keeping
   every byte individually plausible. *)
let splice_gen =
  QCheck2.Gen.(
    let* raw = valid_frame_gen in
    let n = Bytes.length raw in
    let* src = 0 -- (n - 1) in
    let* dst = 0 -- (n - 1) in
    let* len0 = 0 -- n in
    let len = min len0 (n - max src dst) in
    let b = Bytes.copy raw in
    Bytes.blit raw src b dst len;
    return b)

(* Truncate or extend with junk: the declared hop count and
   payload_len no longer match the buffer they arrived in. *)
let resize_gen =
  QCheck2.Gen.(
    let* raw = valid_frame_gen in
    let n = Bytes.length raw in
    let* m = 0 -- (n + 64) in
    let* fill = 0 -- 255 in
    let b = Bytes.make m (Char.chr fill) in
    Bytes.blit raw 0 b 0 (min n m);
    return b)

(* No valid skeleton at all. *)
let garbage_gen =
  QCheck2.Gen.(
    let* n = 0 -- 320 in
    let* cells = list_size (return n) (0 -- 255) in
    let b = Bytes.create n in
    List.iteri (fun i v -> Bytes.set_uint8 b i v) cells;
    return b)

let prop name gen =
  QCheck2.Test.make ~name ~count:1000 gen verdicts_agree

let suite =
  [
    QCheck_alcotest.to_alcotest
      (prop "fuzz: multi-byte overwrites, same verdict, no raise" overwrite_gen);
    QCheck_alcotest.to_alcotest
      (prop "fuzz: block splices, same verdict, no raise" splice_gen);
    QCheck_alcotest.to_alcotest
      (prop "fuzz: truncate/extend, same verdict, no raise" resize_gen);
    QCheck_alcotest.to_alcotest
      (prop "fuzz: raw garbage, same verdict, no raise" garbage_gen);
  ]
