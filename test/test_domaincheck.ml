(** Domaincheck fixture suite.

    [domaincheck_fixtures/] holds one deliberately-violating module per
    domain-ownership rule D6..D9, each paired with a
    [[@colibri.allow]]-suppressed twin. The suite proves that every
    rule fires at its known location, that every suppression flags
    exactly its twin (suppressed findings are carried, not dropped),
    that the cross-module D6 case (mutable Obs state defined in
    [D6_state], shared by a spawn closure and the orchestrator in
    [D6_cross]) is pinned interprocedurally, and that the D4/D6-D7
    dedup drops exactly the sites deepscan already reports. Tests run
    from [_build/default/test], where dune has built the fixture
    library's [.cmt] files next to its copied sources. *)

let result = lazy (Domaincheck.scan [ "domaincheck_fixtures" ])
let findings () = fst (Lazy.force result)

(* The same fixtures without the D4 dedup, and deepscan's own view of
   them — both only for the dedup tests. *)
let raw = lazy (Domaincheck.scan_ex ~drop_d4:[] [ "domaincheck_fixtures" ])
let deep = lazy (Deepscan.scan [ "domaincheck_fixtures" ])
let base (f : Lint.finding) = Filename.basename f.file

let find_at ?(among = findings) ~rule ~file ~line () =
  List.filter
    (fun (f : Lint.finding) -> f.rule = rule && base f = file && f.line = line)
    (among ())

let check_state ~suppressed ?(among = findings) ?contains ~rule ~file ~line () =
  let hits = find_at ~among ~rule ~file ~line () in
  Alcotest.(check bool)
    (Printf.sprintf "[%s] fires at %s:%d" rule file line)
    true (hits <> []);
  Alcotest.(check bool)
    (Printf.sprintf "[%s] at %s:%d suppressed=%b" rule file line suppressed)
    true
    (List.for_all (fun (f : Lint.finding) -> f.suppressed = suppressed) hits);
  match contains with
  | None -> ()
  | Some affix ->
      Alcotest.(check bool)
        (Printf.sprintf "finding at %s:%d mentions %S" file line affix)
        true
        (List.exists
           (fun (f : Lint.finding) -> Astring.String.is_infix ~affix f.message)
           hits)

let check_fires = check_state ~suppressed:false
let check_flagged = check_state ~suppressed:true

let check_silent ?(among = findings) ~rule ~file ~line () =
  Alcotest.(check int)
    (Printf.sprintf "[%s] stays silent at %s:%d" rule file line)
    0
    (List.length (find_at ~among ~rule ~file ~line ()))

(* ------------------------------- d6 -------------------------------- *)

let test_d6_module_global () =
  (* [hits : int ref] is written from two inline spawn closures. *)
  check_fires ~rule:"d6" ~file:"d6_fire.ml" ~line:5 ~contains:"D6_fire.hits" ()

let test_d6_captured () =
  (* A [Buffer.t] local captured by a spawn closure and still used by
     the spawning function afterwards. *)
  check_fires ~rule:"d6" ~file:"d6_fire.ml" ~line:17 ()

let test_d6_cross_module () =
  (* The counter lives in [D6_state]; only [D6_cross] shares it between
     a spawn root and the orchestrator. The finding lands at the
     definition, naming the roots from the other module. *)
  check_fires ~rule:"d6" ~file:"d6_state.ml" ~line:5 ~contains:"D6_cross" ()

let test_d6_suppressed () = check_flagged ~rule:"d6" ~file:"d6_allow.ml" ~line:4 ()

(* ------------------------------- d7 -------------------------------- *)

let test_d7_access_sites () =
  (* Both Counter.incr sites of the cross-module shared counter: one in
     the spawn closure, one on the orchestrator side. *)
  List.iter
    (fun line -> check_fires ~rule:"d7" ~file:"d6_cross.ml" ~line ())
    [ 7; 8 ];
  (* The orchestrator-side write of the d6-allowed [total] ref still
     races: allowing d6 does not allow d7. *)
  check_fires ~rule:"d7" ~file:"d7_fire.ml" ~line:13 ()

let test_d7_def_site_allow () =
  (* [[@@colibri.allow "d6 d7"]] on the defining binding flags every
     access site, not just the definition. *)
  check_flagged ~rule:"d6" ~file:"d7_allow.ml" ~line:4 ();
  check_flagged ~rule:"d7" ~file:"d7_allow.ml" ~line:10 ()

(* ------------------------------- d8 -------------------------------- *)

let test_d8_two_producers () =
  List.iter
    (fun line ->
      check_fires ~rule:"d8" ~file:"d8_fire.ml" ~line ~contains:"producer" ())
    [ 6; 7 ]

let test_d8_alias_after_push () =
  check_fires ~rule:"d8" ~file:"d8_fire.ml" ~line:18
    ~contains:"used after being pushed" ()

let test_d8_batch_two_consumers () =
  (* [pop_into] binds the consumer endpoint exactly like [try_pop]:
     two spawned domains batch-popping the same ring both get flagged. *)
  List.iter
    (fun line ->
      check_fires ~rule:"d8" ~file:"d8_fire.ml" ~line ~contains:"consumer" ())
    [ 26; 27 ]

let test_d8_push_n_source_reuse_silent () =
  (* [push_n] copies elements out; the producer refilling its source
     array between bursts is the intended idiom, not an alias leak. *)
  check_silent ~rule:"d8" ~file:"d8_fire.ml" ~line:39 ()

let test_d8_suppressed () =
  List.iter
    (fun line -> check_flagged ~rule:"d8" ~file:"d8_allow.ml" ~line ())
    [ 6; 7; 16; 21; 22 ]

(* ------------------------------- d9 -------------------------------- *)

let test_d9_direct () =
  check_fires ~rule:"d9" ~file:"d9_fire.ml" ~line:8 ~contains:"Mutex.lock" ()

let test_d9_via_helper () =
  (* The blocking call is in a plain helper; only the interprocedural
     closure connects it to the hot spawn root. *)
  check_fires ~rule:"d9" ~file:"d9_fire.ml" ~line:12
    ~contains:"via D9_fire.go_via_helper.<spawn@16> -> D9_fire.pause" ()

let test_d9_suppressed () = check_flagged ~rule:"d9" ~file:"d9_allow.ml" ~line:8 ()

(* ---------------------------- d4 dedup ----------------------------- *)

let test_d4_dedup () =
  (* Deepscan's spawn-root extension claims the worker's increment of
     [total] at d7_fire.ml:9 as a d4 site... *)
  check_fires
    ~among:(fun () -> fst (Lazy.force deep))
    ~rule:"d4" ~file:"d7_fire.ml" ~line:9 ();
  (* ...the undeduped domaincheck view sees the same site as d7... *)
  check_fires
    ~among:(fun () -> (Lazy.force raw).Domaincheck.sr_findings)
    ~rule:"d7" ~file:"d7_fire.ml" ~line:9 ();
  (* ...and the default scan reports it exactly once, as d4's. *)
  check_silent ~rule:"d7" ~file:"d7_fire.ml" ~line:9 ()

(* ------------------------------ counts ----------------------------- *)

let test_exact_counts () =
  let per pred = List.length (List.filter pred (findings ())) in
  let active rule (f : Lint.finding) = f.rule = rule && not f.suppressed in
  List.iter
    (fun (rule, n) ->
      Alcotest.(check int) ("active findings for " ^ rule) n (per (active rule)))
    [ ("d6", 3); ("d7", 3); ("d8", 5); ("d9", 2) ];
  Alcotest.(check int) "suppressed findings" 10
    (per (fun f -> f.suppressed));
  Alcotest.(check int) "total findings" 23 (List.length (findings ()));
  Alcotest.(check bool) "all fixture modules scanned" true (snd (Lazy.force result) >= 10)

let suite =
  [
    Alcotest.test_case "d6 fires on a module-level ref" `Quick test_d6_module_global;
    Alcotest.test_case "d6 fires on a captured buffer" `Quick test_d6_captured;
    Alcotest.test_case "d6 fires across modules" `Quick test_d6_cross_module;
    Alcotest.test_case "d6 suppression" `Quick test_d6_suppressed;
    Alcotest.test_case "d7 fires at each racy access site" `Quick test_d7_access_sites;
    Alcotest.test_case "d7 def-site allow covers access sites" `Quick test_d7_def_site_allow;
    Alcotest.test_case "d8 fires on two producers" `Quick test_d8_two_producers;
    Alcotest.test_case "d8 fires on alias after push" `Quick test_d8_alias_after_push;
    Alcotest.test_case "d8 fires on two batch consumers" `Quick test_d8_batch_two_consumers;
    Alcotest.test_case "d8 stays silent on push_n source reuse" `Quick test_d8_push_n_source_reuse_silent;
    Alcotest.test_case "d8 suppression" `Quick test_d8_suppressed;
    Alcotest.test_case "d9 fires on direct blocking" `Quick test_d9_direct;
    Alcotest.test_case "d9 fires through a helper" `Quick test_d9_via_helper;
    Alcotest.test_case "d9 suppression" `Quick test_d9_suppressed;
    Alcotest.test_case "d4/d6-d7 never double-report" `Quick test_d4_dedup;
    Alcotest.test_case "exact finding counts" `Quick test_exact_counts;
  ]
