(** Property and boundary tests for the overuse-flow detector
    ({!Monitor.Ofd}, §4.8).

    The QCheck properties pin the count-min contract the enforcement
    chain builds on: the estimate never under-counts the true per-flow
    usage (no false negatives), every flow exceeding [threshold ×
    window] is reported [`Suspect] within its window and at most once
    per window, and the observation API ([estimate], [max_cell],
    [suspects]) never mutates the sketch.

    The boundary regressions pin the window-rotation convention at
    exactly [now - window_start = window]: rotation fires and the
    boundary packet counts toward the {e new} window (half-open
    windows, [\[start, start + window)]) — the same convention the
    blocklist uses for expiry. *)

open Colibri_types

let key src_num id : Ids.res_key =
  { src_as = Ids.asn ~isd:1 ~num:src_num; res_id = id }

let window = 1.0
let threshold = 1.2

let fresh ?(width = 128) ?(depth = 2) () =
  Monitor.Ofd.create ~width ~depth ~window ~threshold ~now:0. ()

(* A trace: packets (flow, milli-normalized units), all observed inside
   one window so rotation never interferes with the property. *)
let trace_gen =
  QCheck2.Gen.(list_size (10 -- 200) (pair (1 -- 10) (1 -- 300)))

let true_sums trace =
  let truth = Hashtbl.create 16 in
  List.iter
    (fun (flow, milli) ->
      let v = float_of_int milli /. 1000. in
      Hashtbl.replace truth flow
        (Option.value ~default:0. (Hashtbl.find_opt truth flow) +. v))
    trace;
  truth

let prop_never_underestimates =
  QCheck2.Test.make ~name:"ofd: estimate ≥ true per-flow sum" ~count:100
    trace_gen (fun trace ->
      let ofd = fresh () in
      List.iter
        (fun (flow, milli) ->
          ignore
            (Monitor.Ofd.observe ofd ~now:0.5 ~key:(key 1 flow)
               ~normalized:(float_of_int milli /. 1000.)))
        trace;
      Hashtbl.fold
        (fun flow total acc ->
          acc && Monitor.Ofd.estimate ofd (key 1 flow) >= total -. 1e-9)
        (true_sums trace) true)

let prop_heavy_flagged_once_per_window =
  QCheck2.Test.make
    ~name:"ofd: overuser suspected within its window, at most once" ~count:100
    trace_gen (fun trace ->
      let ofd = fresh () in
      let flags = Hashtbl.create 16 in
      List.iter
        (fun (flow, milli) ->
          match
            Monitor.Ofd.observe ofd ~now:0.5 ~key:(key 1 flow)
              ~normalized:(float_of_int milli /. 1000.)
          with
          | `Suspect ->
              Hashtbl.replace flags flow
                (1 + Option.value ~default:0 (Hashtbl.find_opt flags flow))
          | `Ok -> ())
        trace;
      Hashtbl.fold
        (fun flow total acc ->
          let n = Option.value ~default:0 (Hashtbl.find_opt flags flow) in
          (* Over the threshold → flagged (the estimate dominates the
             true sum, so there are no false negatives); and never
             flagged twice in one window. *)
          acc && n <= 1
          && (total <= (threshold *. window) +. 1e-9 || n = 1)
          && (n = 0
             || List.exists
                  (fun k -> Ids.equal_res_key k (key 1 flow))
                  (Monitor.Ofd.suspects ofd)))
        (true_sums trace) true)

let prop_observation_pure =
  QCheck2.Test.make
    ~name:"ofd: estimate/max_cell/suspects are observation-only" ~count:50
    trace_gen (fun trace ->
      (* Two identical sketches over the same trace; one is probed
         after every packet. If probing mutated anything, the final
         states would diverge. *)
      let quiet = fresh () and probed = fresh () in
      let same = ref true in
      List.iter
        (fun (flow, milli) ->
          let k = key 1 flow and v = float_of_int milli /. 1000. in
          let a = Monitor.Ofd.observe quiet ~now:0.5 ~key:k ~normalized:v in
          let b = Monitor.Ofd.observe probed ~now:0.5 ~key:k ~normalized:v in
          (match (a, b) with
          | `Ok, `Ok | `Suspect, `Suspect -> ()
          | _ -> same := false);
          let e1 = Monitor.Ofd.estimate probed k in
          let e2 = Monitor.Ofd.estimate probed k in
          if e1 <> e2 then same := false;
          let m1 = Monitor.Ofd.max_cell probed in
          let m2 = Monitor.Ofd.max_cell probed in
          if m1 <> m2 then same := false;
          ignore (Monitor.Ofd.suspects probed))
        trace;
      !same
      && Monitor.Ofd.max_cell quiet = Monitor.Ofd.max_cell probed
      && Monitor.Ofd.observed_packets quiet
         = Monitor.Ofd.observed_packets probed
      && List.length (Monitor.Ofd.suspects quiet)
         = List.length (Monitor.Ofd.suspects probed)
      && Hashtbl.fold
           (fun flow _ acc ->
             acc
             && Monitor.Ofd.estimate quiet (key 1 flow)
                = Monitor.Ofd.estimate probed (key 1 flow))
           (true_sums trace) true)

(* ---------- Window-boundary regressions ---------- *)

let no_rotation_strictly_inside () =
  let ofd = fresh () in
  ignore (Monitor.Ofd.observe ofd ~now:0.4 ~key:(key 1 1) ~normalized:0.6);
  (* Just below the boundary: still the same window, usage accumulates. *)
  ignore (Monitor.Ofd.observe ofd ~now:0.9999 ~key:(key 1 1) ~normalized:0.1);
  Alcotest.(check (float 1e-9)) "usage accumulated" 0.7
    (Monitor.Ofd.estimate ofd (key 1 1));
  Alcotest.(check int) "both packets this window" 2
    (Monitor.Ofd.observed_packets ofd)

let rotation_at_exact_boundary () =
  let ofd = fresh () in
  ignore (Monitor.Ofd.observe ofd ~now:0.4 ~key:(key 1 1) ~normalized:0.6);
  (* At exactly now = window the sketch rotates and the boundary packet
     counts toward the NEW window: windows are [start, start+window). *)
  ignore (Monitor.Ofd.observe ofd ~now:1.0 ~key:(key 1 2) ~normalized:0.25);
  Alcotest.(check (float 1e-9)) "old window cleared" 0.
    (Monitor.Ofd.estimate ofd (key 1 1));
  Alcotest.(check (float 1e-9)) "boundary packet in new window" 0.25
    (Monitor.Ofd.estimate ofd (key 1 2));
  Alcotest.(check int) "packet count restarted" 1
    (Monitor.Ofd.observed_packets ofd);
  (* The next rotation is measured from the new start (2.0), not from
     elapsed packets: just below it stays in-window... *)
  ignore (Monitor.Ofd.observe ofd ~now:1.9999 ~key:(key 1 2) ~normalized:0.1);
  Alcotest.(check (float 1e-9)) "second window accumulates" 0.35
    (Monitor.Ofd.estimate ofd (key 1 2));
  (* ...and exactly at it rotates again. *)
  ignore (Monitor.Ofd.observe ofd ~now:2.0 ~key:(key 1 2) ~normalized:0.05);
  Alcotest.(check (float 1e-9)) "third window fresh" 0.05
    (Monitor.Ofd.estimate ofd (key 1 2))

let suspects_reset_on_rotation () =
  let ofd = fresh () in
  let k = key 7 7 in
  (* Cross the threshold in window one: exactly one [`Suspect]. *)
  let r1 = Monitor.Ofd.observe ofd ~now:0.2 ~key:k ~normalized:1.25 in
  Alcotest.(check bool) "flagged on crossing" true (r1 = `Suspect);
  let r2 = Monitor.Ofd.observe ofd ~now:0.3 ~key:k ~normalized:0.5 in
  Alcotest.(check bool) "not re-flagged in same window" true (r2 = `Ok);
  (* After rotation the suspect set resets: the same flow overusing
     again is reported again — once per window, not once ever. *)
  let r3 = Monitor.Ofd.observe ofd ~now:1.0 ~key:k ~normalized:1.25 in
  Alcotest.(check bool) "re-flagged in next window" true (r3 = `Suspect);
  Alcotest.(check bool) "once in next window too" true
    (Monitor.Ofd.observe ofd ~now:1.1 ~key:k ~normalized:0.5 = `Ok)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_never_underestimates;
    QCheck_alcotest.to_alcotest prop_heavy_flagged_once_per_window;
    QCheck_alcotest.to_alcotest prop_observation_pure;
    Alcotest.test_case "boundary: no rotation strictly inside window" `Quick
      no_rotation_strictly_inside;
    Alcotest.test_case "boundary: rotation at exactly now = window" `Quick
      rotation_at_exact_boundary;
    Alcotest.test_case "boundary: suspects reset on rotation" `Quick
      suspects_reset_on_rotation;
  ]
