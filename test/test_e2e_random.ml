(** Randomized end-to-end properties over generated topologies: for
    random internets, random SegR provisioning, and random EER
    workloads, the global invariants hold — every established EER
    carries traffic through all its routers; SegRs are never
    over-subscribed by EERs; forged traffic never traverses. *)

open Colibri_types
open Colibri_topology
open Colibri

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

(* Provision SegRs between a random leaf pair of a random topology and
   return (deployment, src, dst) if a route could be built. *)
let build_world seed =
  let rng = Random.State.make [| seed; 0xC0FFEE |] in
  let topo = Topology_gen.random ~rng ~isds:2 ~cores:2 ~leaves:3 in
  let d = Deployment.create topo in
  let db = Deployment.seg_db d in
  let leaves = List.filter (fun a -> not (Topology.is_core topo a)) (Topology.ases topo) in
  let leaves = List.sort Ids.compare_asn leaves in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let src = pick leaves in
  let dst =
    let rec go () =
      let c = pick leaves in
      if Ids.equal_asn c src then go () else c
    in
    go ()
  in
  (* Up SegRs from src over every up segment; down SegRs to dst; core
     SegRs between all (up-end, down-start) core pairs. *)
  Segments.Db.up_segments db ~src
  |> List.iter (fun (u : Segments.t) ->
         ignore
           (Deployment.setup_segr d ~path:u.Segments.path ~kind:Reservation.Up
              ~max_bw:(gbps 1.) ~min_bw:(mbps 1.)));
  Segments.Db.down_segments db ~dst
  |> List.iter (fun (s : Segments.t) ->
         ignore
           (Deployment.request_down_segr d ~path:s.Segments.path ~max_bw:(gbps 1.)
              ~min_bw:(mbps 1.)));
  let ups = Segments.Db.up_segments db ~src |> List.map Segments.destination in
  let downs = Segments.Db.down_segments db ~dst |> List.map Segments.source in
  List.iter
    (fun u ->
      List.iter
        (fun dn ->
          if not (Ids.equal_asn u dn) then
            Segments.Db.core_segments db ~src:u ~dst:dn
            |> List.iteri (fun i (c : Segments.t) ->
                   if i < 2 then
                     ignore
                       (Deployment.setup_segr d ~path:c.Segments.path
                          ~kind:Reservation.Core ~max_bw:(gbps 2.) ~min_bw:(mbps 1.))))
        downs)
    ups;
  (d, src, dst)

let prop_established_eers_deliver =
  QCheck2.Test.make ~name:"e2e: established EERs deliver through all routers"
    ~count:10
    QCheck2.Gen.(1 -- 1000)
    (fun seed ->
      let d, src, dst = build_world seed in
      match
        Deployment.setup_eer_auto d ~src ~src_host:(Ids.host 1) ~dst
          ~dst_host:(Ids.host 2) ~bw:(mbps 50.)
      with
      | Error _ -> QCheck2.assume_fail () (* no route in this world: skip *)
      | Ok eer ->
          List.for_all
            (fun _ ->
              Deployment.advance d 0.001;
              match
                Deployment.send_data d ~src ~res_id:eer.key.res_id ~payload_len:500
              with
              | Ok { delivered = true; hops_traversed; _ } ->
                  hops_traversed = Path.length eer.path
              | _ -> false)
            [ 1; 2; 3; 4; 5 ])

let prop_no_segr_oversubscription =
  QCheck2.Test.make
    ~name:"e2e: Σ EER bandwidth over each SegR never exceeds the SegR" ~count:8
    QCheck2.Gen.(pair (1 -- 1000) (list_size (return 12) (10 -- 400)))
    (fun (seed, demands) ->
      let d, src, dst = build_world seed in
      let routes = Deployment.lookup_eer_routes d ~src ~dst in
      QCheck2.assume (routes <> []);
      (* Fire a burst of EER requests with random demands; some fail,
         that is fine — the invariant is about what was granted. *)
      List.iteri
        (fun i demand_mb ->
          ignore
            (Deployment.setup_eer_auto d ~src ~src_host:(Ids.host i) ~dst
               ~dst_host:(Ids.host 2)
               ~bw:(mbps (float_of_int demand_mb))))
        demands;
      (* Check every SegR of every route. *)
      let now = Deployment.now d in
      routes
      |> List.for_all (fun (r : Deployment.eer_route) ->
             r.segr_keys
             |> List.for_all (fun key ->
                    r.path
                    |> List.for_all (fun (hop : Path.hop) ->
                           match Cserv.transit_segr (Deployment.cserv d hop.asn) key with
                           | None -> true (* this AS not on that SegR *)
                           | Some ts ->
                               let booked =
                                 Backends.Backend_intf.eer_allocated_over
                                   (Cserv.backend (Deployment.cserv d hop.asn))
                                   ~segr:key
                               in
                               Bandwidth.(
                                 booked <=~ Reservation.segr_bw ts.segr ~now)))))

let prop_forged_packets_never_traverse =
  QCheck2.Test.make ~name:"e2e: packets with corrupted HVFs never deliver" ~count:8
    QCheck2.Gen.(pair (1 -- 1000) (0 -- 3))
    (fun (seed, flip_byte) ->
      let d, src, dst = build_world seed in
      match
        Deployment.setup_eer_auto d ~src ~src_host:(Ids.host 1) ~dst
          ~dst_host:(Ids.host 2) ~bw:(mbps 10.)
      with
      | Error _ -> QCheck2.assume_fail ()
      | Ok eer -> (
          match Gateway.send (Deployment.gateway d src) ~res_id:eer.key.res_id ~payload_len:0 with
          | Error _ -> false
          | Ok (pkt, _) ->
              (* Corrupt one byte of a middle hop's HVF. *)
              let i = Array.length pkt.Packet.hvfs / 2 in
              let hvf = Bytes.copy pkt.Packet.hvfs.(i) in
              Bytes.set hvf flip_byte
                (Char.chr (Char.code (Bytes.get hvf flip_byte) lxor 0x01));
              pkt.Packet.hvfs.(i) <- hvf;
              let raw = Packet.to_bytes pkt in
              (* Walk the routers: the packet must die at hop i. *)
              let rec walk idx = function
                | [] -> false (* delivered: forgery traversed! *)
                | (hop : Path.hop) :: rest -> (
                    match
                      Router.process_bytes (Deployment.router d hop.asn) ~raw
                        ~payload_len:0
                    with
                    | Ok _ -> walk (idx + 1) rest
                    | Error Router.Invalid_hvf -> idx = i
                    | Error _ -> false)
              in
              walk 0 pkt.Packet.path))

(* 10 000 simulated seconds of chaos: random topology, random loss and
   jitter on every link, periodic CServ crashes at the destination, and
   continuous renewal churn (the managed EER renews every ~8 s, the
   managed SegR every ~210 s, both degrading and recovering as faults
   dictate). Afterwards every invariant must close: no in-flight
   requests, every AS's admission state audit-clean (no reservation
   leaks), and every tracked message accounted for —
   sent = delivered + lost. *)
let prop_chaos_soak =
  QCheck2.Test.make ~name:"e2e: 10k-second chaos soak with renewal churn" ~count:3
    QCheck2.Gen.(pair (1 -- 1000) (float_range 0. 0.08))
    (fun (seed, loss) ->
      let d, src, dst = build_world seed in
      let faults = Net.Fault.create ~seed:(seed + 13) () in
      Net.Fault.set_default faults (Net.Fault.plan ~loss ~jitter:0.002 ());
      for k = 0 to 9 do
        Net.Fault.crash_server faults ~asn:dst
          ~at:((float_of_int k *. 997.) +. 100.)
          ~duration:25.
      done;
      Deployment.attach_network ~faults ~retry_seed:(seed + 99) d;
      match Deployment.lookup_eer_routes d ~src ~dst with
      | [] -> QCheck2.assume_fail ()
      | route :: _ -> (
          match
            Deployment.setup_eer_sync d ~route ~src_host:(Ids.host 1)
              ~dst_host:(Ids.host 2) ~bw:(mbps 20.)
          with
          | Error _ -> QCheck2.assume_fail ()
          | Ok eer ->
              let m_eer =
                Deployment.auto_renew_eer d ~key:eer.key ~route
                  ~src_host:(Ids.host 1) ~dst_host:(Ids.host 2) ~bw:(mbps 20.)
              in
              let m_segr =
                match route.segr_keys with
                | k :: _ ->
                    Result.to_option
                      (Deployment.auto_renew_segr d ~key:k ~max_bw:(gbps 1.)
                         ~min_bw:(mbps 1.))
                | [] -> None
              in
              Deployment.advance d 10_000.;
              (* Stop the machines, then drain in-flight requests and
                 duplicates before checking the invariants. *)
              Result.iter Deployment.stop_renewal m_eer;
              Option.iter Deployment.stop_renewal m_segr;
              Deployment.advance d 1_000.;
              let cn = Deployment.control_net d in
              Retry.pending (Deployment.retrier d) = 0
              && (match Deployment.audit_all d with
                 | [] -> true
                 | errs ->
                     List.iter (fun e -> Printf.eprintf "SOAK AUDIT: %s\n%!" e) errs;
                     false)
              && Control_net.sent_count cn
                 = Control_net.delivered_count cn + Control_net.lost_count cn))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_established_eers_deliver;
    QCheck_alcotest.to_alcotest prop_no_segr_oversubscription;
    QCheck_alcotest.to_alcotest prop_forged_packets_never_traverse;
    QCheck_alcotest.to_alcotest prop_chaos_soak;
  ]
