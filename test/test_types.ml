(** Tests for the foundational types: identifiers, bandwidth, time,
    and paths. *)

open Colibri_types

let asn = Ids.asn

let ids_encoding () =
  let a = asn ~isd:3 ~num:42 in
  let b = Ids.asn_to_bytes a in
  Alcotest.(check int) "8 bytes" 8 (Bytes.length b);
  let a' = Ids.asn_of_bytes b ~off:0 in
  Alcotest.(check bool) "roundtrip" true (Ids.equal_asn a a')

let ids_ordering () =
  let a = asn ~isd:1 ~num:5 and b = asn ~isd:1 ~num:6 and c = asn ~isd:2 ~num:1 in
  Alcotest.(check bool) "same isd" true (Ids.compare_asn a b < 0);
  Alcotest.(check bool) "isd dominates" true (Ids.compare_asn b c < 0);
  Alcotest.(check bool) "equal" true (Ids.compare_asn a a = 0);
  let k1 : Ids.res_key = { src_as = a; res_id = 1 }
  and k2 : Ids.res_key = { src_as = a; res_id = 2 } in
  Alcotest.(check bool) "res_key order" true (Ids.compare_res_key k1 k2 < 0);
  Alcotest.(check bool) "res_key equal" true (Ids.equal_res_key k1 k1)

let bandwidth_units () =
  Alcotest.(check (float 1e-6)) "gbps" 1e9 (Bandwidth.to_bps (Bandwidth.of_gbps 1.));
  Alcotest.(check (float 1e-6)) "mbps" 2e6 (Bandwidth.to_bps (Bandwidth.of_mbps 2.));
  Alcotest.(check (float 1e-6)) "kbps" 3e3 (Bandwidth.to_bps (Bandwidth.of_kbps 3.));
  Alcotest.(check (float 1e-9)) "sub floors at zero" 0.
    (Bandwidth.to_bps (Bandwidth.sub (Bandwidth.of_bps 1.) (Bandwidth.of_bps 2.)));
  Alcotest.(check (float 1e-9)) "div by zero" 0. (Bandwidth.div 5. 0.);
  Alcotest.(check bool) "tolerant leq" true Bandwidth.(of_gbps 1. <=~ of_bps (1e9 -. 1e-4));
  Alcotest.(check bool) "is_positive" true (Bandwidth.is_positive (Bandwidth.of_bps 1.));
  Alcotest.(check bool) "zero not positive" false (Bandwidth.is_positive Bandwidth.zero)

(* Overflow-safe ledger arithmetic (DESIGN.md §13): behavior at and
   just past the representable band [±max_bps = ±2^62 bps], where a
   naive [+.] would drift to infinity and a division by the sum would
   mint the NaN that poisons a float ledger permanently. *)
let bandwidth_overflow () =
  let m = Bandwidth.max_bps in
  let near = m -. 1e6 (* a hair below the cap at 2^62 ~ 4.6e18 *) in
  Alcotest.(check (float 0.)) "clamp: identity in band" 1e9 (Bandwidth.clamp 1e9);
  Alcotest.(check (float 0.)) "clamp: cap at max_bps" m (Bandwidth.clamp (2. *. m));
  Alcotest.(check (float 0.)) "clamp: inf caps" m (Bandwidth.clamp Float.infinity);
  Alcotest.(check (float 0.)) "clamp: nan is zero" 0. (Bandwidth.clamp Float.nan);
  Alcotest.(check (float 0.)) "clamp: negative floors" 0. (Bandwidth.clamp (-1e30));
  Alcotest.(check bool) "checked: in band" true
    (Bandwidth.checked_add near 1. = Some (near +. 1.));
  Alcotest.(check bool) "checked: overflow is None" true
    (Bandwidth.checked_add m m = None);
  Alcotest.(check bool) "checked: negative overflow is None" true
    (Bandwidth.checked_add (-.m) (-.m) = None);
  Alcotest.(check bool) "checked: nan is None" true
    (Bandwidth.checked_add Float.nan 1. = None);
  Alcotest.(check (float 0.)) "saturating: in band" (near +. 1.)
    (Bandwidth.saturating_add near 1.);
  Alcotest.(check (float 0.)) "saturating: caps above" m (Bandwidth.saturating_add m m);
  Alcotest.(check (float 0.)) "saturating: caps below" (-.m)
    (Bandwidth.saturating_add (-.m) (-.m));
  Alcotest.(check (float 0.)) "saturating: inf caps" m
    (Bandwidth.saturating_add Float.infinity 1.);
  Alcotest.(check (float 0.)) "saturating: nan collapses to zero" 0.
    (Bandwidth.saturating_add Float.nan 1.);
  (* The saturated ledger stays usable: a subsequent division cannot
     produce NaN the way [cap /. inf] (= 0, then [inf *. 0.]) did. *)
  Alcotest.(check bool) "saturated sum divides cleanly" true
    (Float.is_finite (1e9 /. Bandwidth.saturating_add Float.infinity 1e9))

let timebase_ts () =
  let exp_time = 100. in
  let ts = Timebase.Ts.of_times ~exp_time ~now:99.5 in
  Alcotest.(check int) "microsecond ticks" 500_000 (Timebase.Ts.to_int ts);
  Alcotest.(check (float 1e-9)) "inverse" 99.5 (Timebase.Ts.to_time ~exp_time ts);
  Alcotest.check_raises "expired" (Invalid_argument "Ts.of_times: expired") (fun () ->
      ignore (Timebase.Ts.of_times ~exp_time ~now:100.5))

let timebase_clock () =
  let c = Timebase.Sim_clock.create () in
  Alcotest.(check (float 0.)) "epoch" 0. (Timebase.Sim_clock.now c);
  Timebase.Sim_clock.advance c 1.5;
  Alcotest.(check (float 0.)) "advance" 1.5 (Timebase.Sim_clock.now c);
  let skewed = Timebase.Sim_clock.skewed c 0.05 in
  Alcotest.(check (float 1e-9)) "skewed" 1.55 (skewed ());
  Alcotest.(check bool) "skew within paper bound" true (0.05 <= Timebase.max_skew)

let hop = Path.hop

let sample_path () : Path.t =
  [
    hop ~asn:(asn ~isd:1 ~num:1) ~ingress:0 ~egress:2;
    hop ~asn:(asn ~isd:1 ~num:2) ~ingress:1 ~egress:3;
    hop ~asn:(asn ~isd:1 ~num:3) ~ingress:1 ~egress:0;
  ]

let path_validate_ok () =
  Alcotest.(check bool) "valid" true (Path.validate (sample_path ()) = Ok ());
  (* single-AS path: both interfaces local *)
  let single = [ hop ~asn:(asn ~isd:1 ~num:1) ~ingress:0 ~egress:0 ] in
  Alcotest.(check bool) "single hop" true (Path.validate single = Ok ())

let path_validate_errors () =
  let bad_src = [ hop ~asn:(asn ~isd:1 ~num:1) ~ingress:5 ~egress:0 ] in
  Alcotest.(check bool) "bad source ingress" true
    (Path.validate bad_src = Error Path.Bad_source_ingress);
  let bad_dst =
    [
      hop ~asn:(asn ~isd:1 ~num:1) ~ingress:0 ~egress:1;
      hop ~asn:(asn ~isd:1 ~num:2) ~ingress:1 ~egress:9;
    ]
  in
  Alcotest.(check bool) "bad destination egress" true
    (Path.validate bad_dst = Error Path.Bad_destination_egress);
  Alcotest.(check bool) "empty" true (Path.validate [] = Error Path.Empty);
  let zero_mid =
    [
      hop ~asn:(asn ~isd:1 ~num:1) ~ingress:0 ~egress:1;
      hop ~asn:(asn ~isd:1 ~num:2) ~ingress:0 ~egress:1;
      hop ~asn:(asn ~isd:1 ~num:3) ~ingress:1 ~egress:0;
    ]
  in
  (match Path.validate zero_mid with
  | Error (Path.Zero_transit_iface a) ->
      Alcotest.(check bool) "zero transit at 1-2" true (Ids.equal_asn a (asn ~isd:1 ~num:2))
  | _ -> Alcotest.fail "expected Zero_transit_iface");
  let repeated =
    [
      hop ~asn:(asn ~isd:1 ~num:1) ~ingress:0 ~egress:1;
      hop ~asn:(asn ~isd:1 ~num:2) ~ingress:1 ~egress:2;
      hop ~asn:(asn ~isd:1 ~num:1) ~ingress:3 ~egress:0;
    ]
  in
  (match Path.validate repeated with
  | Error (Path.Repeated_as _) -> ()
  | _ -> Alcotest.fail "expected Repeated_as")

let path_reverse () =
  let p = sample_path () in
  let r = Path.reverse p in
  Alcotest.(check bool) "reverse valid" true (Path.validate r = Ok ());
  Alcotest.(check bool) "source/dest swapped" true
    (Ids.equal_asn (Path.source r) (Path.destination p));
  Alcotest.(check bool) "double reverse" true (Path.equal (Path.reverse r) p)

let path_join () =
  let a =
    [
      hop ~asn:(asn ~isd:1 ~num:1) ~ingress:0 ~egress:2;
      hop ~asn:(asn ~isd:1 ~num:2) ~ingress:1 ~egress:0;
    ]
  in
  let b =
    [
      hop ~asn:(asn ~isd:1 ~num:2) ~ingress:0 ~egress:5;
      hop ~asn:(asn ~isd:1 ~num:3) ~ingress:1 ~egress:0;
    ]
  in
  let j = Path.join a b in
  Alcotest.(check int) "length" 3 (Path.length j);
  Alcotest.(check bool) "valid" true (Path.validate j = Ok ());
  (* joint AS keeps a's ingress and b's egress *)
  (match j with
  | [ _; joint; _ ] ->
      Alcotest.(check int) "joint ingress" 1 joint.ingress;
      Alcotest.(check int) "joint egress" 5 joint.egress
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.check_raises "mismatched join"
    (Invalid_argument "Path.join: fragments do not share an AS") (fun () ->
      ignore (Path.join a a))

let path_serialization () =
  let p = sample_path () in
  let b = Path.to_bytes p in
  Alcotest.(check int) "size" (3 * Path.hop_byte_size) (Bytes.length b);
  let p' = Path.of_bytes b ~off:0 ~count:3 in
  Alcotest.(check bool) "roundtrip" true (Path.equal p p')

(* Property: generated random valid paths roundtrip through bytes. *)
let arbitrary_path_gen =
  QCheck2.Gen.(
    let* n = 1 -- 16 in
    let* nums = list_size (return n) (1 -- 1000) in
    let* ifaces = list_size (return (2 * n)) (1 -- 64) in
    let nums = List.mapi (fun i x -> (i * 1001) + x) nums (* distinct *) in
    let arr = Array.of_list ifaces in
    return
      (List.mapi
         (fun i num ->
           hop ~asn:(asn ~isd:1 ~num)
             ~ingress:(if i = 0 then 0 else arr.(2 * i))
             ~egress:(if i = n - 1 then 0 else arr.((2 * i) + 1)))
         nums))

let prop_path_roundtrip =
  QCheck2.Test.make ~name:"path: bytes roundtrip" ~count:200 arbitrary_path_gen
    (fun p ->
      let b = Path.to_bytes p in
      Path.equal p (Path.of_bytes b ~off:0 ~count:(List.length p)))

let prop_path_reverse_involutive =
  QCheck2.Test.make ~name:"path: reverse involutive and valid" ~count:200
    arbitrary_path_gen (fun p ->
      Path.validate p = Ok ()
      && Path.validate (Path.reverse p) = Ok ()
      && Path.equal (Path.reverse (Path.reverse p)) p)

let suite =
  [
    Alcotest.test_case "AS id encoding" `Quick ids_encoding;
    Alcotest.test_case "AS id ordering" `Quick ids_ordering;
    Alcotest.test_case "bandwidth units" `Quick bandwidth_units;
    Alcotest.test_case "bandwidth overflow arithmetic" `Quick bandwidth_overflow;
    Alcotest.test_case "timestamp encoding" `Quick timebase_ts;
    Alcotest.test_case "sim clock" `Quick timebase_clock;
    Alcotest.test_case "path validate ok" `Quick path_validate_ok;
    Alcotest.test_case "path validate errors" `Quick path_validate_errors;
    Alcotest.test_case "path reverse" `Quick path_reverse;
    Alcotest.test_case "path join" `Quick path_join;
    Alcotest.test_case "path serialization" `Quick path_serialization;
    QCheck_alcotest.to_alcotest prop_path_roundtrip;
    QCheck_alcotest.to_alcotest prop_path_reverse_involutive;
  ]
