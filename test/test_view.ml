(** Differential tests for the zero-copy wire path (DESIGN.md §8).

    [Packet.View] re-implements the header decoder as validated cursor
    accessors over the raw buffer; these properties pin it to the
    legacy [Packet.of_bytes] record decoder — same accept/reject
    verdict on arbitrary (also corrupted) buffers, identical field
    values on accept — and a GC regression test asserts the warmed
    router fast path allocates nothing. *)

open Colibri_types
open Colibri

(* Shared view: [parse] fully re-initializes it, exactly as a router
   reuses one view across packets. *)
let view = Packet.View.create ()

(* Field-by-field agreement of a successfully parsed view with the
   record [of_bytes] produced for the same buffer. *)
let check_view_matches_record (q : Packet.t) : bool =
  let v = view in
  let hops = List.length q.path in
  let prim_ok =
    Packet.View.kind v = q.kind
    && Packet.View.hops v = hops
    && Packet.View.payload_len v = q.payload_len
    && Timebase.Ts.to_int (Packet.View.ts v) = Timebase.Ts.to_int q.ts
    && Packet.View.src_isd v = q.res_info.src_as.isd
    && Packet.View.src_num v = q.res_info.src_as.num
    && Packet.View.res_id v = q.res_info.res_id
    && Packet.View.version v = q.res_info.version
    && Packet.View.header_length v = Packet.header_len ~hops
    && Packet.View.wire_size v = Packet.header_len ~hops + q.payload_len
  in
  let exact_ok =
    (* Allocating conveniences must reproduce the record decoder bit
       for bit (they share the underlying field codecs). *)
    Bandwidth.to_bps (Packet.View.bw v) = Bandwidth.to_bps q.res_info.bw
    && Packet.View.exp_time v = q.res_info.exp_time
    && Packet.View.res_info v = q.res_info
    && Packet.View.eer_info v = q.eer_info
  in
  let unboxed_ok =
    (* The unrolled [Wire.get64] reads must agree with the stdlib
       big-endian decoder on the same raw field bytes (the float
       accessors above already pin the semantic values; on corrupted
       buffers the i64 can exceed the exact-float range, so the
       comparison is against the integer decode, not the float). *)
    let buf = Packet.View.buffer v and ro = Packet.View.res_off v in
    Packet.View.bw_bps_int v = Int64.to_int (Bytes.get_int64_be buf (ro + 12))
    && Packet.View.exp_time_us v = Int64.to_int (Bytes.get_int64_be buf (ro + 20))
    &&
    match q.eer_info with
    | None -> true
    | Some e ->
        Packet.View.eer_src_addr v = e.src_host.addr
        && Packet.View.eer_dst_addr v = e.dst_host.addr
  in
  let hops_ok =
    List.for_all2
      (fun i (h : Path.hop) ->
        Packet.View.hop v i = h
        && Packet.View.hop_isd v i = h.asn.isd
        && Packet.View.hop_num v i = h.asn.num
        && Packet.View.hop_ingress v i = h.ingress
        && Packet.View.hop_egress v i = h.egress)
      (List.init hops Fun.id) q.path
  in
  let hvfs_ok =
    Array.for_all Fun.id
      (Array.mapi (fun i hv -> Bytes.equal (Packet.View.hvf v i) hv) q.hvfs)
  in
  prim_ok && exact_ok && unboxed_ok && hops_ok && hvfs_ok

let prop_view_roundtrip =
  QCheck2.Test.make ~name:"view: agrees with of_bytes on round-tripped packets"
    ~count:1000 Test_packet.packet_gen (fun p ->
      let raw = Packet.to_bytes p in
      match (Packet.of_bytes raw, Packet.View.parse view raw) with
      | Ok q, Ok () -> check_view_matches_record q
      | _ -> false)

(* A packet plus a corruption: either truncate to a random prefix or
   flip one random bit. Exercises every verdict branch of the parser
   (Truncated, Bad_magic, Bad_kind, Bad_hop_count, Bad_payload_len,
   Bad_path) as well as accepted-but-altered fields. *)
let corrupted_gen =
  QCheck2.Gen.(
    let* p = Test_packet.packet_gen in
    let raw = Packet.to_bytes p in
    let n = Bytes.length raw in
    let* choice = 0 -- 2 in
    match choice with
    | 0 ->
        let* keep = 0 -- n in
        return (Bytes.sub raw 0 keep)
    | 1 ->
        let* pos = 0 -- (n - 1) in
        let* bit = 0 -- 7 in
        let b = Bytes.copy raw in
        Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor (1 lsl bit));
        return b
    | _ ->
        (* both: truncate then flip, if anything is left *)
        let* keep = 1 -- n in
        let b = Bytes.sub raw 0 keep in
        let* pos = 0 -- (keep - 1) in
        let* bit = 0 -- 7 in
        Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor (1 lsl bit));
        return b)

let prop_view_differential =
  QCheck2.Test.make ~name:"view: same verdict as of_bytes on corrupted buffers"
    ~count:1000 corrupted_gen (fun raw ->
      match (Packet.of_bytes raw, Packet.View.parse view raw) with
      | Ok q, Ok () -> check_view_matches_record q
      | Error e1, Error e2 -> e1 = e2
      | Ok _, Error _ | Error _, Ok () -> false)

(* ---------- GC regression: the warmed fast path must not allocate ---- *)

(* The probe topology: a 3-hop path through AS (1,2) carrying a valid
   SegR packet; the bare router (no OFD, no duplicate filter) must
   validate and route it without touching the minor heap. *)
let seg_packet_and_router () =
  let path =
    [
      Path.hop ~asn:(Ids.asn ~isd:1 ~num:1) ~ingress:0 ~egress:2;
      Path.hop ~asn:(Ids.asn ~isd:1 ~num:2) ~ingress:1 ~egress:2;
      Path.hop ~asn:(Ids.asn ~isd:1 ~num:3) ~ingress:1 ~egress:0;
    ]
  in
  let res_info : Packet.res_info =
    {
      src_as = Ids.asn ~isd:1 ~num:1;
      res_id = 7;
      bw = Bandwidth.of_gbps 100.;
      exp_time = 1e9;
      version = 1;
    }
  in
  let secret = Hvf.as_secret_of_material (Bytes.make 16 'R') in
  let hop = List.nth path 1 in
  let hvfs =
    Array.init 3 (fun j ->
        if j = 1 then Hvf.seg_token secret ~res_info ~hop
        else Bytes.make Packet.hvf_len 'x')
  in
  let raw =
    Packet.to_bytes
      {
        Packet.kind = Packet.Seg;
        path;
        res_info;
        eer_info = None;
        ts = Timebase.Ts.of_int 1_000_000;
        hvfs;
        payload_len = 0;
      }
  in
  let router =
    Router.create ~freshness_window:1e12 ~ofd:`None ~duplicates:`None ~secret
      ~clock:(fun () -> 0.)
      (Ids.asn ~isd:1 ~num:2)
  in
  (raw, router)

let router_fast_path_zero_alloc () =
  let raw, router = seg_packet_and_router () in
  let run () =
    match Router.process_bytes router ~raw ~payload_len:0 with
    | Ok Router.To_cserv -> ()
    | _ -> Alcotest.fail "SegR packet not accepted"
  in
  (* Warm up: lazy one-time work (first parse, table internals). *)
  for _ = 1 to 1_000 do
    run ()
  done;
  let before = Gc.minor_words () in
  let n = 10_000 in
  for _ = 1 to n do
    run ()
  done;
  let delta = Gc.minor_words () -. before in
  (* Slack covers only the boxed floats of the two [Gc.minor_words]
     reads; 10k packets at even 1 word each would blow far past it. *)
  if delta > 64. then
    Alcotest.failf "router fast path allocated %.0f minor words over %d packets"
      delta n

(* ---------- Gateway wire path: send_bytes ≡ send, byte for byte ----- *)

let gateway_pair () =
  let mk () =
    let gw = Gateway.create ~burst:1e12 ~clock:(fun () -> 0.) (Ids.asn ~isd:1 ~num:1) in
    let path =
      [
        Path.hop ~asn:(Ids.asn ~isd:1 ~num:1) ~ingress:0 ~egress:2;
        Path.hop ~asn:(Ids.asn ~isd:1 ~num:2) ~ingress:1 ~egress:0;
      ]
    in
    let sigmas =
      Array.init 2 (fun i -> Hvf.sigma_of_bytes (Bytes.make 16 (Char.chr (65 + i))))
    in
    let version : Reservation.version =
      { version = 1; bw = Bandwidth.of_gbps 100.; exp_time = 1e9 }
    in
    let eer : Reservation.eer =
      {
        key = { src_as = Ids.asn ~isd:1 ~num:1; res_id = 5 };
        path;
        src_host = Ids.host 1;
        dst_host = Ids.host 2;
        segr_keys = [];
        versions = [ version ];
      }
    in
    (match Gateway.register_prepared gw ~eer ~version ~sigmas with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    gw
  in
  (mk (), mk ())

let gateway_send_bytes_differential () =
  let legacy, zero_copy = gateway_pair () in
  (* Lockstep sends: both gateways share the constant clock, so their
     monotonic timestamp sequences coincide and the encodings must be
     byte-identical. *)
  List.iteri
    (fun i payload_len ->
      match
        ( Gateway.send legacy ~res_id:5 ~payload_len,
          Gateway.send_bytes zero_copy ~res_id:5 ~payload_len )
      with
      | Ok (pkt, eg1), Ok eg2 ->
          Alcotest.(check int) (Printf.sprintf "egress %d" i) eg1 eg2;
          let reference = Packet.to_bytes pkt in
          let out = Bytes.sub (Gateway.out zero_copy) 0 (Gateway.out_len zero_copy) in
          Alcotest.(check string)
            (Printf.sprintf "wire bytes %d" i)
            (Bytes.to_string reference) (Bytes.to_string out)
      | _ -> Alcotest.fail "send disagreement")
    [ 0; 1500; 0; 9000; 64 ]

let gateway_send_bytes_drops () =
  let _, gw = gateway_pair () in
  match Gateway.send_bytes gw ~res_id:999 ~payload_len:0 with
  | Error Gateway.Unknown_reservation -> ()
  | _ -> Alcotest.fail "expected Unknown_reservation"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_view_roundtrip;
    QCheck_alcotest.to_alcotest prop_view_differential;
    Alcotest.test_case "router fast path: 0 minor words/packet" `Quick
      router_fast_path_zero_alloc;
    Alcotest.test_case "gateway send_bytes ≡ send (byte-identical)" `Quick
      gateway_send_bytes_differential;
    Alcotest.test_case "gateway send_bytes drop verdicts" `Quick
      gateway_send_bytes_drops;
  ]
