(** The reliable-request layer: backoff is monotone and capped, the
    completion protocol is exactly-once, and — the chaos invariant —
    under any fault schedule with eventual delivery every networked
    setup either succeeds or cleanly exhausts its budget with all
    tentative admission state released (audits stay empty). *)

open Colibri_types
open Colibri_topology
open Colibri

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

(* ---------------- Pure backoff properties ---------------- *)

let policy_gen =
  QCheck2.Gen.(
    let* base = float_range 0.01 2. in
    let* backoff = float_range 1. 4. in
    let* cap_mult = float_range 1. 100. in
    let* attempts = 1 -- 12 in
    return (Retry.policy ~base_timeout:base ~backoff ~max_timeout:(base *. cap_mult)
              ~max_attempts:attempts ~jitter:0.1 ()))

let prop_backoff_monotone_and_capped =
  QCheck2.Test.make ~name:"retry: backoff sequence monotone and capped" ~count:200
    policy_gen (fun p ->
      let seq = List.init 16 (fun i -> Retry.timeout_for p ~attempt:(i + 1)) in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-12 && monotone rest
        | _ -> true
      in
      monotone seq
      && List.for_all (fun x -> x <= p.Retry.max_timeout +. 1e-12) seq
      && List.for_all (fun x -> x >= p.Retry.base_timeout -. 1e-12) seq)

let prop_backoff_deterministic =
  QCheck2.Test.make ~name:"retry: timeout_for is pure" ~count:50 policy_gen
    (fun p ->
      List.init 8 (fun i -> Retry.timeout_for p ~attempt:(i + 1))
      = List.init 8 (fun i -> Retry.timeout_for p ~attempt:(i + 1)))

(* ---------------- Completion protocol ---------------- *)

let exactly_once_completion () =
  let engine = Net.Engine.create () in
  let r = Retry.create ~engine () in
  let exhausted = ref 0 in
  let h = Retry.run r ~send:(fun _ -> ()) ~on_exhausted:(fun () -> incr exhausted) () in
  (* First attempt is scheduled, not synchronous. *)
  Alcotest.(check int) "no attempt before stepping" 0 (Retry.attempts h);
  ignore (Net.Engine.step engine);
  Alcotest.(check int) "attempt 1 sent" 1 (Retry.attempts h);
  Alcotest.(check bool) "first completion wins" true (Retry.complete r h);
  Alcotest.(check bool) "duplicate completion loses" false (Retry.complete r h);
  Net.Engine.run engine ~until:120.;
  Alcotest.(check int) "no exhaustion after success" 0 !exhausted;
  Alcotest.(check int) "nothing pending" 0 (Retry.pending r)

let exhaustion_fires_once () =
  let engine = Net.Engine.create () in
  let p = Retry.policy ~base_timeout:0.1 ~max_timeout:0.4 ~max_attempts:4 () in
  let r = Retry.create ~policy:p ~engine () in
  let sends = ref [] in
  let exhausted = ref 0 in
  let h =
    Retry.run r
      ~send:(fun a -> sends := (a, Net.Engine.now engine) :: !sends)
      ~on_exhausted:(fun () -> incr exhausted)
      ()
  in
  Net.Engine.run engine ~until:60.;
  Alcotest.(check int) "budget of 4 transmissions" 4 (List.length !sends);
  Alcotest.(check int) "exhausted exactly once" 1 !exhausted;
  (match Retry.state h with
  | Retry.Exhausted -> ()
  | _ -> Alcotest.fail "state must be Exhausted");
  Alcotest.(check bool) "late reply loses" false (Retry.complete r h);
  Alcotest.(check int) "nothing pending" 0 (Retry.pending r);
  (* Transmission times respect the (jittered) monotone backoff. *)
  let times = List.rev_map snd !sends in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b -. a) :: gaps rest
    | _ -> []
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b *. 1.2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "inter-send gaps grow (mod jitter)" true (monotone (gaps times))

let retransmits_until_delivered () =
  let engine = Net.Engine.create () in
  let p = Retry.policy ~base_timeout:0.1 ~max_timeout:1. ~max_attempts:8 () in
  let r = Retry.create ~policy:p ~engine () in
  let handle = ref None in
  let h =
    Retry.run r
      ~send:(fun a ->
        (* Attempts 1–2 vanish; attempt 3's reply arrives 10 ms later. *)
        if a = 3 then
          Net.Engine.schedule engine ~delay:0.01 (fun () ->
              match !handle with
              | Some h -> ignore (Retry.complete r h : bool)
              | None -> ()))
      ~on_exhausted:(fun () -> Alcotest.fail "must not exhaust")
      ()
  in
  handle := Some h;
  Net.Engine.run engine ~until:60.;
  (match Retry.state h with
  | Retry.Done -> ()
  | _ -> Alcotest.fail "must complete");
  Alcotest.(check int) "took exactly 3 attempts" 3 (Retry.attempts h)

(* ---------------- Chaos invariant (audit harness) ---------------- *)

(* Build a networked linear deployment under a random loss rate. *)
let chaos_world ~loss ~seed ~n =
  let topo = Topology_gen.linear ~n ~capacity:(gbps 10.) in
  let d = Deployment.create topo in
  let faults = Net.Fault.create ~seed () in
  Net.Fault.set_default faults (Net.Fault.plan ~loss ~jitter:0.001 ());
  Deployment.attach_network ~faults ~retry_seed:(seed + 1) d;
  d

let check_clean what = function
  | [] -> true
  | errs ->
      List.iter (fun e -> Printf.eprintf "AUDIT[%s]: %s\n%!" (what : string) e) errs;
      false

let prop_setup_concludes_cleanly =
  QCheck2.Test.make
    ~name:"retry: every setup succeeds or exhausts with state released" ~count:25
    QCheck2.Gen.(pair (1 -- 10_000) (float_range 0. 0.6))
    (fun (seed, loss) ->
      let d = chaos_world ~loss ~seed ~n:4 in
      let path = Topology_gen.linear_path ~n:4 in
      let outcomes =
        List.init 6 (fun _ ->
            Deployment.setup_segr_sync d ~path ~kind:Reservation.Core
              ~max_bw:(gbps 0.2) ~min_bw:(mbps 1.))
      in
      (* Drain all in-flight duplicates and timers before auditing. *)
      Deployment.advance d 600.;
      let concluded =
        List.for_all
          (function Ok _ -> true | Error _ -> true)
          outcomes
      in
      concluded
      && Retry.pending (Deployment.retrier d) = 0
      && check_clean "admission" (Deployment.audit_all d)
      && Control_net.sent_count (Deployment.control_net d)
         = Control_net.delivered_count (Deployment.control_net d)
           + Control_net.lost_count (Deployment.control_net d))

let prop_eer_concludes_cleanly =
  QCheck2.Test.make
    ~name:"retry: EER setups under loss conclude with audits clean" ~count:15
    QCheck2.Gen.(pair (1 -- 10_000) (float_range 0. 0.4))
    (fun (seed, loss) ->
      let d = chaos_world ~loss ~seed ~n:4 in
      let path = Topology_gen.linear_path ~n:4 in
      (* A clean SegR first (no faults yet applied to it matter: retries
         cover it), then EERs over it under loss. *)
      match
        Deployment.setup_segr_sync d ~path ~kind:Reservation.Core ~max_bw:(gbps 1.)
          ~min_bw:(mbps 1.)
      with
      | Error _ -> QCheck2.assume_fail ()
      | Ok segr ->
          let route : Deployment.eer_route = { path; segr_keys = [ segr.key ] } in
          let outcomes =
            List.init 6 (fun i ->
                Deployment.setup_eer_sync d ~route ~src_host:(Ids.host (i + 1))
                  ~dst_host:(Ids.host 99) ~bw:(mbps 20.))
          in
          ignore (outcomes : (Reservation.eer, string) result list);
          Deployment.advance d 600.;
          Retry.pending (Deployment.retrier d) = 0
          && check_clean "admission" (Deployment.audit_all d))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_backoff_monotone_and_capped;
    QCheck_alcotest.to_alcotest prop_backoff_deterministic;
    Alcotest.test_case "exactly-once completion" `Quick exactly_once_completion;
    Alcotest.test_case "exhaustion fires once, budget respected" `Quick
      exhaustion_fires_once;
    Alcotest.test_case "retransmits until delivered" `Quick
      retransmits_until_delivered;
    QCheck_alcotest.to_alcotest prop_setup_concludes_cleanly;
    QCheck_alcotest.to_alcotest prop_eer_concludes_cleanly;
  ]
