(** Adversarial acceptance scenarios, run under @attack with fixed
    seeds (ISSUE 10, §5.1 adversary model).

    Per seed, the full {!Attack.Scenario.run_suite} is executed against
    all four admission backends and each report is asserted against the
    paper's claims:

    - {b exhaustion}: N-Tube-style enforcing backends keep the honest
      ASes' share of the contested trunk bounded below and never
      preempt existing grants; DiffServ visibly fails the same bound.
    - {b overuse}: every paying-R-sending-kR bot is flagged within one
      OFD window, quarantined by the blocklist, and denied future
      reservations; honest deliveries stay intact.
    - {b storm}: crash/flap-synchronized renewal storms stay within
      the retry budget — control messages ≤ requests × budget ×
      per-attempt bound — and nothing leaks.

    Finally the whole suite is re-run from scratch and its digest must
    be byte-identical (replay determinism, like @chaos).

    Usage: [attack_main SEED]. Exits non-zero on the first violated
    invariant. *)

let fail fmt =
  Fmt.kstr (fun s -> prerr_endline ("ATTACK FAIL: " ^ s); exit 1) fmt

(* ---------------- (a) admission exhaustion ------------------------ *)

let check_exhaustion (r : Attack.Scenario.exhaustion_report) =
  let b = r.xh_backend in
  if r.xh_bot_seg_attempts < 200 then
    fail "exhaustion/%s: only %d bot SegR attempts (spam too weak)" b
      r.xh_bot_seg_attempts;
  if not r.xh_honest_preserved then
    fail "exhaustion/%s: an honest grant shrank or vanished under spam" b;
  if r.xh_bound_enforced then begin
    (* Enforcing backends: the honest share of the contested trunk
       stays bounded below, and promises never exceed the share. *)
    if r.xh_honest_share < 0.35 then
      fail "exhaustion/%s: honest share %.3f < 0.35 despite enforcement" b
        r.xh_honest_share;
    if not r.xh_capacity_respected then
      fail "exhaustion/%s: promised %.0f bps > share %.0f bps" b r.xh_total_bps
        r.xh_share_bps
  end
  else begin
    (* DiffServ has no admission signalling: it must visibly fail the
       fairness bound — oversubscribed trunk, diluted honest share. *)
    if r.xh_capacity_respected then
      fail "exhaustion/%s: expected oversubscription, promised %.0f <= %.0f" b
        r.xh_total_bps r.xh_share_bps;
    if r.xh_honest_share >= 0.35 then
      fail "exhaustion/%s: honest share %.3f not diluted without admission" b
        r.xh_honest_share
  end;
  Printf.printf
    "  exhaustion/%s: honest share %.3f (%d/%d bot SegRs admitted)\n%!" b
    r.xh_honest_share r.xh_bot_seg_granted r.xh_bot_seg_attempts

(* ---------------- (b) data-plane overuse -------------------------- *)

let check_overuse (r : Attack.Scenario.overuse_report) =
  let b = r.ou_backend in
  if r.ou_flagged <> r.ou_bots then
    fail "overuse/%s: only %d/%d overusers escalated to policing" b
      r.ou_flagged r.ou_bots;
  if r.ou_detection_windows > 1.0 then
    fail "overuse/%s: detection took %.2f OFD windows (> 1)" b
      r.ou_detection_windows;
  if r.ou_blocked <> r.ou_bots then
    fail "overuse/%s: only %d/%d overusers blocklisted" b r.ou_blocked
      r.ou_bots;
  if r.ou_denied <> r.ou_bots then
    fail "overuse/%s: only %d/%d overusers denied at the CServ" b r.ou_denied
      r.ou_bots;
  if r.ou_bot_policed = 0 || r.ou_bot_blocked_drops = 0 then
    fail "overuse/%s: enforcement chain idle (policed=%d blocked=%d)" b
      r.ou_bot_policed r.ou_bot_blocked_drops;
  if r.ou_honest_sent = 0 then fail "overuse/%s: honest sender idle" b;
  if r.ou_honest_delivered * 100 < r.ou_honest_sent * 99 then
    fail "overuse/%s: honest delivery %d/%d < 99%%" b r.ou_honest_delivered
      r.ou_honest_sent;
  Printf.printf
    "  overuse/%s: %d/%d bots flagged in %.2f windows, honest %d/%d delivered\n%!"
    b r.ou_flagged r.ou_bots r.ou_detection_windows r.ou_honest_delivered
    r.ou_honest_sent

(* ---------------- (c) renewal-storm amplification ----------------- *)

let check_storm (r : Attack.Scenario.storm_report) =
  let b = r.st_backend in
  if not r.st_within_budget then
    fail "storm/%s: %d control msgs > %d requests x %d budget x %d bound" b
      r.st_sent r.st_requests r.st_max_attempts r.st_attempt_msg_bound;
  if r.st_attempts > r.st_requests * r.st_max_attempts then
    fail "storm/%s: %d attempts > %d requests x budget %d" b r.st_attempts
      r.st_requests r.st_max_attempts;
  if r.st_amplification > 1.5 then
    fail "storm/%s: amplification %.2fx > 1.5x" b r.st_amplification;
  if not r.st_renewals_alive then
    fail "storm/%s: a managed SegR died during the storm" b;
  if not r.st_accounting_ok then fail "storm/%s: message accounting open" b;
  if r.st_audit_errors <> 0 then
    fail "storm/%s: %d admission audit errors (leaked state)" b
      r.st_audit_errors;
  if r.st_pending <> 0 then
    fail "storm/%s: %d requests still pending after drain" b r.st_pending;
  Printf.printf
    "  storm/%s: %.2fx amplification (%.1f vs %.1f msgs/req), budget held\n%!"
    b r.st_amplification r.st_storm_msgs_per_req r.st_clean_msgs_per_req

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1
  in
  Printf.printf "attack seed %d\n%!" seed;
  let s = Attack.Scenario.run_suite ~seed in
  List.iter check_exhaustion s.s_exhaustion;
  List.iter check_overuse s.s_overuse;
  List.iter check_storm s.s_storm;
  (* Replay determinism: the identical seed must reproduce the whole
     suite — every Obs snapshot included — byte for byte. *)
  let s2 = Attack.Scenario.run_suite ~seed in
  if not (String.equal s.s_digest s2.s_digest) then
    fail "replay: suite digests diverged for seed %d" seed;
  Printf.printf "  replay: byte-identical suite digest (%d bytes)\n%!"
    (String.length s.s_digest);
  Printf.printf "attack seed %d: all scenarios passed\n%!" seed
