val now : unit -> float
