(* Fixture: must trigger [hot-path-alloc] (R7) — a fresh buffer inside
   a [(* hot-path *)] definition defeats the allocation-free wire path. *)

(* hot-path *)
let encode_header (ts : int) : bytes =
  let b = Bytes.create 16 in
  Bytes.set_uint8 b 0 (ts land 0xff);
  b

(* Unmarked definitions may allocate freely: this one must NOT flag. *)
let encode_copy (src : bytes) : bytes = Bytes.sub src 0 (Bytes.length src)

(* A pragma keeps a justified allocation (grow-on-demand) legal. *)
(* hot-path *)
let grow (b : bytes) (needed : int) : bytes =
  if Bytes.length b >= needed then b
  else Bytes.sub b 0 needed (* lint: allow hot-path-alloc *)

(* Growing a buffer in place still allocates a fresh block. *)
(* hot-path *)
let widen (b : bytes) (extra : int) : bytes = Bytes.extend b 0 extra

(* Buffer.create hides the same fresh-block allocation behind an
   amortized API; the wire path may not use it either. *)
(* hot-path *)
let scratch_buffer (hint : int) : Buffer.t = Buffer.create hint
