val encode_header : int -> bytes
val encode_copy : bytes -> bytes
val grow : bytes -> int -> bytes
