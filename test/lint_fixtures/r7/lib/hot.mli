val encode_header : int -> bytes
val encode_copy : bytes -> bytes
val grow : bytes -> int -> bytes
val widen : bytes -> int -> bytes
val scratch_buffer : int -> Buffer.t
