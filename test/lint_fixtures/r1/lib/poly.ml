(* Fixture: must trigger [poly-hash] (R1) — polymorphic hashing of
   reservation-key types, and a polymorphic table keyed by them. *)

type cache = { slots : (Ids.res_key, int) Hashtbl.t }

let bucket (asn : Ids.asn) ~width = Hashtbl.hash asn mod width
