val tag_ok : expected:bytes -> got:bytes -> bool
