(* Fixture: must trigger [mac-compare] (R3) — variable-time comparison
   of authenticator bytes outside lib/crypto. *)

let tag_ok ~(expected : bytes) ~(got : bytes) = Bytes.equal expected got
