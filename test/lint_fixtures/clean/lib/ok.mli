val doc : string
val seeded_bucket : int -> width:int -> int
val also_allowed : int -> int
