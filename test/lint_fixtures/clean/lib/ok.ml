(* Fixture: must trigger nothing. Mentions of Hashtbl.hash, failwith,
   Bytes.equal and Unix.gettimeofday in comments or strings are masked,
   and pragma-annotated intentional uses are allowed. *)

let doc = "Hashtbl.hash Bytes.equal failwith Unix.gettimeofday"

(* lint: allow poly-hash *)
let seeded_bucket key ~width = Hashtbl.hash (key, 0x9e3779b9) mod width

let also_allowed key = Hashtbl.hash key (* lint: allow poly-hash *)
