(* Fixture: must trigger [missing-mli] (R4) — a lib module without an
   interface file. The body itself is clean. *)

let answer = 42
