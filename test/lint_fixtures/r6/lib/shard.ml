(* Fixture: must trigger [negative-modulo] (R6) — [abs] feeding a
   [mod] index overflows on [min_int] and goes out of bounds. *)

let shard_of (id : int) ~(shards : int) = abs (id * 0x9e3779b1) mod shards
