(* Self-tests for the colibri-lint analyzer: each fixture root under
   lint_fixtures/ must trigger exactly its intended rule, the clean
   root must trigger nothing, and the masking / pragma machinery is
   exercised directly on in-memory sources. *)

let fixture rule = Printf.sprintf "lint_fixtures/%s/lib" rule

let rules_of findings =
  List.sort_uniq compare (List.map (fun f -> f.Lint.rule) findings)

let check_fixture ~root ~expect () =
  let findings = Lint.lint_root (fixture root) in
  Alcotest.(check bool)
    (root ^ " triggers at least one finding")
    true
    (findings <> []);
  Alcotest.(check (list string))
    (root ^ " triggers only " ^ expect)
    [ expect ] (rules_of findings)

let test_r1 () = check_fixture ~root:"r1" ~expect:"poly-hash" ()
let test_r2 () = check_fixture ~root:"r2" ~expect:"hot-path-exn" ()
let test_r3 () = check_fixture ~root:"r3" ~expect:"mac-compare" ()
let test_r4 () = check_fixture ~root:"r4" ~expect:"missing-mli" ()
let test_r5 () = check_fixture ~root:"r5" ~expect:"nondet" ()
let test_r6 () = check_fixture ~root:"r6" ~expect:"negative-modulo" ()
let test_r7 () = check_fixture ~root:"r7" ~expect:"hot-path-alloc" ()

(* R7 only fires inside a marked definition: the same allocation in an
   unmarked neighbour is clean, and the region ends at the next
   definition at the marker's indentation. *)
let test_r7_region_scoping () =
  let src =
    "(* hot-path *)\n\
     let fast b = Bytes.set_uint8 b 0 1\n\n\
     let slow () = Bytes.create 16\n"
  in
  Alcotest.(check int) "allocation after region end is clean" 0
    (List.length (Lint.lint_source ~path:"lib/x.ml" ~in_lib:false src));
  let bad = "(* hot-path *)\nlet fast () =\n  Bytes.create 16\n" in
  Alcotest.(check (list string))
    "allocation inside region flags" [ "hot-path-alloc" ]
    (rules_of (Lint.lint_source ~path:"lib/x.ml" ~in_lib:false bad));
  (* Pragma escape, as used by the gateway's grow-on-demand branch. *)
  let allowed =
    "(* hot-path *)\n\
     let fast () =\n\
     \  Bytes.create 16 (* lint: allow hot-path-alloc *)\n"
  in
  Alcotest.(check int) "pragma suppresses R7" 0
    (List.length (Lint.lint_source ~path:"lib/x.ml" ~in_lib:false allowed))

(* The fixed idiom must not be flagged: the sign bit is cleared with
   [land max_int], no [abs] involved. *)
let test_r6_fixed_idiom () =
  let src = "let shard_of id n = id * 0x9e3779b1 land max_int mod n\n" in
  Alcotest.(check int) "land max_int idiom is clean" 0
    (List.length (Lint.lint_source ~path:"lib/x.ml" ~in_lib:false src))

let test_clean () =
  let findings = Lint.lint_root (fixture "clean") in
  List.iter (Fmt.epr "unexpected: %a@." Lint.pp_finding) findings;
  Alcotest.(check int) "clean fixture has zero findings" 0 (List.length findings)

(* The repo itself must stay lint-clean: this is the same invariant the
   @lint alias enforces at build time, kept here so [dune runtest]
   alone also guards it. Tests run from _build/default/test. *)
let test_repo_clean () =
  let roots =
    List.filter Sys.file_exists [ "../lib"; "../bin"; "../bench" ]
  in
  let findings = Lint.lint_roots roots in
  List.iter (Fmt.epr "repo finding: %a@." Lint.pp_finding) findings;
  Alcotest.(check int) "repo is lint-clean" 0 (List.length findings)

let test_masking () =
  let masked =
    Lint.mask_comments_and_strings
      "let x = 1 (* Hashtbl.hash (* nested *) failwith *) + \
       String.length \"Bytes.equal\""
  in
  let contains s sub = Astring.String.is_infix ~affix:sub s in
  Alcotest.(check bool) "comment tokens masked" false
    (contains masked "Hashtbl.hash");
  Alcotest.(check bool) "nested comment masked" false (contains masked "nested");
  Alcotest.(check bool) "string tokens masked" false
    (contains masked "Bytes.equal");
  Alcotest.(check bool) "code survives" true (contains masked "String.length")

let test_pragma_same_line () =
  let src = "let f k = Hashtbl.hash k (* lint: allow poly-hash *)\n" in
  Alcotest.(check int) "same-line pragma suppresses" 0
    (List.length (Lint.lint_source ~path:"lib/x.ml" ~in_lib:false src))

let test_pragma_prev_line () =
  let src = "(* lint: allow poly-hash *)\nlet f k = Hashtbl.hash k\n" in
  Alcotest.(check int) "previous-line pragma suppresses" 0
    (List.length (Lint.lint_source ~path:"lib/x.ml" ~in_lib:false src))

let test_pragma_wrong_rule () =
  let src = "(* lint: allow nondet *)\nlet f k = Hashtbl.hash k\n" in
  Alcotest.(check int) "pragma for another rule does not suppress" 1
    (List.length (Lint.lint_source ~path:"lib/x.ml" ~in_lib:false src))

let test_ids_exempt () =
  let src = "let f k = Hashtbl.hash k\n" in
  Alcotest.(check int) "lib/types/ids.ml is exempt from poly-hash" 0
    (List.length (Lint.lint_source ~path:"lib/types/ids.ml" ~in_lib:true src))

let suite =
  [
    Alcotest.test_case "fixture r1: poly-hash" `Quick test_r1;
    Alcotest.test_case "fixture r2: hot-path-exn" `Quick test_r2;
    Alcotest.test_case "fixture r3: mac-compare" `Quick test_r3;
    Alcotest.test_case "fixture r4: missing-mli" `Quick test_r4;
    Alcotest.test_case "fixture r5: nondet" `Quick test_r5;
    Alcotest.test_case "fixture r6: negative-modulo" `Quick test_r6;
    Alcotest.test_case "fixture r7: hot-path-alloc" `Quick test_r7;
    Alcotest.test_case "hot-path-alloc region scoping" `Quick test_r7_region_scoping;
    Alcotest.test_case "negative-modulo fixed idiom" `Quick test_r6_fixed_idiom;
    Alcotest.test_case "fixture clean: no findings" `Quick test_clean;
    Alcotest.test_case "repo sources are lint-clean" `Quick test_repo_clean;
    Alcotest.test_case "comment/string masking" `Quick test_masking;
    Alcotest.test_case "pragma on same line" `Quick test_pragma_same_line;
    Alcotest.test_case "pragma on previous line" `Quick test_pragma_prev_line;
    Alcotest.test_case "pragma rule must match" `Quick test_pragma_wrong_rule;
    Alcotest.test_case "ids.ml exemption" `Quick test_ids_exempt;
  ]
