(** Tests for monitoring and policing: token bucket, duplicate filter,
    overuse-flow detector, blocklist. *)

open Colibri_types

(* ---------- Token bucket ---------- *)

let tb_conforming_flow_passes () =
  (* 1 Mbps flow sending 1 Mbps of 1250-byte packets: all admitted. *)
  let rate = Bandwidth.of_mbps 1. in
  let tb = Monitor.Token_bucket.create ~rate ~burst:0.1 ~now:0. in
  let bytes = 1250 in
  let interval = 8. *. float_of_int bytes /. Bandwidth.to_bps rate in
  let ok = ref true in
  for i = 1 to 1000 do
    let now = float_of_int i *. interval in
    if not (Monitor.Token_bucket.admit tb ~now ~bytes) then ok := false
  done;
  Alcotest.(check bool) "all admitted" true !ok

let tb_overuse_dropped () =
  (* Sending at 2× the rate: about half the volume must be dropped. *)
  let rate = Bandwidth.of_mbps 1. in
  let tb = Monitor.Token_bucket.create ~rate ~burst:0.05 ~now:0. in
  let bytes = 1250 in
  let interval = 8. *. float_of_int bytes /. (2. *. Bandwidth.to_bps rate) in
  let admitted = ref 0 and total = 2000 in
  for i = 1 to total do
    let now = float_of_int i *. interval in
    if Monitor.Token_bucket.admit tb ~now ~bytes then incr admitted
  done;
  let ratio = float_of_int !admitted /. float_of_int total in
  Alcotest.(check bool) (Printf.sprintf "about half admitted (%.2f)" ratio) true
    (ratio > 0.45 && ratio < 0.60)

let tb_burst_allowance () =
  (* A fresh bucket allows a burst of rate×burst bits at once. *)
  let rate = Bandwidth.of_mbps 8. in
  (* burst 0.1 s → 800 kbit = 100 kB *)
  let tb = Monitor.Token_bucket.create ~rate ~burst:0.1 ~now:0. in
  Alcotest.(check bool) "100 kB burst fits" true
    (Monitor.Token_bucket.admit tb ~now:0. ~bytes:100_000);
  Alcotest.(check bool) "next packet rejected" false
    (Monitor.Token_bucket.admit tb ~now:0. ~bytes:1000);
  (* After 10 ms, 8 Mbps × 10 ms = 10 kB refilled. *)
  Alcotest.(check bool) "refill after 10ms" true
    (Monitor.Token_bucket.admit tb ~now:0.01 ~bytes:9_000)

let tb_set_rate () =
  let tb = Monitor.Token_bucket.create ~rate:(Bandwidth.of_mbps 1.) ~burst:0.1 ~now:0. in
  ignore (Monitor.Token_bucket.admit tb ~now:0. ~bytes:12_500);
  Monitor.Token_bucket.set_rate tb ~rate:(Bandwidth.of_mbps 10.) ~now:0.;
  Alcotest.(check (float 1e-6)) "rate updated" 10e6
    (Bandwidth.to_bps (Monitor.Token_bucket.rate tb));
  (* Burst duration preserved: capacity is now 10 Mbps × 0.1 s. *)
  Alcotest.(check bool) "larger burst after 1s" true
    (Monitor.Token_bucket.admit tb ~now:1. ~bytes:125_000)

let tb_peek_is_observation_only () =
  (* Regression: [available_bits] used to commit a refill, so sampling
     with a skewed (future) clock let a later admit at an earlier time
     see tokens it had not earned. *)
  let rate = Bandwidth.of_mbps 8. in
  let tb = Monitor.Token_bucket.create ~rate ~burst:0.1 ~now:0. in
  (* Drain the bucket completely at t = 0. *)
  Alcotest.(check bool) "drain" true (Monitor.Token_bucket.admit tb ~now:0. ~bytes:100_000);
  (* A monitor samples with a clock 100 s in the future: it sees the
     would-be fill… *)
  Alcotest.(check (float 1e-6)) "peek sees future fill"
    (Monitor.Token_bucket.capacity_bits tb)
    (Monitor.Token_bucket.available_bits tb ~now:100.);
  (* …but the bucket itself is unchanged: an admit right after the
     drain still fails. *)
  Alcotest.(check bool) "peek did not refill" false
    (Monitor.Token_bucket.admit tb ~now:0. ~bytes:1000);
  Alcotest.(check (float 1e-6)) "peek at now is the live fill" 0.
    (Monitor.Token_bucket.available_bits tb ~now:0.)

let tb_invalid_args () =
  Alcotest.(check bool) "zero rate" true
    (try ignore (Monitor.Token_bucket.create ~rate:Bandwidth.zero ~burst:0.1 ~now:0.); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero burst" true
    (try ignore (Monitor.Token_bucket.create ~rate:(Bandwidth.of_mbps 1.) ~burst:0. ~now:0.); false
     with Invalid_argument _ -> true)

let prop_tb_never_exceeds_rate_plus_burst =
  QCheck2.Test.make ~name:"token bucket: admitted volume ≤ rate·t + burst" ~count:50
    QCheck2.Gen.(list_size (return 500) (pair (1 -- 1500) (1 -- 20)))
    (fun pkts ->
      let rate = Bandwidth.of_mbps 1. in
      let tb = Monitor.Token_bucket.create ~rate ~burst:0.1 ~now:0. in
      let now = ref 0. and admitted_bits = ref 0. in
      List.for_all
        (fun (bytes, dt_ms) ->
          now := !now +. (float_of_int dt_ms /. 1000.);
          if Monitor.Token_bucket.admit tb ~now:!now ~bytes then
            admitted_bits := !admitted_bits +. (8. *. float_of_int bytes);
          !admitted_bits <= (Bandwidth.to_bps rate *. !now) +. (Bandwidth.to_bps rate *. 0.1) +. 1e-6)
        pkts)

(* ---------- Duplicate filter ---------- *)

let dup_catches_replay () =
  let f = Monitor.Duplicate_filter.create ~expected:10_000 ~fp_rate:1e-4 ~window:2. ~now:0. in
  Alcotest.(check bool) "first sighting" true
    (Monitor.Duplicate_filter.check_and_insert f ~now:0. 12345);
  Alcotest.(check bool) "replay caught" false
    (Monitor.Duplicate_filter.check_and_insert f ~now:0.5 12345);
  Alcotest.(check bool) "still caught in previous window" false
    (Monitor.Duplicate_filter.check_and_insert f ~now:2.5 12345)

let dup_ages_out () =
  let f = Monitor.Duplicate_filter.create ~expected:10_000 ~fp_rate:1e-4 ~window:1. ~now:0. in
  ignore (Monitor.Duplicate_filter.check_and_insert f ~now:0. 77);
  (* After two full windows the entry is forgotten. *)
  ignore (Monitor.Duplicate_filter.check_and_insert f ~now:1.1 1);
  ignore (Monitor.Duplicate_filter.check_and_insert f ~now:2.2 2);
  Alcotest.(check bool) "aged out" true
    (Monitor.Duplicate_filter.check_and_insert f ~now:2.3 77)

let dup_adversarial_keys () =
  (* Regression: index derivation used [abs (h1 + i·h2) mod bits];
     [abs min_int = min_int], so keys whose mixed hash landed on
     [min_int] produced a negative index and an out-of-bounds Bytes
     access. Adversarial keys must neither raise nor be missed. *)
  let f = Monitor.Duplicate_filter.create ~expected:10_000 ~fp_rate:1e-4 ~window:2. ~now:0. in
  let keys = [ min_int; max_int; min_int + 1; max_int - 1; 0; -1; 1 lsl 61 ] in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d fresh" k)
        true
        (Monitor.Duplicate_filter.check_and_insert f ~now:0.1 k))
    keys;
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d replay caught" k)
        false
        (Monitor.Duplicate_filter.check_and_insert f ~now:0.2 k))
    keys

let dup_idle_gap_no_false_positive () =
  (* Regression: after an idle gap of ≥ 2 windows, a single rotation
     kept the stale generation alive as [previous], so the first legit
     packets after the gap were falsely flagged as duplicates. *)
  let f = Monitor.Duplicate_filter.create ~expected:10_000 ~fp_rate:1e-4 ~window:1. ~now:0. in
  ignore (Monitor.Duplicate_filter.check_and_insert f ~now:0. 4242);
  (* Idle for 5 windows, then the same identifier returns (e.g. a
     retransmit long past the freshness window — the router's
     timestamp check handles staleness, not the filter). *)
  Alcotest.(check bool) "fresh after long idle gap" true
    (Monitor.Duplicate_filter.check_and_insert f ~now:5. 4242);
  (* And replay suppression still works after the clear. *)
  Alcotest.(check bool) "replay caught after clear" false
    (Monitor.Duplicate_filter.check_and_insert f ~now:5.1 4242)

let dup_occupancy_gauges () =
  let f = Monitor.Duplicate_filter.create ~expected:10_000 ~fp_rate:1e-4 ~window:2. ~now:0. in
  Alcotest.(check int) "empty filter has no bits set" 0
    (Monitor.Duplicate_filter.bits_set f);
  for k = 1 to 1000 do
    ignore (Monitor.Duplicate_filter.check_and_insert f ~now:0.1 k)
  done;
  Alcotest.(check bool) "bits set grows" true (Monitor.Duplicate_filter.bits_set f > 0);
  let r = Monitor.Duplicate_filter.fill_ratio f in
  Alcotest.(check bool) (Printf.sprintf "fill ratio in (0,1): %f" r) true
    (r > 0. && r < 1.);
  (* Observation-only: reading the gauges twice changes nothing. *)
  Alcotest.(check int) "bits_set is pure"
    (Monitor.Duplicate_filter.bits_set f)
    (Monitor.Duplicate_filter.bits_set f)

let dup_no_false_negatives () =
  (* Within the window, every inserted key must be caught on replay. *)
  let f = Monitor.Duplicate_filter.create ~expected:50_000 ~fp_rate:1e-3 ~window:10. ~now:0. in
  for k = 1 to 10_000 do
    ignore (Monitor.Duplicate_filter.check_and_insert f ~now:0.1 k)
  done;
  let missed = ref 0 in
  for k = 1 to 10_000 do
    if Monitor.Duplicate_filter.check_and_insert f ~now:0.2 k then incr missed
  done;
  Alcotest.(check int) "no false negatives" 0 !missed

let dup_false_positive_rate () =
  let f = Monitor.Duplicate_filter.create ~expected:50_000 ~fp_rate:1e-3 ~window:10. ~now:0. in
  for k = 1 to 50_000 do
    ignore (Monitor.Duplicate_filter.check_and_insert f ~now:0.1 k)
  done;
  (* Fresh keys should almost always be accepted. *)
  let fp = ref 0 in
  for k = 1_000_000 to 1_010_000 do
    if not (Monitor.Duplicate_filter.check_and_insert f ~now:0.2 k) then incr fp
  done;
  Alcotest.(check bool) (Printf.sprintf "fp rate ok (%d/10000)" !fp) true (!fp < 100)

let dup_memory_bounded () =
  let f = Monitor.Duplicate_filter.create ~expected:1_000_000 ~fp_rate:1e-4 ~window:2. ~now:0. in
  (* ~2.4 MB per filter generation for 1M packets at 1e-4. *)
  Alcotest.(check bool) "under 8 MB" true (Monitor.Duplicate_filter.memory_bytes f < 8_000_000)

(* ---------- Overuse flow detector ---------- *)

let key src_num id : Ids.res_key = { src_as = Ids.asn ~isd:1 ~num:src_num; res_id = id }

(* Drive [n] packets of a flow at [factor]× its reservation over [window]s. *)
let drive_flow ofd ~key ~factor ~window ~n =
  let flagged = ref false in
  for i = 1 to n do
    let now = window *. float_of_int i /. float_of_int n in
    let normalized = factor *. window /. float_of_int n in
    match Monitor.Ofd.observe ofd ~now ~key ~normalized with
    | `Suspect -> flagged := true
    | `Ok -> ()
  done;
  !flagged

let ofd_flags_overuser () =
  let ofd = Monitor.Ofd.create ~window:1.0 ~threshold:1.2 ~now:0. () in
  Alcotest.(check bool) "2x overuser flagged" true
    (drive_flow ofd ~key:(key 1 1) ~factor:2.0 ~window:1.0 ~n:100)

let ofd_spares_conforming () =
  let ofd = Monitor.Ofd.create ~window:1.0 ~threshold:1.2 ~now:0. () in
  Alcotest.(check bool) "conforming not flagged" false
    (drive_flow ofd ~key:(key 1 2) ~factor:0.9 ~window:1.0 ~n:100)

let ofd_no_false_negative_for_heavy_flow () =
  (* The count-min estimate never under-counts, so a flow whose true
     usage exceeds the threshold is always flagged within the window. *)
  let ofd = Monitor.Ofd.create ~width:256 ~depth:2 ~window:1.0 ~threshold:1.2 ~now:0. () in
  (* Background noise. *)
  for i = 1 to 500 do
    ignore (Monitor.Ofd.observe ofd ~now:0.1 ~key:(key 2 i) ~normalized:0.001)
  done;
  Alcotest.(check bool) "heavy flow flagged despite noise" true
    (drive_flow ofd ~key:(key 1 3) ~factor:3.0 ~window:0.8 ~n:50)

let ofd_window_reset () =
  let ofd = Monitor.Ofd.create ~window:1.0 ~threshold:1.2 ~now:0. () in
  (* Stay inside the first window so the suspect set is inspectable
     before rotation clears it. *)
  ignore (drive_flow ofd ~key:(key 1 4) ~factor:2.5 ~window:0.9 ~n:100);
  Alcotest.(check bool) "suspect recorded" true
    (List.exists (fun k -> Ids.equal_res_key k (key 1 4)) (Monitor.Ofd.suspects ofd));
  (* New window: counters and suspects reset. *)
  ignore (Monitor.Ofd.observe ofd ~now:2.5 ~key:(key 1 5) ~normalized:0.001);
  Alcotest.(check (list int)) "suspects cleared" []
    (List.map (fun _ -> 0) (Monitor.Ofd.suspects ofd));
  Alcotest.(check bool) "estimate reset" true
    (Monitor.Ofd.estimate ofd (key 1 4) < 0.1)

let ofd_versions_share_flow () =
  (* Packets with the same (SrcAS, ResId) aggregate regardless of which
     EER version produced them — tested via the shared key. *)
  let ofd = Monitor.Ofd.create ~window:1.0 ~threshold:1.0 ~now:0. () in
  let k = key 3 9 in
  let flagged = ref false in
  for i = 1 to 100 do
    let now = float_of_int i /. 100. in
    (* two "versions" interleaved, each at 0.75x → combined 1.5x *)
    (match Monitor.Ofd.observe ofd ~now ~key:k ~normalized:0.0075 with
    | `Suspect -> flagged := true
    | `Ok -> ());
    match Monitor.Ofd.observe ofd ~now ~key:k ~normalized:0.0075 with
    | `Suspect -> flagged := true
    | `Ok -> ()
  done;
  Alcotest.(check bool) "combined versions flagged" true !flagged

let ofd_memory_bounded () =
  let ofd = Monitor.Ofd.create ~width:4096 ~depth:4 ~window:1.0 ~threshold:1.2 ~now:0. () in
  Alcotest.(check int) "footprint" (4096 * 4 * 8) (Monitor.Ofd.memory_bytes ofd)

let ofd_max_cell_gauge () =
  let ofd = Monitor.Ofd.create ~width:64 ~depth:2 ~window:1.0 ~threshold:1.2 ~now:0. () in
  Alcotest.(check (float 0.)) "empty sketch" 0. (Monitor.Ofd.max_cell ofd);
  ignore (Monitor.Ofd.observe ofd ~now:0.1 ~key:(key 1 1) ~normalized:0.25);
  ignore (Monitor.Ofd.observe ofd ~now:0.2 ~key:(key 1 1) ~normalized:0.25);
  ignore (Monitor.Ofd.observe ofd ~now:0.3 ~key:(key 1 2) ~normalized:0.1);
  (* Every row got 0.5 from flow 1; the max cell is ≥ that and the
     estimate never exceeds it. *)
  let m = Monitor.Ofd.max_cell ofd in
  Alcotest.(check bool) (Printf.sprintf "max cell %f >= 0.5" m) true (m >= 0.5 -. 1e-9);
  Alcotest.(check bool) "estimate bounded by max cell" true
    (Monitor.Ofd.estimate ofd (key 1 1) <= m +. 1e-9);
  (* Observation-only. *)
  Alcotest.(check (float 0.)) "max_cell is pure" m (Monitor.Ofd.max_cell ofd)

let prop_ofd_never_underestimates =
  QCheck2.Test.make ~name:"ofd: estimate ≥ true usage" ~count:30
    QCheck2.Gen.(list_size (10 -- 100) (pair (1 -- 20) (1 -- 100)))
    (fun obs ->
      let ofd = Monitor.Ofd.create ~width:64 ~depth:2 ~window:100. ~threshold:10. ~now:0. () in
      let truth = Hashtbl.create 16 in
      List.iter
        (fun (flow, amount) ->
          let k = key 1 flow in
          let v = float_of_int amount /. 1000. in
          Hashtbl.replace truth flow
            (Option.value ~default:0. (Hashtbl.find_opt truth flow) +. v);
          ignore (Monitor.Ofd.observe ofd ~now:1. ~key:k ~normalized:v))
        obs;
      Hashtbl.fold
        (fun flow total acc ->
          acc && Monitor.Ofd.estimate ofd (key 1 flow) >= total -. 1e-9)
        truth true)

(* ---------- Blocklist ---------- *)

let blocklist_basics () =
  let sim = Timebase.Sim_clock.create () in
  let bl = Monitor.Blocklist.create ~clock:(Timebase.Sim_clock.clock sim) () in
  let bad = Ids.asn ~isd:1 ~num:666 in
  Alcotest.(check bool) "initially clear" false (Monitor.Blocklist.is_blocked bl bad);
  Monitor.Blocklist.block bl bad ~duration:None;
  Alcotest.(check bool) "blocked" true (Monitor.Blocklist.is_blocked bl bad);
  Alcotest.(check int) "size" 1 (Monitor.Blocklist.size bl);
  Monitor.Blocklist.unblock bl bad;
  Alcotest.(check bool) "unblocked" false (Monitor.Blocklist.is_blocked bl bad)

let blocklist_expiry () =
  let sim = Timebase.Sim_clock.create () in
  let bl = Monitor.Blocklist.create ~clock:(Timebase.Sim_clock.clock sim) () in
  let bad = Ids.asn ~isd:1 ~num:667 in
  Monitor.Blocklist.block bl bad ~duration:(Some 60.);
  Alcotest.(check bool) "blocked now" true (Monitor.Blocklist.is_blocked bl bad);
  Timebase.Sim_clock.advance sim 61.;
  Alcotest.(check bool) "expired" false (Monitor.Blocklist.is_blocked bl bad);
  Alcotest.(check int) "entry purged" 0 (Monitor.Blocklist.size bl)

let blocklist_boundary_at_deadline () =
  (* Pins the expiry convention: a block of duration [d] covers the
     half-open interval [now, now + d) — blocked strictly before the
     deadline, free at exactly the deadline. Same convention as the
     OFD's window rotation. *)
  let sim = Timebase.Sim_clock.create () in
  let bl = Monitor.Blocklist.create ~clock:(Timebase.Sim_clock.clock sim) () in
  let bad = Ids.asn ~isd:1 ~num:668 in
  (* Dyadic durations keep the clock arithmetic exact, so the test
     really probes the boundary instant, not float rounding. *)
  Monitor.Blocklist.block bl bad ~duration:(Some 60.);
  Timebase.Sim_clock.advance sim 59.5;
  Alcotest.(check bool) "blocked just below deadline" true
    (Monitor.Blocklist.is_blocked bl bad);
  Timebase.Sim_clock.advance sim 0.5;
  Alcotest.(check bool) "free at exactly the deadline" false
    (Monitor.Blocklist.is_blocked bl bad)

let blocklist_lazy_purge_and_reblock () =
  let sim = Timebase.Sim_clock.create () in
  let bl = Monitor.Blocklist.create ~clock:(Timebase.Sim_clock.clock sim) () in
  let bad = Ids.asn ~isd:1 ~num:669 in
  Monitor.Blocklist.block bl bad ~duration:(Some 10.);
  Timebase.Sim_clock.advance sim 10.;
  (* Removal is lazy: the expired entry lingers until a query sees it
     (the paper-sized list makes eager sweeps pointless)... *)
  Alcotest.(check int) "expired entry lingers until queried" 1
    (Monitor.Blocklist.size bl);
  Alcotest.(check bool) "query reports free" false
    (Monitor.Blocklist.is_blocked bl bad);
  Alcotest.(check int) "query purged the entry" 0 (Monitor.Blocklist.size bl);
  (* ...and a purged AS can be re-blocked with a fresh deadline. *)
  Monitor.Blocklist.block bl bad ~duration:(Some 4.);
  Timebase.Sim_clock.advance sim 3.5;
  Alcotest.(check bool) "re-blocked" true (Monitor.Blocklist.is_blocked bl bad);
  Timebase.Sim_clock.advance sim 0.5;
  Alcotest.(check bool) "re-block expires at its own deadline" false
    (Monitor.Blocklist.is_blocked bl bad)

let blocklist_permanent_never_expires () =
  let sim = Timebase.Sim_clock.create () in
  let bl = Monitor.Blocklist.create ~clock:(Timebase.Sim_clock.clock sim) () in
  let bad = Ids.asn ~isd:1 ~num:670 in
  Monitor.Blocklist.block bl bad ~duration:None;
  Timebase.Sim_clock.advance sim 1e9;
  Alcotest.(check bool) "permanent block survives any clock" true
    (Monitor.Blocklist.is_blocked bl bad);
  Monitor.Blocklist.unblock bl bad;
  Alcotest.(check bool) "only unblock lifts it" false
    (Monitor.Blocklist.is_blocked bl bad)

let suite =
  [
    Alcotest.test_case "token bucket: conforming flow passes" `Quick tb_conforming_flow_passes;
    Alcotest.test_case "token bucket: overuse dropped" `Quick tb_overuse_dropped;
    Alcotest.test_case "token bucket: burst allowance" `Quick tb_burst_allowance;
    Alcotest.test_case "token bucket: rate change" `Quick tb_set_rate;
    Alcotest.test_case "token bucket: invalid args" `Quick tb_invalid_args;
    Alcotest.test_case "token bucket: peek is observation-only" `Quick
      tb_peek_is_observation_only;
    QCheck_alcotest.to_alcotest prop_tb_never_exceeds_rate_plus_burst;
    Alcotest.test_case "duplicate filter: catches replay" `Quick dup_catches_replay;
    Alcotest.test_case "duplicate filter: ages out" `Quick dup_ages_out;
    Alcotest.test_case "duplicate filter: adversarial keys" `Quick dup_adversarial_keys;
    Alcotest.test_case "duplicate filter: no false positives after idle gap" `Quick
      dup_idle_gap_no_false_positive;
    Alcotest.test_case "duplicate filter: occupancy gauges" `Quick dup_occupancy_gauges;
    Alcotest.test_case "duplicate filter: no false negatives" `Quick dup_no_false_negatives;
    Alcotest.test_case "duplicate filter: false-positive rate" `Quick dup_false_positive_rate;
    Alcotest.test_case "duplicate filter: memory bounded" `Quick dup_memory_bounded;
    Alcotest.test_case "OFD: flags overuser" `Quick ofd_flags_overuser;
    Alcotest.test_case "OFD: spares conforming flow" `Quick ofd_spares_conforming;
    Alcotest.test_case "OFD: heavy flow found despite noise" `Quick ofd_no_false_negative_for_heavy_flow;
    Alcotest.test_case "OFD: window reset" `Quick ofd_window_reset;
    Alcotest.test_case "OFD: versions share one flow" `Quick ofd_versions_share_flow;
    Alcotest.test_case "OFD: memory bounded" `Quick ofd_memory_bounded;
    Alcotest.test_case "OFD: max-cell gauge" `Quick ofd_max_cell_gauge;
    QCheck_alcotest.to_alcotest prop_ofd_never_underestimates;
    Alcotest.test_case "blocklist: basics" `Quick blocklist_basics;
    Alcotest.test_case "blocklist: expiry" `Quick blocklist_expiry;
    Alcotest.test_case "blocklist: half-open expiry boundary" `Quick
      blocklist_boundary_at_deadline;
    Alcotest.test_case "blocklist: lazy purge and re-block" `Quick
      blocklist_lazy_purge_and_reblock;
    Alcotest.test_case "blocklist: permanent entry" `Quick
      blocklist_permanent_never_expires;
  ]
