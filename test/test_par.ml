(** Parallel substrate suite: deterministic 2-domain smoke tests for
    [lib/par] plus the [Parallel_router], and the dynamic ownership
    checker (DESIGN.md §11). Every test joins its domains before
    asserting, so results are exact, not racy samples. *)

open Colibri_types
open Colibri

let asn n = Ids.asn ~isd:1 ~num:n
let secret = Hvf.as_secret_of_material (Bytes.make 16 'K')

(* ------------------------------ Spsc_ring -------------------------- *)

let test_ring_fifo () =
  let r = Par.Spsc_ring.create ~dummy:0 4 in
  Alcotest.(check int) "capacity rounds to a power of two" 4 (Par.Spsc_ring.capacity r);
  List.iter
    (fun i -> Alcotest.(check bool) "push accepted" true (Par.Spsc_ring.try_push r i))
    [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "push on a full ring refused" false (Par.Spsc_ring.try_push r 5);
  Alcotest.(check int) "length is capacity when full" 4 (Par.Spsc_ring.length r);
  List.iter
    (fun i ->
      Alcotest.(check (option int)) "fifo order" (Some i) (Par.Spsc_ring.try_pop r))
    [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "empty pops None" None (Par.Spsc_ring.try_pop r)

let test_ring_two_domains () =
  let n = 1000 in
  let r = Par.Spsc_ring.create ~check:true ~dummy:(-1) 8 in
  let producer = Domain.spawn (fun () -> for i = 0 to n - 1 do Par.Spsc_ring.push_spin r i done) in
  let out = Array.make n (-1) in
  for i = 0 to n - 1 do
    out.(i) <- Par.Spsc_ring.pop_spin r
  done;
  Domain.join producer;
  Alcotest.(check bool)
    "cross-domain transfer is lossless and ordered" true
    (Array.for_all (fun x -> x >= 0) out
    && Array.for_all (fun i -> out.(i) = i) (Array.init n Fun.id))

let test_ring_ownership_violation () =
  let r = Par.Spsc_ring.create ~check:true ~dummy:0 4 in
  ignore (Par.Spsc_ring.try_push r 1);
  Alcotest.(check (option int)) "first pop binds the consumer" (Some 1) (Par.Spsc_ring.try_pop r);
  ignore (Par.Spsc_ring.try_push r 2);
  (* Simulate a foreign domain stealing the consumer endpoint: the
     next pop must abort instead of racing. *)
  Par.Spsc_ring.corrupt_endpoint_for_test r `Consumer;
  let self = (Domain.self () :> int) in
  Alcotest.check_raises "cross-domain pop aborts"
    (Par.Par_check.Ownership_violation
       (Printf.sprintf
          "Spsc_ring.pop: consumer endpoint is owned by domain %d, used from \
           domain %d"
          (self + 1_000_000) self))
    (fun () -> ignore (Par.Spsc_ring.try_pop r))

let test_ring_check_off () =
  let r = Par.Spsc_ring.create ~check:false ~dummy:0 4 in
  ignore (Par.Spsc_ring.try_push r 1);
  ignore (Par.Spsc_ring.try_pop r);
  Par.Spsc_ring.corrupt_endpoint_for_test r `Consumer;
  ignore (Par.Spsc_ring.try_push r 2);
  Alcotest.(check (option int))
    "release mode skips the endpoint check" (Some 2) (Par.Spsc_ring.try_pop r)

(* ----------------------------- Domain_pool ------------------------- *)

let test_pool_join () =
  let pool = Par.Domain_pool.spawn ~n:3 (fun i -> (i + 1) * 10) in
  Alcotest.(check int) "pool size" 3 (Par.Domain_pool.size pool);
  Alcotest.(check (array int)) "join collects per-domain results"
    [| 10; 20; 30 |]
    (Par.Domain_pool.join pool)

(* ------------------------------ Par_obs ---------------------------- *)

let test_par_obs_merge () =
  let pobs = Par.Par_obs.create ~slots:2 in
  let pool =
    Par.Domain_pool.spawn ~n:2 (fun i ->
        let reg = Par.Par_obs.claim pobs i in
        let c = Obs.Registry.counter reg "work_total" in
        for _ = 1 to (i + 1) * 5 do
          Obs.Counter.incr c
        done)
  in
  ignore (Par.Domain_pool.join pool);
  (match List.assoc_opt "work_total" (Par.Par_obs.sample pobs) with
  | Some (Obs.Counter n) -> Alcotest.(check int) "merge-at-sample sums slots" 15 n
  | _ -> Alcotest.fail "work_total missing from merged sample");
  Alcotest.(check bool) "slot owners recorded" true
    (Par.Par_obs.owner pobs 0 >= 0 && Par.Par_obs.owner pobs 1 >= 0)

(* --------------------------- Parallel_router ----------------------- *)

let test_parallel_router_drain_exact () =
  let pr =
    Dataplane_shard.Parallel_router.create ~secret ~clock:(fun () -> 0.)
      ~workers:2 (asn 2)
  in
  let n = 200 in
  let sent = ref 0 in
  (* Malformed frames still count as processed (verdict Error): the
     accounting must be exact without needing valid reservations. *)
  for i = 0 to n - 1 do
    let raw = Bytes.make (16 + (i mod 7)) (Char.chr (i land 0xff)) in
    while not (Dataplane_shard.Parallel_router.submit pr ~raw ~payload_len:0) do
      Domain.cpu_relax ()
    done;
    incr sent
  done;
  Dataplane_shard.Parallel_router.drain pr;
  Dataplane_shard.Parallel_router.shutdown pr;
  Alcotest.(check int) "submitted counts every accepted job" n
    (Dataplane_shard.Parallel_router.submitted pr);
  Alcotest.(check int) "processed = submitted after drain" n
    (Dataplane_shard.Parallel_router.processed pr);
  Alcotest.(check int) "nothing left pending" 0
    (Dataplane_shard.Parallel_router.pending pr);
  ignore !sent;
  match
    List.assoc_opt "par_router_processed_total"
      (Dataplane_shard.Parallel_router.metrics pr)
  with
  | Some (Obs.Counter c) -> Alcotest.(check int) "merged metrics agree" n c
  | _ -> Alcotest.fail "par_router_processed_total missing from metrics"

let test_parallel_router_shutdown_idempotent () =
  let pr =
    Dataplane_shard.Parallel_router.create ~secret ~clock:(fun () -> 0.)
      ~workers:1 (asn 2)
  in
  Dataplane_shard.Parallel_router.shutdown pr;
  Dataplane_shard.Parallel_router.shutdown pr;
  Alcotest.(check int) "clean shutdown with zero traffic" 0
    (Dataplane_shard.Parallel_router.processed pr)

let suite =
  [
    Alcotest.test_case "spsc ring: fifo, capacity, backpressure" `Quick test_ring_fifo;
    Alcotest.test_case "spsc ring: 2-domain transfer" `Quick test_ring_two_domains;
    Alcotest.test_case "spsc ring: corrupted cross-domain pop aborts" `Quick
      test_ring_ownership_violation;
    Alcotest.test_case "spsc ring: check:false skips the guard" `Quick test_ring_check_off;
    Alcotest.test_case "domain pool: spawn/join collects results" `Quick test_pool_join;
    Alcotest.test_case "par_obs: per-domain slots merge at sample" `Quick test_par_obs_merge;
    Alcotest.test_case "parallel router: exact accounting after drain" `Quick
      test_parallel_router_drain_exact;
    Alcotest.test_case "parallel router: shutdown is idempotent" `Quick
      test_parallel_router_shutdown_idempotent;
  ]
