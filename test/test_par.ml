(** Parallel substrate suite: deterministic 2-domain smoke tests for
    [lib/par] plus the [Parallel_router], and the dynamic ownership
    checker (DESIGN.md §11). Every test joins its domains before
    asserting, so results are exact, not racy samples. *)

open Colibri_types
open Colibri

let asn n = Ids.asn ~isd:1 ~num:n
let secret = Hvf.as_secret_of_material (Bytes.make 16 'K')

(* ------------------------------ Spsc_ring -------------------------- *)

let test_ring_fifo () =
  let r = Par.Spsc_ring.create ~dummy:0 4 in
  Alcotest.(check int) "capacity rounds to a power of two" 4 (Par.Spsc_ring.capacity r);
  List.iter
    (fun i -> Alcotest.(check bool) "push accepted" true (Par.Spsc_ring.try_push r i))
    [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "push on a full ring refused" false (Par.Spsc_ring.try_push r 5);
  Alcotest.(check int) "length is capacity when full" 4 (Par.Spsc_ring.length r);
  List.iter
    (fun i ->
      Alcotest.(check (option int)) "fifo order" (Some i) (Par.Spsc_ring.try_pop r))
    [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "empty pops None" None (Par.Spsc_ring.try_pop r)

let test_ring_two_domains () =
  let n = 1000 in
  let r = Par.Spsc_ring.create ~check:true ~dummy:(-1) 8 in
  let producer = Domain.spawn (fun () -> for i = 0 to n - 1 do Par.Spsc_ring.push_spin r i done) in
  let out = Array.make n (-1) in
  for i = 0 to n - 1 do
    out.(i) <- Par.Spsc_ring.pop_spin r
  done;
  Domain.join producer;
  Alcotest.(check bool)
    "cross-domain transfer is lossless and ordered" true
    (Array.for_all (fun x -> x >= 0) out
    && Array.for_all (fun i -> out.(i) = i) (Array.init n Fun.id))

let test_ring_ownership_violation () =
  let r = Par.Spsc_ring.create ~check:true ~dummy:0 4 in
  ignore (Par.Spsc_ring.try_push r 1);
  Alcotest.(check (option int)) "first pop binds the consumer" (Some 1) (Par.Spsc_ring.try_pop r);
  ignore (Par.Spsc_ring.try_push r 2);
  (* Simulate a foreign domain stealing the consumer endpoint: the
     next pop must abort instead of racing. *)
  Par.Spsc_ring.corrupt_endpoint_for_test r `Consumer;
  let self = (Domain.self () :> int) in
  Alcotest.check_raises "cross-domain pop aborts"
    (Par.Par_check.Ownership_violation
       (Printf.sprintf
          "Spsc_ring.pop: consumer endpoint is owned by domain %d, used from \
           domain %d"
          (self + 1_000_000) self))
    (fun () -> ignore (Par.Spsc_ring.try_pop r))

let test_ring_check_off () =
  let r = Par.Spsc_ring.create ~check:false ~dummy:0 4 in
  ignore (Par.Spsc_ring.try_push r 1);
  ignore (Par.Spsc_ring.try_pop r);
  Par.Spsc_ring.corrupt_endpoint_for_test r `Consumer;
  ignore (Par.Spsc_ring.try_push r 2);
  Alcotest.(check (option int))
    "release mode skips the endpoint check" (Some 2) (Par.Spsc_ring.try_pop r)

(* Two independent rings, each with its own producer and consumer
   domain (four spawned domains total): exact transfer accounting under
   real cross-domain traffic. Ring A moves elements one at a time
   (push_spin/pop_spin); ring B moves them in batched bursts
   (push_n/pop_into) — both must deliver 0..n-1 losslessly, in order. *)
let test_ring_four_domain_stress () =
  let n = 8192 in
  let expected_sum = n * (n - 1) / 2 in
  let spawn_element_pair () =
    let r = Par.Spsc_ring.create ~check:true ~dummy:(-1) 256 in
    let producer =
      Domain.spawn (fun () ->
          for i = 0 to n - 1 do
            Par.Spsc_ring.push_spin r i
          done)
    in
    let consumer =
      Domain.spawn (fun () ->
          let sum = ref 0 and ordered = ref true in
          for i = 0 to n - 1 do
            let v = Par.Spsc_ring.pop_spin r in
            if v <> i then ordered := false;
            sum := !sum + v
          done;
          (!sum, !ordered))
    in
    (producer, consumer)
  in
  let spawn_batched_pair () =
    let r = Par.Spsc_ring.create ~check:true ~dummy:(-1) 256 in
    let burst = 97 (* deliberately coprime with the capacity *) in
    let producer =
      Domain.spawn (fun () ->
          let src = Array.init n Fun.id in
          let sent = ref 0 in
          while !sent < n do
            let len = min burst (n - !sent) in
            let k = Par.Spsc_ring.push_n r src ~pos:!sent ~len in
            if k = 0 then Domain.cpu_relax () else sent := !sent + k
          done)
    in
    let consumer =
      Domain.spawn (fun () ->
          let dst = Array.make n (-1) in
          let got = ref 0 in
          while !got < n do
            let len = min burst (n - !got) in
            let k = Par.Spsc_ring.pop_into r dst ~pos:!got ~len in
            if k = 0 then Domain.cpu_relax () else got := !got + k
          done;
          let sum = ref 0 and ordered = ref true in
          Array.iteri (fun i v ->
              if v <> i then ordered := false;
              sum := !sum + v)
            dst;
          (!sum, !ordered))
    in
    (producer, consumer)
  in
  let pa, ca = spawn_element_pair () in
  let pb, cb = spawn_batched_pair () in
  Domain.join pa;
  Domain.join pb;
  let sum_a, ordered_a = Domain.join ca in
  let sum_b, ordered_b = Domain.join cb in
  Alcotest.(check bool) "element-wise ring delivers in order" true ordered_a;
  Alcotest.(check int) "element-wise ring delivers every value" expected_sum sum_a;
  Alcotest.(check bool) "batched ring delivers in order" true ordered_b;
  Alcotest.(check int) "batched ring delivers every value" expected_sum sum_b

(* Batched and element transfer are observationally the same queue:
   any interleaving of push_n/try_push on one side and
   pop_into/try_pop on the other yields the input sequence unchanged. *)
let prop_batched_equiv =
  QCheck2.Test.make
    ~name:"spsc ring: push_n/pop_into = n x push/pop, order-preserving"
    ~count:200
    QCheck2.Gen.(
      triple (1 -- 64) (list_size (0 -- 400) (0 -- 10_000)) (0 -- 10_000))
    (fun (cap, xs, seed) ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let rng = Random.State.make [| seed; 0xB47C |] in
      let r = Par.Spsc_ring.create ~check:false ~dummy:(-1) cap in
      let out = Array.make (max n 1) (-1) in
      let pushed = ref 0 and popped = ref 0 in
      while !popped < n do
        (if !pushed < n then
           if Random.State.bool rng then begin
             if Par.Spsc_ring.try_push r input.(!pushed) then incr pushed
           end
           else
             let len = min (1 + Random.State.int rng 17) (n - !pushed) in
             pushed := !pushed + Par.Spsc_ring.push_n r input ~pos:!pushed ~len);
        if Random.State.bool rng then (
          match Par.Spsc_ring.try_pop r with
          | Some v ->
              out.(!popped) <- v;
              incr popped
          | None -> ())
        else
          let len = min (1 + Random.State.int rng 17) (n - !popped) in
          popped := !popped + Par.Spsc_ring.pop_into r out ~pos:!popped ~len
      done;
      Par.Spsc_ring.length r = 0
      && Array.for_all2 ( = ) (Array.sub out 0 n) input)

(* The regression the spin paths are named for (ISSUE 7): with the
   endpoint check bound once per call and the remote index cached, a
   warm push_spin/pop_spin cycle must not touch the allocator at all. *)
let test_spin_paths_zero_alloc () =
  let r = Par.Spsc_ring.create ~check:true ~dummy:0 64 in
  Par.Spsc_ring.push_spin r 0;
  ignore (Par.Spsc_ring.pop_spin r);
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Par.Spsc_ring.push_spin r i;
    ignore (Par.Spsc_ring.pop_spin r)
  done;
  let after = Gc.minor_words () in
  (* [before]'s own float box lands inside the window; subtract it. *)
  Alcotest.(check (float 0.))
    "10k spin push/pop cycles allocate 0 minor words" 0. (Float.max 0. (after -. before -. 2.))

let test_batch_paths_zero_alloc () =
  let r = Par.Spsc_ring.create ~check:true ~dummy:0 64 in
  let src = Array.init 48 Fun.id in
  let dst = Array.make 48 0 in
  ignore (Par.Spsc_ring.push_n r src ~pos:0 ~len:48);
  ignore (Par.Spsc_ring.pop_into r dst ~pos:0 ~len:48);
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Par.Spsc_ring.push_n r src ~pos:0 ~len:48);
    ignore (Par.Spsc_ring.pop_into r dst ~pos:0 ~len:48)
  done;
  let after = Gc.minor_words () in
  Alcotest.(check (float 0.))
    "10k batched push_n/pop_into bursts allocate 0 minor words" 0.
    (Float.max 0. (after -. before -. 2.))

(* ----------------------------- Domain_pool ------------------------- *)

let test_pool_join () =
  let pool = Par.Domain_pool.spawn ~n:3 (fun i -> (i + 1) * 10) in
  Alcotest.(check int) "pool size" 3 (Par.Domain_pool.size pool);
  Alcotest.(check (array int)) "join collects per-domain results"
    [| 10; 20; 30 |]
    (Par.Domain_pool.join pool)

(* ------------------------------ Par_obs ---------------------------- *)

let test_par_obs_merge () =
  let pobs = Par.Par_obs.create ~slots:2 in
  let pool =
    Par.Domain_pool.spawn ~n:2 (fun i ->
        let reg = Par.Par_obs.claim pobs i in
        let c = Obs.Registry.counter reg "work_total" in
        for _ = 1 to (i + 1) * 5 do
          Obs.Counter.incr c
        done)
  in
  ignore (Par.Domain_pool.join pool);
  (match List.assoc_opt "work_total" (Par.Par_obs.sample pobs) with
  | Some (Obs.Counter n) -> Alcotest.(check int) "merge-at-sample sums slots" 15 n
  | _ -> Alcotest.fail "work_total missing from merged sample");
  Alcotest.(check bool) "slot owners recorded" true
    (Par.Par_obs.owner pobs 0 >= 0 && Par.Par_obs.owner pobs 1 >= 0)

(* --------------------------- Parallel_router ----------------------- *)

let test_parallel_router_drain_exact () =
  let pr =
    Dataplane_shard.Parallel_router.create ~secret ~clock:(fun () -> 0.)
      ~workers:2 (asn 2)
  in
  let n = 200 in
  let sent = ref 0 in
  (* Malformed frames still count as processed (verdict Error): the
     accounting must be exact without needing valid reservations. *)
  for i = 0 to n - 1 do
    let raw = Bytes.make (16 + (i mod 7)) (Char.chr (i land 0xff)) in
    while not (Dataplane_shard.Parallel_router.submit pr ~raw ~payload_len:0) do
      Domain.cpu_relax ()
    done;
    incr sent
  done;
  Dataplane_shard.Parallel_router.drain pr;
  Dataplane_shard.Parallel_router.shutdown pr;
  Alcotest.(check int) "submitted counts every accepted job" n
    (Dataplane_shard.Parallel_router.submitted pr);
  Alcotest.(check int) "processed = submitted after drain" n
    (Dataplane_shard.Parallel_router.processed pr);
  Alcotest.(check int) "nothing left pending" 0
    (Dataplane_shard.Parallel_router.pending pr);
  ignore !sent;
  match
    List.assoc_opt "par_router_processed_total"
      (Dataplane_shard.Parallel_router.metrics pr)
  with
  | Some (Obs.Counter c) -> Alcotest.(check int) "merged metrics agree" n c
  | _ -> Alcotest.fail "par_router_processed_total missing from metrics"

(* Batches below [batch] stay in the orchestrator's open job until an
   explicit flush — and flush alone is enough to get them processed. *)
let test_parallel_router_flush_partial () =
  let pr =
    Dataplane_shard.Parallel_router.create ~secret ~clock:(fun () -> 0.)
      ~workers:1 ~batch:8 (asn 2)
  in
  let raw = Bytes.make 16 'z' in
  for _ = 1 to 3 do
    Alcotest.(check bool) "submit accepted" true
      (Dataplane_shard.Parallel_router.submit pr ~raw ~payload_len:0)
  done;
  (* Nothing has crossed a ring yet: 3 < batch, so the worker cannot
     have seen any packet — this is deterministic, not a race. *)
  Alcotest.(check int) "open batch is invisible to the worker" 0
    (Dataplane_shard.Parallel_router.processed pr);
  Alcotest.(check int) "open batch counts as pending" 3
    (Dataplane_shard.Parallel_router.pending pr);
  Dataplane_shard.Parallel_router.flush pr;
  Dataplane_shard.Parallel_router.drain pr;
  Dataplane_shard.Parallel_router.shutdown pr;
  Alcotest.(check int) "flush delivers the partial batch" 3
    (Dataplane_shard.Parallel_router.processed pr)

let test_parallel_router_submit_batch () =
  let pr =
    Dataplane_shard.Parallel_router.create ~secret ~clock:(fun () -> 0.)
      ~workers:2 ~batch:16 (asn 2)
  in
  let n = 300 in
  let raws = Array.init n (fun i -> Bytes.make (16 + (i mod 5)) 'b') in
  let plens = Array.make n 0 in
  let accepted =
    Dataplane_shard.Parallel_router.submit_batch pr ~raws ~payload_lens:plens
      ~pos:0 ~len:n
  in
  Alcotest.(check int) "burst fits in ring capacity" n accepted;
  Dataplane_shard.Parallel_router.drain pr;
  Dataplane_shard.Parallel_router.shutdown pr;
  Alcotest.(check int) "every burst packet processed" n
    (Dataplane_shard.Parallel_router.processed pr)

(* The 0-alloc steady-state claim of DESIGN.md §11, now including the
   drain spin loop (which used to rebuild a [Par_obs.sample] assoc
   list per iteration) and the batch bookkeeping. Uniform frames keep
   the job buffers at one size, so after one full stock+recycle cycle
   the orchestrator's submit/flush/drain path must not allocate. *)
let test_parallel_router_steady_state_zero_alloc () =
  let pr =
    Dataplane_shard.Parallel_router.create ~secret ~clock:(fun () -> 0.)
      ~workers:1 ~ring_capacity:4 ~batch:8 (asn 2)
  in
  let raw = Bytes.make 16 'z' in
  let burst n =
    for _ = 1 to n do
      while not (Dataplane_shard.Parallel_router.submit pr ~raw ~payload_len:0) do
        Domain.cpu_relax ()
      done
    done;
    Dataplane_shard.Parallel_router.drain pr
  in
  (* Warm-up: size all 4 stock jobs (32 packets) and run one recycle
     round through the free ring. *)
  burst 64;
  let before = Gc.minor_words () in
  burst 32;
  let after = Gc.minor_words () in
  Dataplane_shard.Parallel_router.shutdown pr;
  Alcotest.(check (float 0.))
    "submit/flush/drain steady state allocates 0 minor words" 0.
    (Float.max 0. (after -. before -. 2.))

let test_parallel_router_shutdown_idempotent () =
  let pr =
    Dataplane_shard.Parallel_router.create ~secret ~clock:(fun () -> 0.)
      ~workers:1 (asn 2)
  in
  Dataplane_shard.Parallel_router.shutdown pr;
  Dataplane_shard.Parallel_router.shutdown pr;
  Alcotest.(check int) "clean shutdown with zero traffic" 0
    (Dataplane_shard.Parallel_router.processed pr)

let suite =
  [
    Alcotest.test_case "spsc ring: fifo, capacity, backpressure" `Quick test_ring_fifo;
    Alcotest.test_case "spsc ring: 2-domain transfer" `Quick test_ring_two_domains;
    Alcotest.test_case "spsc ring: corrupted cross-domain pop aborts" `Quick
      test_ring_ownership_violation;
    Alcotest.test_case "spsc ring: check:false skips the guard" `Quick test_ring_check_off;
    Alcotest.test_case "spsc ring: 4-domain two-ring stress, exact accounting"
      `Quick test_ring_four_domain_stress;
    QCheck_alcotest.to_alcotest prop_batched_equiv;
    Alcotest.test_case "spsc ring: spin paths allocate 0 minor words" `Quick
      test_spin_paths_zero_alloc;
    Alcotest.test_case "spsc ring: batch paths allocate 0 minor words" `Quick
      test_batch_paths_zero_alloc;
    Alcotest.test_case "domain pool: spawn/join collects results" `Quick test_pool_join;
    Alcotest.test_case "par_obs: per-domain slots merge at sample" `Quick test_par_obs_merge;
    Alcotest.test_case "parallel router: exact accounting after drain" `Quick
      test_parallel_router_drain_exact;
    Alcotest.test_case "parallel router: flush delivers partial batches" `Quick
      test_parallel_router_flush_partial;
    Alcotest.test_case "parallel router: submit_batch burst accounting" `Quick
      test_parallel_router_submit_batch;
    Alcotest.test_case "parallel router: steady state allocates 0 minor words"
      `Quick test_parallel_router_steady_state_zero_alloc;
    Alcotest.test_case "parallel router: shutdown is idempotent" `Quick
      test_parallel_router_shutdown_idempotent;
  ]
