(** Wiretaint fixture suite.

    [wiretaint_fixtures/] holds one deliberately-vulnerable module per
    wire-taint rule w1..w4, each paired with a
    [[@@colibri.allow]]-suppressed twin and a sanitized (silent)
    variant, plus the sanitizer-recognition trio in [Wt_sanitize]
    (guard dominates / use after the guarded conditional / guard
    laundered through a boolean) and the cross-module pair
    [Wt_flow_src]/[Wt_flow_sink] where the taint only reaches the sink
    through a record-field fact and a parameter fact. The suite proves
    every rule fires at its known location, every suppression flags
    exactly its twin (suppressed findings are carried, not dropped),
    and the totals are exact. Tests run from [_build/default/test],
    where dune has built the fixture library's [.cmt] files next to
    its copied sources. *)

let result = lazy (Wiretaint.scan [ "wiretaint_fixtures" ])
let findings () = fst (Lazy.force result)
let base (f : Lint.finding) = Filename.basename f.file

let find_at ~rule ~file ~line () =
  List.filter
    (fun (f : Lint.finding) -> f.rule = rule && base f = file && f.line = line)
    (findings ())

let check_state ~suppressed ?contains ~rule ~file ~line () =
  let hits = find_at ~rule ~file ~line () in
  Alcotest.(check bool)
    (Printf.sprintf "[%s] fires at %s:%d" rule file line)
    true (hits <> []);
  Alcotest.(check bool)
    (Printf.sprintf "[%s] at %s:%d suppressed=%b" rule file line suppressed)
    true
    (List.for_all (fun (f : Lint.finding) -> f.suppressed = suppressed) hits);
  match contains with
  | None -> ()
  | Some affix ->
      Alcotest.(check bool)
        (Printf.sprintf "finding at %s:%d mentions %S" file line affix)
        true
        (List.exists
           (fun (f : Lint.finding) -> Astring.String.is_infix ~affix f.message)
           hits)

let check_fires = check_state ~suppressed:false
let check_flagged = check_state ~suppressed:true

let check_silent ~rule ~file ~line () =
  Alcotest.(check int)
    (Printf.sprintf "[%s] stays silent at %s:%d" rule file line)
    0
    (List.length (find_at ~rule ~file ~line ()))

(* ------------------------------- w1 -------------------------------- *)

let test_w1_index () =
  check_fires ~rule:"w1" ~file:"wt_w1.ml" ~line:5 ~contains:"Bytes.get" ()

let test_w1_suppressed () = check_flagged ~rule:"w1" ~file:"wt_w1.ml" ~line:9 ()
let test_w1_guarded () = check_silent ~rule:"w1" ~file:"wt_w1.ml" ~line:14 ()

(* ------------------------------- w2 -------------------------------- *)

let test_w2_alloc () =
  check_fires ~rule:"w2" ~file:"wt_w2.ml" ~line:5 ~contains:"Bytes.create" ()

let test_w2_suppressed () = check_flagged ~rule:"w2" ~file:"wt_w2.ml" ~line:9 ()

let test_w2_min_clamped () =
  (* [min n 4096] bounds the size from above: a sanitizer. *)
  check_silent ~rule:"w2" ~file:"wt_w2.ml" ~line:14 ()

(* ------------------------------- w3 -------------------------------- *)

let test_w3_for_bound () =
  check_fires ~rule:"w3" ~file:"wt_w3.ml" ~line:8 ~contains:"for-loop bound" ()

let test_w3_count_label () =
  (* The [~count] naming convention is a sink wherever it appears. *)
  check_fires ~rule:"w3" ~file:"wt_w3.ml" ~line:15 ~contains:"~count" ()

let test_w3_suppressed () = check_flagged ~rule:"w3" ~file:"wt_w3.ml" ~line:20 ()

let test_w3_guarded () =
  (* [if n < 16 then repeat ~count:n ...]: the guard dominates. *)
  check_silent ~rule:"w3" ~file:"wt_w3.ml" ~line:28 ()

(* ------------------------------- w4 -------------------------------- *)

let test_w4_ledger_add () =
  (* The accumulator-functor sink family, matched by name. *)
  check_fires ~rule:"w4" ~file:"wt_w4.ml" ~line:13 ~contains:"Cell_acc.add" ()

let test_w4_slice_math () =
  check_fires ~rule:"w4" ~file:"wt_w4.ml" ~line:17 ~contains:"int_of_float" ()

let test_w4_suppressed () = check_flagged ~rule:"w4" ~file:"wt_w4.ml" ~line:21 ()

let test_w4_float_min_clamped () =
  check_silent ~rule:"w4" ~file:"wt_w4.ml" ~line:26 ()

(* -------------------------- sanitizer trio -------------------------- *)

let test_sanitize_dominating_guard () =
  check_silent ~rule:"w1" ~file:"wt_sanitize.ml" ~line:10 ()

let test_sanitize_use_after_guard () =
  (* The conditional guards one use; the use after it still fires
     (the guard sanitizes its branches, not the continuation). *)
  check_silent ~rule:"w1" ~file:"wt_sanitize.ml" ~line:14 ();
  check_fires ~rule:"w1" ~file:"wt_sanitize.ml" ~line:15 ()

let test_sanitize_indirect_boolean () =
  (* [let ok = i < len in if ok then ...]: the cond mentions [ok],
     not [i] — deliberately not recognized. *)
  check_fires ~rule:"w1" ~file:"wt_sanitize.ml" ~line:20 ()

(* ------------------------- cross-module flow ------------------------ *)

let test_flow_field_fact () =
  (* [frame.len] is tainted where [Wt_flow_src.parse] builds the
     record; the sink is in the other module. *)
  check_fires ~rule:"w1" ~file:"wt_flow_sink.ml" ~line:6
    ~contains:"Wt_flow_src.frame.len" ()

let test_flow_param_fact () =
  (* [helper] itself never reads the wire: the taint arrives as a
     parameter fact from [call], and the message names the chain. *)
  check_fires ~rule:"w1" ~file:"wt_flow_sink.ml" ~line:7
    ~contains:"Wt_flow_sink.helper arg 1" ()

let test_flow_guarded_field () =
  (* Access-path guard [f.len < Bytes.length f.payload] sanitizes the
     field read inside the branch. *)
  check_silent ~rule:"w1" ~file:"wt_flow_sink.ml" ~line:11 ()

(* ------------------------------ counts ----------------------------- *)

let test_exact_counts () =
  let per pred = List.length (List.filter pred (findings ())) in
  let active rule (f : Lint.finding) = f.rule = rule && not f.suppressed in
  List.iter
    (fun (rule, n) ->
      Alcotest.(check int) ("active findings for " ^ rule) n (per (active rule)))
    [ ("w1", 5); ("w2", 1); ("w3", 2); ("w4", 2) ];
  Alcotest.(check int) "suppressed findings" 4 (per (fun f -> f.suppressed));
  Alcotest.(check int) "total findings" 14 (List.length (findings ()));
  Alcotest.(check bool) "all fixture modules scanned" true
    (snd (Lazy.force result) >= 7)

let suite =
  [
    Alcotest.test_case "w1 fires on a wire-tainted index" `Quick test_w1_index;
    Alcotest.test_case "w1 suppression" `Quick test_w1_suppressed;
    Alcotest.test_case "w1 silent under a dominating guard" `Quick test_w1_guarded;
    Alcotest.test_case "w2 fires on a wire-tainted allocation" `Quick test_w2_alloc;
    Alcotest.test_case "w2 suppression" `Quick test_w2_suppressed;
    Alcotest.test_case "w2 silent under min-clamp" `Quick test_w2_min_clamped;
    Alcotest.test_case "w3 fires on a for-loop bound" `Quick test_w3_for_bound;
    Alcotest.test_case "w3 fires on a ~count argument" `Quick test_w3_count_label;
    Alcotest.test_case "w3 suppression" `Quick test_w3_suppressed;
    Alcotest.test_case "w3 silent under a dominating guard" `Quick test_w3_guarded;
    Alcotest.test_case "w4 fires on ledger accumulation" `Quick test_w4_ledger_add;
    Alcotest.test_case "w4 fires on slice math" `Quick test_w4_slice_math;
    Alcotest.test_case "w4 suppression" `Quick test_w4_suppressed;
    Alcotest.test_case "w4 silent under Float.min" `Quick test_w4_float_min_clamped;
    Alcotest.test_case "sanitizer: dominating guard" `Quick test_sanitize_dominating_guard;
    Alcotest.test_case "sanitizer: use after guard still fires" `Quick test_sanitize_use_after_guard;
    Alcotest.test_case "sanitizer: indirect boolean not chased" `Quick test_sanitize_indirect_boolean;
    Alcotest.test_case "cross-module field fact" `Quick test_flow_field_fact;
    Alcotest.test_case "cross-module parameter fact" `Quick test_flow_param_fact;
    Alcotest.test_case "cross-module guarded field" `Quick test_flow_guarded_field;
    Alcotest.test_case "exact finding counts" `Quick test_exact_counts;
  ]
