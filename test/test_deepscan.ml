(** Deepscan fixture suite.

    [deepscan_fixtures/] holds one deliberately-violating module per
    deep rule, each paired with a [[@colibri.allow]]-suppressed twin.
    The suite proves three things: every rule D1..D5 fires at its known
    location, every suppression silences exactly its twin, and the
    cross-module D1 case (a hot root in [D1_router] whose allocation
    lives in [D1_alloc_helper]) is invisible to the token-level R7 rule
    while the interprocedural closure pins it. Tests run from
    [_build/default/test], where dune has built the fixture library's
    [.cmt] files next to its copied sources. *)

let result = lazy (Deepscan.scan [ "deepscan_fixtures" ])
let findings () = fst (Lazy.force result)
let base (f : Lint.finding) = Filename.basename f.file

let find_at ~rule ~file ~line =
  List.filter
    (fun (f : Lint.finding) -> f.rule = rule && base f = file && f.line = line)
    (findings ())

let check_fires ?contains ~rule ~file ~line () =
  let hits = find_at ~rule ~file ~line in
  Alcotest.(check bool)
    (Printf.sprintf "[%s] fires at %s:%d" rule file line)
    true (hits <> []);
  match contains with
  | None -> ()
  | Some affix ->
      Alcotest.(check bool)
        (Printf.sprintf "finding at %s:%d mentions %S" file line affix)
        true
        (List.exists
           (fun (f : Lint.finding) -> Astring.String.is_infix ~affix f.message)
           hits)

let check_silent ~rule ~file ~line () =
  Alcotest.(check int)
    (Printf.sprintf "[%s] stays silent at %s:%d" rule file line)
    0
    (List.length (find_at ~rule ~file ~line))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_d1_cross_module () =
  (* The allocation is reported in the helper's file, with the chain
     that reached it from the marked hot root in the other module. *)
  check_fires ~rule:"d1" ~file:"d1_alloc_helper.ml" ~line:6
    ~contains:"via D1_router.forward -> D1_alloc_helper.alloc_payload" ()

let test_d1_suppressed () = check_silent ~rule:"d1" ~file:"d1_alloc_helper.ml" ~line:8 ()

let test_r7_cannot_see_it () =
  (* Neither file trips the token rule on its own: the router module
     has markers but no allocation tokens, the helper has allocation
     tokens but no markers. Only the closure connects them. *)
  List.iter
    (fun path ->
      let r7 =
        List.filter
          (fun (f : Lint.finding) -> f.rule = "hot-path-alloc")
          (Lint.lint_source ~path ~in_lib:false (read_file path))
      in
      Alcotest.(check int) (path ^ ": no token-level hot-path-alloc") 0 (List.length r7))
    [ "deepscan_fixtures/d1_router.ml"; "deepscan_fixtures/d1_alloc_helper.ml" ]

let test_d2_direct () = check_fires ~rule:"d2" ~file:"d2_exn.ml" ~line:5 ~contains:"List.hd" ()

let test_d2_via_helper () =
  check_fires ~rule:"d2" ~file:"d2_exn.ml" ~line:9
    ~contains:"via D2_exn.via_helper -> D2_exn.pick" ()

let test_d2_suppressed () = check_silent ~rule:"d2" ~file:"d2_exn.ml" ~line:15 ()

let test_d3_equal () = check_fires ~rule:"d3" ~file:"d3_poly.ml" ~line:6 ~contains:"[=]" ()
let test_d3_compare () = check_fires ~rule:"d3" ~file:"d3_poly.ml" ~line:8 ~contains:"[compare]" ()

let test_d3_hash_tuple () =
  (* The router's old dispatch form: [Hashtbl.hash (len, b)] hashes a
     freshly-built tuple polymorphically. The live dispatch path uses
     [Dataplane_shard.dispatch_mix]; this pins that the old form would
     still be caught if it came back. *)
  check_fires ~rule:"d3" ~file:"d3_poly.ml" ~line:19 ~contains:"[Hashtbl.hash]" ()

let test_d3_immediate_clean () = check_silent ~rule:"d3" ~file:"d3_poly.ml" ~line:10 ()
let test_d3_suppressed () = check_silent ~rule:"d3" ~file:"d3_poly.ml" ~line:12 ()

let test_d4_global () =
  check_fires ~rule:"d4" ~file:"d4_shard_state.ml" ~line:9 ~contains:"D4_shard_state.hits" ()

let test_d4_suppressed () = check_silent ~rule:"d4" ~file:"d4_shard_state.ml" ~line:12 ()

let test_d5_branch () =
  check_fires ~rule:"d5" ~file:"d5_taint.ml" ~line:6 ~contains:"constant time" ()

let test_d5_sanitized_and_suppressed () =
  List.iter (fun line -> check_silent ~rule:"d5" ~file:"d5_taint.ml" ~line ()) [ 9; 13 ]

let test_exact_counts () =
  (* Each fixture contains exactly one firing violation per listed
     rule occurrence — any extra finding is a false positive. *)
  let per rule =
    List.length (List.filter (fun (f : Lint.finding) -> f.rule = rule) (findings ()))
  in
  List.iter
    (fun (rule, n) -> Alcotest.(check int) ("findings for " ^ rule) n (per rule))
    [ ("d1", 1); ("d2", 2); ("d3", 3); ("d4", 1); ("d5", 1) ];
  Alcotest.(check int) "total findings" 8 (List.length (findings ()));
  Alcotest.(check bool) "all fixture modules scanned" true (snd (Lazy.force result) >= 6)

let suite =
  [
    Alcotest.test_case "d1 fires across modules" `Quick test_d1_cross_module;
    Alcotest.test_case "d1 suppression" `Quick test_d1_suppressed;
    Alcotest.test_case "token R7 misses the cross-module case" `Quick test_r7_cannot_see_it;
    Alcotest.test_case "d2 fires on a direct partial call" `Quick test_d2_direct;
    Alcotest.test_case "d2 fires through a local helper" `Quick test_d2_via_helper;
    Alcotest.test_case "d2 suppression" `Quick test_d2_suppressed;
    Alcotest.test_case "d3 fires on [=] at a record" `Quick test_d3_equal;
    Alcotest.test_case "d3 fires on [compare]" `Quick test_d3_compare;
    Alcotest.test_case "d3 fires on the old tuple dispatch hash" `Quick test_d3_hash_tuple;
    Alcotest.test_case "d3 ignores immediate types" `Quick test_d3_immediate_clean;
    Alcotest.test_case "d3 suppression" `Quick test_d3_suppressed;
    Alcotest.test_case "d4 fires on a shared shard global" `Quick test_d4_global;
    Alcotest.test_case "d4 suppression" `Quick test_d4_suppressed;
    Alcotest.test_case "d5 fires on branching on a digest" `Quick test_d5_branch;
    Alcotest.test_case "d5 sanitizer and suppression stay clean" `Quick
      test_d5_sanitized_and_suppressed;
    Alcotest.test_case "exact finding counts" `Quick test_exact_counts;
  ]
