(** Tests for the distributed CServ (Appendix D) and the data-plane
    sharding used for multi-core scaling (Fig. 6). *)

open Colibri_types
open Colibri

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let asn n = Ids.asn ~isd:1 ~num:n
let key src id : Ids.res_key = { src_as = asn src; res_id = id }

let capacity _ = gbps 10.

let segr_of ingress id : Ids.res_key = { src_as = asn (100 + ingress); res_id = id }

(* Mirror a workload into a monolithic Admission.Eer and a Distributed
   service; decisions must coincide. *)
let decisions_match () =
  let mono = Admission.Eer.create () in
  let dist = Distributed.create ~capacity () in
  let rng = Random.State.make [| 5 |] in
  let mismatches = ref 0 in
  for i = 1 to 2000 do
    let ingress = 1 + Random.State.int rng 4 in
    let segr = segr_of ingress (1 + Random.State.int rng 3) in
    let flow = key (Random.State.int rng 50) i in
    let demand = mbps (1. +. Random.State.float rng 99.) in
    let m =
      Admission.Eer.admit mono ~key:flow ~version:1 ~segrs:[ (segr, gbps 1.) ]
        ~via_up:None ~demand ~exp_time:16. ~now:0.
    in
    let d =
      Distributed.admit_eer dist ~key:flow ~version:1 ~segrs:[ (segr, gbps 1.) ]
        ~via_up:None ~segr_ingress:ingress ~demand ~exp_time:16. ~now:0.
    in
    let same =
      match (m, d) with
      | Admission.Granted a, Admission.Granted b -> Bandwidth.equal a b
      | Admission.Denied _, Admission.Denied _ -> true
      | _ -> false
    in
    if not same then incr mismatches
  done;
  Alcotest.(check int) "identical decisions" 0 !mismatches

let load_spreads_across_sub_services () =
  let dist = Distributed.create ~capacity () in
  for ingress = 1 to 4 do
    for i = 1 to 100 do
      ignore
        (Distributed.admit_eer dist
           ~key:(key ingress ((ingress * 1000) + i))
           ~version:1
           ~segrs:[ (segr_of ingress 1, gbps 10.) ]
           ~via_up:None ~segr_ingress:ingress ~demand:(mbps 1.) ~exp_time:16.
           ~now:0.)
    done
  done;
  let services = Distributed.ingress_services dist in
  Alcotest.(check int) "one sub-service per ingress" 4 (List.length services);
  List.iter
    (fun (iface, handled) ->
      Alcotest.(check int) (Printf.sprintf "iface %d handled its share" iface) 100 handled)
    services

let same_segr_pinned_to_one_service () =
  (* The balancer requirement: all EEReqs over the same SegR go to the
     same sub-service even if the claimed ingress differs. *)
  let dist = Distributed.create ~capacity () in
  let segr = segr_of 1 7 in
  ignore
    (Distributed.admit_eer dist ~key:(key 1 1) ~version:1 ~segrs:[ (segr, mbps 100.) ]
       ~via_up:None ~segr_ingress:1 ~demand:(mbps 60.) ~exp_time:16. ~now:0.);
  (* Second request over the same SegR: must see the existing 60 Mbps
     allocation (i.e., land on the same sub-service) and be denied. *)
  match
    Distributed.admit_eer dist ~key:(key 2 2) ~version:1 ~segrs:[ (segr, mbps 100.) ]
      ~via_up:None ~segr_ingress:2 (* lying/ambiguous ingress *)
      ~demand:(mbps 60.) ~exp_time:16. ~now:0.
  with
  | Admission.Denied _ -> ()
  | Admission.Granted _ -> Alcotest.fail "accounting split across sub-services"

let coordinator_handles_segreqs () =
  let dist = Distributed.create ~capacity () in
  let req : Backends.Backend_intf.seg_request =
    {
      key = key 1 1;
      version = 1;
      src = asn 1;
      ingress = 1;
      egress = 2;
      demand = gbps 1.;
      min_bw = mbps 1.;
      exp_time = 300.;
    }
  in
  match Distributed.admit_seg dist ~req ~now:0. with
  | Admission.Granted _ -> ()
  | Admission.Denied _ -> Alcotest.fail "coordinator refused a trivial SegR"

(* ---------- Data-plane sharding ---------- *)

let clock () = 0.

let mk_eer res_id : Reservation.eer =
  {
    key = { src_as = asn 1; res_id };
    path =
      [
        Path.hop ~asn:(asn 1) ~ingress:0 ~egress:1;
        Path.hop ~asn:(asn 2) ~ingress:1 ~egress:0;
      ];
    src_host = Ids.host 1;
    dst_host = Ids.host 2;
    segr_keys = [];
    versions = [];
  }

let version : Reservation.version = { version = 1; bw = mbps 100.; exp_time = 1000. }

let register_n (sg : Dataplane_shard.Sharded_gateway.t) n =
  for res_id = 1 to n do
    let eer = mk_eer res_id in
    eer.versions <- [ version ];
    match
      Dataplane_shard.Sharded_gateway.register sg ~eer ~version
        ~sigmas:[ Bytes.make 16 'a'; Bytes.make 16 'b' ]
    with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done

let sharded_gateway_routes_correctly () =
  let sg = Dataplane_shard.Sharded_gateway.create ~clock ~shards:4 (asn 1) in
  register_n sg 100;
  Alcotest.(check int) "all registered" 100
    (Dataplane_shard.Sharded_gateway.reservation_count sg);
  (* Every reservation reachable through the sharded send. *)
  for res_id = 1 to 100 do
    match Dataplane_shard.Sharded_gateway.send sg ~res_id ~payload_len:100 with
    | Ok (pkt, _) -> Alcotest.(check int) "right reservation" res_id pkt.Packet.res_info.res_id
    | Error e -> Alcotest.failf "send %d failed: %a" res_id Gateway.pp_drop_reason e
  done

let sharded_gateway_balanced () =
  let sg = Dataplane_shard.Sharded_gateway.create ~clock ~shards:8 (asn 1) in
  register_n sg 8000;
  let lo, hi = Dataplane_shard.Sharded_gateway.balance sg in
  Alcotest.(check bool) (Printf.sprintf "balanced (%d..%d)" lo hi) true
    (lo > 700 && hi < 1300)

let sharded_gateway_shared_nothing () =
  (* A reservation lives in exactly one shard: removing the others'
     state cannot affect it — verified by sending through the computed
     shard directly. *)
  let sg = Dataplane_shard.Sharded_gateway.create ~clock ~shards:4 (asn 1) in
  register_n sg 16;
  for res_id = 1 to 16 do
    let hits = ref 0 in
    for s = 0 to 3 do
      match
        Gateway.send (Dataplane_shard.Sharded_gateway.shard sg s) ~res_id ~payload_len:10
      with
      | Ok _ -> incr hits
      | Error _ -> ()
    done;
    Alcotest.(check int) (Printf.sprintf "res %d in exactly one shard" res_id) 1 !hits
  done

let suite =
  [
    Alcotest.test_case "decisions match monolithic CServ" `Quick decisions_match;
    Alcotest.test_case "load spreads across sub-services" `Quick load_spreads_across_sub_services;
    Alcotest.test_case "same SegR pinned to one service" `Quick same_segr_pinned_to_one_service;
    Alcotest.test_case "coordinator handles SegReqs" `Quick coordinator_handles_segreqs;
    Alcotest.test_case "sharded gateway routes correctly" `Quick sharded_gateway_routes_correctly;
    Alcotest.test_case "sharded gateway balanced" `Quick sharded_gateway_balanced;
    Alcotest.test_case "sharded gateway shared-nothing" `Quick sharded_gateway_shared_nothing;
  ]
