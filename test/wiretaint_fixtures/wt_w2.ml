(* w2: wire-tainted allocation sizes. *)

let fire (b : Bytes.t) =
  let n = Bytes.get_uint16_be b 0 in
  Bytes.create n

let suppressed (b : Bytes.t) =
  let n = Bytes.get_uint16_be b 0 in
  Bytes.create n
[@@colibri.allow "w2"]

let clamped (b : Bytes.t) =
  let n = Bytes.get_uint16_be b 0 in
  Bytes.create (min n 4096)
