(* w3: wire-tainted loop bounds and ~count parameters. *)

let repeat ~count x = List.init (min count 8) (fun _ -> x)

let fire (b : Bytes.t) =
  let n = Bytes.get_uint16_be b 0 in
  let s = ref 0 in
  for i = 0 to n do
    s := !s + i
  done;
  !s

let labeled_fire (b : Bytes.t) =
  let n = Bytes.get_uint16_be b 0 in
  repeat ~count:n 'x'

let suppressed (b : Bytes.t) =
  let n = Bytes.get_uint16_be b 0 in
  let s = ref 0 in
  for i = 0 to n do
    s := !s + i
  done;
  !s
[@@colibri.allow "w3"]

let guarded (b : Bytes.t) =
  let n = Bytes.get_uint16_be b 0 in
  if n < 16 then repeat ~count:n 'x' else []
