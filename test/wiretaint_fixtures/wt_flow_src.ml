(* Source half of the cross-module interprocedural fixtures: the
   taint is created here; every sink lives in [Wt_flow_sink]. *)

type frame = { mutable len : int; payload : Bytes.t }

let parse (b : Bytes.t) : frame = { len = Bytes.get_uint16_be b 0; payload = b }
let read_len (b : Bytes.t) : int = Bytes.get_uint16_be b 2
