(* Sanitizer recognition: what the guard analysis accepts and what it
   deliberately rejects (DESIGN.md §13). [dominated] is the blessed
   idiom. [after_if] guards one use but then touches the index again
   outside the conditional; [indirect] launders the comparison through
   a boolean binding the path-based matcher does not chase. Both must
   keep firing. *)

let dominated (b : Bytes.t) =
  let i = Bytes.get_uint16_be b 0 in
  if 0 <= i && i < Bytes.length b then Bytes.get b i else '\000'

let after_if (b : Bytes.t) =
  let i = Bytes.get_uint16_be b 0 in
  if i < Bytes.length b then ignore (Bytes.get b i);
  Bytes.get b i

let indirect (b : Bytes.t) =
  let i = Bytes.get_uint16_be b 0 in
  let ok = i < Bytes.length b in
  if ok then Bytes.get b i else '\000'
