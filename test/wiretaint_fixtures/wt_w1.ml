(* w1: wire-tainted byte indexing. *)

let fire (b : Bytes.t) =
  let i = Bytes.get_uint16_be b 0 in
  Bytes.get b i

let suppressed (b : Bytes.t) =
  let i = Bytes.get_uint16_be b 0 in
  Bytes.get b i
[@@colibri.allow "w1"]

let guarded (b : Bytes.t) =
  let i = Bytes.get_uint16_be b 0 in
  if i < Bytes.length b then Bytes.get b i else '\000'
