(* Sink half: nothing here calls a wire getter directly. The taint
   arrives through [Wt_flow_src.frame.len] (a record-field fact) and
   through [helper]'s second argument (a parameter fact created at
   [call]'s call site) — a per-function pass would see nothing. *)

let use_field (f : Wt_flow_src.frame) = Bytes.get f.payload f.len
let helper (b : Bytes.t) (i : int) = Bytes.get b i
let call (b : Bytes.t) = helper b (Wt_flow_src.read_len b)

let guarded_field (f : Wt_flow_src.frame) =
  if f.len < Bytes.length f.payload then Bytes.get f.payload f.len else '\000'
