(* w4: wire-tainted ledger accumulation and float->int slice math.
   [Cell_acc] mimics the ntube accumulator-functor shape so the
   Acc-family sink entry is exercised by name. *)

module Cell_acc = struct
  let t : (int, float) Hashtbl.t = Hashtbl.create 16
  let get tbl k = try Hashtbl.find tbl k with Not_found -> 0.
  let add tbl k dv = Hashtbl.replace tbl k (get tbl k +. dv)
end

let fire (b : Bytes.t) =
  let bw = Int64.to_float (Bytes.get_int64_be b 0) in
  Cell_acc.add Cell_acc.t 1 bw

let slice_fire (b : Bytes.t) =
  let ts = Int64.to_float (Bytes.get_int64_be b 0) in
  int_of_float (ts /. 4.)

let suppressed (b : Bytes.t) =
  let ts = Int64.to_float (Bytes.get_int64_be b 0) in
  int_of_float (ts /. 4.)
[@@colibri.allow "w4"]

let clamped (b : Bytes.t) =
  let ts = Int64.to_float (Bytes.get_int64_be b 0) in
  int_of_float (Float.min ts 1e6)
