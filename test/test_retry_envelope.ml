(** Regression pinning retry non-amplification in the clean case.

    The renewal-storm attack scenario ([@attack], scenario c) bounds
    control-message amplification {e under attack} relative to a clean
    run. This suite pins the clean-side envelope itself: under plain
    5% per-link loss — no crashes, no flaps, no synchronized storms —
    the retry layer must not amplify, i.e. the message cost per setup
    stays within a small constant of the lossless walk cost:

    - every attempt costs at most [2n] messages for an [n]-hop path
      (forward pass + backward pass, one message per link);
    - attempts per request stay within the [max_attempts] budget;
    - the {e average} messages per request stay near the lossless cost
      (at 5% loss the expected attempts per walk are ≈ 1.5, nowhere
      near the budget ceiling);
    - the run drains: accounting closes, no pending requests, no
      leaked admission state.

    Deterministic: fixed topology, fixed fault seed, fixed retry seed. *)

open Colibri_types
open Colibri_topology
open Colibri

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

let counter_value (snap : Obs.snapshot) (name : string) : int =
  let rec go = function
    | [] -> 0
    | (n, Obs.Counter v) :: _ when String.equal n name -> v
    | _ :: rest -> go rest
  in
  go snap

let clean_case_envelope () =
  let n = 4 in
  let topo = Topology_gen.linear ~n ~capacity:(gbps 100.) in
  let d = Deployment.create topo in
  let faults = Net.Fault.create ~seed:7 () in
  Net.Fault.set_default faults (Net.Fault.plan ~loss:0.05 ~jitter:0.001 ());
  Deployment.attach_network ~faults ~retry_seed:49 d;
  let path = Topology_gen.linear_path ~n in
  let total = 40 in
  let ok = ref 0 in
  for _ = 1 to total do
    match
      Deployment.setup_segr_sync d ~path ~kind:Reservation.Core
        ~max_bw:(mbps 100.) ~min_bw:(mbps 1.)
    with
    | Ok _ -> incr ok
    | Error _ -> ()
  done;
  Deployment.advance d 120.;
  let snap = Obs.Registry.snapshot (Deployment.network_metrics d) in
  let requests = counter_value snap "retry_requests_total" in
  let attempts = counter_value snap "retry_attempts_total" in
  let cn = Deployment.control_net d in
  let sent = Control_net.sent_count cn in
  (* The retry layer also issues cleanup/teardown requests for walks
     that lost a reply, so requests may slightly exceed the setups —
     but never fall below them. *)
  Alcotest.(check bool)
    (Printf.sprintf "requests %d cover the %d setups" requests total)
    true
    (requests >= total && requests <= total * 2);
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d setups succeeded" !ok total)
    true
    (!ok >= total - 1);
  (* Hard budget: the retry layer never spends more than its
     per-request allowance. *)
  let budget = Retry.default_policy.Retry.max_attempts in
  Alcotest.(check bool)
    (Printf.sprintf "attempts %d ≤ %d × budget %d" attempts requests budget)
    true
    (attempts <= requests * budget);
  (* Per-attempt message bound: forward + backward, one msg per link. *)
  let attempt_msg_bound = 2 * n in
  Alcotest.(check bool)
    (Printf.sprintf "sent %d ≤ attempts %d × %d" sent attempts
       attempt_msg_bound)
    true
    (sent <= attempts * attempt_msg_bound);
  (* The non-amplification envelope: at 5% per-link loss a walk
     retries rarely (expected ≈ 1.5 attempts), so the average message
     cost per setup stays below twice the lossless walk cost — far
     from the budget ceiling of budget × 2n. *)
  let per_req = float_of_int sent /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f msgs/setup ≤ %d (2 lossless walks)" per_req
       (2 * attempt_msg_bound))
    true
    (per_req <= float_of_int (2 * attempt_msg_bound));
  (* And the run drains completely. *)
  Alcotest.(check int) "accounting closes" sent
    (Control_net.delivered_count cn + Control_net.lost_count cn);
  Alcotest.(check int) "no pending requests" 0
    (Retry.pending (Deployment.retrier d));
  Alcotest.(check int) "no leaked admission state" 0
    (List.length (Deployment.audit_all d))

let suite =
  [
    Alcotest.test_case "clean case: 5% loss stays in the retry envelope"
      `Quick clean_case_envelope;
  ]
