(* Cross-module D6 state: mutable instruments typed from lib/obs.
   [hits] is shared by [D6_cross]; [reg] stays module-local (only the
   orchestrating side touches it), so only [hits] gets the finding. *)
let reg = Obs.Registry.create ()
let hits = Obs.Registry.counter reg "fixture_hits"
