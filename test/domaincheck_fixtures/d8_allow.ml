(* D8 suppressed twins: the same two-producer and alias-after-push
   shapes as [D8_fire], silenced site by site. *)
let ring : int Par.Spsc_ring.t = Par.Spsc_ring.create ~dummy:0 8

let go () =
  let a = Domain.spawn (fun () -> (Par.Spsc_ring.push_spin ring 1 [@colibri.allow "d8"])) in
  let b = Domain.spawn (fun () -> (Par.Spsc_ring.push_spin ring 2 [@colibri.allow "d8"])) in
  Domain.join a;
  Domain.join b

let bufring : bytes Par.Spsc_ring.t = Par.Spsc_ring.create ~dummy:Bytes.empty 8

let alias_after_push () =
  let b = Bytes.create 4 in
  Par.Spsc_ring.push_spin bufring b;
  (Bytes.set b 0 'x' [@colibri.allow "d8"])

let batchring : int Par.Spsc_ring.t = Par.Spsc_ring.create ~dummy:0 8

let two_batch_consumers () =
  let a = Domain.spawn (fun () -> ignore (Par.Spsc_ring.pop_into batchring (Array.make 4 0) ~pos:0 ~len:4 [@colibri.allow "d8"])) in
  let b = Domain.spawn (fun () -> ignore (Par.Spsc_ring.pop_into batchring (Array.make 4 0) ~pos:0 ~len:4 [@colibri.allow "d8"])) in
  Domain.join a;
  Domain.join b
