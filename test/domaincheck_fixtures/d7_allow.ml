(* D7 suppressed twin: the def-site [@@colibri.allow "d6 d7"] covers
   every access site — the owner reviewed the sharing once, at the
   value. *)
let total = ref 0 [@@colibri.allow "d6 d7"]

let worker () = incr total

let go () =
  let d = Domain.spawn worker in
  total := !total + 1;
  Domain.join d
