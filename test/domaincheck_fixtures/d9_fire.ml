(* D9 fire: blocking primitives inside [@colibri.hot] spawn closures.
   The first closure blocks directly; the second reaches the mutex
   through a helper — only the interprocedural closure connects
   them. *)
let m = Mutex.create ()

let go () =
  let d = Domain.spawn ((fun () -> Mutex.lock m; Mutex.unlock m) [@colibri.hot]) in
  Domain.join d

let pause () =
  Mutex.lock m;
  Mutex.unlock m

let go_via_helper () =
  let d = Domain.spawn ((fun () -> pause ()) [@colibri.hot]) in
  Domain.join d
