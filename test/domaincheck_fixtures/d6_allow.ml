(* D6 suppressed twin: same sharing as [D6_fire.hits], silenced by a
   def-site [@@colibri.allow]. The finding is still exported in
   [--json] with [suppressed = true] for the suppression review. *)
let hits = ref 0 [@@colibri.allow "d6"]

let go () =
  let a = Domain.spawn (fun () -> incr hits) in
  let b = Domain.spawn (fun () -> incr hits) in
  Domain.join a;
  Domain.join b
