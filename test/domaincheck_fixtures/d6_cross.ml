(* Cross-module D6: [D6_state.hits] (an Obs counter, mutable state
   typed from lib/obs) is incremented both inside a spawn closure and
   on the spawning side. The D6 finding lands at the definition in
   d6_state.ml; both access sites here get D7 (deepscan's D4 cannot
   see an Obs counter, so no dedup applies). *)
let go () =
  let d = Domain.spawn (fun () -> Obs.Counter.incr D6_state.hits) in
  Obs.Counter.incr D6_state.hits;
  Domain.join d
