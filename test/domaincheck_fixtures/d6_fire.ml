(* D6 fire: [hits] is module-level mutable state incremented from two
   spawned domains; the definition gets the finding. The access sites
   belong to deepscan's D4 (spawn-closure shard roots), so
   domaincheck's D7 must NOT double-report them. *)
let hits = ref 0

let go () =
  let a = Domain.spawn (fun () -> incr hits) in
  let b = Domain.spawn (fun () -> incr hits) in
  Domain.join a;
  Domain.join b

(* D6 fire (captured): a local buffer captured by a spawn closure
   while the spawning side keeps using it. *)
let spawn_captured () =
  let buf = Buffer.create 16 in
  let d = Domain.spawn (fun () -> Buffer.add_char buf 'x') in
  Buffer.add_char buf 'y';
  Domain.join d;
  Buffer.length buf
