(* D7 fire, and the D4/D7 dedup boundary: [total]'s D6 is reviewed
   (suppressed at the definition), but its access sites remain racy.
   The worker-side increment is already reported by deepscan's D4
   (named spawn target), so domaincheck must drop its D7 there; the
   orchestrator-side read-modify-write below is invisible to D4 and
   must carry the D7. *)
let total = ref 0 [@@colibri.allow "d6"]

let worker () = incr total

let go () =
  let d = Domain.spawn worker in
  total := !total + 1;
  Domain.join d
