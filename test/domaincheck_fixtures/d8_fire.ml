(* D8 fire (endpoints): [ring] is pushed from two spawned domains —
   an SPSC ring owns exactly one producer endpoint. *)
let ring : int Par.Spsc_ring.t = Par.Spsc_ring.create ~dummy:0 8

let go () =
  let a = Domain.spawn (fun () -> Par.Spsc_ring.push_spin ring 1) in
  let b = Domain.spawn (fun () -> Par.Spsc_ring.push_spin ring 2) in
  Domain.join a;
  Domain.join b

(* D8 fire (alias after push): once pushed, the buffer belongs to the
   consumer; the producer touching it afterwards is a violation. *)
let bufring : bytes Par.Spsc_ring.t = Par.Spsc_ring.create ~dummy:Bytes.empty 8

let alias_after_push () =
  let b = Bytes.create 4 in
  Par.Spsc_ring.push_spin bufring b;
  Bytes.set b 0 'x'
