(* D8 fire (endpoints): [ring] is pushed from two spawned domains —
   an SPSC ring owns exactly one producer endpoint. *)
let ring : int Par.Spsc_ring.t = Par.Spsc_ring.create ~dummy:0 8

let go () =
  let a = Domain.spawn (fun () -> Par.Spsc_ring.push_spin ring 1) in
  let b = Domain.spawn (fun () -> Par.Spsc_ring.push_spin ring 2) in
  Domain.join a;
  Domain.join b

(* D8 fire (alias after push): once pushed, the buffer belongs to the
   consumer; the producer touching it afterwards is a violation. *)
let bufring : bytes Par.Spsc_ring.t = Par.Spsc_ring.create ~dummy:Bytes.empty 8

let alias_after_push () =
  let b = Bytes.create 4 in
  Par.Spsc_ring.push_spin bufring b;
  Bytes.set b 0 'x'

(* D8 fire (batched endpoints): the batch transfer ops bind ring
   endpoints exactly like their element-wise counterparts — two
   domains popping [batchring] via [pop_into] is a violation. *)
let batchring : int Par.Spsc_ring.t = Par.Spsc_ring.create ~dummy:0 8

let two_batch_consumers () =
  let a = Domain.spawn (fun () -> ignore (Par.Spsc_ring.pop_into batchring (Array.make 4 0) ~pos:0 ~len:4)) in
  let b = Domain.spawn (fun () -> ignore (Par.Spsc_ring.pop_into batchring (Array.make 4 0) ~pos:0 ~len:4)) in
  Domain.join a;
  Domain.join b

(* NOT a violation: [push_n] copies the elements out, so the source
   array stays with the producer and refilling it between pushes is
   the intended batched idiom — alias-after-push must stay silent. *)
let srcring : int Par.Spsc_ring.t = Par.Spsc_ring.create ~dummy:0 8

let refill_between_pushes () =
  let src = Array.make 4 1 in
  ignore (Par.Spsc_ring.push_n srcring src ~pos:0 ~len:4);
  src.(0) <- 2;
  ignore (Par.Spsc_ring.push_n srcring src ~pos:0 ~len:4)
