(* D9 suppressed twin: a reviewed block inside a hot closure. *)
let m = Mutex.create ()

let go () =
  let d =
    Domain.spawn
      ((fun () ->
         (Mutex.lock m [@colibri.allow "d9"]);
         Mutex.unlock m)
      [@colibri.hot])
  in
  Domain.join d
