(** IntServ/RSVP-style baseline (§1, §8): per-flow end-to-end
    reservations with {e per-flow state on every router} and admission
    that consults that state — the scalability and security
    counterpoint Colibri is measured against. Admission walks the flow
    list (O(#flows), see the ablation bench); forwarding classifies by
    an {e unauthenticated} flow id, so spoofing succeeds. *)

open Colibri_types

type flow_id = { src : int; dst : int }

type flow_state = {
  id : flow_id;
  bw : Bandwidth.t;
  exp_time : Timebase.t;
  mutable bytes_forwarded : int;
}

type t

val create : capacity:Bandwidth.t -> ?share:float -> unit -> t
val flow_count : t -> int

val committed : t -> now:Timebase.t -> Bandwidth.t
(** Sum of live reservations; expires soft state on the way
    (deliberately O(#flows)). *)

val admit :
  t -> id:flow_id -> bw:Bandwidth.t -> exp_time:Timebase.t -> now:Timebase.t ->
  [ `Admitted | `Rejected ]

val remove : t -> id:flow_id -> unit
(** Teardown (RSVP ResvTear): drop one flow's state — O(#flows), a
    no-op on unknown ids. *)

val classify : t -> id:flow_id -> flow_state option
(** Find the packet's flow — the claimed id is taken at face value. *)

val forward : t -> id:flow_id -> bytes:int -> [ `Reserved | `Best_effort ]

val state_bytes : t -> int
(** Router memory consumed by per-flow state — the scaling obstacle
    Colibri removes (Table 1). *)
