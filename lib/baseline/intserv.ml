(** IntServ/RSVP-style baseline (§1, §8).

    The archetype of strong-guarantee reservation systems: per-flow
    end-to-end reservations signaled hop by hop, with {e per-flow state
    on every on-path router} and admission decisions that consult that
    state. This module reproduces the two properties Colibri is
    measured against:

    - {e control plane}: admission walks the interface's flow list, so
      its cost grows linearly with the number of installed
      reservations (the ablation bench quantifies this against
      Colibri's constant-time admission);
    - {e data plane}: forwarding needs a per-flow classifier lookup and
      the router's memory grows with the flow count — and nothing
      authenticates the flow identifier, so any sender can claim an
      installed reservation (no defense against spoofing, §8 "RSVP
      ... designed without any security considerations"). *)

open Colibri_types

type flow_id = { src : int; dst : int } (* 5-tuple stand-in *)

type flow_state = {
  id : flow_id;
  bw : Bandwidth.t;
  exp_time : Timebase.t;
  mutable bytes_forwarded : int;
}

(** One router's reservation table for one outgoing interface. *)
type t = {
  capacity : Bandwidth.t;
  share : float; (* fraction of capacity reservable *)
  mutable flows : flow_state list; (* per-flow state, scanned linearly *)
  mutable flow_count : int;
}

let create ~(capacity : Bandwidth.t) ?(share = 0.8) () : t =
  { capacity; share; flows = []; flow_count = 0 }

let flow_count (t : t) = t.flow_count

(* The deliberate O(n): classic RSVP soft state requires walking the
   flow list to expire stale entries and sum committed bandwidth. *)
let committed (t : t) ~(now : Timebase.t) : Bandwidth.t =
  t.flows <- List.filter (fun f -> now < f.exp_time) t.flows;
  t.flow_count <- List.length t.flows;
  List.fold_left (fun acc f -> Bandwidth.add acc f.bw) Bandwidth.zero t.flows

(** RSVP-style admission: sum all existing flows, admit if the new one
    fits. O(#flows) per decision. *)
let admit (t : t) ~(id : flow_id) ~(bw : Bandwidth.t) ~(exp_time : Timebase.t)
    ~(now : Timebase.t) : [ `Admitted | `Rejected ] =
  let used = committed t ~now in
  let cap = Bandwidth.scale t.share t.capacity in
  if Bandwidth.(add used bw <= cap) then begin
    t.flows <- { id; bw; exp_time; bytes_forwarded = 0 } :: t.flows;
    t.flow_count <- t.flow_count + 1;
    `Admitted
  end
  else `Rejected

(** Data-plane classification: find the packet's flow; the claimed
    [id] is taken at face value — there is no cryptographic binding,
    so spoofed packets match an honest flow's reservation. *)
let equal_flow_id (a : flow_id) (b : flow_id) = a.src = b.src && a.dst = b.dst

let classify (t : t) ~(id : flow_id) : flow_state option =
  List.find_opt (fun f -> equal_flow_id f.id id) t.flows

(** Teardown (RSVP ResvTear): drop one flow's state. Like everything
    else here it walks the list — O(#flows) — and is a no-op on
    unknown ids. *)
let remove (t : t) ~(id : flow_id) =
  t.flows <- List.filter (fun f -> not (equal_flow_id f.id id)) t.flows;
  t.flow_count <- List.length t.flows

let forward (t : t) ~(id : flow_id) ~(bytes : int) : [ `Reserved | `Best_effort ] =
  match classify t ~id with
  | Some f ->
      f.bytes_forwarded <- f.bytes_forwarded + bytes;
      `Reserved
  | None -> `Best_effort

(** Router memory consumed by per-flow state, the scaling obstacle
    Colibri removes (Table 1, "Per-flow state in the fast path"). *)
let state_bytes (t : t) = t.flow_count * 48
