(** Deterministic reservation-layer DDoS scenarios (§5.1).

    Three attacks, each parameterized by the admission backend under
    test and a replay seed:

    + {!exhaustion} — admission exhaustion: 24 bot ASes funneled
      through one transfer AS spam SegR/EER setups; the report carries
      the honest ASes' share of the contested trunk after the attack.
    + {!overuse} — data-plane overuse: bots reserve 1 Mbps and send
      ~5x through rogue gateways; the report carries OFD detection
      latency, blocklist/denial coverage, and honest delivery.
    + {!storm} — renewal-storm amplification: loss, a CServ crash and
      a link flap timed at the synchronized renewal instants; the
      report compares control messages per request against a clean
      run and the retry budget.

    Every report embeds a digest string that is byte-identical across
    runs with the same seed — the replay property [test/attack]
    asserts. *)

open Backends

type exhaustion_report = {
  xh_backend : string;
  xh_bound_enforced : bool;
  xh_honest_bps : float;  (** Σ honest granted bandwidth after the attack *)
  xh_total_bps : float;  (** Σ promised on the contested trunk egress *)
  xh_share_bps : float;  (** the Colibri share of the trunk capacity *)
  xh_honest_share : float;  (** honest ∕ max(total, share) *)
  xh_honest_preserved : bool;  (** no honest grant shrank or vanished *)
  xh_capacity_respected : bool;  (** total ≤ share *)
  xh_bot_seg_attempts : int;
  xh_bot_seg_granted : int;
  xh_bot_eer_attempts : int;
  xh_bot_eer_granted : int;
  xh_digest : string;
}

val exhaustion : seed:int -> backend:Backend_intf.factory -> exhaustion_report

type overuse_report = {
  ou_backend : string;
  ou_bots : int;
  ou_flagged : int;  (** bots whose flow the OFD escalated to policing *)
  ou_blocked : int;  (** bots quarantined in the router blocklist *)
  ou_denied : int;  (** bots denied future reservations at the CServ *)
  ou_detection_windows : float;  (** worst flag latency, in OFD windows *)
  ou_bot_forwarded : int;
  ou_bot_policed : int;
  ou_bot_blocked_drops : int;
  ou_honest_sent : int;
  ou_honest_delivered : int;
  ou_digest : string;
}

val overuse : seed:int -> backend:Backend_intf.factory -> overuse_report

type storm_report = {
  st_backend : string;
  st_requests : int;  (** retry-layer requests, attack run *)
  st_attempts : int;  (** transmissions across all requests *)
  st_sent : int;  (** control messages on the wire *)
  st_attempt_msg_bound : int;  (** messages one attempt may cost *)
  st_max_attempts : int;  (** the retry budget per request *)
  st_within_budget : bool;  (** sent ≤ requests × budget × bound *)
  st_clean_msgs_per_req : float;
  st_storm_msgs_per_req : float;
  st_amplification : float;  (** storm ∕ clean messages per request *)
  st_renewals_alive : bool;  (** every managed SegR survived the storm *)
  st_audit_errors : int;
  st_accounting_ok : bool;  (** sent = delivered + lost *)
  st_pending : int;  (** in-flight requests after drain (must be 0) *)
  st_digest : string;
}

val storm : seed:int -> backend:Backend_intf.factory -> storm_report

(** {1 The full suite} *)

type suite = {
  s_seed : int;
  s_exhaustion : exhaustion_report list;
  s_overuse : overuse_report list;
  s_storm : storm_report list;
  s_digest : string;  (** byte-stable replay digest over every report *)
}

val run_suite : seed:int -> suite
(** Every scenario against every backend of {!Backends.All.all}. *)
