(** The attacker model: a botnet of compromised source ASes (§5.1).

    Each bot owns a private seeded RNG derived from the botnet seed
    and its AS number, so a scenario replays byte-identically for a
    given seed while bots still act with per-attacker jitter. Bots act
    only through generators scheduled on the simulation's
    {!Net.Engine}, so attacker events interleave deterministically
    with the deployment's own control-plane and renewal events. *)

open Colibri_types

type bot = { id : int; asn : Ids.asn; rng : Random.State.t }
type t

val create : seed:int -> ases:Ids.asn list -> t
(** One bot per AS; raises [Invalid_argument] on an empty list. *)

val seed : t -> int
val size : t -> int
val bots : t -> bot list
val iter : t -> (bot -> unit) -> unit

val uniform : bot -> min:float -> max:float -> float
(** One draw from the bot's private RNG, uniform in [[min, max)]. *)

val demand : bot -> min_mbps:float -> max_mbps:float -> Bandwidth.t
(** A per-bot bandwidth demand draw. *)

val schedule_setups :
  t ->
  engine:Net.Engine.t ->
  start:float ->
  interval:float ->
  jitter:float ->
  rounds:int ->
  fire:(bot -> round:int -> unit) ->
  unit
(** Setup-spam generator: every bot fires [rounds] admission attempts,
    the [r]-th at [start + r·interval + U[0, jitter)] with a fresh
    per-event jitter draw. *)

val schedule_traffic :
  t ->
  engine:Net.Engine.t ->
  start:float ->
  stop:float ->
  pps:float ->
  fire:(bot -> unit) ->
  unit
(** Traffic generator: from [start] until [stop] each bot emits
    packets at [pps] with a private phase offset, rescheduling itself
    through the engine. *)
