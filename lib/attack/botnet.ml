(** The attacker model: a botnet of compromised source ASes (§5.1).

    SIBRA-style volumetric adversaries control many source ASes and
    drive them in concert — setup spam against the admission plane,
    overuse traffic against the data plane, or timed churn against the
    renewal machinery. Each bot owns a private seeded RNG derived from
    the botnet seed and its AS number, so a scenario replays
    byte-identically for a given seed while the bots still act with
    realistic per-attacker jitter instead of in lockstep.

    Bots never act by themselves: a scenario hands each generator a
    [fire] callback and the events are scheduled on the simulation's
    {!Net.Engine}, interleaving attacker actions with the deployment's
    own control-plane and renewal events in deterministic time
    order. *)

open Colibri_types

type bot = { id : int; asn : Ids.asn; rng : Random.State.t }
type t = { seed : int; bots : bot array }

let create ~(seed : int) ~(ases : Ids.asn list) : t =
  (match ases with [] -> invalid_arg "Botnet.create: no bot ASes" | _ :: _ -> ());
  let bots =
    Array.of_list
      (List.mapi
         (fun i asn ->
           { id = i + 1; asn; rng = Random.State.make [| seed; Ids.hash_asn asn; i |] })
         ases)
  in
  { seed; bots }

let seed (t : t) = t.seed
let size (t : t) = Array.length t.bots
let bots (t : t) = Array.to_list t.bots
let iter (t : t) (f : bot -> unit) = Array.iter f t.bots

let uniform (b : bot) ~(min : float) ~(max : float) : float =
  if max <= min then min else min +. Random.State.float b.rng (max -. min)

let demand (b : bot) ~(min_mbps : float) ~(max_mbps : float) : Bandwidth.t =
  Bandwidth.of_mbps (uniform b ~min:min_mbps ~max:max_mbps)

(** Per-bot setup-spam generator: every bot fires [rounds] admission
    attempts, the [r]-th at [start + r·interval + U[0, jitter)] with a
    fresh jitter draw per event — a sustained request storm whose
    per-attacker arrival times decorrelate, like real bot churn. *)
let schedule_setups (t : t) ~(engine : Net.Engine.t) ~(start : float)
    ~(interval : float) ~(jitter : float) ~(rounds : int)
    ~(fire : bot -> round:int -> unit) : unit =
  iter t (fun b ->
      for r = 0 to rounds - 1 do
        let at =
          start +. (float_of_int r *. interval) +. uniform b ~min:0. ~max:jitter
        in
        Net.Engine.schedule_at engine ~time:at (fun () -> fire b ~round:r)
      done)

(** Per-bot traffic generator: from [start] until [stop], each bot
    emits packets at [pps] with a private phase offset, rescheduling
    itself through the engine — the data-plane overuse source. *)
let schedule_traffic (t : t) ~(engine : Net.Engine.t) ~(start : float)
    ~(stop : float) ~(pps : float) ~(fire : bot -> unit) : unit =
  if pps <= 0. then invalid_arg "Botnet.schedule_traffic: pps <= 0";
  let period = 1. /. pps in
  iter t (fun b ->
      let rec tick at =
        if at < stop then
          Net.Engine.schedule_at engine ~time:at (fun () ->
              fire b;
              tick (at +. period))
      in
      tick (start +. uniform b ~min:0. ~max:period))
