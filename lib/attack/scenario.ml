(** The three paper-grounded DDoS scenarios, each runnable against any
    admission backend of the PR-8 registry (§5.1, SIBRA's adversary).

    + {b Admission exhaustion} ({!exhaustion}): N bot ASes funneled
      through one transfer AS spam SegR/EER setups. The claim under
      test is N-Tube fairness — honest ASes' admissible bandwidth
      stays bounded below (existing grants are never preempted and the
      capacity share bounds what bots can promise themselves), while a
      signalling-free discipline (DiffServ) oversubscribes and dilutes
      the honest share to nearly nothing.
    + {b Data-plane overuse} ({!overuse}): bots pay for a rate R and
      send kR through a rogue gateway that skips the source AS's
      monitoring duty. The claim: the transfer AS's OFD flags every
      overuser within one measurement window, policing clamps them,
      the blocklist quarantines them, and honest flows keep both their
      allocations and their deliveries.
    + {b Renewal-storm amplification} ({!storm}): crash/flap windows
      timed at the synchronized renewal instants force a retry storm.
      The claim: the PR-5 retry budgets bound total control messages
      by budget × requests — the protocol never self-amplifies into
      its own DDoS.

    Every runner is deterministic in [seed]: the same seed replays a
    byte-identical report digest (asserted by [test/attack]). *)

open Colibri_types
open Colibri_topology
open Colibri
module Backend = Backends.Backend_intf

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps

let ok where = function
  | Ok v -> v
  | Error e -> failwith (where ^ ": " ^ e)

let up_path db src =
  match Segments.Db.up_segments db ~src with
  | [] -> failwith "Scenario: leaf has no up segment"
  | s :: _ -> s.Segments.path

(* Read one counter out of a snapshot without [List.assoc] (the keyed
   lookup the deepscan d3 rule wants). Missing counters read 0. *)
let counter_value (snap : Obs.snapshot) (name : string) : int =
  let rec go = function
    | [] -> 0
    | (n, Obs.Counter v) :: _ when String.equal n name -> v
    | _ :: rest -> go rest
  in
  go snap

(* ------------------------------------------------------------------ *)
(* Scenario (a): admission exhaustion through a funnel.                *)
(* ------------------------------------------------------------------ *)

type exhaustion_report = {
  xh_backend : string;
  xh_bound_enforced : bool;
  xh_honest_bps : float;  (** Σ honest granted bandwidth after the attack *)
  xh_total_bps : float;  (** Σ promised on the contested trunk egress *)
  xh_share_bps : float;  (** the Colibri share of the trunk capacity *)
  xh_honest_share : float;  (** honest ∕ max(total, share) *)
  xh_honest_preserved : bool;  (** no honest grant shrank or vanished *)
  xh_capacity_respected : bool;  (** total ≤ share *)
  xh_bot_seg_attempts : int;
  xh_bot_seg_granted : int;
  xh_bot_eer_attempts : int;
  xh_bot_eer_granted : int;
  xh_digest : string;
}

let exhaustion ~(seed : int) ~(backend : Backend.factory) : exhaustion_report =
  let bots_n = 24 and honest_n = 4 in
  let trunk = gbps 10. in
  let topo =
    Topology_gen.funnel ~bots:bots_n ~honest:honest_n ~leaf_capacity:(gbps 1.)
      ~trunk_capacity:trunk
  in
  let d = Deployment.create ~backend ~seed topo in
  let db = Deployment.seg_db d in
  let engine = Deployment.engine d in
  (* Honest preload: each victim books 750 Mbps up to the core before
     the attack — inside every backend's admissible region (N-Tube
     would counter-offer the 800 Mbps ingress share, but IntServ's
     all-or-nothing RSVP admission rejects any demand above it), and
     together 3 of the 8 Gbps trunk share. *)
  let honest =
    List.init honest_n (fun i ->
        let src = Topology_gen.funnel_honest (i + 1) in
        let s =
          ok "honest preload"
            (Deployment.setup_segr d ~path:(up_path db src) ~kind:Reservation.Up
               ~max_bw:(mbps 750.) ~min_bw:(mbps 1.))
        in
        (src, s.Reservation.key, Reservation.segr_bw s ~now:(Deployment.now d)))
  in
  (* Bot spam, driven through the engine: every bot fires 10 rounds of
     SegR setups (jittered per-attacker arrivals) and, once it holds
     any up-capacity, EER setups toward the core on top. *)
  let bn =
    Botnet.create ~seed
      ~ases:(List.init bots_n (fun i -> Topology_gen.funnel_bot (i + 1)))
  in
  let seg_attempts = ref 0 and seg_granted = ref 0 in
  let eer_attempts = ref 0 and eer_granted = ref 0 in
  Botnet.schedule_setups bn ~engine ~start:0.2 ~interval:0.1 ~jitter:0.08
    ~rounds:10 ~fire:(fun b ~round:_ ->
      incr seg_attempts;
      (match
         Deployment.setup_segr d
           ~path:(up_path db b.Botnet.asn)
           ~kind:Reservation.Up
           ~max_bw:(Botnet.demand b ~min_mbps:300. ~max_mbps:1000.)
           ~min_bw:(mbps 50.)
       with
      | Ok _ -> incr seg_granted
      | Error _ -> ());
      incr eer_attempts;
      match
        Deployment.setup_eer_auto d ~src:b.Botnet.asn
          ~src_host:(Ids.host b.Botnet.id) ~dst:Topology_gen.funnel_core
          ~dst_host:(Ids.host 1)
          ~bw:(Botnet.demand b ~min_mbps:20. ~max_mbps:200.)
      with
      | Ok _ -> incr eer_granted
      | Error _ -> ());
  Deployment.advance d 3.0;
  (* The contested resource: the trunk egress of the transfer AS. *)
  let be = Cserv.backend (Deployment.cserv d Topology_gen.funnel_transfer) in
  let total_bps =
    Bandwidth.to_bps
      (Backend.seg_allocated_on be ~egress:Topology_gen.funnel_trunk_iface)
  in
  let share_bps = 0.8 *. Bandwidth.to_bps trunk in
  let now = Deployment.now d in
  let honest_bps, honest_preserved =
    List.fold_left
      (fun (acc, preserved) (src, key, bw0) ->
        match Cserv.own_segr (Deployment.cserv d src) key with
        | Some s ->
            let bw = Bandwidth.to_bps (Reservation.segr_bw s ~now) in
            (acc +. bw, preserved && bw >= Bandwidth.to_bps bw0 -. 1.)
        | None -> (acc, false))
      (0., true) honest
  in
  let xh_digest =
    Fmt.str "exhaustion/%s seg=%d/%d eer=%d/%d honest=%.0f total=%.0f\n%s"
      backend.Backend.label !seg_granted !seg_attempts !eer_granted
      !eer_attempts honest_bps total_bps
      (Obs.to_json
         (Obs.merge
            [
              Backend.obs_snapshot be;
              Backend.obs_snapshot
                (Cserv.backend (Deployment.cserv d Topology_gen.funnel_core));
            ]))
  in
  {
    xh_backend = backend.Backend.label;
    xh_bound_enforced = Backend.capacity_bound_enforced be;
    xh_honest_bps = honest_bps;
    xh_total_bps = total_bps;
    xh_share_bps = share_bps;
    xh_honest_share = honest_bps /. Float.max total_bps share_bps;
    xh_honest_preserved = honest_preserved;
    xh_capacity_respected = total_bps <= share_bps *. 1.000001;
    xh_bot_seg_attempts = !seg_attempts;
    xh_bot_seg_granted = !seg_granted;
    xh_bot_eer_attempts = !eer_attempts;
    xh_bot_eer_granted = !eer_granted;
    xh_digest;
  }

(* ------------------------------------------------------------------ *)
(* Scenario (b): data-plane overuse through a rogue gateway.           *)
(* ------------------------------------------------------------------ *)

type overuse_report = {
  ou_backend : string;
  ou_bots : int;
  ou_flagged : int;  (** bots whose flow the OFD escalated to policing *)
  ou_blocked : int;  (** bots quarantined in the router blocklist *)
  ou_denied : int;  (** bots denied future reservations at the CServ *)
  ou_detection_windows : float;  (** worst flag latency, in OFD windows *)
  ou_bot_forwarded : int;
  ou_bot_policed : int;
  ou_bot_blocked_drops : int;
  ou_honest_sent : int;
  ou_honest_delivered : int;
  ou_digest : string;
}

let overuse ~(seed : int) ~(backend : Backend.factory) : overuse_report =
  let bots_n = 3 in
  let ofd_window = 1.0 in
  let topo =
    Topology_gen.funnel ~bots:bots_n ~honest:1 ~leaf_capacity:(gbps 1.)
      ~trunk_capacity:(gbps 10.)
  in
  let d =
    Deployment.create ~backend ~seed ~router_auto_block:true
      ~router_confirm_after_drops:40 topo
  in
  let engine = Deployment.engine d in
  let db = Deployment.seg_db d in
  let core = Topology_gen.funnel_core and x = Topology_gen.funnel_transfer in
  let xr = Deployment.router d x in
  let setup_seg src =
    ignore
      (ok "overuse segr"
         (Deployment.setup_segr d ~path:(up_path db src) ~kind:Reservation.Up
            ~max_bw:(mbps 500.) ~min_bw:(mbps 1.)))
  in
  (* Honest victim: a 50 Mbps EER, sent well within its reservation
     through the honest (policing) gateway. *)
  let honest_src = Topology_gen.funnel_honest 1 in
  setup_seg honest_src;
  let honest_eer =
    ok "honest EER"
      (Deployment.setup_eer_auto d ~src:honest_src ~src_host:(Ids.host 1)
         ~dst:core ~dst_host:(Ids.host 2) ~bw:(mbps 50.))
  in
  (* Bots: pay for 1 Mbps each, then send ~5x through a rogue gateway
     whose token bucket never clamps — the misbehaving source AS that
     skips its own monitoring duty (§4.8). *)
  let reserved = mbps 1. in
  let payload = 1200 in
  let bot_ases = List.init bots_n (fun i -> Topology_gen.funnel_bot (i + 1)) in
  let rigs =
    Array.of_list
      (List.map
         (fun src ->
           setup_seg src;
           let route =
             match Deployment.lookup_eer_routes d ~src ~dst:core with
             | r :: _ -> r
             | [] -> failwith "overuse: bot has no route"
           in
           let eer, version, sigmas =
             ok "bot EER"
               (Deployment.setup_eer_full d ~route ~src_host:(Ids.host 66)
                  ~dst_host:(Ids.host 2) ~bw:reserved)
           in
           let rogue =
             Gateway.create ~burst:1e9 ~clock:(Deployment.clock d) src
           in
           ok "rogue register" (Gateway.register rogue ~eer ~version ~sigmas);
           (src, eer, rogue))
         bot_ases)
  in
  let attack_start = 0.5 and attack_stop = 3.0 in
  let first_policed = Array.make bots_n Float.neg_infinity in
  let forwarded = ref 0 and policed = ref 0 and blocked_drops = ref 0 in
  let bn = Botnet.create ~seed ~ases:bot_ases in
  Botnet.schedule_traffic bn ~engine ~start:attack_start ~stop:attack_stop
    ~pps:520. ~fire:(fun b ->
      let i = b.Botnet.id - 1 in
      let _, eer, rogue = rigs.(i) in
      match
        Gateway.send rogue ~res_id:eer.Reservation.key.res_id
          ~payload_len:payload
      with
      | Ok (pkt, _) -> (
          match
            Router.process_bytes xr ~raw:(Packet.to_bytes pkt)
              ~payload_len:payload
          with
          | Ok _ -> incr forwarded
          | Error Router.Policed ->
              incr policed;
              if first_policed.(i) = Float.neg_infinity then
                first_policed.(i) <- Deployment.now d
          | Error Router.Blocked_source -> incr blocked_drops
          | Error _ -> ())
      | Error _ -> ());
  (* Honest traffic at 50 pps through the full deployment path. *)
  let honest_sent = ref 0 and honest_delivered = ref 0 in
  let rec honest_tick at =
    if at < attack_stop then
      Net.Engine.schedule_at engine ~time:at (fun () ->
          incr honest_sent;
          (match
             Deployment.send_data d ~src:honest_src
               ~res_id:honest_eer.Reservation.key.res_id ~payload_len:800
           with
          | Ok { Deployment.delivered = true; _ } -> incr honest_delivered
          | Ok _ | Error _ -> ());
          honest_tick (at +. 0.02))
  in
  honest_tick (attack_start +. 0.05);
  Deployment.advance d 4.0;
  let bl = Router.blocklist xr in
  let flagged = ref 0 and detection = ref 0. in
  Array.iter
    (fun t ->
      if t > Float.neg_infinity then begin
        incr flagged;
        detection := Float.max !detection ((t -. attack_start) /. ofd_window)
      end)
    first_policed;
  let blocked =
    List.length (List.filter (Monitor.Blocklist.is_blocked bl) bot_ases)
  in
  let denied =
    List.length
      (List.filter
         (fun src -> Cserv.is_denied (Deployment.cserv d x) ~src)
         bot_ases)
  in
  let ou_digest =
    Fmt.str
      "overuse/%s flagged=%d blocked=%d denied=%d fwd=%d policed=%d \
       blockdrop=%d honest=%d/%d\n\
       %s"
      backend.Backend.label !flagged blocked denied !forwarded !policed
      !blocked_drops !honest_delivered !honest_sent
      (Obs.to_json (Obs.Registry.snapshot (Router.metrics xr)))
  in
  {
    ou_backend = backend.Backend.label;
    ou_bots = bots_n;
    ou_flagged = !flagged;
    ou_blocked = blocked;
    ou_denied = denied;
    ou_detection_windows = !detection;
    ou_bot_forwarded = !forwarded;
    ou_bot_policed = !policed;
    ou_bot_blocked_drops = !blocked_drops;
    ou_honest_sent = !honest_sent;
    ou_honest_delivered = !honest_delivered;
    ou_digest;
  }

(* ------------------------------------------------------------------ *)
(* Scenario (c): renewal-storm amplification.                          *)
(* ------------------------------------------------------------------ *)

type storm_report = {
  st_backend : string;
  st_requests : int;  (** retry-layer requests, attack run *)
  st_attempts : int;  (** transmissions across all requests *)
  st_sent : int;  (** control messages on the wire *)
  st_attempt_msg_bound : int;  (** messages one attempt may cost *)
  st_max_attempts : int;  (** the retry budget per request *)
  st_within_budget : bool;  (** sent ≤ requests × budget × bound *)
  st_clean_msgs_per_req : float;
  st_storm_msgs_per_req : float;
  st_amplification : float;  (** storm ∕ clean messages per request *)
  st_renewals_alive : bool;  (** every managed SegR survived the storm *)
  st_audit_errors : int;
  st_accounting_ok : bool;  (** sent = delivered + lost *)
  st_pending : int;  (** in-flight requests after drain (must be 0) *)
  st_digest : string;
}

(* One full renewal run over a 4-AS chain: 8 SegRs set up together (so
   their renewals synchronize at 0.7 x 300 s), 2 EERs churning every
   ~8 s in between. The attack run adds 2% loss, a CServ crash covering
   the first synchronized renewal instant, and a link flap at the
   second. *)
let storm_run ~(seed : int) ~(backend : Backend.factory) ~(attack : bool) =
  let n = 4 in
  let topo = Topology_gen.linear ~n ~capacity:(gbps 100.) in
  let d = Deployment.create ~backend ~seed topo in
  let faults = Net.Fault.create ~seed () in
  if attack then begin
    Net.Fault.set_default faults (Net.Fault.plan ~loss:0.02 ~jitter:0.001 ());
    Net.Fault.crash_server faults ~asn:(Ids.asn ~isd:1 ~num:2) ~at:208.
      ~duration:12.;
    Net.Fault.flap_link faults
      ~src:(Ids.asn ~isd:1 ~num:2)
      ~dst:(Ids.asn ~isd:1 ~num:3)
      ~down_at:419. ~up_at:424.
  end;
  Deployment.attach_network ~faults ~retry_seed:(seed * 13) d;
  let path = Topology_gen.linear_path ~n in
  let segrs =
    List.init 8 (fun _ ->
        ok "storm segr"
          (Deployment.setup_segr_sync d ~path ~kind:Reservation.Core
             ~max_bw:(mbps 200.) ~min_bw:(mbps 1.)))
  in
  let managed =
    List.map
      (fun (s : Reservation.segr) ->
        ok "storm renew"
          (Deployment.auto_renew_segr d ~key:s.key ~max_bw:(mbps 200.)
             ~min_bw:(mbps 1.)))
      segrs
  in
  let first =
    match segrs with s :: _ -> s | [] -> failwith "storm: no segr"
  in
  let route : Deployment.eer_route = { path; segr_keys = [ first.key ] } in
  let eer_managed =
    List.init 2 (fun i ->
        let src_host = Ids.host (i + 1) and dst_host = Ids.host 9 in
        let e =
          ok "storm eer"
            (Deployment.setup_eer_sync d ~route ~src_host ~dst_host
               ~bw:(mbps 10.))
        in
        ok "storm eer renew"
          (Deployment.auto_renew_eer d ~key:e.Reservation.key ~route ~src_host
             ~dst_host ~bw:(mbps 10.)))
  in
  Deployment.advance d 650.;
  let now = Deployment.now d in
  let alive =
    List.for_all
      (fun m ->
        let key = Deployment.managed_key m in
        match Cserv.own_segr (Deployment.cserv d key.Ids.src_as) key with
        | Some s -> Bandwidth.is_positive (Reservation.segr_bw s ~now)
        | None -> false)
      managed
  in
  List.iter Deployment.stop_renewal managed;
  List.iter Deployment.stop_renewal eer_managed;
  Deployment.advance d 120.;
  let cn = Deployment.control_net d in
  let sent = Control_net.sent_count cn in
  let accounting_ok =
    sent = Control_net.delivered_count cn + Control_net.lost_count cn
  in
  let snap = Obs.Registry.snapshot (Deployment.network_metrics d) in
  let requests = counter_value snap "retry_requests_total" in
  let attempts = counter_value snap "retry_attempts_total" in
  let audit_errors = List.length (Deployment.audit_all d) in
  let pending = Retry.pending (Deployment.retrier d) in
  (alive, accounting_ok, audit_errors, pending, sent, requests, attempts,
   Obs.to_json snap)

let storm ~(seed : int) ~(backend : Backend.factory) : storm_report =
  let ( _, _, _, _, clean_sent, clean_requests, _, _ ) =
    storm_run ~seed ~backend ~attack:false
  in
  let ( alive, accounting_ok, audit_errors, pending, sent, requests, attempts,
        json ) =
    storm_run ~seed ~backend ~attack:true
  in
  (* Per-attempt message cost bound for an n-hop walk: a forward pass
     and a backward (commit or deny) pass, one message per link — the
     DRKey round trips cost 2 and fit well inside it. *)
  let n = 4 in
  let attempt_msg_bound = 2 * n in
  let max_attempts = Retry.default_policy.Retry.max_attempts in
  let clean_per_req =
    float_of_int clean_sent /. float_of_int (max 1 clean_requests)
  in
  let storm_per_req = float_of_int sent /. float_of_int (max 1 requests) in
  let st_digest =
    Fmt.str
      "storm/%s req=%d att=%d sent=%d clean_req=%d clean_sent=%d alive=%b \
       audits=%d pending=%d\n\
       %s"
      backend.Backend.label requests attempts sent clean_requests clean_sent
      alive audit_errors pending json
  in
  {
    st_backend = backend.Backend.label;
    st_requests = requests;
    st_attempts = attempts;
    st_sent = sent;
    st_attempt_msg_bound = attempt_msg_bound;
    st_max_attempts = max_attempts;
    st_within_budget = sent <= requests * max_attempts * attempt_msg_bound;
    st_clean_msgs_per_req = clean_per_req;
    st_storm_msgs_per_req = storm_per_req;
    st_amplification = storm_per_req /. Float.max 1e-9 clean_per_req;
    st_renewals_alive = alive;
    st_audit_errors = audit_errors;
    st_accounting_ok = accounting_ok;
    st_pending = pending;
    st_digest;
  }

(* ------------------------------------------------------------------ *)
(* The full suite: every scenario against every backend.               *)
(* ------------------------------------------------------------------ *)

type suite = {
  s_seed : int;
  s_exhaustion : exhaustion_report list;
  s_overuse : overuse_report list;
  s_storm : storm_report list;
  s_digest : string;  (** byte-stable replay digest over every report *)
}

let run_suite ~(seed : int) : suite =
  let backends = Backends.All.all in
  let ex = List.map (fun f -> exhaustion ~seed ~backend:f) backends in
  let ou = List.map (fun f -> overuse ~seed ~backend:f) backends in
  let st = List.map (fun f -> storm ~seed ~backend:f) backends in
  let s_digest =
    String.concat "\n--\n"
      (List.map (fun r -> r.xh_digest) ex
      @ List.map (fun r -> r.ou_digest) ou
      @ List.map (fun r -> r.st_digest) st)
  in
  { s_seed = seed; s_exhaustion = ex; s_overuse = ou; s_storm = st; s_digest }
