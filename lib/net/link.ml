(** Simulated inter-domain link with class-aware queuing (Appendix B).

    A link serializes packets at its capacity and delivers them after a
    propagation delay. Each traffic class has its own bounded FIFO
    queue; when the transmitter frees up, the configured scheduler
    picks the next class to serve:

    - {!Strict_priority} serves Colibri control, then Colibri data,
      then best effort — safe because admission bounds Colibri volume.
    - {!Cbwfq} is class-based weighted fair queuing with the traffic
      split as weights, implemented as deficit round-robin; it is
      work-conserving, so unused reservation bandwidth is scavenged by
      best-effort traffic ("no bandwidth is wasted", §3.4).

    Per-class counters expose offered/delivered/dropped volume so
    experiments (Table 2) can report achieved Gbps per class. *)

open Colibri_types

type scheduler = Strict_priority | Cbwfq of float array (* weight per class index *)

type 'a packet = { bytes : int; cls : Traffic_class.t; payload : 'a }

type counters = {
  mutable offered_bytes : int;
  mutable delivered_bytes : int;
  mutable dropped_bytes : int;
  mutable offered_pkts : int;
  mutable delivered_pkts : int;
  mutable dropped_pkts : int;
}

let fresh_counters () =
  {
    offered_bytes = 0;
    delivered_bytes = 0;
    dropped_bytes = 0;
    offered_pkts = 0;
    delivered_pkts = 0;
    dropped_pkts = 0;
  }

type 'a t = {
  engine : Engine.t;
  capacity : Bandwidth.t;
  delay : float; (* propagation delay, seconds *)
  scheduler : scheduler;
  queue_limit_bytes : int; (* per class *)
  queues : 'a packet Queue.t array;
  queued_bytes : int array;
  deficit : float array; (* DRR state, bytes *)
  quantum : float; (* DRR quantum, bytes *)
  mutable rr_at : int; (* DRR scan position *)
  mutable busy : bool;
  deliver : 'a packet -> unit;
  on_drop : 'a packet -> unit;
  stats : counters array;
}

let create ~(engine : Engine.t) ~(capacity : Bandwidth.t) ?(delay = 0.001)
    ?(scheduler = Strict_priority) ?(queue_limit_bytes = 4 * 1024 * 1024)
    ?(on_drop : 'a packet -> unit = ignore) ~(deliver : 'a packet -> unit) () : 'a t =
  if not (Bandwidth.is_positive capacity) then invalid_arg "Link.create: capacity <= 0";
  (match scheduler with
  | Cbwfq w when Array.length w <> Traffic_class.count ->
      invalid_arg "Link.create: Cbwfq needs one weight per class"
  | _ -> ());
  {
    engine;
    capacity;
    delay;
    scheduler;
    queue_limit_bytes;
    queues = Array.init Traffic_class.count (fun _ -> Queue.create ());
    queued_bytes = Array.make Traffic_class.count 0;
    deficit = Array.make Traffic_class.count 0.;
    quantum = 1500.;
    rr_at = 0;
    busy = false;
    deliver;
    on_drop;
    stats = Array.init Traffic_class.count (fun _ -> fresh_counters ());
  }

let counters (t : 'a t) (cls : Traffic_class.t) = t.stats.(Traffic_class.index cls)

(* Pick the next non-empty class per the scheduler; None if all empty. *)
let next_class (t : 'a t) : int option =
  let nonempty i = not (Queue.is_empty t.queues.(i)) in
  match t.scheduler with
  | Strict_priority ->
      Traffic_class.all
      |> List.sort (fun a b ->
             Int.compare (Traffic_class.priority a) (Traffic_class.priority b))
      |> List.find_opt (fun c -> nonempty (Traffic_class.index c))
      |> Option.map Traffic_class.index
  | Cbwfq weights ->
      if not (Array.exists (fun _ -> true) weights) then None
      else begin
        (* Deficit round robin: scan classes from rr_at; a class may send
           if its deficit covers the head packet; otherwise it gains
           weight-proportional quantum and we move on. Terminates because
           deficits grow every full scan while some queue is non-empty. *)
        let any = Array.exists (fun q -> not (Queue.is_empty q)) t.queues in
        if not any then None
        else begin
          let rec scan guard =
            let i = t.rr_at in
            if Queue.is_empty t.queues.(i) then begin
              t.deficit.(i) <- 0.;
              t.rr_at <- (i + 1) mod Traffic_class.count;
              scan guard
            end
            else begin
              let head = Queue.peek t.queues.(i) in
              if t.deficit.(i) >= float_of_int head.bytes then Some i
              else begin
                t.deficit.(i) <- t.deficit.(i) +. (t.quantum *. weights.(i));
                t.rr_at <- (i + 1) mod Traffic_class.count;
                if guard > 100_000 then Some i (* avoids pathological zero weights *)
                else scan (guard + 1)
              end
            end
          in
          scan 0
        end
      end

let rec transmit_next (t : 'a t) =
  match next_class t with
  | None -> t.busy <- false
  | Some i ->
      t.busy <- true;
      let pkt = Queue.pop t.queues.(i) in
      t.queued_bytes.(i) <- t.queued_bytes.(i) - pkt.bytes;
      (match t.scheduler with
      | Cbwfq _ -> t.deficit.(i) <- t.deficit.(i) -. float_of_int pkt.bytes
      | Strict_priority -> ());
      let ser = 8. *. float_of_int pkt.bytes /. Bandwidth.to_bps t.capacity in
      Engine.schedule t.engine ~delay:ser (fun () ->
          let st = t.stats.(i) in
          st.delivered_bytes <- st.delivered_bytes + pkt.bytes;
          st.delivered_pkts <- st.delivered_pkts + 1;
          Engine.schedule t.engine ~delay:t.delay (fun () -> t.deliver pkt);
          transmit_next t)

(** Offer a packet to the link. Dropped (with counters updated) when
    its class queue is full — tail drop per class. *)
let send (t : 'a t) ~(bytes : int) ~(cls : Traffic_class.t) (payload : 'a) =
  if bytes <= 0 then invalid_arg "Link.send: bytes <= 0";
  let i = Traffic_class.index cls in
  let st = t.stats.(i) in
  st.offered_bytes <- st.offered_bytes + bytes;
  st.offered_pkts <- st.offered_pkts + 1;
  if t.queued_bytes.(i) + bytes > t.queue_limit_bytes then begin
    st.dropped_bytes <- st.dropped_bytes + bytes;
    st.dropped_pkts <- st.dropped_pkts + 1;
    t.on_drop { bytes; cls; payload }
  end
  else begin
    Queue.push { bytes; cls; payload } t.queues.(i);
    t.queued_bytes.(i) <- t.queued_bytes.(i) + bytes;
    if not t.busy then transmit_next t
  end

let capacity (t : 'a t) = t.capacity

(** Delivered throughput of a class over an interval of [seconds],
    given a counter snapshot taken at the start of the interval. *)
let throughput_bps ~(before : counters) ~(after : counters) ~(seconds : float) :
    Bandwidth.t =
  Bandwidth.of_bps (8. *. float_of_int (after.delivered_bytes - before.delivered_bytes) /. seconds)

let snapshot (c : counters) : counters = { c with offered_bytes = c.offered_bytes }
