(** Deterministic, seedable fault injection for the simulated network.

    The paper's DoC story (§5.3) treats loss of setup requests as the
    expected case: initial SegReqs travel as best-effort traffic and
    are tail-dropped under congestion. This module widens the failure
    model beyond congestion so the control plane's recovery machinery
    ({!Colibri.Retry}, the renewal state machine in
    {!Colibri.Deployment}) can be tested against every failure class
    the infrastructure must survive:

    - {e random loss} — per-link drop probability, modeling congestion
      on links outside the simulated mesh;
    - {e delay jitter} and {e reordering} — extra per-message delay,
      letting retransmissions overtake originals;
    - {e link flaps} — scheduled down-intervals during which every
      message on the link is lost;
    - {e CServ crash/restart} — scheduled per-AS outage windows during
      which the AS's control service processes nothing (fail-stop with
      durable reservation state, §3.3: neighbors keep their state and
      clean it up by timeout).

    Every decision is drawn from one explicit [Random.State] seeded at
    construction, and the per-decision draw count is fixed regardless
    of outcome — so the same seed against the same (deterministic)
    event engine reproduces the identical fault trace, which the chaos
    suite relies on to replay scenarios byte-for-byte. *)

open Colibri_types

type drop_reason = Loss | Link_down
(** Why a message was killed on a link. Server outages are not link
    drops: the message is delivered and then swallowed by the dead
    service (query {!server_up} at the processing site). *)

let pp_drop_reason ppf = function
  | Loss -> Fmt.string ppf "loss"
  | Link_down -> Fmt.string ppf "link-down"

type plan = {
  loss : float; (* drop probability per link traversal, [0,1] *)
  jitter : float; (* extra delay uniform in [0, jitter] seconds *)
  reorder : float; (* probability of an additional hold-back delay *)
  reorder_delay : float; (* magnitude of the hold-back, seconds *)
  flaps : (Timebase.t * Timebase.t) list; (* [down_at, up_at) intervals *)
}

let plan ?(loss = 0.) ?(jitter = 0.) ?(reorder = 0.) ?(reorder_delay = 0.05)
    ?(flaps = []) () : plan =
  if loss < 0. || loss > 1. then invalid_arg "Fault.plan: loss outside [0,1]";
  if jitter < 0. then invalid_arg "Fault.plan: negative jitter";
  if reorder < 0. || reorder > 1. then invalid_arg "Fault.plan: reorder outside [0,1]";
  { loss; jitter; reorder; reorder_delay; flaps }

let healthy = plan ()

type verdict = Deliver of { extra_delay : float } | Drop of drop_reason

type t = {
  seed : int;
  rng : Random.State.t;
  mutable default_plan : plan;
  links : plan Ids.Asn_pair_tbl.t;
  crashes : (Timebase.t * Timebase.t) list Ids.Asn_tbl.t; (* down intervals *)
  record_trace : bool;
  mutable trace : (Timebase.t * string) list; (* newest first *)
  mutable decisions : int;
}

let create ?(seed = 0xFA17) ?(record_trace = false) () : t =
  {
    seed;
    rng = Random.State.make [| seed; 0xC4A05 |];
    default_plan = healthy;
    links = Ids.Asn_pair_tbl.create 64;
    crashes = Ids.Asn_tbl.create 16;
    record_trace;
    trace = [];
    decisions = 0;
  }

let seed (t : t) = t.seed
let decisions (t : t) = t.decisions

let set_default (t : t) (p : plan) = t.default_plan <- p

let set_link (t : t) ~(src : Ids.asn) ~(dst : Ids.asn) (p : plan) =
  Ids.Asn_pair_tbl.replace t.links (src, dst) p

let plan_for (t : t) ~(src : Ids.asn) ~(dst : Ids.asn) : plan =
  match Ids.Asn_pair_tbl.find_opt t.links (src, dst) with
  | Some p -> p
  | None -> t.default_plan

(** Add one down-interval to a directed link's flap schedule. *)
let flap_link (t : t) ~(src : Ids.asn) ~(dst : Ids.asn) ~(down_at : Timebase.t)
    ~(up_at : Timebase.t) =
  if up_at <= down_at then invalid_arg "Fault.flap_link: up_at <= down_at";
  let p = plan_for t ~src ~dst in
  set_link t ~src ~dst { p with flaps = (down_at, up_at) :: p.flaps }

(** Schedule a CServ outage: the AS's control service is down during
    [[at, at + duration)). Reservation state survives the crash
    (fail-stop with durable state). *)
let crash_server (t : t) ~(asn : Ids.asn) ~(at : Timebase.t) ~(duration : float) =
  if duration <= 0. then invalid_arg "Fault.crash_server: duration <= 0";
  let prev = Option.value ~default:[] (Ids.Asn_tbl.find_opt t.crashes asn) in
  Ids.Asn_tbl.replace t.crashes asn ((at, at +. duration) :: prev)

let in_interval now (a, b) = a <= now && now < b

let server_up (t : t) ~(asn : Ids.asn) ~(now : Timebase.t) : bool =
  match Ids.Asn_tbl.find_opt t.crashes asn with
  | None -> true
  | Some intervals -> not (List.exists (in_interval now) intervals)

let server_downtimes (t : t) (asn : Ids.asn) : (Timebase.t * Timebase.t) list =
  Option.value ~default:[] (Ids.Asn_tbl.find_opt t.crashes asn)

let record (t : t) ~(now : Timebase.t) fmt =
  Fmt.kstr
    (fun s -> if t.record_trace then t.trace <- (now, s) :: t.trace)
    fmt

(** Judge one message traversal of the [src → dst] link at simulated
    time [now]. Exactly three uniform draws are consumed per call, so
    the decision stream is a pure function of (seed, call sequence). *)
let judge (t : t) ~(src : Ids.asn) ~(dst : Ids.asn) ~(now : Timebase.t) : verdict =
  t.decisions <- t.decisions + 1;
  let p = plan_for t ~src ~dst in
  (* Fixed draw count per decision keeps replays aligned even when a
     plan changes which draws matter. *)
  let u_loss = Random.State.float t.rng 1. in
  let u_jitter = Random.State.float t.rng 1. in
  let u_reorder = Random.State.float t.rng 1. in
  if List.exists (in_interval now) p.flaps then begin
    record t ~now "drop link-down %a->%a" Ids.pp_asn src Ids.pp_asn dst;
    Drop Link_down
  end
  else if p.loss > 0. && u_loss < p.loss then begin
    record t ~now "drop loss %a->%a" Ids.pp_asn src Ids.pp_asn dst;
    Drop Loss
  end
  else begin
    let extra_delay =
      (p.jitter *. u_jitter)
      +. (if p.reorder > 0. && u_reorder < p.reorder then p.reorder_delay else 0.)
    in
    record t ~now "deliver %a->%a +%.6fs" Ids.pp_asn src Ids.pp_asn dst extra_delay;
    Deliver { extra_delay }
  end

(** The recorded decision trace in chronological order (empty unless
    [record_trace] was set). *)
let trace (t : t) : (Timebase.t * string) list = List.rev t.trace
