(** Deterministic, seedable fault injection for the simulated network:
    per-link loss probability, delay jitter, reordering, link-flap
    schedules, and CServ crash/restart windows.

    All randomness comes from one [Random.State] seeded at creation
    with a fixed number of draws per decision, so the same seed against
    the same deterministic event engine reproduces the identical fault
    trace — the property the chaos test suite replays scenarios on. *)

open Colibri_types

type t

(** Why a message was killed on a link. Server outages are not link
    drops: the message is delivered and then swallowed by the dead
    service (query {!server_up} at the processing site). *)
type drop_reason = Loss | Link_down

val pp_drop_reason : drop_reason Fmt.t

type plan = {
  loss : float;  (** drop probability per link traversal, [0,1] *)
  jitter : float;  (** extra delay uniform in [0, jitter] seconds *)
  reorder : float;  (** probability of an additional hold-back delay *)
  reorder_delay : float;  (** magnitude of the hold-back, seconds *)
  flaps : (Timebase.t * Timebase.t) list;
      (** [down_at, up_at)] intervals during which the link drops
          everything *)
}

val plan :
  ?loss:float ->
  ?jitter:float ->
  ?reorder:float ->
  ?reorder_delay:float ->
  ?flaps:(Timebase.t * Timebase.t) list ->
  unit ->
  plan
(** Build a link plan; everything defaults to the healthy no-fault
    values. Raises [Invalid_argument] on probabilities outside [0,1]
    or negative delays. *)

val healthy : plan

val create : ?seed:int -> ?record_trace:bool -> unit -> t
(** [record_trace] keeps a textual log of every decision for the
    determinism tests; leave it off for long soaks. *)

val seed : t -> int

val decisions : t -> int
(** Total fault decisions drawn so far. *)

val set_default : t -> plan -> unit
(** Plan applied to links without a specific override. *)

val set_link : t -> src:Ids.asn -> dst:Ids.asn -> plan -> unit

val flap_link :
  t -> src:Ids.asn -> dst:Ids.asn -> down_at:Timebase.t -> up_at:Timebase.t -> unit
(** Add one down-interval to a directed link's flap schedule. *)

val crash_server : t -> asn:Ids.asn -> at:Timebase.t -> duration:float -> unit
(** Schedule a CServ outage window [[at, at + duration)). Reservation
    state survives (fail-stop with durable state, §3.3); only request
    processing stops. *)

val server_up : t -> asn:Ids.asn -> now:Timebase.t -> bool

val server_downtimes : t -> Ids.asn -> (Timebase.t * Timebase.t) list
(** The scheduled outage windows of an AS (unordered). *)

type verdict = Deliver of { extra_delay : float } | Drop of drop_reason

val judge : t -> src:Ids.asn -> dst:Ids.asn -> now:Timebase.t -> verdict
(** Judge one message traversal of a directed link. Exactly three
    uniform draws are consumed per call, so the decision stream is a
    pure function of (seed, call sequence). *)

val trace : t -> (Timebase.t * string) list
(** Recorded decisions in chronological order (empty unless
    [record_trace] was set). *)
