(** Simulated inter-domain link with class-aware queuing (Appendix B).

    A link serializes packets at its capacity and delivers them after
    a propagation delay, with one bounded FIFO queue per traffic class
    and a configurable scheduler: {!Strict_priority} (safe because
    admission bounds Colibri volume) or {!Cbwfq} (class-based weighted
    fair queuing via deficit round-robin, work-conserving so unused
    reservation bandwidth is scavenged by best effort, §3.4). *)

open Colibri_types

type scheduler = Strict_priority | Cbwfq of float array  (** weight per class index *)

type 'a packet = { bytes : int; cls : Traffic_class.t; payload : 'a }

type counters = {
  mutable offered_bytes : int;
  mutable delivered_bytes : int;
  mutable dropped_bytes : int;
  mutable offered_pkts : int;
  mutable delivered_pkts : int;
  mutable dropped_pkts : int;
}

type 'a t

val create :
  engine:Engine.t ->
  capacity:Bandwidth.t ->
  ?delay:float ->
  ?scheduler:scheduler ->
  ?queue_limit_bytes:int ->
  ?on_drop:('a packet -> unit) ->
  deliver:('a packet -> unit) ->
  unit ->
  'a t
(** [on_drop] fires (synchronously, inside {!send}) for every
    tail-dropped packet, so transports can account losses instead of
    losing messages silently. Default: [ignore]. *)

val send : 'a t -> bytes:int -> cls:Traffic_class.t -> 'a -> unit
(** Offer a packet; tail-dropped (with counters updated and [on_drop]
    called) when its class queue is full. *)

val counters : 'a t -> Traffic_class.t -> counters
val capacity : 'a t -> Bandwidth.t

val throughput_bps : before:counters -> after:counters -> seconds:float -> Bandwidth.t
(** Delivered throughput over an interval given a snapshot taken at
    its start. *)

val snapshot : counters -> counters
