(** colibri-metrics implementation. See the interface for the design
    contract: allocation-free per-packet increments, observation-only
    snapshots, summation-merge across shared-nothing shards. *)

module Counter = struct
  type t = { mutable n : int }

  let incr (c : t) = c.n <- c.n + 1
  let add (c : t) (n : int) = if n > 0 then c.n <- c.n + n
  let value (c : t) = c.n
end

module Gauge = struct
  type t = { mutable v : float }

  let set (g : t) v = g.v <- v
  let add (g : t) v = g.v <- g.v +. v
  let value (g : t) = g.v
end

module Histogram = struct
  (* [counts.(i)] counts observations in (2^(i-1), 2^i]; bucket 0 is
     (-inf, 1]; the last bucket is unbounded above. *)
  let nbuckets = 32

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : float;
  }

  let make () = { counts = Array.make nbuckets 0; count = 0; sum = 0. }

  let bucket_of (v : float) : int =
    let rec go i le =
      if v <= le || i >= nbuckets - 1 then i else go (i + 1) (le *. 2.)
    in
    go 0 1.

  let observe (h : t) (v : float) =
    let i = bucket_of v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v

  let count (h : t) = h.count
  let sum (h : t) = h.sum

  (* Cumulative (upper_bound, count) pairs; last bound is +inf. *)
  let cumulative (h : t) : (float * int) array =
    let acc = ref 0 in
    Array.mapi
      (fun i n ->
        acc := !acc + n;
        let le = if i = nbuckets - 1 then infinity else Float.pow 2. (float_of_int i) in
        (le, !acc))
      h.counts
end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) array }

type snapshot = (string * value) list

(* ------------------------------ registry ------------------------------ *)

module Registry = struct
  type entry =
    | E_counter of Counter.t
    | E_gauge of Gauge.t
    | E_gauge_fn of (unit -> float)
    | E_histogram of Histogram.t

  type t = { entries : (string, entry) Hashtbl.t }

  let create () : t = { entries = Hashtbl.create 64 }

  let kind_name = function
    | E_counter _ -> "counter"
    | E_gauge _ | E_gauge_fn _ -> "gauge"
    | E_histogram _ -> "histogram"

  (* Construction-time only: metric registration happens when a
     component is built, never per packet. *)
  let mismatch name entry want =
    invalid_arg
      (Printf.sprintf "Obs.Registry: %S already registered as a %s, wanted a %s"
         name (kind_name entry) want)

  let counter (t : t) (name : string) : Counter.t =
    match Hashtbl.find_opt t.entries name with
    | Some (E_counter c) -> c
    | Some e -> mismatch name e "counter"
    | None ->
        let c : Counter.t = { n = 0 } in
        Hashtbl.replace t.entries name (E_counter c);
        c

  let gauge (t : t) (name : string) : Gauge.t =
    match Hashtbl.find_opt t.entries name with
    | Some (E_gauge g) -> g
    | Some e -> mismatch name e "gauge"
    | None ->
        let g : Gauge.t = { v = 0. } in
        Hashtbl.replace t.entries name (E_gauge g);
        g

  let gauge_fn (t : t) (name : string) (f : unit -> float) : unit =
    match Hashtbl.find_opt t.entries name with
    | Some (E_gauge_fn _) | None -> Hashtbl.replace t.entries name (E_gauge_fn f)
    | Some e -> mismatch name e "gauge"

  let histogram (t : t) (name : string) : Histogram.t =
    match Hashtbl.find_opt t.entries name with
    | Some (E_histogram h) -> h
    | Some e -> mismatch name e "histogram"
    | None ->
        let h = Histogram.make () in
        Hashtbl.replace t.entries name (E_histogram h);
        h

  let snapshot (t : t) : snapshot =
    Hashtbl.fold
      (fun name entry acc ->
        let v =
          match entry with
          | E_counter c -> Counter (Counter.value c)
          | E_gauge g -> Gauge (Gauge.value g)
          | E_gauge_fn f -> Gauge (f ())
          | E_histogram h ->
              Histogram
                {
                  count = Histogram.count h;
                  sum = Histogram.sum h;
                  buckets = Histogram.cumulative h;
                }
        in
        (name, v) :: acc)
      t.entries []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

(* ------------------------------ labels ------------------------------ *)

let labeled (name : string) (labels : (string * string) list) : string =
  match labels with
  | [] -> name
  | _ ->
      let b = Buffer.create (String.length name + 16) in
      Buffer.add_string b name;
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b k;
          Buffer.add_string b "=\"";
          Buffer.add_string b v;
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}';
      Buffer.contents b

module Asn_counters = struct
  open Colibri_types

  type t = {
    registry : Registry.t;
    name : string;
    label : string;
    extra : (string * string) list;
    members : Counter.t Ids.Asn_tbl.t;
  }

  let create ?(extra = []) (registry : Registry.t) ~(name : string) ~(label : string)
      : t =
    { registry; name; label; extra; members = Ids.Asn_tbl.create 16 }

  let get (t : t) (a : Ids.asn) : Counter.t =
    match Ids.Asn_tbl.find_opt t.members a with
    | Some c -> c
    | None ->
        let c =
          Registry.counter t.registry
            (labeled t.name (t.extra @ [ (t.label, Fmt.str "%a" Ids.pp_asn a) ]))
        in
        Ids.Asn_tbl.replace t.members a c;
        c
end

module Res_key_counters = struct
  open Colibri_types

  type t = {
    registry : Registry.t;
    name : string;
    label : string;
    extra : (string * string) list;
    members : Counter.t Ids.Res_key_tbl.t;
  }

  let create ?(extra = []) (registry : Registry.t) ~(name : string) ~(label : string)
      : t =
    { registry; name; label; extra; members = Ids.Res_key_tbl.create 16 }

  let get (t : t) (k : Ids.res_key) : Counter.t =
    match Ids.Res_key_tbl.find_opt t.members k with
    | Some c -> c
    | None ->
        let c =
          Registry.counter t.registry
            (labeled t.name (t.extra @ [ (t.label, Fmt.str "%a" Ids.pp_res_key k) ]))
        in
        Ids.Res_key_tbl.replace t.members k c;
        c
end

(* ------------------------------ merging ------------------------------ *)

let merge_values (a : value) (b : value) : value =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram h1, Histogram h2 ->
      let buckets =
        if Array.length h1.buckets = Array.length h2.buckets then
          Array.mapi
            (fun i (le, n) -> (le, n + snd h2.buckets.(i)))
            h1.buckets
        else h1.buckets
      in
      Histogram
        { count = h1.count + h2.count; sum = h1.sum +. h2.sum; buckets }
  | v, _ -> v (* kind clash across shards: keep the first, never raise *)

let merge (snapshots : snapshot list) : snapshot =
  let acc = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (name, v) ->
         match Hashtbl.find_opt acc name with
         | None -> Hashtbl.replace acc name v
         | Some prev -> Hashtbl.replace acc name (merge_values prev v)))
    snapshots;
  Hashtbl.fold (fun name v l -> (name, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------ export ------------------------------ *)

let pp_value ppf = function
  | Counter n -> Fmt.int ppf n
  | Gauge v -> Fmt.pf ppf "%g" v
  | Histogram { count; sum; _ } -> Fmt.pf ppf "count=%d sum=%g" count sum

let pp_text ppf (s : snapshot) =
  Fmt.list ~sep:Fmt.cut
    (fun ppf (name, v) -> Fmt.pf ppf "%-48s %a" name pp_value v)
    ppf s

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.is_nan v then "null"
  else if v = infinity then "\"inf\""
  else if v = neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" v

let to_json (s : snapshot) : string =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (json_escape name);
      Buffer.add_string b "\":";
      match v with
      | Counter n -> Buffer.add_string b (string_of_int n)
      | Gauge v -> Buffer.add_string b (json_float v)
      | Histogram { count; sum; buckets } ->
          Buffer.add_string b
            (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":[" count
               (json_float sum));
          Array.iteri
            (fun i (le, n) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "[%s,%d]" (json_float le) n))
            buckets;
          Buffer.add_string b "]}")
    s;
  Buffer.add_char b '}';
  Buffer.contents b
