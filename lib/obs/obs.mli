(** colibri-metrics: lightweight runtime telemetry for the data and
    control planes (DESIGN.md §7).

    The paper's evaluation (§7, Fig. 5–6, Table 2) rests on precise
    per-component accounting — packets admitted vs. dropped {e per
    reason}, monitor state occupancy, per-shard throughput. This
    module provides the substrate: monotonic {!Counter}s with
    allocation-free increment for the per-packet path, {!Gauge}s
    (either set explicitly or sampled through a callback at snapshot
    time), log₂-bucketed {!Histogram}s for latencies and sizes, and
    labeled counter families keyed by the {!Ids} tables so per-AS and
    per-reservation accounting never touches the polymorphic hash.

    Metrics live in a {!Registry}; components create their own registry
    (or accept one at construction so an orchestrator can share it) and
    expose it for inspection. A {!snapshot} is an immutable, sorted
    view exportable as aligned text ({!pp_text}) or JSON ({!to_json});
    snapshots from shared-nothing shards {!merge} by summation, which
    is how {!Colibri.Dataplane_shard} reports Fig. 6-style aggregate
    and per-shard balance.

    Contract: reading metrics must never change component behavior
    (snapshots and gauge callbacks are observation-only), and metric
    updates on the per-packet path must not allocate. *)

module Counter : sig
  type t

  val incr : t -> unit
  (** Allocation-free increment — safe on the per-packet path. *)

  val add : t -> int -> unit
  (** Add [n ≥ 0]; negative deltas are ignored (counters are
      monotonic). *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t
  (** Log-scale histogram: bucket [i] counts observations with value
      [≤ 2^i] (the last bucket is unbounded), so microsecond latencies
      and packet sizes both fit 32 buckets with constant memory. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
end

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) array }
      (** [buckets] are [(upper_bound, cumulative_count)] pairs in
          increasing bound order, Prometheus-style; the last bound is
          [infinity]. *)

type snapshot = (string * value) list
(** Metric name (with any [{label="v"}] suffix) to current value,
    sorted by name. *)

val merge : snapshot list -> snapshot
(** Sum same-named counters, gauges, and histograms across snapshots —
    the aggregation for shared-nothing shards, where every per-shard
    quantity (counts, occupancy) adds. *)

val pp_text : snapshot Fmt.t
val to_json : snapshot -> string
(** Compact JSON object: counters and gauges as numbers, histograms as
    [{"count":…,"sum":…,"buckets":[[le,n],…]}]. Label-carrying names
    are escaped as JSON keys. *)

val labeled : string -> (string * string) list -> string
(** [labeled "x_total" [("reason", "expired")]] is
    ["x_total{reason=\"expired\"}"] — the naming convention for one
    member of a labeled family. *)

(** {1 Registry} *)

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Create-or-get: registering an existing name returns the same
      counter, so shards handed a shared registry accumulate into one
      family. Raises [Invalid_argument] if the name is already bound
      to a different metric kind (construction-time only). *)

  val gauge : t -> string -> Gauge.t

  val gauge_fn : t -> string -> (unit -> float) -> unit
  (** A gauge sampled by calling the function at snapshot time — for
      occupancy that is derivable from live state (Bloom bits set,
      sketch max cell, token fill) without mutating it. *)

  val histogram : t -> string -> Histogram.t

  val snapshot : t -> snapshot
  (** Sorted view of every registered metric; samples [gauge_fn]
      callbacks. Observation-only. *)
end

(** {1 Labeled families keyed by identifier tables}

    Counter families whose label values are {!Ids} keys, backed by the
    keyed [Hashtbl.Make] tables of PR 1 — per-AS or per-reservation
    accounting without polymorphic hashing. Members are registered in
    the family's registry on first use as [name{label="…"}]. *)

module Asn_counters : sig
  type t

  val create : ?extra:(string * string) list -> Registry.t -> name:string -> label:string -> t
  (** [extra] prepends constant labels to every member — e.g.
      [?extra:[("backend", "ntube")]] registers members as
      [name{backend="ntube",label="…"}], splitting one family per
      admission backend. *)

  val get : t -> Colibri_types.Ids.asn -> Counter.t
  (** Memoized: after the first sighting of an AS, [get] is one keyed
      table lookup and no allocation. *)
end

module Res_key_counters : sig
  type t

  val create : ?extra:(string * string) list -> Registry.t -> name:string -> label:string -> t
  val get : t -> Colibri_types.Ids.res_key -> Counter.t
end
