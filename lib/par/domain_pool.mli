(** Fixed-size pool of OCaml 5 domains with indexed workers
    (DESIGN.md §11). *)

type 'a t

val spawn : n:int -> (int -> 'a) -> 'a t
(** [spawn ~n f] starts [n] domains; worker [i] runs [f i]. The index
    selects all per-worker state inside the closure, keeping workers
    shared-nothing. *)

val size : _ t -> int

val join : 'a t -> 'a array
(** Wait for every worker and collect results in index order. Blocks;
    call from the orchestrating domain only (never inside a hot spawn
    closure — domaincheck d9). *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)
