(** Per-domain {!Obs} registry slots with merge-at-sample
    (DESIGN.md §11): each worker domain owns one private registry and
    is the only domain that increments it; the orchestrator merges
    per-slot snapshots. *)

type t

val create : slots:int -> t
val slots : t -> int

val registry : t -> int -> Obs.Registry.t
(** Unchecked slot access for construction-time wiring (before worker
    domains exist). *)

val claim : t -> int -> Obs.Registry.t
(** Checked access from inside the owning domain: binds slot [i] to
    the calling domain on first use; a claim from a different domain
    raises {!Par_check.Ownership_violation}. *)

val owner : t -> int -> int
(** The recorded owner domain id of slot [i], or {!Par_check.unbound}. *)

val sample : t -> Obs.snapshot
(** Merge of all per-slot snapshots. Exact after
    {!Domain_pool.join}; racy-but-monotone when sampled live. *)
