(** Cache-line isolation for contended atomics (DESIGN.md §11): the
    head/tail indices of an SPSC ring must not share a line, or every
    push invalidates the popper's cached copy of its own index. *)

val words : int
(** Machine words per padded block (16 → 128 bytes on 64-bit: one
    64-byte line with margin, one 128-byte spatial-prefetch pair). *)

val atomic : int -> int Atomic.t
(** [atomic v] is a regular [int Atomic.t] (field 0 of its block is
    the atomic word) whose block is padded to {!words} words, so no
    later-allocated heap object can share its cache line. Padding is
    part of the block itself and therefore survives minor-heap
    promotion and major-heap compaction. *)
