(** Bounded single-producer / single-consumer ring buffer.

    The inter-domain transfer primitive of the multicore dataplane
    (ROADMAP item 1): one domain pushes, one domain pops, and the only
    shared words are the two index atomics — the classic SPSC design
    the paper's shared-nothing sharding assumes (§7.2). Cells are
    published by the producer's [Atomic.set] on [tail] (release) and
    observed through the consumer's [Atomic.get] (acquire), so the
    OCaml 5 memory model orders the cell write before the index
    becomes visible; symmetrically for [head] on the pop side.

    Cache-layout contract (DESIGN.md §11). The PR-6 ring scaled
    *backwards* (BENCH_colibri.json: 43.8 → 0.13 Mxfers/s going from 1
    to 2 domains) for two reasons this layout removes:

    - {b False sharing}: [head] and [tail] were two bare [Atomic.t]
      allocated back to back — same cache line, so every push
      invalidated the consumer's cached copy of its own index and vice
      versa. Both indices now live in {!Cacheline.atomic} blocks
      padded to a full line, and each side's private state sits in its
      own line-padded {!side} record, allocated so producer-written
      and consumer-written lines never interleave.
    - {b Remote polling}: [try_push]/[try_pop] read the *remote* index
      on every call — a guaranteed coherence miss per transfer. Each
      side now keeps a cached copy of the last-seen remote index
      ([side.seen]) and a private mirror of its own ([side.ix]), and
      refreshes the cache only on apparent-full/apparent-empty: in
      steady state a transfer touches the remote line once per
      capacity-worth (or batch-worth) of operations.

    Batched transfer ({!push_n}/{!pop_into}) amortizes further: one
    ownership check, one cached-index refresh, and one release store
    cover a whole burst.

    Ownership-transfer protocol (enforced statically by domaincheck d8
    and dynamically by {!Par_check}): the push endpoint belongs to
    exactly one domain, the pop endpoint to exactly one domain, and a
    value — in particular a [bytes] buffer — must not be touched by
    the producer after it has been pushed; ownership moves with the
    value. For {!push_n} the transfer applies to the pushed {e
    elements}; the source array itself stays with the producer (its
    cells are copied out). The ring overwrites popped cells with
    [dummy] so it never retains a transferred value behind the
    consumer's back. *)

open Par_check

(* Per-side private state: the side's own index mirror and its cached
   copy of the remote index. Only the owning domain ever touches a
   [side]; the padding fields stretch the record past 128 bytes so the
   two sides (and the index atomics next to them) cannot share a cache
   line even when allocated back to back. The pads are never read —
   they exist purely for their footprint. *)
type side = {
  mutable ix : int; (* private mirror of this side's atomic index *)
  mutable seen : int; (* cached last-seen value of the remote index *)
  p02 : int; p03 : int; p04 : int; p05 : int; p06 : int;
  p07 : int; p08 : int; p09 : int; p10 : int; p11 : int;
  p12 : int; p13 : int; p14 : int; p15 : int; p16 : int;
}

let fresh_side () : side =
  {
    ix = 0; seen = 0;
    p02 = 0; p03 = 0; p04 = 0; p05 = 0; p06 = 0;
    p07 = 0; p08 = 0; p09 = 0; p10 = 0; p11 = 0;
    p12 = 0; p13 = 0; p14 = 0; p15 = 0; p16 = 0;
  }

type 'a t = {
  buf : 'a array;
  mask : int; (* capacity - 1; capacity is a power of two *)
  dummy : 'a;
  check : bool;
  tail : int Atomic.t; (* next index to push; line-padded, producer-written *)
  prod : side; (* producer-private: ix mirrors tail, seen caches head *)
  head : int Atomic.t; (* next index to pop; line-padded, consumer-written *)
  cons : side; (* consumer-private: ix mirrors head, seen caches tail *)
  producer : int Atomic.t; (* owning domain ids, Par_check.unbound until *)
  consumer : int Atomic.t; (* the first push/pop binds them *)
}

let rec pow2 (n : int) (c : int) = if c >= n then c else pow2 n (c * 2)

let create ?(check = true) ~(dummy : 'a) (capacity : int) : 'a t =
  if capacity < 1 then invalid_arg "Spsc_ring.create: capacity < 1";
  let cap = pow2 capacity 1 in
  (* Allocation order groups each side's blocks together (the minor
     heap hands out consecutive addresses): [tail|prod] are
     producer-written, [head|cons] consumer-written, and every block
     is ≥ 128 bytes, so the boundary between the groups is all
     padding — no line holds words written by both domains. *)
  let buf = Array.make cap dummy in
  let tail = Cacheline.atomic 0 in
  let prod = fresh_side () in
  let head = Cacheline.atomic 0 in
  let cons = fresh_side () in
  { buf; mask = cap - 1; dummy; check; tail; prod; head; cons;
    producer = fresh_slot (); consumer = fresh_slot () }

let capacity (t : _ t) : int = t.mask + 1

let length (t : _ t) : int =
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n

let check_producer (t : _ t) : unit =
  if t.check then
    bind_or_check ~slot:t.producer ~role:"producer" ~what:"Spsc_ring.push"

let check_consumer (t : _ t) : unit =
  if t.check then
    bind_or_check ~slot:t.consumer ~role:"consumer" ~what:"Spsc_ring.pop"

(* Producer-side space probe: true iff a push at [tail] fits, refreshing
   the cached head only when the cache says full. *)
let[@inline] prod_has_room (t : _ t) (tail : int) : bool =
  tail - t.prod.seen <= t.mask
  || begin
       t.prod.seen <- Atomic.get t.head;
       tail - t.prod.seen <= t.mask
     end

(* Consumer-side data probe: true iff a pop at [head] has a value,
   refreshing the cached tail only when the cache says empty. *)
let[@inline] cons_has_data (t : _ t) (head : int) : bool =
  t.cons.seen - head > 0
  || begin
       t.cons.seen <- Atomic.get t.tail;
       t.cons.seen - head > 0
     end

let try_push (t : 'a t) (v : 'a) : bool =
  check_producer t;
  let tail = t.prod.ix in
  if not (prod_has_room t tail) then false
  else begin
    t.buf.(tail land t.mask) <- v;
    Atomic.set t.tail (tail + 1);
    t.prod.ix <- tail + 1;
    true
  end

let try_pop (t : 'a t) : 'a option =
  check_consumer t;
  let head = t.cons.ix in
  if not (cons_has_data t head) then None
  else begin
    let i = head land t.mask in
    let v = t.buf.(i) in
    t.buf.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    t.cons.ix <- head + 1;
    Some v
  end

(* ----------------------------- batching ---------------------------- *)

(* One ownership check, at most one cached-index refresh, and a single
   release store per burst: the acquire/release pair amortizes across
   [n] transfers instead of being paid per element. *)

let push_n (t : 'a t) (src : 'a array) ~(pos : int) ~(len : int) : int =
  check_producer t;
  let tail = t.prod.ix in
  let room = t.mask + 1 - (tail - t.prod.seen) in
  let room =
    if room >= len then room
    else begin
      t.prod.seen <- Atomic.get t.head;
      t.mask + 1 - (tail - t.prod.seen)
    end
  in
  let n = if room < len then room else len in
  if n <= 0 then 0
  else begin
    for k = 0 to n - 1 do
      t.buf.((tail + k) land t.mask) <- src.(pos + k)
    done;
    Atomic.set t.tail (tail + n);
    t.prod.ix <- tail + n;
    n
  end

let pop_into (t : 'a t) (dst : 'a array) ~(pos : int) ~(len : int) : int =
  check_consumer t;
  let head = t.cons.ix in
  let avail = t.cons.seen - head in
  let avail =
    if avail >= len then avail
    else begin
      t.cons.seen <- Atomic.get t.tail;
      t.cons.seen - head
    end
  in
  let n = if avail < len then avail else len in
  if n <= 0 then 0
  else begin
    for k = 0 to n - 1 do
      let i = (head + k) land t.mask in
      dst.(pos + k) <- t.buf.(i);
      t.buf.(i) <- t.dummy
    done;
    Atomic.set t.head (head + n);
    t.cons.ix <- head + n;
    n
  end

(* ------------------------- spinning variants ------------------------ *)

(* For the dataplane loops: no allocation, no blocking primitive
   (domaincheck d9 keeps [Mutex]/[Condition] out of hot spawn
   closures), just [Domain.cpu_relax] between attempts. The ownership
   check runs once per call; the relax loop then spins on the
   index-only fast path — re-running [bind_or_check] per iteration
   (as the PR-6 [push_spin]/[pop_spin] did via [try_push]) put an
   extra atomic load and branch inside the tightest wait loop in the
   tree. *)

let push_spin (t : 'a t) (v : 'a) : unit =
  check_producer t;
  let tail = t.prod.ix in
  while not (prod_has_room t tail) do
    Domain.cpu_relax ()
  done;
  t.buf.(tail land t.mask) <- v;
  Atomic.set t.tail (tail + 1);
  t.prod.ix <- tail + 1

let pop_spin (t : 'a t) : 'a =
  check_consumer t;
  let head = t.cons.ix in
  while not (cons_has_data t head) do
    Domain.cpu_relax ()
  done;
  let i = head land t.mask in
  let v = t.buf.(i) in
  t.buf.(i) <- t.dummy;
  Atomic.set t.head (head + 1);
  t.cons.ix <- head + 1;
  v

let endpoints (t : _ t) : int * int =
  (Atomic.get t.producer, Atomic.get t.consumer)

let corrupt_endpoint_for_test (t : _ t) (which : [ `Producer | `Consumer ]) :
    unit =
  match which with
  | `Producer -> corrupt_slot_for_test t.producer
  | `Consumer -> corrupt_slot_for_test t.consumer
