(** Bounded single-producer / single-consumer ring buffer.

    The inter-domain transfer primitive of the multicore dataplane
    (ROADMAP item 1): one domain pushes, one domain pops, and the only
    shared words are the two [Atomic.t] indices — the classic SPSC
    design the paper's shared-nothing sharding assumes (§7.2). Cells
    are published by the producer's [Atomic.set] on [tail] (release)
    and observed through the consumer's [Atomic.get] (acquire), so the
    OCaml 5 memory model orders the cell write before the index
    becomes visible; symmetrically for [head] on the pop side.

    Ownership-transfer protocol (enforced statically by domaincheck d8
    and dynamically by {!Par_check}): the push endpoint belongs to
    exactly one domain, the pop endpoint to exactly one domain, and a
    value — in particular a [bytes] buffer — must not be touched by
    the producer after it has been pushed; ownership moves with the
    value. The ring overwrites popped cells with [dummy] so it never
    retains a transferred value behind the consumer's back. *)

open Par_check

type 'a t = {
  buf : 'a array;
  mask : int; (* capacity - 1; capacity is a power of two *)
  dummy : 'a;
  head : int Atomic.t; (* next index to pop; written by the consumer *)
  tail : int Atomic.t; (* next index to push; written by the producer *)
  check : bool;
  producer : int Atomic.t; (* owning domain ids, Par_check.unbound until *)
  consumer : int Atomic.t; (* the first push/pop binds them *)
}

let rec pow2 (n : int) (c : int) = if c >= n then c else pow2 n (c * 2)

let create ?(check = true) ~(dummy : 'a) (capacity : int) : 'a t =
  if capacity < 1 then invalid_arg "Spsc_ring.create: capacity < 1";
  let cap = pow2 capacity 1 in
  {
    buf = Array.make cap dummy;
    mask = cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    check;
    producer = fresh_slot ();
    consumer = fresh_slot ();
  }

let capacity (t : _ t) : int = t.mask + 1

let length (t : _ t) : int =
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n

let check_producer (t : _ t) : unit =
  if t.check then
    bind_or_check ~slot:t.producer ~role:"producer" ~what:"Spsc_ring.push"

let check_consumer (t : _ t) : unit =
  if t.check then
    bind_or_check ~slot:t.consumer ~role:"consumer" ~what:"Spsc_ring.pop"

let try_push (t : 'a t) (v : 'a) : bool =
  check_producer t;
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    t.buf.(tail land t.mask) <- v;
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop (t : 'a t) : 'a option =
  check_consumer t;
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let v = t.buf.(i) in
    t.buf.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some v
  end

(* Spinning variants for the dataplane loops: no allocation, no
   blocking primitive (domaincheck d9 keeps [Mutex]/[Condition] out of
   hot spawn closures), just [Domain.cpu_relax] between attempts. *)

let rec push_spin (t : 'a t) (v : 'a) : unit =
  if not (try_push t v) then begin
    Domain.cpu_relax ();
    push_spin t v
  end

let rec pop_spin (t : 'a t) : 'a =
  check_consumer t;
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then begin
    Domain.cpu_relax ();
    pop_spin t
  end
  else begin
    let i = head land t.mask in
    let v = t.buf.(i) in
    t.buf.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    v
  end

let endpoints (t : _ t) : int * int =
  (Atomic.get t.producer, Atomic.get t.consumer)

let corrupt_endpoint_for_test (t : _ t) (which : [ `Producer | `Consumer ]) :
    unit =
  match which with
  | `Producer -> corrupt_slot_for_test t.producer
  | `Consumer -> corrupt_slot_for_test t.consumer
