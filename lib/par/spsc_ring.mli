(** Bounded single-producer / single-consumer ring buffer — the
    inter-domain transfer primitive of the multicore dataplane
    (DESIGN.md §11, ROADMAP item 1).

    Protocol: exactly one domain pushes, exactly one domain pops, and
    a value must not be aliased by the producer after it is pushed
    (ownership moves with the value). [colibri-domaincheck] rule d8
    enforces this statically; at runtime each endpoint records the
    first domain id that uses it and any use from another domain
    raises {!Par_check.Ownership_violation} (disable per-ring with
    [~check:false] for benchmarks). *)

type 'a t

val create : ?check:bool -> dummy:'a -> int -> 'a t
(** [create ~dummy n] is an empty ring with capacity [n] rounded up to
    a power of two. Popped cells are overwritten with [dummy] so the
    ring never retains a transferred value. [check] (default [true])
    keeps the dynamic endpoint-ownership checker on. *)

val capacity : _ t -> int
val length : _ t -> int
(** Number of buffered values; racy-but-bounded when read from a third
    domain (monitoring only). *)

val try_push : 'a t -> 'a -> bool
(** Producer endpoint. [false] when full. *)

val try_pop : 'a t -> 'a option
(** Consumer endpoint. [None] when empty. *)

val push_n : 'a t -> 'a array -> pos:int -> len:int -> int
(** [push_n t src ~pos ~len] pushes up to [len] values from
    [src.(pos..)] and returns how many were transferred (0 when full;
    never partial-then-raise). One ownership check and one release
    store cover the whole burst. Ownership of the pushed {e elements}
    moves to the consumer; [src] itself stays with the producer (its
    cells are copied out, not aliased by the ring beyond the pop). *)

val pop_into : 'a t -> 'a array -> pos:int -> len:int -> int
(** [pop_into t dst ~pos ~len] pops up to [len] values into
    [dst.(pos..)] and returns how many arrived (0 when empty).
    Allocation-free; popped ring cells are overwritten with the
    [dummy]. One ownership check and one release store per burst. *)

val push_spin : 'a t -> 'a -> unit
(** [try_push] retried with [Domain.cpu_relax] until space is free —
    allocation-free, never blocks on a lock. *)

val pop_spin : 'a t -> 'a
(** Spin until a value is available; allocation-free (no [option]). *)

val endpoints : _ t -> int * int
(** The recorded (producer, consumer) domain ids;
    {!Par_check.unbound} until the first push/pop. *)

val corrupt_endpoint_for_test : _ t -> [ `Producer | `Consumer ] -> unit
(** Force the recorded owner to a bogus domain id so the next
    legitimate operation trips the checker — regression tests only. *)
