(** Per-domain telemetry ownership with merge-at-sample.

    Obs counters are plain mutable ints by design (allocation-free on
    the per-packet path, DESIGN.md §7) — they cannot be shared across
    domains. The rule (domaincheck d6 and DESIGN.md §11) is ownership:
    each worker domain owns one private {!Obs.Registry.t} slot and is
    the only domain that ever increments it; the orchestrating domain
    merges the per-slot snapshots at sample time, exactly as the
    shared-nothing shards of {!Colibri.Dataplane_shard} already merge.

    [claim] is the checked entry point: called from inside the worker
    domain it binds the slot to that domain id, and a second claim
    from a different domain raises {!Par_check.Ownership_violation}. *)

open Par_check

type t = {
  slots : Obs.Registry.t array;
  owners : int Atomic.t array; (* domain id per claimed slot *)
}

let create ~(slots : int) : t =
  if slots < 1 then invalid_arg "Par_obs.create: slots < 1";
  {
    slots = Array.init slots (fun _ -> Obs.Registry.create ());
    owners = Array.init slots (fun _ -> fresh_slot ());
  }

let slots (t : t) : int = Array.length t.slots

(* Unchecked access, for wiring state records together at construction
   time (before the worker domains exist). *)
let registry (t : t) (i : int) : Obs.Registry.t = t.slots.(i)

let claim (t : t) (i : int) : Obs.Registry.t =
  bind_or_check ~slot:t.owners.(i) ~role:"owner" ~what:"Par_obs.claim";
  t.slots.(i)

let owner (t : t) (i : int) : int = Atomic.get t.owners.(i)

(* Merge-at-sample: reads of another domain's counters are racy but
   monotone (single [int] fields, no tearing on 64-bit); sample after
   [Domain_pool.join] for exact totals, or live for monitoring. *)
let sample (t : t) : Obs.snapshot =
  Obs.merge (Array.to_list (Array.map Obs.Registry.snapshot t.slots))
