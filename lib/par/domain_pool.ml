(** A minimal fixed-size domain pool: spawn [n] indexed workers, join
    them all. The index is the worker's identity — per-worker state
    (its shard, its rings, its {!Par_obs} slot) is selected by index
    inside the spawned closure, so workers share nothing but the
    explicitly-[Atomic] handshake structures (domaincheck d6). *)

type 'a t = { workers : 'a Domain.t array }

let spawn ~(n : int) (f : int -> 'a) : 'a t =
  if n < 1 then invalid_arg "Domain_pool.spawn: n < 1";
  { workers = Array.init n (fun i -> Domain.spawn (fun () -> f i)) }

let size (t : _ t) : int = Array.length t.workers

(* Joining blocks, deliberately: the pool is driven from the
   orchestrating (main) domain, never from inside a hot spawn closure
   (domaincheck d9 flags [Domain.join] there). *)
let join (t : 'a t) : 'a array = Array.map Domain.join t.workers

let recommended () : int = Domain.recommended_domain_count ()
