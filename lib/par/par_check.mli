(** Dynamic domain-ownership checker backing the [Par] substrate
    (DESIGN.md §11). Endpoint slots record the first domain id that
    uses them; any later use from a different domain raises
    {!Ownership_violation}. *)

exception Ownership_violation of string

val self_id : unit -> int
(** The calling domain's id as an integer. *)

val unbound : int
(** Sentinel held by a slot no domain has claimed yet. *)

val fresh_slot : unit -> int Atomic.t
(** A new, unclaimed endpoint slot. *)

val bind_or_check : slot:int Atomic.t -> role:string -> what:string -> unit
(** Claim [slot] for the calling domain (first use, CAS) or verify the
    caller is the recorded owner; raises {!Ownership_violation}
    otherwise. [role]/[what] name the endpoint in the error. *)

val corrupt_slot_for_test : int Atomic.t -> unit
(** Bind the slot to an id no live domain carries so the next
    legitimate use trips the checker — regression-test hook only. *)
