(** Cache-line isolation for contended atomics (DESIGN.md §11).

    [Atomic.make] allocates a bare one-word block, so two atomics
    created back to back — the classic head/tail pair of an SPSC ring —
    land on the same cache line and every producer-side store
    invalidates the consumer's cached copy of its *own* index (false
    sharing). The PR-6 ring paid exactly that: a coherence round-trip
    per transfer, collapsing the 2-domain rate 340× below the 1-domain
    rate.

    [atomic v] returns a regular [int Atomic.t] whose heap block is
    over-allocated to {!words} machine words (128 bytes on 64-bit):
    the atomic word is field 0 and the remaining fields are dead
    padding, so the *next* heap block — in particular the opposite
    ring index — starts at least a full cache line away (64-byte
    lines, and the 128-byte spatial-prefetch pairs of recent x86/ARM
    cores). This is the standard OCaml multicore idiom (cf.
    [multicore-magic]'s [copy_as_padded], used by [saturn]'s queues):
    the runtime's atomic primitives operate on field 0 of the block
    and are indifferent to its size, and the padding fields hold
    immediates ([Val_unit] from [Obj.new_block], then never touched),
    so the GC scans them in a single sweep without following anything.

    The padding survives moves: minor-heap promotion and major-heap
    compaction copy the whole block, padding included, so the isolation
    holds for the object's entire lifetime — unlike spacer objects
    allocated *between* two atomics, which the GC is free to collect
    or compact away. *)

(* 16 words × 8 bytes = 128 bytes ≥ one line on every 64-byte-line
   core and one prefetch pair on 128-byte-pair cores. *)
let words = 16

let atomic (v : int) : int Atomic.t =
  (* Tag-0 blocks from [Obj.new_block] come initialized (every field
     is [Val_unit]), so the block is well-formed before the cast; the
     store below then publishes the real initial value through
     field 0, the only field [Atomic.get]/[set]/[compare_and_set]
     ever touch. *)
  let b = Obj.new_block 0 words in
  let a : int Atomic.t = Obj.magic b in
  Atomic.set a v;
  a
