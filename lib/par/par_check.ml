(** Dynamic ownership checker shared by the [Par] substrate.

    The static analyzer ([colibri-domaincheck], DESIGN.md §11) proves
    the domain-ownership discipline at compile time; this module is the
    runtime backstop it pairs with: endpoints record the first domain
    id that uses them and every later use from a different domain
    raises {!Ownership_violation}. The check is one [Atomic.get] plus
    an integer compare on the owning path, so rings can afford to keep
    it on outside benchmarks. *)

exception Ownership_violation of string

let self_id () : int = (Domain.self () :> int)

(* Unbound endpoints hold [unbound]; the first user claims the slot
   with a CAS so two domains racing to be "first" cannot both win. *)
let unbound = -1

let violation ~role ~what ~bound ~self =
  raise
    (Ownership_violation
       (Printf.sprintf
          "%s: %s endpoint is owned by domain %d, used from domain %d" what
          role bound self))

let bind_or_check ~(slot : int Atomic.t) ~(role : string) ~(what : string) :
    unit =
  let self = self_id () in
  let bound = Atomic.get slot in
  if bound = self then ()
  else if bound = unbound then begin
    if not (Atomic.compare_and_set slot unbound self) then begin
      let bound = Atomic.get slot in
      if bound <> self then violation ~role ~what ~bound ~self
    end
  end
  else violation ~role ~what ~bound ~self

let fresh_slot () : int Atomic.t = Atomic.make unbound

(* Test hook (the [corrupt_for_test] convention of DESIGN.md §6): bind
   the slot to an id no live domain carries, so the next legitimate use
   trips the checker deterministically. *)
let corrupt_slot_for_test (slot : int Atomic.t) : unit =
  Atomic.set slot (self_id () + 1_000_000)
