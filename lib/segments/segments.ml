(** Path segments and beaconing (§2.2).

    SCION splits global path discovery into three sub-problems: an
    intra-ISD process discovering {e up-segments} (non-core AS → core
    AS) and {e down-segments} (core AS → non-core AS), and an inter-ISD
    process discovering {e core-segments} between core ASes. Source
    hosts combine at most one up-, one core-, and one down-segment into
    a full end-to-end path.

    {!discover} simulates the beaconing processes on a {!Topology.t}
    and fills a segment database; {!Db.paths} performs the combination.
    Colibri's three segment-reservation types (up-/down-/core-SegRs,
    §3.3) map one-to-one onto these segment types. *)

open Colibri_types
open Colibri_topology

type kind = Up | Down | Core

let pp_kind ppf = function
  | Up -> Fmt.string ppf "up"
  | Down -> Fmt.string ppf "down"
  | Core -> Fmt.string ppf "core"

type t = { kind : kind; path : Path.t }
(** A segment, oriented in its own direction of travel: an up-segment
    runs from the non-core AS towards the core, a down-segment from the
    core towards the non-core AS, a core-segment between two core
    ASes. *)

let source (s : t) = Path.source s.path
let destination (s : t) = Path.destination s.path
let length (s : t) = Path.length s.path
let pp ppf (s : t) = Fmt.pf ppf "%a[%a]" pp_kind s.kind Path.pp s.path

let equal (a : t) (b : t) = a.kind = b.kind && Path.equal a.path b.path

(** Segment database, as maintained by path servers / the CServ's
    segment cache. *)
module Db = struct
  type seg = t

  type t = {
    mutable up : seg list Ids.Asn_map.t; (* keyed by non-core source AS *)
    mutable down : seg list Ids.Asn_map.t; (* keyed by non-core destination AS *)
    mutable core : seg list Ids.Asn_map.t Ids.Asn_map.t; (* src core → dst core → segs *)
  }

  let create () =
    { up = Ids.Asn_map.empty; down = Ids.Asn_map.empty; core = Ids.Asn_map.empty }

  let add_to_map m key seg =
    let existing = Option.value ~default:[] (Ids.Asn_map.find_opt key m) in
    if List.exists (equal seg) existing then m
    else Ids.Asn_map.add key (seg :: existing) m

  let add (db : t) (seg : seg) =
    match seg.kind with
    | Up -> db.up <- add_to_map db.up (source seg) seg
    | Down -> db.down <- add_to_map db.down (destination seg) seg
    | Core ->
        let src = source seg and dst = destination seg in
        let inner =
          Option.value ~default:Ids.Asn_map.empty (Ids.Asn_map.find_opt src db.core)
        in
        db.core <- Ids.Asn_map.add src (add_to_map inner dst seg) db.core

    (* Lookups return shortest-first. *)

  let sort_segs = List.sort (fun a b -> Int.compare (length a) (length b))

  let up_segments (db : t) ~(src : Ids.asn) : seg list =
    sort_segs (Option.value ~default:[] (Ids.Asn_map.find_opt src db.up))

  let down_segments (db : t) ~(dst : Ids.asn) : seg list =
    sort_segs (Option.value ~default:[] (Ids.Asn_map.find_opt dst db.down))

  let core_segments (db : t) ~(src : Ids.asn) ~(dst : Ids.asn) : seg list =
    match Ids.Asn_map.find_opt src db.core with
    | None -> []
    | Some inner -> sort_segs (Option.value ~default:[] (Ids.Asn_map.find_opt dst inner))

  let size (db : t) =
    let count m = Ids.Asn_map.fold (fun _ l acc -> acc + List.length l) m 0 in
    count db.up + count db.down
    + Ids.Asn_map.fold (fun _ inner acc -> acc + count inner) db.core 0

  (** All end-to-end segment combinations from [src] to [dst], shortest
      total AS-path first, capped at [limit]. Each result is the list
      of (at most three) segments whose paths join end-to-end; the
      corresponding full path is obtained with {!join_path}. Handles
      all the structural cases: same AS, endpoints core or non-core,
      shared core AS (no core segment needed). *)
  let combinations ?(limit = 8) (db : t) ~(src : Ids.asn) ~(dst : Ids.asn) :
      seg list list =
    if Ids.equal_asn src dst then []
    else begin
      (* Candidate "first part": up segments from src, or nothing if the
         source is itself at the core (we detect that by the presence of
         core segments from it or up-segments ending at it). *)
      let ups = up_segments db ~src in
      let downs = down_segments db ~dst in
      let results = ref [] in
      let add combo = results := combo :: !results in
      (* Case A: src core, dst core. *)
      core_segments db ~src ~dst |> List.iter (fun c -> add [ c ]);
      (* Case B: src core, dst non-core: core + down, or direct down. *)
      downs
      |> List.iter (fun (d : seg) ->
             let core_start = source d in
             if Ids.equal_asn core_start src then add [ d ]
             else
               core_segments db ~src ~dst:core_start
               |> List.iter (fun c -> add [ c; d ]));
      (* Case C: src non-core, dst core: up, or up + core. *)
      ups
      |> List.iter (fun (u : seg) ->
             let core_end = destination u in
             if Ids.equal_asn core_end dst then add [ u ]
             else
               core_segments db ~src:core_end ~dst
               |> List.iter (fun c -> add [ u; c ]));
      (* Case D: src non-core, dst non-core: up + (core?) + down. *)
      ups
      |> List.iter (fun (u : seg) ->
             let core_end = destination u in
             downs
             |> List.iter (fun (d : seg) ->
                    let core_start = source d in
                    if Ids.equal_asn core_end core_start then add [ u; d ]
                    else
                      core_segments db ~src:core_end ~dst:core_start
                      |> List.iter (fun c -> add [ u; c; d ])));
      let total_len combo = List.fold_left (fun acc s -> acc + length s) 0 combo in
      let sorted = List.sort (fun a b -> Int.compare (total_len a) (total_len b)) !results in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      take limit sorted
    end

  (** Splice a combination into one end-to-end {!Path.t}. *)
  let join_path (combo : seg list) : Path.t =
    match combo with
    | [] -> invalid_arg "Segments.Db.join_path: empty combination"
    | first :: rest -> List.fold_left (fun acc s -> Path.join acc s.path) first.path rest

  (** Convenience: full candidate paths from [src] to [dst]. *)
  let paths ?limit (db : t) ~(src : Ids.asn) ~(dst : Ids.asn) : Path.t list =
    List.map join_path (combinations ?limit db ~src ~dst)
end

(* Beaconing ----------------------------------------------------------- *)

(* Depth-first propagation from a core AS down the provider→customer
   hierarchy, yielding every simple downward path as a down-segment
   (and its reverse as an up-segment at the reached AS). *)
let intra_isd_beacons (topo : Topology.t) ~(core : Ids.asn) ~(db : Db.t)
    ~(max_len : int) =
  let rec dfs (path_rev : Path.hop list) (at : Ids.asn) (in_iface : Ids.iface) depth =
    (* [path_rev]: hops strictly above [at], last element = core AS. *)
    let register () =
      if not (List.is_empty path_rev) then begin
        let down_path =
          List.rev (Path.hop ~asn:at ~ingress:in_iface ~egress:Ids.local_iface :: path_rev)
        in
        Db.add db { kind = Down; path = down_path };
        Db.add db { kind = Up; path = Path.reverse down_path }
      end
    in
    register ();
    if depth < max_len then
      Topology.children topo at
      |> List.iter (fun ((child : Ids.asn), (link : Topology.link)) ->
             let seen = List.exists (fun (h : Path.hop) -> Ids.equal_asn h.asn child) path_rev in
             if not (seen || Ids.equal_asn child at) then begin
               let hop = Path.hop ~asn:at ~ingress:in_iface ~egress:link.local_iface in
               dfs (hop :: path_rev) child link.remote_iface (depth + 1)
             end)
  in
  dfs [] core Ids.local_iface 0

(* Breadth-limited search over core links from [src_core], yielding up
   to [max_per_pair] simple core paths to every other core AS. *)
let core_beacons (topo : Topology.t) ~(src_core : Ids.asn) ~(db : Db.t)
    ~(max_len : int) ~(max_per_pair : int) =
  let found : int Ids.Asn_tbl.t = Ids.Asn_tbl.create 16 in
  let rec dfs (path_rev : Path.hop list) (at : Ids.asn) (in_iface : Ids.iface) depth =
    if not (Ids.equal_asn at src_core) then begin
      let n = Option.value ~default:0 (Ids.Asn_tbl.find_opt found at) in
      if n < max_per_pair then begin
        Ids.Asn_tbl.replace found at (n + 1);
        let path =
          List.rev (Path.hop ~asn:at ~ingress:in_iface ~egress:Ids.local_iface :: path_rev)
        in
        Db.add db { kind = Core; path }
      end
    end;
    if depth < max_len then
      Topology.core_links topo at
      |> List.iter (fun (link : Topology.link) ->
             let next = link.remote_as in
             let seen =
               Ids.equal_asn next src_core
               || List.exists (fun (h : Path.hop) -> Ids.equal_asn h.asn next) path_rev
             in
             if not seen then begin
               let hop = Path.hop ~asn:at ~ingress:in_iface ~egress:link.local_iface in
               dfs (hop :: path_rev) next link.remote_iface (depth + 1)
             end)
  in
  dfs [] src_core Ids.local_iface 0

(** Run both beaconing processes over the whole topology and return the
    resulting segment database. [max_len] bounds segment length in AS
    hops; [max_per_pair] bounds the number of core segments kept per
    (src, dst) core pair. *)
let discover ?(max_len = 8) ?(max_per_pair = 4) (topo : Topology.t) : Db.t =
  let db = Db.create () in
  Topology.core_ases topo
  |> List.iter (fun core ->
         intra_isd_beacons topo ~core ~db ~max_len;
         core_beacons topo ~src_core:core ~db ~max_len ~max_per_pair);
  db
