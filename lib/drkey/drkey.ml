(** Dynamically-recreatable-key (DRKey) infrastructure (§2.3, [43]).

    Each AS [A] holds a per-epoch secret value [K_A] and derives the
    AS-level key shared with any other AS [B] on the fly:

    {v K_{A→B} = PRF_{K_A}(B)  (Eq. 1) v}

    The derivation side ([A], "fast side") evaluates one PRF — cheaper
    than a memory lookup; the other side ([B], "slow side") must fetch
    [K_{A→B}] from [A]'s key server ahead of time, which in reality is
    protected by public-key cryptography and here is modeled as an
    explicit fetch through {!Key_server.fetch}. Keys are valid for one
    epoch (a day in the paper) and cached until then.

    From the AS-level key, protocol- and host-specific subkeys are
    derived (the paper's footnote 2); Colibri control-plane MACs use
    the ["colibri"] protocol key. *)

open Colibri_types

module Epoch = struct
  (** Key validity epochs. Epoch [i] covers
      [[i * duration, (i+1) * duration)). *)

  type t = int

  let duration : Timebase.t = 86_400. (* one day, as in the paper *)
  let of_time (now : Timebase.t) : t = int_of_float (Float.floor (now /. duration))
  let start (e : t) : Timebase.t = float_of_int e *. duration
  let end_ (e : t) : Timebase.t = float_of_int (e + 1) *. duration
  let pp = Fmt.int
end

(** Secret values: one fresh 16-byte secret per (AS, epoch). *)
module Secret = struct
  type t = { asn : Ids.asn; epoch : Epoch.t; prf : Crypto.Prf.key }

  let create ~rng ~asn ~epoch =
    { asn; epoch; prf = Crypto.Prf.of_secret (Crypto.Prf.random_secret ~rng) }

  (** Deterministic variant used by benchmarks so that repeated runs
      measure identical work. The secret is derived with the project
      PRF over a canonical byte encoding of [(asn, epoch)] keyed by the
      seed — portable across OCaml versions, unlike the polymorphic
      structural hash it replaces. *)
  let of_seed ~asn ~epoch ~seed =
    let seed_key = Bytes.create 16 in
    Bytes.set_int64_be seed_key 0 (Int64.of_int seed);
    Bytes.set_int64_be seed_key 8 (Int64.lognot (Int64.of_int seed));
    let input = Bytes.create 12 in
    Bytes.blit (Ids.asn_to_bytes asn) 0 input 0 8;
    Bytes.set_int32_be input 8 (Int32.of_int epoch);
    let material = Crypto.Prf.derive (Crypto.Prf.of_secret seed_key) input in
    { asn; epoch; prf = Crypto.Prf.of_secret material }
end

type as_key = {
  fast : Ids.asn;  (** the AS that can re-derive the key on the fly *)
  slow : Ids.asn;  (** the AS that had to fetch it *)
  epoch : Epoch.t;
  material : bytes;
}
(** A first-level key [K_{fast→slow}]. *)

(** [derive_as_key secret ~slow] computes [K_{A→slow}] on the fast
    side; one PRF evaluation, no state. *)
let derive_as_key (s : Secret.t) ~(slow : Ids.asn) : as_key =
  let input = Bytes.create 12 in
  Bytes.blit (Ids.asn_to_bytes slow) 0 input 0 8;
  Bytes.set_int32_be input 8 (Int32.of_int s.epoch);
  { fast = s.asn; slow; epoch = s.epoch; material = Crypto.Prf.derive s.prf input }

(** Second-level derivation: protocol-specific key
    [K_{A→B}^{proto} = PRF_{K_{A→B}}(proto)]. *)
let protocol_key (k : as_key) ~(protocol : string) : bytes =
  Crypto.Prf.derive_string (Crypto.Prf.of_secret k.material) protocol

(** Third-level derivation: host-specific key for [host] in the slow
    AS, e.g. to authenticate end-host requests to remote CServs. *)
let host_key (k : as_key) ~(protocol : string) ~(host : Ids.host) : bytes =
  let pk = protocol_key k ~protocol in
  let input = Bytes.create 4 in
  Bytes.set_int32_be input 0 (Int32.of_int host.addr);
  Crypto.Prf.derive (Crypto.Prf.of_secret pk) input

let colibri_protocol = "colibri"

(** The CMAC key used to authenticate Colibri control-plane payloads
    between two ASes (§4.5). *)
let control_mac_key (k : as_key) : Crypto.Cmac.key =
  Crypto.Cmac.of_secret (protocol_key k ~protocol:colibri_protocol)

(** The AEAD key used to return hop authenticators (Eq. (5)). *)
let hopauth_aead_key (k : as_key) : Crypto.Aead.key =
  Crypto.Aead.of_secret (protocol_key k ~protocol:"colibri-hopauth")

(** Per-AS key server: owns the secret values and answers fetch
    requests from slow-side ASes. Rotates secrets by epoch. *)
module Key_server = struct
  type t = {
    asn : Ids.asn;
    clock : Timebase.clock;
    rng : Random.State.t;
    mutable secrets : Secret.t list; (* newest first; old epochs pruned *)
  }

  let create ?(rng = Random.State.make [| 0x5ec2e7 |]) ~clock asn =
    { asn; clock; rng; secrets = [] }

  (** Current-epoch secret, created lazily on first use of an epoch. *)
  let secret (t : t) : Secret.t =
    let epoch = Epoch.of_time (t.clock ()) in
    match List.find_opt (fun (s : Secret.t) -> s.epoch = epoch) t.secrets with
    | Some s -> s
    | None ->
        let s = Secret.create ~rng:t.rng ~asn:t.asn ~epoch in
        (* Keep the previous epoch for grace-period validation. *)
        t.secrets <-
          s :: List.filter (fun (x : Secret.t) -> x.epoch >= epoch - 1) t.secrets;
        s

  (** Fast-side derivation for this AS. *)
  let derive (t : t) ~(slow : Ids.asn) : as_key = derive_as_key (secret t) ~slow

  (** Slow-side fetch: what AS [requester]'s key server obtains from
      this one. In deployment this exchange is signed; the simulation
      returns the key directly — the security analysis only needs both
      sides to end up with the same key material. *)
  let fetch (t : t) ~(requester : Ids.asn) : as_key = derive t ~slow:requester
end

(** Slow-side cache of fetched keys with epoch expiry. *)
module Cache = struct
  type entry = { key : as_key; expires : Timebase.t }
  type t = { owner : Ids.asn; clock : Timebase.clock; table : entry Ids.Asn_tbl.t }

  let create ~clock owner = { owner; clock; table = Ids.Asn_tbl.create 64 }

  let find (t : t) ~(fast : Ids.asn) : as_key option =
    match Ids.Asn_tbl.find_opt t.table fast with
    | Some e when Timebase.( < ) (t.clock ()) e.expires -> Some e.key
    | Some _ ->
        Ids.Asn_tbl.remove t.table fast;
        None
    | None -> None

  (** [get t ~fast ~fetch] returns the cached key for [fast] or fetches
      and caches it. [fetch] stands for the network round trip to the
      fast AS's key server. *)
  let get (t : t) ~(fast : Ids.asn) ~(fetch : unit -> as_key) : as_key =
    match find t ~fast with
    | Some k -> k
    | None ->
        let key = fetch () in
        Ids.Asn_tbl.replace t.table fast { key; expires = Epoch.end_ key.epoch };
        key

  (** Insert a key obtained out of band (an asynchronous fetch over the
      control network); cached until its epoch ends, replacing any
      entry for the same fast AS. *)
  let put (t : t) (key : as_key) : unit =
    Ids.Asn_tbl.replace t.table key.fast { key; expires = Epoch.end_ key.epoch }

  let size (t : t) = Ids.Asn_tbl.length t.table
end
