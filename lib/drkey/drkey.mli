(** Dynamically-recreatable-key (DRKey) infrastructure (§2.3, [43]).

    Each AS [A] holds a per-epoch secret value [K_A] and derives the
    AS-level key shared with any other AS [B] on the fly:
    [K_{A→B} = PRF_{K_A}(B)] (Eq. (1)). The derivation ("fast") side
    evaluates one PRF — cheaper than a memory lookup; the other
    ("slow") side fetches [K_{A→B}] from [A]'s key server ahead of
    time and caches it for the epoch (a day). Protocol- and
    host-specific subkeys are derived below the AS-level key. *)

open Colibri_types

(** Key validity epochs: epoch [i] covers
    [[i·duration, (i+1)·duration)). *)
module Epoch : sig
  type t = int

  val duration : Timebase.t
  (** One day, as in the paper. *)

  val of_time : Timebase.t -> t
  val start : t -> Timebase.t
  val end_ : t -> Timebase.t
  val pp : t Fmt.t
end

(** Per-(AS, epoch) secret values. *)
module Secret : sig
  type t = { asn : Ids.asn; epoch : Epoch.t; prf : Crypto.Prf.key }

  val create : rng:Random.State.t -> asn:Ids.asn -> epoch:Epoch.t -> t

  val of_seed : asn:Ids.asn -> epoch:Epoch.t -> seed:int -> t
  (** Deterministic variant for reproducible benchmarks. *)
end

(** A first-level key [K_{fast→slow}]. *)
type as_key = {
  fast : Ids.asn;  (** can re-derive the key on the fly *)
  slow : Ids.asn;  (** had to fetch it *)
  epoch : Epoch.t;
  material : bytes;
}

val derive_as_key : Secret.t -> slow:Ids.asn -> as_key
(** Fast-side derivation: one PRF evaluation, no state. *)

val protocol_key : as_key -> protocol:string -> bytes
(** Second-level derivation: [K_{A→B}^{proto} = PRF_{K_{A→B}}(proto)]. *)

val host_key : as_key -> protocol:string -> host:Ids.host -> bytes
(** Third-level derivation for one host in the slow AS. *)

val colibri_protocol : string

val control_mac_key : as_key -> Crypto.Cmac.key
(** The CMAC key authenticating Colibri control-plane payloads between
    two ASes (§4.5). *)

val hopauth_aead_key : as_key -> Crypto.Aead.key
(** The AEAD key returning hop authenticators (Eq. (5)). *)

(** Per-AS key server: owns the secret values (rotated by epoch) and
    answers slow-side fetch requests. *)
module Key_server : sig
  type t

  val create : ?rng:Random.State.t -> clock:Timebase.clock -> Ids.asn -> t

  val secret : t -> Secret.t
  (** Current-epoch secret, created lazily. *)

  val derive : t -> slow:Ids.asn -> as_key
  (** Fast-side derivation for this AS. *)

  val fetch : t -> requester:Ids.asn -> as_key
  (** Slow-side fetch: what [requester]'s key server obtains from this
      one (protected by public-key crypto in deployment; returned
      directly in the simulation). *)
end

(** Slow-side cache of fetched keys with epoch expiry. *)
module Cache : sig
  type t

  val create : clock:Timebase.clock -> Ids.asn -> t
  val find : t -> fast:Ids.asn -> as_key option

  val get : t -> fast:Ids.asn -> fetch:(unit -> as_key) -> as_key
  (** Return the cached key for [fast] or fetch ([fetch] stands for
      the network round trip) and cache it until epoch end. *)

  val put : t -> as_key -> unit
  (** Insert a key obtained out of band (an asynchronous fetch over the
      control network); cached until its epoch ends. *)

  val size : t -> int
end
