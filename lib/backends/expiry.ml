(** Expiry heap shared by the admission backends: a binary min-heap of
    (time, undo thunk); thunks of expired entries run lazily at the
    next operation ([sweep]). Backends use it so that reservation
    state never needs a background task to decay. *)

open Colibri_types

type entry = { at : Timebase.t; undo : unit -> unit }
type t = { mutable heap : entry array; mutable size : int }

let create () = { heap = Array.make 64 { at = 0.; undo = ignore }; size = 0 }

let push (t : t) ~at undo =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) t.heap.(0) in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- { at; undo };
  t.size <- t.size + 1;
  let rec up i =
    let p = (i - 1) / 2 in
    if i > 0 && t.heap.(i).at < t.heap.(p).at then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(p);
      t.heap.(p) <- tmp;
      up p
    end
  in
  up (t.size - 1)

let rec sift (t : t) i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < t.size && t.heap.(l).at < t.heap.(!m).at then m := l;
  if r < t.size && t.heap.(r).at < t.heap.(!m).at then m := r;
  if !m <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!m);
    t.heap.(!m) <- tmp;
    sift t !m
  end

(** Run the undo thunks of all entries expired at [now]. *)
let sweep (t : t) ~(now : Timebase.t) =
  while t.size > 0 && t.heap.(0).at <= now do
    let e = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    sift t 0;
    e.undo ()
  done
