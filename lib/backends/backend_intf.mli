(** The admission-backend interface (DESIGN.md §12).

    Colibri's control plane used to be hard-wired to the N-Tube-style
    admission of {!Ntube}; this module type makes admission policy a
    plug-in so disciplines can be compared on identical workloads
    (Hummingbird-style flyovers, IntServ/RSVP, DiffServ). A backend is
    the {e per-AS} admission state: one instance lives inside one
    CServ and answers the two reservation classes of the paper —
    segment-level requests ({!seg_request}) and end-to-end requests
    ({!eer_request}).

    {b Interface laws} (checked by [test/test_backends.ml]):

    + {e Grant agreement}: after [admit_*] returns [Granted bw],
      [*_granted_of] returns [Some bw] until the version is removed or
      expires.
    + {e Idempotent re-admit}: re-admitting a live (key, version)
      returns the recorded grant and changes no allocation — handlers
      retransmit requests at-least-once (retry layer, PR 5), so admit
      doubles as the [granted_of] retransmission shortcut.
    + {e Idempotent teardown}: [remove_*] of an unknown key or version
      is a no-op (never raises); removing twice equals removing once,
      and after removal the same demand admits again.
    + {e Audit cleanliness}: [audit] returns [[]] after any sequence
      of operations (the incremental aggregates match a recomputation
      from first principles).
    + {e Capacity soundness}: when [capacity_bound_enforced], granted
      bandwidth per egress never exceeds the Colibri share of the
      interface capacity.

    {b Renewal} is not a separate operation: a renewal is an [admit]
    of the next version of an existing key ([eer_request.renewal]
    grants partially per §4.2; a superseded SegR version is released
    with [remove_seg] at activation). *)

open Colibri_types

type decision = Granted of Bandwidth.t | Denied of { available : Bandwidth.t }

val pp_decision : decision Fmt.t

(** One segment-reservation admission at one on-path AS. A grant below
    [min_bw] denies the request and leaves no state behind. *)
type seg_request = {
  key : Ids.res_key;
  version : int;
  src : Ids.asn;
  ingress : Ids.iface;
  egress : Ids.iface;
  demand : Bandwidth.t;
  min_bw : Bandwidth.t;
  exp_time : Timebase.t;
}

(** One end-to-end admission at one on-path AS. [segrs]/[via_up] carry
    the SegR-chain context the reference backend needs; per-hop
    backends (flyover, IntServ, DiffServ) admit on [ingress]/[egress]
    alone and ignore the chain. [renewal] requests may be granted
    partially (§4.2). *)
type eer_request = {
  key : Ids.res_key;
  version : int;
  segrs : (Ids.res_key * Bandwidth.t) list;
  via_up : (Ids.res_key * Ids.res_key * Bandwidth.t) option;
  ingress : Ids.iface;
  egress : Ids.iface;
  demand : Bandwidth.t;
  renewal : bool;
  exp_time : Timebase.t;
}

module type S = sig
  type t

  val name : string
  (** Short stable identifier — the [backend] label of the Obs metric
      families and the [backend_{name}_*] bench keys. *)

  val commit_required : bool
  (** Whether the discipline needs a backward commit pass propagating
      the path-wide minimum ({!commit_seg}). Per-hop disciplines grant
      independently and skip the second walk. *)

  val capacity_bound_enforced : bool
  (** [false] for disciplines without admission control (DiffServ):
      grants may oversubscribe the link — the point of the
      comparison. *)

  val create : capacity:(Ids.iface -> Bandwidth.t) -> ?share:float -> unit -> t
  (** [capacity] maps an interface to its raw link capacity; [share]
      (default 0.80) is the fraction available to reservations per the
      traffic split (§3.4). *)

  val admit_seg : t -> req:seg_request -> now:Timebase.t -> decision

  val commit_seg :
    t ->
    key:Ids.res_key ->
    version:int ->
    granted:Bandwidth.t ->
    (unit, string) result
  (** Shrink a tentative grant to the final path-wide value; raising
      above the local grant is refused. *)

  val admit_eer : t -> req:eer_request -> now:Timebase.t -> decision
  val remove_seg : t -> key:Ids.res_key -> version:int -> now:Timebase.t -> unit
  val remove_eer : t -> key:Ids.res_key -> version:int -> now:Timebase.t -> unit
  val seg_granted_of : t -> key:Ids.res_key -> version:int -> Bandwidth.t option
  val eer_granted_of : t -> key:Ids.res_key -> version:int -> Bandwidth.t option

  val seg_allocated_on : t -> egress:Ids.iface -> Bandwidth.t
  (** Σ of current segment grants on an egress interface. *)

  val eer_allocated_over : t -> segr:Ids.res_key -> Bandwidth.t
  (** Σ EER bandwidth currently booked over a SegR (0 for backends
      that do not track the chain). *)

  val seg_count : t -> int
  val eer_flow_count : t -> int

  val admissions : t -> int
  (** Number of [admit_*] calls processed (including retransmission
      hits) — the dispatch-consistency check of {!Distributed}. *)

  val control_messages : t -> int
  (** Control-plane messages the discipline would have exchanged for
      the operations so far — the cost model behind the bench's
      [msgs_per_setup] comparison. Chained disciplines pay a forward
      and a backward message per on-path AS per admission; flyovers
      pay only when a purchase extends the source's time-sliced
      holdings; DiffServ signals nothing. *)

  val audit : t -> string list
  (** Recompute every memoized aggregate from the entry tables and
      diff it against the incremental state. [[]] means consistent. *)

  val obs_snapshot : t -> Obs.snapshot
  (** Backend-labeled gauges/counters describing the current state —
      merged into [colibri-metrics.json] by the bench. *)

  val corrupt_for_test : t -> unit
  (** Deliberately skew one memoized aggregate so tests can verify
      that {!audit} detects corruption. Never call outside tests. *)
end

(** A backend packed with its state — what {!Cserv}, {!Distributed}
    and {!Deployment} hold. *)
type instance = Instance : (module S with type t = 'a) * 'a -> instance

(** A way to make instances — what orchestrators are parameterized
    over ({!Distributed} creates one instance per sub-service). *)
type factory = {
  label : string;
  make : capacity:(Ids.iface -> Bandwidth.t) -> ?share:float -> unit -> instance;
}

(** {1 First-class dispatchers over an instance} *)

val name : instance -> string
val commit_required : instance -> bool
val capacity_bound_enforced : instance -> bool
val admit_seg : instance -> req:seg_request -> now:Timebase.t -> decision

val commit_seg :
  instance ->
  key:Ids.res_key ->
  version:int ->
  granted:Bandwidth.t ->
  (unit, string) result

val admit_eer : instance -> req:eer_request -> now:Timebase.t -> decision
val remove_seg : instance -> key:Ids.res_key -> version:int -> now:Timebase.t -> unit
val remove_eer : instance -> key:Ids.res_key -> version:int -> now:Timebase.t -> unit
val seg_granted_of : instance -> key:Ids.res_key -> version:int -> Bandwidth.t option
val eer_granted_of : instance -> key:Ids.res_key -> version:int -> Bandwidth.t option
val seg_allocated_on : instance -> egress:Ids.iface -> Bandwidth.t
val eer_allocated_over : instance -> segr:Ids.res_key -> Bandwidth.t
val seg_count : instance -> int
val eer_flow_count : instance -> int
val admissions : instance -> int
val control_messages : instance -> int
val audit : instance -> string list
val obs_snapshot : instance -> Obs.snapshot
val corrupt_for_test : instance -> unit

val standard_snapshot :
  name:string ->
  seg_count:int ->
  eer_flow_count:int ->
  admissions:int ->
  control_messages:int ->
  Obs.snapshot
(** The obs-snapshot every backend shares: occupancy and cost counters
    under the [backend] label (DESIGN.md §7 naming). *)
