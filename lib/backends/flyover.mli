(** Flyover admission backend: per-hop time-sliced bandwidth ledgers
    in the style of Hummingbird (see PAPERS.md), behind the
    {!Backend_intf.S} contract.

    Where the reference backend walks the whole path forward and
    backward for every admission, a flyover hop sells bandwidth
    {e locally} and {e ahead of time}: time is cut into fixed-length
    slices, and each (egress, slice) cell keeps a ledger of bandwidth
    sold. A source AS {e purchases} quanta of bandwidth in the slices
    its reservation spans — those purchases are the only control
    traffic (a request and an ack per purchase event, counted as 2 in
    [control_messages]) — and then {e books} individual reservations
    against its holdings for free. Because every hop decides
    independently, there is no end-to-end admission walk, no backward
    commit pass ([commit_required = false]) and no per-path state:
    admitting over an n-hop path is n independent O(slices-spanned)
    decisions, and a source that keeps traffic inside its purchased
    holdings exchanges {e no} messages at all — the effect the bench's
    [msgs_per_setup] column measures against the 2-per-AS cost of the
    chained disciplines.

    Bookkeeping per (egress, slice) cell, maintained incrementally and
    recomputed in [audit]: [ledger] (Σ bandwidth sold on the cell,
    bounded by the Colibri share of the egress capacity), [held] (per
    (source, egress, slice): quanta the source owns), [used] (per
    (source, egress, slice): bandwidth its live reservations actually
    book; invariant [used ≤ held]) and [alloc] (per (egress, slice):
    Σ booked, so [seg_allocated_on] is one table lookup).

    Teardown frees [used] but not [held]: a purchased slice stays
    purchased (that is the flyover economics), so a removed
    reservation's bandwidth can be re-booked by its source without new
    messages. Cells retire wholesale when their slice ends. *)

val slice_len : float
(** Slice duration in seconds. *)

val quantum : float
(** Purchase granularity in bps — holdings grow in whole quanta. *)

val horizon : int
(** Farthest slice (relative to now) a reservation may span; longer
    expiries are clamped, matching flyovers' short-lived leases. *)

val max_slice : int
(** Largest slice index the ledger will ever address (2^46 - 1). *)

val clamp_slice : float -> int
(** Clamp time/slice_len arithmetic into [[0, max_slice]] before the
    float-to-int conversion; NaN maps to 0. Wire-derived expirations
    must pass through here — [int_of_float] on an oversized float is
    unspecified and a wrapped index would corrupt (egress, slice)
    keys (DESIGN.md §13, rule w4). *)

module B : Backend_intf.S
(** [name = "flyover"]. *)

val factory : Backend_intf.factory
