(** The reference admission backend: N-Tube-style bounded tube
    fairness for segment reservations and constant-time bandwidth
    walks for end-to-end reservations (§4.7) — extracted from the
    former [lib/core/admission.ml] ([Colibri.Admission] re-exports
    this module for compatibility).

    {b Segment reservations} ({!Seg}): each AS distributes the Colibri
    share of an ingress–egress interface pair among competing SegRs
    proportionally to their {e adjusted} demand, obtained by (1)
    limiting the total demand from an ingress interface by that
    interface's capacity, (2) limiting the per-tube demand by the
    egress capacity, and (3) limiting any single source AS's demand at
    an egress by that capacity (bounded tube fairness [62]). Memoized
    running aggregates make one admission cost a constant number of
    hash-table operations {e independent of the number of existing
    reservations} — the property Fig. 3 measures.

    {b End-to-end reservations} ({!Eer}): admission against a SegR is
    a constant-time bandwidth-headroom check (Fig. 4). Versions of one
    EER count with their maximum, not their sum (§4.2); at transfer
    ASes a core-SegR's bandwidth is shared proportionally between
    competing up-SegRs.

    {!B} packs both under the {!Backend_intf.S} contract; as a chained
    discipline it pays a forward and a backward control message per
    on-path AS per admission. *)

open Colibri_types

type decision = Backend_intf.decision =
  | Granted of Bandwidth.t
  | Denied of { available : Bandwidth.t }

val pp_decision : decision Fmt.t

(** Float-sum accumulators in keyed hash tables, with an audit diff
    against a fresh recomputation. Shared with {!Flyover}, which
    instantiates it over its slice-keyed tables. The representation is
    exposed so backends can iterate/remove entries directly. *)
module Acc (T : Hashtbl.S) : sig
  type t = float T.t

  val create : int -> t
  val get : t -> T.key -> float
  val add : t -> T.key -> float -> unit
  val close : float -> float -> bool
  (** Relative float-tolerance comparison used by the audit diffs. *)

  val diff : what:string -> pp_key:T.key Fmt.t -> t -> t -> string list
  (** [diff ~what ~pp_key stored fresh] — one message per key whose
      stored aggregate disagrees with the recomputed value. *)
end

(** Per-AS admission state for segment reservations. *)
module Seg : sig
  type t

  val create : capacity:(Ids.iface -> Bandwidth.t) -> ?share:float -> unit -> t
  (** [capacity] maps an interface to its raw link capacity; [share]
      (default 0.80) is the fraction available to Colibri per the
      traffic split (§3.4). *)

  val admit :
    t ->
    key:Ids.res_key ->
    version:int ->
    src:Ids.asn ->
    ingress:Ids.iface ->
    egress:Ids.iface ->
    demand:Bandwidth.t ->
    min_bw:Bandwidth.t ->
    exp_time:Timebase.t ->
    now:Timebase.t ->
    decision
  (** Tentatively admit one SegR version. A grant below [min_bw]
      denies the request and leaves no state behind. The grant becomes
      definitive when the backward pass calls {!set_granted} with the
      path-wide minimum. Duplicate [(key, version)] pairs are
      denied. *)

  val set_granted :
    t ->
    key:Ids.res_key ->
    version:int ->
    granted:Bandwidth.t ->
    (unit, string) result
  (** Shrink a tentative grant to the final path-wide value; raising
      above the local grant is refused. *)

  val remove : t -> key:Ids.res_key -> version:int -> unit
  (** Release one version (failed-setup cleanup, or deactivation after
      a version switch). Idempotent: unknown keys and versions are
      no-ops. *)

  val granted_of : t -> key:Ids.res_key -> version:int -> Bandwidth.t option
  val count : t -> int
  val admissions : t -> int

  val allocated_on : t -> egress:Ids.iface -> Bandwidth.t
  (** Σ of current grants on an egress interface — never exceeds the
      interface's Colibri share. *)

  val audit : t -> string list
  (** Recompute every memoized aggregate (per-ingress demand, per-tube
      demand, per-(source, egress) demand, per-egress adjusted demand
      and allocation) from the entry table and diff it against the
      incremental state; also checks that no egress is oversubscribed.
      [[]] means the state is consistent — the sanitizer for the
      constant-cost admission bookkeeping Fig. 3 depends on. *)

  val corrupt_for_test : t -> unit
  (** Deliberately skew one memoized aggregate so tests can verify that
      {!audit} detects corruption. Never call outside tests. *)
end

(** Per-AS admission state for end-to-end reservations. *)
module Eer : sig
  type t

  val create : unit -> t

  val admit :
    ?partial:bool ->
    t ->
    key:Ids.res_key ->
    version:int ->
    segrs:(Ids.res_key * Bandwidth.t) list ->
    via_up:(Ids.res_key * Ids.res_key * Bandwidth.t) option ->
    demand:Bandwidth.t ->
    exp_time:Timebase.t ->
    now:Timebase.t ->
    decision
  (** Admit one EER version over the given SegRs (keys with their
      current bandwidth). [via_up = Some (core, up, core_bw)] marks
      admission at a transfer AS between an up- and a core-SegR, where
      the core bandwidth is shared proportionally between competing
      up-SegRs. [partial = true] implements the renewal flexibility of
      §4.2: instead of denying a demand that does not fully fit, the
      AS grants what fits. *)

  val remove_version :
    t -> key:Ids.res_key -> version:int -> now:Timebase.t -> unit
  (** Failed-setup cleanup: drop one tentative version. Idempotent:
      unknown keys and versions are no-ops. *)

  val granted_of : t -> key:Ids.res_key -> version:int -> Bandwidth.t option
  (** Grant already held by a (key, version) pair — the retransmission
      shortcut; re-admitting a live version would double-add it. *)

  val allocated_over : t -> Ids.res_key -> Bandwidth.t
  (** Σ EER bandwidth currently booked over a SegR. *)

  val flow_count : t -> int
  val admissions : t -> int

  val audit : t -> string list
  (** Recompute the per-SegR allocations and transfer-AS competition
      aggregates from the flow table (contribution = max over live
      versions, §4.2) and diff them against the incremental state.
      [[]] means consistent. *)

  val corrupt_for_test : t -> unit
  (** Deliberately skew one memoized aggregate so tests can verify that
      {!audit} detects corruption. Never call outside tests. *)
end

module B : Backend_intf.S
(** {!Seg} + {!Eer} packed behind the backend contract
    ([name = "ntube"]). *)

val factory : Backend_intf.factory
