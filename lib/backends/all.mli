(** The backend registry: every admission discipline that can ride
    behind {!Backend_intf.S}, in the order the bench's comparison table
    prints them. [find] resolves the [--backend] style selectors of
    tools and tests. *)

val ntube : Backend_intf.factory
(** The N-Tube reference backend ({!Ntube}) — the default everywhere. *)

val intserv : Backend_intf.factory
(** IntServ/RSVP per-flow soft state ({!Intserv_backend}). *)

val diffserv : Backend_intf.factory
(** DiffServ class provisioning, no admission control
    ({!Diffserv_backend}). *)

val flyover : Backend_intf.factory
(** Hummingbird-style time-sliced per-hop ledgers ({!Flyover}). *)

val all : Backend_intf.factory list

val find : string -> Backend_intf.factory option
