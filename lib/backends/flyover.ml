(** Flyover admission backend: per-hop time-sliced bandwidth ledgers
    in the style of Hummingbird (see PAPERS.md), behind the
    {!Backend_intf.S} contract.

    Where the reference backend walks the whole path forward and
    backward for every admission, a flyover hop sells bandwidth
    {e locally} and {e ahead of time}: time is cut into fixed-length
    slices, and each (egress, slice) cell keeps a ledger of bandwidth
    sold. A source AS {e purchases} quanta of bandwidth in the slices
    its reservation spans — those purchases are the only control
    traffic (a request and an ack per purchase event, counted as 2 in
    {!B.control_messages}) — and then {e books} individual reservations
    against its holdings for free. Because every hop decides
    independently, there is no end-to-end admission walk, no backward
    commit pass ([commit_required = false]) and no per-path state:
    admitting over an n-hop path is n independent O(slices-spanned)
    decisions, and a source that keeps traffic inside its purchased
    holdings exchanges {e no} messages at all — the effect the bench's
    [msgs_per_setup] column measures against the 2-per-AS cost of the
    chained disciplines.

    Bookkeeping per (egress, slice) cell, maintained incrementally and
    recomputed in {!B.audit}:

    - [ledger]   — Σ bandwidth sold on the cell (bounded by the Colibri
      share of the egress capacity);
    - [held]     — per (source, egress, slice): quanta the source owns;
    - [used]     — per (source, egress, slice): bandwidth its live
      reservations actually book (invariant: [used ≤ held]);
    - [alloc]    — per (egress, slice): Σ booked, so
      {!B.seg_allocated_on} is one table lookup.

    Teardown frees [used] but not [held]: a purchased slice stays
    purchased (that is the flyover economics), so a removed
    reservation's bandwidth can be re-booked by its source without new
    messages. Cells retire wholesale when their slice ends. *)

open Colibri_types

module Cell_acc = Ntube.Acc (Ids.Iface_slice_tbl)
module Hold_acc = Ntube.Acc (Ids.Src_slice_tbl)

let pp_cell ppf ((eg, s) : Ids.iface * int) = Fmt.pf ppf "%d@%d" eg s

let pp_hold ppf ((src, eg, s) : Ids.asn * Ids.iface * int) =
  Fmt.pf ppf "%a:%d@%d" Ids.pp_asn src eg s

type entry = {
  src : Ids.asn;
  egress : Ids.iface;
  mutable bw : float; (* bps *)
  s0 : int;
  s1 : int; (* inclusive slice span *)
  mutable removed : bool;
}

let slice_len = 4.0
let quantum = 100.0e6 (* 100 Mbps *)
let horizon = 256

(* Largest slice index the ledger will ever address (~2^46 slices,
   millions of years at any realistic slice length). Wire-derived
   expirations are clamped here before the float-to-int conversion:
   [int_of_float] of an oversized or NaN float is unspecified, and a
   wrapped-negative index would corrupt every (egress, slice) key
   derived from it. *)
let max_slice = (1 lsl 46) - 1

(** Clamp a slice index (as produced by time/slice_len arithmetic)
    into [[0, max_slice]]; NaN maps to slice 0. *)
let clamp_slice (s : float) : int =
  if Float.is_nan s then 0
  else int_of_float (Float.min (Float.max 0. s) (float_of_int max_slice))

module B : Backend_intf.S = struct
  type t = {
    capacity : Ids.iface -> Bandwidth.t;
    share : float;
    slice_len : float; (* seconds per slice *)
    quantum : float; (* purchase granularity, bps *)
    horizon : int; (* max slices a reservation may span *)
    ledger : Cell_acc.t;
    held : Hold_acc.t;
    used : Hold_acc.t;
    alloc : Cell_acc.t;
    seg_entries : entry Ids.Res_ver_tbl.t;
    eer_entries : entry Ids.Res_ver_tbl.t;
    expiry : Expiry.t;
    mutable now_slice : int;
    mutable retired_below : int; (* every slice < this has been retired *)
    mutable admit_calls : int;
    mutable msgs : int;
  }

  let name = "flyover"
  let commit_required = false (* per-hop grants are final *)
  let capacity_bound_enforced = true

  let create ~capacity ?(share = 0.80) () =
    {
      capacity;
      share;
      slice_len;
      quantum;
      horizon;
      ledger = Cell_acc.create 256;
      held = Hold_acc.create 256;
      used = Hold_acc.create 256;
      alloc = Cell_acc.create 256;
      seg_entries = Ids.Res_ver_tbl.create 256;
      eer_entries = Ids.Res_ver_tbl.create 1024;
      expiry = Expiry.create ();
      now_slice = 0;
      retired_below = 0;
      admit_calls = 0;
      msgs = 0;
    }

  let colibri_cap (t : t) (egress : Ids.iface) : float =
    if egress = Ids.local_iface then Float.max_float
    else t.share *. Bandwidth.to_bps (t.capacity egress)

  let slice_of (t : t) (at : Timebase.t) : int = clamp_slice (at /. t.slice_len)

  let tick (t : t) ~now =
    Expiry.sweep t.expiry ~now;
    t.now_slice <- max t.now_slice (slice_of t now)

  (* Retire a whole (egress, slice) cell once the slice has passed:
     drop its ledger and booking aggregates and every holding in it.
     One thunk per cell, scheduled when the cell is first sold on. *)
  let schedule_retirement (t : t) (egress : Ids.iface) (s : int) =
    Expiry.push t.expiry
      ~at:(float_of_int (s + 1) *. t.slice_len)
      (fun () ->
        t.retired_below <- max t.retired_below (s + 1);
        Ids.Iface_slice_tbl.remove t.ledger (egress, s);
        Ids.Iface_slice_tbl.remove t.alloc (egress, s))

  let schedule_hold_retirement (t : t) ((_, _, s) as hold : Ids.asn * Ids.iface * int)
      =
    Expiry.push t.expiry
      ~at:(float_of_int (s + 1) *. t.slice_len)
      (fun () ->
        Ids.Src_slice_tbl.remove t.held hold;
        Ids.Src_slice_tbl.remove t.used hold)

  (* Unbook a live entry's bandwidth from the cells that still exist;
     cells retired in the meantime already dropped it wholesale. *)
  let release (t : t) (entries : entry Ids.Res_ver_tbl.t) kv (e : entry) =
    if not e.removed then begin
      e.removed <- true;
      for s = max e.s0 t.retired_below to e.s1 do
        if Ids.Src_slice_tbl.mem t.used (e.src, e.egress, s) then begin
          Hold_acc.add t.used (e.src, e.egress, s) (-.e.bw);
          Cell_acc.add t.alloc (e.egress, s) (-.e.bw)
        end
      done;
      Ids.Res_ver_tbl.remove entries kv
    end

  (* The admission shared by both reservation classes: flyovers make no
     SegR/EER distinction — every reservation is a per-hop booking. *)
  let admit (t : t) (entries : entry Ids.Res_ver_tbl.t) ~key ~version ~src ~egress
      ~(demand : Bandwidth.t) ~(min_bw : Bandwidth.t) ~exp_time ~now :
      Backend_intf.decision =
    tick t ~now;
    t.admit_calls <- t.admit_calls + 1;
    match Ids.Res_ver_tbl.find_opt entries (key, version) with
    | Some e -> Granted (Bandwidth.of_bps e.bw) (* retransmission: free *)
    | None ->
        (* Clamp the wire-derived demand before it reaches the cell
           ledgers (inf/NaN would poison them; see Bandwidth.clamp). *)
        let d = Bandwidth.to_bps (Bandwidth.clamp demand) in
        let s0 = max (slice_of t now) t.retired_below in
        let s1 = max s0 (min (slice_of t (exp_time -. 1e-9)) (s0 + t.horizon - 1)) in
        let cap = colibri_cap t egress in
        (* Phase 1: every spanned slice must cover the demand, either
           from the source's free holdings or by purchasing quanta the
           cell can still sell. All-or-nothing at the full demand. *)
        let available = ref Float.max_float in
        for s = s0 to s1 do
          let hold = (src, egress, s) in
          let free_held = Hold_acc.get t.held hold -. Hold_acc.get t.used hold in
          let sellable = Float.max 0. (cap -. Cell_acc.get t.ledger (egress, s)) in
          available := Float.min !available (free_held +. sellable)
        done;
        if !available +. 1e-9 < d || d < Bandwidth.to_bps min_bw then
          Denied { available = Bandwidth.of_bps (Float.max 0. !available) }
        else begin
          (* Phase 2: book, purchasing where holdings fall short. *)
          let purchased = ref false in
          for s = s0 to s1 do
            let hold = (src, egress, s) in
            let held_v = Hold_acc.get t.held hold in
            let free_held = held_v -. Hold_acc.get t.used hold in
            if free_held +. 1e-9 < d then begin
              let need = d -. free_held in
              let sellable = Float.max 0. (cap -. Cell_acc.get t.ledger (egress, s)) in
              (* Whole quanta when they fit, the exact remainder when
                 the cell is nearly sold out. *)
              let p =
                Float.min sellable (Float.ceil (need /. t.quantum) *. t.quantum)
              in
              if not (Ids.Iface_slice_tbl.mem t.ledger (egress, s)) then
                schedule_retirement t egress s;
              if held_v <= 0. && not (Ids.Src_slice_tbl.mem t.held hold) then
                schedule_hold_retirement t hold;
              Cell_acc.add t.ledger (egress, s) p;
              Hold_acc.add t.held hold p;
              purchased := true
            end;
            Hold_acc.add t.used hold d;
            Cell_acc.add t.alloc (egress, s) d
          done;
          if !purchased then t.msgs <- t.msgs + 2;
          let e = { src; egress; bw = d; s0; s1; removed = false } in
          Ids.Res_ver_tbl.replace entries (key, version) e;
          Expiry.push t.expiry ~at:exp_time (fun () ->
              match Ids.Res_ver_tbl.find_opt entries (key, version) with
              | Some e' when e' == e -> release t entries (key, version) e
              | _ -> ());
          Granted demand
        end

  let admit_seg (t : t) ~(req : Backend_intf.seg_request) ~now =
    admit t t.seg_entries ~key:req.key ~version:req.version ~src:req.src
      ~egress:req.egress ~demand:req.demand ~min_bw:req.min_bw ~exp_time:req.exp_time
      ~now

  let admit_eer (t : t) ~(req : Backend_intf.eer_request) ~now =
    (* EERs carry their own source in the key: bookings are held by the
       reservation's source AS. *)
    admit t t.eer_entries ~key:req.key ~version:req.version ~src:req.key.src_as
      ~egress:req.egress ~demand:req.demand ~min_bw:Bandwidth.zero
      ~exp_time:req.exp_time ~now

  (* No backward pass exists, but shrinking a booking is still sound:
     release the delta from the spanned cells. *)
  let commit_seg (t : t) ~key ~version ~granted =
    match Ids.Res_ver_tbl.find_opt t.seg_entries (key, version) with
    | None -> Error "unknown reservation version"
    | Some e ->
        let g = Bandwidth.to_bps granted in
        if g > e.bw +. 1e-6 then Error "cannot raise grant"
        else begin
          for s = max e.s0 t.retired_below to e.s1 do
            if Ids.Src_slice_tbl.mem t.used (e.src, e.egress, s) then begin
              Hold_acc.add t.used (e.src, e.egress, s) (g -. e.bw);
              Cell_acc.add t.alloc (e.egress, s) (g -. e.bw)
            end
          done;
          e.bw <- g;
          Ok ()
        end

  let remove_kind (t : t) entries ~key ~version ~now =
    tick t ~now;
    match Ids.Res_ver_tbl.find_opt entries (key, version) with
    | Some e -> release t entries (key, version) e
    | None -> ()

  let remove_seg (t : t) ~key ~version ~now = remove_kind t t.seg_entries ~key ~version ~now
  let remove_eer (t : t) ~key ~version ~now = remove_kind t t.eer_entries ~key ~version ~now

  let granted_of (entries : entry Ids.Res_ver_tbl.t) ~key ~version =
    Option.map
      (fun e -> Bandwidth.of_bps e.bw)
      (Ids.Res_ver_tbl.find_opt entries (key, version))

  let seg_granted_of (t : t) ~key ~version = granted_of t.seg_entries ~key ~version
  let eer_granted_of (t : t) ~key ~version = granted_of t.eer_entries ~key ~version

  let seg_allocated_on (t : t) ~egress =
    Bandwidth.of_bps (Cell_acc.get t.alloc (egress, t.now_slice))

  let eer_allocated_over (_ : t) ~segr:_ = Bandwidth.zero (* no chain state *)
  let seg_count (t : t) = Ids.Res_ver_tbl.length t.seg_entries
  let admissions (t : t) = t.admit_calls
  let control_messages (t : t) = t.msgs

  let eer_flow_count (t : t) =
    let keys = Ids.Res_key_tbl.create 64 in
    Ids.Res_ver_tbl.iter
      (fun (key, _) _ -> Ids.Res_key_tbl.replace keys key ())
      t.eer_entries;
    Ids.Res_key_tbl.length keys

  (** Recompute [used] and [alloc] from the live entries (restricted to
      cells that have not retired), check [ledger] = Σ [held] per cell,
      [used ≤ held], and the per-cell capacity bound. [[]] means
      consistent. *)
  let audit (t : t) : string list =
    let errs = ref [] in
    let used = Hold_acc.create 64 in
    let alloc = Cell_acc.create 64 in
    let fold what entries =
      Ids.Res_ver_tbl.iter
        (fun (key, ver) (e : entry) ->
          if e.removed then
            errs :=
              Fmt.str "%s[%a#%d]: removed entry still in table" what Ids.pp_res_key key
                ver
              :: !errs;
          for s = max e.s0 t.retired_below to e.s1 do
            if Ids.Src_slice_tbl.mem t.held (e.src, e.egress, s) then begin
              Hold_acc.add used (e.src, e.egress, s) e.bw;
              Cell_acc.add alloc (e.egress, s) e.bw
            end
          done)
        entries
    in
    fold "seg" t.seg_entries;
    fold "eer" t.eer_entries;
    let held_sum = Cell_acc.create 64 in
    Ids.Src_slice_tbl.iter
      (fun (src, eg, s) held_v ->
        Cell_acc.add held_sum (eg, s) held_v;
        let used_v = Hold_acc.get t.used (src, eg, s) in
        if used_v > held_v +. 1e-6 *. Float.max 1. held_v then
          errs :=
            Fmt.str "hold[%a]: %.6g bps booked over %.6g bps held" pp_hold (src, eg, s)
              used_v held_v
            :: !errs)
      t.held;
    Ids.Iface_slice_tbl.iter
      (fun (eg, s) sold ->
        let cap = colibri_cap t eg in
        if sold > cap +. 1e-6 *. Float.max 1. cap then
          errs :=
            Fmt.str "cell %a oversold: %.6g bps > %.6g bps capacity" pp_cell (eg, s)
              sold cap
            :: !errs)
      t.ledger;
    !errs
    @ Hold_acc.diff ~what:"used" ~pp_key:pp_hold t.used used
    @ Cell_acc.diff ~what:"alloc" ~pp_key:pp_cell t.alloc alloc
    @ Cell_acc.diff ~what:"ledger" ~pp_key:pp_cell t.ledger held_sum

  let obs_snapshot (t : t) =
    Backend_intf.standard_snapshot ~name ~seg_count:(seg_count t)
      ~eer_flow_count:(eer_flow_count t) ~admissions:t.admit_calls
      ~control_messages:t.msgs

  (** Skew one ledger cell so tests can verify that {!audit} detects
      corruption. Never call outside tests. *)
  let corrupt_for_test (t : t) = Cell_acc.add t.ledger (1, t.now_slice) 1.0e6
end

let factory : Backend_intf.factory =
  {
    label = "flyover";
    make =
      (fun ~capacity ?share () ->
        Backend_intf.Instance ((module B), B.create ~capacity ?share ()));
  }
