(** IntServ/RSVP admission backend: {!Baseline.Intserv} ports (one per
    egress interface) behind the {!Backend_intf.S} contract.

    Each reservation — SegR or EER alike, RSVP has only flows — becomes
    one per-flow soft-state record on its egress port. Admission is the
    baseline's deliberate O(#flows) scan; the discipline is chained
    (PATH forward, RESV backward), so like the reference backend it
    pays two control messages per on-path AS per admission, but unlike
    it the admission cost grows with the number of installed
    reservations (§8, Table 1 — the contrast the bench's
    [setup_latency] column shows). All-or-nothing grants: RSVP does not
    negotiate a demand down, so a request that does not fit is denied
    with the current headroom as [available]. *)

open Colibri_types

(* One reservation's binding to its port. [fid] is the synthetic RSVP
   flow identifier; entries are compared physically in expiry thunks so
   a re-admitted (key, version) is never torn down by a stale thunk. *)
type res = {
  egress : Ids.iface;
  fid : Baseline.Intserv.flow_id;
  mutable bw : float; (* bps *)
  exp_time : Timebase.t;
}

module B : Backend_intf.S = struct
  type t = {
    capacity : Ids.iface -> Bandwidth.t;
    share : float;
    ports : Baseline.Intserv.t Ids.Iface_tbl.t;
    seg_entries : res Ids.Res_ver_tbl.t;
    eer_entries : res Ids.Res_ver_tbl.t;
    expiry : Expiry.t;
    mutable next_fid : int;
    mutable last_now : Timebase.t;
    mutable admit_calls : int;
    mutable msgs : int;
  }

  let name = "intserv"
  let commit_required = true (* RESV carries the path-wide reservation *)
  let capacity_bound_enforced = true

  let create ~capacity ?(share = 0.80) () =
    {
      capacity;
      share;
      ports = Ids.Iface_tbl.create 16;
      seg_entries = Ids.Res_ver_tbl.create 256;
      eer_entries = Ids.Res_ver_tbl.create 1024;
      expiry = Expiry.create ();
      next_fid = 1;
      last_now = 0.;
      admit_calls = 0;
      msgs = 0;
    }

  (* Traffic to the AS itself never crosses a capacity-bound link. *)
  let port_capacity (t : t) (egress : Ids.iface) : Bandwidth.t =
    if egress = Ids.local_iface then Bandwidth.of_bps 1e15 else t.capacity egress

  let port_for (t : t) (egress : Ids.iface) : Baseline.Intserv.t =
    match Ids.Iface_tbl.find_opt t.ports egress with
    | Some p -> p
    | None ->
        let p =
          Baseline.Intserv.create ~capacity:(port_capacity t egress) ~share:t.share ()
        in
        Ids.Iface_tbl.replace t.ports egress p;
        p

  let headroom (t : t) (egress : Ids.iface) ~now : float =
    let port = port_for t egress in
    let cap = t.share *. Bandwidth.to_bps (port_capacity t egress) in
    Float.max 0. (cap -. Bandwidth.to_bps (Baseline.Intserv.committed port ~now))

  (* Shared admit for both reservation classes: RSVP knows only flows. *)
  let admit_flow (t : t) (entries : res Ids.Res_ver_tbl.t) ~key ~version ~egress
      ~(demand : Bandwidth.t) ~(min_bw : Bandwidth.t) ~exp_time ~now :
      Backend_intf.decision =
    Expiry.sweep t.expiry ~now;
    t.last_now <- Float.max t.last_now now;
    t.admit_calls <- t.admit_calls + 1;
    t.msgs <- t.msgs + 2;
    match Ids.Res_ver_tbl.find_opt entries (key, version) with
    | Some e -> Granted (Bandwidth.of_bps e.bw) (* retransmission *)
    | None ->
        let port = port_for t egress in
        let fid = { Baseline.Intserv.src = t.next_fid; dst = egress } in
        t.next_fid <- t.next_fid + 1;
        if Bandwidth.(demand < min_bw) then
          Denied { available = Bandwidth.zero }
        else begin
          match Baseline.Intserv.admit port ~id:fid ~bw:demand ~exp_time ~now with
          | `Rejected -> Denied { available = Bandwidth.of_bps (headroom t egress ~now) }
          | `Admitted ->
              let e =
                { egress; fid; bw = Bandwidth.to_bps (Bandwidth.clamp demand); exp_time }
              in
              Ids.Res_ver_tbl.replace entries (key, version) e;
              Expiry.push t.expiry ~at:exp_time (fun () ->
                  match Ids.Res_ver_tbl.find_opt entries (key, version) with
                  | Some e' when e' == e -> Ids.Res_ver_tbl.remove entries (key, version)
                  | _ -> ());
              Granted demand
        end

  let admit_seg (t : t) ~(req : Backend_intf.seg_request) ~now =
    admit_flow t t.seg_entries ~key:req.key ~version:req.version ~egress:req.egress
      ~demand:req.demand ~min_bw:req.min_bw ~exp_time:req.exp_time ~now

  let admit_eer (t : t) ~(req : Backend_intf.eer_request) ~now =
    admit_flow t t.eer_entries ~key:req.key ~version:req.version ~egress:req.egress
      ~demand:req.demand ~min_bw:Bandwidth.zero ~exp_time:req.exp_time ~now

  (* The RESV pass shrinks to the path-wide minimum: tear the tentative
     flow down and re-install it at the smaller bandwidth (which must
     fit — it frees its own headroom first). *)
  let commit_seg (t : t) ~key ~version ~granted =
    match Ids.Res_ver_tbl.find_opt t.seg_entries (key, version) with
    | None -> Error "unknown reservation version"
    | Some e ->
        let g = Bandwidth.to_bps granted in
        if g > e.bw +. 1e-6 then Error "cannot raise grant"
        else begin
          let port = port_for t e.egress in
          Baseline.Intserv.remove port ~id:e.fid;
          match
            Baseline.Intserv.admit port ~id:e.fid ~bw:granted ~exp_time:e.exp_time
              ~now:t.last_now
          with
          | `Admitted ->
              e.bw <- g;
              Ok ()
          | `Rejected -> Error "shrunk reservation no longer fits"
        end

  let remove (t : t) (entries : res Ids.Res_ver_tbl.t) ~key ~version ~now =
    Expiry.sweep t.expiry ~now;
    t.last_now <- Float.max t.last_now now;
    match Ids.Res_ver_tbl.find_opt entries (key, version) with
    | None -> ()
    | Some e ->
        Baseline.Intserv.remove (port_for t e.egress) ~id:e.fid;
        Ids.Res_ver_tbl.remove entries (key, version)

  let remove_seg (t : t) ~key ~version ~now = remove t t.seg_entries ~key ~version ~now
  let remove_eer (t : t) ~key ~version ~now = remove t t.eer_entries ~key ~version ~now

  let granted_of (t : t) (entries : res Ids.Res_ver_tbl.t) ~key ~version =
    match Ids.Res_ver_tbl.find_opt entries (key, version) with
    | Some e when t.last_now < e.exp_time -> Some (Bandwidth.of_bps e.bw)
    | _ -> None

  let seg_granted_of (t : t) ~key ~version = granted_of t t.seg_entries ~key ~version
  let eer_granted_of (t : t) ~key ~version = granted_of t t.eer_entries ~key ~version

  let seg_allocated_on (t : t) ~egress =
    match Ids.Iface_tbl.find_opt t.ports egress with
    | None -> Bandwidth.zero
    | Some port -> Baseline.Intserv.committed port ~now:t.last_now

  let eer_allocated_over (_ : t) ~segr:_ = Bandwidth.zero (* no chain tracking *)
  let seg_count (t : t) = Ids.Res_ver_tbl.length t.seg_entries
  let admissions (t : t) = t.admit_calls
  let control_messages (t : t) = t.msgs

  let eer_flow_count (t : t) =
    let keys = Ids.Res_key_tbl.create 64 in
    Ids.Res_ver_tbl.iter
      (fun (key, _) _ -> Ids.Res_key_tbl.replace keys key ())
      t.eer_entries;
    Ids.Res_key_tbl.length keys

  (* Per-port committed bandwidth must equal the sum over the live
     entries pointing at that port, and every entry's flow must still
     classify — RSVP's soft state and our (key, version) index can only
     drift apart through a bookkeeping bug. *)
  let audit (t : t) : string list =
    let errs = ref [] in
    let expected = Ids.Iface_tbl.create 16 in
    let check entries what =
      Ids.Res_ver_tbl.iter
        (fun (key, ver) (e : res) ->
          if t.last_now < e.exp_time then begin
            Ids.Iface_tbl.replace expected e.egress
              (Option.value ~default:0. (Ids.Iface_tbl.find_opt expected e.egress)
              +. e.bw);
            match Baseline.Intserv.classify (port_for t e.egress) ~id:e.fid with
            | Some f ->
                if Float.abs (Bandwidth.to_bps f.bw -. e.bw) > 1e-6 then
                  errs :=
                    Fmt.str "%s[%a#%d]: entry %.6g bps, port flow %.6g bps" what
                      Ids.pp_res_key key ver e.bw (Bandwidth.to_bps f.bw)
                    :: !errs
            | None ->
                errs :=
                  Fmt.str "%s[%a#%d]: live entry has no port flow" what Ids.pp_res_key
                    key ver
                  :: !errs
          end)
        entries
    in
    check t.seg_entries "seg";
    check t.eer_entries "eer";
    Ids.Iface_tbl.iter
      (fun egress port ->
        let committed = Bandwidth.to_bps (Baseline.Intserv.committed port ~now:t.last_now) in
        let want = Option.value ~default:0. (Ids.Iface_tbl.find_opt expected egress) in
        if Float.abs (committed -. want) > 1e-6 *. Float.max 1. want then
          errs :=
            Fmt.str "port %d: committed %.6g bps, entries sum to %.6g bps" egress
              committed want
            :: !errs;
        let cap = t.share *. Bandwidth.to_bps (port_capacity t egress) in
        if committed > cap +. 1e-6 *. Float.max 1. cap then
          errs :=
            Fmt.str "port %d oversubscribed: %.6g committed > %.6g capacity" egress
              committed cap
            :: !errs)
      t.ports;
    !errs

  let obs_snapshot (t : t) =
    Backend_intf.standard_snapshot ~name ~seg_count:(seg_count t)
      ~eer_flow_count:(eer_flow_count t) ~admissions:t.admit_calls
      ~control_messages:t.msgs

  (** Make the port state and the entry index disagree so tests can
      verify that {!audit} detects it. Never call outside tests. *)
  let corrupt_for_test (t : t) =
    let any = ref None in
    Ids.Res_ver_tbl.iter
      (fun _ e -> if Option.is_none !any then any := Some e)
      t.seg_entries;
    match !any with
    | Some e -> Baseline.Intserv.remove (port_for t e.egress) ~id:e.fid
    | None ->
        (* No entries: install a phantom flow that the index ignores. *)
        ignore
          (Baseline.Intserv.admit (port_for t 1) ~id:{ src = -1; dst = -1 }
             ~bw:(Bandwidth.of_bps 1.) ~exp_time:Float.max_float ~now:t.last_now)
end

let factory : Backend_intf.factory =
  {
    label = "intserv";
    make =
      (fun ~capacity ?share () ->
        Backend_intf.Instance ((module B), B.create ~capacity ?share ()));
  }
