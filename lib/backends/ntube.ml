(** The reference admission backend: N-Tube-style bounded tube
    fairness for segment reservations and constant-time bandwidth
    walks for end-to-end reservations (§4.7) — extracted verbatim from
    the former [lib/core/admission.ml] ([Colibri.Admission] re-exports
    this module for compatibility).

    {b Segment reservations} ({!Seg}): each AS distributes the Colibri
    share of an ingress–egress interface pair among competing SegRs
    proportionally to their {e adjusted} demand, obtained by

    + limiting the total demand from an ingress interface by that
      interface's capacity;
    + limiting the total demand between an ingress and an egress
      interface by the egress capacity; and
    + limiting the total demand of a particular source AS at a
      particular egress interface by that capacity

    (bounded tube fairness [62]). The implementation keeps {e memoized
    running aggregates} — per-ingress demand, per-tube demand,
    per-(source, egress) demand, per-egress adjusted demand and
    allocation — so one admission costs a constant number of
    hash-table operations {e independent of the number of existing
    reservations}: the property Fig. 3 measures. Existing grants are
    not recomputed on new admissions; they are re-negotiated at
    renewal (§4.2), exactly as in the paper.

    {b End-to-end reservations} ({!Eer}): admission against a SegR is
    a constant-time bandwidth check (Fig. 4). Versions of one EER
    count with their maximum, not their sum, since monitoring maps all
    versions to one flow (§4.2). At transfer ASes, a core-SegR's
    bandwidth is distributed between competing up-SegRs proportionally
    to their total requested EER bandwidth, capped at each up-SegR's
    size.

    {!B} packs both under the {!Backend_intf.S} contract; as a chained
    discipline it pays a forward and a backward control message per
    on-path AS per admission. *)

open Colibri_types

type decision = Backend_intf.decision =
  | Granted of Bandwidth.t
  | Denied of { available : Bandwidth.t }

let pp_decision = Backend_intf.pp_decision

(* Float-sum accumulators in keyed hash tables (lint rule [poly-hash]:
   no polymorphic hashing of identifier keys on the admission path). *)
module Acc (T : Hashtbl.S) = struct
  type t = float T.t

  let create n : t = T.create n
  let get (t : t) k = Option.value ~default:0. (T.find_opt t k)

  (* Saturating, not plain (+.): one crafted inf/2^63-bps demand must
     not poison an accumulator every later admission divides by. *)
  let add (t : t) k dv =
    let v = Bandwidth.saturating_add (get t k) dv in
    if v <= 1e-9 then T.remove t k else T.replace t k v

  (* Recompute-and-diff support for [audit]: fold [items] into a fresh
     accumulator with [fold], then report every key whose recomputed
     sum differs from the incremental one beyond float drift. *)
  let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

  let diff ~(what : string) ~(pp_key : T.key Fmt.t) (stored : t) (fresh : t) : string list
      =
    let errs = ref [] in
    let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
    T.iter
      (fun k fresh_v ->
        let stored_v = get stored k in
        if not (close stored_v fresh_v) then
          err "%s[%a]: stored %.6g, recomputed %.6g" what pp_key k stored_v fresh_v)
      fresh;
    T.iter
      (fun k stored_v ->
        if not (T.mem fresh k) && not (close stored_v 0.) then
          err "%s[%a]: stored %.6g, recomputed 0 (stale key)" what pp_key k stored_v)
      stored;
    !errs
end

module Iface_acc = Acc (Ids.Iface_tbl)
module Tube_acc = Acc (Ids.Iface_pair_tbl)
module Src_acc = Acc (Ids.Src_egress_tbl)
module Res_acc = Acc (Ids.Res_key_tbl)
module Pair_acc = Acc (Ids.Res_pair_tbl)

module Seg = struct
  (* A version of a SegR currently counted in the aggregates. *)
  type entry = {
    src : Ids.asn;
    ingress : Ids.iface;
    egress : Ids.iface;
    demand : float;
    adj1 : float;
    adj2 : float;
    adj3 : float;
    mutable granted : float;
    mutable removed : bool;
  }

  type t = {
    capacity : Ids.iface -> Bandwidth.t; (* raw interface capacity *)
    share : float; (* fraction of capacity available to SegRs *)
    in_demand : Iface_acc.t;
    tube_demand : Tube_acc.t;
    src_demand : Src_acc.t; (* (source AS, egress) *)
    egress_adjusted : Iface_acc.t;
    egress_allocated : Iface_acc.t;
    entries : entry Ids.Res_ver_tbl.t; (* keyed by (res, version) *)
    expiry : Expiry.t;
    mutable admissions : int;
  }

  let create ~(capacity : Ids.iface -> Bandwidth.t) ?(share = 0.80) () : t =
    {
      capacity;
      share;
      in_demand = Iface_acc.create 64;
      tube_demand = Tube_acc.create 64;
      src_demand = Src_acc.create 256;
      egress_adjusted = Iface_acc.create 64;
      egress_allocated = Iface_acc.create 64;
      entries = Ids.Res_ver_tbl.create 1024;
      expiry = Expiry.create ();
      admissions = 0;
    }

  let colibri_cap (t : t) (iface : Ids.iface) : float =
    if iface = Ids.local_iface then Float.max_float
    else t.share *. Bandwidth.to_bps (t.capacity iface)

  let src_key (src : Ids.asn) (egress : Ids.iface) = (src, egress)

  let unaccount (t : t) ((rk, ver) : Ids.res_key * int) (e : entry) =
    if not e.removed then begin
      e.removed <- true;
      Iface_acc.add t.in_demand e.ingress (-.e.demand);
      Tube_acc.add t.tube_demand (e.ingress, e.egress) (-.e.adj1);
      Src_acc.add t.src_demand (src_key e.src e.egress) (-.e.adj2);
      Iface_acc.add t.egress_adjusted e.egress (-.e.adj3);
      Iface_acc.add t.egress_allocated e.egress (-.e.granted);
      Ids.Res_ver_tbl.remove t.entries (rk, ver)
    end

  (** Admit (tentatively) one SegR version. [demand] is the requested
      bandwidth, [min_bw] the minimum acceptable one; a grant below
      [min_bw] denies the request and leaves no state behind. The
      grant becomes definitive when the backward pass calls
      {!set_granted} with the path-wide minimum. *)
  let admit (t : t) ~(key : Ids.res_key) ~(version : int) ~(src : Ids.asn)
      ~(ingress : Ids.iface) ~(egress : Ids.iface) ~(demand : Bandwidth.t)
      ~(min_bw : Bandwidth.t) ~(exp_time : Timebase.t) ~(now : Timebase.t) : decision
      =
    Expiry.sweep t.expiry ~now;
    t.admissions <- t.admissions + 1;
    if Ids.Res_ver_tbl.mem t.entries (key, version) then
      Denied { available = Bandwidth.zero } (* duplicate setup *)
    else begin
      (* Clamp the wire-derived demand before any ledger arithmetic:
         an inf demand would otherwise make [in_total] infinite,
         [cap_in /. in_total] zero and [adj1 = inf *. 0.] NaN — which
         the accumulators would then absorb permanently. *)
      let d = Bandwidth.to_bps (Bandwidth.clamp demand) in
      let cap_in = colibri_cap t ingress and cap_eg = colibri_cap t egress in
      (* Rule 1: ingress capacity bounds total ingress demand. *)
      let in_total = Iface_acc.get t.in_demand ingress +. d in
      let adj1 = d *. Float.min 1. (cap_in /. in_total) in
      (* Rule 2: egress capacity bounds the (ingress,egress) tube. *)
      let tube_total = Tube_acc.get t.tube_demand (ingress, egress) +. adj1 in
      let adj2 = adj1 *. Float.min 1. (cap_eg /. tube_total) in
      (* Rule 3: egress capacity bounds any single source AS. *)
      let src_total = Src_acc.get t.src_demand (src_key src egress) +. adj2 in
      let adj3 = adj2 *. Float.min 1. (cap_eg /. src_total) in
      (* Proportional share of the egress capacity, and hard free-capacity
         cap so that the sum of grants never exceeds the egress. *)
      let ideal = cap_eg *. adj3 /. (Iface_acc.get t.egress_adjusted egress +. adj3) in
      let free = Float.max 0. (cap_eg -. Iface_acc.get t.egress_allocated egress) in
      let granted = Float.min adj3 (Float.min ideal free) in
      if granted +. 1e-9 < Bandwidth.to_bps min_bw then
        Denied { available = Bandwidth.of_bps granted }
      else begin
        let entry =
          { src; ingress; egress; demand = d; adj1; adj2; adj3; granted; removed = false }
        in
        Ids.Res_ver_tbl.replace t.entries (key, version) entry;
        Iface_acc.add t.in_demand ingress d;
        Tube_acc.add t.tube_demand (ingress, egress) adj1;
        Src_acc.add t.src_demand (src_key src egress) adj2;
        Iface_acc.add t.egress_adjusted egress adj3;
        Iface_acc.add t.egress_allocated egress granted;
        Expiry.push t.expiry ~at:exp_time (fun () -> unaccount t (key, version) entry);
        Granted (Bandwidth.of_bps granted)
      end
    end

  (** Shrink a tentative grant to the final path-wide value (backward
      pass of the setup). Raising above the local grant is refused. *)
  let set_granted (t : t) ~(key : Ids.res_key) ~(version : int)
      ~(granted : Bandwidth.t) : (unit, string) result =
    match Ids.Res_ver_tbl.find_opt t.entries (key, version) with
    | None -> Error "unknown reservation version"
    | Some e ->
        let g = Bandwidth.to_bps granted in
        if g > e.granted +. 1e-6 then Error "cannot raise grant"
        else begin
          Iface_acc.add t.egress_allocated e.egress (g -. e.granted);
          e.granted <- g;
          Ok ()
        end

  (** Remove one version (cleanup of a failed setup, or deactivation
      after a version switch). A no-op on unknown (key, version) so
      retransmitted teardowns are idempotent, like setups. *)
  let remove (t : t) ~(key : Ids.res_key) ~(version : int) =
    match Ids.Res_ver_tbl.find_opt t.entries (key, version) with
    | Some e -> unaccount t (key, version) e
    | None -> ()

  let granted_of (t : t) ~key ~version =
    Option.map
      (fun e -> Bandwidth.of_bps e.granted)
      (Ids.Res_ver_tbl.find_opt t.entries (key, version))

  let count (t : t) = Ids.Res_ver_tbl.length t.entries
  let admissions (t : t) = t.admissions

  let allocated_on (t : t) ~(egress : Ids.iface) : Bandwidth.t =
    Bandwidth.of_bps (Iface_acc.get t.egress_allocated egress)

  let pp_iface = Fmt.int
  let pp_tube ppf (i, e) = Fmt.pf ppf "%d→%d" i e
  let pp_src_egress ppf (src, e) = Fmt.pf ppf "%a→%d" Ids.pp_asn src e

  (** Recompute every memoized aggregate from the entry table and diff
      it against the incremental state — the sanitizer for the
      constant-cost admission bookkeeping (Fig. 3). Returns one message
      per discrepancy; [[]] means the state is consistent. *)
  let audit (t : t) : string list =
    let in_demand = Iface_acc.create 64 in
    let tube_demand = Tube_acc.create 64 in
    let src_demand = Src_acc.create 64 in
    let egress_adjusted = Iface_acc.create 64 in
    let egress_allocated = Iface_acc.create 64 in
    let errs = ref [] in
    Ids.Res_ver_tbl.iter
      (fun (rk, ver) e ->
        if e.removed then
          errs :=
            Fmt.str "entries[%a#%d]: removed entry still in table" Ids.pp_res_key rk ver
            :: !errs;
        if e.granted < -1e-9 || Float.is_nan e.granted then
          errs :=
            Fmt.str "entries[%a#%d]: invalid grant %.6g" Ids.pp_res_key rk ver e.granted
            :: !errs;
        Iface_acc.add in_demand e.ingress e.demand;
        Tube_acc.add tube_demand (e.ingress, e.egress) e.adj1;
        Src_acc.add src_demand (src_key e.src e.egress) e.adj2;
        Iface_acc.add egress_adjusted e.egress e.adj3;
        Iface_acc.add egress_allocated e.egress e.granted)
      t.entries;
    (* The sum of grants must never exceed an egress's Colibri share
       (bounded tube fairness, §4.7). *)
    Ids.Iface_tbl.iter
      (fun egress alloc ->
        let cap = colibri_cap t egress in
        if alloc > cap +. 1e-6 *. Float.max 1. cap then
          errs :=
            Fmt.str "egress %d oversubscribed: %.6g allocated > %.6g capacity" egress
              alloc cap
            :: !errs)
      egress_allocated;
    !errs
    @ Iface_acc.diff ~what:"in_demand" ~pp_key:pp_iface t.in_demand in_demand
    @ Tube_acc.diff ~what:"tube_demand" ~pp_key:pp_tube t.tube_demand tube_demand
    @ Src_acc.diff ~what:"src_demand" ~pp_key:pp_src_egress t.src_demand src_demand
    @ Iface_acc.diff ~what:"egress_adjusted" ~pp_key:pp_iface t.egress_adjusted
        egress_adjusted
    @ Iface_acc.diff ~what:"egress_allocated" ~pp_key:pp_iface t.egress_allocated
        egress_allocated

  (** Deliberately skew one memoized aggregate so tests can verify that
      {!audit} detects corruption. Never call outside tests. *)
  let corrupt_for_test (t : t) =
    Iface_acc.add t.in_demand Ids.local_iface 1.0e6
end

module Eer = struct
  (* Per-EER accounting: versions of one EER contribute max, not sum. *)
  type flow = {
    mutable versions : (int * float * Timebase.t) list; (* (ver, bw, exp) *)
    mutable contribution : float; (* currently counted towards each segr *)
    segrs : Ids.res_key list;
    via_up : (Ids.res_key * Ids.res_key) option; (* (core, up) competition slot *)
  }

  type t = {
    (* Σ EER bandwidth currently allocated over each SegR. *)
    alloc : float Ids.Res_key_tbl.t;
    (* Per (core-SegR, up-SegR): EER demand competing for the core SegR. *)
    up_demand : float Ids.Res_pair_tbl.t;
    up_total : float Ids.Res_key_tbl.t; (* per core-SegR: Σ over up-SegRs *)
    flows : flow Ids.Res_key_tbl.t;
    expiry : Expiry.t;
    mutable admissions : int;
  }

  let create () : t =
    {
      alloc = Ids.Res_key_tbl.create 4096;
      up_demand = Ids.Res_pair_tbl.create 64;
      up_total = Ids.Res_key_tbl.create 64;
      flows = Ids.Res_key_tbl.create 4096;
      expiry = Expiry.create ();
      admissions = 0;
    }

  let alloc_of (t : t) (segr : Ids.res_key) =
    Option.value ~default:0. (Ids.Res_key_tbl.find_opt t.alloc segr)

  let add_alloc (t : t) (segr : Ids.res_key) dv =
    let v = Bandwidth.saturating_add (alloc_of t segr) dv in
    if v <= 1e-9 then Ids.Res_key_tbl.remove t.alloc segr
    else Ids.Res_key_tbl.replace t.alloc segr v

  let up_demand_of (t : t) slot =
    Option.value ~default:0. (Ids.Res_pair_tbl.find_opt t.up_demand slot)

  let add_up_demand (t : t) ((core, _up) as slot) dv =
    let v = Bandwidth.saturating_add (up_demand_of t slot) dv in
    if v <= 1e-9 then Ids.Res_pair_tbl.remove t.up_demand slot
    else Ids.Res_pair_tbl.replace t.up_demand slot v;
    let tot =
      Bandwidth.saturating_add
        (Option.value ~default:0. (Ids.Res_key_tbl.find_opt t.up_total core))
        dv
    in
    if tot <= 1e-9 then Ids.Res_key_tbl.remove t.up_total core
    else Ids.Res_key_tbl.replace t.up_total core tot

  (* Recompute a flow's contribution (max over unexpired versions) and
     propagate the delta into the aggregates. *)
  let refresh_flow (t : t) (key : Ids.res_key) (f : flow) ~now =
    f.versions <- List.filter (fun (_, _, exp) -> now < exp) f.versions;
    let contribution =
      List.fold_left (fun acc (_, bw, _) -> Float.max acc bw) 0. f.versions
    in
    let delta = contribution -. f.contribution in
    if Float.abs delta > 0. then begin
      List.iter (fun segr -> add_alloc t segr delta) f.segrs;
      (match f.via_up with Some slot -> add_up_demand t slot delta | None -> ());
      f.contribution <- contribution
    end;
    if List.is_empty f.versions then Ids.Res_key_tbl.remove t.flows key

  (** Admit one EER version over the given SegRs. [segr_bw segr]
      returns the SegR's current bandwidth (0 when expired/unknown).
      [via_up = Some (core, up)] marks admission at a transfer AS
      between an up- and a core-SegR, where the core bandwidth is
      shared proportionally between competing up-SegRs.

      [partial = true] implements the renewal flexibility of §4.2 ("all
      on-path ASes can specify the amount of bandwidth they are willing
      to grant"): instead of denying a demand that does not fully fit,
      the AS grants what fits — the path-wide minimum then becomes the
      renewed version's bandwidth. Setup requests use [partial = false]
      (grant-if-fits, §4.7). *)
  let admit ?(partial = false) (t : t) ~(key : Ids.res_key) ~(version : int)
      ~(segrs : (Ids.res_key * Bandwidth.t) list)
      ~(via_up : (Ids.res_key * Ids.res_key * Bandwidth.t) option)
      ~(demand : Bandwidth.t) ~(exp_time : Timebase.t) ~(now : Timebase.t) : decision
      =
    Expiry.sweep t.expiry ~now;
    t.admissions <- t.admissions + 1;
    (* Same clamp as segment admission: wire-derived magnitudes stay
       inside the representable ledger band. *)
    let d = Bandwidth.to_bps (Bandwidth.clamp demand) in
    let flow = Ids.Res_key_tbl.find_opt t.flows key in
    (match flow with Some f -> refresh_flow t key f ~now | None -> ());
    let existing = match flow with Some f -> f.contribution | None -> 0. in
    (* Only the increase over the flow's current contribution needs
       headroom: versions count with their max (§4.2). *)
    let extra = Float.max 0. (d -. existing) in
    (* Headroom in every underlying SegR. *)
    let headroom =
      List.fold_left
        (fun acc (segr, bw) ->
          Float.min acc (Bandwidth.to_bps bw -. alloc_of t segr))
        Float.max_float segrs
    in
    (* Transfer-AS rule: this up-SegR's proportional share of the core
       SegR. Demand figures are capped at the up-SegR's size. *)
    let up_share_headroom =
      match via_up with
      | None -> Float.max_float
      | Some (core, up, core_bw) ->
          let slot = (core, up) in
          let up_bw =
            List.fold_left
              (fun acc (k, bw) -> if Ids.equal_res_key k up then Bandwidth.to_bps bw else acc)
              0. segrs
          in
          let my_demand = Float.min (up_demand_of t slot +. extra) up_bw in
          let total =
            Option.value ~default:0. (Ids.Res_key_tbl.find_opt t.up_total core) +. extra
          in
          if total <= Bandwidth.to_bps core_bw then Float.max_float
          else begin
            (* Core SegR oversubscribed: proportional share. *)
            let share = Bandwidth.to_bps core_bw *. my_demand /. total in
            share -. up_demand_of t slot
          end
    in
    let grantable = Float.min headroom up_share_headroom in
    (* What this AS is willing to grant for the new version. *)
    let granted =
      if extra <= grantable +. 1e-9 then d
      else if partial then Float.max 0. (Float.min d (existing +. grantable))
      else 0.
    in
    if (not partial) && extra > grantable +. 1e-9 then
      Denied { available = Bandwidth.of_bps (Float.max 0. (existing +. grantable)) }
    else if partial && granted <= 0. then
      Denied { available = Bandwidth.zero }
    else begin
      let d = granted in
      let f =
        match Ids.Res_key_tbl.find_opt t.flows key with
        | Some f -> f
        | None ->
            let f =
              {
                versions = [];
                contribution = 0.;
                segrs = List.map fst segrs;
                via_up =
                  Option.map (fun (core, up, _) -> (core, up)) via_up;
              }
            in
            Ids.Res_key_tbl.replace t.flows key f;
            f
      in
      f.versions <- (version, d, exp_time) :: f.versions;
      refresh_flow t key f ~now;
      Expiry.push t.expiry ~at:exp_time (fun () ->
          match Ids.Res_key_tbl.find_opt t.flows key with
          | Some f -> refresh_flow t key f ~now:exp_time
          | None -> ());
      Granted (Bandwidth.of_bps d)
    end

  (** Cleanup of a failed setup: drop one tentative version. A no-op
      on unknown key or version — symmetric with {!Seg.remove}, so
      retransmitted teardowns are idempotent. *)
  let remove_version (t : t) ~(key : Ids.res_key) ~(version : int) ~(now : Timebase.t) =
    match Ids.Res_key_tbl.find_opt t.flows key with
    | None -> ()
    | Some f ->
        f.versions <- List.filter (fun (v, _, _) -> v <> version) f.versions;
        refresh_flow t key f ~now

  (** Grant already held by a (key, version) pair — the retransmission
      shortcut: re-admitting a version that is already live would
      double-add it, so handlers answer retransmits from here. *)
  let granted_of (t : t) ~(key : Ids.res_key) ~(version : int) : Bandwidth.t option =
    match Ids.Res_key_tbl.find_opt t.flows key with
    | None -> None
    | Some f ->
        List.find_map
          (fun (v, bw, _) ->
            if Int.equal v version then Some (Bandwidth.of_bps bw) else None)
          f.versions

  let allocated_over (t : t) (segr : Ids.res_key) : Bandwidth.t =
    Bandwidth.of_bps (alloc_of t segr)

  let flow_count (t : t) = Ids.Res_key_tbl.length t.flows
  let admissions (t : t) = t.admissions

  let pp_pair ppf (core, up) = Fmt.pf ppf "%a/%a" Ids.pp_res_key core Ids.pp_res_key up

  (** Recompute the per-SegR allocation and the transfer-AS competition
      aggregates from the flow table and diff them against the
      incremental state; also re-derive each flow's contribution (max
      over live versions, §4.2). [[]] means consistent. *)
  let audit (t : t) : string list =
    let alloc = Res_acc.create 64 in
    let up_demand = Pair_acc.create 64 in
    let up_total = Res_acc.create 64 in
    let errs = ref [] in
    Ids.Res_key_tbl.iter
      (fun key (f : flow) ->
        if List.is_empty f.versions then
          errs :=
            Fmt.str "flows[%a]: empty flow still in table" Ids.pp_res_key key :: !errs;
        let expected =
          List.fold_left (fun acc (_, bw, _) -> Float.max acc bw) 0. f.versions
        in
        if not (Float.equal expected f.contribution) then
          errs :=
            Fmt.str "flows[%a]: contribution %.6g, max over versions %.6g"
              Ids.pp_res_key key f.contribution expected
            :: !errs;
        List.iter (fun segr -> Res_acc.add alloc segr f.contribution) f.segrs;
        match f.via_up with
        | Some ((core, _) as slot) ->
            Pair_acc.add up_demand slot f.contribution;
            Res_acc.add up_total core f.contribution
        | None -> ())
      t.flows;
    !errs
    @ Res_acc.diff ~what:"alloc" ~pp_key:Ids.pp_res_key t.alloc alloc
    @ Pair_acc.diff ~what:"up_demand" ~pp_key:pp_pair t.up_demand up_demand
    @ Res_acc.diff ~what:"up_total" ~pp_key:Ids.pp_res_key t.up_total up_total

  (** Deliberately skew one memoized aggregate so tests can verify that
      {!audit} detects corruption. Never call outside tests. *)
  let corrupt_for_test (t : t) =
    let phantom = { Ids.src_as = { Ids.isd = 999; num = 999 }; res_id = max_int } in
    add_alloc t phantom 1.0e6
end

(** The {!Backend_intf.S} packaging: one [Seg] plus one [Eer] state
    behind the uniform interface, with the retransmission shortcut
    ([granted_of] before [admit]) folded into [admit_*] so re-admits
    are idempotent at the interface boundary. *)
module B : Backend_intf.S = struct
  type t = {
    seg : Seg.t;
    eer : Eer.t;
    mutable admit_calls : int;
    mutable msgs : int;
  }

  let name = "ntube"

  (* The chained discipline: a setup walks the path forward (admission
     at each AS) and backward (commit of the path-wide minimum), so
     each on-path AS sees two control messages per admission —
     retransmits included, since the walk repeats. *)
  let commit_required = true
  let capacity_bound_enforced = true

  let create ~capacity ?share () =
    { seg = Seg.create ~capacity ?share (); eer = Eer.create (); admit_calls = 0; msgs = 0 }

  let admit_seg (t : t) ~(req : Backend_intf.seg_request) ~now =
    t.admit_calls <- t.admit_calls + 1;
    t.msgs <- t.msgs + 2;
    match Seg.granted_of t.seg ~key:req.key ~version:req.version with
    | Some bw -> Granted bw
    | None ->
        Seg.admit t.seg ~key:req.key ~version:req.version ~src:req.src
          ~ingress:req.ingress ~egress:req.egress ~demand:req.demand
          ~min_bw:req.min_bw ~exp_time:req.exp_time ~now

  let commit_seg (t : t) ~key ~version ~granted =
    Seg.set_granted t.seg ~key ~version ~granted

  let admit_eer (t : t) ~(req : Backend_intf.eer_request) ~now =
    t.admit_calls <- t.admit_calls + 1;
    t.msgs <- t.msgs + 2;
    match Eer.granted_of t.eer ~key:req.key ~version:req.version with
    | Some bw -> Granted bw
    | None ->
        Eer.admit ~partial:req.renewal t.eer ~key:req.key ~version:req.version
          ~segrs:req.segrs ~via_up:req.via_up ~demand:req.demand
          ~exp_time:req.exp_time ~now

  let remove_seg (t : t) ~key ~version ~now:_ = Seg.remove t.seg ~key ~version
  let remove_eer (t : t) ~key ~version ~now = Eer.remove_version t.eer ~key ~version ~now
  let seg_granted_of (t : t) ~key ~version = Seg.granted_of t.seg ~key ~version
  let eer_granted_of (t : t) ~key ~version = Eer.granted_of t.eer ~key ~version
  let seg_allocated_on (t : t) ~egress = Seg.allocated_on t.seg ~egress
  let eer_allocated_over (t : t) ~segr = Eer.allocated_over t.eer segr
  let seg_count (t : t) = Seg.count t.seg
  let eer_flow_count (t : t) = Eer.flow_count t.eer
  let admissions (t : t) = t.admit_calls
  let control_messages (t : t) = t.msgs
  let audit (t : t) = Seg.audit t.seg @ Eer.audit t.eer

  let obs_snapshot (t : t) =
    Backend_intf.standard_snapshot ~name ~seg_count:(seg_count t)
      ~eer_flow_count:(eer_flow_count t) ~admissions:t.admit_calls
      ~control_messages:t.msgs

  let corrupt_for_test (t : t) = Seg.corrupt_for_test t.seg
end

let factory : Backend_intf.factory =
  {
    label = "ntube";
    make =
      (fun ~capacity ?share () ->
        Backend_intf.Instance ((module B), B.create ~capacity ?share ()));
  }
