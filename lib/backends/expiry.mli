(** Expiry heap shared by the admission backends: a binary min-heap of
    (time, undo thunk); thunks of expired entries run lazily at the
    next operation ([sweep]). Backends use it so that reservation
    state never needs a background task to decay. *)

open Colibri_types

type t

val create : unit -> t

val push : t -> at:Timebase.t -> (unit -> unit) -> unit
(** Schedule an undo thunk to run at the first [sweep] whose [now] is
    at or past [at]. *)

val sweep : t -> now:Timebase.t -> unit
(** Run the undo thunks of all entries expired at [now]. *)
