(** DiffServ admission backend: class-based provisioning behind the
    {!Backend_intf.S} contract — the {e no-admission-control}
    counterpoint (§1, §8).

    DiffServ has no per-reservation signaling: sources mark packets
    with a class ({!Baseline.Diffserv.dscp}) and every hop schedules by
    class. The wrapper therefore grants every request in full, pays
    {e zero} control messages, and merely accounts who promised what:
    SegRs map to the Assured class, EERs to Expedited. Because nothing
    polices aggregate demand, the booked bandwidth on an egress may
    exceed the link — [capacity_bound_enforced = false], and the bench's
    [utilization] column shows the resulting oversubscription, which is
    exactly the failure mode reservation systems exist to remove. *)

module B : Backend_intf.S
(** [name = "diffserv"]. *)

val factory : Backend_intf.factory
