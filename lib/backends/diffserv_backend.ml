(** DiffServ admission backend: class-based provisioning behind the
    {!Backend_intf.S} contract — the {e no-admission-control}
    counterpoint (§1, §8).

    DiffServ has no per-reservation signaling: sources mark packets
    with a class ({!Baseline.Diffserv.dscp}) and every hop schedules by
    class. The wrapper therefore grants every request in full, pays
    {e zero} control messages, and merely accounts who promised what:
    SegRs map to the Assured class, EERs to Expedited. Because nothing
    polices aggregate demand, the booked bandwidth on an egress may
    exceed the link — [capacity_bound_enforced = false], and the bench's
    [utilization] column shows the resulting oversubscription, which is
    exactly the failure mode reservation systems exist to remove. *)

open Colibri_types

type entry = {
  egress : Ids.iface;
  klass : Baseline.Diffserv.dscp;
  mutable bw : float; (* bps *)
  exp_time : Timebase.t;
  mutable removed : bool;
}

module B : Backend_intf.S = struct
  type t = {
    capacity : Ids.iface -> Bandwidth.t;
    share : float;
    booked : float Ids.Iface_tbl.t; (* Σ live promises per egress *)
    seg_entries : entry Ids.Res_ver_tbl.t;
    eer_entries : entry Ids.Res_ver_tbl.t;
    expiry : Expiry.t;
    mutable admit_calls : int;
  }

  let name = "diffserv"
  let commit_required = false (* nothing to commit: no signaling *)
  let capacity_bound_enforced = false

  let create ~capacity ?(share = 0.80) () =
    {
      capacity;
      share;
      booked = Ids.Iface_tbl.create 16;
      seg_entries = Ids.Res_ver_tbl.create 256;
      eer_entries = Ids.Res_ver_tbl.create 1024;
      expiry = Expiry.create ();
      admit_calls = 0;
    }

  let add_booked (t : t) (egress : Ids.iface) dv =
    let v =
      Bandwidth.saturating_add
        (Option.value ~default:0. (Ids.Iface_tbl.find_opt t.booked egress))
        dv
    in
    if v <= 1e-9 then Ids.Iface_tbl.remove t.booked egress
    else Ids.Iface_tbl.replace t.booked egress v

  let release (t : t) (entries : entry Ids.Res_ver_tbl.t) kv (e : entry) =
    if not e.removed then begin
      e.removed <- true;
      add_booked t e.egress (-.e.bw);
      Ids.Res_ver_tbl.remove entries kv
    end

  let admit (t : t) (entries : entry Ids.Res_ver_tbl.t) ~key ~version ~egress ~klass
      ~(demand : Bandwidth.t) ~exp_time ~now : Backend_intf.decision =
    Expiry.sweep t.expiry ~now;
    t.admit_calls <- t.admit_calls + 1;
    match Ids.Res_ver_tbl.find_opt entries (key, version) with
    | Some e -> Granted (Bandwidth.of_bps e.bw) (* retransmission *)
    | None ->
        (* Class-based networks accept everything; congestion shows up
           in the data plane, not at admission. Everything except an
           unrepresentable magnitude: the booked ledger must stay
           finite even for the no-admission-control discipline. *)
        let e =
          {
            egress;
            klass;
            bw = Bandwidth.to_bps (Bandwidth.clamp demand);
            exp_time;
            removed = false;
          }
        in
        Ids.Res_ver_tbl.replace entries (key, version) e;
        add_booked t egress e.bw;
        Expiry.push t.expiry ~at:exp_time (fun () ->
            match Ids.Res_ver_tbl.find_opt entries (key, version) with
            | Some e' when e' == e -> release t entries (key, version) e
            | _ -> ());
        Granted demand

  let admit_seg (t : t) ~(req : Backend_intf.seg_request) ~now =
    admit t t.seg_entries ~key:req.key ~version:req.version ~egress:req.egress
      ~klass:Baseline.Diffserv.Assured ~demand:req.demand ~exp_time:req.exp_time ~now

  let admit_eer (t : t) ~(req : Backend_intf.eer_request) ~now =
    admit t t.eer_entries ~key:req.key ~version:req.version ~egress:req.egress
      ~klass:Baseline.Diffserv.Expedited ~demand:req.demand ~exp_time:req.exp_time ~now

  let commit_seg (t : t) ~key ~version ~granted =
    match Ids.Res_ver_tbl.find_opt t.seg_entries (key, version) with
    | None -> Error "unknown reservation version"
    | Some e ->
        let g = Bandwidth.to_bps granted in
        if g > e.bw +. 1e-6 then Error "cannot raise grant"
        else begin
          add_booked t e.egress (g -. e.bw);
          e.bw <- g;
          Ok ()
        end

  let remove_kind (t : t) entries ~key ~version ~now =
    Expiry.sweep t.expiry ~now;
    match Ids.Res_ver_tbl.find_opt entries (key, version) with
    | Some e -> release t entries (key, version) e
    | None -> ()

  let remove_seg (t : t) ~key ~version ~now = remove_kind t t.seg_entries ~key ~version ~now
  let remove_eer (t : t) ~key ~version ~now = remove_kind t t.eer_entries ~key ~version ~now

  let granted_of (entries : entry Ids.Res_ver_tbl.t) ~key ~version =
    Option.map
      (fun e -> Bandwidth.of_bps e.bw)
      (Ids.Res_ver_tbl.find_opt entries (key, version))

  let seg_granted_of (t : t) ~key ~version = granted_of t.seg_entries ~key ~version
  let eer_granted_of (t : t) ~key ~version = granted_of t.eer_entries ~key ~version

  let seg_allocated_on (t : t) ~egress =
    Bandwidth.of_bps (Option.value ~default:0. (Ids.Iface_tbl.find_opt t.booked egress))

  let eer_allocated_over (_ : t) ~segr:_ = Bandwidth.zero (* no chain tracking *)
  let seg_count (t : t) = Ids.Res_ver_tbl.length t.seg_entries
  let admissions (t : t) = t.admit_calls
  let control_messages (_ : t) = 0 (* the defining property *)

  let eer_flow_count (t : t) =
    let keys = Ids.Res_key_tbl.create 64 in
    Ids.Res_ver_tbl.iter
      (fun (key, _) _ -> Ids.Res_key_tbl.replace keys key ())
      t.eer_entries;
    Ids.Res_key_tbl.length keys

  let audit (t : t) : string list =
    let errs = ref [] in
    let expected = Ids.Iface_tbl.create 16 in
    let fold what entries =
      Ids.Res_ver_tbl.iter
        (fun (key, ver) (e : entry) ->
          if e.removed then
            errs :=
              Fmt.str "%s[%a#%d]: removed entry still in table" what Ids.pp_res_key key
                ver
              :: !errs;
          Ids.Iface_tbl.replace expected e.egress
            (Option.value ~default:0. (Ids.Iface_tbl.find_opt expected e.egress) +. e.bw))
        entries
    in
    fold "seg" t.seg_entries;
    fold "eer" t.eer_entries;
    let check egress stored =
      let want = Option.value ~default:0. (Ids.Iface_tbl.find_opt expected egress) in
      if Float.abs (stored -. want) > 1e-6 *. Float.max 1. want then
        errs :=
          Fmt.str "booked[%d]: stored %.6g bps, entries sum to %.6g bps" egress stored
            want
          :: !errs
    in
    Ids.Iface_tbl.iter check t.booked;
    Ids.Iface_tbl.iter
      (fun egress _ ->
        if not (Ids.Iface_tbl.mem t.booked egress) then check egress 0.)
      expected;
    !errs

  let obs_snapshot (t : t) =
    Backend_intf.standard_snapshot ~name ~seg_count:(seg_count t)
      ~eer_flow_count:(eer_flow_count t) ~admissions:t.admit_calls ~control_messages:0

  (** Skew the booked aggregate so tests can verify that {!audit}
      detects corruption. Never call outside tests. *)
  let corrupt_for_test (t : t) = add_booked t Ids.local_iface 1.0e6
end

let factory : Backend_intf.factory =
  {
    label = "diffserv";
    make =
      (fun ~capacity ?share () ->
        Backend_intf.Instance ((module B), B.create ~capacity ?share ()));
  }
