(** IntServ/RSVP admission backend: {!Baseline.Intserv} ports (one per
    egress interface) behind the {!Backend_intf.S} contract.

    Each reservation — SegR or EER alike, RSVP has only flows — becomes
    one per-flow soft-state record on its egress port. Admission is the
    baseline's deliberate O(#flows) scan; the discipline is chained
    (PATH forward, RESV backward), so like the reference backend it
    pays two control messages per on-path AS per admission, but unlike
    it the admission cost grows with the number of installed
    reservations (§8, Table 1 — the contrast the bench's
    [setup_latency] column shows). All-or-nothing grants: RSVP does not
    negotiate a demand down, so a request that does not fit is denied
    with the current headroom as [available]. *)

module B : Backend_intf.S
(** [name = "intserv"]. *)

val factory : Backend_intf.factory
