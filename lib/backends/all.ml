(** The backend registry: every admission discipline that can ride
    behind {!Backend_intf.S}, in the order the bench's comparison table
    prints them. [find] resolves the [--backend] style selectors of
    tools and tests. *)

let ntube = Ntube.factory
let intserv = Intserv_backend.factory
let diffserv = Diffserv_backend.factory
let flyover = Flyover.factory

let all : Backend_intf.factory list = [ ntube; intserv; diffserv; flyover ]

let find (label : string) : Backend_intf.factory option =
  List.find_opt (fun (f : Backend_intf.factory) -> String.equal f.label label) all
