(** AES-CMAC (RFC 4493 / NIST SP 800-38B).

    CMAC over AES-128 is the message-authentication primitive used
    everywhere in Colibri: the DRKey pseudo-random function (Eq. (1)),
    the segment-reservation tokens (Eq. (3)), the hop authenticators
    (Eq. (4)), and the per-packet hop validation fields (Eq. (6)).

    The key record carries the two working blocks the digest loop needs
    ([x], [last]) so that {!digest_into} / {!digest_trunc_into} are
    allocation-free; see DESIGN.md §8 for the scratch-ownership rules.
    A consequence is that one [key] must not be shared across domains. *)

type key = { aes : Aes.key; k1 : bytes; k2 : bytes; x : bytes; last : bytes }

let msb_set b = Char.code (Bytes.get b 0) land 0x80 <> 0

(* Left-shift the 16-byte block [src] by one bit into [dst] (may alias). *)
let shl1_into ~(src : bytes) ~(dst : bytes) =
  let carry = ref 0 in
  for i = 15 downto 0 do
    let v = Char.code (Bytes.get src i) in
    Bytes.set dst i (Char.chr (((v lsl 1) land 0xff) lor !carry));
    carry := v lsr 7
  done

let xor_last_byte b v =
  Bytes.set b 15 (Char.chr (Char.code (Bytes.get b 15) lxor v))

(* Subkey generation per RFC 4493 §2.3, writing into existing [k1]/[k2]
   buffers. [scratch] holds the intermediate L = AES_K(0^128). *)
let derive_subkeys_into aes ~(k1 : bytes) ~(k2 : bytes) ~(scratch : bytes) =
  Bytes.fill scratch 0 16 '\000';
  Aes.encrypt_block aes ~src:scratch ~src_off:0 ~dst:scratch ~dst_off:0;
  shl1_into ~src:scratch ~dst:k1;
  if msb_set scratch then xor_last_byte k1 0x87;
  shl1_into ~src:k1 ~dst:k2;
  if msb_set k1 then xor_last_byte k2 0x87

let of_aes_key (aes : Aes.key) : key =
  let k1 = Bytes.create 16 and k2 = Bytes.create 16 in
  let x = Bytes.create 16 and last = Bytes.create 16 in
  derive_subkeys_into aes ~k1 ~k2 ~scratch:x;
  { aes; k1; k2; x; last }

let of_secret (secret : bytes) : key = of_aes_key (Aes.of_secret secret)

(** [rekey k secret ~off] re-keys [k] in place with the 16-byte secret
    at [secret+off]: the AES schedule and both CMAC subkeys are
    recomputed into the existing buffers, with zero allocation. This is
    how the router re-derives the per-reservation σ key per packet. *)
(* hot-path *)
let rekey (k : key) (secret : bytes) ~(off : int) =
  Aes.rekey k.aes secret ~off;
  derive_subkeys_into k.aes ~k1:k.k1 ~k2:k.k2 ~scratch:k.x

let mac_size = 16

(* Core CMAC over the span [msg+off, msg+off+len); leaves the 16-byte
   tag in [k.x]. Allocation-free. *)
(* hot-path *)
let digest_core (k : key) (msg : bytes) ~(off : int) ~(len : int) =
  (* Caller-contract guard: offsets on the wire path are computed from
     already-validated headers, so this never fires per packet. *)
  if off < 0 || len < 0 || off + len > Bytes.length msg then
    invalid_arg "Cmac.digest: span out of bounds" [@colibri.allow "d2"];
  let nblocks = if len = 0 then 1 else (len + 15) / 16 in
  let x = k.x in
  Bytes.fill x 0 16 '\000';
  (* Process all complete blocks except the last. *)
  for i = 0 to nblocks - 2 do
    for j = 0 to 15 do
      Bytes.set x j
        (Char.chr
           (Char.code (Bytes.get x j)
           lxor Char.code (Bytes.get msg (off + (i * 16) + j))))
    done;
    Aes.encrypt_block k.aes ~src:x ~src_off:0 ~dst:x ~dst_off:0
  done;
  (* Last block: complete → xor K1; partial → pad 10* and xor K2. *)
  let boff = off + ((nblocks - 1) * 16) in
  let rem = len - ((nblocks - 1) * 16) in
  let last = k.last in
  Bytes.fill last 0 16 '\000';
  if rem = 16 then begin
    Bytes.blit msg boff last 0 16;
    for j = 0 to 15 do
      Bytes.set last j
        (Char.chr (Char.code (Bytes.get last j) lxor Char.code (Bytes.get k.k1 j)))
    done
  end
  else begin
    if rem > 0 then Bytes.blit msg boff last 0 rem;
    Bytes.set last rem '\x80';
    for j = 0 to 15 do
      Bytes.set last j
        (Char.chr (Char.code (Bytes.get last j) lxor Char.code (Bytes.get k.k2 j)))
    done
  end;
  for j = 0 to 15 do
    Bytes.set x j (Char.chr (Char.code (Bytes.get x j) lxor Char.code (Bytes.get last j)))
  done;
  Aes.encrypt_block k.aes ~src:x ~src_off:0 ~dst:x ~dst_off:0

(** [digest_into k msg ~off ~len ~dst ~dst_off] writes the 16-byte CMAC
    of the span [msg+off, msg+off+len) into [dst+dst_off]. The only
    buffers touched are [dst] and [k]'s own scratch. *)
(* hot-path *)
let digest_into (k : key) (msg : bytes) ~off ~len ~(dst : bytes) ~dst_off =
  (* Caller-contract guard, as in [digest_core]. *)
  if dst_off < 0 || dst_off + 16 > Bytes.length dst then
    invalid_arg "Cmac.digest_into: dst span out of bounds" [@colibri.allow "d2"];
  digest_core k msg ~off ~len;
  Bytes.blit k.x 0 dst dst_off 16

(** [digest_trunc_into] is {!digest_into} truncated to [tag_len] bytes
    (Colibri truncates hop validation fields to ℓ_hvf = 4 bytes). *)
(* hot-path *)
let digest_trunc_into (k : key) (msg : bytes) ~off ~len ~(dst : bytes) ~dst_off
    ~tag_len =
  (* Caller-contract guards, as in [digest_core]. *)
  if tag_len < 1 || tag_len > 16 then
    invalid_arg "Cmac.digest_trunc_into: tag_len must be in 1..16" [@colibri.allow "d2"];
  if dst_off < 0 || dst_off + tag_len > Bytes.length dst then
    invalid_arg "Cmac.digest_trunc_into: dst span out of bounds" [@colibri.allow "d2"];
  digest_core k msg ~off ~len;
  Bytes.blit k.x 0 dst dst_off tag_len

(** [digest key msg] is the full 16-byte CMAC of [msg]. *)
let digest (k : key) (msg : bytes) : bytes =
  let out = Bytes.create 16 in
  digest_into k msg ~off:0 ~len:(Bytes.length msg) ~dst:out ~dst_off:0;
  out

(** [digest_trunc key msg ~len] is the first [len] bytes of the CMAC. *)
let digest_trunc (k : key) (msg : bytes) ~len : bytes =
  if len < 1 || len > 16 then invalid_arg "Cmac.digest_trunc: len must be in 1..16";
  let out = Bytes.create len in
  digest_trunc_into k msg ~off:0 ~len:(Bytes.length msg) ~dst:out ~dst_off:0
    ~tag_len:len;
  out

(** Constant-time tag comparison (length must match). *)
let verify (k : key) (msg : bytes) ~(tag : bytes) : bool =
  let len = Bytes.length tag in
  if len < 1 || len > 16 then false
  else begin
    digest_core k msg ~off:0 ~len:(Bytes.length msg);
    let expect = k.x in
    let acc = ref 0 in
    for i = 0 to len - 1 do
      acc := !acc lor (Char.code (Bytes.get expect i) lxor Char.code (Bytes.get tag i))
    done;
    !acc = 0
  end

(** Constant-time comparison of the first [tag_len] bytes of the CMAC of
    the span [msg+off, msg+off+len) against [tag+tag_off]. Allocation-
    free: this is what the router's per-packet HVF check compiles to. *)
(* hot-path *)
let verify_at (k : key) (msg : bytes) ~off ~len ~(tag : bytes) ~tag_off ~tag_len
    : bool =
  if tag_len < 1 || tag_len > 16 then false
  else if tag_off < 0 || tag_off + tag_len > Bytes.length tag then false
  else begin
    digest_core k msg ~off ~len;
    let expect = k.x in
    let acc = ref 0 in
    for i = 0 to tag_len - 1 do
      acc :=
        !acc
        lor (Char.code (Bytes.get expect i)
            lxor Char.code (Bytes.get tag (tag_off + i)))
    done;
    !acc = 0
  end
