(** AES-128 block cipher (FIPS-197), encryption direction only.

    Colibri needs AES only as a pseudo-random permutation underneath
    CMAC (hop-validation-field MACs, DRKey PRF) and CTR-mode AEAD, all
    of which use the forward direction exclusively. Validated against
    the FIPS-197 and SP 800-38A vectors in the test suite. *)

type key
(** An expanded key schedule (11 round keys) plus the block-state
    scratch {!encrypt_block} works in. Because the scratch is shared, a
    [key] value must not be used from two domains concurrently; give
    each domain its own expansion. *)

val block_size : int
(** 16 bytes. *)

val expand : bytes -> key
(** Expand a 16-byte key. Raises [Invalid_argument] on other sizes. *)

val of_secret : bytes -> key
(** Alias of {!expand}. *)

val encrypt_block : key -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit
(** Encrypt the 16-byte block at [src+src_off] into [dst+dst_off];
    [src] and [dst] may alias. *)

val encrypt : key -> bytes -> bytes
(** Encrypt one standalone 16-byte block. *)

val rekey : key -> bytes -> off:int -> unit
(** [rekey k secret ~off] re-expands the 16-byte secret at
    [secret+off] into [k]'s existing schedule without allocating.
    Raises [Invalid_argument] if fewer than 16 bytes are available. *)
