(** AES-128 block cipher (FIPS-197), encryption direction only.

    Colibri needs AES only as a pseudo-random permutation underneath
    CMAC (hop-validation-field MACs, DRKey PRF) and CTR-mode AEAD, all
    of which use the forward direction exclusively. The implementation
    is a straightforward byte-oriented rendition of the standard with a
    precomputed S-box and xtime table; it is validated against the
    FIPS-197 and SP 800-38A vectors in the test suite.

    Performance note: the paper's data plane uses AES-NI; here a block
    costs a few hundred nanoseconds, which uniformly scales down the
    absolute packet rates of the benchmarks without changing their
    shape (see DESIGN.md §3). *)

type key = { rk : bytes; st : int array; tmp : int array }
(** Expanded key schedule (11 round keys of 16 bytes, 176 bytes) plus
    the two 16-cell state arrays {!encrypt_block} works in. Hoisting
    the state into the key makes a block encryption allocation-free on
    the wire path (DESIGN.md §8); the price is that one [key] value
    must not be used from two domains concurrently. *)

let block_size = 16

let sbox =
  "\x63\x7c\x77\x7b\xf2\x6b\x6f\xc5\x30\x01\x67\x2b\xfe\xd7\xab\x76\
   \xca\x82\xc9\x7d\xfa\x59\x47\xf0\xad\xd4\xa2\xaf\x9c\xa4\x72\xc0\
   \xb7\xfd\x93\x26\x36\x3f\xf7\xcc\x34\xa5\xe5\xf1\x71\xd8\x31\x15\
   \x04\xc7\x23\xc3\x18\x96\x05\x9a\x07\x12\x80\xe2\xeb\x27\xb2\x75\
   \x09\x83\x2c\x1a\x1b\x6e\x5a\xa0\x52\x3b\xd6\xb3\x29\xe3\x2f\x84\
   \x53\xd1\x00\xed\x20\xfc\xb1\x5b\x6a\xcb\xbe\x39\x4a\x4c\x58\xcf\
   \xd0\xef\xaa\xfb\x43\x4d\x33\x85\x45\xf9\x02\x7f\x50\x3c\x9f\xa8\
   \x51\xa3\x40\x8f\x92\x9d\x38\xf5\xbc\xb6\xda\x21\x10\xff\xf3\xd2\
   \xcd\x0c\x13\xec\x5f\x97\x44\x17\xc4\xa7\x7e\x3d\x64\x5d\x19\x73\
   \x60\x81\x4f\xdc\x22\x2a\x90\x88\x46\xee\xb8\x14\xde\x5e\x0b\xdb\
   \xe0\x32\x3a\x0a\x49\x06\x24\x5c\xc2\xd3\xac\x62\x91\x95\xe4\x79\
   \xe7\xc8\x37\x6d\x8d\xd5\x4e\xa9\x6c\x56\xf4\xea\x65\x7a\xae\x08\
   \xba\x78\x25\x2e\x1c\xa6\xb4\xc6\xe8\xdd\x74\x1f\x4b\xbd\x8b\x8a\
   \x70\x3e\xb5\x66\x48\x03\xf6\x0e\x61\x35\x57\xb9\x86\xc1\x1d\x9e\
   \xe1\xf8\x98\x11\x69\xd9\x8e\x94\x9b\x1e\x87\xe9\xce\x55\x28\xdf\
   \x8c\xa1\x89\x0d\xbf\xe6\x42\x68\x41\x99\x2d\x0f\xb0\x54\xbb\x16"

(* xtime.[i] = i·2 in GF(2^8) with the AES polynomial. *)
let xtime =
  String.init 256 (fun i ->
      let d = i lsl 1 in
      Char.chr (if d land 0x100 <> 0 then d lxor 0x11b land 0xff else d))

(* A constant lookup table: written by nobody after initialization,
   so sharing it across router domains is benign. Reviewed
   (DESIGN.md §11) — domaincheck cannot prove immutability of an
   [int array], hence the allow. *)
let rcon =
  [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]
[@@colibri.allow "d6 d7"]

let sub i = Char.code sbox.[i]

(* Key-schedule core: expand the 16-byte key at [key+off] into [rk]
   (176 bytes), in place. Shared by [expand] and [rekey]. The loop body
   is written without helper closures or intermediate tuples: the
   router re-runs this schedule per EER packet (σ re-derivation), so it
   must not allocate. *)
(* hot-path *)
let expand_into (rk : bytes) (key : bytes) ~(off : int) =
  Bytes.blit key off rk 0 16;
  for i = 4 to 43 do
    let wb = (i * 4) - 16 (* word i-4 *) and pb = (i * 4) - 4 (* word i-1 *) in
    let w0 = Char.code (Bytes.get rk wb)
    and w1 = Char.code (Bytes.get rk (wb + 1))
    and w2 = Char.code (Bytes.get rk (wb + 2))
    and w3 = Char.code (Bytes.get rk (wb + 3)) in
    let p0 = Char.code (Bytes.get rk pb)
    and p1 = Char.code (Bytes.get rk (pb + 1))
    and p2 = Char.code (Bytes.get rk (pb + 2))
    and p3 = Char.code (Bytes.get rk (pb + 3)) in
    if i mod 4 = 0 then begin
      (* RotWord + SubWord + Rcon *)
      Bytes.set rk (i * 4) (Char.chr (w0 lxor (sub p1 lxor rcon.((i / 4) - 1))));
      Bytes.set rk ((i * 4) + 1) (Char.chr (w1 lxor sub p2));
      Bytes.set rk ((i * 4) + 2) (Char.chr (w2 lxor sub p3));
      Bytes.set rk ((i * 4) + 3) (Char.chr (w3 lxor sub p0))
    end
    else begin
      Bytes.set rk (i * 4) (Char.chr (w0 lxor p0));
      Bytes.set rk ((i * 4) + 1) (Char.chr (w1 lxor p1));
      Bytes.set rk ((i * 4) + 2) (Char.chr (w2 lxor p2));
      Bytes.set rk ((i * 4) + 3) (Char.chr (w3 lxor p3))
    end
  done

(** Expand a 16-byte key into the 11-round-key schedule. *)
let expand (key : bytes) : key =
  if Bytes.length key <> 16 then invalid_arg "Aes.expand: key must be 16 bytes";
  let rk = Bytes.create 176 in
  expand_into rk key ~off:0;
  { rk; st = Array.make 16 0; tmp = Array.make 16 0 }

let of_secret = expand

(** [rekey k key ~off] re-expands the 16-byte secret at [key+off] into
    [k]'s existing schedule, reusing its buffers. This is how the router
    derives the per-reservation σ key without allocating (DESIGN.md §8). *)
(* hot-path *)
let rekey (k : key) (key : bytes) ~(off : int) =
  (* Caller-contract guard: σ-key offsets come from validated headers. *)
  if off < 0 || off + 16 > Bytes.length key then
    invalid_arg "Aes.rekey: need 16 bytes" [@colibri.allow "d2"];
  expand_into k.rk key ~off

(** [encrypt_block key ~src ~src_off ~dst ~dst_off] encrypts the
    16-byte block at [src+src_off] into [dst+dst_off]. [src] and [dst]
    may alias. The state lives in the key's scratch arrays; all heavy
    inner operations are table lookups. *)
(* hot-path *)
let encrypt_block (k : key) ~(src : bytes) ~src_off ~(dst : bytes) ~dst_off =
  let rk = k.rk in
  let s = k.st in
  for i = 0 to 15 do
    s.(i) <- Char.code (Bytes.get src (src_off + i)) lxor Char.code (Bytes.get rk i)
  done;
  let tmp = k.tmp in
  for round = 1 to 10 do
    (* SubBytes + ShiftRows combined: tmp.(col*4+row) <- S(s[(col+row)*4+row]) *)
    for col = 0 to 3 do
      tmp.((col * 4) + 0) <- sub s.(col * 4);
      tmp.((col * 4) + 1) <- sub s.((((col + 1) land 3) * 4) + 1);
      tmp.((col * 4) + 2) <- sub s.((((col + 2) land 3) * 4) + 2);
      tmp.((col * 4) + 3) <- sub s.((((col + 3) land 3) * 4) + 3)
    done;
    if round < 10 then
      (* MixColumns *)
      for col = 0 to 3 do
        let a0 = tmp.(col * 4)
        and a1 = tmp.((col * 4) + 1)
        and a2 = tmp.((col * 4) + 2)
        and a3 = tmp.((col * 4) + 3) in
        let x v = Char.code xtime.[v] in
        s.(col * 4) <- x a0 lxor (x a1 lxor a1) lxor a2 lxor a3;
        s.((col * 4) + 1) <- a0 lxor x a1 lxor (x a2 lxor a2) lxor a3;
        s.((col * 4) + 2) <- a0 lxor a1 lxor x a2 lxor (x a3 lxor a3);
        s.((col * 4) + 3) <- (x a0 lxor a0) lxor a1 lxor a2 lxor x a3
      done
    else Array.blit tmp 0 s 0 16;
    (* AddRoundKey *)
    let base = round * 16 in
    for i = 0 to 15 do
      s.(i) <- s.(i) lxor Char.code (Bytes.get rk (base + i))
    done
  done;
  for i = 0 to 15 do
    Bytes.set dst (dst_off + i) (Char.chr s.(i))
  done

(** Convenience: encrypt one standalone 16-byte block. *)
let encrypt (k : key) (block : bytes) : bytes =
  if Bytes.length block <> 16 then invalid_arg "Aes.encrypt: block must be 16 bytes";
  let out = Bytes.create 16 in
  encrypt_block k ~src:block ~src_off:0 ~dst:out ~dst_off:0;
  out
