(** AES-CMAC (RFC 4493 / NIST SP 800-38B).

    CMAC over AES-128 is the message-authentication primitive used
    everywhere in Colibri: the DRKey pseudo-random function (Eq. (1)),
    the segment-reservation tokens (Eq. (3)), the hop authenticators
    (Eq. (4)), and the per-packet hop validation fields (Eq. (6)). *)

type key
(** AES schedule + subkeys + the digest loop's working blocks. Because
    the working blocks are part of the key, span-based digests are
    allocation-free — and a [key] must not be shared across domains. *)

val of_secret : bytes -> key
(** Derive the CMAC subkeys from a 16-byte secret. *)

val of_aes_key : Aes.key -> key

val rekey : key -> bytes -> off:int -> unit
(** [rekey k secret ~off] re-keys [k] in place with the 16-byte secret
    at [secret+off], recomputing the AES schedule and both subkeys into
    the existing buffers with zero allocation. *)

val mac_size : int
(** 16 bytes. *)

val digest : key -> bytes -> bytes
(** The full 16-byte CMAC of a message of any length. *)

val digest_trunc : key -> bytes -> len:int -> bytes
(** First [len] (1–16) bytes of the CMAC; Colibri truncates hop
    validation fields to ℓ_hvf = 4 bytes. *)

val digest_into : key -> bytes -> off:int -> len:int -> dst:bytes -> dst_off:int -> unit
(** [digest_into k msg ~off ~len ~dst ~dst_off] writes the 16-byte CMAC
    of the span [msg+off, msg+off+len) into [dst+dst_off] without
    allocating. *)

val digest_trunc_into :
  key -> bytes -> off:int -> len:int -> dst:bytes -> dst_off:int -> tag_len:int -> unit
(** {!digest_into} truncated to the first [tag_len] (1–16) bytes. *)

val verify : key -> bytes -> tag:bytes -> bool
(** Constant-time comparison against a (possibly truncated) tag. *)

val verify_at :
  key -> bytes -> off:int -> len:int -> tag:bytes -> tag_off:int -> tag_len:int -> bool
(** Constant-time comparison of the first [tag_len] bytes of the CMAC of
    the span [msg+off, msg+off+len) against the bytes at [tag+tag_off],
    without allocating. *)
