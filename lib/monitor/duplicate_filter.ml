(** In-network replay suppression (§2.3, [32]).

    An on-path adversary can capture an authenticated Colibri packet
    and replay it to overuse the reservation and frame the honest
    source. The duplicate filter discards copies of already-seen
    packets, identified by their unique (SrcAS, ResId, ExpT, Ts) tuple
    (§4.3), with bounded memory: two alternating Bloom filters cover a
    sliding window of [2 × window] seconds — enough because a packet
    older than the maximum clock skew plus network delay is rejected by
    the freshness check before it ever reaches this filter.

    False positives of the Bloom filter drop a legitimate packet
    (bounded by [fp_rate]); false negatives never occur within the
    window, so replays inside it are always caught. *)

type t = {
  bits : int; (* size of each filter, bits *)
  hashes : int;
  window : float; (* seconds covered by one filter generation *)
  mutable current : Bytes.t;
  mutable previous : Bytes.t;
  mutable rotated_at : float;
  mutable inserted : int; (* into current generation *)
}

let bit_get b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let j = i lsr 3 in
  Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lor (1 lsl (i land 7))))

(** [create ~expected ~fp_rate ~window ~now] sizes the filters for
    [expected] packets per [window] seconds at false-positive rate
    [fp_rate]. *)
let create ~(expected : int) ~(fp_rate : float) ~(window : float) ~(now : float) : t =
  if expected <= 0 || fp_rate <= 0. || fp_rate >= 1. || window <= 0. then
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    invalid_arg "Duplicate_filter.create";
  let ln2 = Float.log 2. in
  let bits =
    int_of_float
      (Float.ceil (-.float_of_int expected *. Float.log fp_rate /. (ln2 *. ln2)))
  in
  let bits = max 64 ((bits + 7) / 8 * 8) in
  let hashes = max 1 (int_of_float (Float.round (float_of_int bits /. float_of_int expected *. ln2))) in
  {
    bits;
    hashes = min hashes 16;
    window;
    current = Bytes.make (bits / 8) '\000';
    previous = Bytes.make (bits / 8) '\000';
    rotated_at = now;
    inserted = 0;
  }

let maybe_rotate (t : t) ~now =
  let elapsed = now -. t.rotated_at in
  if elapsed >= 2. *. t.window then begin
    (* Idle gap of two or more windows: both generations are fully
       stale. Keeping the old [current] as [previous] here would flag a
       legitimate packet sent long after its twin aged out. *)
    Bytes.fill t.current 0 (Bytes.length t.current) '\000';
    Bytes.fill t.previous 0 (Bytes.length t.previous) '\000';
    t.rotated_at <- now;
    t.inserted <- 0
  end
  else if elapsed >= t.window then begin
    (* The old [previous] ages out entirely; [current] becomes the
       history for the next window. *)
    let old = t.previous in
    Bytes.fill old 0 (Bytes.length old) '\000';
    t.previous <- t.current;
    t.current <- old;
    t.rotated_at <- now;
    t.inserted <- 0
  end

(* Double hashing: h_i = h1 + i*h2, standard Bloom technique. The
   seeded polymorphic hash is intentional here: Bloom indexing needs a
   fast non-cryptographic spread, not authentication — a collision only
   costs a bounded false-positive drop, never a forged acceptance. *)
let h1_of (key : int) =
  (* lint: allow poly-hash *)
  (Hashtbl.hash (key, 0x9e3779b9) [@colibri.allow "d3"])

let h2_of (key : int) =
  (* lint: allow poly-hash *)
  ((Hashtbl.hash (key, 0x85ebca6b) [@colibri.allow "d3"]) lor 1) land max_int

(* [land max_int], not [abs]: [abs min_int] is [min_int], so an
   overflowing sum would produce a negative [mod] and an out-of-bounds
   bit index. Masking the sign bit is total. *)
let probe (t : t) ~(h1 : int) ~(h2 : int) (i : int) : int =
  (h1 + (i * h2)) land max_int mod t.bits

(* Probe loops are top-level recursive functions, not closures over an
   index array: this runs per packet on the monitored wire path and
   must not allocate. *)
let rec all_set (t : t) (field : Bytes.t) ~h1 ~h2 (i : int) : bool =
  i >= t.hashes || (bit_get field (probe t ~h1 ~h2 i) && all_set t field ~h1 ~h2 (i + 1))

let rec set_all (t : t) ~h1 ~h2 (i : int) : unit =
  if i < t.hashes then begin
    bit_set t.current (probe t ~h1 ~h2 i);
    set_all t ~h1 ~h2 (i + 1)
  end

(** [check_and_insert t ~now key] returns [true] when [key] is fresh
    (first sighting in the window) and records it; [false] flags a
    duplicate to be discarded. *)
let check_and_insert (t : t) ~(now : float) (key : int) : bool =
  maybe_rotate t ~now;
  let h1 = h1_of key and h2 = h2_of key in
  let in_current = all_set t t.current ~h1 ~h2 0 in
  let in_previous = all_set t t.previous ~h1 ~h2 0 in
  if in_current || in_previous then false
  else begin
    set_all t ~h1 ~h2 0;
    t.inserted <- t.inserted + 1;
    true
  end

let memory_bytes (t : t) = 2 * (t.bits / 8)
let inserted_in_window (t : t) = t.inserted

(* Snapshot-time occupancy (observation-only, never on the per-packet
   path): population count over one filter generation. *)
let popcount_bytes (b : Bytes.t) : int =
  let n = ref 0 in
  for i = 0 to Bytes.length b - 1 do
    let c = ref (Char.code (Bytes.get b i)) in
    while !c <> 0 do
      c := !c land (!c - 1);
      incr n
    done
  done;
  !n

let bits_set (t : t) = popcount_bytes t.current + popcount_bytes t.previous

let fill_ratio (t : t) =
  float_of_int (popcount_bytes t.current) /. float_of_int t.bits
