(** Probabilistic overuse-flow detector (§4.8, LOFT-style [44, 64]).

    Transit and transfer ASes see far too many EERs for per-flow state,
    so overuse detection runs on a count-min sketch with a fixed memory
    footprint. Per packet, the OFD receives the flow label
    [(SrcAS, ResId)] and the {e normalized packet size}

    {v normalized = packet size in bits / reservation bandwidth v}

    i.e. the number of seconds of reservation time the packet consumes.
    Packets of all versions of an EER share a flow label, which makes a
    sender using multiple versions accountable for the {e maximum}
    bandwidth across versions, not the sum (§4.8). Over a measurement
    window of [window] seconds, a conforming flow accumulates at most
    [window] (plus burst slack) normalized usage; flows whose sketch
    estimate exceeds [threshold × window] are reported as suspects.

    The sketch never under-estimates, so within a window there are no
    false negatives for flows exceeding the threshold; hash collisions
    can cause false positives — which is why the paper escalates
    suspects to exact, deterministic monitoring rather than punishing
    them directly. *)

open Colibri_types

type t = {
  width : int;
  depth : int;
  window : float; (* seconds per measurement window *)
  threshold : float; (* multiple of the fair share that flags a suspect *)
  rows : float array array; (* depth × width counters, normalized seconds *)
  seeds : int array;
  mutable window_start : float;
  mutable suspects : unit Ids.Res_key_tbl.t; (* flagged in current window *)
  mutable observed_packets : int;
}

let create ?(width = 4096) ?(depth = 4) ~(window : float) ~(threshold : float)
    ~(now : float) () : t =
  if width <= 0 || depth <= 0 || window <= 0. || threshold <= 0. then
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    invalid_arg "Ofd.create";
  {
    width;
    depth;
    window;
    threshold;
    rows = Array.make_matrix depth width 0.;
    seeds = Array.init depth (fun i -> 0x9e3779b9 + (i * 0x61c88647));
    window_start = now;
    suspects = Ids.Res_key_tbl.create 16;
    observed_packets = 0;
  }

let maybe_rotate (t : t) ~now =
  if now -. t.window_start >= t.window then begin
    (* A [for] loop, not [Array.iter f]: rotation is reached from every
       [observe], and the closure for [f] would allocate each call. *)
    for r = 0 to Array.length t.rows - 1 do
      Array.fill t.rows.(r) 0 t.width 0.
    done;
    Ids.Res_key_tbl.reset t.suspects;
    t.window_start <- now;
    t.observed_packets <- 0
  end

(* The seeded polymorphic hash is intentional here: count-min sketch
   indexing needs a fast non-cryptographic spread, not authentication —
   a collision only inflates an estimate (a false suspect escalated to
   exact monitoring), never hides overuse. *)
let slot (t : t) (key : Ids.res_key) (row : int) =
  (* lint: allow poly-hash *)
  (Hashtbl.hash (key.src_as.isd, key.src_as.num, key.res_id, t.seeds.(row))
  [@colibri.allow "d3"])
  land max_int mod t.width

(** Current sketch estimate (normalized seconds in this window) for a
    flow: the minimum across rows, the classic count-min bound. *)
let estimate (t : t) (key : Ids.res_key) : float =
  let est = ref Float.max_float in
  for row = 0 to t.depth - 1 do
    est := Float.min !est t.rows.(row).(slot t key row)
  done;
  !est

(** [observe t ~now ~key ~normalized] accounts one packet and reports
    whether the flow's estimated usage now exceeds the overuse
    threshold. A flow is reported as suspect at most once per window. *)
let observe (t : t) ~(now : float) ~(key : Ids.res_key) ~(normalized : float) :
    [ `Ok | `Suspect ] =
  maybe_rotate t ~now;
  (* Per-packet path: must not raise. A negative normalized size cannot
     come from a well-formed packet (sizes and reserved bandwidths are
     positive); clamp defensively instead of trusting the caller. *)
  let normalized = Float.max 0. normalized in
  t.observed_packets <- t.observed_packets + 1;
  for row = 0 to t.depth - 1 do
    let i = slot t key row in
    t.rows.(row).(i) <- t.rows.(row).(i) +. normalized
  done;
  if
    estimate t key > t.threshold *. t.window
    && not (Ids.Res_key_tbl.mem t.suspects key)
  then begin
    Ids.Res_key_tbl.replace t.suspects key ();
    `Suspect
  end
  else `Ok

let suspects (t : t) : Ids.res_key list =
  Ids.Res_key_tbl.fold (fun k () acc -> k :: acc) t.suspects []

let memory_bytes (t : t) = t.depth * t.width * 8
let observed_packets (t : t) = t.observed_packets
let window (t : t) = t.window
let threshold (t : t) = t.threshold

(* Snapshot-time saturation probe (observation-only): the largest cell
   of the sketch. A max cell near [threshold × window] means hash
   collisions alone can start flagging false suspects. *)
let max_cell (t : t) : float =
  let m = ref 0. in
  for row = 0 to t.depth - 1 do
    for i = 0 to t.width - 1 do
      if t.rows.(row).(i) > !m then m := t.rows.(row).(i)
    done
  done;
  !m
