(** In-network replay suppression (§2.3, [32]).

    Discards copies of already-seen packets — identified by their
    unique (SrcAS, ResId, ExpT, Ts) tuple (§4.3) — with bounded
    memory: two alternating Bloom filters cover a sliding window of
    [2 × window] seconds, enough because older packets fail the
    router's freshness check anyway. False positives drop a legitimate
    packet (bounded by [fp_rate]); replays inside the window are
    always caught. *)

type t

val create : expected:int -> fp_rate:float -> window:float -> now:float -> t
(** Size the filters for [expected] packets per [window] seconds at
    false-positive rate [fp_rate]. *)

val check_and_insert : t -> now:float -> int -> bool
(** [true] when the key is fresh (first sighting in the window), which
    also records it; [false] flags a duplicate to be discarded. *)

val memory_bytes : t -> int
val inserted_in_window : t -> int

val bits_set : t -> int
(** Bloom occupancy across both generations — the telemetry gauge the
    router exports. Observation-only: never mutates the filter. *)

val fill_ratio : t -> float
(** Fraction of the current generation's bits that are set; the
    false-positive rate grows as this approaches the design point. *)
