(** Token-bucket rate limiter (§4.8).

    The deterministic monitor at the Colibri gateway tracks each EER
    with a token bucket: it "only needs to keep a time stamp and a
    counter in memory for each flow" while permitting short traffic
    spikes up to the burst allowance. Rates are in bits per second,
    packet sizes in bytes (the normalization to bits happens here). *)

open Colibri_types

type t = {
  mutable rate : Bandwidth.t; (* refill rate, bits per second *)
  mutable burst : float; (* bucket capacity, bits *)
  mutable tokens : float; (* current fill, bits *)
  mutable last : Timebase.t; (* last refill time *)
}

(** [create ~rate ~burst ~now] makes a full bucket. [burst] is the
    burst allowance in {e seconds at rate}: the bucket holds
    [rate * burst] bits. A typical value is 0.05–0.2 s. *)
let create ~(rate : Bandwidth.t) ~(burst : float) ~(now : Timebase.t) : t =
  (* Construction-time validation; reached from the router only when a
     flow's bucket is first created, with a configured (positive)
     rate — never per packet. *)
  if not (Bandwidth.is_positive rate) then
    (* lint: allow hot-path-exn *)
    invalid_arg "Token_bucket.create: rate <= 0" [@colibri.allow "d2"];
  (* lint: allow hot-path-exn *)
  if burst <= 0. then invalid_arg "Token_bucket.create: burst <= 0" [@colibri.allow "d2"];
  let cap = Bandwidth.to_bps rate *. burst in
  { rate; burst = cap; tokens = cap; last = now }

let refill (t : t) ~(now : Timebase.t) =
  let dt = Float.max 0. (Timebase.diff now t.last) in
  t.tokens <- Float.min t.burst (t.tokens +. (Bandwidth.to_bps t.rate *. dt));
  t.last <- now

(** [admit t ~now ~bytes] consumes [8*bytes] tokens if available;
    [false] means the packet exceeds the reservation and must be
    dropped. *)
let admit (t : t) ~(now : Timebase.t) ~(bytes : int) : bool =
  refill t ~now;
  let need = 8. *. float_of_int bytes in
  if t.tokens >= need then begin
    t.tokens <- t.tokens -. need;
    true
  end
  else false

(** Update the rate, e.g. after a renewal changed the reservation
    bandwidth. The burst allowance keeps its duration. *)
let set_rate (t : t) ~(rate : Bandwidth.t) ~(now : Timebase.t) =
  refill t ~now;
  let duration = t.burst /. Bandwidth.to_bps t.rate in
  t.rate <- rate;
  t.burst <- Bandwidth.to_bps rate *. duration;
  t.tokens <- Float.min t.tokens t.burst

let rate (t : t) = t.rate
let capacity_bits (t : t) = t.burst

(* Observation-only: computes the would-be fill without committing the
   refill. The mutating variant let a monitor sampling at a future
   [now] advance [last], so a subsequent [admit] at an earlier time saw
   tokens it had not yet earned — an observability read must not change
   admission behavior. *)
let available_bits (t : t) ~now =
  let dt = Float.max 0. (Timebase.diff now t.last) in
  Float.min t.burst (t.tokens +. (Bandwidth.to_bps t.rate *. dt))

(** Check the bucket's state invariants: positive rate and capacity, a
    fill within [0, capacity], and no NaN leaking into the counters the
    per-flow monitor depends on (§4.8). [[]] means consistent. *)
let audit (t : t) : string list =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let rate_bps = Bandwidth.to_bps t.rate in
  if not (Bandwidth.is_positive t.rate) then err "rate %.6g <= 0" rate_bps;
  if not (t.burst > 0.) then err "burst capacity %.6g <= 0" t.burst;
  if Float.is_nan t.tokens then err "token count is NaN";
  if t.tokens < -1e-9 then err "token count %.6g < 0" t.tokens;
  if t.tokens > t.burst +. 1e-6 *. Float.max 1. t.burst then
    err "token count %.6g exceeds capacity %.6g" t.tokens t.burst;
  if Float.is_nan t.last || Float.is_nan t.burst then err "non-finite refill state";
  !errs

(** Deliberately overfill the bucket so tests can verify that {!audit}
    detects corruption. Never call outside tests. *)
let corrupt_for_test (t : t) = t.tokens <- t.burst +. (2. *. Float.max 1. t.burst)
