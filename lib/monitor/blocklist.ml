(** Blocklist of misbehaving source ASes (§4.8, "Policing").

    When overuse of a reservation is confirmed, the detecting AS blocks
    further traffic over reservations from the offending source AS and
    reports it to its CServ. The paper notes the list stays very short
    ("only a tiny share of the 70 000 ASes is expected to misbehave"),
    so a plain hash set suffices; entries optionally expire so that a
    penalized AS can be re-admitted after the penalty period. *)

open Colibri_types

type t = {
  entries : float option Ids.Asn_tbl.t; (* AS → expiry time (None = permanent) *)
  clock : Timebase.clock;
}

let create ~clock () = { entries = Ids.Asn_tbl.create 16; clock }

(** [block t asn ~duration] blocks [asn]; [duration = None] blocks it
    until {!unblock}. Re-blocking extends/overwrites the entry. *)
let block (t : t) (asn : Ids.asn) ~(duration : float option) =
  (* A match, not [Option.map f]: blocking happens on the enforcement
     path out of [Router.police], and [f]'s closure would allocate. *)
  let expiry = match duration with None -> None | Some d -> Some (t.clock () +. d) in
  Ids.Asn_tbl.replace t.entries asn expiry

let unblock (t : t) (asn : Ids.asn) = Ids.Asn_tbl.remove t.entries asn

let is_blocked (t : t) (asn : Ids.asn) : bool =
  match Ids.Asn_tbl.find_opt t.entries asn with
  | None -> false
  | Some None -> true
  | Some (Some expiry) ->
      if t.clock () < expiry then true
      else begin
        Ids.Asn_tbl.remove t.entries asn;
        false
      end

let size (t : t) = Ids.Asn_tbl.length t.entries

let blocked_ases (t : t) : Ids.asn list =
  Ids.Asn_tbl.fold (fun a _ acc -> a :: acc) t.entries []
