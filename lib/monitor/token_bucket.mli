(** Token-bucket rate limiter (§4.8).

    The deterministic monitor at the Colibri gateway tracks each EER
    with a token bucket — a timestamp and a counter per flow — while
    permitting short traffic spikes up to the burst allowance. Rates
    are in bits per second, packet sizes in bytes. *)

open Colibri_types

type t

val create : rate:Bandwidth.t -> burst:float -> now:Timebase.t -> t
(** A full bucket. [burst] is the allowance in {e seconds at rate}:
    the bucket holds [rate × burst] bits. Typical: 0.05–0.2 s. *)

val admit : t -> now:Timebase.t -> bytes:int -> bool
(** Consume [8·bytes] tokens if available; [false] means the packet
    exceeds the reservation and must be dropped. *)

val set_rate : t -> rate:Bandwidth.t -> now:Timebase.t -> unit
(** Update the rate (e.g. after a renewal changed the reservation
    bandwidth); the burst allowance keeps its duration. *)

val rate : t -> Bandwidth.t

val capacity_bits : t -> float
(** The bucket's capacity in bits ([rate × burst] at creation time) —
    the denominator for a fill-ratio gauge. *)

val available_bits : t -> now:Timebase.t -> float
(** Tokens that {e would} be available at [now]. Observation-only: the
    bucket is not refilled, so sampling (even with a skewed clock)
    never changes what a later {!admit} decides. *)

val audit : t -> string list
(** Check the bucket's state invariants: positive rate and capacity, a
    fill within [0, capacity], and no NaN in the counters the per-flow
    monitor depends on (§4.8). [[]] means consistent. *)

val corrupt_for_test : t -> unit
(** Deliberately overfill the bucket so tests can verify that {!audit}
    detects corruption. Never call outside tests. *)
