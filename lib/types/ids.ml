(** Identifiers for isolation domains, autonomous systems, interfaces,
    hosts, and reservations.

    Identifiers follow the SCION conventions described in §2.2 of the
    paper: ASes are grouped into isolation domains (ISDs); inter-domain
    connections are identified by per-AS interface numbers that are
    unique within the AS; the pair [(source AS, reservation id)]
    uniquely identifies every reservation globally (§4.3). *)

type isd = int
(** Isolation-domain number. Strictly positive in valid topologies. *)

type asn = { isd : isd; num : int }
(** A globally unique AS identifier: ISD number plus AS number. *)

type iface = int
(** Interface identifier, unique within its AS. Interface [0] is
    reserved to denote "local" (traffic originating at or destined to
    this AS), matching SCION's convention for path extremities. *)

type host = { addr : int }
(** End-host address, unique inside its AS. *)

type res_id = int
(** Per-source-AS reservation number; the CServ allocates these
    monotonically (§4.3). *)

type res_key = { src_as : asn; res_id : res_id }
(** Globally unique reservation identifier: [(SrcAS, ResId)]. *)

let asn ~isd ~num = { isd; num }
let host addr = { addr }

let local_iface : iface = 0

let compare_asn (a : asn) (b : asn) =
  match Int.compare a.isd b.isd with 0 -> Int.compare a.num b.num | c -> c

let equal_asn a b = compare_asn a b = 0

let compare_res_key (a : res_key) (b : res_key) =
  match compare_asn a.src_as b.src_as with
  | 0 -> Int.compare a.res_id b.res_id
  | c -> c

let equal_res_key a b = compare_res_key a b = 0

(* FNV-1a-style mixing over the integer components: the hash primitive
   for the keyed tables below, and the single place the lint rule
   [poly-hash] funnels every composite-key hash through. *)
let hash_mix (h : int) (k : int) : int =
  let h = (h lxor (k land 0xffff)) * 0x01000193 in
  let h = (h lxor ((k lsr 16) land 0xffff)) * 0x01000193 in
  (h lxor (k lsr 32)) * 0x01000193

let hash_fold ints = List.fold_left hash_mix 0x811c9dc5 ints land max_int

let hash_iface (i : iface) = hash_fold [ i ]

(* [hash_asn]/[hash_res_key] keep the seed implementation (structural
   hash of the integer components — this module is the one place the
   lint rule permits it): long-standing simulation traces depend on
   the iteration order of [Asn_tbl]/[Res_key_tbl]. *)
let hash_asn (a : asn) = (Hashtbl.hash (a.isd, a.num) [@colibri.allow "d3"])

let hash_res_key (k : res_key) =
  (Hashtbl.hash (k.src_as.isd, k.src_as.num, k.res_id) [@colibri.allow "d3"])

let pp_asn ppf (a : asn) = Fmt.pf ppf "%d-%d" a.isd a.num
let pp_host ppf (h : host) = Fmt.pf ppf "h%d" h.addr
let pp_res_key ppf (k : res_key) = Fmt.pf ppf "%a#%d" pp_asn k.src_as k.res_id

(** Encode an AS identifier to 8 bytes (big-endian ISD ‖ AS number),
    used as PRF input by DRKey and in packet headers. *)
let asn_to_bytes (a : asn) =
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 (Int32.of_int a.isd);
  Bytes.set_int32_be b 4 (Int32.of_int a.num);
  b

let asn_of_bytes b ~off =
  {
    isd = Int32.to_int (Bytes.get_int32_be b off);
    num = Int32.to_int (Bytes.get_int32_be b (off + 4));
  }

module Asn_map = Map.Make (struct
  type t = asn

  let compare = compare_asn
end)

module Asn_set = Set.Make (struct
  type t = asn

  let compare = compare_asn
end)

module Res_key_map = Map.Make (struct
  type t = res_key

  let compare = compare_res_key
end)

module Asn_tbl = Hashtbl.Make (struct
  type t = asn

  let equal = equal_asn
  let hash = hash_asn
end)

module Res_key_tbl = Hashtbl.Make (struct
  type t = res_key

  let equal = equal_res_key
  let hash = hash_res_key
end)

(* Keyed hash tables for every composite key used on the admission and
   data-plane hot paths. The lint rule [poly-hash] forbids polymorphic
   [Hashtbl.t] over identifier types outside this module, so each key
   shape gets a functor instance here. *)

module Iface_tbl = Hashtbl.Make (struct
  type t = iface

  let equal (a : iface) (b : iface) = Int.equal a b
  let hash = hash_iface
end)

module Iface_pair_tbl = Hashtbl.Make (struct
  type t = iface * iface

  let equal (a1, a2) (b1, b2) = Int.equal a1 b1 && Int.equal a2 b2
  let hash (i, j) = hash_fold [ i; j ]
end)

module Src_egress_tbl = Hashtbl.Make (struct
  type t = asn * iface

  let equal (a, i) (b, j) = equal_asn a b && Int.equal i j
  let hash ((a, i) : t) = hash_fold [ a.isd; a.num; i ]
end)

module Res_ver_tbl = Hashtbl.Make (struct
  type t = res_key * int

  let equal (k1, v1) (k2, v2) = equal_res_key k1 k2 && Int.equal v1 v2
  let hash ((k, v) : t) = hash_fold [ k.src_as.isd; k.src_as.num; k.res_id; v ]
end)

module Res_pair_tbl = Hashtbl.Make (struct
  type t = res_key * res_key

  let equal (a1, a2) (b1, b2) = equal_res_key a1 b1 && equal_res_key a2 b2

  let hash ((a, b) : t) =
    hash_fold
      [ a.src_as.isd; a.src_as.num; a.res_id; b.src_as.isd; b.src_as.num; b.res_id ]
end)

module Asn_pair_tbl = Hashtbl.Make (struct
  type t = asn * asn

  let equal (a1, a2) (b1, b2) = equal_asn a1 b1 && equal_asn a2 b2
  let hash ((a, b) : t) = hash_fold [ a.isd; a.num; b.isd; b.num ]
end)

(* Time-sliced ledger keys of the flyover admission backend: a hop's
   egress interface crossed with a slice index, optionally per source
   AS (Backends.Flyover, DESIGN.md §12). *)
module Iface_slice_tbl = Hashtbl.Make (struct
  type t = iface * int

  let equal ((i1, s1) : t) (i2, s2) = Int.equal i1 i2 && Int.equal s1 s2
  let hash ((i, s) : t) = hash_fold [ i; s ]
end)

module Src_slice_tbl = Hashtbl.Make (struct
  type t = asn * iface * int

  let equal ((a, i1, s1) : t) (b, i2, s2) =
    equal_asn a b && Int.equal i1 i2 && Int.equal s1 s2

  let hash ((a, i, s) : t) = hash_fold [ a.isd; a.num; i; s ]
end)
