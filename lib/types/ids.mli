(** Identifiers for isolation domains, autonomous systems, interfaces,
    hosts, and reservations, following the SCION conventions of §2.2:
    ASes are grouped into ISDs; inter-domain connections are identified
    by per-AS interface numbers; the pair [(source AS, reservation id)]
    uniquely identifies every reservation globally (§4.3). *)

type isd = int
(** Isolation-domain number. *)

type asn = { isd : isd; num : int }
(** A globally unique AS identifier. *)

type iface = int
(** Interface identifier, unique within its AS; {!local_iface} (0)
    denotes traffic originating at or destined to the AS itself. *)

type host = { addr : int }
(** End-host address, unique inside its AS. *)

type res_id = int
(** Per-source-AS reservation number, allocated monotonically by the
    CServ (§4.3). *)

type res_key = { src_as : asn; res_id : res_id }
(** Globally unique reservation identifier [(SrcAS, ResId)]. *)

val asn : isd:isd -> num:int -> asn
val host : int -> host
val local_iface : iface

val compare_asn : asn -> asn -> int
val equal_asn : asn -> asn -> bool
val compare_res_key : res_key -> res_key -> int
val equal_res_key : res_key -> res_key -> bool
val hash_asn : asn -> int
val hash_res_key : res_key -> int

val hash_iface : iface -> int

val hash_fold : int list -> int
(** FNV-1a-style mixing over integer components — the only hash
    primitive identifier keys may use. Unlike the polymorphic
    [Hashtbl.hash] it is stable across OCaml versions and record
    layouts; every keyed table below is built on it. *)

val pp_asn : asn Fmt.t
val pp_host : host Fmt.t
val pp_res_key : res_key Fmt.t

val asn_to_bytes : asn -> bytes
(** 8-byte big-endian encoding (ISD ‖ AS number), used as PRF input by
    DRKey and in packet headers. *)

val asn_of_bytes : bytes -> off:int -> asn

module Asn_map : Map.S with type key = asn
module Asn_set : Set.S with type elt = asn
module Res_key_map : Map.S with type key = res_key
module Asn_tbl : Hashtbl.S with type key = asn
module Res_key_tbl : Hashtbl.S with type key = res_key

(** Keyed hash tables for the composite keys used on the admission and
    data-plane hot paths. The lint rule [poly-hash] forbids polymorphic
    [Hashtbl.t] over identifier types outside {!Ids}; use these
    instead. *)

module Iface_tbl : Hashtbl.S with type key = iface
module Iface_pair_tbl : Hashtbl.S with type key = iface * iface
module Src_egress_tbl : Hashtbl.S with type key = asn * iface
module Res_ver_tbl : Hashtbl.S with type key = res_key * int
module Res_pair_tbl : Hashtbl.S with type key = res_key * res_key
module Asn_pair_tbl : Hashtbl.S with type key = asn * asn

module Iface_slice_tbl : Hashtbl.S with type key = iface * int
(** (egress interface, slice index) — the flyover backend's per-hop
    time-sliced bandwidth ledger. *)

module Src_slice_tbl : Hashtbl.S with type key = asn * iface * int
(** (source AS, egress interface, slice index) — per-source flyover
    holdings within one slice. *)
