(** Bandwidth quantities.

    Stored as bits per second in a plain [float]; reservations in the
    paper range from fractions of a Gbps to 40 Gbps link capacities, so
    double precision is ample. All arithmetic used by the admission
    algorithm (§4.7) lives here so that units stay consistent. *)

type t = float (* bits per second *)

let zero = 0.
let of_bps x = x
let to_bps x = x
let of_kbps x = x *. 1e3
let of_mbps x = x *. 1e6
let of_gbps x = x *. 1e9
let to_gbps x = x /. 1e9
let to_mbps x = x /. 1e6

let add = ( +. )
let sub a b = Float.max 0. (a -. b)

(* Overflow-safe arithmetic for ledger accumulation (DESIGN.md §13).
   Wire-derived magnitudes reach the Ntube/Flyover accumulators; a
   crafted 2^63-bps demand (or an inf/NaN produced downstream) must
   saturate instead of poisoning a float ledger that every later
   admission reads. [max_bps] (2^62 bps ≈ 4.6 exabit/s) is far above
   any link yet exactly representable and safely convertible to an
   int64 on the wire. *)
let max_bps = 0x1p62

(** Clamp into the representable band [[0, max_bps]]; NaN maps to 0
    (an unparseable demand admits nothing). *)
let clamp x =
  if Float.is_nan x then 0.
  else if Stdlib.( > ) (Float.compare x max_bps) 0 then max_bps
  else if Stdlib.( < ) (Float.compare x 0.) 0 then 0.
  else x

(** [checked_add a b] is [Some (a +. b)] when the sum stays inside
    [[-max_bps, max_bps]] and is a number; [None] on overflow/NaN. *)
let checked_add a b =
  let s = a +. b in
  if Float.is_nan s || Stdlib.( > ) (Float.compare (Float.abs s) max_bps) 0
  then None
  else Some s

(** [saturating_add a b] is [a +. b] saturated to [±max_bps]; a NaN
    sum collapses to 0 — for ledgers, "nothing accounted" beats a
    poisoned accumulator that absorbs every later update. *)
let saturating_add a b =
  let s = a +. b in
  if Float.is_nan s then 0.
  else if Stdlib.( > ) (Float.compare s max_bps) 0 then max_bps
  else if Stdlib.( < ) (Float.compare s (-.max_bps)) 0 then -.max_bps
  else s
let min = Float.min
let max = Float.max
let scale k x = k *. x

(** [div a b] is the ratio [a/b], or [0.] when [b = 0.]; used for the
    proportional-sharing steps of the admission algorithm where an
    all-zero demand must yield an all-zero allocation. *)
let div a b = if b = 0. then 0. else a /. b

let compare = Float.compare
let equal a b = Float.equal a b
let ( <= ) a b = Float.compare a b <= 0
let ( >= ) a b = Float.compare a b >= 0
let ( < ) a b = Float.compare a b < 0
let ( > ) a b = Float.compare a b > 0

(** Tolerant comparison for sums of float bandwidths: [a <=~ b] holds
    when [a] exceeds [b] by at most one part in 10^9 of [b] (absolute
    1e-3 bps floor), absorbing accumulation error in admission sums. *)
let ( <=~ ) a b =
  Stdlib.( <= ) (Float.compare a (b +. Float.max 1e-3 (1e-9 *. Float.abs b))) 0

let is_positive x = Stdlib.( > ) (Float.compare x 0.) 0

let pp ppf x =
  if Float.abs x >= 1e9 then Fmt.pf ppf "%.3f Gbps" (x /. 1e9)
  else if Float.abs x >= 1e6 then Fmt.pf ppf "%.3f Mbps" (x /. 1e6)
  else if Float.abs x >= 1e3 then Fmt.pf ppf "%.3f kbps" (x /. 1e3)
  else Fmt.pf ppf "%.0f bps" x
