(** Time base for the simulated deployment: seconds in a [float],
    read through an injectable {!clock} so simulations stay
    deterministic and clock skew can be modeled. The paper assumes
    ASes are synchronized within ±0.1 s (§2.3). *)

type t = float
(** Seconds since the simulation epoch. *)

type clock = unit -> t

val epoch : t
val seconds : float -> t
val milliseconds : float -> t
val microseconds : float -> t
val to_seconds : t -> float
val add : t -> t -> t
val diff : t -> t -> t
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val max_skew : t
(** ±0.1 s, the synchronization bound assumed by the paper. *)

val pp : t Fmt.t

(** A mutable simulated clock. *)
module Sim_clock : sig
  type time := t
  type t

  val create : ?now:time -> unit -> t
  val now : t -> time
  val clock : t -> clock
  val advance : t -> time -> unit
  val set : t -> time -> unit

  val skewed : t -> time -> clock
  (** A clock reading ahead of this one by a fixed skew — an
      imperfectly synchronized AS. *)
end

(** High-precision packet timestamps (the [Ts] field of Eq. (2a)):
    microsecond ticks relative to the reservation's expiration time;
    the pair (Ts, ExpT) uniquely identifies a packet for a given
    source (§4.3). *)
module Ts : sig
  type t

  val us_of_time : float -> int
  (** Seconds to microsecond ticks, clamped into [[0, 2^52]] (NaN maps
      to 0) — the overflow-safe float->int conversion for wire-derived
      times (DESIGN.md §13, rule w4). *)

  val of_times : exp_time:float -> now:float -> t
  (** Raises [Invalid_argument] if [now] is past [exp_time]. *)

  val to_time : exp_time:float -> t -> float
  val to_int : t -> int
  val of_int : int -> t
  val pp : t Fmt.t
end
