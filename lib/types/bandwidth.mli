(** Bandwidth quantities, stored as bits per second in a [float]. All
    arithmetic used by the admission algorithm (§4.7) lives here so
    units stay consistent. *)

type t = float

val zero : t
val of_bps : float -> t
val to_bps : t -> float
val of_kbps : float -> t
val of_mbps : float -> t
val of_gbps : float -> t
val to_gbps : t -> float
val to_mbps : t -> float

val add : t -> t -> t

val sub : t -> t -> t
(** Floored at zero. *)

val max_bps : float
(** Representable ledger band: 2^62 bps. Wire-derived magnitudes are
    clamped here before they reach an accumulator (DESIGN.md §13). *)

val clamp : t -> t
(** Clamp into [[0, max_bps]]; NaN maps to [zero]. *)

val checked_add : t -> t -> t option
(** [Some] of the sum when it stays inside [[-max_bps, max_bps]] and
    is a number, [None] on overflow or NaN. *)

val saturating_add : t -> t -> t
(** The sum saturated to [±max_bps]; a NaN sum collapses to [zero] so
    one crafted demand cannot poison an accumulator. *)

val min : t -> t -> t
val max : t -> t -> t
val scale : float -> t -> t

val div : t -> t -> float
(** [div a b] is [a/b], or [0.] when [b = 0.] — an all-zero demand
    must yield an all-zero allocation in proportional sharing. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( > ) : t -> t -> bool

val ( <=~ ) : t -> t -> bool
(** Tolerant comparison for float sums: true when the left side
    exceeds the right by at most one part in 10^9 (1e-3 bps floor). *)

val is_positive : t -> bool
val pp : t Fmt.t
