(** AS-level forwarding paths.

    A Colibri path is the list of on-path ASes with their
    ingress–egress interface pairs (Eq. (2b)): for [AS_0 … AS_l] the
    packet enters [AS_i] through interface [In_i] and leaves through
    [Eg_i]. At the source AS the ingress interface is {!Ids.local_iface}
    (0) and at the destination AS the egress interface is 0. *)

type hop = { asn : Ids.asn; ingress : Ids.iface; egress : Ids.iface }

type t = hop list
(** Invariant (checked by {!validate}): non-empty; first hop has
    ingress 0; last hop has egress 0; all intermediate interfaces are
    non-zero. *)

let hop ~asn ~ingress ~egress = { asn; ingress; egress }

let source = function [] -> invalid_arg "Path.source: empty" | h :: _ -> h.asn

let destination path =
  match List.rev path with
  | [] -> invalid_arg "Path.destination: empty"
  | h :: _ -> h.asn

let length = List.length

let ases path = List.map (fun h -> h.asn) path

type error =
  | Empty
  | Bad_source_ingress
  | Bad_destination_egress
  | Zero_transit_iface of Ids.asn
  | Repeated_as of Ids.asn

let pp_error ppf = function
  | Empty -> Fmt.string ppf "empty path"
  | Bad_source_ingress -> Fmt.string ppf "source ingress must be 0"
  | Bad_destination_egress -> Fmt.string ppf "destination egress must be 0"
  | Zero_transit_iface a -> Fmt.pf ppf "zero transit interface at %a" Ids.pp_asn a
  | Repeated_as a -> Fmt.pf ppf "AS %a appears twice" Ids.pp_asn a

(** Structural validation of a path; used on every parsed packet. *)
let validate (path : t) : (unit, error) result =
  match path with
  | [] -> Error Empty
  | first :: _ ->
      let rec check seen = function
        | [] -> Ok ()
        | h :: rest ->
            if List.exists (Ids.equal_asn h.asn) seen then Error (Repeated_as h.asn)
            else
              let transit_ok =
                (* Interior interfaces must be non-zero. *)
                let is_first = List.is_empty seen in
                let is_last = List.is_empty rest in
                (is_first || h.ingress <> Ids.local_iface)
                && (is_last || h.egress <> Ids.local_iface)
              in
              if not transit_ok then Error (Zero_transit_iface h.asn)
              else check (h.asn :: seen) rest
      in
      if first.ingress <> Ids.local_iface then Error Bad_source_ingress
      else
        let last = List.nth path (List.length path - 1) in
        if last.egress <> Ids.local_iface then Error Bad_destination_egress
        else check [] path

(** Reverse a path: swaps source and destination roles and flips every
    ingress/egress pair. Used to send replies along the same segment
    (➌ in Fig. 1a). *)
let reverse (path : t) : t =
  List.rev_map (fun h -> { h with ingress = h.egress; egress = h.ingress }) path

(** [join a b] concatenates two path fragments at a shared AS: the last
    AS of [a] must equal the first AS of [b]; the joint AS keeps [a]'s
    ingress and [b]'s egress. This is how a transfer AS splices two
    segment reservations (§4.1). *)
let join (a : t) (b : t) : t =
  match (List.rev a, b) with
  | last_a :: rev_init_a, first_b :: rest_b when Ids.equal_asn last_a.asn first_b.asn
    ->
      List.rev_append rev_init_a
        ({ asn = last_a.asn; ingress = last_a.ingress; egress = first_b.egress }
        :: rest_b)
  | _ -> invalid_arg "Path.join: fragments do not share an AS"

let equal_hop a b =
  Ids.equal_asn a.asn b.asn && a.ingress = b.ingress && a.egress = b.egress

let equal (a : t) (b : t) = List.length a = List.length b && List.for_all2 equal_hop a b

let pp_hop ppf h =
  Fmt.pf ppf "%a(%d>%d)" Ids.pp_asn h.asn h.ingress h.egress

let pp ppf (path : t) = Fmt.(list ~sep:(any " → ") pp_hop) ppf path

(** 20-byte binary encoding of one hop (8-byte AS ‖ 4-byte In ‖ 4-byte
    Eg ‖ 4 bytes reserved), used in the packet header and in MAC
    inputs. *)
let hop_byte_size = 20

let hop_to_bytes (h : hop) =
  let b = Bytes.create hop_byte_size in
  Bytes.blit (Ids.asn_to_bytes h.asn) 0 b 0 8;
  Bytes.set_int32_be b 8 (Int32.of_int h.ingress);
  Bytes.set_int32_be b 12 (Int32.of_int h.egress);
  Bytes.set_int32_be b 16 0l;
  b

let hop_of_bytes b ~off =
  {
    asn = Ids.asn_of_bytes b ~off;
    ingress = Int32.to_int (Bytes.get_int32_be b (off + 8));
    egress = Int32.to_int (Bytes.get_int32_be b (off + 12));
  }

let to_bytes (path : t) =
  let n = List.length path in
  let b = Bytes.create (n * hop_byte_size) in
  List.iteri (fun i h -> Bytes.blit (hop_to_bytes h) 0 b (i * hop_byte_size) hop_byte_size) path;
  b

let of_bytes b ~off ~count =
  List.init count (fun i -> hop_of_bytes b ~off:(off + (i * hop_byte_size)))
