(** Time base for the simulated deployment.

    The paper assumes ASes are synchronized within ±0.1 s (§2.3). We
    model time as seconds in a [float] and let every component read a
    {!clock}, so tests can drive time deterministically and model clock
    skew between ASes. High-precision packet timestamps (the [Ts]
    header field of Eq. (2a)) are expressed relative to the
    reservation's expiration time in microsecond ticks, mirroring the
    paper's "high-precision timestamp relative to ExpT". *)

type t = float (* seconds since simulation epoch *)

type clock = unit -> t
(** A clock is just a function returning the current time; components
    take a clock rather than reading a global so that simulations stay
    deterministic and skew can be injected. *)

let epoch : t = 0.
let seconds x : t = x
let milliseconds x : t = x /. 1e3
let microseconds x : t = x /. 1e6
let to_seconds (t : t) = t
let add = ( +. )
let diff a b = a -. b
let compare = Float.compare
let ( <= ) a b = Float.compare a b <= 0
let ( < ) a b = Float.compare a b < 0
let ( >= ) a b = Float.compare a b >= 0
let ( > ) a b = Float.compare a b > 0
let min = Float.min
let max = Float.max

(** Maximum clock skew between any two ASes assumed by the paper. *)
let max_skew : t = 0.1

let pp ppf (t : t) = Fmt.pf ppf "%.6fs" t

(** A mutable simulated clock. *)
module Sim_clock = struct
  type nonrec t = { mutable now : t }

  let create ?(now = epoch) () = { now }
  let now c = c.now
  let clock c : clock = fun () -> c.now

  let advance c dt =
    assert (Stdlib.( >= ) (Float.compare dt 0.) 0);
    c.now <- c.now +. dt

  let set c t = c.now <- t

  (** A clock reading [skew] seconds ahead of [c]; used to model
      imperfectly synchronized ASes. *)
  let skewed c skew : clock = fun () -> c.now +. skew
end

(** Packet timestamps: microsecond ticks counting down-from/up-to the
    reservation expiration. The pair (relative tick, ExpT) uniquely
    identifies a packet for a given source (§4.3). *)
module Ts = struct
  type t = int (* microsecond ticks relative to reservation ExpT *)

  (* Largest time distance (seconds) whose microsecond tick still fits
     an int exactly: 2^52 µs ≈ 142 years. Wire-derived expirations
     beyond it saturate instead of hitting [int_of_float]'s
     unspecified overflow behavior (wiretaint rule w4). *)
  let max_range_s = 0x1p52 /. 1e6

  (** [us_of_time s] is [s] in microsecond ticks, clamped into
      [[0, 2^52]]; NaN maps to 0. The safe float->int conversion for
      wire-derived times. *)
  let us_of_time (s : float) : int =
    if Float.is_nan s then 0
    else int_of_float (Float.round (Float.min max_range_s (Float.max 0. s) *. 1e6))

  (** [of_times ~exp_time ~now] encodes [now] as microseconds before
      [exp_time]. Raises [Invalid_argument] if [now] is after
      [exp_time] (the reservation has expired). *)
  let of_times ~exp_time ~now : t =
    let d = diff exp_time now in
    (* The gateway checks reservation expiry before stamping, so this
       guard only fires on a caller bug, not per packet. *)
    if Stdlib.( < ) (Float.compare d 0.) 0 then
      invalid_arg "Ts.of_times: expired" [@colibri.allow "d2"];
    us_of_time d

  (** Inverse of {!of_times}: absolute send time implied by the tick. *)
  let to_time ~exp_time (ts : t) : float = exp_time -. (float_of_int ts /. 1e6)

  let to_int (ts : t) = ts
  let of_int i : t = i
  let pp ppf (ts : t) = Fmt.pf ppf "ts:%d" ts
end
