(** Reliable request execution over an unreliable control network:
    per-request timeouts on the simulated clock, capped exponential
    backoff with deterministic jitter, and bounded retry budgets.

    The requester-side half of the paper's failure contract: setup
    traffic is lossy (§4.4, §5.3) and orphaned state is cleaned up by
    timeout (§3.3). A request is retransmitted on a capped exponential
    schedule until {!complete} is called for its handle or the budget
    runs out, at which point [on_exhausted] fires so the caller can
    route cleanup through its failure path. *)

type policy = {
  base_timeout : float;  (** seconds before the first retransmit *)
  backoff : float;  (** multiplier per attempt, >= 1 *)
  max_timeout : float;  (** cap on the per-attempt timeout *)
  max_attempts : int;  (** total transmissions, >= 1 *)
  jitter : float;  (** fraction of the timeout added uniformly, [0,1] *)
}

val policy :
  ?base_timeout:float ->
  ?backoff:float ->
  ?max_timeout:float ->
  ?max_attempts:int ->
  ?jitter:float ->
  unit ->
  policy
(** Build a validated policy; raises [Invalid_argument] on nonsense
    (non-positive base, backoff < 1, cap below base, zero budget,
    jitter outside [0,1]). *)

val default_policy : policy
(** 250 ms base, 2× backoff capped at 4 s, 6 attempts, 10% jitter. *)

val timeout_for : policy -> attempt:int -> float
(** Timeout before retransmission number [attempt + 1], excluding
    jitter: [base * backoff^(attempt-1)] capped at [max_timeout]. Pure,
    monotone in [attempt], and capped. *)

type state = Pending | Done | Exhausted

type handle

type t

val create :
  ?policy:policy -> ?seed:int -> ?registry:Obs.Registry.t -> engine:Net.Engine.t ->
  unit -> t
(** All jitter comes from one [Random.State] built from [seed], so a
    fixed seed gives a deterministic retransmission schedule.
    [registry] receives the retry metrics ([retry_*_total] counters,
    attempts/latency histograms). *)

val run : t -> send:(int -> unit) -> on_exhausted:(unit -> unit) -> unit -> handle
(** Start a reliable request. [send attempt] transmits attempt number
    [attempt] (1-based), called from engine context — the first time at
    delay 0, never synchronously, so a same-step reply still finds the
    handle registered. [on_exhausted] fires exactly once if the budget
    of [max_attempts] transmissions runs out without a winning
    {!complete}. *)

val complete : t -> handle -> bool
(** Report a reply. [true] iff this completion won the request —
    callers must apply the outcome only then. Late replies (after
    exhaustion) and duplicates are counted and ignored. *)

val state : handle -> state
val attempts : handle -> int
(** Transmissions so far. *)

val pending : t -> int
(** Handles still [Pending] — zero once every request concluded. *)

val policy_of : t -> policy
