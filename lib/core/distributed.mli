(** Distributed Colibri service (Appendix D).

    An AS in the Internet core may receive so many requests that a
    single CServ machine becomes the bottleneck. The hierarchical
    structure of reservations allows splitting the service into a
    {e coordinator} sub-service for SegReqs (whose admission needs the
    complete view) and per-interface {e ingress}/{e egress}
    sub-services for EEReqs. The load balancer must route all EEReqs
    based on the same underlying SegR to the same sub-service — each
    sub-service's accounting is then self-contained and decisions
    parallelize trivially. Every sub-service holds one instance of the
    same pluggable admission backend (DESIGN.md §12). The test suite
    checks the decomposition's decisions coincide with a monolithic
    service's. *)

open Colibri_types

type t

val create :
  ?backend:Backends.Backend_intf.factory ->
  capacity:(Ids.iface -> Bandwidth.t) ->
  ?share:float ->
  unit ->
  t
(** [backend] selects the admission discipline every sub-service runs
    (default: the N-Tube reference backend, [Backends.All.ntube]). *)

val coordinator : t -> Backends.Backend_intf.instance
(** The coordinator sub-service handling all SegReqs. *)

val admit_seg :
  t ->
  req:Backends.Backend_intf.seg_request ->
  now:Timebase.t ->
  Backends.Backend_intf.decision
(** SegReq admission at the coordinator. Same semantics as
    {!Backends.Backend_intf.admit_seg}. *)

val admit_eer :
  t ->
  key:Ids.res_key ->
  version:int ->
  segrs:(Ids.res_key * Bandwidth.t) list ->
  via_up:(Ids.res_key * Ids.res_key * Bandwidth.t) option ->
  segr_ingress:Ids.iface ->
  demand:Bandwidth.t ->
  exp_time:Timebase.t ->
  now:Timebase.t ->
  Backends.Backend_intf.decision
(** EER admission, dispatched to the sub-service pinned to the first
    underlying SegR (by its ingress interface on first sight). Same
    semantics as {!Backends.Backend_intf.admit_eer}; per-hop backends
    account the reservation against the pinned interface. *)

val ingress_services : t -> (Ids.iface * int) list
(** The ingress sub-services with the number of requests each
    handled. *)

val service_count : t -> int

val audit : t -> string list
(** Audit the whole decomposed service: the coordinator's aggregates,
    every sub-service's aggregates (both via
    {!Backends.Backend_intf.audit}), and the balancer's pinning
    discipline (each pin points at the sub-service registered under
    its interface; dispatch counters match the sub-services' admission
    counters). [[]] means consistent. *)

val corrupt_for_test : t -> unit
(** Deliberately corrupt the coordinator's aggregates so tests can
    verify that {!audit} detects it. Never call outside tests. *)
