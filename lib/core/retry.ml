(** Reliable request execution over an unreliable control network:
    per-request timeouts driven by the simulated clock, capped
    exponential backoff with deterministic jitter, and bounded retry
    budgets.

    The paper assumes request/reply loss is the normal case for setup
    traffic (§4.4: initial SegReqs are best-effort; §5.3: only
    renewals are protected), and that state left behind by lost
    messages is cleaned up by timeout (§3.3). This module is the
    requester-side half of that contract: a request is retransmitted on
    a capped exponential schedule until a reply arrives or the budget
    is exhausted, at which point [on_exhausted] fires so the caller can
    route cleanup through its failure path.

    Correctness notes:

    - Attempt 1 is sent via the engine at delay 0, never synchronously,
      so a reply that completes in the same engine step still finds the
      handle registered.
    - [complete] returns whether this completion {e won}: late replies
      (after exhaustion) and duplicate replies (retransmission made two
      copies arrive) are counted and ignored, so callers apply each
      outcome at most once.
    - All jitter comes from one explicit [Random.State], so a fixed
      seed gives a deterministic retransmission schedule. *)

open Colibri_types

type policy = {
  base_timeout : float; (* seconds before the first retransmit *)
  backoff : float; (* multiplier per attempt, >= 1 *)
  max_timeout : float; (* cap on the per-attempt timeout *)
  max_attempts : int; (* total transmissions, >= 1 *)
  jitter : float; (* fraction of the timeout added uniformly, [0,1] *)
}

let policy ?(base_timeout = 0.25) ?(backoff = 2.0) ?(max_timeout = 4.0)
    ?(max_attempts = 6) ?(jitter = 0.1) () : policy =
  if base_timeout <= 0. then invalid_arg "Retry.policy: base_timeout <= 0";
  if backoff < 1. then invalid_arg "Retry.policy: backoff < 1";
  if max_timeout < base_timeout then
    invalid_arg "Retry.policy: max_timeout < base_timeout";
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts < 1";
  if jitter < 0. || jitter > 1. then invalid_arg "Retry.policy: jitter outside [0,1]";
  { base_timeout; backoff; max_timeout; max_attempts; jitter }

let default_policy = policy ()

(** Timeout before retransmission number [attempt + 1], excluding
    jitter: [base * backoff^(attempt-1)], capped at [max_timeout].
    Pure, monotone in [attempt], and capped — the QCheck targets. *)
let timeout_for (p : policy) ~(attempt : int) : float =
  if attempt < 1 then invalid_arg "Retry.timeout_for: attempt < 1";
  let raw = p.base_timeout *. (p.backoff ** float_of_int (attempt - 1)) in
  Float.min raw p.max_timeout

type metrics = {
  m_requests : Obs.Counter.t;
  m_attempts : Obs.Counter.t;
  m_retries : Obs.Counter.t;
  m_timeouts : Obs.Counter.t;
  m_success : Obs.Counter.t;
  m_exhausted : Obs.Counter.t;
  m_late : Obs.Counter.t;
  m_duplicate : Obs.Counter.t;
  h_attempts : Obs.Histogram.t;
  h_latency : Obs.Histogram.t;
}

type state = Pending | Done | Exhausted

type handle = {
  id : int;
  mutable state : state;
  mutable attempt : int; (* transmissions so far *)
  started_at : Timebase.t;
}

type t = {
  engine : Net.Engine.t;
  policy : policy;
  rng : Random.State.t;
  metrics : metrics;
  mutable live : int; (* handles still Pending *)
  mutable next_id : int;
}

let create ?(policy = default_policy) ?(seed = 0x5E77) ?(registry = Obs.Registry.create ())
    ~(engine : Net.Engine.t) () : t =
  let c = Obs.Registry.counter registry in
  let h = Obs.Registry.histogram registry in
  {
    engine;
    policy;
    rng = Random.State.make [| seed; 0xBAC0FF |];
    metrics =
      {
        m_requests = c "retry_requests_total";
        m_attempts = c "retry_attempts_total";
        m_retries = c "retry_retransmissions_total";
        m_timeouts = c "retry_timeouts_total";
        m_success = c "retry_success_total";
        m_exhausted = c "retry_exhausted_total";
        m_late = c "retry_late_replies_total";
        m_duplicate = c "retry_duplicate_replies_total";
        h_attempts = h "retry_attempts_per_request";
        h_latency = h "retry_request_latency_seconds";
      };
    live = 0;
    next_id = 0;
  }

let pending (t : t) = t.live
let policy_of (t : t) = t.policy

let finish_stats (t : t) (h : handle) =
  t.live <- t.live - 1;
  Obs.Histogram.observe t.metrics.h_attempts (float_of_int h.attempt);
  Obs.Histogram.observe t.metrics.h_latency (Net.Engine.now t.engine -. h.started_at)

(** Start a reliable request. [send attempt] transmits attempt number
    [attempt] (1-based); it will be called from engine context, the
    first time at delay 0. When no [complete] wins before the budget of
    [max_attempts] transmissions runs out, [on_exhausted] fires (also
    from engine context) exactly once. *)
let run (t : t) ~(send : int -> unit) ~(on_exhausted : unit -> unit) () : handle =
  Obs.Counter.incr t.metrics.m_requests;
  let h =
    { id = t.next_id; state = Pending; attempt = 0;
      started_at = Net.Engine.now t.engine }
  in
  t.next_id <- t.next_id + 1;
  t.live <- t.live + 1;
  let rec attempt_round () =
    match h.state with
    | Done | Exhausted -> ()
    | Pending ->
        h.attempt <- h.attempt + 1;
        Obs.Counter.incr t.metrics.m_attempts;
        if h.attempt > 1 then Obs.Counter.incr t.metrics.m_retries;
        let timeout = timeout_for t.policy ~attempt:h.attempt in
        (* Deterministic jitter: one draw per transmission. *)
        let jittered =
          timeout +. (timeout *. t.policy.jitter *. Random.State.float t.rng 1.)
        in
        send h.attempt;
        Net.Engine.schedule t.engine ~delay:jittered (fun () ->
            match h.state with
            | Done | Exhausted -> ()
            | Pending ->
                Obs.Counter.incr t.metrics.m_timeouts;
                if h.attempt >= t.policy.max_attempts then begin
                  h.state <- Exhausted;
                  Obs.Counter.incr t.metrics.m_exhausted;
                  finish_stats t h;
                  on_exhausted ()
                end
                else attempt_round ())
  in
  (* Never send synchronously: a same-step reply must find the handle
     already registered with its caller. *)
  Net.Engine.schedule t.engine ~delay:0. attempt_round;
  h

(** Report a reply for [h]. Returns [true] iff this completion won the
    request — callers must apply the outcome only then. Late replies
    (budget already exhausted) and duplicates are counted and
    ignored. *)
let complete (t : t) (h : handle) : bool =
  match h.state with
  | Pending ->
      h.state <- Done;
      Obs.Counter.incr t.metrics.m_success;
      finish_stats t h;
      true
  | Done ->
      Obs.Counter.incr t.metrics.m_duplicate;
      false
  | Exhausted ->
      Obs.Counter.incr t.metrics.m_late;
      false

let state (h : handle) = h.state
let attempts (h : handle) = h.attempt
