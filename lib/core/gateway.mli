(** The Colibri gateway (§3.2, §4.6): the mandatory exit point for all
    Colibri EER traffic of an AS's end hosts.

    Per outgoing packet the gateway (i) maps the [ResId] to the
    reservation state obtained during setup/renewal — path, ResInfo,
    EERInfo and the hop authenticators σ_i; (ii) performs deterministic
    traffic monitoring with a per-EER token bucket (§4.8), dropping
    packets beyond the reserved rate; (iii) stamps a high-precision
    timestamp and computes the per-hop validation fields of Eq. (6) —
    thereby certifying that the mandatory monitoring was performed and
    the packet is authorized.

    The gateway is the only stateful data-plane component, and its
    state is bounded by the number of EERs {e originating} in its own
    AS — never by transit traffic. *)

open Colibri_types

type t

type drop_reason = Unknown_reservation | Expired | Rate_exceeded

val pp_drop_reason : drop_reason Fmt.t

type stats = {
  mutable sent_pkts : int;
  mutable sent_bytes : int;
  mutable dropped_rate : int;
  mutable dropped_other : int;
}

val create :
  ?burst:float -> ?registry:Obs.Registry.t -> clock:Timebase.clock -> Ids.asn -> t
(** [burst] is the token-bucket burst allowance in seconds at the
    reserved rate (default 0.1). [registry] receives the gateway's
    drop-accounting metrics (DESIGN.md §7); a private registry is
    created when omitted. *)

val register :
  t ->
  eer:Reservation.eer ->
  version:Reservation.version ->
  sigmas:bytes list ->
  (unit, string) result
(** Install or extend an EER after a successful setup or renewal
    (➎ in Fig. 1b): the σ_i of the new version are expanded into CMAC
    keys once, and the token-bucket rate follows the maximum bandwidth
    over valid versions. *)

val register_prepared :
  t ->
  eer:Reservation.eer ->
  version:Reservation.version ->
  sigmas:Hvf.sigma array ->
  (unit, string) result
(** Bulk-load variant of {!register} taking already-expanded σ keys;
    used by benchmarks to preload up to 2^20 reservations (Fig. 5)
    without re-running the CMAC key schedule per entry. *)

val sweep : t -> unit
(** Drop entries whose versions have all lapsed (also happens lazily
    on use). *)

val send :
  t -> res_id:Ids.res_id -> payload_len:int -> (Packet.t * Ids.iface, drop_reason) result
(** Process one packet from an end host: monitor, authorize, emit.
    Returns the finished packet and the egress interface of the first
    hop. The authenticated [PktSize] covers header plus payload, so
    header-only floods remain accountable (§4.8). *)

val send_bytes :
  t -> res_id:Ids.res_id -> payload_len:int -> (Ids.iface, drop_reason) result
(** {!send} without materializing a [Packet.t]: the header is encoded
    straight into the gateway's reusable output buffer and the HVFs
    are computed in place (DESIGN.md §8), producing bytes identical to
    [Packet.to_bytes] of the packet {!send} would have built. On [Ok],
    the wire header is in {!out} for {!out_len} bytes — valid only
    until the next [send_bytes] on this gateway. *)

val out : t -> bytes
(** The reusable output buffer of the last successful {!send_bytes};
    only the first {!out_len} bytes are meaningful. *)

val out_len : t -> int

val reservation_count : t -> int
val stats : t -> stats

val metrics : t -> Obs.Registry.t
(** The gateway's metric registry: [gateway_sent_packets_total],
    [gateway_sent_bytes_total], [gateway_dropped_total{reason=...}]
    (one counter per {!drop_reason}), the [gateway_packet_bytes] size
    histogram, and a [gateway_reservations] occupancy gauge. *)
