(** Shared-nothing sharding of the data plane across cores (§7, Fig. 6).

    The gateway and border router scale almost linearly with cores
    because per-packet processing is a pure function of the packet and
    (for the gateway) of per-ResId state that partitions cleanly:
    "multiple gateways, each handling only a fraction of all
    reservations" (§7.2). A {!Sharded_gateway} splits reservations
    across shards by ResId hash — registration and sending touch
    exactly one shard, so shards never contend; border routers are
    stateless, so {!Sharded_router} is simply independent instances.

    On a multi-core host each shard runs on its own core; the Fig. 6
    bench measures per-shard throughput and reports the shared-nothing
    linear model (see DESIGN.md §3). *)

open Colibri_types

module Sharded_gateway : sig
  type t

  val create : ?burst:float -> clock:Timebase.clock -> shards:int -> Ids.asn -> t
  val shard_count : t -> int
  val shard_of : t -> Ids.res_id -> int
  val shard : t -> int -> Gateway.t

  val register :
    t ->
    eer:Reservation.eer ->
    version:Reservation.version ->
    sigmas:bytes list ->
    (unit, string) result

  val send :
    t -> res_id:Ids.res_id -> payload_len:int ->
    (Packet.t * Ids.iface, Gateway.drop_reason) result

  val send_bytes :
    t -> res_id:Ids.res_id -> payload_len:int ->
    (Gateway.t * Ids.iface, Gateway.drop_reason) result
  (** Zero-copy variant of {!send}: the header is encoded into the
      owning shard's reusable buffer — read it via [Gateway.out] /
      [Gateway.out_len] on the returned shard before that shard's next
      send. *)

  val reservation_count : t -> int

  val balance : t -> int * int
  (** (min, max) reservations per shard — the tests use this to check
      the hash spreads load. *)

  val shard_metrics : t -> int -> Obs.snapshot
  (** One shard's metric snapshot. *)

  val metrics : t -> Obs.snapshot
  (** Aggregate telemetry across shards: counters and histograms sum,
      so the merged snapshot reads like one big gateway. *)
end

module Sharded_router : sig
  type t

  val create :
    ?freshness_window:Timebase.t ->
    ?monitoring:bool ->
    secret:Hvf.as_secret ->
    clock:Timebase.clock ->
    shards:int ->
    Ids.asn ->
    t

  val shard_count : t -> int
  val shard : t -> int -> Router.t

  val process_bytes :
    t -> raw:bytes -> payload_len:int -> (Router.action, Router.drop_reason) result
  (** Dispatch to a shard and run the full fast path. Malformed input
      (including packets too short for the dispatch byte) comes back as
      [Error (Parse_error _)] from the shard's parser — the dispatcher
      itself never raises. *)

  val shard_metrics : t -> int -> Obs.snapshot
  (** One shard's metric snapshot. *)

  val metrics : t -> Obs.snapshot
  (** Aggregate telemetry across shards (counters sum; occupancy
      gauges sum, giving totals over all shards' monitors). *)
end
