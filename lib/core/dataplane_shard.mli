(** Shared-nothing sharding of the data plane across cores (§7, Fig. 6).

    The gateway and border router scale almost linearly with cores
    because per-packet processing is a pure function of the packet and
    (for the gateway) of per-ResId state that partitions cleanly:
    "multiple gateways, each handling only a fraction of all
    reservations" (§7.2). A {!Sharded_gateway} splits reservations
    across shards by ResId hash — registration and sending touch
    exactly one shard, so shards never contend; border routers are
    stateless, so {!Sharded_router} is simply independent instances.

    On a multi-core host each shard runs on its own core; the Fig. 6
    bench measures per-shard throughput and reports the shared-nothing
    linear model (see DESIGN.md §3). *)

open Colibri_types

module Sharded_gateway : sig
  type t

  val create : ?burst:float -> clock:Timebase.clock -> shards:int -> Ids.asn -> t
  val shard_count : t -> int
  val shard_of : t -> Ids.res_id -> int
  val shard : t -> int -> Gateway.t

  val register :
    t ->
    eer:Reservation.eer ->
    version:Reservation.version ->
    sigmas:bytes list ->
    (unit, string) result

  val send :
    t -> res_id:Ids.res_id -> payload_len:int ->
    (Packet.t * Ids.iface, Gateway.drop_reason) result

  val send_bytes :
    t -> res_id:Ids.res_id -> payload_len:int ->
    (Gateway.t * Ids.iface, Gateway.drop_reason) result
  (** Zero-copy variant of {!send}: the header is encoded into the
      owning shard's reusable buffer — read it via [Gateway.out] /
      [Gateway.out_len] on the returned shard before that shard's next
      send. *)

  val reservation_count : t -> int

  val balance : t -> int * int
  (** (min, max) reservations per shard — the tests use this to check
      the hash spreads load. *)

  val shard_metrics : t -> int -> Obs.snapshot
  (** One shard's metric snapshot. *)

  val metrics : t -> Obs.snapshot
  (** Aggregate telemetry across shards: counters and histograms sum,
      so the merged snapshot reads like one big gateway. *)
end

(** True multicore router sharding (DESIGN.md §11): one OCaml 5 domain
    per shard, fed through {!Par.Spsc_ring} job rings with
    buffer-ownership transfer. Written to the domain-ownership
    contract [colibri-domaincheck] verifies (d6–d9): all mutable state
    sits in per-worker records reached by exactly one spawn closure,
    cross-domain traffic moves only through ring endpoints with one
    owning domain each, per-worker telemetry is a private
    {!Par.Par_obs} slot merged at sample time, and the worker loop
    spins instead of blocking. *)
module Parallel_router : sig
  type t

  val create :
    ?freshness_window:Timebase.t ->
    ?monitoring:bool ->
    ?ring_capacity:int ->
    ?batch:int ->
    ?check:bool ->
    ?mono:(unit -> int) ->
    secret:Hvf.as_secret ->
    clock:Timebase.clock ->
    workers:int ->
    Ids.asn ->
    t
  (** Spawn [workers] router domains. Jobs are packet batches of up to
      [batch] buffers (default 64, ROADMAP item 1's 32–64 band), so
      one ring crossing and one acquire/release pair amortize over a
      burst. [ring_capacity] (default 64) bounds the {e jobs} in
      flight per worker (so [ring_capacity * batch] packets);
      [check] (default [true]) keeps the dynamic ring-endpoint
      ownership checker on; [mono] (default [fun () -> 0]) is a
      monotonic-ns clock sampled around each batch to accumulate
      {!worker_busy_ns}. *)

  val worker_count : t -> int

  val batch_size : t -> int
  (** Packets per job as configured at {!create}. *)

  val submit : t -> raw:bytes -> payload_len:int -> bool
  (** Copy the packet into the owning worker's open batch (dispatched
      by content mix), handing the batch to the worker once it holds
      [batch_size] packets. [false] on backpressure (all of that
      worker's jobs in flight). Steady-state allocation-free for
      constant packet sizes. *)

  val submit_batch :
    t -> raws:bytes array -> payload_lens:int array -> pos:int -> len:int -> int
  (** Submit [len] packets from [raws.(pos..)] in one call; returns
      how many were accepted before backpressure stopped the burst. *)

  val flush : t -> unit
  (** Push every part-filled batch to its worker. Call after a burst
      of {!submit}s; {!drain} and {!shutdown} flush implicitly. *)

  val submitted : t -> int
  (** Packets accepted by {!submit} so far (orchestrator-side count). *)

  val pending : t -> int
  (** Packets submitted but not yet processed, including any still in
      open batches (racy-but-monotone). *)

  val processed : t -> int
  (** Packets completed across workers — direct per-worker counter
      reads, allocation-free (monotone, exact after {!shutdown}). *)

  val drain : t -> unit
  (** {!flush}, then spin until [processed t = submitted t]. The wait
      reads plain per-worker counters — no snapshot allocation per
      iteration. *)

  val worker_busy_ns : t -> int -> int
  (** Worker [i]'s accumulated batch-processing time in the units of
      [mono] (0 under the default clock). Exact after {!shutdown}. *)

  val shutdown : t -> unit
  (** {!flush}, stop every worker after it empties its queue, then
      join the domains. Idempotent; after it, {!metrics} is exact. *)

  val worker_metrics : t -> int -> Obs.snapshot
  (** One worker's merged snapshot (its Obs slot + its router). *)

  val metrics : t -> Obs.snapshot
  (** Merge-at-sample across all worker domains: per-worker
      [par_router_{processed,forwarded,dropped}_total] plus each shard
      router's drop accounting. *)
end

module Sharded_router : sig
  type t

  val create :
    ?freshness_window:Timebase.t ->
    ?monitoring:bool ->
    secret:Hvf.as_secret ->
    clock:Timebase.clock ->
    shards:int ->
    Ids.asn ->
    t

  val shard_count : t -> int
  val shard : t -> int -> Router.t

  val process_bytes :
    t -> raw:bytes -> payload_len:int -> (Router.action, Router.drop_reason) result
  (** Dispatch to a shard and run the full fast path. Malformed input
      (including packets too short for the dispatch byte) comes back as
      [Error (Parse_error _)] from the shard's parser — the dispatcher
      itself never raises. *)

  val shard_metrics : t -> int -> Obs.snapshot
  (** One shard's metric snapshot. *)

  val metrics : t -> Obs.snapshot
  (** Aggregate telemetry across shards (counters sum; occupancy
      gauges sum, giving totals over all shards' monitors). *)
end
