(** Hop authenticators and hop validation fields (§4.5, Eqs. (3)–(6)).

    Every on-path AS [i] holds a single secret key [K_i] from which all
    per-packet checks derive — the property that keeps border routers
    stateless:

    - Segment reservations carry a static 4-byte token
      [V_i = MAC_{K_i}(ResInfo ‖ (In_i, Eg_i))[0:4]] (Eq. (3)).
    - End-to-end reservations use a two-step scheme: at setup, AS [i]
      computes the hop authenticator
      [σ_i = MAC_{K_i}(ResInfo ‖ EERInfo ‖ (In_i, Eg_i))] (Eq. (4))
      and returns it to the source AS under AEAD (Eq. (5)); per data
      packet the gateway (and, recomputing σ_i on the fly, the router)
      derives [V_i = MAC_{σ_i}(Ts ‖ PktSize)[0:4]] (Eq. (6)).

    Including [SrcAS ‖ ResId] in the MAC'd ResInfo makes tokens
    globally bound to their reservation, which is why no chaining of
    hop fields is needed to prevent path splicing (§4.5). *)

open Colibri_types

type as_secret = Crypto.Cmac.key
(** [K_i]: the AS-specific secret used for reservation tokens. *)

(** Derive an AS's hop-MAC key from its DRKey secret value, so a
    single per-epoch secret backs both subsystems ("derived on the fly
    from a single AS-specific secret value", §3.4). *)
let as_secret_of_material (material : bytes) : as_secret = Crypto.Cmac.of_secret material

(* MAC input for Eqs. (3) and (4): ResInfo ‖ [EERInfo ‖] In ‖ Eg. *)
let hop_mac_input ~(res_info : Packet.res_info) ~(eer_info : Packet.eer_info option)
    ~(ingress : Ids.iface) ~(egress : Ids.iface) : bytes =
  let eer_len = match eer_info with Some _ -> Packet.eer_info_len | None -> 0 in
  let b = Bytes.create (Packet.res_info_len + eer_len + 8) in
  Bytes.blit (Packet.res_info_to_bytes res_info) 0 b 0 Packet.res_info_len;
  (match eer_info with
  | Some e -> Bytes.blit (Packet.eer_info_to_bytes e) 0 b Packet.res_info_len eer_len
  | None -> ());
  let off = Packet.res_info_len + eer_len in
  Bytes.set_int32_be b off (Int32.of_int ingress);
  Bytes.set_int32_be b (off + 4) (Int32.of_int egress);
  b

(** Eq. (3): the static SegR token, truncated to ℓ_hvf bytes. *)
let seg_token (k : as_secret) ~(res_info : Packet.res_info) ~(hop : Path.hop) : bytes =
  Crypto.Cmac.digest_trunc k
    (hop_mac_input ~res_info ~eer_info:None ~ingress:hop.ingress ~egress:hop.egress)
    ~len:Packet.hvf_len

(** Eq. (4): the full-length hop authenticator σ_i for an EER. *)
let hop_auth (k : as_secret) ~(res_info : Packet.res_info)
    ~(eer_info : Packet.eer_info) ~(hop : Path.hop) : bytes =
  Crypto.Cmac.digest k
    (hop_mac_input ~res_info ~eer_info:(Some eer_info) ~ingress:hop.ingress
       ~egress:hop.egress)

type sigma = Crypto.Cmac.key
(** A hop authenticator prepared for per-packet use: σ_i expanded into
    a CMAC key. The gateway does this once per reservation; the router
    re-derives it per packet. *)

let sigma_of_bytes (s : bytes) : sigma = Crypto.Cmac.of_secret s

(** Eq. (6): the per-packet hop validation field
    [MAC_{σ_i}(Ts ‖ PktSize)[0:ℓ_hvf]]. *)
let eer_hvf (s : sigma) ~(ts : Timebase.Ts.t) ~(pkt_size : int) : bytes =
  let b = Bytes.create 12 in
  Bytes.set_int64_be b 0 (Int64.of_int (Timebase.Ts.to_int ts));
  Bytes.set_int32_be b 8 (Int32.of_int pkt_size);
  Crypto.Cmac.digest_trunc s b ~len:Packet.hvf_len

(** Constant-time equality for ℓ_hvf-byte fields. *)
let equal_hvf (a : bytes) (b : bytes) : bool =
  Bytes.length a = Packet.hvf_len
  && Bytes.length b = Packet.hvf_len
  &&
  let acc = ref 0 in
  for i = 0 to Packet.hvf_len - 1 do
    acc := !acc lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
  done;
  !acc = 0

(* -- Allocation-free variants over a Packet.View (DESIGN.md §8) -- *)

type scratch = {
  mac_input : bytes;
      (* 48 bytes: ResInfo ‖ [EERInfo ‖] In ‖ Eg, the Eq. (3)/(4) input *)
  ts_size : bytes; (* 12 bytes: Ts ‖ PktSize, the Eq. (6) input *)
  tag : bytes; (* 16 bytes: σ_i, then recomputed tokens/HVFs *)
  sigma : sigma; (* re-keyed in place with σ_i per packet *)
}
(** Per-consumer working buffers for the [_into] pipeline. A router
    owns exactly one; nothing in here is secret state beyond the
    transient values of the packet in flight. *)

let scratch () : scratch =
  {
    mac_input = Bytes.create (Packet.res_info_len + Packet.eer_info_len + 8);
    ts_size = Bytes.create 12;
    tag = Bytes.create Crypto.Cmac.mac_size;
    sigma = Crypto.Cmac.of_secret (Bytes.make 16 '\000');
  }

(* Assemble the Eq. (3)/(4) MAC input from the wire: ResInfo and
   EERInfo are contiguous in the packet, and the In ‖ Eg tail is bytes
   8..16 of the hop entry, already in canonical encoding — two blits,
   no per-field re-encoding. Returns the input length. *)
(* hot-path *)
let fill_hop_mac_input (scr : scratch) (v : Packet.View.t) ~(hop : int)
    ~(with_eer : bool) : int =
  let b = Packet.View.buffer v in
  let n =
    if with_eer then Packet.res_info_len + Packet.eer_info_len
    else Packet.res_info_len
  in
  Bytes.blit b (Packet.View.res_off v) scr.mac_input 0 n;
  Bytes.blit b (Packet.View.hop_off v hop + 8) scr.mac_input n 8;
  n + 8

(** Eq. (3) into caller scratch: write the ℓ_hvf-byte SegR token for
    hop [hop] of the viewed packet at [dst+dst_off]. *)
(* hot-path *)
let seg_token_into (k : as_secret) (scr : scratch) (v : Packet.View.t)
    ~(hop : int) ~(dst : bytes) ~(dst_off : int) =
  let len = fill_hop_mac_input scr v ~hop ~with_eer:false in
  Crypto.Cmac.digest_trunc_into k scr.mac_input ~off:0 ~len ~dst ~dst_off
    ~tag_len:Packet.hvf_len

(** Eq. (4) into caller scratch: write the 16-byte hop authenticator
    σ_i for hop [hop] of the viewed EER packet at [dst+dst_off]. *)
(* hot-path *)
let hop_auth_into (k : as_secret) (scr : scratch) (v : Packet.View.t)
    ~(hop : int) ~(dst : bytes) ~(dst_off : int) =
  let len = fill_hop_mac_input scr v ~hop ~with_eer:true in
  Crypto.Cmac.digest_into k scr.mac_input ~off:0 ~len ~dst ~dst_off

(** Eq. (6) into caller scratch: write the ℓ_hvf-byte per-packet HVF
    [MAC_σ(Ts ‖ PktSize)[0:ℓ_hvf]] at [dst+dst_off]. *)
(* hot-path *)
let eer_hvf_into (s : sigma) (scr : scratch) ~(ts : Timebase.Ts.t)
    ~(pkt_size : int) ~(dst : bytes) ~(dst_off : int) =
  Packet.Wire.put64 scr.ts_size 0 (Timebase.Ts.to_int ts);
  Packet.Wire.put32 scr.ts_size 8 pkt_size;
  Crypto.Cmac.digest_trunc_into s scr.ts_size ~off:0 ~len:12 ~dst ~dst_off
    ~tag_len:Packet.hvf_len

(** Constant-time equality of two ℓ_hvf-byte spans. *)
(* hot-path *)
let equal_hvf_at (a : bytes) ~(a_off : int) (b : bytes) ~(b_off : int) : bool =
  a_off >= 0
  && b_off >= 0
  && a_off + Packet.hvf_len <= Bytes.length a
  && b_off + Packet.hvf_len <= Bytes.length b
  &&
  let acc = ref 0 in
  for i = 0 to Packet.hvf_len - 1 do
    acc :=
      !acc
      lor (Char.code (Bytes.get a (a_off + i))
          lxor Char.code (Bytes.get b (b_off + i)))
  done;
  !acc = 0

(** Full Eq. (3) check on the wire: recompute hop [hop]'s SegR token
    and compare it against the packet's own HVF, in constant time and
    without allocating. *)
(* hot-path *)
let seg_check (k : as_secret) (scr : scratch) (v : Packet.View.t) ~(hop : int) :
    bool =
  seg_token_into k scr v ~hop ~dst:scr.tag ~dst_off:0;
  equal_hvf_at scr.tag ~a_off:0 (Packet.View.buffer v)
    ~b_off:(Packet.View.hvf_off v hop)

(** Full Eq. (4) → Eq. (6) check on the wire: re-derive σ_i, re-key the
    scratch CMAC key with it in place, recompute the per-packet HVF for
    [pkt_size], and compare — the stateless router's whole EER
    validation, with zero allocation. *)
(* hot-path *)
let eer_check (k : as_secret) (scr : scratch) (v : Packet.View.t) ~(hop : int)
    ~(pkt_size : int) : bool =
  hop_auth_into k scr v ~hop ~dst:scr.tag ~dst_off:0;
  Crypto.Cmac.rekey scr.sigma scr.tag ~off:0;
  eer_hvf_into scr.sigma scr ~ts:(Packet.View.ts v) ~pkt_size ~dst:scr.tag
    ~dst_off:0;
  equal_hvf_at scr.tag ~a_off:0 (Packet.View.buffer v)
    ~b_off:(Packet.View.hvf_off v hop)

(* -- Eq. (5): AEAD transport of σ_i back to the source AS -- *)

(** [seal_sigma ~key ~res_key sigma_bytes] protects σ_i for the trip
    back to the source AS, keyed with [K_{AS_i→AS_0}] material. The
    nonce binds the reservation key so σ values cannot be replayed
    across reservations; associated data binds it too. *)
let seal_sigma ~(aead : Crypto.Aead.key) ~(res_key : Ids.res_key) ~(version : int)
    (sigma_bytes : bytes) : bytes =
  let nonce = Bytes.make Crypto.Aead.nonce_size '\000' in
  Bytes.blit (Ids.asn_to_bytes res_key.src_as) 0 nonce 0 8;
  Bytes.set_int32_be nonce 8 (Int32.of_int res_key.res_id);
  Bytes.set_int32_be nonce 12 (Int32.of_int version);
  Crypto.Aead.seal aead ~nonce ~ad:(Bytes.copy nonce) sigma_bytes

let open_sigma ~(aead : Crypto.Aead.key) ~(res_key : Ids.res_key) ~(version : int)
    (sealed : bytes) : bytes option =
  let nonce = Bytes.make Crypto.Aead.nonce_size '\000' in
  Bytes.blit (Ids.asn_to_bytes res_key.src_as) 0 nonce 0 8;
  Bytes.set_int32_be nonce 8 (Int32.of_int res_key.res_id);
  Bytes.set_int32_be nonce 12 (Int32.of_int version);
  Crypto.Aead.open_ aead ~nonce ~ad:(Bytes.copy nonce) sealed
