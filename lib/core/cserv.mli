(** The Colibri service (CServ, §3.2): one per AS, handling all
    control-plane tasks — admission of SegRs and EERs, renewal and
    activation, bookkeeping of reservations traversing the AS, the
    registry and caching of shareable SegRs (Appendix C), and the
    DRKey-based authentication of every control-plane message (§4.5).

    The CServ is transport-agnostic: forward/backward handlers process
    one hop of a request, and an orchestration layer ({!Deployment})
    moves messages between ASes — mirroring the paper's evaluation,
    which measures admission processing inside a single service. *)

open Colibri_types
open Colibri_topology

type t

(** AS types for EER processing (§4.1). *)
type role = Source | Transit | Transfer | Destination

(** Intra-AS admission policy for EERs (§4.7): source and destination
    ASes have the business relationship with their hosts and are free
    to define local rules. [accept_incoming] stands in for the
    destination host's explicit accept (§4.4). *)
type policy = {
  max_eer_bw : Bandwidth.t;
  accept_outgoing : Packet.eer_info -> Bandwidth.t -> bool;
  accept_incoming : Packet.eer_info -> Bandwidth.t -> bool;
}

val default_policy : policy

(** A SegR as known to an on-path AS, with its local hop. *)
type transit_segr = {
  segr : Reservation.segr;
  ingress : Ids.iface;
  egress : Ids.iface;
}

(** Public description of a registered SegR, as returned by registry
    lookups (Appendix C). *)
type segr_descr = {
  key : Ids.res_key;
  kind : Reservation.seg_kind;
  path : Path.t;
  bw : Bandwidth.t;
  exp_time : Timebase.t;
}

val create :
  ?policy:policy ->
  ?renewal_min_interval:Timebase.t ->
  ?rng:Random.State.t ->
  ?registry:Obs.Registry.t ->
  ?backend:Backends.Backend_intf.factory ->
  clock:Timebase.clock ->
  topo:Topology.t ->
  Ids.asn ->
  t
(** [registry] receives the CServ's admission-outcome metrics
    (DESIGN.md §7); a private registry is created when omitted.
    [backend] selects the admission discipline (DESIGN.md §12); the
    default is the N-Tube reference backend, [Backends.All.ntube]. *)

val asn : t -> Ids.asn
val key_server : t -> Drkey.Key_server.t

val metrics : t -> Obs.Registry.t
(** The CServ's metric registry: [cserv_seg_granted_total] /
    [cserv_seg_denied_total] / [cserv_eer_granted_total] /
    [cserv_eer_denied_total] admission outcomes,
    [cserv_misbehavior_reports_total], and the per-source-AS
    [cserv_denied_total] family. Every family carries a
    [backend="…"] label naming the admission discipline, so merged
    snapshots split outcomes per backend. *)

val hop_secret : t -> Hvf.as_secret
(** The AS-specific secret [K_i] for hop tokens/authenticators,
    derived from the current DRKey secret value. *)

val next_res_id : t -> Ids.res_id
(** Allocate the next per-source reservation number (§4.3). *)

(** {1 Segment reservations} *)

val make_seg_request :
  t ->
  path:Path.t ->
  kind:Reservation.seg_kind ->
  max_bw:Bandwidth.t ->
  min_bw:Bandwidth.t ->
  renew:Ids.res_key option ->
  (Protocol.seg_request * Protocol.request_auth, string) result
(** Build an authenticated SegR setup ([renew = None]) or renewal
    request at the initiator. *)

val handle_seg_request_forward :
  t ->
  req:Protocol.seg_request ->
  auth:Protocol.request_auth ->
  [ `Continue of Bandwidth.t | `Deny of Protocol.deny_reason ]
(** Forward-pass processing at one on-path AS: verify the source's
    MAC, run the admission algorithm, tentatively record the grant. *)

val handle_seg_reply_backward :
  t -> req:Protocol.seg_request -> final_bw:Bandwidth.t -> Protocol.reply_hop
(** Backward pass: commit the final (path-wide minimum) bandwidth,
    store the reservation version, and emit this AS's Eq. (3) token.
    Setups activate immediately; renewals stay pending until explicit
    activation (§4.2). *)

val handle_seg_failure : t -> req:Protocol.seg_request -> unit
(** Cleanup after a failed setup: release the tentative admission
    state (§3.3). *)

val process_seg_reply :
  t ->
  req:Protocol.seg_request ->
  reply:Protocol.seg_request Protocol.reply ->
  (Reservation.segr, string) result
(** At the initiator: verify every hop's MAC and store the SegR with
    its tokens. *)

val handle_seg_activation : t -> key:Ids.res_key -> (unit, string) result
(** Activate a pending SegR version at one on-path AS; the superseded
    version's admission share is released. *)

(** {1 Registry & dissemination (Appendix C)} *)

val register_segr :
  t -> key:Ids.res_key -> allowed:Ids.Asn_set.t option -> (unit, string) result
(** Register one of this AS's SegRs for use by other ASes, with an
    optional whitelist. *)

val registry_query : t -> requester:Ids.asn -> dst:Ids.asn -> segr_descr list
(** Registered SegRs ending at [dst] that [requester] may use. *)

val cache_remote_segrs : t -> segr_descr list -> unit
(** Cache remote SegR descriptions (hierarchical caching). *)

val cached_segrs : t -> dst:Ids.asn -> segr_descr list
val invalidate_cached_segr : t -> key:Ids.res_key -> unit
(** Drop a cached SegR that turned out stale. *)

(** {1 End-to-end reservations} *)

val renewal_allowed : t -> key:Ids.res_key -> bool
(** Renewal rate limiting (§4.2): at most one renewal per
    [renewal_min_interval] per reservation. Recording side effect:
    a [true] answer counts as the renewal of record. *)

val make_eer_request :
  t ->
  path:Path.t ->
  src_host:Ids.host ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  segr_keys:Ids.res_key list ->
  renew:Ids.res_key option ->
  (Protocol.eer_request * Protocol.request_auth, string) result

val handle_eer_request_forward :
  t ->
  req:Protocol.eer_request ->
  auth:Protocol.request_auth ->
  [ `Continue of Bandwidth.t | `Deny of Protocol.deny_reason ]
(** Forward-pass EER admission (§4.7): policy checks at the edges,
    SegR headroom at transit ASes, proportional core-SegR sharing at
    transfer ASes. Renewals may be granted partially (§4.2). *)

val handle_eer_reply_backward :
  t -> req:Protocol.eer_request -> final_bw:Bandwidth.t -> Protocol.reply_hop
(** Backward pass: compute the hop authenticator σ_i (Eq. (4)) over
    the final reservation data and seal it for the source AS
    (Eq. (5)). *)

val handle_eer_failure : t -> req:Protocol.eer_request -> unit

val process_eer_reply :
  t ->
  req:Protocol.eer_request ->
  reply:Protocol.eer_request Protocol.reply ->
  (Reservation.eer * Reservation.version * bytes list, string) result
(** At the source AS: verify every hop's MAC, unseal the σ_i, and
    return the reservation with the per-hop authenticators for the
    gateway. *)

(** {1 Policing hooks (§4.8)} *)

val report_misbehavior : t -> src:Ids.asn -> unit
(** Confirmed-overuse report from a border router: deny future
    reservations from the offending source AS. *)

val is_denied : t -> src:Ids.asn -> bool

(** {1 Introspection} *)

val own_segr_descrs : t -> kind:Reservation.seg_kind -> now:Timebase.t -> segr_descr list
val transit_segr : t -> Ids.res_key -> transit_segr option
val own_segr : t -> Ids.res_key -> Reservation.segr option
val own_eer : t -> Ids.res_key -> Reservation.eer option
val backend : t -> Backends.Backend_intf.instance
(** The CServ's admission backend — all reservation state lives behind
    the {!Backends.Backend_intf.S} interface. *)

val drkey_cache : t -> Drkey.Cache.t

val audit : t -> string list
(** Consistency audit of the admission backend, messages prefixed with
    this AS and the backend name. [[]] means clean — the chaos suite's
    leak detector after crashes and exhausted retries. *)

val set_fetch_remote_key : t -> (Ids.asn -> Drkey.as_key) -> unit
(** Wire the slow-side DRKey fetch to remote key servers (done by the
    deployment). *)
