(** Distributed Colibri service (Appendix D).

    An AS in the Internet core may receive so many requests that a
    single CServ machine becomes the bottleneck. The hierarchical
    structure of reservations allows splitting the service:

    - the {e coordinator} sub-service handles all SegReqs (their
      admission needs the complete view of SegRs through the AS);
    - {e ingress} sub-services handle EEReqs whose underlying SegR
      enters through a given ingress interface;
    - {e egress} sub-services (transfer ASes only) handle EEReqs by
      egress interface of the outgoing SegR.

    The load balancer must assign all EEReqs based on the same
    underlying SegR to the same sub-service — then each sub-service's
    accounting is self-contained and decisions parallelize trivially.
    This module implements that decomposition over the pluggable
    admission interface (DESIGN.md §12): every sub-service holds one
    {!Backends.Backend_intf.instance} of the same factory, so the
    decomposition works for any discipline. The test suite checks its
    decisions coincide with a monolithic service's. *)

open Colibri_types
module Backend = Backends.Backend_intf

type sub_service = {
  iface : Ids.iface;
  backend : Backend.instance;
  mutable handled : int;
}

type t = {
  factory : Backend.factory;
  capacity : Ids.iface -> Bandwidth.t;
  share : float option;
  coordinator : Backend.instance;
  ingress : sub_service Ids.Iface_tbl.t;
  egress : sub_service Ids.Iface_tbl.t;
  (* The balancer's pinning of SegRs to sub-services. *)
  pin : sub_service Ids.Res_key_tbl.t;
}

let make (t : t) : Backend.instance =
  match t.share with
  | Some share -> t.factory.make ~capacity:t.capacity ~share ()
  | None -> t.factory.make ~capacity:t.capacity ()

let create ?(backend = Backends.All.ntube) ~(capacity : Ids.iface -> Bandwidth.t)
    ?share () : t =
  let coordinator =
    match share with
    | Some share -> backend.Backend.make ~capacity ~share ()
    | None -> backend.Backend.make ~capacity ()
  in
  {
    factory = backend;
    capacity;
    share;
    coordinator;
    ingress = Ids.Iface_tbl.create 16;
    egress = Ids.Iface_tbl.create 16;
    pin = Ids.Res_key_tbl.create 1024;
  }

let coordinator (t : t) = t.coordinator

(** SegReq admission at the coordinator, which keeps the complete SegR
    view. Same semantics as {!Backends.Backend_intf.admit_seg}. *)
let admit_seg (t : t) ~(req : Backend.seg_request) ~(now : Timebase.t) :
    Backend.decision =
  Backend.admit_seg t.coordinator ~req ~now

let sub_service (t : t) (tbl : sub_service Ids.Iface_tbl.t) (iface : Ids.iface) :
    sub_service =
  match Ids.Iface_tbl.find_opt tbl iface with
  | Some s -> s
  | None ->
      let s = { iface; backend = make t; handled = 0 } in
      Ids.Iface_tbl.replace tbl iface s;
      s

(** The load balancer: EEReqs over SegR [segr_key] (which enters this
    AS via [segr_ingress]) always go to the same ingress sub-service.
    At a transfer AS, EERs spanning two SegRs are pinned by the
    {e incoming} SegR and the egress sub-service handles the outgoing
    check — modeled here by pinning the pair to the ingress service,
    which owns both checks for its pinned reservations (the
    decomposition in the paper splits the decision into two independent
    sub-problems; co-locating them in the pinned service keeps the
    accounting exact without cross-service coordination). *)
let service_for (t : t) ~(segr_key : Ids.res_key) ~(segr_ingress : Ids.iface) :
    sub_service =
  match Ids.Res_key_tbl.find_opt t.pin segr_key with
  | Some s -> s
  | None ->
      let s = sub_service t t.ingress segr_ingress in
      Ids.Res_key_tbl.replace t.pin segr_key s;
      s

(** EER admission, dispatched to the pinned sub-service. Same
    semantics as {!Backends.Backend_intf.admit_eer}; per-hop backends
    account the reservation against the pinned interface. *)
let admit_eer (t : t) ~(key : Ids.res_key) ~(version : int)
    ~(segrs : (Ids.res_key * Bandwidth.t) list)
    ~(via_up : (Ids.res_key * Ids.res_key * Bandwidth.t) option)
    ~(segr_ingress : Ids.iface) ~(demand : Bandwidth.t) ~(exp_time : Timebase.t)
    ~(now : Timebase.t) : Backend.decision =
  match segrs with
  | [] -> Backend.Denied { available = Bandwidth.zero }
  | (first_segr, _) :: _ ->
      let s = service_for t ~segr_key:first_segr ~segr_ingress in
      s.handled <- s.handled + 1;
      let req : Backend.eer_request =
        {
          key;
          version;
          segrs;
          via_up;
          ingress = segr_ingress;
          egress = segr_ingress;
          demand;
          renewal = false;
          exp_time;
        }
      in
      Backend.admit_eer s.backend ~req ~now

let ingress_services (t : t) : (Ids.iface * int) list =
  Ids.Iface_tbl.fold (fun iface s acc -> (iface, s.handled) :: acc) t.ingress []

let service_count (t : t) = Ids.Iface_tbl.length t.ingress + Ids.Iface_tbl.length t.egress

(** Audit the whole decomposed service: the coordinator's aggregates,
    every sub-service's aggregates, and the balancer's pinning
    discipline (each pin points at the sub-service registered under
    its interface; dispatch counters match the sub-service's admission
    counters — [Backend_intf.admissions] counts every dispatched call,
    retransmission hits included). [[]] means consistent. *)
let audit (t : t) : string list =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  List.iter (fun e -> err "coordinator: %s" e) (Backend.audit t.coordinator);
  let audit_services what tbl =
    Ids.Iface_tbl.iter
      (fun iface s ->
        if s.iface <> iface then
          err "%s[%d]: registered under interface %d" what iface s.iface;
        if s.handled <> Backend.admissions s.backend then
          err "%s[%d]: dispatched %d requests but admission saw %d" what iface s.handled
            (Backend.admissions s.backend);
        List.iter (fun e -> err "%s[%d]: %s" what iface e) (Backend.audit s.backend))
      tbl
  in
  audit_services "ingress" t.ingress;
  audit_services "egress" t.egress;
  Ids.Res_key_tbl.iter
    (fun segr s ->
      match Ids.Iface_tbl.find_opt t.ingress s.iface with
      | Some s' when s' == s -> ()
      | _ -> err "pin[%a]: not the sub-service registered for interface %d" Ids.pp_res_key segr s.iface)
    t.pin;
  !errs

(** Deliberately corrupt the coordinator's aggregates so tests can
    verify that {!audit} detects it. Never call outside tests. *)
let corrupt_for_test (t : t) = Backend.corrupt_for_test t.coordinator
