(** Hop authenticators and hop validation fields (§4.5, Eqs. (3)–(6)).

    Every on-path AS [i] holds a single secret key [K_i] from which all
    per-packet checks derive — the property that keeps border routers
    stateless:

    - Segment reservations carry a static 4-byte token
      [V_i = MAC_{K_i}(ResInfo ‖ (In_i, Eg_i))[0:4]] (Eq. (3)).
    - End-to-end reservations use a two-step scheme: at setup, AS [i]
      computes the hop authenticator
      [σ_i = MAC_{K_i}(ResInfo ‖ EERInfo ‖ (In_i, Eg_i))] (Eq. (4))
      and returns it to the source AS under AEAD (Eq. (5)); per data
      packet the gateway (and, recomputing σ_i on the fly, the router)
      derives [V_i = MAC_{σ_i}(Ts ‖ PktSize)[0:4]] (Eq. (6)).

    Including [SrcAS ‖ ResId] in the MAC'd ResInfo makes tokens
    globally bound to their reservation, which is why no chaining of
    hop fields is needed to prevent path splicing (§4.5). *)

open Colibri_types

type as_secret = Crypto.Cmac.key
(** [K_i]: the AS-specific secret used for reservation tokens. *)

val as_secret_of_material : bytes -> as_secret
(** Derive an AS's hop-MAC key from 16 bytes of secret material
    (typically a DRKey protocol key, so a single per-epoch secret
    backs both subsystems). *)

val hop_mac_input :
  res_info:Packet.res_info ->
  eer_info:Packet.eer_info option ->
  ingress:Ids.iface ->
  egress:Ids.iface ->
  bytes
(** The canonical MAC input of Eqs. (3) and (4):
    [ResInfo ‖ [EERInfo ‖] In ‖ Eg]. *)

val seg_token : as_secret -> res_info:Packet.res_info -> hop:Path.hop -> bytes
(** Eq. (3): the static SegR token, truncated to {!Packet.hvf_len}
    bytes. *)

val hop_auth :
  as_secret -> res_info:Packet.res_info -> eer_info:Packet.eer_info -> hop:Path.hop -> bytes
(** Eq. (4): the full-length (16-byte) hop authenticator σ_i for an
    EER. *)

type sigma = Crypto.Cmac.key
(** A hop authenticator prepared for per-packet use: σ_i expanded into
    a CMAC key. The gateway does this once per reservation version;
    the router re-derives it per packet. *)

val sigma_of_bytes : bytes -> sigma

val eer_hvf : sigma -> ts:Timebase.Ts.t -> pkt_size:int -> bytes
(** Eq. (6): the per-packet hop validation field
    [MAC_{σ_i}(Ts ‖ PktSize)[0:ℓ_hvf]]. *)

val equal_hvf : bytes -> bytes -> bool
(** Constant-time equality for ℓ_hvf-byte fields. *)

(** {1 Allocation-free variants over a [Packet.View] (DESIGN.md §8)} *)

type scratch
(** Per-consumer working buffers (MAC input, Ts‖PktSize block, tag
    block, and a re-keyable σ key) for the [_into] pipeline. A router
    owns exactly one; never share one across domains. *)

val scratch : unit -> scratch

val seg_token_into :
  as_secret -> scratch -> Packet.View.t -> hop:int -> dst:bytes -> dst_off:int -> unit
(** Eq. (3): write hop [hop]'s ℓ_hvf-byte SegR token at [dst+dst_off]. *)

val hop_auth_into :
  as_secret -> scratch -> Packet.View.t -> hop:int -> dst:bytes -> dst_off:int -> unit
(** Eq. (4): write the 16-byte σ_i for hop [hop] of the viewed EER
    packet at [dst+dst_off]. *)

val eer_hvf_into :
  sigma -> scratch -> ts:Timebase.Ts.t -> pkt_size:int -> dst:bytes -> dst_off:int -> unit
(** Eq. (6): write the ℓ_hvf-byte per-packet HVF at [dst+dst_off]. *)

val equal_hvf_at : bytes -> a_off:int -> bytes -> b_off:int -> bool
(** Constant-time equality of two ℓ_hvf-byte spans. *)

val seg_check : as_secret -> scratch -> Packet.View.t -> hop:int -> bool
(** Recompute hop [hop]'s Eq. (3) token and compare it against the
    packet's own HVF — allocation-free. *)

val eer_check : as_secret -> scratch -> Packet.View.t -> hop:int -> pkt_size:int -> bool
(** The stateless router's whole EER validation (Eq. (4) → Eq. (6)):
    re-derive σ_i, re-key the scratch key in place, recompute the HVF
    for [pkt_size], compare — allocation-free. *)

(** {1 Eq. (5): AEAD transport of σ_i back to the source AS} *)

val seal_sigma :
  aead:Crypto.Aead.key -> res_key:Ids.res_key -> version:int -> bytes -> bytes
(** Protect σ_i for the trip back to the source AS, keyed with
    [K_{AS_i→AS_0}] material. The nonce and associated data bind the
    reservation key and version, so σ values cannot be replayed across
    reservations. *)

val open_sigma :
  aead:Crypto.Aead.key -> res_key:Ids.res_key -> version:int -> bytes -> bytes option
(** Inverse of {!seal_sigma}; [None] when authentication fails or the
    binding does not match. *)
