(** The Colibri gateway (§3.2, §4.6): the mandatory exit point for all
    Colibri EER traffic of an AS's end hosts.

    Per outgoing packet the gateway (i) maps the [ResId] to the
    reservation state obtained during setup/renewal — path, ResInfo,
    EERInfo and the hop authenticators σ_i; (ii) performs deterministic
    traffic monitoring with a per-EER token bucket (§4.8), dropping
    packets beyond the reserved rate; (iii) stamps a high-precision
    timestamp and computes the per-hop validation fields
    [V_i = MAC_{σ_i}(Ts ‖ PktSize)] (Eq. (6)) — thereby certifying that
    the mandatory monitoring was performed and the packet is
    authorized.

    The gateway is the only stateful data-plane component, and its
    state is bounded by the number of EERs {e originating} in its own
    AS — never by transit traffic. *)

open Colibri_types

type version_state = {
  version : Reservation.version;
  res_info : Packet.res_info;
  sigmas : Hvf.sigma array; (* one per on-path AS, path order *)
  mutable last_ts : int;
      (* Ts is relative to this version's ExpT and decreases over
         time; enforcing strict decrease per version keeps every
         packet's (source, Ts) pair unique even when several packets
         leave within one clock tick — required for duplicate
         suppression (§4.3). Tracked per version because a renewal
         moves ExpT and restarts the countdown. *)
}

type entry = {
  eer : Reservation.eer;
  eer_info : Packet.eer_info;
  mutable versions : version_state list; (* newest first *)
  mutable bucket : Monitor.Token_bucket.t;
}

type drop_reason = Unknown_reservation | Expired | Rate_exceeded

let pp_drop_reason ppf = function
  | Unknown_reservation -> Fmt.string ppf "unknown reservation"
  | Expired -> Fmt.string ppf "reservation expired"
  | Rate_exceeded -> Fmt.string ppf "rate exceeded"

type stats = {
  mutable sent_pkts : int;
  mutable sent_bytes : int;
  mutable dropped_rate : int;
  mutable dropped_other : int;
}

(* Pre-resolved counters so the per-packet path is a field read plus an
   allocation-free increment (DESIGN.md §7). *)
type metrics = {
  m_sent_pkts : Obs.Counter.t;
  m_sent_bytes : Obs.Counter.t;
  m_drop_unknown : Obs.Counter.t;
  m_drop_expired : Obs.Counter.t;
  m_drop_rate : Obs.Counter.t;
  m_pkt_size : Obs.Histogram.t;
}

type t = {
  asn : Ids.asn;
  clock : Timebase.clock;
  burst : float; (* token-bucket burst allowance, seconds at rate *)
  entries : (int, entry) Hashtbl.t; (* by ResId: reservations of own AS only *)
  stats : stats;
  registry : Obs.Registry.t;
  metrics : metrics;
  (* Reusable output buffer and MAC scratch for {!send_bytes}
     (DESIGN.md §8): the header is encoded in place, so the steady
     state allocates no per-packet buffers. *)
  mutable out : bytes;
  mutable out_len : int;
  hscr : Hvf.scratch;
}

let drop_counter (registry : Obs.Registry.t) (reason : string) : Obs.Counter.t =
  Obs.Registry.counter registry
    (Obs.labeled "gateway_dropped_total" [ ("reason", reason) ])

let create ?(burst = 0.1) ?(registry = Obs.Registry.create ())
    ~(clock : Timebase.clock) (asn : Ids.asn) : t =
  let entries = Hashtbl.create 4096 in
  let metrics =
    {
      m_sent_pkts = Obs.Registry.counter registry "gateway_sent_packets_total";
      m_sent_bytes = Obs.Registry.counter registry "gateway_sent_bytes_total";
      m_drop_unknown = drop_counter registry "unknown_reservation";
      m_drop_expired = drop_counter registry "expired";
      m_drop_rate = drop_counter registry "rate_exceeded";
      m_pkt_size = Obs.Registry.histogram registry "gateway_packet_bytes";
    }
  in
  Obs.Registry.gauge_fn registry "gateway_reservations" (fun () ->
      float_of_int (Hashtbl.length entries));
  { asn; clock; burst; entries;
    stats = { sent_pkts = 0; sent_bytes = 0; dropped_rate = 0; dropped_other = 0 };
    registry; metrics;
    out = Bytes.create 512; out_len = 0; hscr = Hvf.scratch () }

let metrics (t : t) = t.registry

(** Install or extend an EER after a successful setup or renewal
    (➎ in Fig. 1b): the σ_i of the new version are expanded into CMAC
    keys once, and the token-bucket rate follows the maximum bandwidth
    over valid versions. *)
let register (t : t) ~(eer : Reservation.eer) ~(version : Reservation.version)
    ~(sigmas : bytes list) : (unit, string) result =
  if not (Ids.equal_asn eer.key.src_as t.asn) then Error "EER does not originate here"
  else if List.length sigmas <> Path.length eer.path then Error "wrong number of sigmas"
  else begin
    let now = t.clock () in
    let res_info = Reservation.res_info_of_eer eer version in
    let vs =
      {
        version;
        res_info;
        sigmas = Array.of_list (List.map Hvf.sigma_of_bytes sigmas);
        last_ts = max_int;
      }
    in
    (match Hashtbl.find_opt t.entries eer.key.res_id with
    | Some e ->
        e.versions <-
          vs
          :: List.filter
               (fun v -> Reservation.version_valid v.version ~now)
               e.versions;
        Monitor.Token_bucket.set_rate e.bucket ~rate:(Reservation.eer_bw eer ~now) ~now
    | None ->
        let bucket =
          Monitor.Token_bucket.create ~rate:version.bw ~burst:t.burst ~now
        in
        Hashtbl.replace t.entries eer.key.res_id
          {
            eer;
            eer_info = Reservation.eer_info_of_eer eer;
            versions = [ vs ];
            bucket;
          });
    Ok ()
  end

(** Bulk-load variant of {!register} taking already-expanded σ keys;
    used by benchmarks to preload up to 2^20 reservations (Fig. 5)
    without re-running the CMAC key schedule per entry. Semantics
    otherwise identical to {!register}. *)
let register_prepared (t : t) ~(eer : Reservation.eer)
    ~(version : Reservation.version) ~(sigmas : Hvf.sigma array) :
    (unit, string) result =
  if not (Ids.equal_asn eer.key.src_as t.asn) then Error "EER does not originate here"
  else if Array.length sigmas <> Path.length eer.path then Error "wrong number of sigmas"
  else begin
    let now = t.clock () in
    let res_info = Reservation.res_info_of_eer eer version in
    let vs = { version; res_info; sigmas; last_ts = max_int } in
    (match Hashtbl.find_opt t.entries eer.key.res_id with
    | Some e ->
        e.versions <- vs :: e.versions;
        Monitor.Token_bucket.set_rate e.bucket ~rate:(Reservation.eer_bw eer ~now) ~now
    | None ->
        Hashtbl.replace t.entries eer.key.res_id
          {
            eer;
            eer_info = Reservation.eer_info_of_eer eer;
            versions = [ vs ];
            bucket = Monitor.Token_bucket.create ~rate:version.bw ~burst:t.burst ~now;
          });
    Ok ()
  end

(** Expire an entry explicitly (e.g. periodic sweep); entries whose
    versions have all lapsed are also dropped lazily on use. *)
let sweep (t : t) =
  let now = t.clock () in
  let stale =
    Hashtbl.fold
      (fun id e acc ->
        if List.for_all (fun v -> not (Reservation.version_valid v.version ~now)) e.versions
        then id :: acc
        else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) stale

(** Process one packet from an end host: monitor, authorize, emit.
    [payload_len] is the payload size in bytes; the authenticated
    [PktSize] covers header plus payload so that header-only floods
    remain accountable (§4.8). Returns the finished packet and the
    egress interface of the first hop. *)
let send (t : t) ~(res_id : Ids.res_id) ~(payload_len : int) :
    (Packet.t * Ids.iface, drop_reason) result =
  let now = t.clock () in
  match Hashtbl.find_opt t.entries res_id with
  | None ->
      t.stats.dropped_other <- t.stats.dropped_other + 1;
      Obs.Counter.incr t.metrics.m_drop_unknown;
      Error Unknown_reservation
  | Some e -> (
      match
        List.find_opt (fun v -> Reservation.version_valid v.version ~now) e.versions
      with
      | None ->
          Hashtbl.remove t.entries res_id;
          t.stats.dropped_other <- t.stats.dropped_other + 1;
          Obs.Counter.incr t.metrics.m_drop_expired;
          Error Expired
      | Some vs ->
          let hops = Path.length e.eer.path in
          let pkt_size = Packet.header_len ~hops + payload_len in
          if not (Monitor.Token_bucket.admit e.bucket ~now ~bytes:pkt_size) then begin
            t.stats.dropped_rate <- t.stats.dropped_rate + 1;
            Obs.Counter.incr t.metrics.m_drop_rate;
            Error Rate_exceeded
          end
          else begin
            let ts =
              let computed =
                Timebase.Ts.to_int
                  (Timebase.Ts.of_times ~exp_time:vs.res_info.exp_time ~now)
              in
              let unique = if computed >= vs.last_ts then vs.last_ts - 1 else computed in
              vs.last_ts <- unique;
              Timebase.Ts.of_int unique
            in
            let hvfs =
              Array.map (fun sigma -> Hvf.eer_hvf sigma ~ts ~pkt_size) vs.sigmas
            in
            let packet : Packet.t =
              {
                kind = Packet.Eer;
                path = e.eer.path;
                res_info = vs.res_info;
                eer_info = Some e.eer_info;
                ts;
                hvfs;
                payload_len;
              }
            in
            t.stats.sent_pkts <- t.stats.sent_pkts + 1;
            t.stats.sent_bytes <- t.stats.sent_bytes + pkt_size;
            Obs.Counter.incr t.metrics.m_sent_pkts;
            Obs.Counter.add t.metrics.m_sent_bytes pkt_size;
            Obs.Histogram.observe t.metrics.m_pkt_size (float_of_int pkt_size);
            let egress =
              match e.eer.path with
              | first :: _ -> first.egress
              | [] -> Ids.local_iface
            in
            Ok (packet, egress)
          end)

(* -- Zero-copy emission (DESIGN.md §8) -- *)

(* First version still valid at [now], newest first — the same pick as
   [send]'s [List.find_opt], as a plain recursion (no closure). *)
(* hot-path *)
let rec first_valid_version ~(now : Timebase.t) (versions : version_state list) :
    version_state option =
  match versions with
  | [] -> None
  | vs :: rest ->
      if Reservation.version_valid vs.version ~now then Some vs
      else first_valid_version ~now rest

(* Encode the path hops at [off], 20 bytes per hop, byte-identical to
   [Path.to_bytes]. *)
(* hot-path *)
let rec write_hops (b : bytes) (off : int) (hops : Path.hop list) =
  match hops with
  | [] -> ()
  | h :: rest ->
      Packet.Wire.put32 b off h.asn.isd;
      Packet.Wire.put32 b (off + 4) h.asn.num;
      Packet.Wire.put32 b (off + 8) h.ingress;
      Packet.Wire.put32 b (off + 12) h.egress;
      Packet.Wire.put32 b (off + 16) 0;
      write_hops b (off + 20) rest

(* HVF fields at [off], one per σ, via the allocation-free Eq. (6). *)
(* hot-path *)
let write_hvfs (t : t) (vs : version_state) ~(ts : Timebase.Ts.t)
    ~(pkt_size : int) (off : int) =
  for i = 0 to Array.length vs.sigmas - 1 do
    Hvf.eer_hvf_into vs.sigmas.(i) t.hscr ~ts ~pkt_size ~dst:t.out
      ~dst_off:(off + (i * Packet.hvf_len))
  done

(** {!send} without materializing a [Packet.t]: the header is encoded
    straight into the gateway's reusable output buffer ({!out}, valid
    until the next [send_bytes] on this gateway) and the HVFs are
    computed in place. The bytes produced are identical to
    [Packet.to_bytes] of the packet {!send} would have returned.
    Returns the egress interface of the first hop. *)
(* hot-path *)
let send_bytes (t : t) ~(res_id : Ids.res_id) ~(payload_len : int) :
    (Ids.iface, drop_reason) result =
  let now = t.clock () in
  match Hashtbl.find_opt t.entries res_id with
  | None ->
      t.stats.dropped_other <- t.stats.dropped_other + 1;
      Obs.Counter.incr t.metrics.m_drop_unknown;
      Error Unknown_reservation
  | Some e -> (
      match first_valid_version ~now e.versions with
      | None ->
          Hashtbl.remove t.entries res_id;
          t.stats.dropped_other <- t.stats.dropped_other + 1;
          Obs.Counter.incr t.metrics.m_drop_expired;
          Error Expired
      | Some vs ->
          let hops = Path.length e.eer.path in
          let header = Packet.header_len ~hops in
          let pkt_size = header + payload_len in
          if not (Monitor.Token_bucket.admit e.bucket ~now ~bytes:pkt_size) then begin
            t.stats.dropped_rate <- t.stats.dropped_rate + 1;
            Obs.Counter.incr t.metrics.m_drop_rate;
            Error Rate_exceeded
          end
          else begin
            let ts =
              let computed =
                Timebase.Ts.to_int
                  (Timebase.Ts.of_times ~exp_time:vs.res_info.exp_time ~now)
              in
              let unique = if computed >= vs.last_ts then vs.last_ts - 1 else computed in
              vs.last_ts <- unique;
              Timebase.Ts.of_int unique
            in
            if Bytes.length t.out < header then
              (* Growth is amortized: only when a longer path than ever
                 before passes through this gateway. *)
              (* lint: allow hot-path-alloc *)
              t.out <- (Bytes.create (max header (2 * Bytes.length t.out)) [@colibri.allow "d1"]);
            let b = t.out in
            Packet.Wire.put16 b 0 Packet.magic;
            Bytes.set_uint8 b 2 1 (* Eer *);
            Bytes.set_uint8 b 3 hops;
            Packet.Wire.put32 b 4 payload_len;
            Packet.Wire.put64 b 8 (Timebase.Ts.to_int ts);
            write_hops b Packet.fixed_header_len e.eer.path;
            let res_off = Packet.fixed_header_len + (hops * Path.hop_byte_size) in
            let ri = vs.res_info in
            Packet.Wire.put32 b res_off ri.src_as.isd;
            Packet.Wire.put32 b (res_off + 4) ri.src_as.num;
            Packet.Wire.put32 b (res_off + 8) ri.res_id;
            (* Clamp before float->int: bw/exp_time trace back to the
               wire, and [int_of_float] of an oversized float is
               unspecified (w4). *)
            Packet.Wire.put64 b (res_off + 12)
              (int_of_float (Float.round (Bandwidth.to_bps (Bandwidth.clamp ri.bw))));
            Packet.Wire.put64 b (res_off + 20)
              (Timebase.Ts.us_of_time ri.exp_time);
            Packet.Wire.put32 b (res_off + 28) ri.version;
            let eer_off = res_off + Packet.res_info_len in
            Packet.Wire.put32 b eer_off e.eer_info.src_host.addr;
            Packet.Wire.put32 b (eer_off + 4) e.eer_info.dst_host.addr;
            write_hvfs t vs ~ts ~pkt_size (eer_off + Packet.eer_info_len);
            t.out_len <- header;
            t.stats.sent_pkts <- t.stats.sent_pkts + 1;
            t.stats.sent_bytes <- t.stats.sent_bytes + pkt_size;
            Obs.Counter.incr t.metrics.m_sent_pkts;
            Obs.Counter.add t.metrics.m_sent_bytes pkt_size;
            Obs.Histogram.observe t.metrics.m_pkt_size (float_of_int pkt_size);
            let egress =
              match e.eer.path with
              | first :: _ -> first.egress
              | [] -> Ids.local_iface
            in
            Ok egress
          end)

let out (t : t) = t.out
let out_len (t : t) = t.out_len

let reservation_count (t : t) = Hashtbl.length t.entries
let stats (t : t) = t.stats
