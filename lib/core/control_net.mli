(** Control-plane message transport over the simulated network, and
    the denial-of-capability protections of §5.3.

    One simulated link per topology edge with the class-based queuing
    of Appendix B, used to demonstrate the paper's DoC story
    measurably: prioritized SegReqs and renewals over reservations keep
    their latency under best-effort floods; naive best-effort requests
    starve. *)

open Colibri_types
open Colibri_topology

type t

type message = { bytes : int; track : bool; deliver : unit -> unit }
(** [track] marks accountable control messages (every loss is counted);
    flood filler is untracked. *)

val create :
  ?scheduler:Net.Link.scheduler ->
  ?delay:float ->
  ?faults:Net.Fault.t ->
  ?registry:Obs.Registry.t ->
  engine:Net.Engine.t ->
  Topology.t ->
  t
(** Build the directed link mesh of the topology (strict-priority
    queuing and 5 ms per-link delay by default). [faults] subjects every
    tracked message to per-link fault verdicts. [registry] receives the
    delivery metrics (DESIGN.md §7); a private registry is created when
    omitted. *)

val link : t -> src:Ids.asn -> dst:Ids.asn -> message Net.Link.t option

val metrics : t -> Obs.Registry.t
(** Delivery accounting: [control_net_messages_sent_total] /
    [control_net_messages_delivered_total] /
    [control_net_messages_lost_total] (after the engine drains,
    sent = delivered + lost) and [control_net_flood_packets_total] for
    injected adversarial traffic. *)

val sent_count : t -> int
val delivered_count : t -> int

val lost_count : t -> int
(** Tracked messages lost to tail drops, fault-injected drops, or
    broken routes. *)

val flood :
  t -> src:Ids.asn -> dst:Ids.asn -> rate:Bandwidth.t -> ?packet_bytes:int -> unit ->
  Net.Source.t
(** Start best-effort background traffic on one link — the flooding
    adversary of §5.3. Stop it with {!Net.Source.stop}. *)

val send_along :
  t ->
  route:Ids.asn list ->
  cls:Net.Traffic_class.t ->
  bytes:int ->
  deliver:(unit -> unit) ->
  unit
(** Send one control message along adjacent ASes; messages killed by
    tail drops, the fault injector, or a broken route are counted lost
    — the DoC exposure of unprotected setup requests, widened to the
    full failure model. *)

val measure_latency :
  t ->
  route:Ids.asn list ->
  cls:Net.Traffic_class.t ->
  bytes:int ->
  timeout:float ->
  float option
(** One-way latency under current conditions; [None] if undelivered
    within [timeout] simulated seconds (the engine is run forward). *)

(** The §5.3 control-traffic protection levels. *)
type protection =
  | Unprotected_best_effort  (** naive initial SegReq *)
  | Prioritized_control  (** SegReq with Appendix-B prioritization *)
  | Over_reservation  (** renewal/EEReq over an existing SegR *)

val class_of_protection : protection -> Net.Traffic_class.t
