(** A full simulated Colibri deployment: one CServ, gateway, and
    border router per AS of a topology, wired together with DRKey key
    servers and a shared clock.

    This module is the orchestration layer that moves control-plane
    requests hop-by-hop along reservation paths (Fig. 1a/1b) and data
    packets through the chain of border routers (Fig. 1c). It is what
    the examples and integration tests drive; the per-AS components it
    glues together are individually testable and benchmarkable. *)

open Colibri_types
open Colibri_topology

type as_node = {
  asn : Ids.asn;
  cserv : Cserv.t;
  gateway : Gateway.t;
  router : Router.t;
}

(* The optional network layer underneath the control plane: simulated
   links ({!Control_net}), fault injection, and the reliable-request
   machinery ({!Retry}) plus the renewal state-machine counters. *)
type network = {
  cnet : Control_net.t;
  nfaults : Net.Fault.t option;
  retry : Retry.t;
  nreg : Obs.Registry.t;
  m_renew_started : Obs.Counter.t;
  m_renew_ok : Obs.Counter.t;
  m_renew_late : Obs.Counter.t;
  m_renew_degraded : Obs.Counter.t;
  m_renew_recovered : Obs.Counter.t;
  m_renew_gave_up : Obs.Counter.t;
}

type t = {
  topo : Topology.t;
  engine : Net.Engine.t;
  nodes : as_node Ids.Asn_tbl.t;
  seg_db : Segments.Db.t; (* path segments from beaconing *)
  mutable net : network option;
}

let clock (t : t) : Timebase.clock = Net.Engine.clock t.engine
let now (t : t) : Timebase.t = Net.Engine.now t.engine
let engine (t : t) = t.engine
let topology (t : t) = t.topo

let node (t : t) (asn : Ids.asn) : as_node =
  match Ids.Asn_tbl.find_opt t.nodes asn with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Deployment.node: unknown AS %a" Ids.pp_asn asn)

let cserv (t : t) asn = (node t asn).cserv
let gateway (t : t) asn = (node t asn).gateway
let router (t : t) asn = (node t asn).router

(** Build a deployment over [topo]. [policy_for] customizes per-AS EER
    policies; [backend] selects the admission discipline every CServ
    runs (DESIGN.md §12); [router_monitoring = false] builds
    bare-fast-path routers (no OFD / duplicate filter), as used by the
    speed benchmarks. [router_auto_block] additionally blocklists a
    source AS locally once a router confirms overuse (after
    [router_confirm_after_drops] policed drops) — the full §4.8
    enforcement chain the attack scenarios exercise. *)
let create ?(policy_for = fun _ -> Cserv.default_policy)
    ?(backend = Backends.All.ntube) ?(router_monitoring = true)
    ?(router_auto_block = false) ?router_confirm_after_drops ?(seed = 42)
    (topo : Topology.t) : t =
  let engine = Net.Engine.create () in
  let clk = Net.Engine.clock engine in
  let nodes = Ids.Asn_tbl.create 64 in
  let seg_db = Segments.discover topo in
  let t = { topo; engine; nodes; seg_db; net = None } in
  Topology.ases topo
  |> List.iter (fun asn ->
         let rng = Random.State.make [| seed; Ids.hash_asn asn |] in
         let cserv =
           Cserv.create ~policy:(policy_for asn) ~rng ~backend ~clock:clk ~topo asn
         in
         let secret = Cserv.hop_secret cserv in
         let router =
           if router_monitoring then
             Router.create
               ~report:(fun ~src -> Cserv.report_misbehavior cserv ~src)
               ~auto_block:router_auto_block
               ?confirm_after_drops:router_confirm_after_drops ~secret
               ~clock:clk asn
           else
             Router.create ~ofd:`None ~duplicates:`None ~secret ~clock:clk asn
         in
         let gateway = Gateway.create ~clock:clk asn in
         Ids.Asn_tbl.replace nodes asn { asn; cserv; gateway; router });
  (* Wire slow-side DRKey fetches to the remote key servers. *)
  Ids.Asn_tbl.iter
    (fun asn n ->
      Cserv.set_fetch_remote_key n.cserv (fun fast ->
          Drkey.Key_server.fetch (Cserv.key_server (cserv t fast)) ~requester:asn))
    nodes;
  t

let seg_db (t : t) = t.seg_db

(* ---------------- Segment-reservation orchestration ---------------- *)

type setup_error = { at : Ids.asn; reason : Protocol.deny_reason }

let pp_setup_error ppf (e : setup_error) =
  Fmt.pf ppf "at %a: %a" Ids.pp_asn e.at Protocol.pp_deny_reason e.reason

(* Walk the forward pass; on success return per-AS grants (path order),
   on failure clean up the ASes already processed. *)
let seg_forward (t : t) ~(req : Protocol.seg_request) ~auth :
    (Bandwidth.t list, setup_error) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (hop : Path.hop) :: rest -> (
        let c = cserv t hop.asn in
        match Cserv.handle_seg_request_forward c ~req ~auth with
        | `Continue bw -> go (bw :: acc) rest
        | `Deny reason ->
            (* Clean up everyone upstream of the refusal. *)
            List.iter
              (fun (h : Path.hop) ->
                if not (Ids.equal_asn h.asn hop.asn) then
                  Cserv.handle_seg_failure (cserv t h.asn) ~req)
              (List.filteri (fun i _ -> i < List.length acc) req.path);
            Error { at = hop.asn; reason })
  in
  go [] req.path

let seg_backward (t : t) ~(req : Protocol.seg_request) ~(final_bw : Bandwidth.t) :
    Protocol.reply_hop list =
  (* Reply travels destination → source (➌ in Fig. 1a); we collect in
     path order for the initiator. *)
  List.rev req.path
  |> List.map (fun (hop : Path.hop) ->
         Cserv.handle_seg_reply_backward (cserv t hop.asn) ~req ~final_bw)
  |> List.rev

(** Set up (or renew, via [renew]) a segment reservation from the first
    AS of [path]. On success the initiator's CServ holds the SegR with
    its Eq. (3) tokens. *)
let setup_segr ?renew (t : t) ~(path : Path.t) ~(kind : Reservation.seg_kind)
    ~(max_bw : Bandwidth.t) ~(min_bw : Bandwidth.t) : (Reservation.segr, string) result
    =
  let src = Path.source path in
  let c = cserv t src in
  match Cserv.make_seg_request c ~path ~kind ~max_bw ~min_bw ~renew with
  | Error e -> Error e
  | Ok (req, auth) -> (
      match seg_forward t ~req ~auth with
      | Error e -> Error (Fmt.str "%a" pp_setup_error e)
      | Ok grants ->
          let final_bw = List.fold_left Bandwidth.min max_bw grants in
          let hops = seg_backward t ~req ~final_bw in
          Cserv.process_seg_reply c ~req ~reply:(Protocol.Granted { final_bw; hops }))

(** Activate the pending version of a SegR at every on-path AS and at
    the initiator (§4.2). *)
let activate_segr (t : t) ~(key : Ids.res_key) : (unit, string) result =
  match Cserv.own_segr (cserv t key.src_as) key with
  | None -> Error "unknown SegR at initiator"
  | Some segr -> (
      let results =
        List.map
          (fun (hop : Path.hop) ->
            Cserv.handle_seg_activation (cserv t hop.asn) ~key)
          segr.path
      in
      match List.find_opt Result.is_error results with
      | Some (Error e) -> Error e
      | _ -> Reservation.activate segr ~now:(now t))
  | exception Not_found -> Error "unknown SegR"

(** Ask [core] (the first AS of a down segment ending at [leaf]) to set
    up a down-SegR — down-SegRs are only created upon explicit request
    by the last AS (§3.3). The resulting SegR is registered at the
    core's CServ with [allowed] and cached at the leaf. *)
let request_down_segr ?(allowed = None) (t : t) ~(path : Path.t)
    ~(max_bw : Bandwidth.t) ~(min_bw : Bandwidth.t) :
    (Reservation.segr, string) result =
  match setup_segr t ~path ~kind:Reservation.Down ~max_bw ~min_bw with
  | Error e -> Error e
  | Ok segr -> (
      let core = Path.source path and leaf = Path.destination path in
      match Cserv.register_segr (cserv t core) ~key:segr.key ~allowed with
      | Error e -> Error e
      | Ok () ->
          (* The leaf caches the description for later lookups. *)
          let descrs = Cserv.registry_query (cserv t core) ~requester:leaf ~dst:leaf in
          Cserv.cache_remote_segrs (cserv t leaf) descrs;
          Ok segr)

(* ---------------- SegR lookup for EER construction ---------------- *)

(** A usable chain of SegRs from [src] to [dst]: the spliced path plus
    the reservation keys in path order. *)
type eer_route = { path : Path.t; segr_keys : Ids.res_key list }

(** Find SegR chains from [src] to [dst] following the hierarchical
    lookup of Appendix C: own up-SegRs locally; down-SegRs from the
    destination AS's CServ cache; core-SegRs from the CServ of the core
    AS where the up segment ends. Results are cached at [src]'s CServ.
    Shortest spliced path first. *)
let lookup_eer_routes (t : t) ~(src : Ids.asn) ~(dst : Ids.asn) : eer_route list =
  let now_ = now t in
  let src_cs = cserv t src in
  let ups = Cserv.own_segr_descrs src_cs ~kind:Reservation.Up ~now:now_ in
  let cores_from (core_src : Ids.asn) (core_dst : Ids.asn) : Cserv.segr_descr list =
    if Ids.equal_asn core_src core_dst then []
    else begin
      let descrs =
        Cserv.own_segr_descrs (cserv t core_src) ~kind:Reservation.Core ~now:now_
        |> List.filter (fun (d : Cserv.segr_descr) ->
               Ids.equal_asn (Path.destination d.path) core_dst)
      in
      Cserv.cache_remote_segrs src_cs descrs;
      descrs
    end
  in
  let downs =
    (* ask the destination AS's CServ (which cached them at creation) *)
    let remote = Cserv.cached_segrs (cserv t dst) ~dst in
    Cserv.cache_remote_segrs src_cs remote;
    List.filter (fun (d : Cserv.segr_descr) -> d.kind = Reservation.Down) remote
  in
  let routes = ref [] in
  let add segs =
    match segs with
    | [] -> ()
    | first :: rest ->
        let path =
          List.fold_left
            (fun acc (d : Cserv.segr_descr) -> Path.join acc d.path)
            (first : Cserv.segr_descr).path rest
        in
        routes :=
          { path; segr_keys = List.map (fun (d : Cserv.segr_descr) -> d.key) segs }
          :: !routes
  in
  let src_is_core = Topology.is_core t.topo src in
  let dst_is_core = Topology.is_core t.topo dst in
  if Ids.equal_asn src dst then []
  else begin
    (* src core → dst core *)
    if src_is_core && dst_is_core then
      cores_from src dst |> List.iter (fun c -> add [ c ]);
    (* src core → leaf: direct down, or core + down *)
    if src_is_core then
      downs
      |> List.iter (fun (d : Cserv.segr_descr) ->
             let head = Path.source d.path in
             if Ids.equal_asn head src then add [ d ]
             else cores_from src head |> List.iter (fun c -> add [ c; d ]));
    (* leaf → dst core: up, or up + core *)
    if dst_is_core then
      ups
      |> List.iter (fun (u : Cserv.segr_descr) ->
             let top = Path.destination u.path in
             if Ids.equal_asn top dst then add [ u ]
             else cores_from top dst |> List.iter (fun c -> add [ u; c ]));
    (* leaf → leaf *)
    if not (src_is_core || dst_is_core) then
      ups
      |> List.iter (fun (u : Cserv.segr_descr) ->
             let top = Path.destination u.path in
             downs
             |> List.iter (fun (d : Cserv.segr_descr) ->
                    let head = Path.source d.path in
                    if Ids.equal_asn top head then add [ u; d ]
                    else cores_from top head |> List.iter (fun c -> add [ u; c; d ])));
    List.sort
      (fun a b -> Int.compare (Path.length a.path) (Path.length b.path))
      !routes
  end

(* ---------------- End-to-end-reservation orchestration ------------- *)

let eer_forward (t : t) ~(req : Protocol.eer_request) ~auth :
    (Bandwidth.t list, setup_error) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (hop : Path.hop) :: rest -> (
        let c = cserv t hop.asn in
        match Cserv.handle_eer_request_forward c ~req ~auth with
        | `Continue bw -> go (bw :: acc) rest
        | `Deny reason ->
            List.iter
              (fun (h : Path.hop) ->
                if not (Ids.equal_asn h.asn hop.asn) then
                  Cserv.handle_eer_failure (cserv t h.asn) ~req)
              (List.filteri (fun i _ -> i < List.length acc) req.path);
            Error { at = hop.asn; reason })
  in
  go [] req.path

let eer_backward (t : t) ~(req : Protocol.eer_request) ~(final_bw : Bandwidth.t) :
    Protocol.reply_hop list =
  List.rev req.path
  |> List.map (fun (hop : Path.hop) ->
         Cserv.handle_eer_reply_backward (cserv t hop.asn) ~req ~final_bw)
  |> List.rev

(** Like {!setup_eer} but also returns the version and the unsealed
    hop authenticators — used by tests and by rogue-gateway attack
    scenarios that install the EER into additional gateways. *)
let setup_eer_full ?renew (t : t) ~(route : eer_route) ~(src_host : Ids.host)
    ~(dst_host : Ids.host) ~(bw : Bandwidth.t) :
    (Reservation.eer * Reservation.version * bytes list, string) result =
  let src = Path.source route.path in
  let c = cserv t src in
  match
    Cserv.make_eer_request c ~path:route.path ~src_host ~dst_host ~bw
      ~segr_keys:route.segr_keys ~renew
  with
  | Error e -> Error e
  | Ok (req, auth) -> (
      match eer_forward t ~req ~auth with
      | Error e ->
          (* A stale cached SegR is invalidated so a retry refetches
             (Appendix C). *)
          (match e.reason with
          | Protocol.Expired_segr k -> Cserv.invalidate_cached_segr c ~key:k
          | _ -> ());
          Error (Fmt.str "%a" pp_setup_error e)
      | Ok grants -> (
          let final_bw = List.fold_left Bandwidth.min bw grants in
          let hops = eer_backward t ~req ~final_bw in
          match
            Cserv.process_eer_reply c ~req ~reply:(Protocol.Granted { final_bw; hops })
          with
          | Error e -> Error e
          | Ok (eer, version, sigmas) -> (
              match Gateway.register (gateway t src) ~eer ~version ~sigmas with
              | Error e -> Error e
              | Ok () -> Ok (eer, version, sigmas))))

(** Set up (or renew) an end-to-end reservation along [route]. On
    success the reservation is installed at the source AS's gateway
    (➎ in Fig. 1b) and ready to carry traffic. *)
let setup_eer ?renew (t : t) ~(route : eer_route) ~(src_host : Ids.host)
    ~(dst_host : Ids.host) ~(bw : Bandwidth.t) : (Reservation.eer, string) result =
  Result.map
    (fun (eer, _, _) -> eer)
    (setup_eer_full ?renew t ~route ~src_host ~dst_host ~bw)

(** Convenience: look up a route and set up an EER over the shortest
    one; tries alternatives on failure (path choice, §2.1). *)
let setup_eer_auto (t : t) ~(src : Ids.asn) ~(src_host : Ids.host) ~(dst : Ids.asn)
    ~(dst_host : Ids.host) ~(bw : Bandwidth.t) : (Reservation.eer, string) result =
  let rec try_routes last_err = function
    | [] ->
        Error
          (Option.value last_err
             ~default:(Fmt.str "no SegR route from %a to %a" Ids.pp_asn src Ids.pp_asn dst))
    | route :: rest -> (
        match setup_eer t ~route ~src_host ~dst_host ~bw with
        | Ok eer -> Ok eer
        | Error e -> try_routes (Some e) rest)
  in
  try_routes None (lookup_eer_routes t ~src ~dst)

(* ---------------- Networked control plane ---------------- *)

(* Everything above this line moves control messages instantaneously —
   right for the admission benchmarks ("disregarding propagation
   delays", §6.1). This section runs the same per-AS handlers over the
   simulated {!Control_net}, with loss, outages, and the
   reliable-request machinery of {!Retry}: requests time out, back off,
   retransmit, and on budget exhaustion the tentative admission state is
   released through the existing [handle_*_failure] paths (the paper's
   cleanup-by-timeout, §3.3). Handler idempotence makes at-least-once
   delivery safe: retransmits of an admitted request are answered from
   the recorded grant. *)

let attach_network ?scheduler ?delay ?faults ?(retry_policy = Retry.default_policy)
    ?(retry_seed = 0x5E77) (t : t) : unit =
  let nreg = Obs.Registry.create () in
  let cnet =
    Control_net.create ?scheduler ?delay ?faults ~registry:nreg ~engine:t.engine
      t.topo
  in
  let retry =
    Retry.create ~policy:retry_policy ~seed:retry_seed ~registry:nreg
      ~engine:t.engine ()
  in
  let c = Obs.Registry.counter nreg in
  t.net <-
    Some
      {
        cnet;
        nfaults = faults;
        retry;
        nreg;
        m_renew_started = c "renewal_started_total";
        m_renew_ok = c "renewal_ok_total";
        m_renew_late = c "renewal_late_total";
        m_renew_degraded = c "renewal_degraded_total";
        m_renew_recovered = c "renewal_recovered_total";
        m_renew_gave_up = c "renewal_gave_up_total";
      }

let network (t : t) : network =
  match t.net with
  | Some n -> n
  | None -> invalid_arg "Deployment: no network attached (call attach_network)"

let network_metrics (t : t) = (network t).nreg
let control_net (t : t) = (network t).cnet
let retrier (t : t) = (network t).retry

(** Is the AS's control service processing requests right now? Always
    true without fault injection. *)
let server_up (t : t) (asn : Ids.asn) : bool =
  match t.net with
  | Some { nfaults = Some f; _ } -> Net.Fault.server_up f ~asn ~now:(now t)
  | _ -> true

(* One reliable request walk: the forward pass processes at each live
   AS and transports hop-by-hop; the last hop starts the backward
   reply walk; a refusal starts a deny walk that releases tentative
   state on its way back to the source. Each transmission attempt is a
   fresh walk; [Retry.complete] arbitrates so exactly one arrival
   concludes the request. A successful walk that loses the race after
   the request was written off re-created admission state — it is torn
   down on the spot (the source's teardown of an unwanted grant). *)
let launch_walk (n : network) (t : t) ~(path : Path.t) ~(cls : Net.Traffic_class.t)
    ~(req_bytes : int) ~(reply_bytes : int)
    ~(forward_at :
       Ids.asn -> [ `Continue of Bandwidth.t | `Deny of Protocol.deny_reason ])
    ~(backward_at : Ids.asn -> final_bw:Bandwidth.t -> Protocol.reply_hop)
    ~(failure_at : Ids.asn -> unit) ~(initial_bw : Bandwidth.t)
    ~(conclude :
       (Protocol.reply_hop list * Bandwidth.t, setup_error) result ->
       ('r, string) result) ~(on_result : ('r, string) result -> unit) : unit =
  let ases = Path.ases path in
  let concluded = ref false in
  let succeeded = ref false in
  let finish r =
    if not !concluded then begin
      concluded := true;
      on_result r
    end
  in
  let handle = ref None in
  let cleanup_all () = List.iter failure_at ases in
  let complete_with outcome =
    match !handle with
    | None -> ()
    | Some h ->
        if Retry.complete n.retry h then begin
          let r = conclude outcome in
          (match (r, outcome) with
          | Ok _, _ -> succeeded := true
          | Error _, Ok _ ->
              (* The walk granted but the source rejected the reply:
                 tear the grant down. *)
              cleanup_all ()
          | Error _, Error _ -> ());
          finish r
        end
        else begin
          (* Late or duplicate arrival. If a successful walk lost the
             race after the request was written off, it just re-created
             admission state: tear it down. *)
          match outcome with
          | Ok _ when not !succeeded -> cleanup_all ()
          | _ -> ()
        end
  in
  let attempt (_attempt : int) =
    (* Backward reply walk; [todo] holds the remaining ASes in
       destination → source order, [acc] collects reply hops ending up
       in path order at the source. *)
    let rec backward acc final_bw = function
      | [] -> ()
      | asn :: rest ->
          if server_up t asn then begin
            let acc = backward_at asn ~final_bw :: acc in
            match rest with
            | [] -> complete_with (Ok (acc, final_bw))
            | next :: _ ->
                Control_net.send_along n.cnet ~route:[ asn; next ] ~cls
                  ~bytes:reply_bytes
                  ~deliver:(fun () -> backward acc final_bw rest)
          end
    in
    (* Deny walk back to the source; [from] holds the message,
       [upstream] are the ASes that granted, nearest first, ending at
       the source. Each releases its tentative state on arrival. *)
    let rec deny_hop ~at ~reason from = function
      | [] -> complete_with (Error { at; reason })
      | next :: rest ->
          Control_net.send_along n.cnet ~route:[ from; next ] ~cls
            ~bytes:reply_bytes
            ~deliver:(fun () ->
              if server_up t next then begin
                failure_at next;
                deny_hop ~at ~reason next rest
              end)
    in
    (* Forward pass; [visited_rev] are the granting ASes nearest
       first. A dead server swallows the message — the retry timer is
       the only recovery. *)
    let rec forward visited_rev grants = function
      | [] -> ()
      | asn :: rest ->
          if server_up t asn then begin
            match forward_at asn with
            | `Deny reason -> deny_hop ~at:asn ~reason asn visited_rev
            | `Continue bw -> (
                let visited_rev = asn :: visited_rev in
                let grants = bw :: grants in
                match rest with
                | [] ->
                    let final_bw = List.fold_left Bandwidth.min initial_bw grants in
                    backward [] final_bw visited_rev
                | next :: _ ->
                    Control_net.send_along n.cnet ~route:[ asn; next ] ~cls
                      ~bytes:req_bytes
                      ~deliver:(fun () -> forward visited_rev grants rest))
          end
    in
    forward [] [] ases
  in
  let h =
    Retry.run n.retry ~send:attempt
      ~on_exhausted:(fun () ->
        (* Budget exhausted: the source cannot know which hops hold
           tentative state, so every on-path AS runs its
           cleanup-by-timeout (§3.3). The handlers are idempotent. *)
        cleanup_all ();
        finish (Error "retry budget exhausted"))
      ()
  in
  handle := Some h

(* Fetch the slow-side DRKeys the source needs to authenticate a
   request towards every on-path AS, over the network with retries —
   one round trip per missing key, sequentially along the path prefix.
   Cached keys and the source itself are skipped. *)
let prefetch_drkeys (n : network) (t : t) ~(src : Ids.asn) ~(ases : Ids.asn list)
    ~(cls : Net.Traffic_class.t) (k : (unit, string) result -> unit) : unit =
  let cache = Cserv.drkey_cache (cserv t src) in
  let route_to target =
    let rec take acc = function
      | [] -> List.rev acc
      | x :: _ when Ids.equal_asn x target -> List.rev (x :: acc)
      | x :: xs -> take (x :: acc) xs
    in
    take [] ases
  in
  let rec next = function
    | [] -> k (Ok ())
    | a :: rest when Ids.equal_asn a src -> next rest
    | a :: rest when Option.is_some (Drkey.Cache.find cache ~fast:a) -> next rest
    | a :: rest ->
        let route = route_to a in
        let handle = ref None in
        let h =
          Retry.run n.retry
            ~send:(fun _ ->
              Control_net.send_along n.cnet ~route ~cls
                ~bytes:Protocol.drkey_request_bytes
                ~deliver:(fun () ->
                  if server_up t a then begin
                    let key =
                      Drkey.Key_server.fetch
                        (Cserv.key_server (cserv t a))
                        ~requester:src
                    in
                    Control_net.send_along n.cnet ~route:(List.rev route) ~cls
                      ~bytes:Protocol.drkey_reply_bytes
                      ~deliver:(fun () ->
                        match !handle with
                        | Some h when Retry.complete n.retry h ->
                            Drkey.Cache.put cache key;
                            next rest
                        | _ -> ())
                  end))
            ~on_exhausted:(fun () ->
              k
                (Error
                   (Fmt.str "DRKey fetch from %a: retry budget exhausted"
                      Ids.pp_asn a)))
            ()
        in
        handle := Some h
  in
  next ases

let protection_class ?protection ~(renewal : bool) () : Net.Traffic_class.t =
  let p =
    match protection with
    | Some p -> p
    | None ->
        (* Renewals travel over the existing reservation (§5.3);
           initial setups use the Appendix-B prioritization. *)
        if renewal then Control_net.Over_reservation
        else Control_net.Prioritized_control
  in
  Control_net.class_of_protection p

(** Networked {!setup_segr}: same handlers, but every message crosses
    the simulated links under the fault model, with retries. The result
    arrives via [on_result] once the engine has run far enough. *)
let setup_segr_net ?renew ?protection (t : t) ~(path : Path.t)
    ~(kind : Reservation.seg_kind) ~(max_bw : Bandwidth.t) ~(min_bw : Bandwidth.t)
    ~(on_result : (Reservation.segr, string) result -> unit) : unit =
  let n = network t in
  let src = Path.source path in
  let c = cserv t src in
  let cls = protection_class ?protection ~renewal:(Option.is_some renew) () in
  prefetch_drkeys n t ~src ~ases:(Path.ases path) ~cls (function
    | Error e -> on_result (Error e)
    | Ok () -> (
        match Cserv.make_seg_request c ~path ~kind ~max_bw ~min_bw ~renew with
        | Error e -> on_result (Error e)
        | Ok (req, auth) ->
            launch_walk n t ~path ~cls
              ~req_bytes:(Protocol.seg_request_bytes req)
              ~reply_bytes:(Protocol.reply_bytes ~hops:(Path.length path))
              ~forward_at:(fun asn ->
                Cserv.handle_seg_request_forward (cserv t asn) ~req ~auth)
              ~backward_at:(fun asn ~final_bw ->
                Cserv.handle_seg_reply_backward (cserv t asn) ~req ~final_bw)
              ~failure_at:(fun asn -> Cserv.handle_seg_failure (cserv t asn) ~req)
              ~initial_bw:max_bw
              ~conclude:(function
                | Error e -> Error (Fmt.str "%a" pp_setup_error e)
                | Ok (hops, final_bw) ->
                    Cserv.process_seg_reply c ~req
                      ~reply:(Protocol.Granted { final_bw; hops }))
              ~on_result))

(** Networked {!setup_eer_full}; the reservation is installed at the
    source gateway before [on_result] fires. *)
let setup_eer_net ?renew ?protection (t : t) ~(route : eer_route)
    ~(src_host : Ids.host) ~(dst_host : Ids.host) ~(bw : Bandwidth.t)
    ~(on_result : (Reservation.eer, string) result -> unit) : unit =
  let n = network t in
  let src = Path.source route.path in
  let c = cserv t src in
  let cls = protection_class ?protection ~renewal:(Option.is_some renew) () in
  prefetch_drkeys n t ~src ~ases:(Path.ases route.path) ~cls (function
    | Error e -> on_result (Error e)
    | Ok () -> (
        match
          Cserv.make_eer_request c ~path:route.path ~src_host ~dst_host ~bw
            ~segr_keys:route.segr_keys ~renew
        with
        | Error e -> on_result (Error e)
        | Ok (req, auth) ->
            launch_walk n t ~path:route.path ~cls
              ~req_bytes:(Protocol.eer_request_bytes req)
              ~reply_bytes:(Protocol.reply_bytes ~hops:(Path.length route.path))
              ~forward_at:(fun asn ->
                Cserv.handle_eer_request_forward (cserv t asn) ~req ~auth)
              ~backward_at:(fun asn ~final_bw ->
                Cserv.handle_eer_reply_backward (cserv t asn) ~req ~final_bw)
              ~failure_at:(fun asn -> Cserv.handle_eer_failure (cserv t asn) ~req)
              ~initial_bw:bw
              ~conclude:(function
                | Error e ->
                    (* A stale cached SegR is invalidated so a retry
                       refetches (Appendix C). *)
                    (match e.reason with
                    | Protocol.Expired_segr k -> Cserv.invalidate_cached_segr c ~key:k
                    | _ -> ());
                    Error (Fmt.str "%a" pp_setup_error e)
                | Ok (hops, final_bw) -> (
                    match
                      Cserv.process_eer_reply c ~req
                        ~reply:(Protocol.Granted { final_bw; hops })
                    with
                    | Error e -> Error e
                    | Ok (eer, version, sigmas) -> (
                        match
                          Gateway.register (gateway t src) ~eer ~version ~sigmas
                        with
                        | Error e -> Error e
                        | Ok () -> Ok eer)))
              ~on_result))

(* Drive the engine until a networked operation concludes. *)
let run_until_result (t : t) ~(timeout : float)
    (result : ('a, string) result option ref) : ('a, string) result =
  let deadline = now t +. timeout in
  let rec loop () =
    match !result with
    | Some r -> r
    | None ->
        if now t >= deadline then Error "networked operation timed out"
        else if Net.Engine.step t.engine then loop ()
        else Error "networked operation never concluded (engine drained)"
  in
  loop ()

(** Blocking convenience over {!setup_segr_net}: runs the engine until
    the walk concludes (at most [timeout] simulated seconds). *)
let setup_segr_sync ?renew ?protection ?(timeout = 120.) (t : t) ~(path : Path.t)
    ~(kind : Reservation.seg_kind) ~(max_bw : Bandwidth.t) ~(min_bw : Bandwidth.t) :
    (Reservation.segr, string) result =
  let result = ref None in
  setup_segr_net ?renew ?protection t ~path ~kind ~max_bw ~min_bw
    ~on_result:(fun r -> result := Some r);
  run_until_result t ~timeout result

(** Blocking convenience over {!setup_eer_net}. *)
let setup_eer_sync ?renew ?protection ?(timeout = 120.) (t : t) ~(route : eer_route)
    ~(src_host : Ids.host) ~(dst_host : Ids.host) ~(bw : Bandwidth.t) :
    (Reservation.eer, string) result =
  let result = ref None in
  setup_eer_net ?renew ?protection t ~route ~src_host ~dst_host ~bw
    ~on_result:(fun r -> result := Some r);
  run_until_result t ~timeout result

(* ---------------- Renewal before expiry ---------------- *)

(* The renewal state machine (§4.2 + §5.3): a managed reservation is
   renewed over itself at a configurable fraction of its lifetime; on
   failure it retries while the reservation is still valid, and once it
   lapses it degrades to a best-effort fresh setup (new res_id, so the
   managed key changes). After [max_recovery_failures] consecutive
   failed recoveries the machine gives up. Every outcome is counted in
   the network registry. *)

type managed = {
  mutable mkey : Ids.res_key;
  origin :
    [ `Segr of Reservation.seg_kind * Path.t * Bandwidth.t * Bandwidth.t
    | `Eer of eer_route * Ids.host * Ids.host * Bandwidth.t ];
  fraction : float; (* of the lifetime elapsed when renewal starts *)
  mutable stopped : bool;
  mutable failures : int; (* consecutive, reset on any success *)
}

let managed_key (m : managed) = m.mkey
let stop_renewal (m : managed) = m.stopped <- true

let max_recovery_failures = 5
let recovery_backoff failures = Float.min 8. (0.5 *. (2. ** float_of_int failures))

(* Current expiry of the managed reservation at its source, [None] when
   it is gone or never activated. *)
let managed_expiry (t : t) (m : managed) : Timebase.t option =
  match m.origin with
  | `Segr _ -> (
      match Cserv.own_segr (cserv t m.mkey.src_as) m.mkey with
      | Some s -> Option.map (fun (v : Reservation.version) -> v.exp_time) s.active
      | None -> None)
  | `Eer _ -> (
      match Cserv.own_eer (cserv t m.mkey.src_as) m.mkey with
      | Some e ->
          List.fold_left
            (fun acc (v : Reservation.version) ->
              match acc with
              | None -> Some v.exp_time
              | Some x -> Some (Float.max x v.exp_time))
            None
            (Reservation.eer_valid_versions e ~now:(now t))
      | None -> None)

let lifetime_of (m : managed) =
  match m.origin with
  | `Segr _ -> Reservation.segr_lifetime
  | `Eer _ -> Reservation.eer_lifetime

(* Renew over the existing reservation; on a lapse, degrade to a fresh
   best-effort setup under the new key. *)
let rec renew_cycle (t : t) (m : managed) : unit =
  let n = network t in
  if m.stopped then ()
  else begin
    Obs.Counter.incr n.m_renew_started;
    let old_exp = managed_expiry t m in
    let lapsed =
      match old_exp with None -> true | Some e -> now t >= e
    in
    if lapsed then degrade t m
    else
      let on_result = function
        | Ok () ->
            m.failures <- 0;
            let late =
              match old_exp with Some e -> now t >= e | None -> true
            in
            Obs.Counter.incr (if late then n.m_renew_late else n.m_renew_ok);
            schedule_next t m
        | Error _ ->
            m.failures <- m.failures + 1;
            let still_valid =
              match managed_expiry t m with Some e -> now t < e | None -> false
            in
            if still_valid then
              (* Retry soon, capped, while the reservation lives. *)
              Net.Engine.schedule t.engine ~delay:(recovery_backoff m.failures)
                (fun () -> renew_cycle t m)
            else degrade t m
      in
      match m.origin with
      | `Segr (kind, path, max_bw, min_bw) ->
          setup_segr_net ~renew:m.mkey t ~path ~kind ~max_bw ~min_bw
            ~on_result:(fun r ->
              match r with
              | Error e -> on_result (Error e)
              | Ok segr ->
                  (* Renewals leave the new version pending (§4.2);
                     activation is instantaneous here — the activation
                     message rides the reservation itself and is not
                     part of the modeled failure surface. *)
                  on_result
                    (Result.map (fun () -> ()) (activate_segr t ~key:segr.key)))
      | `Eer (route, src_host, dst_host, bw) ->
          setup_eer_net ~renew:m.mkey t ~route ~src_host ~dst_host ~bw
            ~on_result:(fun r -> on_result (Result.map (fun _ -> ()) r))
  end

(* The reservation lapsed: best-effort re-setup under a fresh res_id. *)
and degrade (t : t) (m : managed) : unit =
  let n = network t in
  if m.stopped then ()
  else begin
    Obs.Counter.incr n.m_renew_degraded;
    let on_result = function
      | Ok (key : Ids.res_key) ->
          m.mkey <- key;
          m.failures <- 0;
          Obs.Counter.incr n.m_renew_recovered;
          schedule_next t m
      | Error _ ->
          m.failures <- m.failures + 1;
          if m.failures > max_recovery_failures then begin
            Obs.Counter.incr n.m_renew_gave_up;
            m.stopped <- true
          end
          else
            Net.Engine.schedule t.engine ~delay:(recovery_backoff m.failures)
              (fun () -> degrade t m)
    in
    match m.origin with
    | `Segr (kind, path, max_bw, min_bw) ->
        setup_segr_net ~protection:Control_net.Prioritized_control t ~path ~kind
          ~max_bw ~min_bw
          ~on_result:(fun r ->
            on_result (Result.map (fun (s : Reservation.segr) -> s.key) r))
    | `Eer (route, src_host, dst_host, bw) ->
        setup_eer_net ~protection:Control_net.Prioritized_control t ~route
          ~src_host ~dst_host ~bw
          ~on_result:(fun r ->
            on_result (Result.map (fun (e : Reservation.eer) -> e.key) r))
  end

and schedule_next (t : t) (m : managed) : unit =
  if m.stopped then ()
  else
    match managed_expiry t m with
    | None ->
        (* Nothing valid to renew over anymore. *)
        Net.Engine.schedule t.engine ~delay:0. (fun () -> degrade t m)
    | Some exp ->
        let at = exp -. ((1. -. m.fraction) *. lifetime_of m) in
        if at <= now t then
          Net.Engine.schedule t.engine ~delay:0. (fun () -> renew_cycle t m)
        else Net.Engine.schedule_at t.engine ~time:at (fun () -> renew_cycle t m)

(** Keep a SegR alive: renew it over itself once [fraction] of its
    lifetime has elapsed, degrade to a fresh setup when it lapses.
    [max_bw]/[min_bw] are reused for renewals and recoveries. *)
let auto_renew_segr ?(fraction = 0.7) (t : t) ~(key : Ids.res_key)
    ~(max_bw : Bandwidth.t) ~(min_bw : Bandwidth.t) : (managed, string) result =
  if fraction <= 0. || fraction >= 1. then
    invalid_arg "Deployment.auto_renew_segr: fraction outside (0,1)";
  match Cserv.own_segr (cserv t key.src_as) key with
  | None -> Error "auto_renew_segr: unknown SegR at initiator"
  | Some s ->
      let m =
        {
          mkey = key;
          origin = `Segr (s.kind, s.path, max_bw, min_bw);
          fraction;
          stopped = false;
          failures = 0;
        }
      in
      schedule_next t m;
      Ok m

(** Keep an EER alive by renewing before each 16 s version expires
    (§4.2: versions overlap, so traffic never stalls while the renewal
    is in flight). *)
let auto_renew_eer ?(fraction = 0.5) (t : t) ~(key : Ids.res_key)
    ~(route : eer_route) ~(src_host : Ids.host) ~(dst_host : Ids.host)
    ~(bw : Bandwidth.t) : (managed, string) result =
  if fraction <= 0. || fraction >= 1. then
    invalid_arg "Deployment.auto_renew_eer: fraction outside (0,1)";
  match Cserv.own_eer (cserv t key.src_as) key with
  | None -> Error "auto_renew_eer: unknown EER at initiator"
  | Some _ ->
      let m =
        {
          mkey = key;
          origin = `Eer (route, src_host, dst_host, bw);
          fraction;
          stopped = false;
          failures = 0;
        }
      in
      schedule_next t m;
      Ok m

(** Audit every AS's admission state; [[]] means no AS leaks. *)
let audit_all (t : t) : string list =
  Ids.Asn_tbl.fold (fun _ n acc -> Cserv.audit n.cserv @ acc) t.nodes []

(* ---------------- Data plane ---------------- *)

type delivery = {
  delivered : bool;
  dropped_at : (Ids.asn * Router.drop_reason) option;
  hops_traversed : int;
}

(** Send one data packet over an EER: gateway processing at the source
    AS, then parse+validate+forward at every border router on the path
    (Fig. 1c). Returns where the packet ended up. *)
let send_data (t : t) ~(src : Ids.asn) ~(res_id : Ids.res_id) ~(payload_len : int) :
    (delivery, Gateway.drop_reason) result =
  match Gateway.send (gateway t src) ~res_id ~payload_len with
  | Error e -> Error e
  | Ok (packet, _egress) ->
      let raw = Packet.to_bytes packet in
      let rec walk hops = function
        | [] -> Ok { delivered = true; dropped_at = None; hops_traversed = hops }
        | (hop : Path.hop) :: rest -> (
            match Router.process_bytes (router t hop.asn) ~raw ~payload_len with
            | Ok (Router.Forward _) -> walk (hops + 1) rest
            | Ok (Router.Deliver _) ->
                Ok { delivered = true; dropped_at = None; hops_traversed = hops + 1 }
            | Ok Router.To_cserv ->
                Ok { delivered = true; dropped_at = None; hops_traversed = hops + 1 }
            | Error reason ->
                Ok
                  {
                    delivered = false;
                    dropped_at = Some (hop.asn, reason);
                    hops_traversed = hops;
                  })
      in
      walk 0 packet.path

(** Advance simulated time. *)
let advance (t : t) (dt : float) = Net.Engine.run t.engine ~until:(now t +. dt)
