(** A full simulated Colibri deployment: one CServ, gateway, and
    border router per AS of a topology, wired together with DRKey key
    servers and a shared clock.

    This module is the orchestration layer that moves control-plane
    requests hop-by-hop along reservation paths (Fig. 1a/1b) and data
    packets through the chain of border routers (Fig. 1c). It is what
    the examples and integration tests drive; the per-AS components it
    glues together are individually testable and benchmarkable. *)

open Colibri_types
open Colibri_topology

type as_node = {
  asn : Ids.asn;
  cserv : Cserv.t;
  gateway : Gateway.t;
  router : Router.t;
}

type t = {
  topo : Topology.t;
  engine : Net.Engine.t;
  nodes : as_node Ids.Asn_tbl.t;
  seg_db : Segments.Db.t; (* path segments from beaconing *)
}

let clock (t : t) : Timebase.clock = Net.Engine.clock t.engine
let now (t : t) : Timebase.t = Net.Engine.now t.engine
let engine (t : t) = t.engine
let topology (t : t) = t.topo

let node (t : t) (asn : Ids.asn) : as_node =
  match Ids.Asn_tbl.find_opt t.nodes asn with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Deployment.node: unknown AS %a" Ids.pp_asn asn)

let cserv (t : t) asn = (node t asn).cserv
let gateway (t : t) asn = (node t asn).gateway
let router (t : t) asn = (node t asn).router

(** Build a deployment over [topo]. [policy_for] customizes per-AS EER
    policies; [router_monitoring = false] builds bare-fast-path routers
    (no OFD / duplicate filter), as used by the speed benchmarks. *)
let create ?(policy_for = fun _ -> Cserv.default_policy) ?(router_monitoring = true)
    ?(seed = 42) (topo : Topology.t) : t =
  let engine = Net.Engine.create () in
  let clk = Net.Engine.clock engine in
  let nodes = Ids.Asn_tbl.create 64 in
  let seg_db = Segments.discover topo in
  let t = { topo; engine; nodes; seg_db } in
  Topology.ases topo
  |> List.iter (fun asn ->
         let rng = Random.State.make [| seed; Ids.hash_asn asn |] in
         let cserv =
           Cserv.create ~policy:(policy_for asn) ~rng ~clock:clk ~topo asn
         in
         let secret = Cserv.hop_secret cserv in
         let router =
           if router_monitoring then
             Router.create
               ~report:(fun ~src -> Cserv.report_misbehavior cserv ~src)
               ~secret ~clock:clk asn
           else
             Router.create ~ofd:`None ~duplicates:`None ~secret ~clock:clk asn
         in
         let gateway = Gateway.create ~clock:clk asn in
         Ids.Asn_tbl.replace nodes asn { asn; cserv; gateway; router });
  (* Wire slow-side DRKey fetches to the remote key servers. *)
  Ids.Asn_tbl.iter
    (fun asn n ->
      Cserv.set_fetch_remote_key n.cserv (fun fast ->
          Drkey.Key_server.fetch (Cserv.key_server (cserv t fast)) ~requester:asn))
    nodes;
  t

let seg_db (t : t) = t.seg_db

(* ---------------- Segment-reservation orchestration ---------------- *)

type setup_error = { at : Ids.asn; reason : Protocol.deny_reason }

let pp_setup_error ppf (e : setup_error) =
  Fmt.pf ppf "at %a: %a" Ids.pp_asn e.at Protocol.pp_deny_reason e.reason

(* Walk the forward pass; on success return per-AS grants (path order),
   on failure clean up the ASes already processed. *)
let seg_forward (t : t) ~(req : Protocol.seg_request) ~auth :
    (Bandwidth.t list, setup_error) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (hop : Path.hop) :: rest -> (
        let c = cserv t hop.asn in
        match Cserv.handle_seg_request_forward c ~req ~auth with
        | `Continue bw -> go (bw :: acc) rest
        | `Deny reason ->
            (* Clean up everyone upstream of the refusal. *)
            List.iter
              (fun (h : Path.hop) ->
                if not (Ids.equal_asn h.asn hop.asn) then
                  Cserv.handle_seg_failure (cserv t h.asn) ~req)
              (List.filteri (fun i _ -> i < List.length acc) req.path);
            Error { at = hop.asn; reason })
  in
  go [] req.path

let seg_backward (t : t) ~(req : Protocol.seg_request) ~(final_bw : Bandwidth.t) :
    Protocol.reply_hop list =
  (* Reply travels destination → source (➌ in Fig. 1a); we collect in
     path order for the initiator. *)
  List.rev req.path
  |> List.map (fun (hop : Path.hop) ->
         Cserv.handle_seg_reply_backward (cserv t hop.asn) ~req ~final_bw)
  |> List.rev

(** Set up (or renew, via [renew]) a segment reservation from the first
    AS of [path]. On success the initiator's CServ holds the SegR with
    its Eq. (3) tokens. *)
let setup_segr ?renew (t : t) ~(path : Path.t) ~(kind : Reservation.seg_kind)
    ~(max_bw : Bandwidth.t) ~(min_bw : Bandwidth.t) : (Reservation.segr, string) result
    =
  let src = Path.source path in
  let c = cserv t src in
  match Cserv.make_seg_request c ~path ~kind ~max_bw ~min_bw ~renew with
  | Error e -> Error e
  | Ok (req, auth) -> (
      match seg_forward t ~req ~auth with
      | Error e -> Error (Fmt.str "%a" pp_setup_error e)
      | Ok grants ->
          let final_bw = List.fold_left Bandwidth.min max_bw grants in
          let hops = seg_backward t ~req ~final_bw in
          Cserv.process_seg_reply c ~req ~reply:(Protocol.Granted { final_bw; hops }))

(** Activate the pending version of a SegR at every on-path AS and at
    the initiator (§4.2). *)
let activate_segr (t : t) ~(key : Ids.res_key) : (unit, string) result =
  match Cserv.own_segr (cserv t key.src_as) key with
  | None -> Error "unknown SegR at initiator"
  | Some segr -> (
      let results =
        List.map
          (fun (hop : Path.hop) ->
            Cserv.handle_seg_activation (cserv t hop.asn) ~key)
          segr.path
      in
      match List.find_opt Result.is_error results with
      | Some (Error e) -> Error e
      | _ -> Reservation.activate segr ~now:(now t))
  | exception Not_found -> Error "unknown SegR"

(** Ask [core] (the first AS of a down segment ending at [leaf]) to set
    up a down-SegR — down-SegRs are only created upon explicit request
    by the last AS (§3.3). The resulting SegR is registered at the
    core's CServ with [allowed] and cached at the leaf. *)
let request_down_segr ?(allowed = None) (t : t) ~(path : Path.t)
    ~(max_bw : Bandwidth.t) ~(min_bw : Bandwidth.t) :
    (Reservation.segr, string) result =
  match setup_segr t ~path ~kind:Reservation.Down ~max_bw ~min_bw with
  | Error e -> Error e
  | Ok segr -> (
      let core = Path.source path and leaf = Path.destination path in
      match Cserv.register_segr (cserv t core) ~key:segr.key ~allowed with
      | Error e -> Error e
      | Ok () ->
          (* The leaf caches the description for later lookups. *)
          let descrs = Cserv.registry_query (cserv t core) ~requester:leaf ~dst:leaf in
          Cserv.cache_remote_segrs (cserv t leaf) descrs;
          Ok segr)

(* ---------------- SegR lookup for EER construction ---------------- *)

(** A usable chain of SegRs from [src] to [dst]: the spliced path plus
    the reservation keys in path order. *)
type eer_route = { path : Path.t; segr_keys : Ids.res_key list }

(** Find SegR chains from [src] to [dst] following the hierarchical
    lookup of Appendix C: own up-SegRs locally; down-SegRs from the
    destination AS's CServ cache; core-SegRs from the CServ of the core
    AS where the up segment ends. Results are cached at [src]'s CServ.
    Shortest spliced path first. *)
let lookup_eer_routes (t : t) ~(src : Ids.asn) ~(dst : Ids.asn) : eer_route list =
  let now_ = now t in
  let src_cs = cserv t src in
  let ups = Cserv.own_segr_descrs src_cs ~kind:Reservation.Up ~now:now_ in
  let cores_from (core_src : Ids.asn) (core_dst : Ids.asn) : Cserv.segr_descr list =
    if Ids.equal_asn core_src core_dst then []
    else begin
      let descrs =
        Cserv.own_segr_descrs (cserv t core_src) ~kind:Reservation.Core ~now:now_
        |> List.filter (fun (d : Cserv.segr_descr) ->
               Ids.equal_asn (Path.destination d.path) core_dst)
      in
      Cserv.cache_remote_segrs src_cs descrs;
      descrs
    end
  in
  let downs =
    (* ask the destination AS's CServ (which cached them at creation) *)
    let remote = Cserv.cached_segrs (cserv t dst) ~dst in
    Cserv.cache_remote_segrs src_cs remote;
    List.filter (fun (d : Cserv.segr_descr) -> d.kind = Reservation.Down) remote
  in
  let routes = ref [] in
  let add segs =
    match segs with
    | [] -> ()
    | first :: rest ->
        let path =
          List.fold_left
            (fun acc (d : Cserv.segr_descr) -> Path.join acc d.path)
            (first : Cserv.segr_descr).path rest
        in
        routes :=
          { path; segr_keys = List.map (fun (d : Cserv.segr_descr) -> d.key) segs }
          :: !routes
  in
  let src_is_core = Topology.is_core t.topo src in
  let dst_is_core = Topology.is_core t.topo dst in
  if Ids.equal_asn src dst then []
  else begin
    (* src core → dst core *)
    if src_is_core && dst_is_core then
      cores_from src dst |> List.iter (fun c -> add [ c ]);
    (* src core → leaf: direct down, or core + down *)
    if src_is_core then
      downs
      |> List.iter (fun (d : Cserv.segr_descr) ->
             let head = Path.source d.path in
             if Ids.equal_asn head src then add [ d ]
             else cores_from src head |> List.iter (fun c -> add [ c; d ]));
    (* leaf → dst core: up, or up + core *)
    if dst_is_core then
      ups
      |> List.iter (fun (u : Cserv.segr_descr) ->
             let top = Path.destination u.path in
             if Ids.equal_asn top dst then add [ u ]
             else cores_from top dst |> List.iter (fun c -> add [ u; c ]));
    (* leaf → leaf *)
    if not (src_is_core || dst_is_core) then
      ups
      |> List.iter (fun (u : Cserv.segr_descr) ->
             let top = Path.destination u.path in
             downs
             |> List.iter (fun (d : Cserv.segr_descr) ->
                    let head = Path.source d.path in
                    if Ids.equal_asn top head then add [ u; d ]
                    else cores_from top head |> List.iter (fun c -> add [ u; c; d ])));
    List.sort
      (fun a b -> Int.compare (Path.length a.path) (Path.length b.path))
      !routes
  end

(* ---------------- End-to-end-reservation orchestration ------------- *)

let eer_forward (t : t) ~(req : Protocol.eer_request) ~auth :
    (Bandwidth.t list, setup_error) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (hop : Path.hop) :: rest -> (
        let c = cserv t hop.asn in
        match Cserv.handle_eer_request_forward c ~req ~auth with
        | `Continue bw -> go (bw :: acc) rest
        | `Deny reason ->
            List.iter
              (fun (h : Path.hop) ->
                if not (Ids.equal_asn h.asn hop.asn) then
                  Cserv.handle_eer_failure (cserv t h.asn) ~req)
              (List.filteri (fun i _ -> i < List.length acc) req.path);
            Error { at = hop.asn; reason })
  in
  go [] req.path

let eer_backward (t : t) ~(req : Protocol.eer_request) ~(final_bw : Bandwidth.t) :
    Protocol.reply_hop list =
  List.rev req.path
  |> List.map (fun (hop : Path.hop) ->
         Cserv.handle_eer_reply_backward (cserv t hop.asn) ~req ~final_bw)
  |> List.rev

(** Like {!setup_eer} but also returns the version and the unsealed
    hop authenticators — used by tests and by rogue-gateway attack
    scenarios that install the EER into additional gateways. *)
let setup_eer_full ?renew (t : t) ~(route : eer_route) ~(src_host : Ids.host)
    ~(dst_host : Ids.host) ~(bw : Bandwidth.t) :
    (Reservation.eer * Reservation.version * bytes list, string) result =
  let src = Path.source route.path in
  let c = cserv t src in
  match
    Cserv.make_eer_request c ~path:route.path ~src_host ~dst_host ~bw
      ~segr_keys:route.segr_keys ~renew
  with
  | Error e -> Error e
  | Ok (req, auth) -> (
      match eer_forward t ~req ~auth with
      | Error e ->
          (* A stale cached SegR is invalidated so a retry refetches
             (Appendix C). *)
          (match e.reason with
          | Protocol.Expired_segr k -> Cserv.invalidate_cached_segr c ~key:k
          | _ -> ());
          Error (Fmt.str "%a" pp_setup_error e)
      | Ok grants -> (
          let final_bw = List.fold_left Bandwidth.min bw grants in
          let hops = eer_backward t ~req ~final_bw in
          match
            Cserv.process_eer_reply c ~req ~reply:(Protocol.Granted { final_bw; hops })
          with
          | Error e -> Error e
          | Ok (eer, version, sigmas) -> (
              match Gateway.register (gateway t src) ~eer ~version ~sigmas with
              | Error e -> Error e
              | Ok () -> Ok (eer, version, sigmas))))

(** Set up (or renew) an end-to-end reservation along [route]. On
    success the reservation is installed at the source AS's gateway
    (➎ in Fig. 1b) and ready to carry traffic. *)
let setup_eer ?renew (t : t) ~(route : eer_route) ~(src_host : Ids.host)
    ~(dst_host : Ids.host) ~(bw : Bandwidth.t) : (Reservation.eer, string) result =
  Result.map
    (fun (eer, _, _) -> eer)
    (setup_eer_full ?renew t ~route ~src_host ~dst_host ~bw)

(** Convenience: look up a route and set up an EER over the shortest
    one; tries alternatives on failure (path choice, §2.1). *)
let setup_eer_auto (t : t) ~(src : Ids.asn) ~(src_host : Ids.host) ~(dst : Ids.asn)
    ~(dst_host : Ids.host) ~(bw : Bandwidth.t) : (Reservation.eer, string) result =
  let rec try_routes last_err = function
    | [] ->
        Error
          (Option.value last_err
             ~default:(Fmt.str "no SegR route from %a to %a" Ids.pp_asn src Ids.pp_asn dst))
    | route :: rest -> (
        match setup_eer t ~route ~src_host ~dst_host ~bw with
        | Ok eer -> Ok eer
        | Error e -> try_routes (Some e) rest)
  in
  try_routes None (lookup_eer_routes t ~src ~dst)

(* ---------------- Data plane ---------------- *)

type delivery = {
  delivered : bool;
  dropped_at : (Ids.asn * Router.drop_reason) option;
  hops_traversed : int;
}

(** Send one data packet over an EER: gateway processing at the source
    AS, then parse+validate+forward at every border router on the path
    (Fig. 1c). Returns where the packet ended up. *)
let send_data (t : t) ~(src : Ids.asn) ~(res_id : Ids.res_id) ~(payload_len : int) :
    (delivery, Gateway.drop_reason) result =
  match Gateway.send (gateway t src) ~res_id ~payload_len with
  | Error e -> Error e
  | Ok (packet, _egress) ->
      let raw = Packet.to_bytes packet in
      let rec walk hops = function
        | [] -> Ok { delivered = true; dropped_at = None; hops_traversed = hops }
        | (hop : Path.hop) :: rest -> (
            match Router.process_bytes (router t hop.asn) ~raw ~payload_len with
            | Ok (Router.Forward _) -> walk (hops + 1) rest
            | Ok (Router.Deliver _) ->
                Ok { delivered = true; dropped_at = None; hops_traversed = hops + 1 }
            | Ok Router.To_cserv ->
                Ok { delivered = true; dropped_at = None; hops_traversed = hops + 1 }
            | Error reason ->
                Ok
                  {
                    delivered = false;
                    dropped_at = Some (hop.asn, reason);
                    hops_traversed = hops;
                  })
      in
      walk 0 packet.path

(** Advance simulated time. *)
let advance (t : t) (dt : float) = Net.Engine.run t.engine ~until:(now t +. dt)
