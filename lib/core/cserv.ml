(** The Colibri service (CServ, §3.2): one per AS, handling all
    control-plane tasks — admission of SegRs and EERs, renewal and
    activation, bookkeeping of reservations traversing the AS, the
    registry and caching of shareable SegRs (Appendix C), and the
    DRKey-based authentication of every control-plane message (§4.5).

    The CServ is deliberately transport-agnostic: forward/backward
    handlers process one hop of a request, and an orchestration layer
    ({!Deployment}) moves messages between ASes. This mirrors the
    paper's evaluation, which measures the admission processing time
    inside a single service, "disregarding propagation delays" (§6.1). *)

open Colibri_types
open Colibri_topology
module Backend = Backends.Backend_intf

type role = Source | Transit | Transfer | Destination
(** AS types for EER processing (§4.1). *)

(** Intra-AS admission policy for EERs (§4.7): source and destination
    ASes have the business relationship with their hosts and are free
    to define local rules. *)
type policy = {
  max_eer_bw : Bandwidth.t; (* per-EER cap for own customers *)
  accept_outgoing : Packet.eer_info -> Bandwidth.t -> bool;
  accept_incoming : Packet.eer_info -> Bandwidth.t -> bool;
      (* destination-side acceptance, standing in for the host's
         explicit accept (§4.4) *)
}

let default_policy =
  {
    max_eer_bw = Bandwidth.of_gbps 10.;
    accept_outgoing = (fun _ _ -> true);
    accept_incoming = (fun _ _ -> true);
  }

(** A SegR as known to an on-path AS, with its local hop. *)
type transit_segr = {
  segr : Reservation.segr;
  ingress : Ids.iface;
  egress : Ids.iface;
}

(** Public description of a registered SegR, as returned by registry
    lookups (Appendix C). *)
type segr_descr = {
  key : Ids.res_key;
  kind : Reservation.seg_kind;
  path : Path.t;
  bw : Bandwidth.t;
  exp_time : Timebase.t;
}

(* Admission-outcome accounting (DESIGN.md §7): grants and denials per
   reservation class, plus a per-source-AS denial family over the keyed
   Ids tables. Every family carries a [backend] label so snapshots
   split outcomes per admission discipline (DESIGN.md §12). *)
type metrics = {
  m_seg_granted : Obs.Counter.t;
  m_seg_denied : Obs.Counter.t;
  m_eer_granted : Obs.Counter.t;
  m_eer_denied : Obs.Counter.t;
  m_misbehavior : Obs.Counter.t;
  m_denied_by_src : Obs.Asn_counters.t;
}

type t = {
  asn : Ids.asn;
  clock : Timebase.clock;
  key_server : Drkey.Key_server.t;
  drkey_cache : Drkey.Cache.t;
  mutable fetch_remote_key : Ids.asn -> Drkey.as_key;
      (* round trip to the fast AS's key server; wired by the deployment *)
  backend : Backend.instance; (* the pluggable admission discipline *)
  transit_segrs : transit_segr Ids.Res_key_tbl.t;
  own_segrs : Reservation.segr Ids.Res_key_tbl.t;
  own_eers : Reservation.eer Ids.Res_key_tbl.t;
  registry : segr_descr list Ids.Asn_tbl.t; (* local + cached remote, by segr dst *)
  registry_whitelist : Ids.Asn_set.t option Ids.Res_key_tbl.t;
  mutable next_res_id : int;
  renewal_last : Timebase.t Ids.Res_key_tbl.t; (* renewal rate limiting *)
  renewal_min_interval : Timebase.t;
  policy : policy;
  mutable denied_sources : Ids.Asn_set.t;
      (* source ASes with confirmed misbehavior: future reservations
         refused (§4.8 "Policing") *)
  obs : Obs.Registry.t;
  metrics : metrics;
}

let create ?(policy = default_policy) ?(renewal_min_interval = 1.0) ?rng
    ?(registry = Obs.Registry.create ()) ?(backend = Backends.All.ntube)
    ~(clock : Timebase.clock) ~(topo : Topology.t) (asn : Ids.asn) : t =
  let key_server = Drkey.Key_server.create ?rng ~clock asn in
  let backend =
    backend.Backend.make
      ~capacity:(fun iface -> Topology.egress_capacity topo asn iface)
      ()
  in
  let bl = [ ("backend", Backend.name backend) ] in
  let metrics =
    {
      m_seg_granted =
        Obs.Registry.counter registry (Obs.labeled "cserv_seg_granted_total" bl);
      m_seg_denied =
        Obs.Registry.counter registry (Obs.labeled "cserv_seg_denied_total" bl);
      m_eer_granted =
        Obs.Registry.counter registry (Obs.labeled "cserv_eer_granted_total" bl);
      m_eer_denied =
        Obs.Registry.counter registry (Obs.labeled "cserv_eer_denied_total" bl);
      m_misbehavior =
        Obs.Registry.counter registry
          (Obs.labeled "cserv_misbehavior_reports_total" bl);
      m_denied_by_src =
        Obs.Asn_counters.create ~extra:bl registry ~name:"cserv_denied_total"
          ~label:"src_as";
    }
  in
  {
    asn;
    clock;
    key_server;
    drkey_cache = Drkey.Cache.create ~clock asn;
    fetch_remote_key =
      (fun _ -> failwith "Cserv.fetch_remote_key: not wired to a deployment");
    backend;
    transit_segrs = Ids.Res_key_tbl.create 1024;
    own_segrs = Ids.Res_key_tbl.create 64;
    own_eers = Ids.Res_key_tbl.create 256;
    registry = Ids.Asn_tbl.create 64;
    registry_whitelist = Ids.Res_key_tbl.create 64;
    next_res_id = 1;
    renewal_last = Ids.Res_key_tbl.create 256;
    renewal_min_interval;
    policy;
    denied_sources = Ids.Asn_set.empty;
    obs = registry;
    metrics;
  }

let asn (t : t) = t.asn
let key_server (t : t) = t.key_server
let metrics (t : t) = t.obs

(* Count one admission verdict; denials also feed the per-source-AS
   family so a misbehaving or misconfigured neighbor is visible by
   name in the snapshot. *)
let account_verdict (t : t) ~(granted : Obs.Counter.t) ~(denied : Obs.Counter.t)
    ~(src : Ids.asn) (verdict : [ `Continue of Bandwidth.t | `Deny of Protocol.deny_reason ]) =
  (match verdict with
  | `Continue _ -> Obs.Counter.incr granted
  | `Deny _ ->
      Obs.Counter.incr denied;
      Obs.Counter.incr (Obs.Asn_counters.get t.metrics.m_denied_by_src src));
  verdict

(** The AS-specific secret [K_i] for hop tokens/authenticators,
    derived from the current DRKey secret value. *)
let hop_secret (t : t) : Hvf.as_secret =
  let ak = Drkey.Key_server.derive t.key_server ~slow:t.asn in
  Hvf.as_secret_of_material (Drkey.protocol_key ak ~protocol:"colibri-hop")

(* DRKey material for control traffic between this AS and [src]:
   fast side = this AS. *)
let control_key_fast (t : t) ~(src : Ids.asn) : Crypto.Cmac.key =
  Drkey.control_mac_key (Drkey.Key_server.derive t.key_server ~slow:src)

(* Slow side: this AS is [src]; fetch (cached) the key of [fast]. *)
let as_key_slow (t : t) ~(fast : Ids.asn) : Drkey.as_key =
  if Ids.equal_asn fast t.asn then Drkey.Key_server.derive t.key_server ~slow:t.asn
  else Drkey.Cache.get t.drkey_cache ~fast ~fetch:(fun () -> t.fetch_remote_key fast)

let control_key_slow (t : t) ~(fast : Ids.asn) : Crypto.Cmac.key =
  Drkey.control_mac_key (as_key_slow t ~fast)

let next_res_id (t : t) : Ids.res_id =
  let id = t.next_res_id in
  t.next_res_id <- id + 1;
  id

let find_hop (path : Path.t) (asn : Ids.asn) : Path.hop option =
  List.find_opt (fun (h : Path.hop) -> Ids.equal_asn h.asn asn) path

(* ---------------- Segment reservations ---------------- *)

(** Build an authenticated SegR setup/renewal request at the initiator.
    [res_id = None] allocates a fresh id (setup); [Some key] renews the
    existing reservation with the next version number. *)
let make_seg_request (t : t) ~(path : Path.t) ~(kind : Reservation.seg_kind)
    ~(max_bw : Bandwidth.t) ~(min_bw : Bandwidth.t) ~(renew : Ids.res_key option) :
    (Protocol.seg_request * Protocol.request_auth, string) result =
  let now = t.clock () in
  match renew with
  | Some key when not (Ids.Res_key_tbl.mem t.own_segrs key) ->
      Error "renewal of unknown SegR"
  | _ ->
      let res_id, version, renewal =
        match renew with
        | None -> (next_res_id t, 1, false)
        | Some key ->
            let s = Ids.Res_key_tbl.find t.own_segrs key in
            let latest =
              List.fold_left
                (fun acc -> function
                  | Some (v : Reservation.version) -> max acc v.version
                  | None -> acc)
                0
                [ s.active; s.pending ]
            in
            (key.res_id, latest + 1, true)
      in
      let req : Protocol.seg_request =
        {
          res_info =
            {
              src_as = t.asn;
              res_id;
              bw = max_bw;
              exp_time = now +. Reservation.segr_lifetime;
              version;
            };
          min_bw;
          kind;
          path;
          renewal;
        }
      in
      let digest = Protocol.seg_request_digest req in
      let auth =
        Protocol.authenticate_request ~digest
          ~key_for:(fun a -> control_key_slow t ~fast:a)
          ~ases:(Path.ases path)
      in
      Ok (req, auth)

(** Forward-pass processing of a SegReq at one on-path AS: verify the
    source's MAC, run the admission algorithm, and tentatively record
    the grant. *)
let handle_seg_request_forward (t : t) ~(req : Protocol.seg_request)
    ~(auth : Protocol.request_auth) :
    [ `Continue of Bandwidth.t | `Deny of Protocol.deny_reason ] =
  let now = t.clock () in
  let src = req.res_info.src_as in
  account_verdict t ~granted:t.metrics.m_seg_granted ~denied:t.metrics.m_seg_denied
    ~src
  @@
  if Ids.Asn_set.mem src t.denied_sources then `Deny Protocol.Policy_refused
  else begin
    let digest = Protocol.seg_request_digest req in
    let key = control_key_fast t ~src in
    if not (Protocol.verify_request ~digest ~asn:t.asn ~key ~auth) then
      `Deny Protocol.Bad_authentication
    else begin
      match find_hop req.path t.asn with
      | None -> `Deny Protocol.Bad_authentication
      | Some hop -> (
          let rkey : Ids.res_key = { src_as = src; res_id = req.res_info.res_id } in
          (* Retransmissions of a request this AS already admitted (the
             original reply was lost downstream) are answered from the
             recorded grant inside the backend — [admit_seg] is
             idempotent per (key, version) by contract. *)
          let breq : Backend.seg_request =
            {
              key = rkey;
              version = req.res_info.version;
              src;
              ingress = hop.ingress;
              egress = hop.egress;
              demand = req.res_info.bw;
              min_bw = req.min_bw;
              exp_time = req.res_info.exp_time;
            }
          in
          match Backend.admit_seg t.backend ~req:breq ~now with
          | Backend.Granted bw -> `Continue bw
          | Backend.Denied { available } ->
              `Deny (Protocol.Insufficient_bandwidth { available }))
    end
  end

(** Backward-pass processing: commit the final (path-wide minimum)
    bandwidth, store the reservation version, and emit this AS's token
    (Eq. (3)) authenticated for the initiator. Setup requests activate
    the version immediately; renewals leave it pending until an
    explicit activation (§4.2). *)
let handle_seg_reply_backward (t : t) ~(req : Protocol.seg_request)
    ~(final_bw : Bandwidth.t) : Protocol.reply_hop =
  let src = req.res_info.src_as in
  let rkey : Ids.res_key = { src_as = src; res_id = req.res_info.res_id } in
  (* Per-hop disciplines grant final bandwidths on the forward pass and
     have nothing to commit. *)
  (if Backend.commit_required t.backend then
     match
       Backend.commit_seg t.backend ~key:rkey ~version:req.res_info.version
         ~granted:final_bw
     with
     | Ok () -> ()
     | Error e -> invalid_arg ("Cserv.handle_seg_reply_backward: " ^ e));
  let hop =
    match find_hop req.path t.asn with
    | Some h -> h
    | None -> invalid_arg "Cserv.handle_seg_reply_backward: AS not on path"
  in
  let version : Reservation.version =
    { version = req.res_info.version; bw = final_bw; exp_time = req.res_info.exp_time }
  in
  (* Record / update the local SegR state. *)
  (match Ids.Res_key_tbl.find_opt t.transit_segrs rkey with
  | Some ts ->
      if req.renewal then ts.segr.pending <- Some version
      else ts.segr.active <- Some version
  | None ->
      let segr : Reservation.segr =
        {
          key = rkey;
          kind = req.kind;
          path = req.path;
          active = (if req.renewal then None else Some version);
          pending = (if req.renewal then Some version else None);
          tokens = [];
          allowed_ases = None;
        }
      in
      Ids.Res_key_tbl.replace t.transit_segrs rkey
        { segr; ingress = hop.ingress; egress = hop.egress });
  let final_res_info = { req.res_info with bw = final_bw } in
  let token = Hvf.seg_token (hop_secret t) ~res_info:final_res_info ~hop in
  let digest = Protocol.seg_request_digest req in
  Protocol.make_reply_hop ~digest ~key:(control_key_fast t ~src) ~asn:t.asn
    ~granted:final_bw ~material:token

(** Cleanup after a failed setup: the tentative admission state is
    released ("the ASes clean up their temporary reservations", §3.3). *)
let handle_seg_failure (t : t) ~(req : Protocol.seg_request) =
  let rkey : Ids.res_key =
    { src_as = req.res_info.src_as; res_id = req.res_info.res_id }
  in
  Backend.remove_seg t.backend ~key:rkey ~version:req.res_info.version
    ~now:(t.clock ());
  match Ids.Res_key_tbl.find_opt t.transit_segrs rkey with
  | Some ts ->
      if req.renewal then ts.segr.pending <- None
      else Ids.Res_key_tbl.remove t.transit_segrs rkey
  | None -> ()

(** Process a successful reply at the initiator: verify every hop's
    MAC, store the SegR with its tokens. *)
let process_seg_reply (t : t) ~(req : Protocol.seg_request)
    ~(reply : Protocol.seg_request Protocol.reply) :
    (Reservation.segr, string) result =
  match reply with
  | Protocol.Denied { at; reason } ->
      Error (Fmt.str "denied at %a: %a" Ids.pp_asn at Protocol.pp_deny_reason reason)
  | Protocol.Granted { final_bw; hops } ->
      let digest = Protocol.seg_request_digest req in
      let all_ok =
        List.for_all
          (fun (h : Protocol.reply_hop) ->
            Protocol.verify_reply_hop ~digest
              ~key:(control_key_slow t ~fast:h.asn)
              h)
          hops
        && List.length hops = Path.length req.path
      in
      if not all_ok then Error "reply authentication failed"
      else begin
        let rkey : Ids.res_key =
          { src_as = req.res_info.src_as; res_id = req.res_info.res_id }
        in
        let version : Reservation.version =
          {
            version = req.res_info.version;
            bw = final_bw;
            exp_time = req.res_info.exp_time;
          }
        in
        let tokens = List.map (fun (h : Protocol.reply_hop) -> h.material) hops in
        let segr =
          match Ids.Res_key_tbl.find_opt t.own_segrs rkey with
          | Some s ->
              if req.renewal then s.pending <- Some version else s.active <- Some version;
              s.tokens <- tokens;
              s
          | None ->
              let s : Reservation.segr =
                {
                  key = rkey;
                  kind = req.kind;
                  path = req.path;
                  active = (if req.renewal then None else Some version);
                  pending = (if req.renewal then Some version else None);
                  tokens;
                  allowed_ases = None;
                }
              in
              Ids.Res_key_tbl.replace t.own_segrs rkey s;
              s
        in
        Ok segr
      end

(** Activation of a pending SegR version at one on-path AS (§4.2): the
    pending version becomes active and the superseded version's
    admission share is released. *)
let handle_seg_activation (t : t) ~(key : Ids.res_key) : (unit, string) result =
  match Ids.Res_key_tbl.find_opt t.transit_segrs key with
  | None -> Error "unknown SegR"
  | Some ts -> (
      let old = ts.segr.active in
      match Reservation.activate ts.segr ~now:(t.clock ()) with
      | Error e -> Error e
      | Ok () ->
          (match old with
          | Some v ->
              Backend.remove_seg t.backend ~key ~version:v.version ~now:(t.clock ())
          | None -> ());
          Ok ())

(* ---------------- Registry & dissemination (Appendix C) ------------- *)

(** Register a SegR (by its initiator) for use by other ASes, with an
    optional whitelist. *)
let register_segr (t : t) ~(key : Ids.res_key) ~(allowed : Ids.Asn_set.t option) :
    (unit, string) result =
  match Ids.Res_key_tbl.find_opt t.own_segrs key with
  | None -> Error "unknown SegR"
  | Some s ->
      s.allowed_ases <- allowed;
      Ids.Res_key_tbl.replace t.registry_whitelist key allowed;
      let dst = Path.destination s.path in
      let now = t.clock () in
      (match s.active with
      | Some v when Reservation.version_valid v ~now ->
          let descr =
            { key; kind = s.kind; path = s.path; bw = v.bw; exp_time = v.exp_time }
          in
          let existing = Option.value ~default:[] (Ids.Asn_tbl.find_opt t.registry dst) in
          let existing = List.filter (fun d -> not (Ids.equal_res_key d.key key)) existing in
          Ids.Asn_tbl.replace t.registry dst (descr :: existing)
      | _ -> ());
      Ok ()

(** Answer a registry query from [requester]: registered SegRs ending
    at [dst] that the requester is whitelisted for. *)
let registry_query (t : t) ~(requester : Ids.asn) ~(dst : Ids.asn) : segr_descr list =
  let now = t.clock () in
  Option.value ~default:[] (Ids.Asn_tbl.find_opt t.registry dst)
  |> List.filter (fun d ->
         now < d.exp_time
         &&
         match Ids.Res_key_tbl.find_opt t.registry_whitelist d.key with
         | Some (Some allowed) -> Ids.Asn_set.mem requester allowed
         | Some None | None -> true)

(** Cache remote SegR descriptions fetched through the deployment
    (hierarchical caching, Appendix C). *)
let cache_remote_segrs (t : t) (descrs : segr_descr list) =
  List.iter
    (fun d ->
      let dst = Path.destination d.path in
      let existing = Option.value ~default:[] (Ids.Asn_tbl.find_opt t.registry dst) in
      let existing = List.filter (fun x -> not (Ids.equal_res_key x.key d.key)) existing in
      Ids.Asn_tbl.replace t.registry dst (d :: existing))
    descrs

let cached_segrs (t : t) ~(dst : Ids.asn) : segr_descr list =
  let now = t.clock () in
  Option.value ~default:[] (Ids.Asn_tbl.find_opt t.registry dst)
  |> List.filter (fun d -> now < d.exp_time)

(** Drop a cached remote SegR that turned out stale (the remote CServ
    indicated expiry during an EER setup, Appendix C). *)
let invalidate_cached_segr (t : t) ~(key : Ids.res_key) =
  Ids.Asn_tbl.iter
    (fun dst descrs ->
      let filtered = List.filter (fun d -> not (Ids.equal_res_key d.key key)) descrs in
      if List.length filtered <> List.length descrs then
        Ids.Asn_tbl.replace t.registry dst filtered)
    (* iterate over a copy of keys to allow replace during iteration *)
    (Ids.Asn_tbl.copy t.registry)

(* ---------------- End-to-end reservations ---------------- *)

(** Renewal rate limiting (§4.2): at most one renewal per
    [renewal_min_interval] per reservation. *)
let renewal_allowed (t : t) ~(key : Ids.res_key) : bool =
  let now = t.clock () in
  match Ids.Res_key_tbl.find_opt t.renewal_last key with
  | Some last when now -. last < t.renewal_min_interval -> false
  | _ ->
      Ids.Res_key_tbl.replace t.renewal_last key now;
      true

(** Build an authenticated EER setup/renewal request. The path must be
    the splice of the given SegRs' paths. *)
let make_eer_request (t : t) ~(path : Path.t) ~(src_host : Ids.host)
    ~(dst_host : Ids.host) ~(bw : Bandwidth.t) ~(segr_keys : Ids.res_key list)
    ~(renew : Ids.res_key option) :
    (Protocol.eer_request * Protocol.request_auth, string) result =
  let now = t.clock () in
  match renew with
  | Some key when not (Ids.Res_key_tbl.mem t.own_eers key) -> Error "renewal of unknown EER"
  | Some key when not (renewal_allowed t ~key) -> Error "renewal rate limited"
  | _ ->
      let res_id, version, renewal =
        match renew with
        | None -> (next_res_id t, 1, false)
        | Some key ->
            let e = Ids.Res_key_tbl.find t.own_eers key in
            let latest =
              List.fold_left (fun acc (v : Reservation.version) -> max acc v.version) 0 e.versions
            in
            (key.res_id, latest + 1, true)
      in
      let req : Protocol.eer_request =
        {
          res_info =
            {
              src_as = t.asn;
              res_id;
              bw;
              exp_time = now +. Reservation.eer_lifetime;
              version;
            };
          eer_info = { src_host; dst_host };
          path;
          segr_keys;
          renewal;
        }
      in
      let digest = Protocol.eer_request_digest req in
      let auth =
        Protocol.authenticate_request ~digest
          ~key_for:(fun a -> control_key_slow t ~fast:a)
          ~ases:(Path.ases path)
      in
      Ok (req, auth)

(* The SegRs from the request that traverse this AS, with their local
   bandwidth, in path order. *)
let local_segrs (t : t) (req : Protocol.eer_request) :
    (Ids.res_key * transit_segr) list =
  List.filter_map
    (fun key ->
      Option.map (fun ts -> (key, ts)) (Ids.Res_key_tbl.find_opt t.transit_segrs key))
    req.segr_keys

(** Forward-pass EER admission at one on-path AS (§4.7). The role is
    derived from the packet: first hop = source AS (policy check),
    last hop = destination AS (policy + destination acceptance),
    otherwise transit/transfer depending on how many of the underlying
    SegRs traverse this AS. *)
let handle_eer_request_forward (t : t) ~(req : Protocol.eer_request)
    ~(auth : Protocol.request_auth) :
    [ `Continue of Bandwidth.t | `Deny of Protocol.deny_reason ] =
  let now = t.clock () in
  let src = req.res_info.src_as in
  account_verdict t ~granted:t.metrics.m_eer_granted ~denied:t.metrics.m_eer_denied
    ~src
  @@
  if Ids.Asn_set.mem src t.denied_sources then `Deny Protocol.Policy_refused
  else begin
    let digest = Protocol.eer_request_digest req in
    let key = control_key_fast t ~src in
    if not (Protocol.verify_request ~digest ~asn:t.asn ~key ~auth) then
      `Deny Protocol.Bad_authentication
    else begin
      match find_hop req.path t.asn with
      | None -> `Deny Protocol.Bad_authentication
      | Some hop -> (
          let is_source = Ids.equal_asn (Path.source req.path) t.asn in
          let is_dest = Ids.equal_asn (Path.destination req.path) t.asn in
          (* Policy checks at the edges. *)
          let policy_ok =
            (not is_source
            || Bandwidth.(req.res_info.bw <= t.policy.max_eer_bw)
               && t.policy.accept_outgoing req.eer_info req.res_info.bw)
            && (not is_dest || t.policy.accept_incoming req.eer_info req.res_info.bw)
          in
          if not policy_ok then
            `Deny (if is_dest then Protocol.Destination_refused else Protocol.Policy_refused)
          else begin
            let local = local_segrs t req in
            if List.is_empty local then
              `Deny
                (Protocol.Unknown_segr
                   (match req.segr_keys with
                   | k :: _ -> k
                   | [] -> { src_as = src; res_id = 0 }))
            else begin
              (* A SegR that expired under the requester: signal it so
                 the source can refresh its cache (Appendix C). *)
              match
                List.find_opt
                  (fun (_, ts) ->
                    not (Bandwidth.is_positive (Reservation.segr_bw ts.segr ~now)))
                  local
              with
              | Some (k, _) -> `Deny (Protocol.Expired_segr k)
              | None -> (
                  let segrs =
                    List.map (fun (k, ts) -> (k, Reservation.segr_bw ts.segr ~now)) local
                  in
                  (* Transfer AS between an up- and a core-SegR shares the
                     core bandwidth between competing up-SegRs (§4.7). *)
                  let via_up =
                    match local with
                    | [ (up_key, up_ts); (core_key, core_ts) ]
                      when up_ts.segr.kind = Reservation.Up
                           && core_ts.segr.kind = Reservation.Core ->
                        Some (core_key, up_key, Reservation.segr_bw core_ts.segr ~now)
                    | _ -> None
                  in
                  let rkey : Ids.res_key =
                    { src_as = src; res_id = req.res_info.res_id }
                  in
                  (* Retransmissions answer from the recorded grant
                     inside the backend ([admit_eer] is idempotent per
                     (key, version)); renewals are flexible — an AS can
                     grant less than requested, re-negotiating the
                     bandwidth without interrupting service (§4.2),
                     while setups are strict. *)
                  let breq : Backend.eer_request =
                    {
                      key = rkey;
                      version = req.res_info.version;
                      segrs;
                      via_up;
                      ingress = hop.ingress;
                      egress = hop.egress;
                      demand = req.res_info.bw;
                      renewal = req.renewal;
                      exp_time = req.res_info.exp_time;
                    }
                  in
                  match Backend.admit_eer t.backend ~req:breq ~now with
                  | Backend.Granted bw -> `Continue bw
                  | Backend.Denied { available } ->
                      `Deny (Protocol.Insufficient_bandwidth { available }))
            end
          end)
    end
  end

(** Backward-pass EER processing: compute the hop authenticator σ_i
    (Eq. (4)) over the final reservation data and seal it for the
    source AS (Eq. (5)). *)
let handle_eer_reply_backward (t : t) ~(req : Protocol.eer_request)
    ~(final_bw : Bandwidth.t) : Protocol.reply_hop =
  let src = req.res_info.src_as in
  let hop =
    match find_hop req.path t.asn with
    | Some h -> h
    | None -> invalid_arg "Cserv.handle_eer_reply_backward: AS not on path"
  in
  let final_res_info = { req.res_info with bw = final_bw } in
  let sigma = Hvf.hop_auth (hop_secret t) ~res_info:final_res_info ~eer_info:req.eer_info ~hop in
  let rkey : Ids.res_key = { src_as = src; res_id = req.res_info.res_id } in
  let aead = Drkey.hopauth_aead_key (Drkey.Key_server.derive t.key_server ~slow:src) in
  let sealed =
    Hvf.seal_sigma ~aead ~res_key:rkey ~version:req.res_info.version sigma
  in
  let digest = Protocol.eer_request_digest req in
  Protocol.make_reply_hop ~digest ~key:(control_key_fast t ~src) ~asn:t.asn
    ~granted:final_bw ~material:sealed

let handle_eer_failure (t : t) ~(req : Protocol.eer_request) =
  let rkey : Ids.res_key =
    { src_as = req.res_info.src_as; res_id = req.res_info.res_id }
  in
  Backend.remove_eer t.backend ~key:rkey ~version:req.res_info.version
    ~now:(t.clock ())

(** Process a successful EER reply at the source AS: verify every
    hop's MAC, unseal the σ_i, and return the reservation together
    with the per-hop authenticators for the gateway. *)
let process_eer_reply (t : t) ~(req : Protocol.eer_request)
    ~(reply : Protocol.eer_request Protocol.reply) :
    (Reservation.eer * Reservation.version * bytes list, string) result =
  match reply with
  | Protocol.Denied { at; reason } ->
      Error (Fmt.str "denied at %a: %a" Ids.pp_asn at Protocol.pp_deny_reason reason)
  | Protocol.Granted { final_bw; hops } ->
      let digest = Protocol.eer_request_digest req in
      if List.length hops <> Path.length req.path then Error "wrong hop count in reply"
      else begin
        let rkey : Ids.res_key =
          { src_as = req.res_info.src_as; res_id = req.res_info.res_id }
        in
        let unseal (h : Protocol.reply_hop) : bytes option =
          if
            not
              (Protocol.verify_reply_hop ~digest
                 ~key:(control_key_slow t ~fast:h.asn)
                 h)
          then None
          else
            let aead = Drkey.hopauth_aead_key (as_key_slow t ~fast:h.asn) in
            Hvf.open_sigma ~aead ~res_key:rkey ~version:req.res_info.version h.material
        in
        let sigmas = List.map unseal hops in
        if List.exists Option.is_none sigmas then
          Error "reply authentication or unsealing failed"
        else begin
          let sigmas = List.filter_map Fun.id sigmas in
          let version : Reservation.version =
            {
              version = req.res_info.version;
              bw = final_bw;
              exp_time = req.res_info.exp_time;
            }
          in
          let eer =
            match Ids.Res_key_tbl.find_opt t.own_eers rkey with
            | Some e -> e
            | None ->
                let e : Reservation.eer =
                  {
                    key = rkey;
                    path = req.path;
                    src_host = req.eer_info.src_host;
                    dst_host = req.eer_info.dst_host;
                    segr_keys = req.segr_keys;
                    versions = [];
                  }
                in
                Ids.Res_key_tbl.replace t.own_eers rkey e;
                e
          in
          match Reservation.add_eer_version eer version with
          | Error e -> Error e
          | Ok () -> Ok (eer, version, sigmas)
        end
      end

(* ---------------- Policing hooks (§4.8) ---------------- *)

(** Report of confirmed overuse from a border router: deny future
    reservations from the offending source AS. *)
let report_misbehavior (t : t) ~(src : Ids.asn) =
  Obs.Counter.incr t.metrics.m_misbehavior;
  t.denied_sources <- Ids.Asn_set.add src t.denied_sources

let is_denied (t : t) ~(src : Ids.asn) = Ids.Asn_set.mem src t.denied_sources

(** Descriptions of this AS's own SegRs of a given kind with a valid
    active version — the starting material for route lookups. *)
let own_segr_descrs (t : t) ~(kind : Reservation.seg_kind) ~(now : Timebase.t) :
    segr_descr list =
  Ids.Res_key_tbl.fold
    (fun key (s : Reservation.segr) acc ->
      if s.kind <> kind then acc
      else
        match s.active with
        | Some v when Reservation.version_valid v ~now ->
            { key; kind = s.kind; path = s.path; bw = v.bw; exp_time = v.exp_time }
            :: acc
        | _ -> acc)
    t.own_segrs []

(* ---------------- Introspection ---------------- *)

let transit_segr (t : t) (key : Ids.res_key) = Ids.Res_key_tbl.find_opt t.transit_segrs key
let own_segr (t : t) (key : Ids.res_key) = Ids.Res_key_tbl.find_opt t.own_segrs key
let own_eer (t : t) (key : Ids.res_key) = Ids.Res_key_tbl.find_opt t.own_eers key
let backend (t : t) = t.backend
let drkey_cache (t : t) = t.drkey_cache
let set_fetch_remote_key (t : t) f = t.fetch_remote_key <- f

(** Consistency audit of the admission backend, messages prefixed with
    this AS and the backend name — the chaos suite's leak detector
    after crashes and exhausted retries. [[]] means clean. *)
let audit (t : t) : string list =
  List.map
    (fun m -> Fmt.str "%a/%s: %s" Ids.pp_asn t.asn (Backend.name t.backend) m)
    (Backend.audit t.backend)
