(** Colibri packet format (§4.3, Eq. (2)).

    {v
    Packet  = Path ‖ ResInfo ‖ EERInfo ‖ Ts ‖ V_0 ‖ … ‖ V_l ‖ Payload
    Path    = (In_0, Eg_0) ‖ … ‖ (In_l, Eg_l)
    ResInfo = SrcAS ‖ ResId ‖ Bw ‖ ExpT ‖ Ver
    EERInfo = SrcHost ‖ DstHost
    v}

    One format serves all Colibri control- and data-plane traffic; the
    {!kind} flag distinguishes packets on segment reservations (where
    [EERInfo] is unused) from packets on end-to-end reservations. The
    wire encoding is fixed-width big-endian throughout, so MAC inputs
    are canonical. *)

open Colibri_types

(** Whether the packet travels on a segment reservation or an
    end-to-end reservation. *)
type kind = Seg | Eer

(** The ResInfo header block (Eq. (2c)): reservation identity,
    bandwidth, expiration, and version. *)
type res_info = {
  src_as : Ids.asn;
  res_id : Ids.res_id;
  bw : Bandwidth.t;
  exp_time : Timebase.t;
  version : int;
}

(** The EERInfo block (Eq. (2d)): end-host addresses, unique inside
    their AS. *)
type eer_info = { src_host : Ids.host; dst_host : Ids.host }

(** A parsed Colibri packet. [payload_len] stands in for the payload,
    whose contents are opaque to all Colibri processing. *)
type t = {
  kind : kind;
  path : Path.t;
  res_info : res_info;
  eer_info : eer_info option;  (** [Some] for EER data packets *)
  ts : Timebase.Ts.t;
  hvfs : bytes array;  (** hop validation fields, {!hvf_len} bytes each *)
  payload_len : int;
}

val res_key : t -> Ids.res_key
(** The packet's globally unique reservation identity
    [(SrcAS, ResId)]. *)

val hvf_len : int
(** ℓ_hvf = 4 bytes (§4.5): short static MACs are acceptable given the
    short lifetime of reservations. *)

(** {1 Canonical encodings}

    Used both on the wire and as MAC inputs. *)

val res_info_len : int
val res_info_to_bytes : res_info -> bytes
val res_info_of_bytes : bytes -> off:int -> res_info
val eer_info_len : int
val eer_info_to_bytes : eer_info -> bytes
val eer_info_of_bytes : bytes -> off:int -> eer_info

(** {1 Wire format} *)

val magic : int
val fixed_header_len : int

val header_len : hops:int -> int
(** Total header size for a path of [hops] ASes. *)

val wire_size : t -> int
(** Header plus payload: the [PktSize] that Eq. (6) authenticates, so
    an AS flooding tiny or header-only packets is still accountable
    for their full cost. *)

type parse_error =
  | Truncated
  | Bad_magic
  | Bad_kind
  | Bad_hop_count
  | Bad_payload_len  (** negative declared payload length *)
  | Bad_path of Path.error

val pp_parse_error : parse_error Fmt.t

val to_bytes : t -> bytes
(** Serialize the header (the payload is represented by its length
    only). *)

val of_bytes : bytes -> (t, parse_error) result
(** Parse and structurally validate a packet header. *)

(** {1 Zero-copy wire path (DESIGN.md §8)} *)

(** Unboxed big-endian reads/writes over native [int]s, with exactly
    the semantics of the boxed [Bytes.get_int32_be]-and-convert path
    ([Int32.to_int] sign extension, [Int64.to_int] 63-bit wrap,
    [Int32.of_int]/[Int64.of_int] truncation). Used by {!View}, the
    HVF pipeline, and the gateway encoder to keep per-packet work
    allocation-free. *)
module Wire : sig
  val get16 : bytes -> int -> int
  val get32 : bytes -> int -> int
  val get64 : bytes -> int -> int
  val put16 : bytes -> int -> int -> unit
  val put32 : bytes -> int -> int -> unit
  val put64 : bytes -> int -> int -> unit
end

(** Validated cursor over a raw packet buffer.

    A [View.t] is a mutable scratch record owned by a single consumer:
    {!View.parse} re-points it at a buffer and validates with exactly
    the checks (and verdicts, in the same order) of {!of_bytes}; the
    accessors then read straight out of that buffer. Accessors are
    meaningful only after the most recent [parse] returned [Ok ()] and
    only until the buffer is next mutated — validation before access,
    always. The cursor accessors and [parse]'s accept path perform no
    allocation. *)
module View : sig
  type t

  val create : unit -> t
  (** A fresh view, initially pointing at nothing; [parse] before use. *)

  val parse : t -> bytes -> (unit, parse_error) result

  (** {2 Cursor geometry} *)

  val buffer : t -> bytes
  (** The underlying buffer of the last successful {!parse}. *)

  val kind : t -> kind
  val hops : t -> int
  val payload_len : t -> int
  val ts : t -> Timebase.Ts.t
  val res_off : t -> int
  (** Byte offset of ResInfo; EERInfo follows contiguously. *)

  val eer_off : t -> int
  val hop_off : t -> int -> int
  val hvf_off : t -> int -> int
  val header_length : t -> int
  val wire_size : t -> int

  val res_info_span : t -> int * int
  (** [(offset, length)] of the ResInfo block (allocates a pair; the
      hot path uses {!res_off} directly). *)

  (** {2 Unboxed field accessors} *)

  val src_isd : t -> int
  val src_num : t -> int
  val res_id : t -> Ids.res_id
  val version : t -> int

  val bw_bps_int : t -> int
  (** Raw i64 bandwidth field with [Int64.to_int] wrap; agrees with
      {!bw} for |bw| < 2^62 bps, i.e. for anything a gateway can emit.
      Allocation-free, unlike {!bw}. *)

  val exp_time_us : t -> int
  (** Raw i64 expiry in µs, same caveat as {!bw_bps_int}. *)

  val eer_src_addr : t -> int
  val eer_dst_addr : t -> int
  val hop_isd : t -> int -> int
  val hop_num : t -> int -> int
  val hop_ingress : t -> int -> Ids.iface
  val hop_egress : t -> int -> Ids.iface

  (** {2 Allocating conveniences (control plane / tests)} *)

  val bw : t -> Bandwidth.t
  val exp_time : t -> Timebase.t
  val hop : t -> int -> Path.hop
  val hvf : t -> int -> bytes
  val res_info : t -> res_info
  val eer_info : t -> eer_info option
end

val pp : t Fmt.t
