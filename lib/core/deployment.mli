(** A full simulated Colibri deployment: one CServ, gateway, and
    border router per AS of a topology, wired together with DRKey key
    servers and a shared clock.

    This is the orchestration layer that moves control-plane requests
    hop-by-hop along reservation paths (Fig. 1a/1b) and data packets
    through the chain of border routers (Fig. 1c). Examples and
    integration tests drive it; every per-AS component it glues
    together is independently usable. *)

open Colibri_types
open Colibri_topology

type t

type as_node = {
  asn : Ids.asn;
  cserv : Cserv.t;
  gateway : Gateway.t;
  router : Router.t;
}

val create :
  ?policy_for:(Ids.asn -> Cserv.policy) ->
  ?backend:Backends.Backend_intf.factory ->
  ?router_monitoring:bool ->
  ?router_auto_block:bool ->
  ?router_confirm_after_drops:int ->
  ?seed:int ->
  Topology.t ->
  t
(** Build a deployment over a topology: runs beaconing, instantiates
    per-AS services, and wires slow-side DRKey fetches to the remote
    key servers. [backend] selects the admission discipline every
    CServ runs (default: the N-Tube reference backend);
    [router_monitoring = false] builds bare-fast-path routers (no OFD /
    duplicate filter), as used by the speed benchmarks.
    [router_auto_block] additionally blocklists a source AS locally
    once a router confirms overuse (after [router_confirm_after_drops]
    policed drops) — the full §4.8 enforcement chain the attack
    scenarios exercise. *)

val clock : t -> Timebase.clock
val now : t -> Timebase.t
val engine : t -> Net.Engine.t
val topology : t -> Topology.t
val seg_db : t -> Segments.Db.t
val node : t -> Ids.asn -> as_node
val cserv : t -> Ids.asn -> Cserv.t
val gateway : t -> Ids.asn -> Gateway.t
val router : t -> Ids.asn -> Router.t

val advance : t -> float -> unit
(** Run the simulation engine forward by the given seconds. *)

(** {1 Segment-reservation orchestration} *)

type setup_error = { at : Ids.asn; reason : Protocol.deny_reason }

val pp_setup_error : setup_error Fmt.t

val setup_segr :
  ?renew:Ids.res_key ->
  t ->
  path:Path.t ->
  kind:Reservation.seg_kind ->
  max_bw:Bandwidth.t ->
  min_bw:Bandwidth.t ->
  (Reservation.segr, string) result
(** Set up (or renew) a segment reservation from the first AS of
    [path]: forward pass with per-AS admission, backward pass
    committing the path-wide minimum and collecting Eq. (3) tokens. *)

val activate_segr : t -> key:Ids.res_key -> (unit, string) result
(** Activate the pending version of a SegR at every on-path AS and at
    the initiator (§4.2). *)

val request_down_segr :
  ?allowed:Ids.Asn_set.t option ->
  t ->
  path:Path.t ->
  max_bw:Bandwidth.t ->
  min_bw:Bandwidth.t ->
  (Reservation.segr, string) result
(** Ask the first AS of a down segment to set up a down-SegR —
    down-SegRs are only created upon explicit request by the last AS
    (§3.3). The SegR is registered at the initiator's CServ and its
    description cached at the leaf. *)

(** {1 Route lookup and end-to-end reservations} *)

(** A usable chain of SegRs from source to destination: the spliced
    path plus the reservation keys in path order. *)
type eer_route = { path : Path.t; segr_keys : Ids.res_key list }

val lookup_eer_routes : t -> src:Ids.asn -> dst:Ids.asn -> eer_route list
(** Hierarchical lookup of Appendix C: own up-SegRs locally,
    down-SegRs from the destination's CServ cache, core-SegRs from the
    core AS where the up segment ends; results cached at the source.
    Shortest spliced path first. *)

val setup_eer :
  ?renew:Ids.res_key ->
  t ->
  route:eer_route ->
  src_host:Ids.host ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  (Reservation.eer, string) result
(** Set up (or renew) an end-to-end reservation along [route]; on
    success it is installed at the source AS's gateway (➎ in
    Fig. 1b). *)

val setup_eer_full :
  ?renew:Ids.res_key ->
  t ->
  route:eer_route ->
  src_host:Ids.host ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  (Reservation.eer * Reservation.version * bytes list, string) result
(** Like {!setup_eer} but also returns the version and the unsealed
    hop authenticators — used by tests and rogue-gateway attack
    scenarios. *)

val setup_eer_auto :
  t ->
  src:Ids.asn ->
  src_host:Ids.host ->
  dst:Ids.asn ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  (Reservation.eer, string) result
(** Look up routes and set up an EER over the shortest feasible one,
    trying alternatives on failure (path choice, §2.1). *)

(** {1 Networked control plane}

    Everything above moves control messages instantaneously (right for
    the admission benchmarks, §6.1). The networked variants run the
    same per-AS handlers over the simulated {!Control_net} with fault
    injection, per-request timeouts, capped exponential backoff, and
    bounded retry budgets ({!Retry}); on budget exhaustion the
    tentative admission state is released through the existing failure
    paths (cleanup-by-timeout, §3.3). *)

val attach_network :
  ?scheduler:Net.Link.scheduler ->
  ?delay:float ->
  ?faults:Net.Fault.t ->
  ?retry_policy:Retry.policy ->
  ?retry_seed:int ->
  t ->
  unit
(** Build the link mesh under the control plane and the retry
    machinery. Must be called before any [_net]/[_sync] operation or
    renewal machine. *)

val network_metrics : t -> Obs.Registry.t
(** The shared registry of the network layer: [control_net_*] delivery
    accounting, [retry_*] counters and histograms, and [renewal_*]
    state-machine outcomes. *)

val control_net : t -> Control_net.t
val retrier : t -> Retry.t

val server_up : t -> Ids.asn -> bool
(** Is the AS's control service processing requests right now (fault
    injector crash windows)? Always [true] without fault injection. *)

val setup_segr_net :
  ?renew:Ids.res_key ->
  ?protection:Control_net.protection ->
  t ->
  path:Path.t ->
  kind:Reservation.seg_kind ->
  max_bw:Bandwidth.t ->
  min_bw:Bandwidth.t ->
  on_result:((Reservation.segr, string) result -> unit) ->
  unit
(** Networked {!setup_segr}; [on_result] fires once the engine has run
    far enough. Renewals default to {!Control_net.Over_reservation},
    setups to {!Control_net.Prioritized_control} (§5.3). *)

val setup_eer_net :
  ?renew:Ids.res_key ->
  ?protection:Control_net.protection ->
  t ->
  route:eer_route ->
  src_host:Ids.host ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  on_result:((Reservation.eer, string) result -> unit) ->
  unit
(** Networked {!setup_eer}; the reservation is installed at the source
    gateway before [on_result] fires. *)

val setup_segr_sync :
  ?renew:Ids.res_key ->
  ?protection:Control_net.protection ->
  ?timeout:float ->
  t ->
  path:Path.t ->
  kind:Reservation.seg_kind ->
  max_bw:Bandwidth.t ->
  min_bw:Bandwidth.t ->
  (Reservation.segr, string) result
(** Blocking convenience over {!setup_segr_net}: runs the engine until
    the walk concludes (at most [timeout] simulated seconds). *)

val setup_eer_sync :
  ?renew:Ids.res_key ->
  ?protection:Control_net.protection ->
  ?timeout:float ->
  t ->
  route:eer_route ->
  src_host:Ids.host ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  (Reservation.eer, string) result

(** {1 Renewal before expiry}

    A managed reservation is renewed over itself once a configurable
    fraction of its lifetime has elapsed (§4.2); while it stays valid,
    failed renewals retry with capped backoff; once it lapses the
    machine degrades to a best-effort fresh setup under a new key, and
    gives up after repeated failed recoveries. Outcomes are counted in
    {!network_metrics} as [renewal_{started,ok,late,degraded,recovered,
    gave_up}_total]. *)

type managed

val auto_renew_segr :
  ?fraction:float ->
  t ->
  key:Ids.res_key ->
  max_bw:Bandwidth.t ->
  min_bw:Bandwidth.t ->
  (managed, string) result
(** Keep a SegR alive (renewal at [fraction = 0.7] of the lifetime by
    default). [max_bw]/[min_bw] are reused for renewals and
    recoveries. *)

val auto_renew_eer :
  ?fraction:float ->
  t ->
  key:Ids.res_key ->
  route:eer_route ->
  src_host:Ids.host ->
  dst_host:Ids.host ->
  bw:Bandwidth.t ->
  (managed, string) result
(** Keep an EER alive by renewing before each version expires;
    versions overlap so traffic never stalls (§4.2). *)

val managed_key : managed -> Ids.res_key
(** The current key — changes when a lapse forces a fresh setup. *)

val stop_renewal : managed -> unit

val audit_all : t -> string list
(** Audit every AS's admission state; [[]] means no AS leaks. *)

(** {1 Data plane} *)

type delivery = {
  delivered : bool;
  dropped_at : (Ids.asn * Router.drop_reason) option;
  hops_traversed : int;
}

val send_data :
  t -> src:Ids.asn -> res_id:Ids.res_id -> payload_len:int ->
  (delivery, Gateway.drop_reason) result
(** Send one data packet over an EER: gateway processing at the source
    AS, then parse+validate+forward at every border router on the path
    (Fig. 1c). *)
