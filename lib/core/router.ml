(** The Colibri border router (§4.6): per-packet validation and
    forwarding without any per-flow or per-reservation state.

    For each packet the router validates format, freshness, and
    reservation expiry, then recomputes the hop validation field from
    the single AS secret [K_i]: directly via Eq. (3) for SegR packets,
    or via the two-step Eq. (4) → Eq. (6) for EER packets. A matching
    HVF proves both that the source AS authorized the packet (and thus
    performed its monitoring duty) and that this AS admitted the
    reservation.

    The router also hosts the monitoring hooks of §4.8: the
    probabilistic overuse-flow detector over all EER flows, the
    deterministic token-bucket policing of flagged suspects, the
    duplicate-suppression filter, and the blocklist of confirmed
    offenders. All of these have bounded memory independent of the
    number of flows. *)

open Colibri_types

type action =
  | Forward of Ids.iface (* next border router via this egress interface *)
  | Deliver of Ids.host (* last AS: hand to the destination host *)
  | To_cserv (* SegR (control) packets go to the local CServ *)

type drop_reason =
  | Parse_error of Packet.parse_error
  | Not_on_path
  | Expired_reservation
  | Stale_timestamp
  | Invalid_hvf
  | Blocked_source
  | Duplicate
  | Policed (* watched overuser exceeding its reservation *)

let pp_drop_reason ppf = function
  | Parse_error e -> Fmt.pf ppf "parse error: %a" Packet.pp_parse_error e
  | Not_on_path -> Fmt.string ppf "AS not on packet path"
  | Expired_reservation -> Fmt.string ppf "reservation expired"
  | Stale_timestamp -> Fmt.string ppf "stale timestamp"
  | Invalid_hvf -> Fmt.string ppf "invalid hop validation field"
  | Blocked_source -> Fmt.string ppf "blocked source AS"
  | Duplicate -> Fmt.string ppf "duplicate packet"
  | Policed -> Fmt.string ppf "policed (overuse)"

type stats = {
  mutable forwarded : int;
  mutable dropped : int;
  mutable suspects_flagged : int;
  mutable confirmed_overuse : int;
}

(* Stable label per drop reason; [drop_index] must agree with the order
   of [drop_labels]. *)
let drop_labels =
  [| "parse_error"; "not_on_path"; "expired_reservation"; "stale_timestamp";
     "invalid_hvf"; "blocked_source"; "duplicate"; "policed" |]

let drop_index = function
  | Parse_error _ -> 0
  | Not_on_path -> 1
  | Expired_reservation -> 2
  | Stale_timestamp -> 3
  | Invalid_hvf -> 4
  | Blocked_source -> 5
  | Duplicate -> 6
  | Policed -> 7

(* Pre-resolved counters: the per-packet path does an array index plus
   an allocation-free increment (DESIGN.md §7). *)
type metrics = {
  m_forwarded : Obs.Counter.t;
  m_dropped : Obs.Counter.t array; (* indexed by [drop_index] *)
  m_suspects : Obs.Counter.t;
  m_confirmed : Obs.Counter.t;
}

type t = {
  asn : Ids.asn;
  clock : Timebase.clock;
  secret : Hvf.as_secret; (* K_i, refreshed per epoch by the deployment *)
  freshness_window : Timebase.t;
  ofd : Monitor.Ofd.t option;
  duplicates : Monitor.Duplicate_filter.t option;
  blocklist : Monitor.Blocklist.t;
  watched : Monitor.Token_bucket.t Ids.Res_key_tbl.t;
      (* suspects under deterministic monitoring (§4.8) *)
  report : src:Ids.asn -> unit; (* confirmed-overuse report to the CServ *)
  auto_block : bool;
  confirm_after_drops : int; (* policed drops before overuse is "confirmed" *)
  drop_counts : int Ids.Res_key_tbl.t;
  stats : stats;
  registry : Obs.Registry.t;
  metrics : metrics;
  (* Per-router scratch for the zero-copy fast path (DESIGN.md §8):
     the packet view and the MAC working buffers are reused across
     packets, so a warmed-up [process_bytes] does not allocate. *)
  view : Packet.View.t;
  hscr : Hvf.scratch;
}

(** [create ~secret ~clock asn] builds a border router. [ofd] and
    [duplicates] default to enabled with modest footprints; pass
    [~ofd:None] / [~duplicates:None] to measure the bare fast path as
    the paper does for the duplicate-suppression system (§7.1). *)
let create ?(freshness_window = 2.0 +. Timebase.max_skew)
    ?ofd:(ofd_arg = `Default) ?duplicates:(dup_arg = `Default)
    ?(report = fun ~src:_ -> ()) ?(auto_block = false) ?(confirm_after_drops = 100)
    ?(registry = Obs.Registry.create ()) ~(secret : Hvf.as_secret)
    ~(clock : Timebase.clock) (asn : Ids.asn) : t =
  let now = clock () in
  let ofd =
    match ofd_arg with
    | `Default -> Some (Monitor.Ofd.create ~window:1.0 ~threshold:1.2 ~now ())
    | `None -> None
    | `Custom o -> Some o
  in
  let duplicates =
    match dup_arg with
    | `Default ->
        Some
          (Monitor.Duplicate_filter.create ~expected:1_000_000 ~fp_rate:1e-4
             ~window:(2.0 +. Timebase.max_skew) ~now)
    | `None -> None
    | `Custom d -> Some d
  in
  let metrics =
    {
      m_forwarded = Obs.Registry.counter registry "router_forwarded_total";
      m_dropped =
        Array.map
          (fun reason ->
            Obs.Registry.counter registry
              (Obs.labeled "router_dropped_total" [ ("reason", reason) ]))
          drop_labels;
      m_suspects = Obs.Registry.counter registry "router_suspects_flagged_total";
      m_confirmed = Obs.Registry.counter registry "router_confirmed_overuse_total";
    }
  in
  let t =
    {
      asn;
      clock;
      secret;
      freshness_window;
      ofd;
      duplicates;
      blocklist = Monitor.Blocklist.create ~clock ();
      watched = Ids.Res_key_tbl.create 64;
      report;
      auto_block;
      confirm_after_drops;
      drop_counts = Ids.Res_key_tbl.create 64;
      stats =
        { forwarded = 0; dropped = 0; suspects_flagged = 0; confirmed_overuse = 0 };
      registry;
      metrics;
      view = Packet.View.create ();
      hscr = Hvf.scratch ();
    }
  in
  (* Occupancy gauges (§4.8 monitors), sampled only at snapshot time;
     every read below is observation-only by the DESIGN.md §7 contract. *)
  Obs.Registry.gauge_fn registry "router_watched_flows" (fun () ->
      float_of_int (Ids.Res_key_tbl.length t.watched));
  Obs.Registry.gauge_fn registry "router_blocklist_size" (fun () ->
      float_of_int (Monitor.Blocklist.size t.blocklist));
  Obs.Registry.gauge_fn registry "router_watched_tokens_available_bits" (fun () ->
      let now = t.clock () in
      Ids.Res_key_tbl.fold
        (fun _ bucket acc -> acc +. Monitor.Token_bucket.available_bits bucket ~now)
        t.watched 0.);
  Obs.Registry.gauge_fn registry "router_watched_tokens_capacity_bits" (fun () ->
      Ids.Res_key_tbl.fold
        (fun _ bucket acc -> acc +. Monitor.Token_bucket.capacity_bits bucket)
        t.watched 0.);
  (match t.duplicates with
  | None -> ()
  | Some f ->
      Obs.Registry.gauge_fn registry "router_dup_filter_bits_set" (fun () ->
          float_of_int (Monitor.Duplicate_filter.bits_set f));
      Obs.Registry.gauge_fn registry "router_dup_filter_fill_ratio" (fun () ->
          Monitor.Duplicate_filter.fill_ratio f);
      Obs.Registry.gauge_fn registry "router_dup_filter_inserted_window" (fun () ->
          float_of_int (Monitor.Duplicate_filter.inserted_in_window f)));
  (match t.ofd with
  | None -> ()
  | Some ofd ->
      Obs.Registry.gauge_fn registry "router_ofd_sketch_max_cell" (fun () ->
          Monitor.Ofd.max_cell ofd);
      Obs.Registry.gauge_fn registry "router_ofd_observed_packets" (fun () ->
          float_of_int (Monitor.Ofd.observed_packets ofd)));
  t

let blocklist (t : t) = t.blocklist
let stats (t : t) = t.stats
let metrics (t : t) = t.registry
let watched_count (t : t) = Ids.Res_key_tbl.length t.watched

(** Explicitly place a reservation under deterministic token-bucket
    monitoring at its reserved rate — the state a flagged suspect ends
    up in (§4.8). Table 2's phase 3 pre-installs this, exactly as the
    paper "simulate[s] a state where reservations 1 and 2 were flagged
    by the probabilistic flow monitor". *)
let watch (t : t) ~(key : Ids.res_key) ~(rate : Bandwidth.t) =
  Ids.Res_key_tbl.replace t.watched key
    (Monitor.Token_bucket.create ~rate ~burst:0.1 ~now:(t.clock ()))

(* Locate this AS's hop and its index on the packet path. *)
let own_hop (t : t) (path : Path.t) : (int * Path.hop) option =
  let rec go i = function
    | [] -> None
    | (h : Path.hop) :: rest ->
        if Ids.equal_asn h.asn t.asn then Some (i, h) else go (i + 1) rest
  in
  go 0 path

let confirm_overuse (t : t) ~(src : Ids.asn) =
  t.stats.confirmed_overuse <- t.stats.confirmed_overuse + 1;
  Obs.Counter.incr t.metrics.m_confirmed;
  if t.auto_block then Monitor.Blocklist.block t.blocklist src ~duration:None;
  t.report ~src

(* Deterministic policing of flagged suspects: limit the flow to its
   reserved bandwidth (Table 2, phase 3). True when the packet must be
   dropped; tracks the drop count that turns a suspect into confirmed
   overuse. Shared by the record-based and view-based paths. *)
let police (t : t) ~(now : Timebase.t) ~(key : Ids.res_key) ~(actual_size : int) :
    bool =
  match Ids.Res_key_tbl.find_opt t.watched key with
  | None -> false
  | Some bucket ->
      if Monitor.Token_bucket.admit bucket ~now ~bytes:actual_size then false
      else begin
        let drops =
          Option.value ~default:0 (Ids.Res_key_tbl.find_opt t.drop_counts key) + 1
        in
        Ids.Res_key_tbl.replace t.drop_counts key drops;
        if drops = t.confirm_after_drops then confirm_overuse t ~src:key.src_as;
        true
      end

(** Validate and route one already-parsed packet whose true wire size
    is [actual_size] bytes. The HVF authenticates [PktSize], so a
    mismatch between declared and actual size fails validation. *)
let process (t : t) ~(packet : Packet.t) ~(actual_size : int) :
    (action, drop_reason) result =
  let now = t.clock () in
  let drop r =
    t.stats.dropped <- t.stats.dropped + 1;
    Obs.Counter.incr t.metrics.m_dropped.(drop_index r);
    Error r
  in
  let ri = packet.res_info in
  if Monitor.Blocklist.is_blocked t.blocklist ri.src_as then drop Blocked_source
  else begin
    match own_hop t packet.path with
    | None -> drop Not_on_path
    | Some (i, hop) ->
        (* Expiry: reservation must still be valid (± clock skew). *)
        if now > ri.exp_time +. Timebase.max_skew then drop Expired_reservation
        else begin
          (* Freshness: the timestamp must lie within the window that
             covers clock skew plus maximum forwarding delay. *)
          let sent = Timebase.Ts.to_time ~exp_time:ri.exp_time packet.ts in
          if Float.abs (now -. sent) > t.freshness_window then drop Stale_timestamp
          else begin
            (* HVF validation decides the packet class once; an EER
               packet without EERInfo cannot authenticate (EERInfo is
               part of the Eq. (4) MAC input), so the routing arms
               below never face a missing destination host. *)
            let checked =
              match packet.kind with
              | Packet.Seg ->
                  if
                    Hvf.equal_hvf packet.hvfs.(i)
                      (Hvf.seg_token t.secret ~res_info:ri ~hop)
                  then `Seg
                  else `Bad
              | Packet.Eer -> (
                  match packet.eer_info with
                  | None -> `Bad
                  | Some eer_info ->
                      let sigma =
                        Hvf.sigma_of_bytes
                          (Hvf.hop_auth t.secret ~res_info:ri ~eer_info ~hop)
                      in
                      if
                        Hvf.equal_hvf packet.hvfs.(i)
                          (Hvf.eer_hvf sigma ~ts:packet.ts ~pkt_size:actual_size)
                      then `Eer eer_info
                      else `Bad)
            in
            match checked with
            | `Bad -> drop Invalid_hvf
            | (`Seg | `Eer _) as cls ->
                let key = Packet.res_key packet in
                (* Replay suppression [32]: all copies of a seen packet
                   are discarded. *)
                let fresh =
                  match t.duplicates with
                  | None -> true
                  | Some f ->
                      (* Bloom indexing, not authentication: a collision
                         costs one false-positive drop. *)
                      Monitor.Duplicate_filter.check_and_insert f ~now
                        (* lint: allow poly-hash *)
                        (Hashtbl.hash
                           ( key.src_as.isd,
                             key.src_as.num,
                             key.res_id,
                             Timebase.Ts.to_int packet.ts,
                             actual_size ) [@colibri.allow "d3"])
                in
                if not fresh then drop Duplicate
                else if police t ~now ~key ~actual_size then drop Policed
                else begin
                  (* Probabilistic monitoring over all EER flows. *)
                  (match (cls, t.ofd) with
                  | `Eer _, Some ofd ->
                      let normalized =
                        8. *. float_of_int actual_size /. Bandwidth.to_bps ri.bw
                      in
                      (match Monitor.Ofd.observe ofd ~now ~key ~normalized with
                      | `Suspect ->
                          t.stats.suspects_flagged <- t.stats.suspects_flagged + 1;
                          Obs.Counter.incr t.metrics.m_suspects;
                          if not (Ids.Res_key_tbl.mem t.watched key) then
                            Ids.Res_key_tbl.replace t.watched key
                              (Monitor.Token_bucket.create ~rate:ri.bw ~burst:0.1 ~now)
                      | `Ok -> ())
                  | _ -> ());
                  t.stats.forwarded <- t.stats.forwarded + 1;
                  Obs.Counter.incr t.metrics.m_forwarded;
                  match cls with
                  | `Seg -> Ok To_cserv
                  | `Eer eer_info ->
                      if hop.egress = Ids.local_iface then Ok (Deliver eer_info.dst_host)
                      else Ok (Forward hop.egress)
                end
          end
        end
  end

(* Own-hop scan directly on the view: index of this AS on the path, or
   -1. A loop over unboxed int accessors — no hop records, no list. *)
(* hot-path *)
let rec own_hop_view (v : Packet.View.t) ~(isd : int) ~(num : int) ~(hops : int)
    (i : int) : int =
  if i >= hops then -1
  else if Packet.View.hop_isd v i = isd && Packet.View.hop_num v i = num then i
  else own_hop_view v ~isd ~num ~hops (i + 1)

(* The validation pipeline of [process], re-expressed over the parsed
   view: blocklist → own-hop scan → expiry → freshness → HVF →
   monitors → route. Same checks, same order, same drop accounting —
   but field reads are unboxed, MACs run in the per-router scratch, and
   monitor-state lookups that need key records are gated on occupancy,
   so a valid SegR packet on a bare router allocates nothing at all
   (the zero-minor-words regression test holds this). *)
(* hot-path *)
let process_view (t : t) ~(actual_size : int) : (action, drop_reason) result =
  let v = t.view in
  let now = t.clock () in
  let drop r =
    t.stats.dropped <- t.stats.dropped + 1;
    Obs.Counter.incr t.metrics.m_dropped.(drop_index r);
    Error r
  in
  if
    Monitor.Blocklist.size t.blocklist > 0
    && Monitor.Blocklist.is_blocked t.blocklist
         (Ids.asn ~isd:(Packet.View.src_isd v) ~num:(Packet.View.src_num v))
  then drop Blocked_source
  else begin
    let hops = Packet.View.hops v in
    let i = own_hop_view v ~isd:t.asn.isd ~num:t.asn.num ~hops 0 in
    if i < 0 then drop Not_on_path
    else begin
      (* Expiry: reservation must still be valid (± clock skew). The
         float fields are recovered from the raw µs/bps integers, which
         agrees with the boxed decode for any value a gateway can emit
         (see Packet.View.exp_time_us). *)
      let exp_time = float_of_int (Packet.View.exp_time_us v) /. 1e6 in
      if now > exp_time +. Timebase.max_skew then drop Expired_reservation
      else begin
        (* Freshness: the timestamp must lie within the window that
           covers clock skew plus maximum forwarding delay. *)
        let sent =
          exp_time -. (float_of_int (Timebase.Ts.to_int (Packet.View.ts v)) /. 1e6)
        in
        if Float.abs (now -. sent) > t.freshness_window then drop Stale_timestamp
        else begin
          let is_eer =
            match Packet.View.kind v with Packet.Eer -> true | Packet.Seg -> false
          in
          let hvf_ok =
            if is_eer then
              Hvf.eer_check t.secret t.hscr v ~hop:i ~pkt_size:actual_size
            else Hvf.seg_check t.secret t.hscr v ~hop:i
          in
          if not hvf_ok then drop Invalid_hvf
          else begin
            (* Replay suppression [32]: all copies of a seen packet are
               discarded. The hash tuple keeps the exact shape of the
               record-based path, so both paths index the same Bloom
               positions for the same packet. *)
            let fresh =
              match t.duplicates with
              | None -> true
              | Some f ->
                  Monitor.Duplicate_filter.check_and_insert f ~now
                    (* lint: allow poly-hash *)
                    (Hashtbl.hash
                       ( Packet.View.src_isd v,
                         Packet.View.src_num v,
                         Packet.View.res_id v,
                         Timebase.Ts.to_int (Packet.View.ts v),
                         actual_size ) [@colibri.allow "d3"])
            in
            if not fresh then drop Duplicate
            else begin
              let policed =
                Ids.Res_key_tbl.length t.watched > 0
                &&
                let key : Ids.res_key =
                  {
                    src_as =
                      Ids.asn ~isd:(Packet.View.src_isd v)
                        ~num:(Packet.View.src_num v);
                    res_id = Packet.View.res_id v;
                  }
                in
                police t ~now ~key ~actual_size
              in
              if policed then drop Policed
              else begin
                (* Probabilistic monitoring over all EER flows. *)
                (match t.ofd with
                | Some ofd when is_eer ->
                    let key : Ids.res_key =
                      {
                        src_as =
                          Ids.asn ~isd:(Packet.View.src_isd v)
                            ~num:(Packet.View.src_num v);
                        res_id = Packet.View.res_id v;
                      }
                    in
                    let bw_bps = float_of_int (Packet.View.bw_bps_int v) in
                    let normalized = 8. *. float_of_int actual_size /. bw_bps in
                    (match Monitor.Ofd.observe ofd ~now ~key ~normalized with
                    | `Suspect ->
                        t.stats.suspects_flagged <- t.stats.suspects_flagged + 1;
                        Obs.Counter.incr t.metrics.m_suspects;
                        if not (Ids.Res_key_tbl.mem t.watched key) then
                          Ids.Res_key_tbl.replace t.watched key
                            (Monitor.Token_bucket.create
                               ~rate:(Bandwidth.of_bps bw_bps) ~burst:0.1 ~now)
                    | `Ok -> ())
                | _ -> ());
                t.stats.forwarded <- t.stats.forwarded + 1;
                Obs.Counter.incr t.metrics.m_forwarded;
                if not is_eer then Ok To_cserv
                else begin
                  let egress = Packet.View.hop_egress v i in
                  if egress = Ids.local_iface then
                    Ok (Deliver (Ids.host (Packet.View.eer_dst_addr v)))
                  else Ok (Forward egress)
                end
              end
            end
          end
        end
      end
    end
  end

(** Full fast path from raw bytes: parse, validate, route — what a
    border router actually executes per packet (§7.1 measures this
    end-to-end, "including header updates"). Validation runs directly
    on the router's reusable {!Packet.View}; after warm-up a valid
    SegR packet is processed with zero minor-heap allocation. *)
(* hot-path *)
let process_bytes (t : t) ~(raw : bytes) ~(payload_len : int) :
    (action, drop_reason) result =
  match Packet.View.parse t.view raw with
  | Error e ->
      t.stats.dropped <- t.stats.dropped + 1;
      Obs.Counter.incr t.metrics.m_dropped.(drop_index (Parse_error e));
      Error (Parse_error e)
  | Ok () -> process_view t ~actual_size:(Bytes.length raw + payload_len)
