(* The N-Tube-style admission algorithms moved to [lib/backends] when
   admission became pluggable (DESIGN.md §12); this alias keeps the
   historical [Colibri.Admission] name — and the many call sites using
   it — pointing at the reference backend. *)
include Backends.Ntube
