(** Reservation state: segment reservations (SegRs) and end-to-end
    reservations (EERs), with the versioning and renewal semantics of
    §4.2.

    - SegRs are intermediate-term AS-to-AS reservations (≈5 minutes).
      Only one version is {e active} at a time; a renewal creates a
      {e pending} version that must be activated by an explicit request,
      so ASes control the switch instant and no over-allocation with
      EERs can occur.
    - EERs are short-term host-to-host reservations (16 s). Multiple
      versions of an EER may be valid simultaneously for seamless
      renewal; monitoring maps all versions of an EER to the same flow,
      so concurrent versions grant the {e maximum}, not the sum, of
      their bandwidths. EERs expire automatically and cannot be removed
      early. *)

open Colibri_types

(** Default validity periods from the paper. *)
let segr_lifetime : Timebase.t = 300. (* ≈ five minutes (§3.3) *)

let eer_lifetime : Timebase.t = 16. (* fixed EER validity (§3.3) *)

type seg_kind = Up | Down | Core

let seg_kind_of_segment : Segments.kind -> seg_kind = function
  | Segments.Up -> Up
  | Segments.Down -> Down
  | Segments.Core -> Core

let pp_seg_kind ppf = function
  | Up -> Fmt.string ppf "up"
  | Down -> Fmt.string ppf "down"
  | Core -> Fmt.string ppf "core"

type version = { version : int; bw : Bandwidth.t; exp_time : Timebase.t }

let version_valid (v : version) ~(now : Timebase.t) = now < v.exp_time

(** A segment reservation as stored at each on-path AS and at the
    initiator. *)
type segr = {
  key : Ids.res_key;
  kind : seg_kind;
  path : Path.t;
  mutable active : version option;
  mutable pending : version option;
  mutable tokens : bytes list;
      (** At the initiator only: the per-AS tokens of Eq. (3) returned
          in the setup response (source first). Empty elsewhere. *)
  mutable allowed_ases : Ids.Asn_set.t option;
      (** Whitelist of ASes allowed to build EERs over this SegR when
          it is shared (Appendix C); [None] = initiator only. *)
}

(** Bandwidth available on a SegR right now: its active version (a
    pending version holds no bandwidth until activated). *)
let segr_bw (s : segr) ~(now : Timebase.t) : Bandwidth.t =
  match s.active with
  | Some v when version_valid v ~now -> v.bw
  | _ -> Bandwidth.zero

let segr_expired (s : segr) ~now =
  (match s.active with Some v -> not (version_valid v ~now) | None -> true)
  && match s.pending with Some v -> not (version_valid v ~now) | None -> true

(** Activate the pending version (§4.2): the pending version becomes
    the single active one. Fails if there is no valid pending
    version. *)
let activate (s : segr) ~(now : Timebase.t) : (unit, string) result =
  match s.pending with
  | Some v when version_valid v ~now ->
      s.active <- Some v;
      s.pending <- None;
      Ok ()
  | Some _ -> Error "pending version already expired"
  | None -> Error "no pending version"

(** An end-to-end reservation as stored at the source AS (gateway +
    CServ); on-path ASes keep only accounting aggregates, not per-EER
    state (that is the point of the architecture). *)
type eer = {
  key : Ids.res_key;
  path : Path.t;
  src_host : Ids.host;
  dst_host : Ids.host;
  segr_keys : Ids.res_key list; (* the 1–3 SegRs the EER was built over *)
  mutable versions : version list; (* newest first; expired pruned lazily *)
}

let prune_eer (e : eer) ~now =
  e.versions <- List.filter (fun v -> version_valid v ~now) e.versions

(** All currently valid versions, newest (highest version number)
    first. *)
let eer_valid_versions (e : eer) ~now : version list =
  prune_eer e ~now;
  List.sort (fun a b -> Int.compare b.version a.version) e.versions

(** The bandwidth the EER's holder may use now: the maximum over valid
    versions (§4.8 — versions share one monitored flow). *)
let eer_bw (e : eer) ~now : Bandwidth.t =
  List.fold_left (fun acc v -> Bandwidth.max acc v.bw) Bandwidth.zero
    (eer_valid_versions e ~now)

let eer_expired (e : eer) ~now = List.is_empty (eer_valid_versions e ~now)

(** Latest valid version — the one the gateway stamps into packets. *)
let eer_current_version (e : eer) ~now : version option =
  match eer_valid_versions e ~now with [] -> None | v :: _ -> Some v

(** Add a version from a successful setup/renewal response. Version
    numbers must increase. *)
let add_eer_version (e : eer) (v : version) : (unit, string) result =
  if List.exists (fun x -> x.version >= v.version) e.versions then
    Error "version number must increase"
  else begin
    e.versions <- v :: e.versions;
    Ok ()
  end

let res_info_of_segr (s : segr) (v : version) : Packet.res_info =
  {
    src_as = s.key.src_as;
    res_id = s.key.res_id;
    bw = v.bw;
    exp_time = v.exp_time;
    version = v.version;
  }

let res_info_of_eer (e : eer) (v : version) : Packet.res_info =
  {
    src_as = e.key.src_as;
    res_id = e.key.res_id;
    bw = v.bw;
    exp_time = v.exp_time;
    version = v.version;
  }

let eer_info_of_eer (e : eer) : Packet.eer_info =
  { src_host = e.src_host; dst_host = e.dst_host }
