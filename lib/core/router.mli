(** The Colibri border router (§4.6): per-packet validation and
    forwarding without any per-flow or per-reservation state.

    For each packet the router validates format, freshness, and
    reservation expiry, then recomputes the hop validation field from
    the single AS secret [K_i]: directly via Eq. (3) for SegR packets,
    or via the two-step Eq. (4) → Eq. (6) for EER packets. A matching
    HVF proves both that the source AS authorized the packet (and thus
    performed its monitoring duty) and that this AS admitted the
    reservation.

    The router also hosts the monitoring hooks of §4.8: the
    probabilistic overuse-flow detector over all EER flows, the
    deterministic token-bucket policing of flagged suspects, the
    duplicate-suppression filter, and the blocklist of confirmed
    offenders — all with bounded memory independent of the number of
    flows. *)

open Colibri_types

type t

(** Where a validated packet goes next. *)
type action =
  | Forward of Ids.iface  (** next border router via this egress *)
  | Deliver of Ids.host  (** last AS: hand to the destination host *)
  | To_cserv  (** SegR (control) packets go to the local CServ *)

type drop_reason =
  | Parse_error of Packet.parse_error
  | Not_on_path
  | Expired_reservation
  | Stale_timestamp
  | Invalid_hvf
  | Blocked_source
  | Duplicate
  | Policed  (** watched overuser exceeding its reservation *)

val pp_drop_reason : drop_reason Fmt.t

type stats = {
  mutable forwarded : int;
  mutable dropped : int;
  mutable suspects_flagged : int;
  mutable confirmed_overuse : int;
}

val create :
  ?freshness_window:Timebase.t ->
  ?ofd:[ `Default | `None | `Custom of Monitor.Ofd.t ] ->
  ?duplicates:[ `Default | `None | `Custom of Monitor.Duplicate_filter.t ] ->
  ?report:(src:Ids.asn -> unit) ->
  ?auto_block:bool ->
  ?confirm_after_drops:int ->
  ?registry:Obs.Registry.t ->
  secret:Hvf.as_secret ->
  clock:Timebase.clock ->
  Ids.asn ->
  t
(** [ofd] and [duplicates] default to enabled with modest footprints;
    pass [`None] to measure the bare fast path as the paper does for
    the duplicate-suppression system (§7.1). [report] receives
    confirmed-overuse notifications (typically wired to
    {!Cserv.report_misbehavior}); with [auto_block] the offender is
    also blocklisted locally. [registry] receives the router's
    drop-accounting metrics (DESIGN.md §7); a private registry is
    created when omitted. *)

val blocklist : t -> Monitor.Blocklist.t
val stats : t -> stats
val watched_count : t -> int

val metrics : t -> Obs.Registry.t
(** The router's metric registry: [router_forwarded_total],
    [router_dropped_total{reason=...}] (one counter per
    {!drop_reason}), suspect/overuse counters, and occupancy gauges
    over the §4.8 monitors (duplicate-filter bits set and fill ratio,
    OFD sketch saturation, watched-flow token fill, blocklist size).
    Gauges are sampled only at snapshot time and never mutate monitor
    state. *)

val watch : t -> key:Ids.res_key -> rate:Bandwidth.t -> unit
(** Explicitly place a reservation under deterministic token-bucket
    monitoring at its reserved rate — the state a flagged suspect ends
    up in (§4.8); Table 2's phase 3 pre-installs this. *)

val process : t -> packet:Packet.t -> actual_size:int -> (action, drop_reason) result
(** Validate and route one already-parsed packet whose true wire size
    is [actual_size] bytes. The HVF authenticates [PktSize], so a
    mismatch between declared and actual size fails validation. *)

val process_bytes : t -> raw:bytes -> payload_len:int -> (action, drop_reason) result
(** Full fast path from raw bytes: parse, validate, route — what a
    border router executes per packet (§7.1 measures this end to
    end). *)
