(** Colibri packet format (§4.3, Eq. (2)).

    {v
    Packet  = Path ‖ ResInfo ‖ EERInfo ‖ Ts ‖ V_0 ‖ … ‖ V_l ‖ Payload
    Path    = (In_0, Eg_0) ‖ … ‖ (In_l, Eg_l)
    ResInfo = SrcAS ‖ ResId ‖ Bw ‖ ExpT ‖ Ver
    EERInfo = SrcHost ‖ DstHost
    v}

    One format serves all Colibri control- and data-plane traffic; the
    [kind] flag distinguishes packets on segment reservations (where
    [EERInfo] is unused) from packets on end-to-end reservations. The
    wire encoding is fixed-width big-endian throughout, so MAC inputs
    are canonical. *)

open Colibri_types

type kind = Seg | Eer

type res_info = {
  src_as : Ids.asn;
  res_id : Ids.res_id;
  bw : Bandwidth.t;
  exp_time : Timebase.t;
  version : int;
}

type eer_info = { src_host : Ids.host; dst_host : Ids.host }

type t = {
  kind : kind;
  path : Path.t;
  res_info : res_info;
  eer_info : eer_info option; (* Some for EER data packets, None for SegR *)
  ts : Timebase.Ts.t;
  hvfs : bytes array; (* V_i, ℓ_hvf bytes each, one per on-path AS *)
  payload_len : int; (* payload carried (bytes); contents are opaque here *)
}

let res_key (p : t) : Ids.res_key =
  { src_as = p.res_info.src_as; res_id = p.res_info.res_id }

(** Hop-validation-field length ℓ_hvf (§4.5): 4 bytes, as in the
    paper; short static MACs are acceptable given the short lifetime of
    reservations. *)
let hvf_len = 4

(* -- Canonical encodings used both on the wire and as MAC inputs -- *)

let res_info_len = 32

let res_info_to_bytes (r : res_info) : bytes =
  let b = Bytes.create res_info_len in
  Bytes.blit (Ids.asn_to_bytes r.src_as) 0 b 0 8;
  Bytes.set_int32_be b 8 (Int32.of_int r.res_id);
  Bytes.set_int64_be b 12 (Int64.of_float (Float.round (Bandwidth.to_bps r.bw)));
  Bytes.set_int64_be b 20 (Int64.of_float (Float.round (r.exp_time *. 1e6)));
  Bytes.set_int32_be b 28 (Int32.of_int r.version);
  b

let res_info_of_bytes b ~off : res_info =
  {
    src_as = Ids.asn_of_bytes b ~off;
    res_id = Int32.to_int (Bytes.get_int32_be b (off + 8));
    bw = Bandwidth.of_bps (Int64.to_float (Bytes.get_int64_be b (off + 12)));
    exp_time = Int64.to_float (Bytes.get_int64_be b (off + 20)) /. 1e6;
    version = Int32.to_int (Bytes.get_int32_be b (off + 28));
  }

let eer_info_len = 8

let eer_info_to_bytes (e : eer_info) : bytes =
  let b = Bytes.create eer_info_len in
  Bytes.set_int32_be b 0 (Int32.of_int e.src_host.addr);
  Bytes.set_int32_be b 4 (Int32.of_int e.dst_host.addr);
  b

let eer_info_of_bytes b ~off : eer_info =
  {
    src_host = Ids.host (Int32.to_int (Bytes.get_int32_be b off));
    dst_host = Ids.host (Int32.to_int (Bytes.get_int32_be b (off + 4)));
  }

(* Header: magic(2) kind(1) hop_count(1) payload_len(4) ts(8)
           path(20·n) res_info(32) eer_info(8) hvfs(4·n) *)
let magic = 0xC01B
let fixed_header_len = 2 + 1 + 1 + 4 + 8

let header_len ~hops =
  fixed_header_len + (hops * Path.hop_byte_size) + res_info_len + eer_info_len
  + (hops * hvf_len)

(** Total wire size of the packet: header plus payload. This is the
    [PktSize] that Eq. (6) authenticates, so an AS flooding tiny or
    header-only packets is still accountable for their full cost. *)
let wire_size (p : t) : int = header_len ~hops:(Path.length p.path) + p.payload_len

type parse_error =
  | Truncated
  | Bad_magic
  | Bad_kind
  | Bad_hop_count
  | Bad_payload_len
  | Bad_path of Path.error

let pp_parse_error ppf = function
  | Truncated -> Fmt.string ppf "truncated packet"
  | Bad_magic -> Fmt.string ppf "bad magic"
  | Bad_kind -> Fmt.string ppf "bad kind byte"
  | Bad_hop_count -> Fmt.string ppf "bad hop count"
  | Bad_payload_len -> Fmt.string ppf "negative payload length"
  | Bad_path e -> Fmt.pf ppf "bad path: %a" Path.pp_error e

(** Serialize the header; the payload is represented by its length
    only (contents are opaque to Colibri processing). *)
let to_bytes (p : t) : bytes =
  let hops = Path.length p.path in
  let b = Bytes.make (header_len ~hops) '\000' in
  Bytes.set_uint16_be b 0 magic;
  Bytes.set_uint8 b 2 (match p.kind with Seg -> 0 | Eer -> 1);
  Bytes.set_uint8 b 3 hops;
  Bytes.set_int32_be b 4 (Int32.of_int p.payload_len);
  Bytes.set_int64_be b 8 (Int64.of_int (Timebase.Ts.to_int p.ts));
  let off = fixed_header_len in
  Bytes.blit (Path.to_bytes p.path) 0 b off (hops * Path.hop_byte_size);
  let off = off + (hops * Path.hop_byte_size) in
  Bytes.blit (res_info_to_bytes p.res_info) 0 b off res_info_len;
  let off = off + res_info_len in
  (match p.eer_info with
  | Some e -> Bytes.blit (eer_info_to_bytes e) 0 b off eer_info_len
  | None -> ());
  let off = off + eer_info_len in
  Array.iteri (fun i v -> Bytes.blit v 0 b (off + (i * hvf_len)) hvf_len) p.hvfs;
  b

let of_bytes (b : bytes) : (t, parse_error) result =
  let len = Bytes.length b in
  if len < fixed_header_len then Error Truncated
  else if Bytes.get_uint16_be b 0 <> magic then Error Bad_magic
  else begin
    match Bytes.get_uint8 b 2 with
    | (0 | 1) as kind_byte ->
        let hops = Bytes.get_uint8 b 3 in
        if hops < 1 then Error Bad_hop_count
        else if len < header_len ~hops then Error Truncated
        else begin
          let payload_len = Int32.to_int (Bytes.get_int32_be b 4) in
          (* A negative length would shrink [wire_size]/[actual_size]
             and corrupt the Eq. (6) size accounting downstream. *)
          if payload_len < 0 then Error Bad_payload_len
          else begin
          let ts = Timebase.Ts.of_int (Int64.to_int (Bytes.get_int64_be b 8)) in
          let off = fixed_header_len in
          let path = Path.of_bytes b ~off ~count:hops in
          match Path.validate path with
          | Error e -> Error (Bad_path e)
          | Ok () ->
              let off = off + (hops * Path.hop_byte_size) in
              let res_info = res_info_of_bytes b ~off in
              let off = off + res_info_len in
              let kind = if kind_byte = 0 then Seg else Eer in
              let eer_info =
                match kind with Seg -> None | Eer -> Some (eer_info_of_bytes b ~off)
              in
              let off = off + eer_info_len in
              let hvfs =
                Array.init hops (fun i -> Bytes.sub b (off + (i * hvf_len)) hvf_len)
              in
              Ok { kind; path; res_info; eer_info; ts; hvfs; payload_len }
          end
        end
    | _ -> Error Bad_kind
  end

(** {2 Unboxed big-endian accessors}

    [Bytes.get_int32_be]/[get_int64_be] return boxed values, and the
    [Int32]/[Int64] conversions box again — each read costs minor-heap
    words. These helpers produce/consume native [int]s with the exact
    semantics of the boxed path ([Int32.to_int] sign extension,
    [Int64.to_int] wrap-around, [Int32.of_int]/[Int64.of_int]
    truncation), which the differential tests check, so {!View} and
    the routers can read headers without allocating. *)
module Wire = struct
  (* hot-path *)
  let get16 (b : bytes) (off : int) : int =
    (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

  (* Sign-extending: agrees with [Int32.to_int (Bytes.get_int32_be b off)]. *)
  (* hot-path *)
  let get32 (b : bytes) (off : int) : int =
    let v =
      (Char.code (Bytes.get b off) lsl 24)
      lor (Char.code (Bytes.get b (off + 1)) lsl 16)
      lor (Char.code (Bytes.get b (off + 2)) lsl 8)
      lor Char.code (Bytes.get b (off + 3))
    in
    (v lxor 0x80000000) - 0x80000000

  (* 63-bit wrap: agrees with [Int64.to_int (Bytes.get_int64_be b off)]. *)
  (* hot-path *)
  let get64 (b : bytes) (off : int) : int =
    (Char.code (Bytes.get b off) lsl 56)
    lor (Char.code (Bytes.get b (off + 1)) lsl 48)
    lor (Char.code (Bytes.get b (off + 2)) lsl 40)
    lor (Char.code (Bytes.get b (off + 3)) lsl 32)
    lor (Char.code (Bytes.get b (off + 4)) lsl 24)
    lor (Char.code (Bytes.get b (off + 5)) lsl 16)
    lor (Char.code (Bytes.get b (off + 6)) lsl 8)
    lor Char.code (Bytes.get b (off + 7))

  (* hot-path *)
  let put16 (b : bytes) (off : int) (v : int) =
    Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b (off + 1) (Char.chr (v land 0xff))

  (* Low-32 truncation: agrees with [Bytes.set_int32_be b off (Int32.of_int v)]. *)
  (* hot-path *)
  let put32 (b : bytes) (off : int) (v : int) =
    Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
    Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b (off + 3) (Char.chr (v land 0xff))

  (* Sign extension: agrees with [Bytes.set_int64_be b off (Int64.of_int v)]. *)
  (* hot-path *)
  let put64 (b : bytes) (off : int) (v : int) =
    Bytes.set b off (Char.chr ((v asr 56) land 0xff));
    Bytes.set b (off + 1) (Char.chr ((v asr 48) land 0xff));
    Bytes.set b (off + 2) (Char.chr ((v asr 40) land 0xff));
    Bytes.set b (off + 3) (Char.chr ((v asr 32) land 0xff));
    Bytes.set b (off + 4) (Char.chr ((v asr 24) land 0xff));
    Bytes.set b (off + 5) (Char.chr ((v asr 16) land 0xff));
    Bytes.set b (off + 6) (Char.chr ((v asr 8) land 0xff));
    Bytes.set b (off + 7) (Char.chr (v land 0xff))
end

(* Structural path validation straight off the wire, mirroring
   [Path.validate] on the parsed hop list check for check (same error,
   same order) without materializing the list. Errors carry AS records,
   but those arms are reject paths; the accept path is allocation-free. *)
(* Does AS (isd, num) already appear among hops [j, i)? Top-level so no
   closure is built per hop. *)
(* hot-path *)
let rec hop_as_repeated (b : bytes) ~(isd : int) ~(num : int) (j : int) (i : int)
    : bool =
  j < i
  && ((let o = fixed_header_len + (j * Path.hop_byte_size) in
       Wire.get32 b o = isd && Wire.get32 b (o + 4) = num)
     || hop_as_repeated b ~isd ~num (j + 1) i)

(* hot-path *)
let rec validate_path_hop (b : bytes) ~(hops : int) (i : int) :
    (unit, Path.error) result =
  if i >= hops then Ok ()
  else begin
    let off = fixed_header_len + (i * Path.hop_byte_size) in
    let isd = Wire.get32 b off and num = Wire.get32 b (off + 4) in
    if hop_as_repeated b ~isd ~num 0 i then Error (Path.Repeated_as (Ids.asn ~isd ~num))
    else begin
      let ingress = Wire.get32 b (off + 8) and egress = Wire.get32 b (off + 12) in
      if
        (i = 0 || ingress <> Ids.local_iface)
        && (i = hops - 1 || egress <> Ids.local_iface)
      then validate_path_hop b ~hops (i + 1)
      else Error (Path.Zero_transit_iface (Ids.asn ~isd ~num))
    end
  end

(* hot-path *)
let validate_path_raw (b : bytes) ~(hops : int) : (unit, Path.error) result =
  if Wire.get32 b (fixed_header_len + 8) <> Ids.local_iface then
    Error Path.Bad_source_ingress
  else if
    Wire.get32 b (fixed_header_len + ((hops - 1) * Path.hop_byte_size) + 12)
    <> Ids.local_iface
  then Error Path.Bad_destination_egress
  else validate_path_hop b ~hops 0

(** Validated cursor over a raw packet buffer (DESIGN.md §8).

    A [View.t] is a small mutable scratch record owned by one consumer
    (one router instance, one test harness): {!parse} re-points it at a
    buffer and re-validates, and the accessors then read straight out
    of that buffer with no per-packet allocation. The contract is
    strict validation-before-access: accessors are meaningful only
    after the most recent {!parse} on this view returned [Ok ()], and
    only until the buffer is next mutated or the view re-parsed.
    {!parse} applies exactly the checks of {!of_bytes}, in the same
    order, and returns the same verdict — the differential QCheck suite
    holds the two parsers together. *)
module View = struct
  type t = {
    mutable buf : bytes;
    mutable vkind : kind;
    mutable vhops : int;
    mutable vpayload_len : int;
    mutable vts : int;
    mutable vres_off : int;
  }

  let create () =
    {
      buf = Bytes.empty;
      vkind = Seg;
      vhops = 0;
      vpayload_len = 0;
      vts = 0;
      vres_off = 0;
    }

  (* hot-path *)
  let parse (v : t) (b : bytes) : (unit, parse_error) result =
    let len = Bytes.length b in
    if len < fixed_header_len then Error Truncated
    else if Wire.get16 b 0 <> magic then Error Bad_magic
    else begin
      match Bytes.get_uint8 b 2 with
      | (0 | 1) as kind_byte ->
          let hops = Bytes.get_uint8 b 3 in
          if hops < 1 then Error Bad_hop_count
          else if len < header_len ~hops then Error Truncated
          else begin
            let payload_len = Wire.get32 b 4 in
            if payload_len < 0 then Error Bad_payload_len
            else begin
              match validate_path_raw b ~hops with
              | Error e -> Error (Bad_path e)
              | Ok () ->
                  v.buf <- b;
                  v.vkind <- (if kind_byte = 0 then Seg else Eer);
                  v.vhops <- hops;
                  v.vpayload_len <- payload_len;
                  v.vts <- Wire.get64 b 8;
                  v.vres_off <-
                    fixed_header_len + (hops * Path.hop_byte_size);
                  Ok ()
            end
          end
      | _ -> Error Bad_kind
    end

  (* -- Cursor geometry -- *)

  let buffer (v : t) = v.buf
  let kind (v : t) = v.vkind
  let hops (v : t) = v.vhops
  let payload_len (v : t) = v.vpayload_len
  let ts (v : t) : Timebase.Ts.t = Timebase.Ts.of_int v.vts
  let res_off (v : t) = v.vres_off
  let eer_off (v : t) = v.vres_off + res_info_len
  let hop_off (_ : t) (i : int) = fixed_header_len + (i * Path.hop_byte_size)
  let hvf_off (v : t) (i : int) = v.vres_off + res_info_len + eer_info_len + (i * hvf_len)
  let header_length (v : t) = header_len ~hops:v.vhops
  let wire_size (v : t) = header_len ~hops:v.vhops + v.vpayload_len

  let res_info_span (v : t) : int * int = (v.vres_off, res_info_len)

  (* -- Field accessors (unboxed; same conversions as [of_bytes]) -- *)

  let src_isd (v : t) = Wire.get32 v.buf v.vres_off
  let src_num (v : t) = Wire.get32 v.buf (v.vres_off + 4)
  let res_id (v : t) : Ids.res_id = Wire.get32 v.buf (v.vres_off + 8)
  let version (v : t) = Wire.get32 v.buf (v.vres_off + 28)

  (* Raw i64 field reads with [Int64.to_int] wrap — allocation-free.
     They agree with the exact [Int64.to_float]-based accessors below
     for every |value| < 2^62, i.e. for anything a gateway can emit;
     the routers use these, the differential tests use the exact ones. *)
  let bw_bps_int (v : t) = Wire.get64 v.buf (v.vres_off + 12)
  let exp_time_us (v : t) = Wire.get64 v.buf (v.vres_off + 20)

  let bw (v : t) : Bandwidth.t =
    Bandwidth.of_bps (Int64.to_float (Bytes.get_int64_be v.buf (v.vres_off + 12)))

  let exp_time (v : t) : Timebase.t =
    Int64.to_float (Bytes.get_int64_be v.buf (v.vres_off + 20)) /. 1e6

  let eer_src_addr (v : t) = Wire.get32 v.buf (eer_off v)
  let eer_dst_addr (v : t) = Wire.get32 v.buf (eer_off v + 4)

  let hop_isd (v : t) (i : int) = Wire.get32 v.buf (hop_off v i)
  let hop_num (v : t) (i : int) = Wire.get32 v.buf (hop_off v i + 4)
  let hop_ingress (v : t) (i : int) : Ids.iface = Wire.get32 v.buf (hop_off v i + 8)
  let hop_egress (v : t) (i : int) : Ids.iface = Wire.get32 v.buf (hop_off v i + 12)

  (* -- Allocating conveniences for the control plane and tests -- *)

  let hop (v : t) (i : int) : Path.hop = Path.hop_of_bytes v.buf ~off:(hop_off v i)
  let hvf (v : t) (i : int) : bytes = Bytes.sub v.buf (hvf_off v i) hvf_len
  let res_info (v : t) : res_info = res_info_of_bytes v.buf ~off:v.vres_off

  let eer_info (v : t) : eer_info option =
    match v.vkind with
    | Seg -> None
    | Eer -> Some (eer_info_of_bytes v.buf ~off:(eer_off v))
end

let pp ppf (p : t) =
  Fmt.pf ppf "@[<h>%s %a bw=%a exp=%a v%d %a len=%d@]"
    (match p.kind with Seg -> "SEG" | Eer -> "EER")
    Ids.pp_res_key (res_key p) Bandwidth.pp p.res_info.bw Timebase.pp
    p.res_info.exp_time p.res_info.version Timebase.Ts.pp p.ts p.payload_len
