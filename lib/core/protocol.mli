(** Control-plane messages (§4.4) and their authentication (§4.5).

    Setup and renewal requests for SegRs and EERs travel forward along
    the reservation path; each on-path AS verifies the source's MAC,
    runs admission, and appends its grant. The reply travels the
    reverse path carrying, on success, the final bandwidth and each
    AS's cryptographic material (the Eq. (3) token for SegRs; the
    AEAD-sealed Eq. (4)/(5) hop authenticator for EERs).

    Authentication uses DRKey (§2.3): for every on-path AS [i] the
    source AS attaches [MAC_{K_{AS_i→SrcAS}}(payload)]; the on-path AS
    re-derives that key with one PRF call — no per-source state — and
    uses the same key to authenticate the data it adds to the reply. *)

open Colibri_types

(** A SegR setup or renewal request. [res_info.bw] is the requested
    (maximum) bandwidth; a grant below [min_bw] is a denial. *)
type seg_request = {
  res_info : Packet.res_info;
  min_bw : Bandwidth.t;
  kind : Reservation.seg_kind;
  path : Path.t;
  renewal : bool;  (** renewals may travel over the existing SegR *)
}

(** An EER setup or renewal request over 1–3 underlying SegRs. *)
type eer_request = {
  res_info : Packet.res_info;
  eer_info : Packet.eer_info;
  path : Path.t;
  segr_keys : Ids.res_key list;  (** underlying SegRs, in path order *)
  renewal : bool;
}

val seg_request_digest : seg_request -> bytes
(** Canonical MAC input covering every request field. *)

val eer_request_digest : eer_request -> bytes

type request_auth = (Ids.asn * bytes) list
(** Per-AS request authenticators, computed by the source AS with the
    fetched keys [K_{AS_i→SrcAS}]. *)

val authenticate_request :
  digest:bytes -> key_for:(Ids.asn -> Crypto.Cmac.key) -> ases:Ids.asn list -> request_auth

val verify_request :
  digest:bytes -> asn:Ids.asn -> key:Crypto.Cmac.key -> auth:request_auth -> bool
(** Verification at AS [asn], which re-derives its key on the fly. *)

(** What one on-path AS contributes to a successful reply. [material]
    is the Eq. (3) token (SegR) or the sealed Eq. (4)/(5) hop
    authenticator (EER); [mac] authenticates
    [digest ‖ granted ‖ material] under the same DRKey, so the source
    can attribute every grant. *)
type reply_hop = {
  asn : Ids.asn;
  granted : Bandwidth.t;
  material : bytes;
  mac : bytes;
}

type deny_reason =
  | Insufficient_bandwidth of { available : Bandwidth.t }
  | Bad_authentication
  | Unknown_segr of Ids.res_key
  | Policy_refused
  | Destination_refused
  | Rate_limited
  | Expired_segr of Ids.res_key
      (** The SegR version changed or expired under the requester; it
          should refetch and retry (Appendix C). *)

val pp_deny_reason : deny_reason Fmt.t

type 'req reply =
  | Granted of { final_bw : Bandwidth.t; hops : reply_hop list (** path order *) }
  | Denied of { at : Ids.asn; reason : deny_reason }

val reply_hop_mac_input : digest:bytes -> granted:Bandwidth.t -> material:bytes -> bytes

val make_reply_hop :
  digest:bytes ->
  key:Crypto.Cmac.key ->
  asn:Ids.asn ->
  granted:Bandwidth.t ->
  material:bytes ->
  reply_hop

val verify_reply_hop : digest:bytes -> key:Crypto.Cmac.key -> reply_hop -> bool

(** {1 Wire-size estimates}

    Coarse message sizes for the simulated control network (§5.1,
    Table 1 spirit): right order of magnitude for link serialization,
    not exact encodings. *)

val seg_request_bytes : seg_request -> int
val eer_request_bytes : eer_request -> int

val reply_bytes : hops:int -> int
(** Size of a reply carrying [hops] {!reply_hop}s. *)

val drkey_request_bytes : int
val drkey_reply_bytes : int
