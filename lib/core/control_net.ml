(** Control-plane message transport over the simulated network, and
    the denial-of-capability protections of §5.3.

    The {!Deployment} orchestrator moves control messages between
    CServs instantaneously, which is exactly right for the admission
    benchmarks ("disregarding propagation delays", §6.1). This module
    adds the network underneath for experiments about the {e delivery}
    of control traffic: one simulated link per topology edge, with the
    class-based queuing of Appendix B.

    It demonstrates the paper's DoC story measurably:

    - initial SegReqs travel as best-effort traffic (§4.4) but "ASes
      can use the isolation mechanisms described in Appendix B to
      forward SegReqs with higher priority than best-effort traffic"
      (§5.3) — sending them as {!Net.Traffic_class.Colibri_control}
      keeps them deliverable under best-effort floods;
    - renewals travel {e over the existing reservation} as Colibri
      control traffic and are thus always isolated from best-effort
      congestion (§5.3 "Protected Control Traffic").

    The test suite measures both: a control-class message keeps its
    propagation latency under a 3× link flood while a best-effort
    message starves. *)

open Colibri_types
open Colibri_topology

type message = { bytes : int; track : bool; deliver : unit -> unit }

(* Round-trip accounting (DESIGN.md §7): every tracked control message
   ends up exactly once in delivered or lost, so after the engine
   drains, sent = delivered + lost — the invariant the chaos suite
   asserts. Losses cover tail drops, fault-injected drops (loss, link
   flaps), and broken routes; flood filler is not tracked. *)
type metrics = {
  m_sent : Obs.Counter.t;
  m_delivered : Obs.Counter.t;
  m_lost : Obs.Counter.t;
  m_flood_packets : Obs.Counter.t;
}

type t = {
  engine : Net.Engine.t;
  topo : Topology.t;
  (* One directed link per topology edge, keyed by (src, dst). *)
  links : message Net.Link.t Ids.Asn_pair_tbl.t;
  scheduler : Net.Link.scheduler;
  delay : float;
  faults : Net.Fault.t option;
  registry : Obs.Registry.t;
  metrics : metrics;
}

let link_key (a : Ids.asn) (b : Ids.asn) = (a, b)

(** Build the directed link mesh of the topology. [scheduler] defaults
    to the strict-priority queuing of Appendix B; [delay] is the
    per-link propagation delay; [faults] subjects every tracked message
    to the fault injector's per-link verdicts. *)
let create ?(scheduler = Net.Link.Strict_priority) ?(delay = 0.005) ?faults
    ?(registry = Obs.Registry.create ()) ~(engine : Net.Engine.t) (topo : Topology.t)
    : t =
  let metrics =
    {
      m_sent = Obs.Registry.counter registry "control_net_messages_sent_total";
      m_delivered =
        Obs.Registry.counter registry "control_net_messages_delivered_total";
      m_lost = Obs.Registry.counter registry "control_net_messages_lost_total";
      m_flood_packets =
        Obs.Registry.counter registry "control_net_flood_packets_total";
    }
  in
  let t =
    { engine; topo; links = Ids.Asn_pair_tbl.create 64; scheduler; delay;
      faults; registry; metrics }
  in
  Topology.ases topo
  |> List.iter (fun asn ->
         Topology.links topo asn
         |> List.iter (fun (l : Topology.link) ->
                let key = link_key asn l.remote_as in
                if not (Ids.Asn_pair_tbl.mem t.links key) then
                  Ids.Asn_pair_tbl.replace t.links key
                    (Net.Link.create ~engine ~capacity:l.capacity ~delay ~scheduler
                       ~on_drop:(fun (p : message Net.Link.packet) ->
                         if p.payload.track then Obs.Counter.incr metrics.m_lost)
                       ~deliver:(fun (p : message Net.Link.packet) ->
                         p.payload.deliver ())
                       ())));
  t

let link (t : t) ~(src : Ids.asn) ~(dst : Ids.asn) : message Net.Link.t option =
  Ids.Asn_pair_tbl.find_opt t.links (link_key src dst)

let metrics (t : t) = t.registry
let sent_count (t : t) = Obs.Counter.value t.metrics.m_sent
let delivered_count (t : t) = Obs.Counter.value t.metrics.m_delivered
let lost_count (t : t) = Obs.Counter.value t.metrics.m_lost

(** Inject best-effort background traffic on the [src → dst] link — the
    flooding adversary of §5.3. Returns the source so tests can stop
    it. *)
let flood (t : t) ~(src : Ids.asn) ~(dst : Ids.asn) ~(rate : Bandwidth.t)
    ?(packet_bytes = 1500) () : Net.Source.t =
  match link t ~src ~dst with
  | None -> invalid_arg "Control_net.flood: no such link"
  | Some l ->
      let s =
        Net.Source.create ~engine:t.engine ~rate ~packet_bytes ~emit:(fun bytes ->
            Obs.Counter.incr t.metrics.m_flood_packets;
            Net.Link.send l ~bytes ~cls:Net.Traffic_class.Best_effort
              { bytes; track = false; deliver = ignore })
      in
      Net.Source.start s;
      s

(** Send one control-plane message of [bytes] along the AS-level
    [route] (adjacent ASes), in the given traffic class; [deliver]
    fires when the last hop receives it. Messages that are tail-dropped
    on a congested link, killed by the fault injector, or sent down a
    broken route count as lost — exactly the DoC exposure of
    unprotected setup requests, widened to the full failure model. *)
let send_along (t : t) ~(route : Ids.asn list) ~(cls : Net.Traffic_class.t)
    ~(bytes : int) ~(deliver : unit -> unit) : unit =
  Obs.Counter.incr t.metrics.m_sent;
  let lose () = Obs.Counter.incr t.metrics.m_lost in
  let rec hop = function
    | [] | [ _ ] ->
        Obs.Counter.incr t.metrics.m_delivered;
        deliver ()
    | a :: (b :: _ as rest) -> (
        match link t ~src:a ~dst:b with
        | None -> lose () (* broken route *)
        | Some l -> (
            let forward () =
              Net.Link.send l ~bytes ~cls
                { bytes; track = true; deliver = (fun () -> hop rest) }
            in
            match t.faults with
            | None -> forward ()
            | Some f -> (
                match
                  Net.Fault.judge f ~src:a ~dst:b ~now:(Net.Engine.now t.engine)
                with
                | Net.Fault.Drop _ -> lose ()
                | Net.Fault.Deliver { extra_delay } ->
                    if extra_delay > 0. then
                      Net.Engine.schedule t.engine ~delay:extra_delay forward
                    else forward ())))
  in
  hop route

(** Measure the one-way latency of a control message along [route]
    under current network conditions; [None] if it was not delivered
    within [timeout] simulated seconds. The engine is run forward up
    to [timeout]. *)
let measure_latency (t : t) ~(route : Ids.asn list) ~(cls : Net.Traffic_class.t)
    ~(bytes : int) ~(timeout : float) : float option =
  let t0 = Net.Engine.now t.engine in
  let arrival = ref None in
  send_along t ~route ~cls ~bytes ~deliver:(fun () ->
      if Option.is_none !arrival then arrival := Some (Net.Engine.now t.engine -. t0));
  Net.Engine.run t.engine ~until:(t0 +. timeout);
  !arrival

(** The paper's two control-traffic protection levels (§5.3), as data:
    how a request class is carried. *)
type protection =
  | Unprotected_best_effort (* naive initial SegReq *)
  | Prioritized_control (* SegReq with App.-B prioritization *)
  | Over_reservation (* renewal/EEReq over an existing SegR *)

let class_of_protection : protection -> Net.Traffic_class.t = function
  | Unprotected_best_effort -> Net.Traffic_class.Best_effort
  | Prioritized_control | Over_reservation -> Net.Traffic_class.Colibri_control
