(** Shared-nothing sharding of the data plane across cores (§7, Fig. 6).

    The paper shows the gateway and border router scale almost
    perfectly linearly with cores, because per-packet processing is a
    pure function of the packet and (for the gateway) of per-ResId
    state that can be partitioned: "multiple gateways, each handling
    only a fraction of all reservations" (§7.2). This module implements
    that partitioning:

    - a {!Sharded_gateway} splits reservations across [n] gateway
      instances by ResId hash — registration and sending touch exactly
      one shard, so shards never contend;
    - border routers are stateless (their monitors are per-instance and
      probabilistic), so router sharding is [n] independent instances
      fed by any packet distribution.

    On a multi-core host each shard would run on its own core
    (OCaml 5 [Domain]s or separate processes). The Fig. 6 bench
    measures per-shard throughput and reports the shared-nothing linear
    model; see DESIGN.md §3 for why that substitution is faithful on a
    single-core container. *)

open Colibri_types

(* Worker/shard selection from (frame length, dispatch byte) without
   touching the allocator: the previous [Hashtbl.hash (len, b)] built a
   fresh tuple per packet on both router dispatch paths (deepscan d3
   flags the polymorphic hash at composite type; the tuple itself was
   a hidden per-packet allocation). A two-round multiply-xor-shift
   avalanche spreads both inputs across the word; [land max_int]
   clears the sign bit before the caller's [mod] (a negative [mod]
   would index out of range — lint R6). Load balancing only, not
   authentication. *)
(* hot-path *)
let dispatch_mix ~(len : int) ~(b : int) : int =
  let h = (len * 0x9e3779b97f4a7c1) lxor b in
  let h = h lxor (h lsr 31) in
  let h = h * 0x2545f4914f6cdd1d in
  (h lxor (h lsr 29)) land max_int

module Sharded_gateway = struct
  type t = { shards : Gateway.t array }

  let create ?burst ~(clock : Timebase.clock) ~(shards : int) (asn : Ids.asn) : t =
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    if shards < 1 then invalid_arg "Sharded_gateway.create: shards < 1";
    { shards = Array.init shards (fun _ -> Gateway.create ?burst ~clock asn) }

  let shard_count (t : t) = Array.length t.shards

  (* ResId → shard. A multiplicative hash spreads sequential ResIds.
     [land max_int] clears the sign bit; [abs] would keep the product
     negative when it lands on [min_int] and the negative [mod] then
     indexes out of range. *)
  let shard_of (t : t) (res_id : Ids.res_id) : int =
    res_id * 0x9e3779b1 land max_int mod Array.length t.shards

  let shard (t : t) (i : int) : Gateway.t = t.shards.(i)

  let register (t : t) ~(eer : Reservation.eer) ~(version : Reservation.version)
      ~(sigmas : bytes list) : (unit, string) result =
    Gateway.register t.shards.(shard_of t eer.key.res_id) ~eer ~version ~sigmas

  let send (t : t) ~(res_id : Ids.res_id) ~(payload_len : int) :
      (Packet.t * Ids.iface, Gateway.drop_reason) result =
    Gateway.send t.shards.(shard_of t res_id) ~res_id ~payload_len

  (** Zero-copy variant: encodes into the owning shard's reusable
      output buffer ({!Gateway.out} of the returned shard, valid until
      that shard's next send). *)
  (* hot-path *)
  let send_bytes (t : t) ~(res_id : Ids.res_id) ~(payload_len : int) :
      (Gateway.t * Ids.iface, Gateway.drop_reason) result =
    let g = t.shards.(shard_of t res_id) in
    match Gateway.send_bytes g ~res_id ~payload_len with
    | Ok egress -> Ok (g, egress)
    | Error _ as e -> e

  let reservation_count (t : t) =
    Array.fold_left (fun acc g -> acc + Gateway.reservation_count g) 0 t.shards

  (** Shard balance: (min, max) reservations per shard — the tests use
      this to check the hash spreads load. *)
  let balance (t : t) : int * int =
    Array.fold_left
      (fun (lo, hi) g ->
        let n = Gateway.reservation_count g in
        (min lo n, max hi n))
      (max_int, 0) t.shards

  let shard_metrics (t : t) (i : int) : Obs.snapshot =
    Obs.Registry.snapshot (Gateway.metrics t.shards.(i))

  (** Aggregate telemetry across shards: counters and histograms sum,
      so the merged snapshot reads like one big gateway. *)
  let metrics (t : t) : Obs.snapshot =
    Obs.merge
      (Array.to_list
         (Array.map (fun g -> Obs.Registry.snapshot (Gateway.metrics g)) t.shards))
end

(** True multicore sharding (DESIGN.md §11): one domain per router
    shard, fed through SPSC rings with buffer-ownership transfer.

    This is the first real [Domain.spawn] in the dataplane, so it is
    written to the domain-ownership contract that
    [colibri-domaincheck] verifies statically (rules d6–d9) and
    {!Par.Spsc_ring}'s endpoint checker enforces dynamically:

    - all mutable state lives in the per-worker {!Parallel_router.worker}
      record — the router instance, both rings and the job stock are
      reachable from exactly one spawn closure (d6);
    - cross-domain traffic moves only through [Par.Spsc_ring]: the
      orchestrating domain pushes jobs on [submit] and recycles them
      from [free]; the worker pops [submit] and pushes [free] — each
      endpoint has exactly one owning domain (d8), and a job is never
      touched by the side that pushed it until it comes back;
    - per-worker telemetry is a private {!Par.Par_obs} slot claimed
      inside the worker domain and merged at sample time;
    - the worker loop is marked [@colibri.hot] and therefore spins
      ([Domain.cpu_relax]) instead of blocking on a lock (d9).

    Jobs are packet {e batches} (ROADMAP item 1: 32–64 buffers per
    crossing), so the ring's acquire/release pair, the worker's
    counter bookkeeping and the dispatch all amortize over
    [batch] packets instead of being paid per packet — the PR-6
    job-per-packet design paid a cache-coherence round-trip per
    packet, which is exactly the negative scaling BENCH_colibri.json
    recorded. *)
module Parallel_router = struct
  (* A job owns a batch of buffers: the producer fills
     [bufs.(0..count-1)] (frame length = [Bytes.length bufs.(k)],
     payload length = [plens.(k)]) before pushing and must not alias
     any of them afterwards; the worker reads them and hands the job
     back through [free]. [count = -1] marks the per-worker [nil]
     sentinel (ring dummy / "no open batch"). *)
  type job = {
    mutable bufs : bytes array;
    mutable plens : int array;
    mutable count : int;
  }

  type worker = {
    router : Router.t;
    submit : job Par.Spsc_ring.t; (* orchestrator -> worker *)
    free : job Par.Spsc_ring.t; (* worker -> orchestrator (recycling) *)
    mutable stock : job list; (* fresh jobs, orchestrator-owned *)
    mutable open_job : job; (* orchestrator-owned partial batch, or [nil] *)
    nil : job; (* shared sentinel; never written by either side *)
    oscratch : job array; (* orchestrator-side pop_into destination *)
    wscratch : job array; (* worker-side pop_into destination; wired at
                             construction, touched only by the worker *)
    processed_c : Obs.Counter.t; (* worker-incremented; the orchestrator
                                    reads [value] racily (monotone) *)
    mutable busy_ns : int; (* worker-written wall time spent processing *)
    stop : bool Atomic.t;
  }

  type t = {
    workers : worker array;
    batch : int;
    pool : unit Par.Domain_pool.t;
    pobs : Par.Par_obs.t;
    mutable submitted : int; (* orchestrator-owned *)
    mutable joined : bool;
  }

  let processed_key = "par_router_processed_total"
  let forwarded_key = "par_router_forwarded_total"
  let dropped_key = "par_router_dropped_total"

  (* Runs inside the worker domain. The Obs slot is claimed here — in
     the owning domain — so the dynamic checker records this domain as
     the slot owner before the first increment; [Registry.counter] is
     get-or-create, so these are the same counter objects the
     orchestrator pre-created at construction time for its direct
     (allocation-free) drain reads. *)
  let worker_loop (mono : unit -> int) (pobs : Par.Par_obs.t) (i : int)
      (st : worker) : unit =
    let reg = Par.Par_obs.claim pobs i in
    let processed = Obs.Registry.counter reg processed_key in
    let forwarded = Obs.Registry.counter reg forwarded_key in
    let dropped = Obs.Registry.counter reg dropped_key in
    let rec loop () =
      if Par.Spsc_ring.pop_into st.submit st.wscratch ~pos:0 ~len:1 = 1 then begin
        let job = st.wscratch.(0) in
        st.wscratch.(0) <- st.nil;
        let t0 = mono () in
        for k = 0 to job.count - 1 do
          (match
             Router.process_bytes st.router ~raw:job.bufs.(k)
               ~payload_len:job.plens.(k)
           with
          | Ok _ -> Obs.Counter.incr forwarded
          | Error _ -> Obs.Counter.incr dropped);
          Obs.Counter.incr processed
        done;
        st.busy_ns <- st.busy_ns + (mono () - t0);
        job.count <- 0;
        (* Ownership transfer back: after this push the worker must
           not touch [job] or its buffers again. *)
        Par.Spsc_ring.push_spin st.free job;
        loop ()
      end
      else if not (Atomic.get st.stop) then begin
        Domain.cpu_relax ();
        loop ()
      end
    in
    loop ()

  let create ?freshness_window ?(monitoring = false) ?(ring_capacity = 64)
      ?(batch = 64) ?(check = true) ?(mono = fun () -> 0)
      ~(secret : Hvf.as_secret) ~(clock : Timebase.clock) ~(workers : int)
      (asn : Ids.asn) : t =
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    if workers < 1 then invalid_arg "Parallel_router.create: workers < 1";
    (* lint: allow hot-path-exn *)
    if batch < 1 then invalid_arg "Parallel_router.create: batch < 1";
    let pobs = Par.Par_obs.create ~slots:workers in
    let mk i =
      let router =
        if monitoring then Router.create ?freshness_window ~secret ~clock asn
        else
          Router.create ?freshness_window ~ofd:`None ~duplicates:`None ~secret
            ~clock asn
      in
      let nil = { bufs = [||]; plens = [||]; count = -1 } in
      let fresh_job _ =
        {
          bufs = Array.make batch Bytes.empty;
          plens = Array.make batch 0;
          count = 0;
        }
      in
      {
        router;
        submit = Par.Spsc_ring.create ~check ~dummy:nil ring_capacity;
        free = Par.Spsc_ring.create ~check ~dummy:nil ring_capacity;
        stock = List.init ring_capacity fresh_job;
        open_job = nil;
        nil;
        oscratch = Array.make 1 nil;
        wscratch = Array.make 1 nil;
        processed_c =
          Obs.Registry.counter (Par.Par_obs.registry pobs i) processed_key;
        busy_ns = 0;
        stop = Atomic.make false;
      }
    in
    let states = Array.init workers mk in
    (* [states] is captured by the pool closure AND kept by the
       orchestrator, so domaincheck's D6 sees shared mutable state.
       Reviewed (DESIGN.md §11): the array itself is written by
       neither side after spawn; worker [i] touches only
       [states.(i)], and every cross-domain field is an SPSC ring, an
       [Atomic.t], a construction-time-wired scratch/counter touched
       by one side only, or [busy_ns]/[processed_c] (worker-written
       single words the orchestrator reads racily-but-monotonically) —
       the dynamic endpoint checker enforces the ring contract at run
       time. *)
    let pool =
      Par.Domain_pool.spawn ~n:workers
        ((fun i -> worker_loop mono pobs i states.(i)) [@colibri.hot]
        [@colibri.allow "d6"])
    in
    { workers = states; batch; pool; pobs; submitted = 0; joined = false }

  let worker_count (t : t) = Array.length t.workers
  let batch_size (t : t) = t.batch

  (* Same content-mix dispatch as {!Sharded_router}: load balancing,
     not authentication. *)
  (* hot-path *)
  let dispatch (t : t) (raw : bytes) : int =
    let b = if Bytes.length raw > 8 then Char.code (Bytes.get raw 8) else 0 in
    dispatch_mix ~len:(Bytes.length raw) ~b mod Array.length t.workers

  (* Make [w.open_job] a real (possibly part-filled) batch, recycling
     from the stock first and the [free] ring second. [pop_into] with
     the one-slot scratch keeps the recycle path allocation-free
     ([try_pop] would box an option per batch). [false] = every job of
     this worker is in flight. *)
  let ensure_open (w : worker) : bool =
    w.open_job.count >= 0
    || (match w.stock with
       | j :: rest ->
           w.stock <- rest;
           w.open_job <- j;
           true
       | [] ->
           Par.Spsc_ring.pop_into w.free w.oscratch ~pos:0 ~len:1 = 1
           && begin
                w.open_job <- w.oscratch.(0);
                w.oscratch.(0) <- w.nil;
                true
              end)

  (* Hand the open batch (if any) to its worker. Clearing [open_job]
     {e before} the push keeps the ownership contract: after the push
     the orchestrator holds no path to the job. *)
  let flush_worker (w : worker) : unit =
    let j = w.open_job in
    if j.count > 0 then begin
      w.open_job <- w.nil;
      (* The submit ring's capacity bounds the jobs in circulation, so
         this push cannot spin for long; after it, [j] belongs to the
         worker. *)
      Par.Spsc_ring.push_spin w.submit j
    end

  (** Push every part-filled batch to its worker. Call after a burst
      of {!submit}s (or rely on {!drain}, which flushes first) —
      without it up to [batch - 1] packets per worker sit in the open
      batch indefinitely. *)
  let flush (t : t) : unit = Array.iter flush_worker t.workers

  (** Copy [raw] into the owning worker's open batch, handing the
      batch over once it reaches [batch] packets. [false] means
      backpressure: every job of that worker is in flight — retry
      after the worker drains. Steady-state allocation-free once job
      buffers have grown to the traffic's packet size. *)
  let submit (t : t) ~(raw : bytes) ~(payload_len : int) : bool =
    let w = t.workers.(dispatch t raw) in
    ensure_open w
    && begin
         let j = w.open_job in
         let k = j.count in
         let len = Bytes.length raw in
         if Bytes.length j.bufs.(k) <> len then j.bufs.(k) <- Bytes.create len;
         Bytes.blit raw 0 j.bufs.(k) 0 len;
         j.plens.(k) <- payload_len;
         j.count <- k + 1;
         t.submitted <- t.submitted + 1;
         if j.count >= t.batch then flush_worker w;
         true
       end

  (** Submit [len] packets from [raws.(pos..)] / [payload_lens.(pos..)]
      in one call; returns how many were accepted before backpressure
      stopped the burst (= [len] when every worker had capacity). *)
  let submit_batch (t : t) ~(raws : bytes array) ~(payload_lens : int array)
      ~(pos : int) ~(len : int) : int =
    let n = ref 0 in
    let ok = ref true in
    while !ok && !n < len do
      let k = pos + !n in
      if submit t ~raw:raws.(k) ~payload_len:payload_lens.(k) then incr n
      else ok := false
    done;
    !n

  let submitted (t : t) : int = t.submitted

  (* Direct-read worker-counter sum: one plain [int] load per worker,
     no snapshot, no assoc list — safe to call inside a spin loop. *)
  let rec live_processed (ws : worker array) (i : int) (acc : int) : int =
    if i >= Array.length ws then acc
    else live_processed ws (i + 1) (acc + Obs.Counter.value ws.(i).processed_c)

  let processed (t : t) : int = live_processed t.workers 0 0

  (** Packets submitted but not yet processed (racy-but-monotone:
      counts open batches, in-flight jobs and the worker's current
      batch). *)
  let pending (t : t) : int =
    let p = t.submitted - processed t in
    if p < 0 then 0 else p

  (** Flush open batches, then spin until every submitted packet has
      been processed. The wait reads the workers' counters directly
      (allocation-free, monotone — the PR-6 version rebuilt a full
      [Par_obs.sample] assoc list per spin iteration, allocating
      kilobytes while the workers were trying to run). *)
  let drain (t : t) : unit =
    flush t;
    while processed t < t.submitted do
      Domain.cpu_relax ()
    done

  (** Worker [i]'s accumulated processing wall time in the units of
      the [mono] clock passed to {!create} (0 with the default clock).
      Exact after {!shutdown}; racy-but-monotone live. *)
  let worker_busy_ns (t : t) (i : int) : int = t.workers.(i).busy_ns

  (** Flush open batches, signal every worker to finish its queue and
      exit, then join the pool. After [shutdown] the merged metrics
      are exact. *)
  let shutdown (t : t) : unit =
    if not t.joined then begin
      t.joined <- true;
      flush t;
      Array.iter (fun w -> Atomic.set w.stop true) t.workers;
      ignore (Par.Domain_pool.join t.pool)
    end

  let worker_metrics (t : t) (i : int) : Obs.snapshot =
    Obs.merge
      [
        Obs.Registry.snapshot (Par.Par_obs.registry t.pobs i);
        Obs.Registry.snapshot (Router.metrics t.workers.(i).router);
      ]

  (** Merge-at-sample across worker domains: per-worker counters plus
      each shard router's own registry. Exact after {!shutdown}; a
      live sample is racy-but-monotone (monitoring only). *)
  let metrics (t : t) : Obs.snapshot =
    Obs.merge
      (Par.Par_obs.sample t.pobs
      :: Array.to_list
           (Array.map
              (fun w -> Obs.Registry.snapshot (Router.metrics w.router))
              t.workers))
end

module Sharded_router = struct
  type t = { shards : Router.t array }

  let create ?freshness_window ?(monitoring = false) ~(secret : Hvf.as_secret)
      ~(clock : Timebase.clock) ~(shards : int) (asn : Ids.asn) : t =
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    if shards < 1 then invalid_arg "Sharded_router.create: shards < 1";
    let mk _ =
      if monitoring then Router.create ?freshness_window ~secret ~clock asn
      else
        Router.create ?freshness_window ~ofd:`None ~duplicates:`None ~secret ~clock
          asn
    in
    { shards = Array.init shards mk }

  let shard_count (t : t) = Array.length t.shards
  let shard (t : t) (i : int) : Router.t = t.shards.(i)

  (* Routers are stateless: any spreading works; use a byte of the
     packet Ts. Shard selection is load balancing, not authentication.
     A packet too short to carry that byte still goes to a shard — the
     router's parser is the single place that renders the malformed
     verdict, so the caller sees [Error (Parse_error _)], never an
     exception from the dispatcher. *)
  let process_bytes (t : t) ~(raw : bytes) ~(payload_len : int) =
    let b = if Bytes.length raw > 8 then Char.code (Bytes.get raw 8) else 0 in
    let i = dispatch_mix ~len:(Bytes.length raw) ~b mod Array.length t.shards in
    Router.process_bytes t.shards.(i) ~raw ~payload_len

  let shard_metrics (t : t) (i : int) : Obs.snapshot =
    Obs.Registry.snapshot (Router.metrics t.shards.(i))

  (** Aggregate telemetry across shards (counters sum; occupancy gauges
      sum too, giving totals over all shards' monitors). *)
  let metrics (t : t) : Obs.snapshot =
    Obs.merge
      (Array.to_list
         (Array.map (fun r -> Obs.Registry.snapshot (Router.metrics r)) t.shards))
end
