(** Shared-nothing sharding of the data plane across cores (§7, Fig. 6).

    The paper shows the gateway and border router scale almost
    perfectly linearly with cores, because per-packet processing is a
    pure function of the packet and (for the gateway) of per-ResId
    state that can be partitioned: "multiple gateways, each handling
    only a fraction of all reservations" (§7.2). This module implements
    that partitioning:

    - a {!Sharded_gateway} splits reservations across [n] gateway
      instances by ResId hash — registration and sending touch exactly
      one shard, so shards never contend;
    - border routers are stateless (their monitors are per-instance and
      probabilistic), so router sharding is [n] independent instances
      fed by any packet distribution.

    On a multi-core host each shard would run on its own core
    (OCaml 5 [Domain]s or separate processes). The Fig. 6 bench
    measures per-shard throughput and reports the shared-nothing linear
    model; see DESIGN.md §3 for why that substitution is faithful on a
    single-core container. *)

open Colibri_types

module Sharded_gateway = struct
  type t = { shards : Gateway.t array }

  let create ?burst ~(clock : Timebase.clock) ~(shards : int) (asn : Ids.asn) : t =
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    if shards < 1 then invalid_arg "Sharded_gateway.create: shards < 1";
    { shards = Array.init shards (fun _ -> Gateway.create ?burst ~clock asn) }

  let shard_count (t : t) = Array.length t.shards

  (* ResId → shard. A multiplicative hash spreads sequential ResIds.
     [land max_int] clears the sign bit; [abs] would keep the product
     negative when it lands on [min_int] and the negative [mod] then
     indexes out of range. *)
  let shard_of (t : t) (res_id : Ids.res_id) : int =
    res_id * 0x9e3779b1 land max_int mod Array.length t.shards

  let shard (t : t) (i : int) : Gateway.t = t.shards.(i)

  let register (t : t) ~(eer : Reservation.eer) ~(version : Reservation.version)
      ~(sigmas : bytes list) : (unit, string) result =
    Gateway.register t.shards.(shard_of t eer.key.res_id) ~eer ~version ~sigmas

  let send (t : t) ~(res_id : Ids.res_id) ~(payload_len : int) :
      (Packet.t * Ids.iface, Gateway.drop_reason) result =
    Gateway.send t.shards.(shard_of t res_id) ~res_id ~payload_len

  (** Zero-copy variant: encodes into the owning shard's reusable
      output buffer ({!Gateway.out} of the returned shard, valid until
      that shard's next send). *)
  (* hot-path *)
  let send_bytes (t : t) ~(res_id : Ids.res_id) ~(payload_len : int) :
      (Gateway.t * Ids.iface, Gateway.drop_reason) result =
    let g = t.shards.(shard_of t res_id) in
    match Gateway.send_bytes g ~res_id ~payload_len with
    | Ok egress -> Ok (g, egress)
    | Error _ as e -> e

  let reservation_count (t : t) =
    Array.fold_left (fun acc g -> acc + Gateway.reservation_count g) 0 t.shards

  (** Shard balance: (min, max) reservations per shard — the tests use
      this to check the hash spreads load. *)
  let balance (t : t) : int * int =
    Array.fold_left
      (fun (lo, hi) g ->
        let n = Gateway.reservation_count g in
        (min lo n, max hi n))
      (max_int, 0) t.shards

  let shard_metrics (t : t) (i : int) : Obs.snapshot =
    Obs.Registry.snapshot (Gateway.metrics t.shards.(i))

  (** Aggregate telemetry across shards: counters and histograms sum,
      so the merged snapshot reads like one big gateway. *)
  let metrics (t : t) : Obs.snapshot =
    Obs.merge
      (Array.to_list
         (Array.map (fun g -> Obs.Registry.snapshot (Gateway.metrics g)) t.shards))
end

(** True multicore sharding (DESIGN.md §11): one domain per router
    shard, fed through SPSC rings with buffer-ownership transfer.

    This is the first real [Domain.spawn] in the dataplane, so it is
    written to the domain-ownership contract that
    [colibri-domaincheck] verifies statically (rules d6–d9) and
    {!Par.Spsc_ring}'s endpoint checker enforces dynamically:

    - all mutable state lives in the per-worker {!Parallel_router.worker}
      record — the router instance, both rings and the job stock are
      reachable from exactly one spawn closure (d6);
    - cross-domain traffic moves only through [Par.Spsc_ring]: the
      orchestrating domain pushes jobs on [submit] and recycles them
      from [free]; the worker pops [submit] and pushes [free] — each
      endpoint has exactly one owning domain (d8), and a job is never
      touched by the side that pushed it until it comes back;
    - per-worker telemetry is a private {!Par.Par_obs} slot claimed
      inside the worker domain and merged at sample time;
    - the worker loop is marked [@colibri.hot] and therefore spins
      ([Domain.cpu_relax]) instead of blocking on a lock (d9). *)
module Parallel_router = struct
  (* A job owns its buffer: the producer fills [raw] before pushing
     and must not alias it afterwards; the worker reads it and hands
     the job back through [free]. *)
  type job = { mutable raw : bytes; mutable payload_len : int }

  type worker = {
    router : Router.t;
    submit : job Par.Spsc_ring.t; (* orchestrator -> worker *)
    free : job Par.Spsc_ring.t; (* worker -> orchestrator (recycling) *)
    mutable stock : job list; (* fresh jobs, orchestrator-owned *)
    stop : bool Atomic.t;
  }

  type t = {
    workers : worker array;
    pool : unit Par.Domain_pool.t;
    pobs : Par.Par_obs.t;
    mutable submitted : int; (* orchestrator-owned *)
    mutable joined : bool;
  }

  let processed_key = "par_router_processed_total"
  let forwarded_key = "par_router_forwarded_total"
  let dropped_key = "par_router_dropped_total"

  (* Runs inside the worker domain. The Obs slot is claimed here — in
     the owning domain — so the dynamic checker records this domain as
     the slot owner before the first increment. *)
  let worker_loop (pobs : Par.Par_obs.t) (i : int) (st : worker) : unit =
    let reg = Par.Par_obs.claim pobs i in
    let processed = Obs.Registry.counter reg processed_key in
    let forwarded = Obs.Registry.counter reg forwarded_key in
    let dropped = Obs.Registry.counter reg dropped_key in
    let rec loop () =
      match Par.Spsc_ring.try_pop st.submit with
      | Some job ->
          (match
             Router.process_bytes st.router ~raw:job.raw
               ~payload_len:job.payload_len
           with
          | Ok _ -> Obs.Counter.incr forwarded
          | Error _ -> Obs.Counter.incr dropped);
          Obs.Counter.incr processed;
          (* Ownership transfer back: after this push the worker must
             not touch [job] again. *)
          Par.Spsc_ring.push_spin st.free job;
          loop ()
      | None ->
          if not (Atomic.get st.stop) then begin
            Domain.cpu_relax ();
            loop ()
          end
    in
    loop ()

  let create ?freshness_window ?(monitoring = false) ?(ring_capacity = 256)
      ?(check = true) ~(secret : Hvf.as_secret) ~(clock : Timebase.clock)
      ~(workers : int) (asn : Ids.asn) : t =
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    if workers < 1 then invalid_arg "Parallel_router.create: workers < 1";
    let pobs = Par.Par_obs.create ~slots:workers in
    let mk _ =
      let router =
        if monitoring then Router.create ?freshness_window ~secret ~clock asn
        else
          Router.create ?freshness_window ~ofd:`None ~duplicates:`None ~secret
            ~clock asn
      in
      let dummy = { raw = Bytes.empty; payload_len = 0 } in
      {
        router;
        submit = Par.Spsc_ring.create ~check ~dummy ring_capacity;
        free = Par.Spsc_ring.create ~check ~dummy ring_capacity;
        stock =
          List.init ring_capacity (fun _ ->
              { raw = Bytes.empty; payload_len = 0 });
        stop = Atomic.make false;
      }
    in
    let states = Array.init workers mk in
    (* [states] is captured by the pool closure AND kept by the
       orchestrator, so domaincheck's D6 sees shared mutable state.
       Reviewed (DESIGN.md §11): the array itself is written by
       neither side after spawn; worker [i] touches only
       [states.(i)], and every cross-domain field is an SPSC ring or
       an [Atomic.t] — the dynamic endpoint checker enforces this at
       run time. *)
    let pool =
      Par.Domain_pool.spawn ~n:workers
        ((fun i -> worker_loop pobs i states.(i)) [@colibri.hot]
        [@colibri.allow "d6"])
    in
    { workers = states; pool; pobs; submitted = 0; joined = false }

  let worker_count (t : t) = Array.length t.workers

  (* Same content-hash dispatch as {!Sharded_router}: load balancing,
     not authentication. *)
  let dispatch (t : t) (raw : bytes) : int =
    let b = if Bytes.length raw > 8 then Char.code (Bytes.get raw 8) else 0 in
    (* lint: allow poly-hash *)
    (Hashtbl.hash (Bytes.length raw, b) [@colibri.allow "d3"])
    land max_int mod Array.length t.workers

  let take_job (w : worker) : job option =
    match w.stock with
    | j :: rest ->
        w.stock <- rest;
        Some j
    | [] -> Par.Spsc_ring.try_pop w.free

  (** Copy [raw] into an owned job buffer and hand it to the owning
      worker. [false] means backpressure: every job of that worker is
      in flight — retry after the worker drains. Steady-state
      allocation-free once job buffers have grown to the traffic's
      packet size. *)
  let submit (t : t) ~(raw : bytes) ~(payload_len : int) : bool =
    let w = t.workers.(dispatch t raw) in
    match take_job w with
    | None -> false
    | Some job ->
        let len = Bytes.length raw in
        if Bytes.length job.raw <> len then job.raw <- Bytes.create len;
        Bytes.blit raw 0 job.raw 0 len;
        job.payload_len <- payload_len;
        (* The submit ring's capacity bounds the jobs in circulation,
           so this push cannot spin for long; after it, [job] belongs
           to the worker. *)
        Par.Spsc_ring.push_spin w.submit job;
        t.submitted <- t.submitted + 1;
        true

  let submitted (t : t) : int = t.submitted

  let pending (t : t) : int =
    Array.fold_left (fun acc w -> acc + Par.Spsc_ring.length w.submit) 0 t.workers

  let processed (t : t) : int =
    match List.assoc_opt processed_key (Par.Par_obs.sample t.pobs) with
    | Some (Obs.Counter n) -> n
    | _ -> 0

  (** Spin until every submitted packet has been processed (reads the
      workers' counters; monotone, so the wait terminates as soon as
      the last in-flight job completes). *)
  let drain (t : t) : unit =
    while processed t < t.submitted do
      Domain.cpu_relax ()
    done

  (** Signal every worker to finish its queue and exit, then join the
      pool. After [shutdown] the merged metrics are exact. *)
  let shutdown (t : t) : unit =
    if not t.joined then begin
      t.joined <- true;
      Array.iter (fun w -> Atomic.set w.stop true) t.workers;
      ignore (Par.Domain_pool.join t.pool)
    end

  let worker_metrics (t : t) (i : int) : Obs.snapshot =
    Obs.merge
      [
        Obs.Registry.snapshot (Par.Par_obs.registry t.pobs i);
        Obs.Registry.snapshot (Router.metrics t.workers.(i).router);
      ]

  (** Merge-at-sample across worker domains: per-worker counters plus
      each shard router's own registry. Exact after {!shutdown}; a
      live sample is racy-but-monotone (monitoring only). *)
  let metrics (t : t) : Obs.snapshot =
    Obs.merge
      (Par.Par_obs.sample t.pobs
      :: Array.to_list
           (Array.map
              (fun w -> Obs.Registry.snapshot (Router.metrics w.router))
              t.workers))
end

module Sharded_router = struct
  type t = { shards : Router.t array }

  let create ?freshness_window ?(monitoring = false) ~(secret : Hvf.as_secret)
      ~(clock : Timebase.clock) ~(shards : int) (asn : Ids.asn) : t =
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    if shards < 1 then invalid_arg "Sharded_router.create: shards < 1";
    let mk _ =
      if monitoring then Router.create ?freshness_window ~secret ~clock asn
      else
        Router.create ?freshness_window ~ofd:`None ~duplicates:`None ~secret ~clock
          asn
    in
    { shards = Array.init shards mk }

  let shard_count (t : t) = Array.length t.shards
  let shard (t : t) (i : int) : Router.t = t.shards.(i)

  (* Routers are stateless: any spreading works; use a byte of the
     packet Ts. Shard selection is load balancing, not authentication.
     A packet too short to carry that byte still goes to a shard — the
     router's parser is the single place that renders the malformed
     verdict, so the caller sees [Error (Parse_error _)], never an
     exception from the dispatcher. *)
  let process_bytes (t : t) ~(raw : bytes) ~(payload_len : int) =
    let dispatch = if Bytes.length raw > 8 then Char.code (Bytes.get raw 8) else 0 in
    let i =
      (* lint: allow poly-hash *)
      (Hashtbl.hash (Bytes.length raw, dispatch) [@colibri.allow "d3"])
      land max_int mod Array.length t.shards
    in
    Router.process_bytes t.shards.(i) ~raw ~payload_len

  let shard_metrics (t : t) (i : int) : Obs.snapshot =
    Obs.Registry.snapshot (Router.metrics t.shards.(i))

  (** Aggregate telemetry across shards (counters sum; occupancy gauges
      sum too, giving totals over all shards' monitors). *)
  let metrics (t : t) : Obs.snapshot =
    Obs.merge
      (Array.to_list
         (Array.map (fun r -> Obs.Registry.snapshot (Router.metrics r)) t.shards))
end
