(** Shared-nothing sharding of the data plane across cores (§7, Fig. 6).

    The paper shows the gateway and border router scale almost
    perfectly linearly with cores, because per-packet processing is a
    pure function of the packet and (for the gateway) of per-ResId
    state that can be partitioned: "multiple gateways, each handling
    only a fraction of all reservations" (§7.2). This module implements
    that partitioning:

    - a {!Sharded_gateway} splits reservations across [n] gateway
      instances by ResId hash — registration and sending touch exactly
      one shard, so shards never contend;
    - border routers are stateless (their monitors are per-instance and
      probabilistic), so router sharding is [n] independent instances
      fed by any packet distribution.

    On a multi-core host each shard would run on its own core
    (OCaml 5 [Domain]s or separate processes). The Fig. 6 bench
    measures per-shard throughput and reports the shared-nothing linear
    model; see DESIGN.md §3 for why that substitution is faithful on a
    single-core container. *)

open Colibri_types

module Sharded_gateway = struct
  type t = { shards : Gateway.t array }

  let create ?burst ~(clock : Timebase.clock) ~(shards : int) (asn : Ids.asn) : t =
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    if shards < 1 then invalid_arg "Sharded_gateway.create: shards < 1";
    { shards = Array.init shards (fun _ -> Gateway.create ?burst ~clock asn) }

  let shard_count (t : t) = Array.length t.shards

  (* ResId → shard. A multiplicative hash spreads sequential ResIds.
     [land max_int] clears the sign bit; [abs] would keep the product
     negative when it lands on [min_int] and the negative [mod] then
     indexes out of range. *)
  let shard_of (t : t) (res_id : Ids.res_id) : int =
    res_id * 0x9e3779b1 land max_int mod Array.length t.shards

  let shard (t : t) (i : int) : Gateway.t = t.shards.(i)

  let register (t : t) ~(eer : Reservation.eer) ~(version : Reservation.version)
      ~(sigmas : bytes list) : (unit, string) result =
    Gateway.register t.shards.(shard_of t eer.key.res_id) ~eer ~version ~sigmas

  let send (t : t) ~(res_id : Ids.res_id) ~(payload_len : int) :
      (Packet.t * Ids.iface, Gateway.drop_reason) result =
    Gateway.send t.shards.(shard_of t res_id) ~res_id ~payload_len

  (** Zero-copy variant: encodes into the owning shard's reusable
      output buffer ({!Gateway.out} of the returned shard, valid until
      that shard's next send). *)
  (* hot-path *)
  let send_bytes (t : t) ~(res_id : Ids.res_id) ~(payload_len : int) :
      (Gateway.t * Ids.iface, Gateway.drop_reason) result =
    let g = t.shards.(shard_of t res_id) in
    match Gateway.send_bytes g ~res_id ~payload_len with
    | Ok egress -> Ok (g, egress)
    | Error _ as e -> e

  let reservation_count (t : t) =
    Array.fold_left (fun acc g -> acc + Gateway.reservation_count g) 0 t.shards

  (** Shard balance: (min, max) reservations per shard — the tests use
      this to check the hash spreads load. *)
  let balance (t : t) : int * int =
    Array.fold_left
      (fun (lo, hi) g ->
        let n = Gateway.reservation_count g in
        (min lo n, max hi n))
      (max_int, 0) t.shards

  let shard_metrics (t : t) (i : int) : Obs.snapshot =
    Obs.Registry.snapshot (Gateway.metrics t.shards.(i))

  (** Aggregate telemetry across shards: counters and histograms sum,
      so the merged snapshot reads like one big gateway. *)
  let metrics (t : t) : Obs.snapshot =
    Obs.merge
      (Array.to_list
         (Array.map (fun g -> Obs.Registry.snapshot (Gateway.metrics g)) t.shards))
end

module Sharded_router = struct
  type t = { shards : Router.t array }

  let create ?freshness_window ?(monitoring = false) ~(secret : Hvf.as_secret)
      ~(clock : Timebase.clock) ~(shards : int) (asn : Ids.asn) : t =
    (* Construction-time validation; never on the per-packet path. *)
    (* lint: allow hot-path-exn *)
    if shards < 1 then invalid_arg "Sharded_router.create: shards < 1";
    let mk _ =
      if monitoring then Router.create ?freshness_window ~secret ~clock asn
      else
        Router.create ?freshness_window ~ofd:`None ~duplicates:`None ~secret ~clock
          asn
    in
    { shards = Array.init shards mk }

  let shard_count (t : t) = Array.length t.shards
  let shard (t : t) (i : int) : Router.t = t.shards.(i)

  (* Routers are stateless: any spreading works; use a byte of the
     packet Ts. Shard selection is load balancing, not authentication.
     A packet too short to carry that byte still goes to a shard — the
     router's parser is the single place that renders the malformed
     verdict, so the caller sees [Error (Parse_error _)], never an
     exception from the dispatcher. *)
  let process_bytes (t : t) ~(raw : bytes) ~(payload_len : int) =
    let dispatch = if Bytes.length raw > 8 then Char.code (Bytes.get raw 8) else 0 in
    let i =
      (* lint: allow poly-hash *)
      (Hashtbl.hash (Bytes.length raw, dispatch) [@colibri.allow "d3"])
      land max_int mod Array.length t.shards
    in
    Router.process_bytes t.shards.(i) ~raw ~payload_len

  let shard_metrics (t : t) (i : int) : Obs.snapshot =
    Obs.Registry.snapshot (Router.metrics t.shards.(i))

  (** Aggregate telemetry across shards (counters sum; occupancy gauges
      sum too, giving totals over all shards' monitors). *)
  let metrics (t : t) : Obs.snapshot =
    Obs.merge
      (Array.to_list
         (Array.map (fun r -> Obs.Registry.snapshot (Router.metrics r)) t.shards))
end
