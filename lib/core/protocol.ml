(** Control-plane messages (§4.4) and their authentication (§4.5).

    Setup and renewal requests for SegRs and EERs travel forward along
    the reservation path; each on-path AS verifies the source's MAC,
    runs admission, and appends its grant. The reply travels the
    reverse path carrying, on success, the final bandwidth and each
    AS's cryptographic material (the Eq. (3) token for SegRs; the
    AEAD-sealed Eq. (4) hop authenticator for EERs).

    Authentication uses DRKey (§2.3): for every on-path AS [i] the
    source AS attaches [MAC_{K_{AS_i→SrcAS}}(payload)]. The on-path AS
    re-derives that key with one PRF call — no per-source state — and
    uses the same key to authenticate the data it adds to the reply. *)

open Colibri_types

(* ---------- Requests ---------- *)

type seg_request = {
  res_info : Packet.res_info; (* res_info.bw = requested (maximum) bandwidth *)
  min_bw : Bandwidth.t; (* minimum acceptable; below this an AS denies *)
  kind : Reservation.seg_kind;
  path : Path.t;
  renewal : bool; (* renewals may travel over the existing SegR *)
}

type eer_request = {
  res_info : Packet.res_info;
  eer_info : Packet.eer_info;
  path : Path.t;
  segr_keys : Ids.res_key list; (* the 1–3 SegRs underlying this EER, in path order *)
  renewal : bool;
}

(* Canonical digests used as MAC inputs. *)

let seg_request_digest (r : seg_request) : bytes =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SegReq1";
  Buffer.add_bytes buf (Packet.res_info_to_bytes r.res_info);
  Buffer.add_int64_be buf (Int64.of_float (Float.round (Bandwidth.to_bps r.min_bw)));
  Buffer.add_uint8 buf
    (match r.kind with Reservation.Up -> 0 | Reservation.Down -> 1 | Reservation.Core -> 2);
  Buffer.add_uint8 buf (if r.renewal then 1 else 0);
  Buffer.add_bytes buf (Path.to_bytes r.path);
  Buffer.to_bytes buf

let eer_request_digest (r : eer_request) : bytes =
  let buf = Buffer.create 160 in
  Buffer.add_string buf "EEReq1";
  Buffer.add_bytes buf (Packet.res_info_to_bytes r.res_info);
  Buffer.add_bytes buf (Packet.eer_info_to_bytes r.eer_info);
  Buffer.add_uint8 buf (if r.renewal then 1 else 0);
  Buffer.add_bytes buf (Path.to_bytes r.path);
  List.iter
    (fun (k : Ids.res_key) ->
      Buffer.add_bytes buf (Ids.asn_to_bytes k.src_as);
      Buffer.add_int32_be buf (Int32.of_int k.res_id))
    r.segr_keys;
  Buffer.to_bytes buf

(** Per-AS request authenticators, computed by the source AS with the
    fetched keys [K_{AS_i→SrcAS}] and carried with the request. *)
type request_auth = (Ids.asn * bytes) list

let authenticate_request ~(digest : bytes)
    ~(key_for : Ids.asn -> Crypto.Cmac.key) ~(ases : Ids.asn list) : request_auth =
  List.map (fun asn -> (asn, Crypto.Cmac.digest (key_for asn) digest)) ases

(** Verification at AS [asn], which re-derives its key on the fly. *)
let verify_request ~(digest : bytes) ~(asn : Ids.asn) ~(key : Crypto.Cmac.key)
    ~(auth : request_auth) : bool =
  match List.assoc_opt asn (List.map (fun (a, m) -> (a, m)) auth) with
  | None -> false
  | Some tag -> Crypto.Cmac.verify key digest ~tag

(* ---------- Replies ---------- *)

(** What one on-path AS contributes to a successful reply. [material]
    is the Eq. (3) token (SegR) or the sealed Eq. (4)/(5) hop
    authenticator (EER); [mac] authenticates
    [digest ‖ granted ‖ material] under the same DRKey, so the source
    can attribute every grant. *)
type reply_hop = {
  asn : Ids.asn;
  granted : Bandwidth.t;
  material : bytes;
  mac : bytes;
}

type deny_reason =
  | Insufficient_bandwidth of { available : Bandwidth.t }
  | Bad_authentication
  | Unknown_segr of Ids.res_key
  | Policy_refused
  | Destination_refused
  | Rate_limited
  | Expired_segr of Ids.res_key
      (** The SegR version changed or expired under the requester; it
          should refetch and retry (Appendix C). *)

let pp_deny_reason ppf = function
  | Insufficient_bandwidth { available } ->
      Fmt.pf ppf "insufficient bandwidth (available %a)" Bandwidth.pp available
  | Bad_authentication -> Fmt.string ppf "bad authentication"
  | Unknown_segr k -> Fmt.pf ppf "unknown SegR %a" Ids.pp_res_key k
  | Policy_refused -> Fmt.string ppf "refused by policy"
  | Destination_refused -> Fmt.string ppf "refused by destination"
  | Rate_limited -> Fmt.string ppf "rate limited"
  | Expired_segr k -> Fmt.pf ppf "expired SegR %a" Ids.pp_res_key k

type 'req reply =
  | Granted of { final_bw : Bandwidth.t; hops : reply_hop list (* path order *) }
  | Denied of { at : Ids.asn; reason : deny_reason }

let reply_hop_mac_input ~(digest : bytes) ~(granted : Bandwidth.t)
    ~(material : bytes) : bytes =
  let buf = Buffer.create (Bytes.length digest + 8 + Bytes.length material) in
  Buffer.add_bytes buf digest;
  Buffer.add_int64_be buf (Int64.of_float (Float.round (Bandwidth.to_bps granted)));
  Buffer.add_bytes buf material;
  Buffer.to_bytes buf

let make_reply_hop ~(digest : bytes) ~(key : Crypto.Cmac.key) ~(asn : Ids.asn)
    ~(granted : Bandwidth.t) ~(material : bytes) : reply_hop =
  { asn; granted; material; mac = Crypto.Cmac.digest key (reply_hop_mac_input ~digest ~granted ~material) }

let verify_reply_hop ~(digest : bytes) ~(key : Crypto.Cmac.key) (h : reply_hop) : bool
    =
  Crypto.Cmac.verify key
    (reply_hop_mac_input ~digest ~granted:h.granted ~material:h.material)
    ~tag:h.mac

(* ---------------- Wire-size estimates ---------------- *)

(* Coarse on-the-wire sizes for the simulated control network, in the
   spirit of the paper's header arithmetic (§5.1, Table 1): fixed
   request metadata, one per-hop field on requests, and one reply_hop
   (grant + sealed material + MAC) per on-path AS on replies. They only
   need to be the right order of magnitude — link serialization and
   queue occupancy, not exact encodings. *)

let request_fixed_bytes = 64
let request_per_hop_bytes = 16
let reply_hop_bytes = 56

let seg_request_bytes (r : seg_request) : int =
  request_fixed_bytes + (request_per_hop_bytes * Path.length r.path)

let eer_request_bytes (r : eer_request) : int =
  request_fixed_bytes
  + (request_per_hop_bytes * Path.length r.path)
  + (8 * List.length r.segr_keys)

let reply_bytes ~(hops : int) : int = request_fixed_bytes + (reply_hop_bytes * hops)

let drkey_request_bytes = 48
let drkey_reply_bytes = 80
