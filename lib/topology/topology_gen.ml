(** Topology generators for examples, tests, and benchmarks. *)

open Colibri_types

let gbps = Bandwidth.of_gbps

(** A chain of [n] core ASes in ISD 1, linked 1–2–…–n with [capacity]
    links: the minimal substrate for data-plane experiments that only
    need a path of a given length (Figs. 5–6). AS [i] reaches AS [i+1]
    via interface 2 and AS [i-1] via interface 1. *)
let linear ~(n : int) ~(capacity : Bandwidth.t) : Topology.t =
  if n < 1 then invalid_arg "Topology_gen.linear: n must be >= 1";
  let t = Topology.create () in
  for i = 1 to n do
    Topology.add_as t ~asn:(Ids.asn ~isd:1 ~num:i) ~core:true
  done;
  for i = 1 to n - 1 do
    Topology.connect t
      ~a:(Ids.asn ~isd:1 ~num:i)
      ~a_iface:2
      ~b:(Ids.asn ~isd:1 ~num:(i + 1))
      ~b_iface:1 ~capacity ~kind:Topology.Core_link
  done;
  t

(** The AS-level path along a {!linear} topology from AS 1 to AS [n]. *)
let linear_path ~(n : int) : Path.t =
  List.init n (fun i ->
      let num = i + 1 in
      Path.hop
        ~asn:(Ids.asn ~isd:1 ~num)
        ~ingress:(if i = 0 then Ids.local_iface else 1)
        ~egress:(if i = n - 1 then Ids.local_iface else 2))

(** The running example of the paper's Fig. 1, enriched to two ISDs:

    {v
        ISD 1                      ISD 2
        core:    Y1 ── Y2 ════ W1 ── W2     (core links)
                 │      │       │     │
        transit: X1     X2      V1    │
                 │      │       │     │
        leaves:  S      T       D     E
    v}

    - [S] (1-11) is the paper's source AS S, below transit X1 (1-5),
      below core Y1 (1-1).
    - [D] (2-11) is the destination AS Z, below V1 (2-5), below W1 (2-1).
    - Y2 (1-2), W2 (2-2), T (1-12), E (2-12) provide path diversity:
      there are at least two distinct up-/core-/down-segment choices, so
      examples can exercise the path-choice property (§2.1).

    All parent-child links are 40 Gbps, core links 100 Gbps, the
    Y2 ═ W1 inter-ISD links 100 Gbps. *)
let two_isd () : Topology.t =
  let t = Topology.create () in
  let y1 = Ids.asn ~isd:1 ~num:1
  and y2 = Ids.asn ~isd:1 ~num:2
  and x1 = Ids.asn ~isd:1 ~num:5
  and x2 = Ids.asn ~isd:1 ~num:6
  and s = Ids.asn ~isd:1 ~num:11
  and tt = Ids.asn ~isd:1 ~num:12
  and w1 = Ids.asn ~isd:2 ~num:1
  and w2 = Ids.asn ~isd:2 ~num:2
  and v1 = Ids.asn ~isd:2 ~num:5
  and d = Ids.asn ~isd:2 ~num:11
  and e = Ids.asn ~isd:2 ~num:12 in
  List.iter (fun asn -> Topology.add_as t ~asn ~core:true) [ y1; y2; w1; w2 ];
  List.iter (fun asn -> Topology.add_as t ~asn ~core:false) [ x1; x2; s; tt; v1; d; e ];
  let pc = Topology.Parent_child and core = Topology.Core_link in
  (* ISD 1 hierarchy *)
  Topology.connect t ~a:y1 ~a_iface:11 ~b:x1 ~b_iface:1 ~capacity:(gbps 40.) ~kind:pc;
  Topology.connect t ~a:y2 ~a_iface:11 ~b:x2 ~b_iface:1 ~capacity:(gbps 40.) ~kind:pc;
  Topology.connect t ~a:y2 ~a_iface:12 ~b:x1 ~b_iface:2 ~capacity:(gbps 40.) ~kind:pc;
  Topology.connect t ~a:x1 ~a_iface:11 ~b:s ~b_iface:1 ~capacity:(gbps 40.) ~kind:pc;
  Topology.connect t ~a:x2 ~a_iface:11 ~b:tt ~b_iface:1 ~capacity:(gbps 40.) ~kind:pc;
  (* ISD 2 hierarchy *)
  Topology.connect t ~a:w1 ~a_iface:11 ~b:v1 ~b_iface:1 ~capacity:(gbps 40.) ~kind:pc;
  Topology.connect t ~a:v1 ~a_iface:11 ~b:d ~b_iface:1 ~capacity:(gbps 40.) ~kind:pc;
  Topology.connect t ~a:w2 ~a_iface:11 ~b:e ~b_iface:1 ~capacity:(gbps 40.) ~kind:pc;
  (* Core mesh *)
  Topology.connect t ~a:y1 ~a_iface:2 ~b:y2 ~b_iface:2 ~capacity:(gbps 100.) ~kind:core;
  Topology.connect t ~a:w1 ~a_iface:2 ~b:w2 ~b_iface:2 ~capacity:(gbps 100.) ~kind:core;
  Topology.connect t ~a:y2 ~a_iface:3 ~b:w1 ~b_iface:3 ~capacity:(gbps 100.) ~kind:core;
  Topology.connect t ~a:y1 ~a_iface:3 ~b:w1 ~b_iface:4 ~capacity:(gbps 100.) ~kind:core;
  t

(** Names of the ASes in {!two_isd}, for examples and tests. *)
module Two_isd = struct
  let y1 = Ids.asn ~isd:1 ~num:1
  let y2 = Ids.asn ~isd:1 ~num:2
  let x1 = Ids.asn ~isd:1 ~num:5
  let x2 = Ids.asn ~isd:1 ~num:6
  let s = Ids.asn ~isd:1 ~num:11
  let t = Ids.asn ~isd:1 ~num:12
  let w1 = Ids.asn ~isd:2 ~num:1
  let w2 = Ids.asn ~isd:2 ~num:2
  let v1 = Ids.asn ~isd:2 ~num:5
  let d = Ids.asn ~isd:2 ~num:11
  let e = Ids.asn ~isd:2 ~num:12
end

(** Attack funnel (§5.1 adversary model): [bots] attacker leaves and
    [honest] victim leaves, all customers of one transfer AS X, which
    reaches the single core C over one trunk link — the contested
    resource every leaf's up-segment must cross. Bot and honest
    leaves are distinguishable by AS number ({!funnel_bot} /
    {!funnel_honest}), so scenarios can drive per-population
    workloads; the trunk egress at X is {!funnel_trunk_iface}. *)
let funnel ~(bots : int) ~(honest : int) ~(leaf_capacity : Bandwidth.t)
    ~(trunk_capacity : Bandwidth.t) : Topology.t =
  if bots < 1 || honest < 1 then invalid_arg "Topology_gen.funnel";
  let t = Topology.create () in
  let c = Ids.asn ~isd:1 ~num:1 and x = Ids.asn ~isd:1 ~num:2 in
  Topology.add_as t ~asn:c ~core:true;
  Topology.add_as t ~asn:x ~core:false;
  (* Trunk: X reaches C via its interface 1 — the contested egress. *)
  Topology.connect t ~a:c ~a_iface:11 ~b:x ~b_iface:1 ~capacity:trunk_capacity
    ~kind:Topology.Parent_child;
  let attach ~asn ~x_iface =
    Topology.add_as t ~asn ~core:false;
    Topology.connect t ~a:x ~a_iface:x_iface ~b:asn ~b_iface:1
      ~capacity:leaf_capacity ~kind:Topology.Parent_child
  in
  for i = 1 to honest do
    attach ~asn:(Ids.asn ~isd:1 ~num:(100 + i)) ~x_iface:(100 + i)
  done;
  for i = 1 to bots do
    attach ~asn:(Ids.asn ~isd:1 ~num:(200 + i)) ~x_iface:(200 + i)
  done;
  t

let funnel_core = Ids.asn ~isd:1 ~num:1
let funnel_transfer = Ids.asn ~isd:1 ~num:2
let funnel_trunk_iface : Ids.iface = 1

let funnel_honest (i : int) : Ids.asn =
  if i < 1 then invalid_arg "Topology_gen.funnel_honest";
  Ids.asn ~isd:1 ~num:(100 + i)

let funnel_bot (i : int) : Ids.asn =
  if i < 1 then invalid_arg "Topology_gen.funnel_bot";
  Ids.asn ~isd:1 ~num:(200 + i)

(** Random two-tier internet: [isds] ISDs, each with [cores] core ASes
    (full core mesh within an ISD, ring across ISDs plus random extra
    inter-ISD links), and [leaves] non-core ASes per ISD, each attached
    to 1–2 cores of its ISD. Link capacities are drawn uniformly from
    [10–100] Gbps. Deterministic given [rng]. *)
let random ~(rng : Random.State.t) ~(isds : int) ~(cores : int) ~(leaves : int) :
    Topology.t =
  if isds < 1 || cores < 1 || leaves < 0 then invalid_arg "Topology_gen.random";
  let t = Topology.create () in
  let iface_counters : int Ids.Asn_tbl.t = Ids.Asn_tbl.create 97 in
  let fresh_iface asn =
    let v = Option.value ~default:0 (Ids.Asn_tbl.find_opt iface_counters asn) + 1 in
    Ids.Asn_tbl.replace iface_counters asn v;
    v
  in
  let cap () = gbps (10. +. (90. *. Random.State.float rng 1.)) in
  let connect a b kind =
    Topology.connect t ~a ~a_iface:(fresh_iface a) ~b ~b_iface:(fresh_iface b)
      ~capacity:(cap ()) ~kind
  in
  let core_asn isd i = Ids.asn ~isd ~num:i in
  let leaf_asn isd i = Ids.asn ~isd ~num:(1000 + i) in
  for isd = 1 to isds do
    for i = 1 to cores do
      Topology.add_as t ~asn:(core_asn isd i) ~core:true
    done;
    for i = 1 to leaves do
      Topology.add_as t ~asn:(leaf_asn isd i) ~core:false
    done
  done;
  (* Intra-ISD core mesh. *)
  for isd = 1 to isds do
    for i = 1 to cores do
      for j = i + 1 to cores do
        connect (core_asn isd i) (core_asn isd j) Topology.Core_link
      done
    done
  done;
  (* Inter-ISD ring plus one random chord per ISD (when isds > 2). *)
  for isd = 1 to isds - 1 do
    connect (core_asn isd 1) (core_asn (isd + 1) 1) Topology.Core_link
  done;
  if isds > 2 then begin
    connect (core_asn isds 1) (core_asn 1 1) Topology.Core_link;
    for isd = 1 to isds do
      let other = 1 + Random.State.int rng isds in
      if other <> isd && other <> isd + 1 && other <> isd - 1 then
        connect (core_asn isd (1 + Random.State.int rng cores))
          (core_asn other (1 + Random.State.int rng cores))
          Topology.Core_link
    done
  end;
  (* Leaves: each under one or two providers of its ISD. *)
  for isd = 1 to isds do
    for i = 1 to leaves do
      let p1 = 1 + Random.State.int rng cores in
      connect (core_asn isd p1) (leaf_asn isd i) Topology.Parent_child;
      if cores > 1 && Random.State.bool rng then begin
        let p2 = 1 + Random.State.int rng cores in
        if p2 <> p1 then
          connect (core_asn isd p2) (leaf_asn isd i) Topology.Parent_child
      end
    done
  done;
  t
