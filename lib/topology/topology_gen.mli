(** Topology generators for examples, tests, and benchmarks. *)

open Colibri_types

val linear : n:int -> capacity:Bandwidth.t -> Topology.t
(** A chain of [n] core ASes in ISD 1 — the minimal substrate for
    data-plane experiments needing a path of a given length
    (Figs. 5–6). AS [i] reaches AS [i+1] via interface 2 and AS [i-1]
    via interface 1. *)

val linear_path : n:int -> Path.t
(** The AS-level path along {!linear} from AS 1 to AS [n]. *)

val two_isd : unit -> Topology.t
(** The paper's Fig. 1 running example enriched to two ISDs with path
    diversity: source AS S under transit X1 under cores Y1/Y2 (ISD 1),
    destination AS D under V1 under core W1 (ISD 2), plus alternates T
    and E. See {!Two_isd} for the AS names. *)

(** Names of the ASes in {!two_isd}. *)
module Two_isd : sig
  val y1 : Ids.asn
  val y2 : Ids.asn
  val x1 : Ids.asn
  val x2 : Ids.asn
  val s : Ids.asn
  val t : Ids.asn
  val w1 : Ids.asn
  val w2 : Ids.asn
  val v1 : Ids.asn
  val d : Ids.asn
  val e : Ids.asn
end

val funnel :
  bots:int ->
  honest:int ->
  leaf_capacity:Bandwidth.t ->
  trunk_capacity:Bandwidth.t ->
  Topology.t
(** Attack funnel (§5.1 adversary model): [bots] attacker leaves and
    [honest] victim leaves under one transfer AS, which reaches the
    single core over one trunk link — the contested resource every
    up-segment must cross. *)

val funnel_core : Ids.asn
val funnel_transfer : Ids.asn

val funnel_trunk_iface : Ids.iface
(** The transfer AS's egress interface toward the core — where the
    contested trunk allocation is booked. *)

val funnel_honest : int -> Ids.asn
(** The [i]-th (1-based) honest leaf of {!funnel}. *)

val funnel_bot : int -> Ids.asn
(** The [i]-th (1-based) bot leaf of {!funnel}. *)

val random :
  rng:Random.State.t -> isds:int -> cores:int -> leaves:int -> Topology.t
(** A random two-tier internet: full core mesh per ISD, ring plus
    random chords across ISDs, leaves under 1–2 providers; capacities
    uniform in 10–100 Gbps. Deterministic given [rng]. *)
