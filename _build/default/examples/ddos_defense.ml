(** DDoS resilience walkthrough (§5): the three volumetric attacks and
    how Colibri neutralizes each.

    A victim flow holds a 100 Mbps EER from S to its core Y1 across a
    contested 40 Gbps link. Three adversaries attack in turn:

    + a best-effort botnet floods the shared link — traffic isolation
      (Appendix B) keeps the reservation untouched;
    + an off-path adversary injects bogus Colibri packets with forged
      authenticators — the routers' stateless crypto check drops every
      one;
    + a compromised neighbor AS overuses its own legitimate
      reservation — the overuse-flow detector flags it, policing limits
      it to its reserved rate, and persistent abuse gets the AS
      blocklisted and its future reservations denied.

    Run with: [dune exec examples/ddos_defense.exe] *)

open Colibri_types
open Colibri_topology
open Colibri
module G = Topology_gen.Two_isd

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let ok = function Ok v -> v | Error e -> failwith e

let () =
  Fmt.pr "== Colibri under attack ==@.@.";
  let deployment = Deployment.create (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db deployment in
  (* Victim: 100 Mbps EER from S (host 1) to core Y1 (host 2). *)
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let _ =
    ok
      (Deployment.setup_segr deployment ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 100.))
  in
  let victim =
    ok
      (Deployment.setup_eer_auto deployment ~src:G.s ~src_host:(Ids.host 1)
         ~dst:G.y1 ~dst_host:(Ids.host 2) ~bw:(mbps 100.))
  in
  Fmt.pr "Victim EER %a: 100 Mbps over %a@.@." Ids.pp_res_key victim.key Path.pp
    victim.path;
  let send_victim () =
    Deployment.advance deployment 0.0001;
    Deployment.send_data deployment ~src:G.s ~res_id:victim.key.res_id
      ~payload_len:1200
  in
  let victim_success n =
    let okc = ref 0 in
    for _ = 1 to n do
      match send_victim () with Ok { delivered = true; _ } -> incr okc | _ -> ()
    done;
    float_of_int !okc /. float_of_int n
  in

  (* --- Attack 1: best-effort flood (link-level isolation) --- *)
  Fmt.pr "[1] Best-effort botnet floods the X1→Y1 link at 3x capacity.@.";
  let engine = Deployment.engine deployment in
  let link =
    Net.Link.create ~engine ~capacity:(gbps 40.) ~scheduler:Net.Link.Strict_priority
      ~deliver:(fun _ -> ())
      ()
  in
  let flood =
    Net.Source.create ~engine ~rate:(gbps 120.) ~packet_bytes:125_000
      ~emit:(fun bytes -> Net.Link.send link ~bytes ~cls:Net.Traffic_class.Best_effort ())
  in
  let reserved =
    Net.Source.create ~engine ~rate:(mbps 100.) ~packet_bytes:125_000
      ~emit:(fun bytes -> Net.Link.send link ~bytes ~cls:Net.Traffic_class.Colibri_data ())
  in
  Net.Source.start flood;
  Net.Source.start reserved;
  Net.Engine.run engine ~until:(Net.Engine.now engine +. 1.0);
  Net.Source.stop flood;
  Net.Source.stop reserved;
  let col = Net.Link.counters link Net.Traffic_class.Colibri_data in
  let be = Net.Link.counters link Net.Traffic_class.Best_effort in
  Fmt.pr "    Colibri class delivered %.1f Mbps of 100 offered; best effort lost %d%%.@."
    (8. *. float_of_int col.delivered_bytes /. 1e6)
    (100 * be.dropped_bytes / max 1 be.offered_bytes);
  Fmt.pr "    -> priority queuing isolates reservations from best-effort congestion.@.@.";

  (* --- Attack 2: bogus Colibri packets --- *)
  Fmt.pr "[2] Off-path adversary injects 10,000 forged Colibri packets.@.";
  let router = Deployment.router deployment G.x1 in
  let victim_pkt, _ =
    Result.get_ok
      (Gateway.send (Deployment.gateway deployment G.s) ~res_id:victim.key.res_id
         ~payload_len:0)
  in
  let rejected = ref 0 in
  for i = 1 to 10_000 do
    (* Fresh timestamps (just after the captured one) with random
       authenticators: only the HVF check can catch these. *)
    let forged =
      {
        victim_pkt with
        Packet.ts = Timebase.Ts.of_int (Timebase.Ts.to_int victim_pkt.Packet.ts - i);
        hvfs = Array.map (fun _ -> Bytes.make 4 (Char.chr (i land 0xff))) victim_pkt.Packet.hvfs;
      }
    in
    match Router.process_bytes router ~raw:(Packet.to_bytes forged) ~payload_len:0 with
    | Error Router.Invalid_hvf -> incr rejected
    | _ -> ()
  done;
  Fmt.pr "    %d/10000 forged packets dropped by the stateless HVF check.@." !rejected;
  Fmt.pr "    Victim still delivers: %.0f%% of its packets.@.@."
    (100. *. victim_success 50);

  (* --- Attack 3: a neighbor AS overuses its reservation --- *)
  Fmt.pr "[3] AS T overuses its own 1 Mbps reservation 20-fold (rogue gateway).@.";
  let up_t = List.hd (Segments.Db.up_segments db ~src:G.t) in
  let _ =
    ok
      (Deployment.setup_segr deployment ~path:up_t.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 1.))
  in
  let route = List.hd (Deployment.lookup_eer_routes deployment ~src:G.t ~dst:G.y2) in
  let attacker, version, sigmas =
    ok
      (Deployment.setup_eer_full deployment ~route ~src_host:(Ids.host 66)
         ~dst_host:(Ids.host 2) ~bw:(mbps 1.))
  in
  let rogue = Gateway.create ~burst:1e9 ~clock:(Deployment.clock deployment) G.t in
  ok (Gateway.register rogue ~eer:attacker ~version ~sigmas);
  let transit_as = (List.nth attacker.path 1).Path.asn in
  let transit = Deployment.router deployment transit_as in
  let forwarded = ref 0 and policed = ref 0 in
  for _ = 1 to 4000 do
    Deployment.advance deployment 0.00025;
    match Gateway.send rogue ~res_id:attacker.key.res_id ~payload_len:1200 with
    | Ok (pkt, _) -> (
        match Router.process_bytes transit ~raw:(Packet.to_bytes pkt) ~payload_len:1200 with
        | Ok _ -> incr forwarded
        | Error Router.Policed -> incr policed
        | Error _ -> ())
    | Error _ -> ()
  done;
  let st = Router.stats transit in
  Fmt.pr "    OFD flagged the flow (%d suspects); policing dropped %d of %d packets.@."
    st.suspects_flagged !policed (!forwarded + !policed);
  Fmt.pr "    Overuse confirmed %d time(s); %a reported to the CServ.@."
    st.confirmed_overuse Ids.pp_asn G.t;
  (* The punished AS is now denied new reservations at that transit. *)
  (match
     Deployment.setup_segr deployment ~path:up_t.Segments.path ~kind:Reservation.Up
       ~max_bw:(mbps 10.) ~min_bw:(mbps 1.)
   with
  | Error msg -> Fmt.pr "    New reservation attempt by %a: DENIED (%s).@." Ids.pp_asn G.t msg
  | Ok _ -> Fmt.pr "    (transit AS had not yet confirmed abuse — no denial)@.");
  Fmt.pr "    Victim throughout the attack: %.0f%% delivered.@.@."
    (100. *. victim_success 50);
  Fmt.pr "All three §5.1 attack classes neutralized.@."
