(** Neighbor-to-neighbor settlement (§9): how a transit AS bills the
    reservations it carries.

    Transit AS X1 runs a settlement ledger. Its customer S reserves
    bandwidth towards the core over two SegR versions (a setup and a
    later renegotiated renewal), and pushes EER traffic through; X1
    accrues committed Gbps-hours towards its provider Y1 and carried
    volume, and closes a billing period into invoices — the "scalable
    neighbor-to-neighbor settlements, similarly to today's AS peering
    agreements" of the paper's discussion section.

    Run with: [dune exec examples/settlement_billing.exe] *)

open Colibri_types
open Colibri_topology
open Colibri
module G = Topology_gen.Two_isd

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let ok = function Ok v -> v | Error e -> failwith e

let () =
  Fmt.pr "== Colibri settlement & billing ==@.@.";
  let deployment = Deployment.create (Topology_gen.two_isd ()) in
  let topo = Deployment.topology deployment in
  let db = Deployment.seg_db deployment in
  (* X1's ledger, with a negotiated contract towards its provider Y1. *)
  let ledger = Settlement.create ~clock:(Deployment.clock deployment) G.x1 in
  Settlement.set_contract ledger
    {
      neighbor = G.y1;
      price_per_gbps_hour = 3.0;
      price_per_gb = 0.05;
      colibri_share = 0.8;
    };
  Fmt.pr "X1 contracts with Y1: 3.0/Gbps·h committed, 0.05/GB carried.@.@.";

  (* S sets up an up-SegR through X1 towards Y1: 2 Gbps committed. *)
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let segr =
    ok
      (Deployment.setup_segr deployment ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 2.) ~min_bw:(mbps 10.))
  in
  let x1_hop =
    List.find (fun (h : Path.hop) -> Ids.equal_asn h.asn G.x1) segr.path
  in
  let v1 = Option.get segr.active in
  Settlement.on_segr_granted ledger ~topo ~egress:x1_hop.egress ~key:segr.key
    ~version:v1.version ~bw:v1.bw;
  Fmt.pr "SegR %a v1 committed: %a through X1→Y1.@." Ids.pp_res_key segr.key
    Bandwidth.pp v1.bw;

  (* An EER carries traffic for a while; X1 reports the carried bytes. *)
  let eer =
    ok
      (Deployment.setup_eer_auto deployment ~src:G.s ~src_host:(Ids.host 1)
         ~dst:G.y1 ~dst_host:(Ids.host 2) ~bw:(mbps 200.))
  in
  let carried = ref 0 in
  for _ = 1 to 200 do
    Deployment.advance deployment 0.001;
    match
      Deployment.send_data deployment ~src:G.s ~res_id:eer.key.res_id
        ~payload_len:50_000
    with
    | Ok { delivered = true; _ } -> carried := !carried + 50_000
    | _ -> ()
  done;
  Settlement.carried ledger ~neighbor:G.y1 ~bytes:!carried;
  Fmt.pr "EER %a carried %.1f MB through X1.@.@." Ids.pp_res_key eer.key
    (float_of_int !carried /. 1e6);

  (* Two hours later, S renegotiates the SegR down to 1 Gbps. *)
  Deployment.advance deployment 7200.;
  Settlement.commitment_ended ledger ~neighbor:G.y1 ~key:segr.key
    ~version:v1.version;
  let renewed =
    ok
      (Deployment.setup_segr ~renew:segr.key deployment ~path:segr.path
         ~kind:Reservation.Up ~max_bw:(gbps 1.) ~min_bw:(mbps 10.))
  in
  ok (Deployment.activate_segr deployment ~key:segr.key);
  let v2 = Option.get renewed.active in
  Settlement.on_segr_granted ledger ~topo ~egress:x1_hop.egress ~key:segr.key
    ~version:v2.version ~bw:v2.bw;
  Fmt.pr "After 2h, SegR renegotiated to %a (v%d).@.@." Bandwidth.pp v2.bw v2.version;

  (* Another hour, then the monthly close. *)
  Deployment.advance deployment 3600.;
  Fmt.pr "Invoices at period close:@.";
  List.iter (fun inv -> Fmt.pr "  %a@." Settlement.pp_invoice inv)
    (Settlement.close_period ledger);
  Fmt.pr "@.(2 Gbps x 2h + 1 Gbps x 1h = 5 Gbps·h x 3.0 = 15.0, plus carried volume.)@."
