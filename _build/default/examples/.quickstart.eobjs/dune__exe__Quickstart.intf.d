examples/quickstart.mli:
