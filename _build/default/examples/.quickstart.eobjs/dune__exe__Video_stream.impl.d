examples/video_stream.ml: Bandwidth Buffer Colibri Colibri_topology Colibri_types Deployment Float Fmt Ids List Packet Path Reservation Segments Topology_gen
