examples/settlement_billing.ml: Bandwidth Colibri Colibri_topology Colibri_types Deployment Fmt Ids List Option Path Reservation Segments Settlement Topology_gen
