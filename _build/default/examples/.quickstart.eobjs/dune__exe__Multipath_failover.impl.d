examples/multipath_failover.ml: Bandwidth Colibri Colibri_topology Colibri_types Deployment Fmt Ids List Path Reservation Segments Topology_gen
