examples/settlement_billing.mli:
