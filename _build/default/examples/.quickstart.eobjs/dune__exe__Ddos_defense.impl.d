examples/ddos_defense.ml: Array Bandwidth Bytes Char Colibri Colibri_topology Colibri_types Deployment Fmt Gateway Ids List Net Packet Path Reservation Result Router Segments Timebase Topology_gen
