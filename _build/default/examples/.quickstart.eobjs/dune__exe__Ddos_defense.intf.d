examples/ddos_defense.mli:
