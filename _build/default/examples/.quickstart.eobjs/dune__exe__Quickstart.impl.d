examples/quickstart.ml: Array Bandwidth Bytes Colibri Colibri_topology Colibri_types Deployment Fmt Gateway Ids List Packet Path Reservation Result Router Segments Topology Topology_gen
