(** A CDN video stream over Colibri — the paper's motivating workload.

    A CDN host in AS S streams 25 Mbps of video to a viewer in AS D
    for 60 seconds of simulated time. EERs live only 16 s (§3.3), so
    the end-host stack renews the reservation ahead of expiry and the
    gateway switches versions seamlessly (§4.2) — the stream never
    stalls. Halfway through, the underlying up-SegR is renewed and
    explicitly activated; the EER is unaffected by the SegR version
    switch. The example reports per-second delivered bitrate so the
    continuity is visible.

    Run with: [dune exec examples/video_stream.exe] *)

open Colibri_types
open Colibri_topology
open Colibri
module G = Topology_gen.Two_isd

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let ok = function Ok v -> v | Error e -> failwith e

let stream_rate = mbps 25.
let payload = 1300 (* a video chunk per packet *)

let () =
  Fmt.pr "== Colibri video stream (25 Mbps for 60 s) ==@.@.";
  let deployment = Deployment.create (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db deployment in
  (* Infrastructure reservations (as the quickstart, tersely). *)
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let up_segr =
    ok
      (Deployment.setup_segr deployment ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 1.) ~min_bw:(mbps 50.))
  in
  let down = List.hd (Segments.Db.down_segments db ~dst:G.d) in
  let _ =
    ok
      (Deployment.request_down_segr deployment ~path:down.Segments.path
         ~max_bw:(gbps 1.) ~min_bw:(mbps 50.))
  in
  let core =
    List.hd
      (Segments.Db.core_segments db
         ~src:(Path.destination up.Segments.path)
         ~dst:(Path.source down.Segments.path))
  in
  let _ =
    ok
      (Deployment.setup_segr deployment ~path:core.Segments.path
         ~kind:Reservation.Core ~max_bw:(gbps 2.) ~min_bw:(mbps 50.))
  in
  (* The player requests an EER matching the known stream bitrate
     ("the host can base the amount of requested bandwidth on ... the
     known bitrate of a video stream", §3.3). *)
  let eer =
    ref
      (ok
         (Deployment.setup_eer_auto deployment ~src:G.s ~src_host:(Ids.host 1)
            ~dst:G.d ~dst_host:(Ids.host 2) ~bw:stream_rate))
  in
  Fmt.pr "EER %a at %a over %a@.@." Ids.pp_res_key !eer.key Bandwidth.pp stream_rate
    Path.pp !eer.path;
  let route : Deployment.eer_route = { path = !eer.path; segr_keys = !eer.segr_keys } in
  let wire = Packet.header_len ~hops:(Path.length !eer.path) + payload in
  let interval = 8. *. float_of_int wire /. Bandwidth.to_bps stream_rate in
  let renewals = ref 0 and stalls = ref 0 in
  Fmt.pr "%-6s %-14s %-10s %s@." "t[s]" "delivered" "versions" "events";
  for second = 1 to 60 do
    let events = Buffer.create 16 in
    (* Renew ~4 s before expiry (once per second at most, §4.2). *)
    let now = Deployment.now deployment in
    (match Reservation.eer_current_version !eer ~now with
    | Some v when v.exp_time -. now < 4. ->
        (match
           Deployment.setup_eer ~renew:!eer.key deployment ~route
             ~src_host:(Ids.host 1) ~dst_host:(Ids.host 2) ~bw:stream_rate
         with
        | Ok e ->
            eer := e;
            incr renewals;
            Buffer.add_string events "renewed EER; "
        | Error msg -> Buffer.add_string events ("renewal failed: " ^ msg ^ "; "))
    | _ -> ());
    (* At t=30, the AS renews and switches its up-SegR under the
       stream. *)
    if second = 30 then begin
      let _ =
        ok
          (Deployment.setup_segr ~renew:up_segr.key deployment ~path:up_segr.path
             ~kind:Reservation.Up ~max_bw:(gbps 1.) ~min_bw:(mbps 50.))
      in
      ok (Deployment.activate_segr deployment ~key:up_segr.key);
      Buffer.add_string events "up-SegR renewed+activated; "
    end;
    (* One second of streaming. *)
    let sent = int_of_float (Float.round (1. /. interval)) in
    let delivered = ref 0 in
    for _ = 1 to sent do
      Deployment.advance deployment interval;
      match
        Deployment.send_data deployment ~src:G.s ~res_id:!eer.key.res_id
          ~payload_len:payload
      with
      | Ok { delivered = true; _ } -> incr delivered
      | _ -> incr stalls
    done;
    let rate_mbps = 8. *. float_of_int (!delivered * wire) /. 1e6 in
    let versions =
      List.length (Reservation.eer_valid_versions !eer ~now:(Deployment.now deployment))
    in
    if second <= 5 || second mod 10 = 0 || Buffer.length events > 0 then
      Fmt.pr "%-6d %6.2f Mbps   %-10d %s@." second rate_mbps versions
        (Buffer.contents events)
  done;
  Fmt.pr "@.Stream finished: %d renewals, %d lost packets out of ~%d.@." !renewals
    !stalls
    (60 * int_of_float (Float.round (1. /. interval)));
  if !stalls = 0 then
    Fmt.pr "Seamless: EER version transitions never interrupted the stream (§4.2).@."
