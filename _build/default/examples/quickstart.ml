(** Quickstart: the smallest complete Colibri session.

    Builds the paper's running topology (two ISDs, Fig. 1 enriched),
    establishes the three segment reservations an end-to-end path
    needs (up, core, down — §3.3), sets up a host-to-host EER over
    them, and sends authenticated traffic through every border router
    on the path.

    Run with: [dune exec examples/quickstart.exe] *)

open Colibri_types
open Colibri_topology
open Colibri
module G = Topology_gen.Two_isd

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let ok = function Ok v -> v | Error e -> failwith e

let () =
  Fmt.pr "== Colibri quickstart ==@.@.";
  (* 1. A SCION-like topology with two ISDs; beaconing discovers the
     path segments. *)
  let topo = Topology_gen.two_isd () in
  let deployment = Deployment.create topo in
  let db = Deployment.seg_db deployment in
  Fmt.pr "Topology: %d ASes in %d ISDs; beaconing found %d segments.@."
    (List.length (Topology.ases topo))
    (List.length (Topology.isds topo))
    (Segments.Db.size db);

  (* 2. AS S reserves bandwidth up to its core (up-SegR). *)
  let up = List.hd (Segments.Db.up_segments db ~src:G.s) in
  let up_segr =
    ok
      (Deployment.setup_segr deployment ~path:up.Segments.path ~kind:Reservation.Up
         ~max_bw:(gbps 2.) ~min_bw:(mbps 10.))
  in
  Fmt.pr "Up-SegR   %a: %a along %a@." Ids.pp_res_key up_segr.key Bandwidth.pp
    (Reservation.segr_bw up_segr ~now:(Deployment.now deployment))
    Path.pp up_segr.path;

  (* 3. AS D asks its core W1 for a down-SegR (§3.3: down-SegRs are
     created upon explicit request by the last AS). *)
  let down = List.hd (Segments.Db.down_segments db ~dst:G.d) in
  let down_segr =
    ok
      (Deployment.request_down_segr deployment ~path:down.Segments.path
         ~max_bw:(gbps 2.) ~min_bw:(mbps 10.))
  in
  Fmt.pr "Down-SegR %a: %a along %a@." Ids.pp_res_key down_segr.key Bandwidth.pp
    (Reservation.segr_bw down_segr ~now:(Deployment.now deployment))
    Path.pp down_segr.path;

  (* 4. Core-SegR between the two ISDs. *)
  let core_src = Path.destination up.Segments.path in
  let core_dst = Path.source down.Segments.path in
  let core = List.hd (Segments.Db.core_segments db ~src:core_src ~dst:core_dst) in
  let core_segr =
    ok
      (Deployment.setup_segr deployment ~path:core.Segments.path
         ~kind:Reservation.Core ~max_bw:(gbps 5.) ~min_bw:(mbps 10.))
  in
  Fmt.pr "Core-SegR %a: %a along %a@.@." Ids.pp_res_key core_segr.key Bandwidth.pp
    (Reservation.segr_bw core_segr ~now:(Deployment.now deployment))
    Path.pp core_segr.path;

  (* 5. Host h1 in S reserves 100 Mbps end-to-end to host h2 in D. The
     CServ splices the SegRs into a full path (Appendix C lookup). *)
  let eer =
    ok
      (Deployment.setup_eer_auto deployment ~src:G.s ~src_host:(Ids.host 1) ~dst:G.d
         ~dst_host:(Ids.host 2) ~bw:(mbps 100.))
  in
  Fmt.pr "EER %a over %d SegRs:@.  %a@.@." Ids.pp_res_key eer.key
    (List.length eer.segr_keys) Path.pp eer.path;

  (* 6. Send traffic: the gateway monitors, stamps and authenticates
     each packet; every border router validates it statelessly. *)
  let delivered = ref 0 in
  for _ = 1 to 100 do
    Deployment.advance deployment 0.001;
    match
      Deployment.send_data deployment ~src:G.s ~res_id:eer.key.res_id
        ~payload_len:1000
    with
    | Ok { delivered = true; _ } -> incr delivered
    | Ok { dropped_at = Some (asn, reason); _ } ->
        Fmt.pr "dropped at %a: %a@." Ids.pp_asn asn Router.pp_drop_reason reason
    | Ok _ -> ()
    | Error e -> Fmt.pr "gateway refused: %a@." Gateway.pp_drop_reason e
  done;
  Fmt.pr "Sent 100 packets end-to-end; %d delivered through %d border routers each.@."
    !delivered (Path.length eer.path);

  (* 7. A forged packet (random authenticators) is dropped at the very
     first router — the §5.1 guarantee in one line. *)
  let pkt, _ =
    Result.get_ok
      (Gateway.send (Deployment.gateway deployment G.s) ~res_id:eer.key.res_id
         ~payload_len:0)
  in
  let forged = { pkt with Packet.hvfs = Array.map (fun _ -> Bytes.make 4 '!') pkt.Packet.hvfs } in
  (match
     Router.process_bytes (Deployment.router deployment G.s)
       ~raw:(Packet.to_bytes forged) ~payload_len:0
   with
  | Error reason -> Fmt.pr "Forged packet rejected: %a.@." Router.pp_drop_reason reason
  | Ok _ -> Fmt.pr "BUG: forged packet accepted!@.");
  Fmt.pr "@.Done.@."
