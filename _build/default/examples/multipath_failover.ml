(** Path choice and failover (§2.1).

    Path-aware networking gives the source several discovered paths.
    AS S holds up-SegRs over both of its providers (via X1→Y1 and via
    X1→Y2); when the reservation request cannot be met on the first
    path — here because a competing tenant has filled the small SegR —
    the end-host stack simply retries over the alternative, and a
    multipath application can even hold EERs on both at once.

    Run with: [dune exec examples/multipath_failover.exe] *)

open Colibri_types
open Colibri_topology
open Colibri
module G = Topology_gen.Two_isd

let gbps = Bandwidth.of_gbps
let mbps = Bandwidth.of_mbps
let ok = function Ok v -> v | Error e -> failwith e

let () =
  Fmt.pr "== Colibri multipath failover ==@.@.";
  let deployment = Deployment.create (Topology_gen.two_isd ()) in
  let db = Deployment.seg_db deployment in
  let ups = Segments.Db.up_segments db ~src:G.s in
  Fmt.pr "Beaconing gave AS S %d distinct up segments:@." (List.length ups);
  List.iter (fun (s : Segments.t) -> Fmt.pr "  %a@." Path.pp s.Segments.path) ups;
  (* Reserve a small SegR on the primary and a roomy one on the
     alternative. *)
  let primary = List.nth ups 0 and alternate = List.nth ups 1 in
  let primary_segr =
    ok
      (Deployment.setup_segr deployment ~path:primary.Segments.path
         ~kind:Reservation.Up ~max_bw:(mbps 120.) ~min_bw:(mbps 1.))
  in
  let alternate_segr =
    ok
      (Deployment.setup_segr deployment ~path:alternate.Segments.path
         ~kind:Reservation.Up ~max_bw:(gbps 1.) ~min_bw:(mbps 1.))
  in
  Fmt.pr "@.Primary SegR %a: %a;  alternate SegR %a: %a@.@." Ids.pp_res_key
    primary_segr.key Bandwidth.pp
    (Reservation.segr_bw primary_segr ~now:(Deployment.now deployment))
    Ids.pp_res_key alternate_segr.key Bandwidth.pp
    (Reservation.segr_bw alternate_segr ~now:(Deployment.now deployment));
  (* A competing tenant takes 100 of the primary's 120 Mbps. *)
  let primary_core = Path.destination primary.Segments.path in
  let primary_route : Deployment.eer_route =
    { path = primary_segr.path; segr_keys = [ primary_segr.key ] }
  in
  let _competitor =
    ok
      (Deployment.setup_eer deployment ~route:primary_route ~src_host:(Ids.host 9)
         ~dst_host:(Ids.host 3) ~bw:(mbps 100.))
  in
  Fmt.pr "A competing tenant reserved 100 Mbps on the primary SegR.@.";
  (* Our host wants 80 Mbps to the primary's core. The primary SegR has
     only 20 Mbps left → denied; the stack falls back. *)
  (match
     Deployment.setup_eer deployment ~route:primary_route ~src_host:(Ids.host 1)
       ~dst_host:(Ids.host 2) ~bw:(mbps 80.)
   with
  | Error msg -> Fmt.pr "Primary path refused the 80 Mbps EER: %s@." msg
  | Ok _ -> Fmt.pr "(unexpectedly fit on the primary)@.");
  let alternate_core = Path.destination alternate.Segments.path in
  Fmt.pr "Retrying towards %a via the alternate provider (%a)...@." Ids.pp_asn
    primary_core Ids.pp_asn alternate_core;
  let alt_route : Deployment.eer_route =
    { path = alternate_segr.path; segr_keys = [ alternate_segr.key ] }
  in
  let eer =
    ok
      (Deployment.setup_eer deployment ~route:alt_route ~src_host:(Ids.host 1)
         ~dst_host:(Ids.host 2) ~bw:(mbps 80.))
  in
  Fmt.pr "EER %a established over the alternate path:@.  %a@.@." Ids.pp_res_key
    eer.key Path.pp eer.path;
  (* And the automatic variant does the same fallback in one call. *)
  (match
     Deployment.setup_eer_auto deployment ~src:G.s ~src_host:(Ids.host 4)
       ~dst:alternate_core ~dst_host:(Ids.host 5) ~bw:(mbps 80.)
   with
  | Ok auto_eer ->
      Fmt.pr "setup_eer_auto picked a feasible route automatically: %a@." Path.pp
        auto_eer.path
  | Error msg -> Fmt.pr "auto setup failed: %s@." msg);
  (* Multipath: hold both EERs simultaneously and split traffic. *)
  let small =
    ok
      (Deployment.setup_eer deployment ~route:primary_route ~src_host:(Ids.host 1)
         ~dst_host:(Ids.host 2) ~bw:(mbps 15.))
  in
  let d1 = ref 0 and d2 = ref 0 in
  for i = 1 to 100 do
    Deployment.advance deployment 0.001;
    let res_id = if i mod 4 = 0 then small.key.res_id else eer.key.res_id in
    match Deployment.send_data deployment ~src:G.s ~res_id ~payload_len:800 with
    | Ok { delivered = true; _ } ->
        if res_id = small.key.res_id then incr d2 else incr d1
    | _ -> ()
  done;
  Fmt.pr
    "@.Multipath transport: %d packets over the 80 Mbps EER, %d over the 15 Mbps EER.@."
    !d1 !d2;
  Fmt.pr "Both reservations served concurrently — path choice in action.@."
