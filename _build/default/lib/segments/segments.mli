(** Path segments and beaconing (§2.2).

    SCION splits global path discovery into three sub-problems: an
    intra-ISD process discovering {e up-segments} (non-core AS → core)
    and {e down-segments} (core → non-core AS), and an inter-ISD
    process discovering {e core-segments} between core ASes. Source
    hosts combine at most one up-, one core-, and one down-segment
    into a full end-to-end path. Colibri's three SegR types map
    one-to-one onto these segment types (§3.3). *)

open Colibri_types
open Colibri_topology

type kind = Up | Down | Core

val pp_kind : kind Fmt.t

(** A segment, oriented in its direction of travel (an up-segment runs
    from the non-core AS towards the core, etc.). *)
type t = { kind : kind; path : Path.t }

val source : t -> Ids.asn
val destination : t -> Ids.asn
val length : t -> int
val pp : t Fmt.t
val equal : t -> t -> bool

(** Segment database, as maintained by path servers / the CServ's
    segment cache. *)
module Db : sig
  type seg = t
  type t

  val create : unit -> t
  val add : t -> seg -> unit

  val up_segments : t -> src:Ids.asn -> seg list
  (** Up segments from a non-core AS, shortest first. *)

  val down_segments : t -> dst:Ids.asn -> seg list
  val core_segments : t -> src:Ids.asn -> dst:Ids.asn -> seg list
  val size : t -> int

  val combinations : ?limit:int -> t -> src:Ids.asn -> dst:Ids.asn -> seg list list
  (** All end-to-end segment combinations, shortest total path first,
      capped at [limit] (default 8). Handles all structural cases:
      endpoints core or non-core, shared core AS (no core segment
      needed). *)

  val join_path : seg list -> Path.t
  (** Splice a combination into one end-to-end path. *)

  val paths : ?limit:int -> t -> src:Ids.asn -> dst:Ids.asn -> Path.t list
end

val discover : ?max_len:int -> ?max_per_pair:int -> Topology.t -> Db.t
(** Run the intra-ISD and core beaconing processes over the topology.
    [max_len] bounds segment length in AS hops (default 8);
    [max_per_pair] bounds core segments kept per core pair
    (default 4). *)
