(** DiffServ-style baseline (§1, §8): hosts mark a class in the header
    (ToS/DSCP), routers prioritize per hop — no admission, no
    signaling, no authentication. It scales perfectly and guarantees
    nothing: any sender can self-mark the highest class, so under
    attack the "premium" class degrades like best effort (shown by the
    ablation test). *)

open Colibri_types

type dscp = Expedited | Assured | Default

val dscp_priority : dscp -> int
val pp_dscp : dscp Fmt.t

type t
(** A DiffServ output port with strict priority across the three
    classes and no per-flow state. *)

val create : engine:Net.Engine.t -> capacity:Bandwidth.t -> ?queue_limit_bytes:int -> unit -> t

val send : t -> dscp:dscp -> bytes:int -> ?deliver:(unit -> unit) -> unit -> unit
(** Enqueue a packet with the class {e the sender chose} — the crux:
    the mark is not authenticated. *)

val delivered_bytes : t -> dscp -> int
val dropped_bytes : t -> dscp -> int
