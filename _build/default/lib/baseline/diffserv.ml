(** DiffServ-style baseline (§1, §8).

    The archetype of lightweight class-based systems: hosts mark a
    class in the packet header (the ToS/DSCP field), routers apply
    per-hop prioritization, and {e nothing else} — no admission, no
    signaling, no authentication. It scales perfectly and guarantees
    nothing: any sender can mark its packets with the highest class, so
    under attack the "premium" class degrades exactly like best effort.
    The ablation bench demonstrates this failure next to Colibri's
    Table 2 behaviour. *)

open Colibri_types

type dscp = Expedited | Assured | Default

let dscp_priority = function Expedited -> 0 | Assured -> 1 | Default -> 2

let pp_dscp ppf = function
  | Expedited -> Fmt.string ppf "EF"
  | Assured -> Fmt.string ppf "AF"
  | Default -> Fmt.string ppf "BE"

(** A DiffServ output port: strict priority across the three classes,
    no per-flow state, no policing of who set which mark. *)
type t = {
  engine : Net.Engine.t;
  capacity : Bandwidth.t;
  queues : (int * (unit -> unit)) Queue.t array; (* (bytes, deliver) *)
  queue_limit_bytes : int;
  queued : int array;
  mutable busy : bool;
  delivered_bytes : int array; (* per class *)
  dropped_bytes : int array;
}

let create ~(engine : Net.Engine.t) ~(capacity : Bandwidth.t)
    ?(queue_limit_bytes = 4 * 1024 * 1024) () : t =
  {
    engine;
    capacity;
    queues = Array.init 3 (fun _ -> Queue.create ());
    queue_limit_bytes;
    queued = Array.make 3 0;
    busy = false;
    delivered_bytes = Array.make 3 0;
    dropped_bytes = Array.make 3 0;
  }

let rec transmit_next (t : t) =
  let cls = ref (-1) in
  (try
     for i = 0 to 2 do
       if not (Queue.is_empty t.queues.(i)) then begin
         cls := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !cls < 0 then t.busy <- false
  else begin
    t.busy <- true;
    let i = !cls in
    let bytes, deliver = Queue.pop t.queues.(i) in
    t.queued.(i) <- t.queued.(i) - bytes;
    let ser = 8. *. float_of_int bytes /. Bandwidth.to_bps t.capacity in
    Net.Engine.schedule t.engine ~delay:ser (fun () ->
        t.delivered_bytes.(i) <- t.delivered_bytes.(i) + bytes;
        deliver ();
        transmit_next t)
  end

(** Enqueue a packet with the class {e the sender chose} — the crux of
    the model: the mark is not authenticated. *)
let send (t : t) ~(dscp : dscp) ~(bytes : int) ?(deliver = ignore) () =
  let i = dscp_priority dscp in
  if t.queued.(i) + bytes > t.queue_limit_bytes then
    t.dropped_bytes.(i) <- t.dropped_bytes.(i) + bytes
  else begin
    Queue.push (bytes, deliver) t.queues.(i);
    t.queued.(i) <- t.queued.(i) + bytes;
    if not t.busy then transmit_next t
  end

let delivered_bytes (t : t) (d : dscp) = t.delivered_bytes.(dscp_priority d)
let dropped_bytes (t : t) (d : dscp) = t.dropped_bytes.(dscp_priority d)
