lib/baseline/intserv.mli: Bandwidth Colibri_types Timebase
