lib/baseline/diffserv.mli: Bandwidth Colibri_types Fmt Net
