lib/baseline/diffserv.ml: Array Bandwidth Colibri_types Fmt Net Queue
