lib/baseline/intserv.ml: Bandwidth Colibri_types List Timebase
