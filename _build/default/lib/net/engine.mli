(** Discrete-event simulation engine.

    A binary min-heap of timestamped events with FIFO tie-break among
    simultaneous events. All network components share one engine; its
    clock is the authoritative simulation time. *)

open Colibri_types

type t

val create : ?now:Timebase.t -> unit -> t
val now : t -> Timebase.t
val clock : t -> Timebase.clock
val pending : t -> int
val processed : t -> int

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the thunk at [now + delay]; [delay] must be non-negative. *)

val schedule_at : t -> time:Timebase.t -> (unit -> unit) -> unit
(** Run at an absolute time (clamped to now). *)

val step : t -> bool
(** Pop and run the earliest event; [false] when the queue is empty. *)

val run : ?until:Timebase.t -> t -> unit
(** Run events until the queue drains or the next event lies beyond
    [until] (the clock then advances to [until] exactly). *)

val every : t -> ?start:Timebase.t -> every:float -> (unit -> bool) -> unit
(** Repeat the callback every [every] seconds until it returns
    [false]. *)
