(** Constant-bit-rate traffic sources for experiments: fixed-size
    packets of one traffic class emitted at a configured rate; the
    Table 2 reproduction composes several per input port. *)

open Colibri_types

type t

val create :
  engine:Engine.t -> rate:Bandwidth.t -> packet_bytes:int -> emit:(int -> unit) -> t
(** [emit] is called with the packet size at line spacing. *)

val start : t -> unit
val stop : t -> unit
val is_running : t -> bool
val interval : t -> float
