(** Discrete-event simulation engine.

    A binary min-heap of timestamped events with a deterministic
    tie-break (FIFO among simultaneous events). All network components
    (links, traffic sources, AS services) share one engine; its clock
    is the authoritative simulation time. *)

open Colibri_types

type event = { time : Timebase.t; seq : int; run : unit -> unit }

type t = {
  clock : Timebase.Sim_clock.t;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
  mutable processed : int;
}

let create ?(now = Timebase.epoch) () =
  {
    clock = Timebase.Sim_clock.create ~now ();
    heap = Array.make 256 { time = 0.; seq = 0; run = ignore };
    size = 0;
    next_seq = 0;
    processed = 0;
  }

let now (t : t) : Timebase.t = Timebase.Sim_clock.now t.clock
let clock (t : t) : Timebase.clock = Timebase.Sim_clock.clock t.clock
let pending (t : t) = t.size
let processed (t : t) = t.processed

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow (t : t) =
  let bigger = Array.make (2 * Array.length t.heap) t.heap.(0) in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let rec sift_up (t : t) i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down (t : t) i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative; events never run in the past. *)
let schedule (t : t) ~(delay : float) (run : unit -> unit) =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- { time = now t +. delay; seq = t.next_seq; run };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let schedule_at (t : t) ~(time : Timebase.t) (run : unit -> unit) =
  schedule t ~delay:(Float.max 0. (time -. now t)) run

(** Pop and run the earliest event; [false] when the queue is empty. *)
let step (t : t) : bool =
  if t.size = 0 then false
  else begin
    let ev = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0;
    Timebase.Sim_clock.set t.clock ev.time;
    t.processed <- t.processed + 1;
    ev.run ();
    true
  end

(** Run events until the queue drains or the next event lies beyond
    [until] (the clock is then advanced to [until] exactly). *)
let run ?(until = Float.max_float) (t : t) =
  let rec loop () =
    if t.size > 0 && t.heap.(0).time <= until then begin
      ignore (step t);
      loop ()
    end
  in
  loop ();
  if until < Float.max_float then Timebase.Sim_clock.set t.clock until

(** Repeat [f] every [every] seconds starting at [start] (default: one
    period from now) until it returns [false]. *)
let every (t : t) ?start ~(every : float) (f : unit -> bool) =
  if every <= 0. then invalid_arg "Engine.every: period <= 0";
  let first = match start with Some s -> Float.max 0. (s -. now t) | None -> every in
  let rec tick () = if f () then schedule t ~delay:every tick in
  schedule t ~delay:first tick
