(** Traffic classes for the Colibri traffic split (§3.4, Appendix B):
    best-effort, Colibri control (SegR renewals and EER setups), and
    Colibri data (EER traffic), with the default 20 % / 5 % / 75 %
    shares of link capacity. *)

type t = Best_effort | Colibri_control | Colibri_data

val count : int
val index : t -> int
val of_index : int -> t
val all : t list

val priority : t -> int
(** Strict-priority order at schedulers: control first (it carries the
    renewals that keep reservations alive), then reservation data,
    then best effort. Admission guarantees data never exceeds its
    share, so strict priority cannot starve best effort (Appendix B,
    footnote 4). *)

val default_share : t -> float
(** The guaranteed link shares of §3.4. *)

val pp : t Fmt.t
